// Microbenchmark: darshan log serialisation — raw v1 vs delta-varint v2,
// write and parse throughput, and the compression ratio on a DXT-heavy
// log (the case that matters: full tracing of a long job).
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "darshan/log.hpp"
#include "darshan/log_compress.hpp"
#include "darshan/runtime.hpp"
#include "sim/engine.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"

namespace {

using namespace dlc;

/// Builds a log with `segments` DXT entries across 4 ranks.
darshan::Log build_log(int segments_per_rank) {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{}};
  simfs::VariabilityConfig vcfg;
  vcfg.epoch_sigma = 0;
  vcfg.ar_sigma = 0;
  auto variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
  simfs::NfsConfig ncfg;
  ncfg.jitter_sigma = 0;
  simfs::NfsModel fs(engine, ncfg, variability, 1);
  simhpc::JobConfig jcfg;
  jcfg.node_count = 4;
  simhpc::Job job(engine, cluster, jcfg);
  darshan::RuntimeConfig rcfg;
  rcfg.dxt_max_segments = 1u << 20;
  darshan::Runtime runtime(engine, fs, job, rcfg);
  auto proc = [](darshan::Runtime& rt, int rank, int n) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(rank);
    const darshan::Fd fd =
        co_await io.open(darshan::Module::kPosix, "/bench/file", true);
    for (int i = 0; i < n; ++i) co_await io.write(fd, 4096);
    co_await io.close(fd);
  };
  for (int r = 0; r < 4; ++r) {
    engine.spawn(proc(runtime, r, segments_per_rank));
  }
  engine.run();
  return runtime.finalize();
}

const darshan::Log& shared_log() {
  static const darshan::Log log = build_log(10'000);
  return log;
}

void BM_LogWrite_Raw(benchmark::State& state) {
  const darshan::Log& log = shared_log();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    darshan::write_log(log, out);
    bytes = out.str().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["log_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LogWrite_Raw);

void BM_LogWrite_Compressed(benchmark::State& state) {
  const darshan::Log& log = shared_log();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    darshan::write_log_compressed(log, out);
    bytes = out.str().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["log_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LogWrite_Compressed);

void BM_LogParse_Raw(benchmark::State& state) {
  std::ostringstream out;
  darshan::write_log(shared_log(), out);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    benchmark::DoNotOptimize(darshan::read_log(in));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_LogParse_Raw);

void BM_LogParse_Compressed(benchmark::State& state) {
  std::ostringstream out;
  darshan::write_log_compressed(shared_log(), out);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    benchmark::DoNotOptimize(darshan::read_log_compressed(in));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_LogParse_Compressed);

}  // namespace

BENCHMARK_MAIN();
