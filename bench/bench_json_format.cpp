// Microbenchmark: real cost of formatting one connector message — the
// paper's culprit for the HMMER overhead.  Compares snprintf-based number
// formatting (what the paper shipped), the two-digit-table itoa path, and
// the no-format ablation.
#include <benchmark/benchmark.h>

#include "core/connector.hpp"
#include "json/writer.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace dlc;

darshan::IoEvent sample_event(const std::string* path) {
  darshan::IoEvent e;
  e.module = darshan::Module::kPosix;
  e.op = darshan::Op::kWrite;
  e.rank = 3;
  e.record_id = fnv1a64(*path);
  e.file_path = path;
  e.max_byte = 16 * 1024 * 1024 - 1;
  e.switches = 2;
  e.cnt = 17;
  e.offset = 48 * 1024 * 1024;
  e.length = 16 * 1024 * 1024;
  e.start = 123 * kSecond;
  e.end = 123 * kSecond + 250 * kMillisecond;
  return e;
}

void write_message_fields(json::Writer& w, const darshan::IoEvent& e) {
  // Field-for-field replica of the connector's MOD message (standalone so
  // the benchmark needs no darshan runtime).
  w.reset();
  w.begin_object();
  w.member("uid", std::uint64_t{99066});
  w.member("exe", "N/A");
  w.member("job_id", std::uint64_t{259903});
  w.member("rank", std::int64_t{e.rank});
  w.member("ProducerName", "nid00046");
  w.member("file", "N/A");
  w.member("record_id", e.record_id);
  w.member("module", darshan::module_name(e.module));
  w.member("type", "MOD");
  w.member("max_byte", e.max_byte);
  w.member("switches", e.switches);
  w.member("flushes", e.flushes);
  w.member("cnt", e.cnt);
  w.member("op", darshan::op_name(e.op));
  w.key("seg");
  w.begin_array();
  w.begin_object();
  w.member("data_set", "N/A");
  w.member("pt_sel", std::int64_t{-1});
  w.member("irreg_hslab", std::int64_t{-1});
  w.member("reg_hslab", std::int64_t{-1});
  w.member("ndims", std::int64_t{-1});
  w.member("npoints", std::int64_t{-1});
  w.member("off", static_cast<std::int64_t>(e.offset));
  w.member("len", static_cast<std::int64_t>(e.length));
  w.member("dur", 0.25);
  w.member("timestamp", 1656633723.25);
  w.end_object();
  w.end_array();
  w.end_object();
}

void BM_FormatMessage_Snprintf(benchmark::State& state) {
  const std::string path = "/scratch/mpi-io-test.tmp.dat";
  const darshan::IoEvent e = sample_event(&path);
  json::Writer w(json::NumberFormat::kSnprintf);
  for (auto _ : state) {
    write_message_fields(w, e);
    benchmark::DoNotOptimize(w.str().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.str().size()));
}
BENCHMARK(BM_FormatMessage_Snprintf);

void BM_FormatMessage_FastItoa(benchmark::State& state) {
  const std::string path = "/scratch/mpi-io-test.tmp.dat";
  const darshan::IoEvent e = sample_event(&path);
  json::Writer w(json::NumberFormat::kFastItoa);
  for (auto _ : state) {
    write_message_fields(w, e);
    benchmark::DoNotOptimize(w.str().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.str().size()));
}
BENCHMARK(BM_FormatMessage_FastItoa);

void BM_FormatMessage_NoFormat(benchmark::State& state) {
  json::Writer w(json::NumberFormat::kNull);
  for (auto _ : state) {
    w.reset();
    w.value_string("darshanConnector: formatting disabled");
    benchmark::DoNotOptimize(w.str().data());
  }
}
BENCHMARK(BM_FormatMessage_NoFormat);

void BM_IntFormat_Snprintf(benchmark::State& state) {
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    out.clear();
    append_int_snprintf(out, static_cast<std::int64_t>(rng.next_u64()));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntFormat_Snprintf);

void BM_IntFormat_FastItoa(benchmark::State& state) {
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    out.clear();
    append_int(out, static_cast<std::int64_t>(rng.next_u64()));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntFormat_FastItoa);

}  // namespace

BENCHMARK_MAIN();
