// Reproduces Fig. 6: open/close request counts per node for two HACC-IO
// jobs (Lustre, 10M particles/rank) — I/O variation across allocated
// devices.
#include <cstdio>

#include "analysis/figures.hpp"
#include "exp/figdata.hpp"
#include "exp/table.hpp"
#include "rollup/serve.hpp"

using namespace dlc;

int main() {
  std::printf("== Fig. 6: I/O requests per node (open/close), HACC-IO "
              "Lustre/10M, two jobs ==\n\n");

  const exp::FigDataset data =
      exp::hacc_campaign(simfs::FsKind::kLustre, 10'000'000, 2, 21);
  const rollup::PanelResult panel =
      rollup::panel_fig6(data.rollups.get(), *data.db, data.job_ids);
  const analysis::DataFrame& per_node = panel.frame;
  std::printf("(served from %s)\n\n",
              panel.from_rollup ? ("rollup:" + panel.policy).c_str()
                                : "raw scan");

  exp::TextTable table({"Job", "Node", "op", "Requests"});
  for (std::size_t r = 0; r < per_node.rows(); ++r) {
    table.add_row({std::to_string(per_node.get_int(r, "job_id")),
                   per_node.get_string(r, "ProducerName"),
                   per_node.get_string(r, "op"),
                   exp::cell_f(per_node.get_double(r, "count"), 0)});
  }
  std::printf("%s\n", table.render().c_str());

  // Spread summary: min/max per (job, op) across nodes.
  const analysis::DataFrame spread = per_node.group_by(
      {"job_id", "op"},
      {{.column = "count", .op = analysis::Agg::kMin, .out_name = "min"},
       {.column = "count", .op = analysis::Agg::kMax, .out_name = "max"}});
  std::printf("Per-node spread (same job, same op):\n");
  for (std::size_t r = 0; r < spread.rows(); ++r) {
    std::printf("  job %lld %-5s: %g..%g requests/node\n",
                static_cast<long long>(spread.get_int(r, "job_id")),
                spread.get_string(r, "op").c_str(),
                spread.get_double(r, "min"), spread.get_double(r, "max"));
  }
  return 0;
}
