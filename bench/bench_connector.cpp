// Microbenchmark: real per-event cost of the connector hook (format +
// publish) under the three format modes and several sampling rates — the
// software cost that the virtual CostModel abstracts.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/connector.hpp"
#include "ldms/store.hpp"
#include "sim/engine.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"

namespace {

using namespace dlc;

struct Harness {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{}};
  std::shared_ptr<simfs::VariabilityProcess> variability;
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;
  ldms::LdmsDaemon daemon{nullptr, "nid00040"};
  ldms::CountingStore store;
  std::unique_ptr<core::DarshanLdmsConnector> connector;

  explicit Harness(core::ConnectorConfig ccfg) {
    simfs::VariabilityConfig vcfg;
    vcfg.epoch_sigma = 0;
    vcfg.ar_sigma = 0;
    variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
    fs = std::make_unique<simfs::NfsModel>(engine, simfs::NfsConfig{},
                                           variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.node_count = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job);
    store.attach(daemon, ccfg.stream_tag);
    ccfg.charge_costs = false;  // measure real cost, not modelled cost
    connector = std::make_unique<core::DarshanLdmsConnector>(
        *runtime, [this](int) { return &daemon; }, ccfg);
  }

  /// Drives one event through the darshan hook (includes counter updates,
  /// DXT and the connector).
  void one_event() {
    auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
      darshan::RankIo io = rt.rank(0);
      const darshan::Fd fd =
          co_await io.open(darshan::Module::kPosix, "/f", true);
      co_await io.write(fd, 4096);
      co_await io.close(fd);
    };
    engine.spawn(proc(*runtime));
    engine.run();
  }
};

void run_mode(benchmark::State& state, core::FormatMode mode,
              std::uint64_t sample_n) {
  core::ConnectorConfig cfg;
  cfg.format = mode;
  cfg.sample_every_n = sample_n;
  Harness h(cfg);
  for (auto _ : state) {
    h.one_event();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(h.connector->stats().events_seen));
  state.counters["published"] =
      static_cast<double>(h.connector->stats().messages_published);
}

void BM_Connector_SnprintfJson(benchmark::State& state) {
  run_mode(state, core::FormatMode::kSnprintfJson, 1);
}
BENCHMARK(BM_Connector_SnprintfJson);

void BM_Connector_FastJson(benchmark::State& state) {
  run_mode(state, core::FormatMode::kFastJson, 1);
}
BENCHMARK(BM_Connector_FastJson);

void BM_Connector_NoFormat(benchmark::State& state) {
  run_mode(state, core::FormatMode::kNone, 1);
}
BENCHMARK(BM_Connector_NoFormat);

void BM_Connector_Sampling(benchmark::State& state) {
  run_mode(state, core::FormatMode::kSnprintfJson,
           static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Connector_Sampling)->Arg(2)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
