// Ablation: best-effort message loss vs transport queue capacity.
//
// LDMS Streams has no resend, so the per-route queue capacity is the one
// knob between memory footprint on the compute node and data loss under
// I/O bursts.  This study drives the burstiest paper workload (HMMER at
// reduced scale) through the pipeline across queue capacities and reports
// delivered/dropped message counts and the DSOS-visible completeness —
// quantifying the deployment choice DESIGN.md calls out.
#include <cstdio>

#include "exp/specs.hpp"
#include "exp/table.hpp"

using namespace dlc;

int main() {
  std::printf("== Ablation: stream transport queue capacity vs message loss "
              "(HMMER burst) ==\n\n");

  exp::TextTable table({"Queue capacity", "Published", "Stored", "Dropped",
                        "Loss", "Runtime (s)"});
  for (const std::size_t capacity :
       {64ul, 256ul, 1024ul, 4096ul, 16384ul, 65536ul}) {
    exp::ExperimentSpec spec = exp::hmmer_spec(simfs::FsKind::kLustre, 0.05);
    spec.transport.queue_capacity = capacity;
    // Realistic hop budget: the drain rate, not just the buffer, bounds
    // loss; keep the default latency/bandwidth.
    const exp::RunResult r = exp::run_experiment(spec);
    const double loss =
        r.messages ? static_cast<double>(r.messages - r.stored) /
                         static_cast<double>(r.messages) * 100.0
                   : 0.0;
    table.add_row({std::to_string(capacity), exp::cell_u(r.messages),
                   exp::cell_u(r.stored), exp::cell_u(r.dropped),
                   exp::cell_pct(loss), exp::cell_f(r.runtime_s, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Best effort means loss is silent: below the knee, bursts\n"
              "overflow the node-local route and events never reach DSOS.\n");
  return 0;
}
