// Microbenchmark: LDMS Streams publish/subscribe throughput — local bus
// delivery, and real multi-threaded transport across 1..3 hops with
// best-effort drop semantics.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "ldms/stream_bus.hpp"
#include "ldms/threaded.hpp"

namespace {

using namespace dlc::ldms;

StreamMessage sample_message() {
  StreamMessage m;
  m.tag = "darshanConnector";
  m.format = PayloadFormat::kJson;
  m.payload = std::string(600, 'x');  // typical connector message size
  m.producer = "nid00046";
  return m;
}

void BM_BusPublish_NoSubscriber(benchmark::State& state) {
  StreamBus bus;
  const StreamMessage msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.publish(msg));
  }
  state.counters["missed"] = static_cast<double>(bus.missed());
}
BENCHMARK(BM_BusPublish_NoSubscriber);

void BM_BusPublish_OneSubscriber(benchmark::State& state) {
  StreamBus bus;
  std::uint64_t sink = 0;
  bus.subscribe("darshanConnector",
                [&sink](const StreamMessage& m) { sink += m.payload.size(); });
  const StreamMessage msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.publish(msg));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BusPublish_OneSubscriber);

void BM_BusPublish_FanOut(benchmark::State& state) {
  StreamBus bus;
  std::uint64_t sink = 0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    bus.subscribe("darshanConnector",
                  [&sink](const StreamMessage& m) { sink += m.hops; });
  }
  const StreamMessage msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.publish(msg));
  }
}
BENCHMARK(BM_BusPublish_FanOut)->Arg(2)->Arg(8)->Arg(32);

void BM_ThreadedTransport_Hops(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<StreamBus>> buses;
  for (std::size_t i = 0; i <= hops; ++i) {
    buses.push_back(std::make_unique<StreamBus>());
  }
  std::atomic<std::uint64_t> received{0};
  buses.back()->subscribe("darshanConnector", [&](const StreamMessage&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::unique_ptr<ThreadedForwarder>> forwarders;
  for (std::size_t i = 0; i < hops; ++i) {
    forwarders.push_back(std::make_unique<ThreadedForwarder>(
        *buses[i], *buses[i + 1], "darshanConnector", 1 << 18));
  }
  const StreamMessage msg = sample_message();
  for (auto _ : state) {
    buses.front()->publish(msg);
  }
  for (auto& f : forwarders) f->stop();
  std::uint64_t dropped = 0;
  for (auto& f : forwarders) dropped += f->dropped();
  state.counters["received"] = static_cast<double>(received.load());
  state.counters["dropped"] = static_cast<double>(dropped);
}
BENCHMARK(BM_ThreadedTransport_Hops)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
