// Reproduces Fig. 5: mean occurrences of each I/O operation type per
// HACC-IO configuration over five jobs, with 95% confidence intervals —
// the same configuration performs a different amount of I/O across runs.
// The panel is served from the campaign's rollup cells (op_counts
// policy) — the raw event store is never scanned.
#include <cstdio>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "exp/figdata.hpp"
#include "exp/table.hpp"
#include "rollup/serve.hpp"

using namespace dlc;

int main() {
  std::printf("== Fig. 5: mean I/O op occurrences per HACC-IO config "
              "(5 jobs, 95%% CI) ==\n\n");

  struct Config {
    simfs::FsKind fs;
    std::uint64_t particles;
    std::uint64_t seed;
  };
  const Config configs[] = {
      {simfs::FsKind::kNfs, 5'000'000, 11},
      {simfs::FsKind::kNfs, 10'000'000, 12},
      {simfs::FsKind::kLustre, 5'000'000, 13},
      {simfs::FsKind::kLustre, 10'000'000, 14},
  };

  for (const Config& cfg : configs) {
    const exp::FigDataset data =
        exp::hacc_campaign(cfg.fs, cfg.particles, 5, cfg.seed);
    const rollup::PanelResult panel =
        rollup::panel_fig5(data.rollups.get(), *data.db, data.job_ids);
    const analysis::DataFrame& counts = panel.frame;

    std::printf("--- HACC-IO %s / %lluM particles (served from %s) ---\n",
                simfs::fs_kind_name(cfg.fs).data(),
                static_cast<unsigned long long>(cfg.particles / 1'000'000),
                panel.from_rollup ? ("rollup:" + panel.policy).c_str()
                                  : "raw scan");
    std::vector<std::string> labels;
    std::vector<double> means, cis;
    for (std::size_t r = 0; r < counts.rows(); ++r) {
      labels.push_back(counts.get_string(r, "op"));
      means.push_back(counts.get_double(r, "mean_count"));
      cis.push_back(counts.get_double(r, "ci95"));
    }
    std::printf("%s\n",
                analysis::ascii_bar_chart(labels, means, cis).c_str());
  }
  std::printf("Non-zero CI bars show the paper's point: identical app and\n"
              "configuration, different I/O behaviour across jobs.\n");
  return 0;
}
