// Reproduces Table IIc: HMMER hmmbuild (1 node x 32 ranks) on NFS and
// Lustre — the paper's overhead blow-up (+277% NFS, +1277% Lustre) caused
// by per-event JSON formatting, plus two ablations:
//   * no-format (paper's 0.37% experiment: only the Streams publish runs)
//   * fast-itoa formatting (our improvement over snprintf)
// and the paper's proposed mitigation, every-nth-event sampling.
//
// Env knobs: DLC_REPS (default 3), DLC_HMMER_SCALE (default 0.35; 1.0 is
// a full Pfam-A.seed-sized run like the paper's ~3M messages).
#include <cstdio>
#include <cstdlib>

#include "exp/campaign.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"

using namespace dlc;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double x = std::atof(v);
    if (x > 0) return x;
  }
  return fallback;
}

}  // namespace

int main() {
  exp::CampaignConfig campaign;
  campaign.repetitions = static_cast<std::size_t>(env_double("DLC_REPS", 3));
  // Same-weather campaigns: HMMER's overheads are orders of magnitude
  // above file-system drift, and the paper's 0.37% ablation is only
  // meaningful against a matched baseline.
  campaign.baseline_epoch = 9000;
  campaign.connector_epoch = 9000;
  const double scale = env_double("DLC_HMMER_SCALE", 0.35);

  std::printf("== Table IIc: HMMER hmmbuild (1 node x 32 ranks, %zu reps, "
              "scale %.2f) ==\n",
              campaign.repetitions, scale);
  std::printf("paper (full scale): NFS 749.88s -> 2826.01s (+276.86%%), "
              "Lustre 135.40s -> 1863.98s (+1276.67%%); no-format 0.37%%\n\n");

  exp::TextTable table({"Config", "Avg msgs", "Rate (msg/s)", "Darshan (s)",
                        "dC (s)", "% Overhead"});
  for (const auto fs : {simfs::FsKind::kNfs, simfs::FsKind::kLustre}) {
    const std::string fs_name(simfs::fs_kind_name(fs));

    // Paper configuration: snprintf JSON formatting on every event.
    exp::ExperimentSpec spec = exp::hmmer_spec(fs, scale);
    spec.connector.format = core::FormatMode::kSnprintfJson;
    auto row = exp::measure_overhead(fs_name + "/snprintf-json", spec,
                                     campaign);
    table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                   exp::cell_f(row.msg_rate, 1),
                   exp::cell_f(row.darshan_runtime_s),
                   exp::cell_f(row.dc_runtime_s),
                   exp::cell_pct(row.overhead_pct)});

    // Ablation: formatting disabled (publish-only); paper measured 0.37%.
    spec.connector.format = core::FormatMode::kNone;
    row = exp::measure_overhead(fs_name + "/no-format", spec, campaign);
    table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                   exp::cell_f(row.msg_rate, 1),
                   exp::cell_f(row.darshan_runtime_s),
                   exp::cell_f(row.dc_runtime_s),
                   exp::cell_pct(row.overhead_pct)});

    // Our improvement: table-driven itoa formatting.
    spec.connector.format = core::FormatMode::kFastJson;
    row = exp::measure_overhead(fs_name + "/fast-json", spec, campaign);
    table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                   exp::cell_f(row.msg_rate, 1),
                   exp::cell_f(row.darshan_runtime_s),
                   exp::cell_f(row.dc_runtime_s),
                   exp::cell_pct(row.overhead_pct)});

    // Paper's future-work mitigation: publish every 10th event.
    spec.connector.format = core::FormatMode::kSnprintfJson;
    spec.connector.sample_every_n = 10;
    row = exp::measure_overhead(fs_name + "/sample-1-in-10", spec, campaign);
    table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                   exp::cell_f(row.msg_rate, 1),
                   exp::cell_f(row.darshan_runtime_s),
                   exp::cell_f(row.dc_runtime_s),
                   exp::cell_pct(row.overhead_pct)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
