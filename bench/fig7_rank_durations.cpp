// Reproduces Fig. 7: read/write durations per rank for five MPI-IO-TEST
// jobs without collective I/O.  Four jobs cluster; job 2 is anomalous
// (paper: reads 6.75 s vs 0.05 s, writes 78 s vs 54 s).
#include <cstdio>

#include "analysis/figures.hpp"
#include "exp/figdata.hpp"
#include "exp/table.hpp"
#include "rollup/serve.hpp"

using namespace dlc;

int main() {
  std::printf("== Fig. 7: per-rank I/O durations, MPI-IO-TEST independent, "
              "5 jobs ==\n");
  std::printf("paper: job 2 anomalous — reads mean 6.75s vs 0.05s, writes "
              "78s vs 54s\n\n");

  const exp::FigDataset data = exp::mpiio_independent_campaign(5, 42);

  const rollup::PanelResult summary_panel =
      rollup::panel_fig7_summary(data.rollups.get(), *data.db, data.job_ids);
  const analysis::DataFrame& summary = summary_panel.frame;
  std::printf("(served from %s)\n\n",
              summary_panel.from_rollup
                  ? ("rollup:" + summary_panel.policy).c_str()
                  : "raw scan");
  exp::TextTable table({"Job", "op", "Mean dur (s)"});
  for (std::size_t r = 0; r < summary.rows(); ++r) {
    table.add_row({std::to_string(summary.get_int(r, "job_id")),
                   summary.get_string(r, "op"),
                   exp::cell_f(summary.get_double(r, "mean_dur"), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  const std::uint64_t anomalous = analysis::find_anomalous_job(summary);
  std::printf("Detected anomalous job: %llu (scripted: %llu)\n\n",
              static_cast<unsigned long long>(anomalous),
              static_cast<unsigned long long>(data.anomalous_job));

  // Per-rank drill-down for the anomalous job (the figure's x-axis).
  const analysis::DataFrame by_rank =
      rollup::panel_fig7(data.rollups.get(), *data.db, {anomalous}).frame;
  std::printf("Per-rank durations for job %llu (first 10 ranks):\n",
              static_cast<unsigned long long>(anomalous));
  exp::TextTable ranks({"Rank", "op", "Mean (s)", "Total (s)", "Count"});
  std::size_t shown = 0;
  for (std::size_t r = 0; r < by_rank.rows() && shown < 20; ++r) {
    if (by_rank.get_int(r, "rank") >= 10) continue;
    ranks.add_row({std::to_string(by_rank.get_int(r, "rank")),
                   by_rank.get_string(r, "op"),
                   exp::cell_f(by_rank.get_double(r, "mean_dur"), 3),
                   exp::cell_f(by_rank.get_double(r, "total_dur"), 1),
                   exp::cell_f(by_rank.get_double(r, "count"), 0)});
    ++shown;
  }
  std::printf("%s", ranks.render().c_str());
  return 0;
}
