// Microbenchmark: DSOS ingest rate and query latency as a function of the
// joint index used — the paper's point that "each index provided a
// different query performance" (job_rank_time answers rank-over-time
// queries with a pure prefix scan; the time index must scan everything).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/schema_darshan.hpp"
#include "dsos/cluster.hpp"
#include "util/rng.hpp"

namespace {

using namespace dlc;

dsos::Object random_event(const dsos::SchemaPtr& schema, Rng& rng,
                          std::uint64_t jobs, std::int64_t ranks) {
  const std::uint64_t job = 1 + rng.next_u64() % jobs;
  const std::int64_t rank = rng.uniform_int(0, ranks - 1);
  const double ts = rng.uniform(1.6e9, 1.6e9 + 1000.0);
  return dsos::make_object(
      schema,
      {std::string("POSIX"), std::uint64_t{99066}, std::string("nid00046"),
       std::int64_t{0}, std::string("N/A"), rank, std::int64_t{-1},
       rng.next_u64(), std::string("N/A"), std::int64_t{1 << 20},
       std::string("MOD"), job, std::string("write"), std::int64_t{2},
       std::int64_t{0}, std::int64_t{-1}, 0.05, std::int64_t{1 << 20},
       std::int64_t{-1}, std::int64_t{-1}, std::int64_t{-1},
       std::string("N/A"), std::int64_t{-1}, ts});
}

void BM_DsosIngest(benchmark::State& state) {
  const auto schema = core::darshan_data_schema();
  Rng rng(5);
  dsos::ClusterConfig cfg;
  cfg.shard_count = static_cast<std::size_t>(state.range(0));
  dsos::DsosCluster cluster(cfg);
  cluster.register_schema(schema);
  for (auto _ : state) {
    cluster.insert(random_event(schema, rng, 8, 32));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DsosIngest)->Arg(1)->Arg(4)->Arg(8);

struct QueryFixture {
  std::shared_ptr<dsos::DsosCluster> cluster;
  dsos::SchemaPtr schema;

  explicit QueryFixture(std::size_t events) {
    schema = core::darshan_data_schema();
    dsos::ClusterConfig cfg;
    cfg.shard_count = 4;
    cluster = std::make_shared<dsos::DsosCluster>(cfg);
    cluster->register_schema(schema);
    Rng rng(11);
    for (std::size_t i = 0; i < events; ++i) {
      cluster->insert(random_event(schema, rng, 8, 32));
    }
  }
};

// Query: one rank of one job over time (the paper's example query).
const dsos::Filter kRankQuery{
    {"job_id", dsos::Cmp::kEq, std::uint64_t{3}},
    {"rank", dsos::Cmp::kEq, std::int64_t{7}},
};

void BM_DsosQuery_JobRankTime(benchmark::State& state) {
  static const QueryFixture fixture(100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.cluster->query("darshan_data", "job_rank_time", kRankQuery));
  }
}
BENCHMARK(BM_DsosQuery_JobRankTime);

void BM_DsosQuery_JobTimeRank(benchmark::State& state) {
  // Same filter via job_time_rank: job folds into the prefix, rank is a
  // residual condition over the whole job -> more entries scanned.
  static const QueryFixture fixture(100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.cluster->query("darshan_data", "job_time_rank", kRankQuery));
  }
}
BENCHMARK(BM_DsosQuery_JobTimeRank);

void BM_DsosQuery_TimeOnly(benchmark::State& state) {
  // Worst case: the plain time index cannot use the filter at all.
  static const QueryFixture fixture(100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.cluster->query("darshan_data", "time", kRankQuery));
  }
}
BENCHMARK(BM_DsosQuery_TimeOnly);

}  // namespace

BENCHMARK_MAIN();
