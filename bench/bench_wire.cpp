// Wire-format benchmark: bytes/event and events/sec for the three
// connector wire formats (json | binary | binary_batched).
//
// Part 1 runs MPI-IO-TEST through the full virtual pipeline once per
// format and reports the on-wire volume (the paper lists reducing message
// size as future work; the acceptance bar here is binary_batched using
// >= 3x fewer bytes/event than JSON).  Part 2 pushes pre-formatted
// payloads through 1..3 real-thread ThreadedForwarder hops and reports
// delivered events/sec per format.
//
// Env knobs: DLC_WIRE_NODES (default 22), DLC_WIRE_ITERS (default 10),
// DLC_WIRE_EVENTS (part 2 event count, default 50000).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/connector.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"
#include "ldms/threaded.hpp"
#include "sim/engine.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"
#include "workloads/mpi_io_test.hpp"
#include "wire/batcher.hpp"
#include "wire/codec.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

// ------------------------------------------------ part 1: bytes/event ----

struct WireVolume {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double bytes_per_event = 0.0;
};

WireVolume run_pipeline(core::WireFormat wf, std::size_t nodes,
                        std::size_t iters) {
  exp::ExperimentSpec spec = exp::mpi_io_test_spec(simfs::FsKind::kNfs, true);
  spec.node_count = nodes;
  workloads::MpiIoTestConfig cfg;
  cfg.block_size = 16ull * 1024 * 1024;
  cfg.iterations = iters;
  cfg.collective = true;
  cfg.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(cfg);
  spec.connector.wire_format = wf;
  const exp::RunResult r = exp::run_experiment(spec);
  WireVolume v;
  v.events = r.events_published;
  v.messages = r.messages;
  v.bytes = r.bytes_published;
  v.bytes_per_event =
      v.events ? static_cast<double>(v.bytes) / static_cast<double>(v.events)
               : 0.0;
  return v;
}

// --------------------------------------------- part 2: events/sec x hop ----

/// Minimal darshan rig so part 2's JSON payloads come from the real
/// connector formatter rather than a synthetic approximation.
struct FormatRig {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{}};
  std::shared_ptr<simfs::VariabilityProcess> variability;
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;

  FormatRig() {
    simfs::VariabilityConfig vcfg;
    vcfg.epoch_sigma = 0.0;
    vcfg.ar_sigma = 0.0;
    variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
    fs = std::make_unique<simfs::NfsModel>(engine, simfs::NfsConfig{},
                                           variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.node_count = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job);
  }
};

std::vector<darshan::IoEvent> synth_events(std::size_t n,
                                           const std::string& path) {
  std::vector<darshan::IoEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    darshan::IoEvent e;
    e.module = darshan::Module::kMpiio;
    e.op = i % 100 == 0 ? darshan::Op::kOpen
           : i % 2     ? darshan::Op::kRead
                       : darshan::Op::kWrite;
    if (e.op == darshan::Op::kOpen) e.file_path = &path;
    e.rank = 0;
    e.record_id = 9'184'815'607'937'547'264ull + (i % 4);
    e.max_byte = static_cast<std::int64_t>(i * 4096);
    e.switches = static_cast<std::int64_t>(i % 7);
    e.flushes = -1;
    e.cnt = static_cast<std::int64_t>(i % 100);
    e.offset = i * 4096;
    e.length = 4096;
    e.end = static_cast<SimTime>(i) * 50 * kMicrosecond;
    e.start = e.end - 20 * kMicrosecond;
    events.push_back(e);
  }
  return events;
}

std::vector<std::string> payloads_for(core::WireFormat wf,
                                      const FormatRig& rig,
                                      const std::vector<darshan::IoEvent>& ev) {
  const SimEpoch epoch;
  std::vector<std::string> payloads;
  if (wf == core::WireFormat::kJson) {
    json::Writer w;
    payloads.reserve(ev.size());
    for (const auto& e : ev) {
      core::DarshanLdmsConnector::format_message(w, e, *rig.runtime, epoch);
      payloads.push_back(w.str());
    }
    return payloads;
  }
  wire::FrameEncoder enc(
      core::DarshanLdmsConnector::encode_context(*rig.runtime, epoch));
  const std::string producer = rig.job->producer_name(0);
  const std::size_t batch =
      wf == core::WireFormat::kBinaryBatched ? wire::BatchConfig{}.max_events
                                             : 1;
  for (const auto& e : ev) {
    enc.add(e, producer);
    if (enc.event_count() >= batch) payloads.push_back(enc.take_frame());
  }
  if (!enc.empty()) payloads.push_back(enc.take_frame());
  return payloads;
}

struct HopResult {
  double events_per_sec = 0.0;
  std::uint64_t wire_bytes = 0;
};

HopResult push_through_hops(const std::vector<std::string>& payloads,
                            std::size_t events, std::size_t hops,
                            ldms::PayloadFormat format) {
  std::vector<std::unique_ptr<ldms::StreamBus>> buses;
  for (std::size_t i = 0; i <= hops; ++i) {
    buses.push_back(std::make_unique<ldms::StreamBus>());
  }
  std::atomic<std::uint64_t> arrived{0};
  buses.back()->subscribe("w", [&](const ldms::StreamMessage&) {
    arrived.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::unique_ptr<ldms::ThreadedForwarder>> forwarders;
  for (std::size_t i = 0; i < hops; ++i) {
    forwarders.push_back(std::make_unique<ldms::ThreadedForwarder>(
        *buses[i], *buses[i + 1], "w", 1 << 20));
  }

  HopResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& p : payloads) {
    ldms::StreamMessage msg;
    msg.tag = "w";
    msg.format = format;
    msg.payload = p;
    buses[0]->publish(msg);
    r.wire_bytes += p.size();
  }
  while (arrived.load(std::memory_order_relaxed) < payloads.size()) {
    std::this_thread::yield();
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& f : forwarders) f->stop();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.events_per_sec =
      secs > 0 ? static_cast<double>(events) / secs : 0.0;
  return r;
}

}  // namespace

int main() {
  const std::size_t nodes = env_size("DLC_WIRE_NODES", 22);
  const std::size_t iters = env_size("DLC_WIRE_ITERS", 10);
  const std::size_t part2_events = env_size("DLC_WIRE_EVENTS", 50'000);

  const core::WireFormat kFormats[] = {core::WireFormat::kJson,
                                       core::WireFormat::kBinary,
                                       core::WireFormat::kBinaryBatched};

  std::printf("== bench_wire part 1: MPI-IO-TEST/NFS, %zu nodes, %zu iters, "
              "full virtual pipeline ==\n",
              nodes, iters);
  exp::TextTable t1({"Wire format", "Events", "Messages", "Wire bytes",
                     "Bytes/event", "vs json"});
  double json_bpe = 0.0, batched_bpe = 0.0;
  for (const auto wf : kFormats) {
    const WireVolume v = run_pipeline(wf, nodes, iters);
    if (wf == core::WireFormat::kJson) json_bpe = v.bytes_per_event;
    if (wf == core::WireFormat::kBinaryBatched) batched_bpe = v.bytes_per_event;
    t1.add_row({std::string(core::wire_format_name(wf)),
                exp::cell_u(v.events), exp::cell_u(v.messages),
                exp::cell_u(v.bytes),
                exp::cell_f(v.bytes_per_event, 1),
                json_bpe > 0 && v.bytes_per_event > 0
                    ? exp::cell_f(json_bpe / v.bytes_per_event, 1) + "x"
                    : "-"});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("== bench_wire part 2: ThreadedForwarder chains, %zu events "
              "==\n",
              part2_events);
  FormatRig rig;
  const std::string path = "/fscratch/mpi-io-test.out";
  const auto events = synth_events(part2_events, path);
  exp::TextTable t2({"Wire format", "Hops", "Messages", "Wire MB",
                     "Events/sec"});
  for (const auto wf : kFormats) {
    const auto payloads = payloads_for(wf, rig, events);
    const auto format = wf == core::WireFormat::kJson
                            ? ldms::PayloadFormat::kJson
                            : ldms::PayloadFormat::kBinary;
    for (std::size_t hops = 1; hops <= 3; ++hops) {
      const HopResult r =
          push_through_hops(payloads, events.size(), hops, format);
      t2.add_row({std::string(core::wire_format_name(wf)),
                  exp::cell_u(hops), exp::cell_u(payloads.size()),
                  exp::cell_f(static_cast<double>(r.wire_bytes) / 1.0e6, 2),
                  exp::cell_f(r.events_per_sec, 0)});
    }
  }
  std::printf("%s\n", t2.render().c_str());

  const double ratio = batched_bpe > 0 ? json_bpe / batched_bpe : 0.0;
  std::printf("binary_batched bytes/event reduction vs json: %.1fx "
              "(acceptance bar: >= 3x)\n",
              ratio);
  if (ratio < 3.0) {
    std::printf("FAIL: batched wire format does not meet the 3x bar\n");
    return 1;
  }
  return 0;
}
