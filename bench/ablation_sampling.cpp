// Ablation: the paper's proposed every-nth-event sampling, quantified.
//
// The future-work section proposes letting users "collect every n-th I/O
// event" to trade fidelity for overhead.  This study sweeps n (and the
// complementary min-publish-interval rate limiter) on the HMMER workload
// and reports both sides of the trade: runtime overhead vs how much of
// the I/O activity (events and bytes) the stored data still describes.
#include <cstdio>

#include "analysis/figures.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"

using namespace dlc;

namespace {

struct Fidelity {
  double event_fraction;
  double byte_fraction;
};

Fidelity stored_fidelity(const exp::RunResult& run,
                         const exp::RunResult& full) {
  auto bytes_of = [](const exp::RunResult& r) {
    double total = 0;
    if (!r.dsos) return total;
    for (const auto* obj : r.dsos->query("darshan_data", "time")) {
      const auto len = obj->as_int("seg_len");
      if (len > 0) total += static_cast<double>(len);
    }
    return total;
  };
  Fidelity f;
  f.event_fraction = full.stored
                         ? static_cast<double>(run.stored) /
                               static_cast<double>(full.stored)
                         : 0.0;
  const double full_bytes = bytes_of(full);
  f.byte_fraction = full_bytes > 0 ? bytes_of(run) / full_bytes : 0.0;
  return f;
}

}  // namespace

int main() {
  std::printf("== Ablation: every-nth sampling & rate limiting vs overhead "
              "and fidelity (HMMER) ==\n\n");
  const double scale = 0.05;

  exp::ExperimentSpec base = exp::hmmer_spec(simfs::FsKind::kLustre, scale);
  base.decode_to_dsos = true;

  exp::ExperimentSpec baseline = base;
  baseline.connector_enabled = false;
  const exp::RunResult darshan_only = exp::run_experiment(baseline);

  exp::ExperimentSpec full_spec = base;
  const exp::RunResult full = exp::run_experiment(full_spec);

  exp::TextTable table({"Mitigation", "Messages", "Overhead", "Events kept",
                        "Bytes described"});
  auto add_row = [&](const std::string& label, const exp::RunResult& r) {
    const Fidelity f = stored_fidelity(r, full);
    const double overhead =
        (r.runtime_s - darshan_only.runtime_s) / darshan_only.runtime_s * 100;
    table.add_row({label, exp::cell_u(r.stored), exp::cell_pct(overhead, 1),
                   exp::cell_pct(f.event_fraction * 100, 1),
                   exp::cell_pct(f.byte_fraction * 100, 1)});
  };

  add_row("none (n=1)", full);
  for (const std::uint64_t n : {2ull, 10ull, 100ull}) {
    exp::ExperimentSpec spec = base;
    spec.connector.sample_every_n = n;
    add_row("sample 1-in-" + std::to_string(n), exp::run_experiment(spec));
  }
  for (const SimDuration interval : {100 * kMillisecond, kSecond}) {
    exp::ExperimentSpec spec = base;
    spec.connector.min_publish_interval = interval;
    add_row("rate limit " + format_duration(interval),
            exp::run_experiment(spec));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("paper baseline: snprintf formatting on every event cost "
              "+277%%..+1277%% on full-scale HMMER.\n");
  return 0;
}
