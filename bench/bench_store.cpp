// Durable-store benchmark: the cost of durability and the payoff of
// persisted zone maps, plus the crash-recovery acceptance bar.
//
// Phase 1 ingests the SAME event stream under each DARSHAN_LDMS_STORE_MODE
// (memory / wal / tiered) with the store mounted under the DSOS container
// API, timing insert + group-commit + final flush.  Each mode is timed
// three times and the row reports the median run.  --check adds the fatal
// perf gate: durable-mode ingest (wal and tiered) must hold >= 0.5x the
// memory-mode events/sec — the WAL's group commit is supposed to amortize
// the write, not halve the pipeline (Release builds only; timing gates are
// meaningless under sanitizers).
//
// Phase 2 seals two disjoint job/time partitions into separate segments
// and issues cold queries against the persisted zone maps.  ALWAYS fatal:
// a disjoint-partition filter must prune without decoding a single data
// block, and a fully-disjoint filter must be answered entirely from
// segment headers (read == 0).  Pruning that decodes cold data is a
// correctness bug in the at-rest format, not a tuning problem.
//
// Phase 3 runs the FaultPlan crash campaigns (storecrash at commit, seal,
// compaction write, compaction swap), reopening after each simulated death
// and asserting the ROADMAP bar: zero acknowledged-event loss and
// byte-identical query results against an uninterrupted baseline.  ALWAYS
// fatal.
//
// Writes BENCH_store.json (override path: DLC_BENCH_OUT).  Scale knob:
// DLC_STORE_EVENTS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dsos/cluster.hpp"
#include "dsos/schema.hpp"
#include "exp/table.hpp"
#include "json/writer.hpp"
#include "relia/fault.hpp"
#include "store/store.hpp"

using namespace dlc;

namespace {

namespace fsys = std::filesystem;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dsos::SchemaPtr bench_schema() {
  return dsos::SchemaBuilder("darshan_data")
      .attr("job_id", dsos::AttrType::kUint64)
      .attr("rank", dsos::AttrType::kInt64)
      .attr("timestamp", dsos::AttrType::kTimestamp)
      .attr("bytes", dsos::AttrType::kUint64)
      .attr("op", dsos::AttrType::kString)
      .index("job_rank_time", {"job_id", "rank", "timestamp"})
      .build();
}

std::vector<dsos::Object> make_events(const dsos::SchemaPtr& s,
                                      std::size_t n, std::uint64_t job = 1,
                                      std::int64_t ranks = 16,
                                      double t0 = 1.6e9) {
  std::vector<dsos::Object> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(dsos::make_object(
        s, {job, static_cast<std::int64_t>(i) % ranks,
            t0 + 0.001 * static_cast<double>(i), std::uint64_t{4096 + i},
            std::string(i % 2 ? "write" : "read")}));
  }
  return events;
}

dsos::ClusterConfig cluster_config(std::size_t shards) {
  dsos::ClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.parallel_query = false;
  return cfg;
}

std::string fingerprint(const dsos::DsosCluster& db) {
  std::string out;
  for (const dsos::Object* obj : db.query("darshan_data", "job_rank_time")) {
    out += std::to_string(obj->as_uint("job_id")) + "/";
    out += std::to_string(obj->as_int("rank")) + "/";
    out += std::to_string(obj->as_double("timestamp")) + "/";
    out += std::to_string(obj->as_uint("bytes")) + "/";
    out += obj->as_string("op") + ";";
  }
  return out;
}

/// Scratch directory under the system temp dir; wiped per use.
class BenchDir {
 public:
  explicit BenchDir(const std::string& tag) {
    path_ = (fsys::temp_directory_path() / ("dlc_bench_store_" + tag))
                .string();
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  void wipe() {
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

store::StoreConfig mode_config(store::StoreMode mode,
                               const std::string& dir) {
  store::StoreConfig cfg;
  cfg.mode = mode;
  cfg.dir = dir;
  cfg.wal_group_records = 64;
  cfg.seal_bytes = 256 * 1024;
  return cfg;
}

/// One full ingest under `mode`: open -> insert everything -> flush ->
/// close, wall-clock timed end to end (durability included).
double time_ingest(store::StoreMode mode, const std::string& dir,
                   const dsos::SchemaPtr& schema,
                   const std::vector<dsos::Object>& events,
                   std::size_t shards) {
  dsos::DsosCluster db(cluster_config(shards));
  db.register_schema(schema);
  store::Store st(mode_config(mode, dir));
  const double t0 = now_seconds();
  st.open(db);
  for (const dsos::Object& e : events) db.insert(e);
  st.flush_all();
  const double dt = now_seconds() - t0;
  st.close();
  return dt;
}

constexpr std::size_t kReps = 3;

double median_ingest_seconds(store::StoreMode mode, BenchDir& dir,
                             const dsos::SchemaPtr& schema,
                             const std::vector<dsos::Object>& events,
                             std::size_t shards) {
  std::vector<double> times;
  times.reserve(kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    dir.wipe();  // every run starts from an empty store directory
    times.push_back(time_ingest(mode, dir.path(), schema, events, shards));
  }
  std::sort(times.begin(), times.end());
  return times[kReps / 2];
}

struct CampaignResult {
  std::string plan;
  bool fired = false;
  bool zero_acked_loss = false;
  bool byte_identical = false;
  std::uint64_t torn_tails = 0;
  std::uint64_t quarantined = 0;

  bool ok() const { return fired && zero_acked_loss && byte_identical; }
};

/// One FaultPlan crash campaign: ingest until the armed crash fires,
/// reopen a fresh store on the same directory, resubmit past the
/// recovered frontier, compare against the uninterrupted baseline.
CampaignResult run_campaign(const std::string& plan_text,
                            store::StoreConfig cfg, BenchDir& dir,
                            const dsos::SchemaPtr& schema,
                            const std::vector<dsos::Object>& events,
                            std::size_t shards, bool compact_after) {
  CampaignResult result;
  result.plan = plan_text;
  dir.wipe();
  cfg.dir = dir.path();

  std::string want;
  {
    dsos::DsosCluster baseline(cluster_config(shards));
    baseline.register_schema(schema);
    for (const dsos::Object& e : events) baseline.insert(e);
    want = fingerprint(baseline);
  }

  const relia::FaultPlan plan = relia::parse_fault_plan(plan_text);
  if (!plan.ok()) return result;

  std::vector<std::uint64_t> acked(shards, 0);
  {
    dsos::DsosCluster db(cluster_config(shards));
    db.register_schema(schema);
    store::Store st(cfg);
    st.open(db);
    st.faults().arm_from_plan(plan);
    try {
      for (const dsos::Object& e : events) db.insert(e);
      st.flush_all();
      st.seal_all();
      if (compact_after) st.compact_once();
    } catch (const store::StoreCrash&) {
      result.fired = true;
    }
    if (!result.fired) return result;
    for (std::size_t sh = 0; sh < shards; ++sh) {
      acked[sh] = st.durable_seq(sh);
    }
  }

  dsos::DsosCluster db(cluster_config(shards));
  db.register_schema(schema);
  store::Store st(cfg);
  const store::RecoveryReport rep = st.open(db);
  result.torn_tails = rep.torn_tails;
  result.quarantined = rep.quarantined_segments;
  result.zero_acked_loss = true;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    if (rep.high_seq[sh] < acked[sh]) result.zero_acked_loss = false;
  }
  // At-least-once driver: replay the stream, skipping what recovered.
  std::vector<std::uint64_t> pos(shards, 0);
  for (const dsos::Object& e : events) {
    dsos::Object copy = e;
    const std::size_t sh = db.route(copy);
    if (++pos[sh] <= rep.high_seq[sh]) continue;
    db.insert_at(sh, std::move(copy));
  }
  st.flush_all();
  result.byte_identical = fingerprint(db) == want;
  st.close();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const std::size_t events_n = env_size("DLC_STORE_EVENTS", 40000);
  constexpr std::size_t kShards = 2;
  const auto schema = bench_schema();
  const auto events = make_events(schema, events_n);

  std::printf("== durable store: ingest cost, zone-map pruning, crash "
              "recovery ==\n\n");
  std::printf("%zu events, %zu shards, group commit every 64 rows, "
              "median of %zu runs\n\n",
              events_n, kShards, kReps);

  bool ok = true;
  const auto gate = [&](bool cond, const std::string& what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };

  // Phase 1 — ingest throughput per durability mode.
  BenchDir dir("ingest");
  struct ModeRow {
    const char* name;
    store::StoreMode mode;
    double eps = 0.0;
    double relative = 1.0;
  };
  std::vector<ModeRow> modes = {
      {"memory", store::StoreMode::kMemory},
      {"wal", store::StoreMode::kWal},
      {"tiered", store::StoreMode::kTiered},
  };
  for (ModeRow& row : modes) {
    const double s =
        median_ingest_seconds(row.mode, dir, schema, events, kShards);
    row.eps = static_cast<double>(events_n) / s;
  }
  for (ModeRow& row : modes) row.relative = row.eps / modes[0].eps;

  exp::TextTable table({"Mode", "Events/s", "vs memory"});
  for (const ModeRow& row : modes) {
    table.add_row({row.name, exp::cell_f(row.eps, 0),
                   exp::cell_f(row.relative, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Phase 2 — persisted zone maps on cold queries (always fatal).
  store::Store::ColdQueryStats disjoint_stats;
  store::Store::ColdQueryStats all_pruned_stats;
  std::size_t disjoint_hits = 0;
  std::size_t all_pruned_hits = 0;
  {
    BenchDir cold_dir("cold");
    dsos::DsosCluster db(cluster_config(1));
    db.register_schema(schema);
    store::Store st(mode_config(store::StoreMode::kTiered, cold_dir.path()));
    st.open(db);
    const std::size_t half = std::max<std::size_t>(events_n / 2, 1);
    // Two disjoint partitions: job 1 around t=1.6e9, job 2 around 3.2e9.
    for (const auto& e : make_events(schema, half, 1, 16, 1.6e9)) {
      db.insert(e);
    }
    st.flush_all();
    st.seal_all();
    for (const auto& e : make_events(schema, half, 2, 16, 3.2e9)) {
      db.insert(e);
    }
    st.flush_all();
    st.seal_all();

    disjoint_hits =
        st.query_cold("darshan_data",
                      {{"job_id", dsos::Cmp::kEq, std::uint64_t{2}}},
                      &disjoint_stats)
            .size();
    all_pruned_hits =
        st.query_cold("darshan_data",
                      {{"timestamp", dsos::Cmp::kGt, 9.9e9}},
                      &all_pruned_stats)
            .size();
    st.close();

    std::printf("Cold query over %llu segments:\n",
                static_cast<unsigned long long>(disjoint_stats.segments_total));
    std::printf("  job filter:  %zu hits, %llu pruned, %llu blocks read\n",
                disjoint_hits,
                static_cast<unsigned long long>(disjoint_stats.pruned),
                static_cast<unsigned long long>(disjoint_stats.read));
    std::printf("  time filter: %zu hits, %llu pruned, %llu blocks read\n\n",
                all_pruned_hits,
                static_cast<unsigned long long>(all_pruned_stats.pruned),
                static_cast<unsigned long long>(all_pruned_stats.read));
  }

  // Phase 3 — crash campaigns (always fatal).
  const std::size_t campaign_events = std::min<std::size_t>(events_n, 2000);
  const auto campaign_stream = make_events(schema, campaign_events);
  store::StoreConfig crash_cfg = mode_config(store::StoreMode::kTiered, "");
  crash_cfg.seal_bytes = 2048;          // seals happen during ingest
  crash_cfg.compact_min_bytes = 1 << 20;  // everything is a candidate
  BenchDir crash_dir("crash");
  std::vector<CampaignResult> campaigns;
  campaigns.push_back(run_campaign(
      "storecrash commit after 4", mode_config(store::StoreMode::kWal, ""),
      crash_dir, schema, campaign_stream, kShards, false));
  campaigns.push_back(run_campaign("storecrash commit after 7", crash_cfg,
                                   crash_dir, schema, campaign_stream,
                                   kShards, false));
  campaigns.push_back(run_campaign("storecrash seal after 2", crash_cfg,
                                   crash_dir, schema, campaign_stream,
                                   kShards, false));
  campaigns.push_back(run_campaign("storecrash compact after 1", crash_cfg,
                                   crash_dir, schema, campaign_stream,
                                   kShards, true));
  campaigns.push_back(run_campaign("storecrash compact_swap after 1",
                                   crash_cfg, crash_dir, schema,
                                   campaign_stream, kShards, true));

  std::printf("Crash campaigns (%zu events each):\n", campaign_events);
  for (const CampaignResult& c : campaigns) {
    std::printf("  %-32s fired=%s acked-loss=%s identical=%s "
                "(torn=%llu quarantined=%llu)\n",
                c.plan.c_str(), c.fired ? "yes" : "NO",
                c.zero_acked_loss ? "zero" : "LOST",
                c.byte_identical ? "yes" : "NO",
                static_cast<unsigned long long>(c.torn_tails),
                static_cast<unsigned long long>(c.quarantined));
  }
  std::printf("\n");

  // BENCH_store.json — the benchmark trajectory artifact.
  {
    const char* out_path = std::getenv("DLC_BENCH_OUT");
    const std::string path = out_path ? out_path : "BENCH_store.json";
    json::Writer w;
    w.begin_object();
    w.member("bench", "store");
    w.member("events", static_cast<std::uint64_t>(events_n));
    w.member("shards", static_cast<std::uint64_t>(kShards));
    w.member("runs_per_config", static_cast<std::uint64_t>(kReps));
    w.member("timing", "median");
    w.key("modes");
    w.begin_array();
    for (const ModeRow& row : modes) {
      w.begin_object();
      w.member("mode", row.name);
      w.member("events_per_sec", row.eps);
      w.member("relative_to_memory", row.relative);
      w.end_object();
    }
    w.end_array();
    w.key("cold_query");
    w.begin_object();
    w.member("segments", disjoint_stats.segments_total);
    w.member("disjoint_filter_pruned", disjoint_stats.pruned);
    w.member("disjoint_filter_read", disjoint_stats.read);
    w.member("all_pruned_filter_read", all_pruned_stats.read);
    w.end_object();
    w.key("crash_campaigns");
    w.begin_array();
    for (const CampaignResult& c : campaigns) {
      w.begin_object();
      w.member("plan", c.plan);
      w.member("fired", c.fired);
      w.member("zero_acked_loss", c.zero_acked_loss);
      w.member("byte_identical", c.byte_identical);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("wrote %s\n\n", path.c_str());
  }

  // Correctness gates: ALWAYS fatal.
  gate(disjoint_stats.pruned >= 1 && disjoint_stats.read == 1,
       "disjoint-partition filter prunes the other partition's segment");
  gate(disjoint_hits == std::max<std::size_t>(events_n / 2, 1),
       "cold query returns every row of the matching partition");
  gate(all_pruned_stats.read == 0 && all_pruned_hits == 0,
       "fully-disjoint filter is answered from headers (0 blocks read)");
  for (const CampaignResult& c : campaigns) {
    gate(c.ok(), "crash campaign \"" + c.plan +
                     "\": fired, zero acked loss, byte-identical");
  }
  if (check) {
    for (const ModeRow& row : modes) {
      if (row.mode == store::StoreMode::kMemory) continue;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s-mode ingest >= 0.5x memory mode (got %.2fx)",
                    row.name, row.relative);
      gate(row.relative >= 0.5, buf);
    }
  }

  if (!ok) {
    std::printf("\nstore gate FAILED\n");
    return 1;
  }
  std::printf("\nstore gate passed\n");
  return 0;
}
