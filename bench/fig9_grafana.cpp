// Reproduces Fig. 9: the Grafana dashboard view of the anomalous job —
// per-time-bucket operation counts and byte volumes aggregated across
// ranks, plus the Grafana panel JSON the DSOS datasource would serve.
#include <cstdio>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "exp/figdata.hpp"
#include "exp/table.hpp"
#include "rollup/serve.hpp"
#include "util/time.hpp"

using namespace dlc;

int main() {
  std::printf("== Fig. 9: Grafana timeline of the anomalous job (bytes and "
              "op counts per 10s bucket, all ranks) ==\n");
  std::printf("paper: write phases with >20GB moments; reads ~12GB at the "
              "end\n\n");

  const exp::FigDataset data = exp::mpiio_independent_campaign(5, 42);
  const rollup::PanelResult panel =
      rollup::panel_fig9(data.rollups.get(), *data.db, data.anomalous_job,
                         10.0);
  const analysis::DataFrame& buckets = panel.frame;
  std::printf("(served from %s)\n\n",
              panel.from_rollup ? ("rollup:" + panel.policy).c_str()
                                : "raw scan");

  exp::TextTable table({"Bucket (s)", "op", "Ops", "Bytes"});
  double write_total = 0, read_total = 0, write_peak = 0;
  for (std::size_t r = 0; r < buckets.rows(); ++r) {
    const double bytes = buckets.get_double(r, "bytes");
    const bool is_write = buckets.get_string(r, "op") == "write";
    (is_write ? write_total : read_total) += bytes;
    if (is_write) write_peak = std::max(write_peak, bytes);
    table.add_row({exp::cell_f(buckets.get_double(r, "bucket_s"), 0),
                   buckets.get_string(r, "op"),
                   exp::cell_f(buckets.get_double(r, "count"), 0),
                   format_bytes(static_cast<std::uint64_t>(bytes))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("totals: written %s, read %s; peak write bucket %s\n\n",
              format_bytes(static_cast<std::uint64_t>(write_total)).c_str(),
              format_bytes(static_cast<std::uint64_t>(read_total)).c_str(),
              format_bytes(static_cast<std::uint64_t>(write_peak)).c_str());

  // The Grafana panel JSON a dashboard would fetch from the DSOS plugin.
  const std::string panel_json = analysis::grafana_panel_json(
      buckets, "bucket_s", "bytes", "op",
      "MPI-IO-TEST job bytes per op (Darshan-LDMS Connector)");
  std::printf("grafana panel JSON (%zu bytes): %.120s...\n", panel_json.size(),
              panel_json.c_str());
  return 0;
}
