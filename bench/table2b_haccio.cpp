// Reproduces Table IIb: HACC-IO on NFS and Lustre with 5M / 10M particles
// per rank — messages, rates, Darshan vs dC runtimes, % overhead.
#include <cstdio>
#include <cstdlib>

#include "exp/campaign.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"

using namespace dlc;

int main() {
  exp::CampaignConfig campaign;
  if (const char* v = std::getenv("DLC_REPS")) {
    const long n = std::atol(v);
    if (n > 0) campaign.repetitions = static_cast<std::size_t>(n);
  }
  campaign.baseline_epoch = 5000;
  campaign.connector_epoch = 6000;

  std::printf("== Table IIb: HACC-IO (16 nodes, %zu reps) ==\n",
              campaign.repetitions);
  std::printf("paper: NFS/5M 882.46s (-12.15%%)  NFS/10M 1353.87s (+0.84%%)  "
              "Lustre/5M 417.14s (+12.01%%)  Lustre/10M 1616.87s (-36.45%%)\n\n");

  exp::TextTable table({"Config", "Avg msgs", "Rate (msg/s)", "Darshan (s)",
                        "dC (s)", "% Overhead", "Drops"});
  for (const auto fs : {simfs::FsKind::kNfs, simfs::FsKind::kLustre}) {
    for (const std::uint64_t particles : {5'000'000ull, 10'000'000ull}) {
      exp::ExperimentSpec spec = exp::hacc_io_spec(fs, particles);
      const std::string label = std::string(simfs::fs_kind_name(fs)) + "/" +
                                std::to_string(particles / 1'000'000) + "M";
      const exp::OverheadRow row =
          exp::measure_overhead(label, spec, campaign);
      table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                     exp::cell_f(row.msg_rate, 1),
                     exp::cell_f(row.darshan_runtime_s),
                     exp::cell_f(row.dc_runtime_s),
                     exp::cell_pct(row.overhead_pct),
                     exp::cell_f(row.dropped, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Note: negative overheads reproduce the paper's artefact — the\n"
              "baseline campaign ran under different file-system weather\n"
              "(epoch seeds %llu vs %llu).\n\n",
              static_cast<unsigned long long>(campaign.baseline_epoch),
              static_cast<unsigned long long>(campaign.connector_epoch));

  // The methodology the paper proposes but could not run: interleave each
  // Darshan-only run with a dC run so the weather term pairs out.
  exp::CampaignConfig interleaved = campaign;
  interleaved.interleaved = true;
  std::printf("== Interleaved campaign (paper future work): paired runs, "
              "same weather ==\n\n");
  exp::TextTable clean({"Config", "Darshan (s)", "dC (s)", "% Overhead"});
  for (const auto fs : {simfs::FsKind::kNfs, simfs::FsKind::kLustre}) {
    for (const std::uint64_t particles : {5'000'000ull, 10'000'000ull}) {
      exp::ExperimentSpec spec = exp::hacc_io_spec(fs, particles);
      const std::string label = std::string(simfs::fs_kind_name(fs)) + "/" +
                                std::to_string(particles / 1'000'000) + "M";
      const exp::OverheadRow row =
          exp::measure_overhead(label, spec, interleaved);
      clean.add_row({row.label, exp::cell_f(row.darshan_runtime_s),
                     exp::cell_f(row.dc_runtime_s),
                     exp::cell_pct(row.overhead_pct)});
    }
  }
  std::printf("%s", clean.render().c_str());
  std::printf("With pairing, the connector's true cost is consistently small "
              "and positive.\n");
  return 0;
}
