// Delivery-guarantee benchmark: best-effort vs at-least-once under an
// identical fault schedule.
//
// Drives MPI-IO-TEST through the full pipeline twice — same workload,
// seed and fault plan (one compute-node daemon crash plus one
// aggregator-link partition) — differing only in
// ConnectorConfig::delivery.  Reports per-mode delivered/lost event
// counts and the transport bytes/event, so the cost of the guarantee
// (spool + redelivery duplicates) is a number, not a claim.
//
// --soak turns the run into a pass/fail gate for CI:
//   * best-effort must reproduce measurable loss under the faults,
//   * at-least-once must deliver every event (zero lost, duplicates
//     deduped downstream),
//   * the at-least-once byte overhead must stay under +50%.
//
// Scale knobs (env): DLC_RELIA_NODES, DLC_RELIA_ITERS.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/specs.hpp"
#include "exp/table.hpp"
#include "relia/fault.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

// The reference schedule from the delivery-guarantee design: one compute
// node's daemon crashes mid-run, and later the head-node aggregator loses
// its link to Shirley.  Both windows sit inside the I/O phases of the
// MPI-IO-TEST timeline (compute gaps are 2 s per iteration).
constexpr const char* kReferencePlan =
    "# reference fault schedule\n"
    "crash nid00041 at 2500ms for 5s\n"
    "partition voltrino-head -> shirley at 9s for 4s\n";

struct ModeResult {
  exp::RunResult run;
  std::uint64_t delivered = 0;  // unique messages reaching Shirley
  double bytes_per_event = 0.0;
};

ModeResult run_mode(relia::DeliveryMode mode, std::size_t nodes,
                    std::uint64_t iters) {
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::MpiIoTestConfig cfg;
  cfg.block_size = 4ull * 1024 * 1024;
  cfg.iterations = iters;
  cfg.collective = false;
  cfg.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(cfg);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = nodes;
  spec.ranks_per_node = 4;
  // A slow hop keeps a real backlog in flight: each iteration's message
  // wave takes long enough to drain that the fault windows are guaranteed
  // to open across undelivered queue contents — exercising both loss
  // (best effort) and lost-ack redelivery duplicates (at-least-once).
  spec.transport.hop_latency = 25 * kMillisecond;
  spec.connector.delivery = mode;
  spec.fault_plan = relia::parse_fault_plan(kReferencePlan);

  ModeResult out;
  out.run = exp::run_experiment(spec);
  out.delivered = out.run.messages - out.run.seq_lost;
  out.bytes_per_event =
      out.run.events_published
          ? static_cast<double>(out.run.transport_bytes) /
                static_cast<double>(out.run.events_published)
          : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool soak = argc > 1 && std::string(argv[1]) == "--soak";
  // Reference scale: the fault windows are calibrated against this
  // timeline (virtual time is deterministic, so the gate is exact here).
  // Other scales via the env knobs still report, but window edges may
  // fall into compute gaps where no redelivery duplicates arise.
  const std::size_t nodes = env_size("DLC_RELIA_NODES", 3);
  const std::uint64_t iters = env_size("DLC_RELIA_ITERS", 3);

  std::printf("== Delivery guarantees under faults: best-effort vs "
              "at-least-once ==\n\n");
  std::printf("MPI-IO-TEST, %zu nodes x 4 ranks, %llu iterations, Lustre.\n"
              "Fault schedule (identical for both modes):\n%s\n",
              nodes, static_cast<unsigned long long>(iters), kReferencePlan);

  const ModeResult be = run_mode(relia::DeliveryMode::kBestEffort, nodes,
                                 iters);
  const ModeResult alo = run_mode(relia::DeliveryMode::kAtLeastOnce, nodes,
                                  iters);

  exp::TextTable table({"Mode", "Published", "Delivered", "Lost", "Loss",
                        "Dup deduped", "Redelivered", "Spool evict",
                        "Bytes/event"});
  for (const auto* m : {&be, &alo}) {
    const bool is_alo = m == &alo;
    const double loss =
        m->run.messages
            ? static_cast<double>(m->run.seq_lost) /
                  static_cast<double>(m->run.messages) * 100.0
            : 0.0;
    table.add_row({is_alo ? "at_least_once" : "best_effort",
                   exp::cell_u(m->run.messages), exp::cell_u(m->delivered),
                   exp::cell_u(m->run.seq_lost), exp::cell_pct(loss),
                   exp::cell_u(m->run.duplicates_dropped),
                   exp::cell_u(m->run.redelivered),
                   exp::cell_u(m->run.spool_evicted),
                   exp::cell_f(m->bytes_per_event, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double overhead =
      be.bytes_per_event > 0
          ? (alo.bytes_per_event / be.bytes_per_event - 1.0) * 100.0
          : 0.0;
  std::printf("at-least-once wire overhead vs best-effort: %+.1f%% "
              "bytes/event\n\n",
              overhead);

  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what);
    ok = ok && cond;
  };
  check(be.run.seq_lost > 0,
        "best-effort loses events under the fault schedule");
  check(alo.run.seq_lost == 0, "at-least-once delivers 100% of events");
  check(alo.run.duplicates_dropped > 0,
        "redelivery duplicates occur and are deduped downstream");
  check(alo.run.messages == be.run.messages,
        "both modes publish the same event stream");
  check(overhead < 50.0, "at-least-once byte overhead stays under +50%");

  if (!ok) {
    std::printf("\ndelivery-guarantee gate FAILED\n");
    return soak ? 1 : 0;
  }
  std::printf("\ndelivery-guarantee gate passed\n");
  return 0;
}
