// Self-telemetry overhead benchmark: what does the obs subsystem cost
// when you are NOT looking?
//
// Phase 1 A/Bs the storage-side hot path (bench_ingest's decode + parallel
// sharded ingest workload, the loop that gained the dlc.ingest.* mirror
// updates) in one process: obs::set_enabled(false) vs enabled with tracing
// off, interleaved repetitions, best-of-N events/sec per arm.  --check adds
// the fatal gate: the enabled arm must keep >= 99% of the disabled arm's
// throughput (<1% instrumentation overhead) — enforced only in Release-style
// runs with >= 4 hardware threads, mirroring bench_ingest's reasoning that
// timing gates are meaningless under sanitizers or on starved hosts.
//
// Phase 2 runs the full pipeline (MPI-IO-TEST, at-least-once, the
// bench_relia reference fault schedule) with DARSHAN_LDMS_TRACE_SAMPLE=1
// and reports end-to-end trace latency quantiles (p50/p99/max of
// dlc.trace.e2e_ns).  Its gates are correctness, fatal with or without
// --check: every sampled event must finish a complete 8-hop span, none
// incomplete, and the fault schedule must really have exercised redelivery.
//
// Writes BENCH_obs.json (override path: DLC_BENCH_OUT).  Scale knobs:
// DLC_OBS_EVENTS, DLC_OBS_REPS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/decoder.hpp"
#include "core/schema_darshan.hpp"
#include "dsos/cluster.hpp"
#include "dsos/ingest.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"
#include "json/writer.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "relia/fault.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One connector-format JSON message (same shape bench_ingest feeds the
/// decoder: one seg per message, shard attr "rank").
std::string make_payload(Rng& rng, std::uint64_t job, std::int64_t ranks,
                         double ts) {
  const std::int64_t rank = rng.uniform_int(0, ranks - 1);
  json::Writer w;
  w.begin_object();
  w.member("uid", std::uint64_t{99066});
  w.member("exe", "/projects/ovis/bench/mpi-io-test");
  w.member("job_id", job);
  w.member("rank", rank);
  w.member("ProducerName", "nid" + std::to_string(41 + rank % 4));
  w.member("file", "darshan-output/mpi-io-test.tmp.dat");
  w.member("record_id", rng.next_u64());
  w.member("module", "POSIX");
  w.member("type", "MOD");
  w.member("max_byte", static_cast<std::int64_t>(rng.next_u64() % (1 << 22)));
  w.member("switches", std::int64_t{0});
  w.member("flushes", std::int64_t{-1});
  w.member("cnt", std::int64_t{1});
  w.member("op", rng.uniform() < 0.5 ? "write" : "read");
  w.key("seg");
  w.begin_array();
  w.begin_object();
  w.member("data_set", "N/A");
  w.member("pt_sel", std::int64_t{-1});
  w.member("irreg_hslab", std::int64_t{-1});
  w.member("reg_hslab", std::int64_t{-1});
  w.member("ndims", std::int64_t{-1});
  w.member("npoints", std::int64_t{-1});
  w.member("off", static_cast<std::int64_t>(rng.next_u64() % (1 << 22)));
  w.member("len", static_cast<std::int64_t>(rng.next_u64() % (1 << 20)));
  w.member("dur", rng.uniform(0.0001, 0.05));
  w.member("timestamp", ts);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.take();
}

std::vector<std::string> make_payloads(std::size_t count) {
  Rng rng(17);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_payload(rng, 1 + i % 4, /*ranks=*/64,
                               1.6e9 + 0.001 * static_cast<double>(i)));
  }
  return out;
}

/// One decode + parallel-ingest pass; returns events/sec.
double ingest_pass(const dsos::SchemaPtr& schema,
                   const std::vector<std::string>& payloads) {
  dsos::ClusterConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_attr = "rank";
  dsos::DsosCluster cluster(cfg);
  cluster.register_schema(schema);
  std::vector<dsos::Object> rows;
  dsos::IngestConfig icfg;
  icfg.workers = 4;
  const double t0 = now_seconds();
  {
    dsos::IngestExecutor ingest(cluster, icfg);
    for (const std::string& p : payloads) {
      if (!core::decode_message_fast(schema, p, rows)) {
        rows = core::decode_message(schema, p);
      }
      for (auto& obj : rows) ingest.submit(std::move(obj));
    }
    ingest.drain();
  }
  return static_cast<double>(payloads.size()) / (now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const std::size_t events = env_size("DLC_OBS_EVENTS", 40000);
  const std::size_t reps = env_size("DLC_OBS_REPS", 5);
  const auto schema = core::darshan_data_schema();

  bool ok = true;
  const auto gate = [&](bool cond, const std::string& what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };

  // --- Phase 1: instrumentation overhead with tracing off ---------------
  std::printf("== Self-telemetry overhead: obs off vs on (tracing off) ==\n\n");
  const std::vector<std::string> payloads = make_payloads(events);
  std::printf("%zu events, decode + 4-shard parallel ingest, best of %zu "
              "interleaved reps per arm\n\n",
              events, reps);

  ingest_pass(schema, payloads);  // warm-up (page cache, allocator)
  double off_eps = 0.0;
  double on_eps = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    obs::set_enabled(false);
    off_eps = std::max(off_eps, ingest_pass(schema, payloads));
    obs::set_enabled(true);
    on_eps = std::max(on_eps, ingest_pass(schema, payloads));
  }
  obs::set_enabled(true);
  const double overhead_pct = off_eps > 0 ? (1.0 - on_eps / off_eps) * 100.0
                                          : 0.0;

  exp::TextTable table({"Arm", "Events/s"});
  table.add_row({"obs disabled", exp::cell_f(off_eps, 0)});
  table.add_row({"obs enabled, tracing off", exp::cell_f(on_eps, 0)});
  std::printf("%s\ninstrumentation overhead: %+.2f%%\n\n",
              table.render().c_str(), overhead_pct);

  if (check) {
    const util::CpuBudget cpus = util::cpu_budget();
    if (cpus.effective >= 4) {
      gate(on_eps >= 0.99 * off_eps,
           "tracing-off instrumentation overhead stays under 1%");
    } else {
      std::printf("  [SKIPPED] perf gate WAIVED: overhead gate (effective "
                  "CPUs %zu via %s)\n",
                  cpus.effective, cpus.source.c_str());
    }
  }

  // --- Phase 2: end-to-end trace latency under the fault plan -----------
  std::printf("== End-to-end trace latency (sample=1, at-least-once, "
              "reference faults) ==\n\n");
  obs::Registry::global().reset_values();
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::MpiIoTestConfig cfg;
  cfg.block_size = 4ull * 1024 * 1024;
  cfg.iterations = 3;
  cfg.collective = false;
  cfg.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(cfg);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 3;
  spec.ranks_per_node = 4;
  spec.transport.hop_latency = 25 * kMillisecond;
  spec.connector.delivery = relia::DeliveryMode::kAtLeastOnce;
  spec.fault_plan = relia::parse_fault_plan(
      "crash nid00041 at 2500ms for 5s\n"
      "partition voltrino-head -> shirley at 9s for 4s\n");
  spec.decode_to_dsos = true;
  spec.connector.trace_sample_n = 1;
  const exp::RunResult run = exp::run_experiment(spec);

  const auto q = [](const char* name) {
    return obs::Registry::global().value(name).value_or(0.0);
  };
  const double p50_ns = q("dlc.trace.e2e_ns.p50");
  const double p99_ns = q("dlc.trace.e2e_ns.p99");
  const double max_ns = q("dlc.trace.e2e_ns.max");
  const std::uint64_t incomplete = run.traces ? run.traces->incomplete() : 0;
  std::printf("published %llu, decoded %llu, spans completed %llu "
              "(%llu incomplete), redelivered %llu\n",
              static_cast<unsigned long long>(run.messages),
              static_cast<unsigned long long>(run.decoded_rows),
              static_cast<unsigned long long>(run.traces_completed),
              static_cast<unsigned long long>(incomplete),
              static_cast<unsigned long long>(run.redelivered));
  std::printf("end-to-end span latency (virtual): p50 %.1f ms, p99 %.1f ms, "
              "max %.1f ms\n\n",
              p50_ns / 1e6, p99_ns / 1e6, max_ns / 1e6);

  gate(run.traces_completed > 0 &&
           run.traces_completed == run.decoded_rows,
       "every sampled event finished an end-to-end span");
  gate(incomplete == 0, "no span lost its payload trace block");
  gate(run.redelivered > 0 && run.duplicates_dropped > 0,
       "the fault schedule exercised at-least-once redelivery");
  bool worst_ok = run.traces != nullptr;
  if (run.traces) {
    for (const obs::TraceContext& t : run.traces->worst()) {
      worst_ok = worst_ok && t.complete() && t.monotonic();
    }
  }
  gate(worst_ok, "exemplar-ring spans are complete and hop-monotonic");

  // BENCH_obs.json — the repo's benchmark trajectory artifact.
  {
    const char* out_path = std::getenv("DLC_BENCH_OUT");
    const std::string path = out_path ? out_path : "BENCH_obs.json";
    json::Writer w;
    w.begin_object();
    w.member("bench", "obs");
    w.member("events", static_cast<std::uint64_t>(events));
    w.member("reps", static_cast<std::uint64_t>(reps));
    w.member("hardware_threads",
             static_cast<std::uint64_t>(util::cpu_budget().hardware_threads));
    w.member("effective_cpus",
             static_cast<std::uint64_t>(util::effective_cpus()));
    w.key("overhead");
    w.begin_object();
    w.member("disabled_events_per_sec", off_eps);
    w.member("enabled_events_per_sec", on_eps);
    w.member("overhead_pct", overhead_pct);
    w.end_object();
    w.key("trace");
    w.begin_object();
    w.member("sampled_every", std::uint64_t{1});
    w.member("completed", run.traces_completed);
    w.member("incomplete", incomplete);
    w.member("redelivered", run.redelivered);
    w.member("p50_e2e_ns", p50_ns);
    w.member("p99_e2e_ns", p99_ns);
    w.member("max_e2e_ns", max_ns);
    w.end_object();
    w.end_object();
    std::ofstream(path) << w.take() << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

  if (!ok) {
    std::printf("\nself-telemetry gate FAILED\n");
    return 1;
  }
  std::printf("\nself-telemetry gate passed\n");
  return 0;
}
