// Rollup benchmark: the "dashboard queries never touch raw events" bar.
//
// Simulates one HMMER-like run (DLC_ROLLUP_EVENTS events, default 3M:
// 4 jobs x 64 ranks, ~90% tiny reads/writes plus open/close, 1 ms event
// spacing) and ingests the SAME deterministic stream twice into a
// 4-shard DSOS cluster:
//   baseline:  no rollup engine attached,
//   rollup:    the default storage policies (op_counts, node_requests,
//              rank_durations, throughput) folding every commit,
// timing both to price the engine's ingest overhead.  Commits fire every
// 64 Ki events, so bucket sealing (and spilling into the engine's sealed
// cluster) happens *during* ingest exactly as it would under a live
// sampler.
//
// Phase 2 serves every covered dashboard panel (Fig. 5, 6, 7, 7-summary,
// 9) twice — the raw analysis/figures.hpp scan over all events vs
// rollup::panel_* over cells — asserting, always fatally:
//   - each panel IS served from a rollup policy (coverage is correctness),
//   - the served frame matches the raw frame: identical shape, row order
//     and values — bit-exact for counts, integer byte sums, strings and
//     time buckets; duration sums/means to 1e-9 relative (float
//     accumulation order),
//   - duration quantiles are histogram-resolution exact: for every
//     rank_durations cell, percentile(p) equals log_bucket_hi of the log
//     bucket holding the true rank-convention sample of the raw
//     durations (the sparse cell histogram loses sub-bucket precision,
//     nothing else).
// --check adds the fatal perf gates: every covered panel >= 100x faster
// from rollups, and rollup-attached ingest >= 0.9x baseline events/sec
// (< ~11% overhead).  Timings are the median of DLC_ROLLUP_REPS (3)
// runs.  Writes BENCH_rollup.json (override: DLC_BENCH_OUT).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/figures.hpp"
#include "analysis/frame.hpp"
#include "core/schema_darshan.hpp"
#include "dsos/cluster.hpp"
#include "exp/table.hpp"
#include "json/writer.hpp"
#include "rollup/engine.hpp"
#include "rollup/policy.hpp"
#include "rollup/serve.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::uint64_t kSeed = 929;
constexpr std::size_t kRanks = 64;
constexpr std::size_t kJobs = 4;
constexpr std::size_t kCommitEvery = 1 << 16;

/// Event i of the simulated HMMER run.  Deterministic in (seed, i) so the
/// baseline and rollup arms ingest byte-identical streams.
dsos::Object make_event(const dsos::SchemaPtr& schema, Rng& rng,
                        std::size_t i) {
  const std::uint64_t job = 1 + i % kJobs;
  const double ts = 1.6e9 + 0.001 * static_cast<double>(i);
  const auto rank = rng.uniform_int(0, static_cast<std::int64_t>(kRanks) - 1);
  const double u = rng.uniform();
  const char* op = u < 0.05 ? "open" : u < 0.10 ? "close"
                            : u < 0.55 ? "read" : "write";
  const bool meta = u < 0.10;  // open/close carry no payload
  const auto seg_len =
      meta ? std::int64_t{-1}
           : static_cast<std::int64_t>(rng.next_u64() % (1 << 16));
  const double seg_dur = rng.uniform(1e-5, 5e-3);
  return dsos::make_object(
      schema,
      {
          std::string("POSIX"),                                  // module
          std::uint64_t{99066},                                  // uid
          "nid" + std::to_string(41 + rank % 4),                 // ProducerName
          std::int64_t{0},                                       // switches
          std::string("seq.fasta"),                              // file
          rank,                                                  // rank
          std::int64_t{-1},                                      // flushes
          std::uint64_t{1000 + i % 32},                          // record_id
          std::string("/usr/bin/hmmsearch"),                     // exe
          static_cast<std::int64_t>(rng.next_u64() % (1 << 22)), // max_byte
          std::string("MOD"),                                    // type
          job,                                                   // job_id
          std::string(op),                                       // op
          static_cast<std::int64_t>(rng.next_u64() % 64),        // cnt
          static_cast<std::int64_t>(rng.next_u64() % (1 << 22)), // seg_off
          std::int64_t{-1},                                      // seg_pt_sel
          seg_dur,                                               // seg_dur
          seg_len,                                               // seg_len
          std::int64_t{-1},                                      // seg_ndims
          std::int64_t{-1},  // seg_reg_hslab
          std::int64_t{-1},  // seg_irreg_hslab
          std::string("N/A"),  // seg_data_set
          std::int64_t{-1},    // seg_npoints
          ts,                  // seg_timestamp
      });
}

struct IngestArm {
  // Declaration order matters: the engine observes the cluster, so it
  // must be destroyed first (members destroy in reverse order).
  std::unique_ptr<dsos::DsosCluster> cluster;
  std::shared_ptr<rollup::RollupEngine> engine;
  double seconds = 0.0;
};

/// One timed ingest of the full stream: serial insert, commit every
/// kCommitEvery events (sealing/spilling rollup buckets as a live
/// deployment would), final commit + flush inside the timed region.
IngestArm run_ingest(const dsos::SchemaPtr& schema, std::size_t events,
                     bool with_rollups) {
  IngestArm arm;
  dsos::ClusterConfig ccfg;
  ccfg.shard_count = 4;
  ccfg.shard_attr = "rank";
  arm.cluster = std::make_unique<dsos::DsosCluster>(ccfg);
  arm.cluster->register_schema(schema);
  if (with_rollups) {
    rollup::RollupEngineConfig rcfg;
    rcfg.policies = rollup::default_rollup_policies();
    arm.engine = std::make_shared<rollup::RollupEngine>(rcfg);
    arm.engine->attach(*arm.cluster);
  }
  Rng rng(kSeed);
  const std::size_t shards = arm.cluster->shard_count();
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < events; ++i) {
    arm.cluster->insert(make_event(schema, rng, i));
    if ((i + 1) % kCommitEvery == 0) {
      for (std::size_t s = 0; s < shards; ++s) arm.cluster->commit_shard(s);
    }
  }
  for (std::size_t s = 0; s < shards; ++s) arm.cluster->commit_shard(s);
  if (arm.engine) arm.engine->flush();
  arm.seconds = now_seconds() - t0;
  return arm;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Interleaved A/B timing: baseline rep, rollup rep, baseline rep, …
/// so both arms see the same allocator/page-cache evolution — running
/// all of one arm first skews the second arm by several percent at
/// multi-million-event heaps, the exact campaign-drift artifact the
/// paper's interleaved runs (§VI-A) exist to kill.  Only the LAST
/// rollup rep's cluster/engine survive (the stream is deterministic,
/// so every rep builds identical state); everything else is dropped
/// immediately to keep one cluster in memory.  Returns the last rollup
/// arm with both medians attached.
struct AbTiming {
  IngestArm rolled;
  double baseline_seconds = 0.0;
};

AbTiming ab_ingest(const dsos::SchemaPtr& schema, std::size_t events,
                   std::size_t reps) {
  std::vector<double> base_s, roll_s;
  AbTiming ab;
  for (std::size_t r = 0; r < reps; ++r) {
    base_s.push_back(run_ingest(schema, events, false).seconds);
    // Move-assignment would replace (and destroy) the old cluster
    // before the old engine observing it; release them in the reverse
    // dependency order first.
    ab.rolled.engine.reset();
    ab.rolled.cluster.reset();
    ab.rolled = run_ingest(schema, events, true);
    roll_s.push_back(ab.rolled.seconds);
  }
  ab.baseline_seconds = median(base_s);
  ab.rolled.seconds = median(roll_s);
  return ab;
}

/// Frame equivalence: identical shape, row order, column types.  Ints and
/// strings bit-exact.  Doubles bit-exact too, EXCEPT columns whose name
/// mentions "dur": those aggregate float durations, and the rollup side
/// sums per (cell, slot-order) while the raw scan sums in merged index
/// order — same values, different association — so 1e-9 relative.
bool frames_match(const analysis::DataFrame& raw,
                  const analysis::DataFrame& rolled, std::string& why) {
  char buf[256];
  if (raw.column_names() != rolled.column_names()) {
    why = "column sets differ";
    return false;
  }
  if (raw.rows() != rolled.rows()) {
    std::snprintf(buf, sizeof(buf), "row counts differ: raw %zu vs rollup %zu",
                  raw.rows(), rolled.rows());
    why = buf;
    return false;
  }
  for (const std::string& col : raw.column_names()) {
    if (raw.column_type(col) != rolled.column_type(col)) {
      why = "column type differs: " + col;
      return false;
    }
    const bool dur_col = col.find("dur") != std::string::npos;
    for (std::size_t r = 0; r < raw.rows(); ++r) {
      switch (raw.column_type(col)) {
        case analysis::ColType::kInt:
          if (raw.get_int(r, col) != rolled.get_int(r, col)) {
            std::snprintf(buf, sizeof(buf), "%s[%zu]: %lld vs %lld",
                          col.c_str(), r,
                          static_cast<long long>(raw.get_int(r, col)),
                          static_cast<long long>(rolled.get_int(r, col)));
            why = buf;
            return false;
          }
          break;
        case analysis::ColType::kString:
          if (raw.get_string(r, col) != rolled.get_string(r, col)) {
            why = col + "[" + std::to_string(r) + "]: \"" +
                  raw.get_string(r, col) + "\" vs \"" +
                  rolled.get_string(r, col) + "\"";
            return false;
          }
          break;
        case analysis::ColType::kDouble: {
          const double a = raw.get_double(r, col);
          const double b = rolled.get_double(r, col);
          const double tol =
              dur_col ? 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)})
                      : 0.0;
          if (!(std::fabs(a - b) <= tol)) {
            std::snprintf(buf, sizeof(buf), "%s[%zu]: %.17g vs %.17g",
                          col.c_str(), r, a, b);
            why = buf;
            return false;
          }
          break;
        }
      }
    }
  }
  return true;
}

struct PanelTiming {
  std::string panel;
  std::string policy;
  bool from_rollup = false;
  bool equivalent = false;
  std::string mismatch;
  double raw_ms = 0.0;
  double rollup_ms = 0.0;
  double speedup = 0.0;
  std::size_t rows = 0;
};

template <typename RawFn, typename RollupFn>
PanelTiming time_panel(const std::string& name, std::size_t raw_iters,
                       std::size_t rollup_iters, RawFn&& raw_fn,
                       RollupFn&& rollup_fn) {
  PanelTiming t;
  t.panel = name;
  analysis::DataFrame raw_frame;
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < raw_iters; ++i) raw_frame = raw_fn();
    t.raw_ms = (now_seconds() - t0) * 1e3 / static_cast<double>(raw_iters);
  }
  rollup::PanelResult served;
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < rollup_iters; ++i) served = rollup_fn();
    t.rollup_ms =
        (now_seconds() - t0) * 1e3 / static_cast<double>(rollup_iters);
  }
  t.from_rollup = served.from_rollup;
  t.policy = served.policy;
  t.equivalent = frames_match(raw_frame, served.frame, t.mismatch);
  t.speedup = t.rollup_ms > 0 ? t.raw_ms / t.rollup_ms : 0.0;
  t.rows = served.frame.rows();
  return t;
}

/// Histogram-resolution quantile check over every rank_durations cell:
/// the cell histogram's percentile(p) must equal log_bucket_percentile
/// over a dense histogram rebuilt from the exact raw durations — i.e.
/// the sparse histogram is exactly as lossy as its bucket geometry and
/// no lossier, and it must land inside the bucket holding the true
/// rank-convention sample.
bool check_quantiles(const rollup::RollupEngine& engine,
                     const dsos::DsosCluster& db, double bucket_w,
                     std::size_t& cells_checked, std::string& why) {
  // Exact per-cell duration samples from one raw scan, in index order.
  struct RefKey {
    std::uint64_t job;
    std::int64_t rank;
    std::string op;
    std::int64_t bucket;
    auto operator<=>(const RefKey&) const = default;
  };
  std::map<RefKey, std::vector<double>> ref;
  for (const dsos::Object* obj : db.query("darshan_data", "job_rank_time")) {
    const std::string& op = obj->as_string("op");
    if (op != "read" && op != "write") continue;
    const double ts = obj->as_double("seg_timestamp");
    ref[{obj->as_uint("job_id"), obj->as_int("rank"), op,
         static_cast<std::int64_t>(std::floor(ts / bucket_w))}]
        .push_back(obj->as_double("seg_dur"));
  }
  const std::vector<rollup::RollupCell> cells =
      engine.query("rank_durations", {});
  if (cells.size() != ref.size()) {
    why = "cell count " + std::to_string(cells.size()) + " vs raw " +
          std::to_string(ref.size());
    return false;
  }
  char buf[256];
  for (const rollup::RollupCell& cell : cells) {
    const auto it = ref.find({cell.key.job, cell.key.rank, cell.key.op,
                              cell.key.bucket});
    if (it == ref.end()) {
      why = "cell without raw counterpart (job " +
            std::to_string(cell.key.job) + " rank " +
            std::to_string(cell.key.rank) + ")";
      return false;
    }
    std::vector<double> durs = it->second;
    const auto n = static_cast<std::uint64_t>(durs.size());
    if (cell.agg.count != n ||
        cell.agg.dur_hist.total() != n) {
      why = "cell count/histogram total mismatch";
      return false;
    }
    // Min/max pick, and the sum accumulates, the same doubles in the
    // same (insert = index) order: bit-exact.
    std::sort(durs.begin(), durs.end());
    double sum = 0.0;
    for (const double d : it->second) sum += d;
    if (cell.agg.dur_min != durs.front() || cell.agg.dur_max != durs.back() ||
        cell.agg.dur_sum != sum) {
      why = "cell min/max/sum not bit-exact vs raw scan order";
      return false;
    }
    // Dense reference histogram over the exact samples: the sparse cell
    // histogram must reproduce log_bucket_percentile bit-for-bit.
    std::array<std::uint64_t, kLogBucketCount> dense{};
    for (const double d : it->second) {
      dense[log_bucket_index(
          static_cast<std::uint64_t>(std::llround(d * 1e9)))]++;
    }
    for (const double p : {50.0, 95.0, 99.0}) {
      const auto rank = static_cast<std::size_t>(std::max(
          1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
      const std::uint64_t exact_ns =
          static_cast<std::uint64_t>(std::llround(durs[rank - 1] * 1e9));
      const double expect =
          log_bucket_percentile(dense.data(), dense.size(), p);
      const double got = cell.agg.dur_hist.percentile(p);
      const std::uint32_t exact_idx = log_bucket_index(exact_ns);
      if (got != expect ||
          got < static_cast<double>(log_bucket_lo(exact_idx)) ||
          got > static_cast<double>(log_bucket_hi(exact_idx))) {
        std::snprintf(buf, sizeof(buf),
                      "p%.0f: histogram %.17g vs dense reference %.17g "
                      "(exact sample %llu ns)",
                      p, got, expect,
                      static_cast<unsigned long long>(exact_ns));
        why = buf;
        return false;
      }
    }
  }
  cells_checked = cells.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const std::size_t events = env_size("DLC_ROLLUP_EVENTS", 3000000);
  const std::size_t reps = env_size("DLC_ROLLUP_REPS", 3);
  const std::size_t raw_iters = env_size("DLC_ROLLUP_RAW_ITERS", 3);
  const std::size_t rollup_iters = env_size("DLC_ROLLUP_QUERY_ITERS", 100);
  const auto schema = core::darshan_data_schema();

  std::printf("== Rollup sinks: ingest overhead + panel serving ==\n\n");
  std::printf("%zu events (%zu jobs x %zu ranks, 1 ms spacing), default "
              "policies, commit every %zu events\n\n",
              events, kJobs, kRanks, kCommitEvery);

  bool ok = true;
  const auto gate = [&](bool cond, const std::string& what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };

  // Phase 1: ingest A/B (median of `reps` identical deterministic runs).
  std::printf("timings are the median of %zu runs per arm\n\n", reps);
  AbTiming ab = ab_ingest(schema, events, reps);
  const double baseline_seconds = ab.baseline_seconds;
  const double baseline_eps =
      static_cast<double>(events) / baseline_seconds;
  const IngestArm& rolled = ab.rolled;
  const double rollup_eps = static_cast<double>(events) / rolled.seconds;
  const double overhead_pct =
      (rolled.seconds / baseline_seconds - 1.0) * 100.0;
  const rollup::RollupStats stats = rolled.engine->stats();

  exp::TextTable ingest_table(
      {"Arm", "Events/s", "Seconds", "Overhead"});
  ingest_table.add_row({"baseline", exp::cell_f(baseline_eps, 0),
                        exp::cell_f(baseline_seconds, 2), "-"});
  ingest_table.add_row({"rollup", exp::cell_f(rollup_eps, 0),
                        exp::cell_f(rolled.seconds, 2),
                        exp::cell_f(overhead_pct, 1) + "%"});
  std::printf("%s\n", ingest_table.render().c_str());
  std::printf("engine: %llu events folded, %llu cells open, %llu sealed "
              "rows in %llu spills, %llu late-dropped\n\n",
              static_cast<unsigned long long>(stats.events),
              static_cast<unsigned long long>(stats.cells_open),
              static_cast<unsigned long long>(stats.sealed_rows),
              static_cast<unsigned long long>(stats.spills),
              static_cast<unsigned long long>(stats.late_dropped));

  // Phase 2: every covered panel, raw scan vs rollup serving, on the
  // SAME cluster (the rollup arm's — contents are identical to baseline).
  const dsos::DsosCluster& db = *rolled.cluster;
  const rollup::RollupEngine* engine = rolled.engine.get();
  std::vector<std::uint64_t> jobs;
  for (std::size_t j = 1; j <= kJobs; ++j) jobs.push_back(j);
  const std::uint64_t fig9_job = 2;

  std::vector<PanelTiming> panels;
  panels.push_back(time_panel(
      "fig5", raw_iters, rollup_iters,
      [&] { return analysis::fig5_op_counts(db, jobs); },
      [&] { return rollup::panel_fig5(engine, db, jobs); }));
  panels.push_back(time_panel(
      "fig6", raw_iters, rollup_iters,
      [&] { return analysis::fig6_requests_per_node(db, jobs); },
      [&] { return rollup::panel_fig6(engine, db, jobs); }));
  panels.push_back(time_panel(
      "fig7", raw_iters, rollup_iters,
      [&] { return analysis::fig7_rank_durations(db, jobs); },
      [&] { return rollup::panel_fig7(engine, db, jobs); }));
  panels.push_back(time_panel(
      "fig7_summary", raw_iters, rollup_iters,
      [&] { return analysis::fig7_job_summary(db, jobs); },
      [&] { return rollup::panel_fig7_summary(engine, db, jobs); }));
  panels.push_back(time_panel(
      "fig9", raw_iters, rollup_iters,
      [&] { return analysis::fig9_throughput_buckets(db, fig9_job, 10.0); },
      [&] { return rollup::panel_fig9(engine, db, fig9_job, 10.0); }));

  exp::TextTable panel_table({"Panel", "Policy", "Rows", "Raw ms",
                              "Rollup ms", "Speedup", "Equivalent"});
  for (const PanelTiming& t : panels) {
    panel_table.add_row({t.panel, t.policy.empty() ? "(raw)" : t.policy,
                         std::to_string(t.rows), exp::cell_f(t.raw_ms, 3),
                         exp::cell_f(t.rollup_ms, 3),
                         exp::cell_f(t.speedup, 1),
                         t.equivalent ? "yes" : "NO"});
  }
  std::printf("%s\n", panel_table.render().c_str());

  // Phase 3: histogram-resolution duration quantiles.
  std::size_t cells_checked = 0;
  std::string quantile_why;
  const bool quantiles_ok =
      check_quantiles(*engine, db, 3600.0, cells_checked, quantile_why);

  // BENCH_rollup.json — the benchmark trajectory artifact.
  {
    const char* out_path = std::getenv("DLC_BENCH_OUT");
    const std::string path = out_path ? out_path : "BENCH_rollup.json";
    json::Writer w;
    w.begin_object();
    w.member("bench", "rollup");
    w.member("events", static_cast<std::uint64_t>(events));
    w.member("runs_per_arm", static_cast<std::uint64_t>(reps));
    w.member("timing", "median");
    w.member("baseline_events_per_sec", baseline_eps);
    w.member("rollup_events_per_sec", rollup_eps);
    w.member("ingest_overhead_pct", overhead_pct);
    {
      const util::CpuBudget cpus = util::cpu_budget();
      w.member("hardware_threads",
               static_cast<std::uint64_t>(cpus.hardware_threads));
      w.member("effective_cpus", static_cast<std::uint64_t>(cpus.effective));
      w.member("effective_cpus_source", cpus.source);
    }
    w.key("engine");
    w.begin_object();
    w.member("events_folded", stats.events);
    w.member("cells_open", stats.cells_open);
    w.member("sealed_rows", stats.sealed_rows);
    w.member("spills", stats.spills);
    w.member("late_dropped", stats.late_dropped);
    w.end_object();
    w.key("panels");
    w.begin_array();
    for (const PanelTiming& t : panels) {
      w.begin_object();
      w.member("panel", t.panel);
      w.member("policy", t.policy);
      w.member("from_rollup", t.from_rollup);
      w.member("rows", static_cast<std::uint64_t>(t.rows));
      w.member("raw_ms", t.raw_ms);
      w.member("rollup_ms", t.rollup_ms);
      w.member("speedup", t.speedup);
      w.member("equivalent", t.equivalent);
      w.end_object();
    }
    w.end_array();
    w.member("quantile_cells_checked",
             static_cast<std::uint64_t>(cells_checked));
    w.member("quantiles_histogram_exact", quantiles_ok);
    w.end_object();
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("wrote %s\n\n", path.c_str());
  }

  // Correctness gates: ALWAYS fatal.  A panel silently falling back to
  // the raw scan, or serving different numbers, is a bug regardless of
  // benchmarking mode.
  for (const PanelTiming& t : panels) {
    gate(t.from_rollup, t.panel + " served from a rollup policy (" +
                            (t.policy.empty() ? "FELL BACK TO RAW" : t.policy) +
                            ")");
    gate(t.equivalent,
         t.panel + " rollup frame matches raw scan" +
             (t.equivalent ? "" : " — " + t.mismatch));
  }
  gate(stats.late_dropped == 0, "no events dropped behind a sealed frontier");
  gate(stats.spills > 0 && stats.sealed_rows > 0,
       "buckets sealed during ingest (" + std::to_string(stats.sealed_rows) +
           " rows in " + std::to_string(stats.spills) + " spills)");
  gate(quantiles_ok,
       "duration quantiles histogram-resolution exact across " +
           std::to_string(cells_checked) + " cells" +
           (quantiles_ok ? "" : " — " + quantile_why));
  if (check) {
    char buf[160];
    for (const PanelTiming& t : panels) {
      std::snprintf(buf, sizeof(buf),
                    "%s >= 100x faster from rollups (got %.1fx)",
                    t.panel.c_str(), t.speedup);
      gate(t.speedup >= 100.0, buf);
    }
    // The overhead gate is a timing A/B, and like bench_ingest's and
    // bench_obs's perf gates it needs CPUs to itself: on a 1-CPU
    // affinity/quota box the fold competes with the OS and harness for
    // one core and the gate fails on scheduling physics, not on a
    // regression.  Waive it loudly below 4 effective CPUs — the panel
    // speedup and equivalence gates above are ratios of the same
    // serving path and stay unconditional.
    const util::CpuBudget cpus = util::cpu_budget();
    if (cpus.effective >= 4) {
      std::snprintf(buf, sizeof(buf),
                    "rollup ingest >= 0.9x baseline events/sec (got %.3fx, "
                    "overhead %.1f%%)",
                    rollup_eps / baseline_eps, overhead_pct);
      gate(rollup_eps >= 0.9 * baseline_eps, buf);
    } else {
      std::printf("  [SKIPPED] perf gate WAIVED: rollup ingest >= 0.9x "
                  "baseline events/sec (effective CPUs %zu via %s: hw=%zu "
                  "affinity=%zu quota=%zu; got %.3fx)\n",
                  cpus.effective, cpus.source.c_str(),
                  cpus.hardware_threads, cpus.affinity, cpus.quota_cpus,
                  rollup_eps / baseline_eps);
    }
  }

  if (!ok) {
    std::printf("\nrollup gate FAILED\n");
    return 1;
  }
  std::printf("\nrollup gate passed\n");
  return 0;
}
