// Storage-side ingest/query benchmark: serial vs parallel sharded ingest,
// and zone-map-pruned vs unpruned partitioned queries.
//
// The DSOS tier exists so decoded Darshan events can be stored and
// range-queried in parallel across dsosd shards; this benchmark measures
// whether the reproduction's sink actually scales.  For each shard count
// it decodes the SAME pre-rendered connector JSON payloads (zero-copy
// scanner with DOM fallback — the decoder's real path) and ingests them
//   serial:    decode + Container::insert inline on one thread,
//   parallel:  decode on the caller, insert via dsos::IngestExecutor with
//              one worker per shard,
// then verifies the two clusters are BYTE-IDENTICAL under a full
// job_rank_time query (fatal on mismatch, --check or not: determinism is
// correctness, not performance).  A second phase measures zone-map
// pruning on a time-rotated PartitionedStore and limit pushdown on the
// cluster k-way merge.
//
// Two further phases measure the multi-million-events/sec hot path:
//
//   stages:    a serial diagnostic split of the JSON path's per-event cost
//              into decode / route / enqueue / commit ns, so a regression
//              in any one stage is visible without bisecting the pipeline,
//   hot path:  pre-encoded binary_batched wire frames walked by
//              wire::FrameCursor straight into dsos::make_object_unchecked
//              and a pinned (DARSHAN_LDMS_PIN=auto equivalent) SpscRing
//              IngestExecutor — no JSON text, no DOM, no per-event
//              validation — gated against the COMMITTED JSON-path baseline
//              (kCommittedParallelEps below), not a same-run rerun, so
//              faster hardware cannot inflate the bar.
//
// Each configuration is timed kReps (3) times and the row reports the
// median run, so a single scheduler hiccup cannot flip a gate.  Every row
// also records the hardware threads the parallel run actually used
// (workers + decoding caller, capped by the host), making cross-machine
// BENCH_ingest.json comparisons honest.
//
// Writes BENCH_ingest.json (override path: DLC_BENCH_OUT) with events/sec,
// bytes/event and speedup per shard count, the per-stage ns/event split,
// and the hot-path block (format, frames, threads, pin/simd provenance,
// speedup vs the committed baseline).  --check adds the fatal perf
// gates: parallel >= 1.5x serial events/sec at >= 4 shards and the binary
// hot path >= 5x the committed baseline (both enforced only when
// util::effective_cpus() — hardware threads bounded by the CPU affinity
// mask and any cgroup quota, so a 64-core host confined to one core does
// not enforce an impossible gate — reports >= 4; otherwise the gate
// prints a loud SKIPPED marker, the same reasoning that keeps timing
// gates out of sanitizer builds), and pruned queries no slower than
// unpruned.  Scale knob: DLC_INGEST_EVENTS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/decoder.hpp"
#include "core/schema_darshan.hpp"
#include "darshan/events.hpp"
#include "dsos/cluster.hpp"
#include "dsos/ingest.hpp"
#include "dsos/partition.hpp"
#include "exp/table.hpp"
#include "json/writer.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"
#include "wire/codec.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One connector-format JSON message (same member order as
/// core::DarshanLdmsConnector::format_message, one seg per message).
std::string make_payload(Rng& rng, std::uint64_t job, std::int64_t ranks,
                         double ts) {
  const std::int64_t rank = rng.uniform_int(0, ranks - 1);
  const bool write = rng.uniform() < 0.5;
  json::Writer w;
  w.begin_object();
  w.member("uid", std::uint64_t{99066});
  w.member("exe", "/projects/ovis/bench/mpi-io-test");
  w.member("job_id", job);
  w.member("rank", rank);
  w.member("ProducerName", "nid" + std::to_string(41 + rank % 4));
  w.member("file", "darshan-output/mpi-io-test.tmp.dat");
  w.member("record_id", rng.next_u64());
  w.member("module", "POSIX");
  w.member("type", "MOD");
  w.member("max_byte", static_cast<std::int64_t>(rng.next_u64() % (1 << 22)));
  w.member("switches", std::int64_t{0});
  w.member("flushes", std::int64_t{-1});
  w.member("cnt", static_cast<std::int64_t>(rng.next_u64() % 64));
  w.member("op", write ? "write" : "read");
  w.key("seg");
  w.begin_array();
  w.begin_object();
  w.member("data_set", "N/A");
  w.member("pt_sel", std::int64_t{-1});
  w.member("irreg_hslab", std::int64_t{-1});
  w.member("reg_hslab", std::int64_t{-1});
  w.member("ndims", std::int64_t{-1});
  w.member("npoints", std::int64_t{-1});
  w.member("off", static_cast<std::int64_t>(rng.next_u64() % (1 << 22)));
  w.member("len", static_cast<std::int64_t>(rng.next_u64() % (1 << 20)));
  w.member("dur", rng.uniform(0.0001, 0.05));
  w.member("timestamp", ts);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.take();
}

std::vector<std::string> make_payloads(std::size_t count) {
  Rng rng(17);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t job = 1 + i % 4;
    const double ts = 1.6e9 + 0.001 * static_cast<double>(i);
    out.push_back(make_payload(rng, job, /*ranks=*/64, ts));
  }
  return out;
}

/// The decoder's real JSON path: zero-copy scan, DOM on fallback.
void decode_payload(const dsos::SchemaPtr& schema, const std::string& payload,
                    std::vector<dsos::Object>& rows) {
  if (!core::decode_message_fast(schema, payload, rows)) {
    rows = core::decode_message(schema, payload);
  }
}

std::unique_ptr<dsos::DsosCluster> make_cluster(const dsos::SchemaPtr& schema,
                                                std::size_t shards) {
  dsos::ClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.shard_attr = "rank";
  auto cluster = std::make_unique<dsos::DsosCluster>(cfg);
  cluster->register_schema(schema);
  return cluster;
}

struct IngestRun {
  std::unique_ptr<dsos::DsosCluster> cluster;
  double seconds = 0.0;
  std::uint64_t backpressure_waits = 0;
  /// OS threads that actually carried the run: 1 for serial, the worker
  /// count plus the decoding caller for parallel, capped at what the
  /// host can schedule concurrently.
  std::size_t threads_used = 1;
};

/// Timing noise guard: each configuration runs kReps times and the row
/// reports the median run (clusters in the discarded runs are dropped).
constexpr std::size_t kReps = 3;

template <typename RunOnce>
IngestRun median_run(RunOnce&& run_once) {
  std::vector<IngestRun> runs;
  runs.reserve(kReps);
  for (std::size_t i = 0; i < kReps; ++i) runs.push_back(run_once());
  std::sort(runs.begin(), runs.end(),
            [](const IngestRun& a, const IngestRun& b) {
              return a.seconds < b.seconds;
            });
  return std::move(runs[kReps / 2]);
}

IngestRun run_serial(const dsos::SchemaPtr& schema, std::size_t shards,
                     const std::vector<std::string>& payloads) {
  IngestRun run;
  run.cluster = make_cluster(schema, shards);
  std::vector<dsos::Object> rows;
  const double t0 = now_seconds();
  for (const std::string& p : payloads) {
    decode_payload(schema, p, rows);
    for (auto& obj : rows) run.cluster->insert(std::move(obj));
  }
  run.seconds = now_seconds() - t0;
  return run;
}

IngestRun run_parallel(const dsos::SchemaPtr& schema, std::size_t shards,
                       std::size_t workers,
                       const std::vector<std::string>& payloads) {
  IngestRun run;
  run.cluster = make_cluster(schema, shards);
  std::vector<dsos::Object> rows;
  dsos::IngestConfig icfg;
  icfg.workers = workers;
  const double t0 = now_seconds();
  {
    dsos::IngestExecutor ingest(*run.cluster, icfg);
    for (const std::string& p : payloads) {
      decode_payload(schema, p, rows);
      for (auto& obj : rows) ingest.submit(std::move(obj));
    }
    ingest.drain();  // inside the timed region: cost of determinism
    run.backpressure_waits = ingest.stats().backpressure_waits;
    run.threads_used = ingest.workers() + 1;  // workers + decoding caller
    run.threads_used = std::min(run.threads_used, util::effective_cpus());
  }
  run.seconds = now_seconds() - t0;
  return run;
}

/// Canonical byte rendering of the full job_rank_time ordering.
std::string fingerprint(const dsos::DsosCluster& cluster) {
  std::string out;
  for (const dsos::Object* obj :
       cluster.query("darshan_data", "job_rank_time")) {
    out += core::to_csv_row(*obj);
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binary hot path: wire frames -> FrameCursor -> pinned SpscRing executor.

/// The committed baseline the binary hot path is gated against: the best
/// parallel ingest rate in the repo's committed BENCH_ingest.json at the
/// time the hot path landed (commit 81e8833: 2 shards, JSON decode on the
/// caller thread).  A frozen constant rather than a same-run rerun of the
/// JSON phase, so running on faster hardware raises BOTH paths and the
/// >= 5x ratio stays a statement about the hot path, not the host.  That
/// committed artifact recorded "hardware_threads":1 with no affinity /
/// quota provenance — the run was confined to one CPU — which is exactly
/// the trap the effective-CPU waiver below exists for; this binary now
/// records the full util::cpu_budget() breakdown alongside every gate.
constexpr double kCommittedParallelEps = 253257.755817;

/// Events per binary_batched frame — the connector batcher's amortisation
/// unit (interning table, header, per-frame obs/trace stamping).
constexpr std::size_t kEventsPerFrame = 512;

/// Shards/workers for the hot-path run: the smallest count the >= 5x gate
/// is specified at (4 effective hardware threads).
constexpr std::size_t kHotShards = 4;

/// Pre-encoded binary_batched frames mirroring make_payload's field mix
/// (POSIX read/write, 64 ranks, same producer rotation).  End times step
/// on a whole-microsecond grid so the seg_dur / seg_timestamp doubles are
/// exactly representable on every surface the identity gate compares.
std::vector<std::string> make_frames(std::size_t count) {
  Rng rng(23);
  wire::EncodeContext ctx;
  ctx.uid = 99066;
  ctx.job_id = 1;
  ctx.exe = "/projects/ovis/bench/mpi-io-test";
  ctx.epoch_seconds = 1.6e9;
  wire::FrameEncoder enc(ctx);
  std::vector<std::string> frames;
  SimTime end = 0;
  for (std::size_t i = 0; i < count; ++i) {
    darshan::IoEvent e;
    e.module = darshan::Module::kPosix;
    e.op = rng.uniform() < 0.5 ? darshan::Op::kWrite : darshan::Op::kRead;
    e.rank = static_cast<int>(rng.uniform_int(0, 63));
    e.record_id = rng.next_u64();
    e.max_byte = static_cast<std::int64_t>(rng.next_u64() % (1 << 22));
    e.switches = 0;
    e.flushes = -1;
    e.cnt = static_cast<std::int64_t>(rng.next_u64() % 64);
    e.offset = rng.next_u64() % (1 << 22);
    e.length = rng.next_u64() % (1 << 20);
    end += static_cast<SimDuration>(1 + rng.next_u64() % 1000) * kMicrosecond;
    e.start = end - kMicrosecond;
    e.end = end;
    enc.add(e, "nid" + std::to_string(41 + e.rank % 4));
    if (enc.event_count() == kEventsPerFrame) {
      frames.push_back(enc.take_frame());
    }
  }
  if (!enc.empty()) frames.push_back(enc.take_frame());
  return frames;
}

/// Serial hot-path reference: cursor-walk every frame, insert inline.
/// Also the identity reference the parallel run must reproduce.
IngestRun run_hot_serial(const dsos::SchemaPtr& schema,
                         const std::vector<std::string>& frames) {
  IngestRun run;
  run.cluster = make_cluster(schema, kHotShards);
  std::vector<dsos::Value> values;
  const double t0 = now_seconds();
  for (const std::string& f : frames) {
    wire::FrameCursor cursor(f);
    for (;;) {
      const int step = cursor.next(values, nullptr);
      if (step <= 0) break;  // bench frames are well-formed by construction
      run.cluster->insert(dsos::make_object_unchecked(schema,
                                                      std::move(values)));
      values = {};
    }
  }
  run.seconds = now_seconds() - t0;
  return run;
}

/// The hot path proper: FrameCursor -> make_object_unchecked -> pinned
/// SpscRing executor (one writer per shard, DARSHAN_LDMS_PIN=auto
/// placement resolved the same way exp::run_pipeline resolves it).
IngestRun run_hot_parallel(const dsos::SchemaPtr& schema,
                           const std::vector<int>& pin_cpus,
                           const std::vector<std::string>& frames) {
  IngestRun run;
  run.cluster = make_cluster(schema, kHotShards);
  dsos::IngestConfig icfg;
  icfg.workers = kHotShards;
  icfg.pin_cpus = pin_cpus;
  const double t0 = now_seconds();
  {
    dsos::IngestExecutor ingest(*run.cluster, icfg);
    std::vector<dsos::Value> values;
    for (const std::string& f : frames) {
      wire::FrameCursor cursor(f);
      for (;;) {
        const int step = cursor.next(values, nullptr);
        if (step <= 0) break;
        ingest.submit(dsos::make_object_unchecked(schema, std::move(values)));
        values = {};
      }
    }
    ingest.drain();
    run.backpressure_waits = ingest.stats().backpressure_waits;
    run.threads_used = ingest.workers() + 1;
    run.threads_used = std::min(run.threads_used, util::effective_cpus());
  }
  run.seconds = now_seconds() - t0;
  return run;
}

// ---------------------------------------------------------------------------
// Per-stage serial breakdown of the JSON path's per-event cost.

struct StageNs {
  double decode = 0.0;   // JSON text -> dsos::Object rows
  double route = 0.0;    // shard selection (hash of the shard attr)
  double enqueue = 0.0;  // SpscRing push + pop round trip (the hand-off)
  double commit = 0.0;   // single-writer insert + durability barrier
};

/// Serial diagnostic split: each pipeline stage timed in isolation over
/// the same decoded rows, so a regression shows WHERE the time went
/// without bisecting.  The stages are measured back-to-back, not nested,
/// so they do not sum exactly to the serial ingest rate above — they are
/// a ratio diagnostic, not an accounting identity.
StageNs measure_stage_ns(const dsos::SchemaPtr& schema,
                         const std::vector<std::string>& payloads) {
  StageNs out;
  const double n = static_cast<double>(payloads.size());
  std::vector<dsos::Object> all;
  all.reserve(payloads.size());
  {
    std::vector<dsos::Object> rows;
    const double t0 = now_seconds();
    for (const std::string& p : payloads) {
      decode_payload(schema, p, rows);
      for (auto& obj : rows) all.push_back(std::move(obj));
    }
    out.decode = (now_seconds() - t0) * 1e9 / n;
  }
  auto cluster = make_cluster(schema, kHotShards);
  std::vector<std::size_t> shard_of(all.size());
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < all.size(); ++i) {
      shard_of[i] = cluster->route(all[i]);
    }
    out.route = (now_seconds() - t0) * 1e9 / n;
  }
  {
    SpscRing<dsos::Object> ring(1024);
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < all.size(); ++i) {
      ring.try_push(std::move(all[i]));
      all[i] = std::move(*ring.try_pop());
    }
    out.enqueue = (now_seconds() - t0) * 1e9 / n;
  }
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < all.size(); ++i) {
      cluster->insert_at(shard_of[i], std::move(all[i]));
    }
    for (std::size_t s = 0; s < cluster->shard_count(); ++s) {
      cluster->commit_shard(s);
    }
    out.commit = (now_seconds() - t0) * 1e9 / n;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const std::size_t events = env_size("DLC_INGEST_EVENTS", 60000);
  const std::size_t query_iters = env_size("DLC_INGEST_QUERY_ITERS", 200);
  const auto schema = core::darshan_data_schema();

  std::printf("== DSOS ingest: serial vs parallel sharded executor ==\n\n");
  const std::vector<std::string> payloads = make_payloads(events);
  std::size_t payload_bytes = 0;
  for (const auto& p : payloads) payload_bytes += p.size();
  const double bytes_per_event =
      static_cast<double>(payload_bytes) / static_cast<double>(events);
  std::printf("%zu events, %.1f payload bytes/event, shard attr \"rank\"\n\n",
              events, bytes_per_event);

  bool ok = true;
  const auto gate = [&](bool cond, const std::string& what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };

  struct ShardResult {
    std::size_t shards;
    double serial_eps;
    double parallel_eps;
    double speedup;
    std::uint64_t backpressure_waits;
    std::size_t threads_used;
  };
  std::vector<ShardResult> shard_results;
  bool identical = true;

  std::printf("timings are the median of %zu runs per configuration\n\n",
              kReps);
  exp::TextTable table({"Shards", "Threads", "Serial ev/s", "Parallel ev/s",
                        "Speedup", "Backpressure", "Identical"});
  for (const std::size_t shards : {1, 2, 4, 8}) {
    const IngestRun serial = median_run(
        [&] { return run_serial(schema, shards, payloads); });
    const IngestRun parallel = median_run(
        [&] { return run_parallel(schema, shards, shards, payloads); });
    const std::string fp_serial = fingerprint(*serial.cluster);
    const std::string fp_parallel = fingerprint(*parallel.cluster);
    const bool same = fp_serial == fp_parallel && !fp_serial.empty();
    identical = identical && same;
    ShardResult r;
    r.shards = shards;
    r.serial_eps = static_cast<double>(events) / serial.seconds;
    r.parallel_eps = static_cast<double>(events) / parallel.seconds;
    r.speedup = r.parallel_eps / r.serial_eps;
    r.backpressure_waits = parallel.backpressure_waits;
    r.threads_used = parallel.threads_used;
    shard_results.push_back(r);
    table.add_row({std::to_string(shards), std::to_string(r.threads_used),
                   exp::cell_f(r.serial_eps, 0),
                   exp::cell_f(r.parallel_eps, 0), exp::cell_f(r.speedup, 2),
                   exp::cell_u(r.backpressure_waits), same ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // Per-stage serial breakdown: where a JSON-path event's time goes.
  const StageNs stages = measure_stage_ns(schema, payloads);
  std::printf("Per-stage serial cost (ns/event, measured in isolation):\n");
  std::printf("  decode %8.1f   route %6.1f   enqueue %6.1f   commit %6.1f\n\n",
              stages.decode, stages.route, stages.enqueue, stages.commit);

  // Binary hot path: wire frames through the pinned lock-free executor.
  const std::vector<std::string> frames = make_frames(events);
  std::size_t frame_bytes = 0;
  for (const auto& f : frames) frame_bytes += f.size();
  util::PinPolicy pin_policy;
  util::parse_pin_policy("auto", pin_policy);
  const std::vector<int> pin_cpus = util::resolve_pin_cpus(pin_policy);
  const std::string simd_name(util::simd_level_name(util::active_simd()));
  const IngestRun hot_serial =
      median_run([&] { return run_hot_serial(schema, frames); });
  const IngestRun hot =
      median_run([&] { return run_hot_parallel(schema, pin_cpus, frames); });
  const bool hot_identical =
      fingerprint(*hot_serial.cluster) == fingerprint(*hot.cluster) &&
      !frames.empty();
  const double hot_serial_eps =
      static_cast<double>(events) / hot_serial.seconds;
  const double hot_eps = static_cast<double>(events) / hot.seconds;
  const double hot_speedup = hot_eps / kCommittedParallelEps;
  std::printf("Binary hot path (wire frames -> FrameCursor -> pinned "
              "executor, %zu shards):\n",
              kHotShards);
  std::printf("  %zu frames, %zu events/frame, %.1f frame bytes/event, "
              "simd=%s, pinned cpus=%zu\n",
              frames.size(), kEventsPerFrame,
              static_cast<double>(frame_bytes) / static_cast<double>(events),
              simd_name.c_str(), pin_cpus.size());
  std::printf("  serial %10.0f ev/s   parallel %10.0f ev/s (%zu threads)\n",
              hot_serial_eps, hot_eps, hot.threads_used);
  std::printf("  vs committed JSON baseline %.0f ev/s: %.2fx\n\n",
              kCommittedParallelEps, hot_speedup);

  // Phase 2: zone-map pruning on a time-rotated partitioned store.  Each
  // partition holds one timestamp window, and the filter targets the last
  // window — with zone maps every older partition is skipped.
  constexpr std::size_t kPartitions = 8;
  dsos::PartitionedStore store("w0");
  store.register_schema(schema);
  {
    std::vector<dsos::Object> rows;
    const std::size_t per_part = (events + kPartitions - 1) / kPartitions;
    std::size_t in_part = 0, part = 0;
    for (const std::string& p : payloads) {
      if (in_part == per_part && part + 1 < kPartitions) {
        store.rotate("w" + std::to_string(++part));
        in_part = 0;
      }
      decode_payload(schema, p, rows);
      for (auto& obj : rows) store.insert(std::move(obj));
      ++in_part;
    }
  }
  // Timestamps advance 1 ms per event: the filter selects the final 5% of
  // the time range, entirely inside the last partition.
  const double t_hi = 1.6e9 + 0.001 * static_cast<double>(events);
  const double t_lo = t_hi - 0.05 * 0.001 * static_cast<double>(events);
  const dsos::Filter time_filter{
      {"seg_timestamp", dsos::Cmp::kGe, t_lo},
      {"seg_timestamp", dsos::Cmp::kLt, t_hi},
  };
  const auto time_queries = [&](bool zone_maps) {
    store.set_zone_maps(zone_maps);
    std::size_t hits = 0;
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < query_iters; ++i) {
      hits = store.query("darshan_data", "time", time_filter).size();
    }
    const double dt = now_seconds() - t0;
    return std::pair<double, std::size_t>(dt, hits);
  };
  const auto [unpruned_s, unpruned_hits] = time_queries(false);
  const std::uint64_t pruned_before = store.zone_pruned();
  const auto [pruned_s, pruned_hits] = time_queries(true);
  const std::uint64_t pruned_parts =
      (store.zone_pruned() - pruned_before) / query_iters;
  store.set_zone_maps(true);

  std::printf("Partitioned time-range query (%zu partitions, last-window "
              "filter, %zu iterations):\n",
              kPartitions, query_iters);
  std::printf("  zone maps off: %8.2f ms  (%zu hits)\n", unpruned_s * 1e3,
              unpruned_hits);
  std::printf("  zone maps on:  %8.2f ms  (%zu hits, %llu/%zu partitions "
              "pruned per query)\n",
              pruned_s * 1e3, pruned_hits,
              static_cast<unsigned long long>(pruned_parts), kPartitions);
  const double pruned_speedup = pruned_s > 0 ? unpruned_s / pruned_s : 0.0;
  std::printf("  pruning speedup: %.2fx\n\n", pruned_speedup);

  // Phase 3: limit pushdown through the cluster k-way merge.
  const auto limit_cluster = run_serial(schema, 4, payloads).cluster;
  constexpr std::size_t kLimit = 100;
  double full_s, limited_s;
  {
    const double t0 = now_seconds();
    std::size_t n = 0;
    for (std::size_t i = 0; i < query_iters; ++i) {
      n = limit_cluster->query("darshan_data", "job_rank_time").size();
    }
    full_s = now_seconds() - t0;
    const double t1 = now_seconds();
    std::size_t m = 0;
    for (std::size_t i = 0; i < query_iters; ++i) {
      m = limit_cluster->query("darshan_data", "job_rank_time", {}, kLimit)
              .size();
    }
    limited_s = now_seconds() - t1;
    std::printf("Cluster query limit pushdown (%zu iterations): full %zu "
                "hits in %.2f ms, limit %zu -> %zu hits in %.2f ms\n\n",
                query_iters, n, full_s * 1e3, kLimit, m, limited_s * 1e3);
  }

  // BENCH_ingest.json — the repo's benchmark trajectory artifact.
  {
    const char* out_path = std::getenv("DLC_BENCH_OUT");
    const std::string path = out_path ? out_path : "BENCH_ingest.json";
    json::Writer w;
    w.begin_object();
    w.member("bench", "ingest");
    w.member("events", static_cast<std::uint64_t>(events));
    w.member("payload_bytes_per_event", bytes_per_event);
    const util::CpuBudget cpus = util::cpu_budget();
    w.member("hardware_threads",
             static_cast<std::uint64_t>(cpus.hardware_threads));
    w.member("affinity_cpus", static_cast<std::uint64_t>(cpus.affinity));
    w.member("cgroup_quota_cpus",
             static_cast<std::uint64_t>(cpus.quota_cpus));
    w.member("effective_cpus", static_cast<std::uint64_t>(cpus.effective));
    w.member("effective_cpus_source", cpus.source);
    w.member("runs_per_config", static_cast<std::uint64_t>(kReps));
    w.member("timing", "median");
    w.key("shard_counts");
    w.begin_array();
    for (const ShardResult& r : shard_results) {
      w.begin_object();
      w.member("shards", static_cast<std::uint64_t>(r.shards));
      w.member("threads_used", static_cast<std::uint64_t>(r.threads_used));
      w.member("serial_events_per_sec", r.serial_eps);
      w.member("parallel_events_per_sec", r.parallel_eps);
      w.member("speedup", r.speedup);
      w.member("backpressure_waits", r.backpressure_waits);
      w.end_object();
    }
    w.end_array();
    w.member("results_byte_identical", identical);
    w.key("baseline");
    w.begin_object();
    w.member("source",
             "committed BENCH_ingest.json at 81e8833 (best parallel row, "
             "2 shards, JSON path)");
    w.member("parallel_events_per_sec", kCommittedParallelEps);
    w.end_object();
    w.key("stage_ns_per_event");
    w.begin_object();
    w.member("decode_ns", stages.decode);
    w.member("route_ns", stages.route);
    w.member("enqueue_ns", stages.enqueue);
    w.member("commit_ns", stages.commit);
    w.end_object();
    w.key("hot_path");
    w.begin_object();
    w.member("format", "binary_batched");
    w.member("frames", static_cast<std::uint64_t>(frames.size()));
    w.member("events_per_frame", static_cast<std::uint64_t>(kEventsPerFrame));
    w.member("frame_bytes_per_event",
             static_cast<double>(frame_bytes) / static_cast<double>(events));
    w.member("shards", static_cast<std::uint64_t>(kHotShards));
    w.member("threads_used", static_cast<std::uint64_t>(hot.threads_used));
    w.member("pin", pin_cpus.empty() ? "none" : "auto");
    w.member("pinned_cpus", static_cast<std::uint64_t>(pin_cpus.size()));
    w.member("simd", simd_name);
    w.member("serial_events_per_sec", hot_serial_eps);
    w.member("events_per_sec", hot_eps);
    w.member("speedup_vs_committed_baseline", hot_speedup);
    w.member("backpressure_waits", hot.backpressure_waits);
    w.member("byte_identical", hot_identical);
    w.end_object();
    w.key("zone_map_query");
    w.begin_object();
    w.member("partitions", static_cast<std::uint64_t>(kPartitions));
    w.member("query_iters", static_cast<std::uint64_t>(query_iters));
    w.member("unpruned_ms", unpruned_s * 1e3);
    w.member("pruned_ms", pruned_s * 1e3);
    w.member("partitions_pruned_per_query",
             static_cast<std::uint64_t>(pruned_parts));
    w.member("pruning_speedup", pruned_speedup);
    w.end_object();
    w.key("limit_query");
    w.begin_object();
    w.member("limit", static_cast<std::uint64_t>(kLimit));
    w.member("full_ms", full_s * 1e3);
    w.member("limited_ms", limited_s * 1e3);
    w.end_object();
    w.end_object();
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("wrote %s\n\n", path.c_str());
  }

  // Correctness gate: ALWAYS fatal.  Parallel ingest that changes query
  // results is a bug regardless of benchmarking mode.
  gate(identical,
       "parallel and serial ingest produce byte-identical query results");
  gate(hot_identical,
       "binary hot path: pinned-parallel and serial cursor ingest are "
       "byte-identical");
  gate(pruned_hits == unpruned_hits,
       "zone-map pruning returns identical hits");
  if (check) {
    // The speedup gate needs real parallelism to be meaningful: the caller
    // thread decodes while >= 4 workers insert, so when the process can
    // really run on fewer than 4 CPUs — few hardware threads, a narrow
    // affinity mask, or a cgroup quota (util::cpu_budget) — the workers
    // time-slice and the gate would fail on physics, not on a regression.
    const util::CpuBudget cpus = util::cpu_budget();
    for (const ShardResult& r : shard_results) {
      if (r.shards < 4) continue;
      char buf[256];
      if (cpus.effective < 4) {
        std::snprintf(buf, sizeof(buf),
                      "  [SKIPPED] perf gate WAIVED: parallel >= 1.5x serial "
                      "events/sec at %zu shards (effective CPUs %zu via %s: "
                      "hw=%zu affinity=%zu quota=%zu; got %.2fx)\n",
                      r.shards, cpus.effective, cpus.source.c_str(),
                      cpus.hardware_threads, cpus.affinity, cpus.quota_cpus,
                      r.speedup);
        std::printf("%s", buf);
        continue;
      }
      std::snprintf(buf, sizeof(buf),
                    "parallel >= 1.5x serial events/sec at %zu shards "
                    "(got %.2fx)",
                    r.shards, r.speedup);
      gate(r.speedup >= 1.5, buf);
    }
    // The tentpole gate: the binary hot path must beat the COMMITTED
    // JSON-path baseline by >= 5x.  Same effective-CPU waiver as above —
    // the hot path is 4 pinned writers plus the cursor-walking caller, so
    // below 4 effective CPUs the ratio measures time-slicing, not the
    // hot path.
    {
      char buf[320];
      if (cpus.effective < 4) {
        std::snprintf(buf, sizeof(buf),
                      "  [SKIPPED] perf gate WAIVED: binary hot path >= 5x "
                      "committed baseline %.0f ev/s (effective CPUs %zu via "
                      "%s: hw=%zu affinity=%zu quota=%zu; got %.2fx at "
                      "%.0f ev/s)\n",
                      kCommittedParallelEps, cpus.effective,
                      cpus.source.c_str(), cpus.hardware_threads,
                      cpus.affinity, cpus.quota_cpus, hot_speedup, hot_eps);
        std::printf("%s", buf);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "binary hot path >= 5x committed baseline %.0f ev/s "
                      "(got %.2fx at %.0f ev/s)",
                      kCommittedParallelEps, hot_speedup, hot_eps);
        gate(hot_speedup >= 5.0, buf);
      }
    }
    gate(pruned_parts > 0, "zone maps prune at least one partition");
    gate(pruned_s <= unpruned_s, "pruned queries are no slower");
  }

  if (!ok) {
    std::printf("\ningest gate FAILED\n");
    return 1;
  }
  std::printf("\ningest gate passed\n");
  return 0;
}
