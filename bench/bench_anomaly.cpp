// Anomaly-detection benchmark: the "diagnosis while the job is still
// running" bar (DESIGN.md §11).
//
// Phase 1 prices the detector on the ingest hot path.  One deterministic
// HMMER-like stream (DLC_ANOMALY_EVENTS events, default 3M: 4 jobs x 64
// ranks over 4 nodes, 1 ms spacing) is ingested twice into a 4-shard
// DSOS cluster with the `anomaly_node` rollup policy attached:
//   rollup-only:  the policy folds and seals, nobody observes the seals,
//   anomaly:      an AnomalyEngine rides every seal batch,
// timing both (interleaved reps, medians).  The stream is uniform, so
// this doubles as a large-scale false-positive gate: ~300 evaluated
// buckets x 4 jobs and the detector must stay silent.
//
// Phase 2 runs the paper's diagnosis campaigns end to end through
// exp::run_experiment (virtual time) with scripted `ioslow` faults:
//   slow-node:  one node's writes x12 — the straggler detector must name
//               exactly that job and node, and must fire *while ingest
//               is in progress* (a live tap on the final aggregator
//               records the message index at first fire) within a small
//               number of buckets of the fault window opening;
//   degrading:  FS-wide write ramp — the slowdown detector must fire and
//               the straggler detector must NOT (uniform pain has no
//               straggler to blame);
//   clean:      no faults — zero alerts fired, ever (false-positive gate).
// All phase-2 gates are correctness and always fatal.
//
// --check adds the fatal perf gate: anomaly-attached ingest >= 0.99x
// rollup-only events/sec (< 1% overhead), waived (loudly) below 4
// effective CPUs like every other timing A/B in bench/.  Writes
// BENCH_anomaly.json (override: DLC_BENCH_OUT).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "anomaly/engine.hpp"
#include "core/schema_darshan.hpp"
#include "dsos/cluster.hpp"
#include "exp/pipeline.hpp"
#include "exp/table.hpp"
#include "json/writer.hpp"
#include "relia/fault.hpp"
#include "rollup/engine.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::uint64_t kSeed = 1721;
constexpr std::size_t kRanks = 64;
constexpr std::size_t kJobs = 4;
constexpr std::size_t kCommitEvery = 1 << 16;
constexpr double kStreamBucketS = 10.0;

/// Event i of the synthetic stream; deterministic in (seed, i) so both
/// arms ingest byte-identical streams.  Uniform across 4 nodes and 4
/// jobs — nothing in here should ever trip a detector.
dsos::Object make_event(const dsos::SchemaPtr& schema, Rng& rng,
                        std::size_t i) {
  const std::uint64_t job = 1 + i % kJobs;
  const double ts = 1.6e9 + 0.001 * static_cast<double>(i);
  const auto rank = rng.uniform_int(0, static_cast<std::int64_t>(kRanks) - 1);
  const double u = rng.uniform();
  const char* op = u < 0.05 ? "open" : u < 0.10 ? "close"
                            : u < 0.55 ? "read" : "write";
  const bool meta = u < 0.10;
  const auto seg_len =
      meta ? std::int64_t{-1}
           : static_cast<std::int64_t>(rng.next_u64() % (1 << 16));
  const double seg_dur = rng.uniform(1e-5, 5e-3);
  return dsos::make_object(
      schema,
      {
          std::string("POSIX"),                                  // module
          std::uint64_t{99066},                                  // uid
          "nid" + std::to_string(41 + rank % 4),                 // ProducerName
          std::int64_t{0},                                       // switches
          std::string("seq.fasta"),                              // file
          rank,                                                  // rank
          std::int64_t{-1},                                      // flushes
          std::uint64_t{1000 + i % 32},                          // record_id
          std::string("/usr/bin/hmmsearch"),                     // exe
          static_cast<std::int64_t>(rng.next_u64() % (1 << 22)), // max_byte
          std::string("MOD"),                                    // type
          job,                                                   // job_id
          std::string(op),                                       // op
          static_cast<std::int64_t>(rng.next_u64() % 64),        // cnt
          static_cast<std::int64_t>(rng.next_u64() % (1 << 22)), // seg_off
          std::int64_t{-1},                                      // seg_pt_sel
          seg_dur,                                               // seg_dur
          seg_len,                                               // seg_len
          std::int64_t{-1},                                      // seg_ndims
          std::int64_t{-1},  // seg_reg_hslab
          std::int64_t{-1},  // seg_irreg_hslab
          std::string("N/A"),  // seg_data_set
          std::int64_t{-1},    // seg_npoints
          ts,                  // seg_timestamp
      });
}

struct IngestArm {
  // Destruction order: detector detaches from the rollup engine, the
  // engine from the cluster — reverse of member order.
  std::unique_ptr<dsos::DsosCluster> cluster;
  std::shared_ptr<rollup::RollupEngine> engine;
  std::shared_ptr<anomaly::AnomalyEngine> detector;
  double seconds = 0.0;
};

IngestArm run_ingest(const dsos::SchemaPtr& schema, std::size_t events,
                     bool with_detector) {
  IngestArm arm;
  dsos::ClusterConfig ccfg;
  ccfg.shard_count = 4;
  ccfg.shard_attr = "rank";
  arm.cluster = std::make_unique<dsos::DsosCluster>(ccfg);
  arm.cluster->register_schema(schema);
  rollup::RollupEngineConfig rcfg;
  rcfg.policies = {anomaly::anomaly_policy(kStreamBucketS)};
  arm.engine = std::make_shared<rollup::RollupEngine>(rcfg);
  arm.engine->attach(*arm.cluster);
  if (with_detector) {
    anomaly::AnomalyConfig acfg;
    acfg.bucket_s = kStreamBucketS;
    arm.detector = std::make_shared<anomaly::AnomalyEngine>(acfg);
    arm.detector->attach(*arm.engine);
  }
  Rng rng(kSeed);
  const std::size_t shards = arm.cluster->shard_count();
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < events; ++i) {
    arm.cluster->insert(make_event(schema, rng, i));
    if ((i + 1) % kCommitEvery == 0) {
      for (std::size_t s = 0; s < shards; ++s) arm.cluster->commit_shard(s);
    }
  }
  for (std::size_t s = 0; s < shards; ++s) arm.cluster->commit_shard(s);
  arm.engine->flush();
  arm.seconds = now_seconds() - t0;
  return arm;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Interleaved A/B timing (rollup-only rep, anomaly rep, …) so both arms
/// see the same allocator/page-cache evolution.  Only the last anomaly
/// arm survives for the correctness checks.
struct AbTiming {
  IngestArm anomaly;
  double rollup_only_seconds = 0.0;
};

AbTiming ab_ingest(const dsos::SchemaPtr& schema, std::size_t events,
                   std::size_t reps) {
  std::vector<double> base_s, anom_s;
  AbTiming ab;
  for (std::size_t r = 0; r < reps; ++r) {
    base_s.push_back(run_ingest(schema, events, false).seconds);
    ab.anomaly.detector.reset();
    ab.anomaly.engine.reset();
    ab.anomaly.cluster.reset();
    ab.anomaly = run_ingest(schema, events, true);
    anom_s.push_back(ab.anomaly.seconds);
  }
  ab.rollup_only_seconds = median(base_s);
  ab.anomaly.seconds = median(anom_s);
  return ab;
}

// --- phase 2: diagnosis campaigns ----------------------------------------

constexpr double kCampaignBucketS = 5.0;
constexpr double kFaultAtS = 10.0;

exp::ExperimentSpec campaign_spec() {
  exp::ExperimentSpec spec;
  workloads::MpiIoTestConfig io;
  io.iterations = 30;
  io.block_size = 1 << 20;
  io.collective = false;
  io.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(io);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.fs = simfs::FsKind::kLustre;
  spec.decode_to_dsos = true;
  spec.connector.anomaly = true;
  spec.connector.anomaly_bucket_s = kCampaignBucketS;
  return spec;
}

struct CampaignResult {
  exp::RunResult run;
  /// Virtual delivery times (run-relative seconds) of every message the
  /// final aggregator received, tapped live off the L2 bus.
  std::vector<double> deliver_s;
};

CampaignResult run_campaign(const std::string& fault_plan) {
  exp::ExperimentSpec spec = campaign_spec();
  if (!fault_plan.empty()) {
    spec.fault_plan = relia::parse_fault_plan(fault_plan);
    if (!spec.fault_plan.ok()) {
      std::fprintf(stderr, "bad fault plan: %s\n",
                   spec.fault_plan.errors.front().c_str());
      std::exit(2);
    }
  }
  auto delivered = std::make_shared<std::vector<double>>();
  spec.live_subscriber = [delivered](const ldms::StreamMessage& msg) {
    delivered->push_back(to_seconds(msg.deliver_time));
  };
  CampaignResult c;
  c.run = exp::run_experiment(spec);
  c.deliver_s = std::move(*delivered);
  return c;
}

/// Virtual instant (run-relative seconds) at which the alert's firing
/// bucket sealed — the moment the decision became available on
/// /api/anomalies.  Buckets seal `grace` (2x bucket width) behind the
/// max observed timestamp; alert bucket stamps are absolute epoch
/// seconds (SimEpoch anchor), campaign faults are run-relative.
double fire_instant_s(const anomaly::Alert& a) {
  const double grace = 2.0 * kCampaignBucketS;
  return a.fired_bucket + kCampaignBucketS + grace -
         SimEpoch{}.epoch_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const std::size_t events = env_size("DLC_ANOMALY_EVENTS", 3000000);
  const std::size_t reps = env_size("DLC_ANOMALY_REPS", 3);
  const auto schema = core::darshan_data_schema();

  std::printf("== Online anomaly detection: ingest overhead + campaigns ==\n\n");

  bool ok = true;
  const auto gate = [&](bool cond, const std::string& what) {
    std::printf("  [%s] %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };

  // Phase 1: ingest A/B.
  std::printf("%zu events (%zu jobs x %zu ranks), anomaly_node policy, "
              "commit every %zu events; medians of %zu runs per arm\n\n",
              events, kJobs, kRanks, kCommitEvery, reps);
  AbTiming ab = ab_ingest(schema, events, reps);
  const double base_eps = static_cast<double>(events) / ab.rollup_only_seconds;
  const double anom_eps = static_cast<double>(events) / ab.anomaly.seconds;
  const double overhead_pct =
      (ab.anomaly.seconds / ab.rollup_only_seconds - 1.0) * 100.0;
  const anomaly::AnomalyStats stream_stats = ab.anomaly.detector->stats();

  exp::TextTable ingest_table({"Arm", "Events/s", "Seconds", "Overhead"});
  ingest_table.add_row({"rollup-only", exp::cell_f(base_eps, 0),
                        exp::cell_f(ab.rollup_only_seconds, 2), "-"});
  ingest_table.add_row({"anomaly", exp::cell_f(anom_eps, 0),
                        exp::cell_f(ab.anomaly.seconds, 2),
                        exp::cell_f(overhead_pct, 1) + "%"});
  std::printf("%s\n", ingest_table.render().c_str());
  std::printf("detector: %llu cells folded, %llu buckets evaluated, "
              "%llu observations, %llu late\n\n",
              static_cast<unsigned long long>(stream_stats.cells),
              static_cast<unsigned long long>(stream_stats.buckets_evaluated),
              static_cast<unsigned long long>(stream_stats.observations),
              static_cast<unsigned long long>(stream_stats.late_cells));

  gate(stream_stats.buckets_evaluated > 0 && stream_stats.cells > 0,
       "detector evaluated sealed buckets during ingest (" +
           std::to_string(stream_stats.buckets_evaluated) + " buckets)");
  gate(stream_stats.alerts_fired == 0,
       "uniform stream fires zero alerts across " +
           std::to_string(stream_stats.buckets_evaluated) +
           " evaluated buckets (false-positive gate)");

  // Phase 2: campaigns.
  std::printf("campaigns: mpi-io-test, 4 nodes x 2 ranks, %.0fs buckets\n\n",
              kCampaignBucketS);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ioslow nid00042 at %.0fs for 45s factor 12 op write",
                kFaultAtS);
  const CampaignResult slow = run_campaign(buf);
  const CampaignResult degrading = run_campaign(
      "ioslow * at 5s for 80s factor 10 op write ramp");
  const CampaignResult clean = run_campaign("");

  // Slow node: the straggler detector names the job and the node.
  const anomaly::Alert* straggler = nullptr;
  bool misnamed = false;
  const std::vector<anomaly::Alert> slow_alerts = slow.run.anomalies->alerts();
  for (const anomaly::Alert& a : slow_alerts) {
    if (a.kind != anomaly::AlertKind::kStraggler) continue;
    if (a.node == "nid00042" && a.job == "1") {
      if (straggler == nullptr) straggler = &a;
    } else {
      misnamed = true;
    }
  }
  gate(straggler != nullptr && !misnamed,
       "slow-node campaign: straggler names job 1 / nid00042 and nothing "
       "else");
  double latency_buckets = -1.0;
  std::uint64_t after_fire = 0;
  double fire_s = 0.0;
  if (straggler != nullptr) {
    const double epoch = SimEpoch{}.epoch_seconds();
    latency_buckets =
        (straggler->fired_bucket - epoch - kFaultAtS) / kCampaignBucketS;
    std::snprintf(buf, sizeof(buf),
                  "straggler fired %.1f buckets after the fault opened "
                  "(<= 4)",
                  latency_buckets);
    gate(latency_buckets >= 0.0 && latency_buckets <= 4.0, buf);
    // "While ingest is in progress": on the virtual timeline, messages
    // were still arriving at the aggregator after the firing bucket
    // sealed — the alert was live on /api/anomalies mid-run.
    fire_s = fire_instant_s(*straggler);
    for (const double t : slow.deliver_s) {
      if (t > fire_s) ++after_fire;
    }
    std::snprintf(buf, sizeof(buf),
                  "alert fired at t=%.0fs with %llu of %zu messages still "
                  "to arrive — while ingest was in progress",
                  fire_s, static_cast<unsigned long long>(after_fire),
                  slow.deliver_s.size());
    gate(after_fire > 0 && after_fire < slow.deliver_s.size(), buf);
  }

  // Degrading writes: slowdown fires, straggler stays quiet.
  bool slowdown_fired = false;
  bool degrading_straggler = false;
  for (const anomaly::Alert& a : degrading.run.anomalies->alerts()) {
    if (a.kind == anomaly::AlertKind::kSlowdown) slowdown_fired = true;
    if (a.kind == anomaly::AlertKind::kStraggler) degrading_straggler = true;
  }
  gate(slowdown_fired,
       "degrading-write campaign: slowdown trend alert fired");
  gate(!degrading_straggler,
       "degrading-write campaign: uniform slowdown blamed on no node");

  // Clean run: nothing fires.
  const anomaly::AnomalyStats clean_stats = clean.run.anomalies->stats();
  gate(clean_stats.buckets_evaluated > 0 && clean_stats.alerts_fired == 0,
       "clean campaign: zero alerts over " +
           std::to_string(clean_stats.buckets_evaluated) +
           " evaluated buckets");

  // BENCH_anomaly.json — the benchmark trajectory artifact.
  {
    const char* out_path = std::getenv("DLC_BENCH_OUT");
    const std::string path = out_path ? out_path : "BENCH_anomaly.json";
    json::Writer w;
    w.begin_object();
    w.member("bench", "anomaly");
    w.member("events", static_cast<std::uint64_t>(events));
    w.member("runs_per_arm", static_cast<std::uint64_t>(reps));
    w.member("timing", "median");
    w.member("rollup_only_events_per_sec", base_eps);
    w.member("anomaly_events_per_sec", anom_eps);
    w.member("ingest_overhead_pct", overhead_pct);
    {
      const util::CpuBudget cpus = util::cpu_budget();
      w.member("hardware_threads",
               static_cast<std::uint64_t>(cpus.hardware_threads));
      w.member("effective_cpus", static_cast<std::uint64_t>(cpus.effective));
      w.member("effective_cpus_source", cpus.source);
    }
    w.key("stream");
    w.begin_object();
    w.member("cells", stream_stats.cells);
    w.member("buckets_evaluated", stream_stats.buckets_evaluated);
    w.member("observations", stream_stats.observations);
    w.member("late_cells", stream_stats.late_cells);
    w.member("alerts_fired", stream_stats.alerts_fired);
    w.end_object();
    w.key("campaigns");
    w.begin_object();
    w.key("slow_node");
    w.begin_object();
    w.member("straggler_named_correctly",
             straggler != nullptr && !misnamed);
    w.member("detection_latency_buckets", latency_buckets);
    w.member("fire_instant_s", fire_s);
    w.member("messages_after_fire", after_fire);
    w.member("messages",
             static_cast<std::uint64_t>(slow.deliver_s.size()));
    w.member("alerts_fired", slow.run.anomalies->stats().alerts_fired);
    w.end_object();
    w.key("degrading_write");
    w.begin_object();
    w.member("slowdown_fired", slowdown_fired);
    w.member("straggler_fired", degrading_straggler);
    w.member("alerts_fired",
             degrading.run.anomalies->stats().alerts_fired);
    w.end_object();
    w.key("clean");
    w.begin_object();
    w.member("buckets_evaluated", clean_stats.buckets_evaluated);
    w.member("alerts_fired", clean_stats.alerts_fired);
    w.end_object();
    w.end_object();
    w.end_object();
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }

  if (check) {
    // Like every timing A/B in bench/, the overhead gate needs CPUs to
    // itself: below 4 effective CPUs the fold competes with the OS for
    // one core and fails on scheduling physics, not regressions.
    const util::CpuBudget cpus = util::cpu_budget();
    if (cpus.effective >= 4) {
      std::snprintf(buf, sizeof(buf),
                    "anomaly ingest >= 0.99x rollup-only events/sec "
                    "(got %.4fx, overhead %.2f%%)",
                    anom_eps / base_eps, overhead_pct);
      gate(anom_eps >= 0.99 * base_eps, buf);
    } else {
      std::printf("  [SKIPPED] perf gate WAIVED: anomaly ingest >= 0.99x "
                  "rollup-only events/sec (effective CPUs %zu via %s: "
                  "hw=%zu affinity=%zu quota=%zu; got %.4fx)\n",
                  cpus.effective, cpus.source.c_str(),
                  cpus.hardware_threads, cpus.affinity, cpus.quota_cpus,
                  anom_eps / base_eps);
    }
  }

  if (!ok) {
    std::printf("\nanomaly gate FAILED\n");
    return 1;
  }
  std::printf("\nanomaly gate passed\n");
  return 0;
}
