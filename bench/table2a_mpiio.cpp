// Reproduces Table IIa: MPI-IO-TEST on NFS and Lustre, collective vs
// independent — average messages, message rate, mean runtime for Darshan
// only vs the Darshan-LDMS Connector (dC), and percent overhead.
//
// Env knobs: DLC_REPS (default 5, like the paper).
#include <cstdio>
#include <cstdlib>

#include "exp/campaign.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"

using namespace dlc;

namespace {

std::size_t env_reps(std::size_t fallback) {
  if (const char* v = std::getenv("DLC_REPS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

}  // namespace

int main() {
  exp::CampaignConfig campaign;
  campaign.repetitions = env_reps(5);
  // Darshan-only baselines were recorded 1-2 weeks before the dC runs.
  campaign.baseline_epoch = 1000;
  campaign.connector_epoch = 2000;

  std::printf("== Table IIa: MPI-IO-TEST (22 nodes, 10 iters, 16 MiB blocks, "
              "%zu reps) ==\n",
              campaign.repetitions);
  std::printf("paper: NFS/coll 1376.67s (-1.55%%)  NFS/ind 880.46s (-2.47%%)  "
              "Lustre/coll 249.97s (+8.41%%)  Lustre/ind 428.18s (-3.23%%)\n\n");

  exp::TextTable table({"Config", "Avg msgs", "Rate (msg/s)", "Darshan (s)",
                        "dC (s)", "% Overhead", "Drops"});
  for (const auto fs : {simfs::FsKind::kNfs, simfs::FsKind::kLustre}) {
    for (const bool collective : {true, false}) {
      exp::ExperimentSpec spec = exp::mpi_io_test_spec(fs, collective);
      const std::string label = std::string(simfs::fs_kind_name(fs)) +
                                (collective ? "/collective" : "/independent");
      const exp::OverheadRow row =
          exp::measure_overhead(label, spec, campaign);
      table.add_row({row.label, exp::cell_f(row.avg_messages, 0),
                     exp::cell_f(row.msg_rate, 1),
                     exp::cell_f(row.darshan_runtime_s),
                     exp::cell_f(row.dc_runtime_s),
                     exp::cell_pct(row.overhead_pct),
                     exp::cell_f(row.dropped, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
