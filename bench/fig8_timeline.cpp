// Reproduces Fig. 8: distribution of read/write operations through the
// anomalous job's execution time — ten write phases then reads at the
// end; writes degrade over the run, slowest after ~250 s.
#include <cstdio>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "exp/figdata.hpp"

using namespace dlc;

int main() {
  std::printf("== Fig. 8: op durations vs execution time, anomalous job ==\n");
  std::printf("paper: ten write phases, reads at the end, writes slowest "
              "after 250s\n\n");

  const exp::FigDataset data = exp::mpiio_independent_campaign(5, 42);
  const analysis::DataFrame timeline =
      analysis::fig8_timeline(*data.db, data.anomalous_job);

  analysis::ScatterSeries writes{'w', {}, {}};
  analysis::ScatterSeries reads{'r', {}, {}};
  for (std::size_t r = 0; r < timeline.rows(); ++r) {
    const double t = timeline.get_double(r, "rel_time_s");
    const double d = timeline.get_double(r, "dur_s");
    if (timeline.get_string(r, "op") == "write") {
      writes.x.push_back(t);
      writes.y.push_back(d);
    } else {
      reads.x.push_back(t);
      reads.y.push_back(d);
    }
  }
  std::printf("%s\n",
              analysis::ascii_scatter({writes, reads}, 78, 22,
                                      "time since job start (s)",
                                      "op duration (s)")
                  .c_str());

  // Quantify the degradation: mean write duration in the first vs last
  // third of the run.
  double t_end = 0;
  for (std::size_t i = 0; i < writes.x.size(); ++i) {
    t_end = std::max(t_end, writes.x[i]);
  }
  RunningStats early, late;
  for (std::size_t i = 0; i < writes.x.size(); ++i) {
    if (writes.x[i] < t_end / 3) early.add(writes.y[i]);
    if (writes.x[i] > 2 * t_end / 3) late.add(writes.y[i]);
  }
  std::printf("write duration, first third: %.2fs mean; last third: %.2fs "
              "mean (%.2fx degradation)\n",
              early.mean(), late.mean(),
              early.mean() > 0 ? late.mean() / early.mean() : 0.0);
  std::printf("reads begin at t=%.0fs of %.0fs total (tail of the run)\n",
              reads.x.empty() ? 0.0
                              : *std::min_element(reads.x.begin(),
                                                  reads.x.end()),
              t_end);
  return 0;
}
