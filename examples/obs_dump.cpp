// Self-telemetry end to end: run a traced campaign under the reference
// fault schedule, scrape /metrics the way Prometheus would, and dump the
// slow-span exemplar ring with its per-hop breakdown — the "why is my
// pipeline slow" workflow from DESIGN.md section 6.
#include <cstdio>
#include <string>

#include "exp/pipeline.hpp"
#include "exp/specs.hpp"
#include "json/parser.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "relia/fault.hpp"
#include "sim/engine.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/http.hpp"
#include "websvc/service.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

int main() {
  std::printf("== Pipeline self-telemetry: /metrics + slow-span dump ==\n\n");

  // Trace every event (sample=1) through an at-least-once run that hits
  // a daemon crash and an aggregator partition, so the exemplar ring has
  // genuinely slow redelivered spans to show.
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::MpiIoTestConfig cfg;
  cfg.block_size = 4ull * 1024 * 1024;
  cfg.iterations = 3;
  cfg.collective = false;
  cfg.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(cfg);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 3;
  spec.ranks_per_node = 4;
  spec.transport.hop_latency = 25 * kMillisecond;
  spec.connector.delivery = relia::DeliveryMode::kAtLeastOnce;
  spec.fault_plan = relia::parse_fault_plan(
      "crash nid00041 at 2500ms for 5s\n"
      "partition voltrino-head -> shirley at 9s for 4s\n");
  spec.decode_to_dsos = true;
  spec.connector.trace_sample_n = 1;
  const exp::RunResult run = exp::run_experiment(spec);
  std::printf("traced run: %llu rows ingested, %llu spans completed, "
              "%llu redelivered\n\n",
              static_cast<unsigned long long>(run.decoded_rows),
              static_cast<unsigned long long>(run.traces_completed),
              static_cast<unsigned long long>(run.redelivered));

  // Serve the run's database with the obs surfaces attached and scrape
  // it over HTTP, exactly as a Prometheus job + Grafana panel would.
  websvc::DashboardService service(run.dsos);
  service.set_registry(&obs::Registry::global());
  service.set_trace_collector(run.traces.get());
  websvc::HttpServer server(0, websvc::HttpServer::wrap(service));

  int status = 0;
  auto body = websvc::http_get(server.port(), "/metrics", &status);
  std::printf("GET /metrics -> %d\n", status);
  if (body) {
    // Print the trace family; the full exposition is a screenful.
    for (std::size_t pos = 0; pos < body->size();) {
      const std::size_t eol = body->find('\n', pos);
      const std::string line = body->substr(pos, eol - pos);
      if (line.find("dlc_trace_") != std::string::npos) {
        std::printf("  %s\n", line.c_str());
      }
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
  }

  // The exemplar ring: worst end-to-end spans with per-hop deltas.  This
  // is the on-demand dump — no tracing rerun needed, the ring is already
  // populated from the run above.
  body = websvc::http_get(server.port(), "/api/obs/spans", &status);
  std::printf("\nGET /api/obs/spans -> %d\n", status);
  if (run.traces) {
    const auto doc = json::parse(run.traces->spans_json());
    const auto& spans = doc->find("spans")->as_array();
    std::size_t shown = 0;
    for (const json::Value& span : spans) {
      if (shown++ == 3) break;
      std::printf("  span id=%llu e2e=%.1fms:",
                  static_cast<unsigned long long>(span.find("id")->as_uint()),
                  static_cast<double>(span.find("e2e_ns")->as_int()) / 1e6);
      for (const json::Value& hop : span.find("hops")->as_array()) {
        std::printf(" %s+%.1fms", hop.find("hop")->as_string().c_str(),
                    static_cast<double>(hop.find("delta_ns")->as_int()) / 1e6);
      }
      std::printf("\n");
    }
    std::printf("  (%zu spans in the ring; worst first)\n", spans.size());
  }

  // Server-side render of the self-monitoring dashboard.
  const std::string dashboard =
      websvc::render_dashboard(service, websvc::obs_self_dashboard());
  std::printf("\nrendered self-monitoring dashboard: %zu bytes, "
              "%llu requests served\n",
              dashboard.size(),
              static_cast<unsigned long long>(service.requests_served()));
  server.stop();
  return 0;
}
