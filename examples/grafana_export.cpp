// Export example: produce the artefacts the HPC Web Services layer serves
// — a Fig. 9-style Grafana panel JSON, a gnuplot script and tidy CSVs —
// from a monitored sw4 run.  Files land in ./dlc_export/.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "dsos/csv.hpp"
#include "exp/specs.hpp"

using namespace dlc;

int main() {
  std::printf("== Grafana/CSV export of a monitored sw4 run ==\n\n");

  exp::ExperimentSpec spec = exp::sw4_spec(simfs::FsKind::kLustre);
  spec.job_id = 31337;
  spec.decode_to_dsos = true;
  spec.sample_transport_health = true;  // drop/spool counters per daemon
  const exp::RunResult result = exp::run_experiment(spec);
  std::printf("sw4 job %llu: %.1fs, %llu events (%llu HDF5 dataset ops)\n",
              static_cast<unsigned long long>(spec.job_id), result.runtime_s,
              static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(
                  result.dsos
                      ->query("darshan_data", "time",
                              dsos::Filter{{"module", dsos::Cmp::kEq,
                                            std::string("H5D")}})
                      .size()));

  const std::filesystem::path out_dir = "dlc_export";
  std::filesystem::create_directories(out_dir);

  // 1. Raw event CSV (the store_csv view of the stream).
  {
    const auto rows = result.dsos->query("darshan_data", "job_rank_time");
    std::ofstream out(out_dir / "sw4_events.csv");
    dsos::export_csv(out, *core::darshan_data_schema(), rows);
    std::printf("wrote %s (%zu events)\n",
                (out_dir / "sw4_events.csv").c_str(), rows.size());
  }

  // 2. Fig. 9-style bucketed throughput + its Grafana panel JSON.
  const analysis::DataFrame buckets =
      analysis::fig9_throughput_buckets(*result.dsos, spec.job_id, 5.0);
  {
    std::ofstream out(out_dir / "sw4_throughput.csv");
    out << buckets.to_csv();
    std::ofstream panel(out_dir / "sw4_grafana_panel.json");
    panel << analysis::grafana_panel_json(buckets, "bucket_s", "bytes", "op",
                                          "sw4 bytes per op");
    std::printf("wrote %s and %s\n", (out_dir / "sw4_throughput.csv").c_str(),
                (out_dir / "sw4_grafana_panel.json").c_str());
  }

  // 3. gnuplot script for the same series.
  {
    std::ofstream out(out_dir / "sw4_throughput.gnuplot");
    out << analysis::gnuplot_script(buckets, "bucket_s", "bytes", "op",
                                    "sw4 checkpoint I/O");
    std::printf("wrote %s (pipe into gnuplot to render)\n",
                (out_dir / "sw4_throughput.gnuplot").c_str());
  }

  // 4. Transport-health panel: the per-daemon drop/spool counters sampled
  // on the metrics path (series named "<channel>@<daemon>").
  {
    analysis::DataFrame health;
    analysis::DataFrame::DoubleCol t_col, v_col;
    analysis::DataFrame::StringCol series_col;
    for (const analysis::TimeSeries& series : result.system_metrics) {
      const auto at = series.name.find('@');
      if (at == std::string::npos) continue;
      const std::string channel = series.name.substr(0, at);
      if (channel != "forwarded" && channel != "dropped" &&
          channel != "outage_dropped" && channel != "spooled" &&
          channel != "redelivered" && channel != "spool_depth") {
        continue;
      }
      for (std::size_t i = 0; i < series.t.size(); ++i) {
        t_col.push_back(series.t[i]);
        v_col.push_back(series.v[i]);
        series_col.push_back(series.name);
      }
    }
    health.add_double_column("time_s", std::move(t_col));
    health.add_double_column("value", std::move(v_col));
    health.add_string_column("series", std::move(series_col));
    std::ofstream out(out_dir / "sw4_transport_health.csv");
    out << health.to_csv();
    std::ofstream panel(out_dir / "sw4_transport_health_panel.json");
    panel << analysis::grafana_panel_json(health, "time_s", "value", "series",
                                          "sw4 transport health");
    std::printf("wrote %s and %s (%zu health points)\n",
                (out_dir / "sw4_transport_health.csv").c_str(),
                (out_dir / "sw4_transport_health_panel.json").c_str(),
                health.rows());
  }

  // 5. A terminal preview of what the dashboard shows.
  analysis::ScatterSeries w{'w', {}, {}}, r{'r', {}, {}};
  for (std::size_t i = 0; i < buckets.rows(); ++i) {
    auto& s = buckets.get_string(i, "op") == "write" ? w : r;
    s.x.push_back(buckets.get_double(i, "bucket_s"));
    s.y.push_back(buckets.get_double(i, "bytes"));
  }
  std::printf("\n%s", analysis::ascii_scatter({w, r}, 78, 14, "time (s)",
                                              "bytes per bucket")
                          .c_str());
  return 0;
}
