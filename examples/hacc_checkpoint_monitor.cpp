// Live monitoring example: subscribe to the connector's LDMS stream while
// a HACC-IO checkpoint runs and print a per-interval activity feed — the
// "know it *while* it happens" capability that distinguishes the
// Darshan-LDMS Connector from post-mortem Darshan logs.
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/render.hpp"
#include "exp/specs.hpp"
#include "json/parser.hpp"
#include "util/time.hpp"

using namespace dlc;

namespace {

/// A live subscriber on the analysis-cluster aggregator: bins incoming
/// connector messages into 20-virtual-second windows as they arrive.
class LiveFeed {
 public:
  void on_message(const ldms::StreamMessage& msg) {
    const auto doc = json::parse(msg.payload);
    if (!doc) return;
    const auto* seg = doc->find("seg");
    if (!seg || !seg->is_array() || seg->as_array().empty()) return;
    const auto& s = seg->as_array()[0];
    Window& w = windows_[msg.deliver_time / (20 * kSecond)];
    const std::string op = doc->get_string("op");
    ++w.ops[op];
    const std::int64_t len = std::max<std::int64_t>(0, s.get_int("len", 0));
    if (op == "write") w.bytes_written += len;
    if (op == "read") w.bytes_read += len;
  }

  void print() const {
    std::printf("%-12s %6s %6s %6s %6s %12s %12s\n", "window", "open",
                "write", "read", "close", "written", "read-bytes");
    for (const auto& [idx, w] : windows_) {
      auto count = [&w](const char* op) {
        const auto it = w.ops.find(op);
        return it == w.ops.end() ? std::int64_t{0} : it->second;
      };
      std::printf(
          "%4llds-%-5llds %6lld %6lld %6lld %6lld %12s %12s\n",
          static_cast<long long>(idx * 20),
          static_cast<long long>((idx + 1) * 20),
          static_cast<long long>(count("open")),
          static_cast<long long>(count("write")),
          static_cast<long long>(count("read")),
          static_cast<long long>(count("close")),
          format_bytes(static_cast<std::uint64_t>(w.bytes_written)).c_str(),
          format_bytes(static_cast<std::uint64_t>(w.bytes_read)).c_str());
    }
  }

 private:
  struct Window {
    std::map<std::string, std::int64_t> ops;
    std::int64_t bytes_written = 0;
    std::int64_t bytes_read = 0;
  };
  std::map<SimTime, Window> windows_;
};

}  // namespace

int main() {
  std::printf("== HACC-IO checkpoint monitor (live LDMS stream feed) ==\n\n");

  exp::ExperimentSpec spec =
      exp::hacc_io_spec(simfs::FsKind::kLustre, 2'000'000);
  spec.node_count = 8;
  spec.ranks_per_node = 2;
  spec.job_id = 2024;

  LiveFeed feed;
  spec.live_subscriber = [&feed](const ldms::StreamMessage& msg) {
    feed.on_message(msg);
  };

  const exp::RunResult result = exp::run_experiment(spec);
  std::printf("job %llu: %.1fs runtime, %llu events, %llu messages\n\n",
              static_cast<unsigned long long>(spec.job_id), result.runtime_s,
              static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(result.messages));
  feed.print();
  std::printf("\n(write burst = checkpoint phase; read burst = validation "
              "read-back)\n");

  // darshan heatmap-module view: per-rank write intensity over time.
  std::vector<std::string> labels;
  for (std::size_t r = 0; r < result.heatmap_write_bytes.size(); ++r) {
    labels.push_back("rank" + std::to_string(r));
  }
  std::printf("\nwrite-intensity heatmap (1s bins, darshan heatmap "
              "module):\n%s",
              analysis::ascii_heatmap(result.heatmap_write_bytes, labels, 90)
                  .c_str());
  return 0;
}
