// HPC Web Services end to end: run a monitored campaign, serve the event
// database over HTTP, and query it the way a Grafana data source would.
#include <cstdio>

#include "exp/figdata.hpp"
#include "json/parser.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/http.hpp"

using namespace dlc;

int main() {
  std::printf("== HPC Web Services: DSOS-backed dashboard over HTTP ==\n\n");

  // Populate the database with the Fig. 7-9 campaign (job 2 anomalous).
  const exp::FigDataset data = exp::mpiio_independent_campaign(5, 42);
  websvc::DashboardService service(data.db);
  websvc::HttpServer server(0, websvc::HttpServer::wrap(service));
  std::printf("serving %zu events on http://127.0.0.1:%u\n\n",
              data.db->total_objects(), server.port());

  // A front end discovers what's there...
  int status = 0;
  auto body = websvc::http_get(server.port(), "/api/jobs", &status);
  std::printf("GET /api/jobs -> %d\n%s\n\n", status,
              body.value_or("(failed)").c_str());

  // ...pulls a panel...
  body = websvc::http_get(server.port(),
                          "/api/panel?module=fig7_summary&job=1,2,3,4,5",
                          &status);
  std::printf("GET /api/panel?module=fig7_summary -> %d (%zu bytes)\n", status,
              body ? body->size() : 0);
  if (body) {
    const auto doc = json::parse(*body);
    const auto& rows = doc->find("data")->find("rows")->as_array();
    for (const auto& row : rows) {
      const auto& cells = row.as_array();
      std::printf("  job %lld %-5s mean %.3fs\n",
                  static_cast<long long>(cells[0].as_int()),
                  cells[1].as_string().c_str(), cells[2].as_double());
    }
  }

  // ...and drills into the anomalous job's raw events.
  body = websvc::http_get(
      server.port(),
      "/api/query?index=job_rank_time&job_id=2&rank=0&op=read&limit=3",
      &status);
  std::printf("\nGET /api/query?...job_id=2&rank=0&op=read&limit=3 -> %d\n%s\n",
              status, body.value_or("(failed)").c_str());

  // Server-side dashboard render (what "share this dashboard" exports).
  const std::string dashboard = websvc::render_dashboard(
      service, websvc::default_io_dashboard(data.anomalous_job));
  std::printf("\nrendered dashboard JSON: %zu bytes, %llu requests served\n",
              dashboard.size(),
              static_cast<unsigned long long>(service.requests_served()));
  server.stop();
  return 0;
}
