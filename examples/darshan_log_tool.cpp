// darshan-util example: the post-run half of Darshan.
//
// Runs HMMER (scaled down) under instrumentation, writes the binary
// summary log darshan-runtime would emit at finalize, parses it back and
// prints a darshan-parser-style report — demonstrating that the connector
// *augments* the classic log workflow rather than replacing it.
#include <cstdio>
#include <filesystem>

#include "darshan/derived.hpp"
#include "darshan/log.hpp"
#include "darshan/log_compress.hpp"
#include "exp/specs.hpp"

using namespace dlc;

int main() {
  std::printf("== darshan log round-trip (hmmbuild, scaled) ==\n\n");

  exp::ExperimentSpec spec = exp::hmmer_spec(simfs::FsKind::kLustre, 0.02);
  spec.job_id = 777;
  const exp::RunResult result = exp::run_experiment(spec);

  const std::filesystem::path log_path = "dlc_export/hmmbuild_777.darshan";
  std::filesystem::create_directories(log_path.parent_path());
  if (!darshan::write_log_file(result.darshan_log, log_path.string())) {
    std::fprintf(stderr, "failed to write %s\n", log_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%ju bytes, %zu records)\n", log_path.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(log_path)),
              result.darshan_log.records.size());

  const auto parsed = darshan::read_log_file(log_path.string());
  if (!parsed) {
    std::fprintf(stderr, "failed to parse the log back\n");
    return 1;
  }

  // darshan-parser-style dump, trimmed to the first few records.
  std::string text = darshan::log_to_text(*parsed);
  if (text.size() > 2500) {
    text.resize(2500);
    text += "...\n";
  }
  std::printf("\n%s", text.c_str());

  // Summary statistics across records (what darshan job summaries show).
  std::uint64_t total_reads = 0, total_writes = 0, bytes_read = 0,
                bytes_written = 0, dxt_segments = 0;
  for (const auto& entry : parsed->records) {
    total_reads += static_cast<std::uint64_t>(entry.record.counters.reads);
    total_writes += static_cast<std::uint64_t>(entry.record.counters.writes);
    bytes_read += entry.record.counters.bytes_read;
    bytes_written += entry.record.counters.bytes_written;
    dxt_segments += entry.dxt.size();
  }
  std::printf("\njob totals: %llu reads (%s), %llu writes (%s), %llu DXT "
              "segments\n",
              static_cast<unsigned long long>(total_reads),
              format_bytes(bytes_read).c_str(),
              static_cast<unsigned long long>(total_writes),
              format_bytes(bytes_written).c_str(),
              static_cast<unsigned long long>(dxt_segments));

  // Compressed (v2) format comparison.
  const std::filesystem::path packed_path =
      "dlc_export/hmmbuild_777.darshan.z";
  darshan::write_log_compressed_file(result.darshan_log,
                                     packed_path.string());
  std::printf("compressed log: %s (%ju bytes, %.1fx smaller)\n",
              packed_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(packed_path)),
              static_cast<double>(std::filesystem::file_size(log_path)) /
                  static_cast<double>(std::filesystem::file_size(packed_path)));

  // darshan-util derived analyses.
  const darshan::Log reduced =
      darshan::reduce_shared_records(result.darshan_log);
  const darshan::PerfEstimate perf =
      darshan::estimate_performance(result.darshan_log);
  const darshan::FileCountSummary files =
      darshan::count_files(result.darshan_log);
  std::printf("\nderived: %zu records after shared-file reduction; "
              "agg_perf_by_slowest %.1f MiB/s (rank %d); files: %llu total, "
              "%llu shared\n",
              reduced.records.size(), perf.agg_perf_by_slowest_mibs,
              perf.slowest_rank,
              static_cast<unsigned long long>(files.total),
              static_cast<unsigned long long>(files.shared));
  return 0;
}
