// CI-style I/O regression gate: the paper's §I workflow ("the I/O
// performance is analyzed post-run ... in the form of regression
// testing") made executable.
//
// Builds a history of HACC-IO checkpoint runs under normal conditions,
// then evaluates a new run that hit file-system congestion.  Exits
// non-zero when the gate trips — drop it into a CI pipeline after each
// nightly performance job.
#include <cstdio>

#include "darshan/derived.hpp"
#include "exp/specs.hpp"
#include "workloads/hacc_io.hpp"

using namespace dlc;

namespace {

darshan::Log run_checkpoint(std::uint64_t job_id, std::uint64_t epoch,
                            double congestion) {
  exp::ExperimentSpec spec =
      exp::hacc_io_spec(simfs::FsKind::kLustre, 1'000'000);
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.job_id = job_id;
  spec.seed = job_id;
  spec.epoch_seed = epoch;
  spec.connector_enabled = false;  // the gate is a pure darshan-log flow
  if (congestion > 1.0) {
    spec.incidents.push_back(simfs::Incident{
        .start = 0,
        .end = 100'000 * kSecond,
        .peak_factor = congestion,
        .ramp = false,
        .applies_to = simfs::OpClass::kAny});
  }
  return exp::run_experiment(spec).darshan_log;
}

}  // namespace

int main() {
  std::printf("== I/O regression gate (darshan log history) ==\n\n");

  // Nightly history: five normal runs.
  std::vector<darshan::Log> history;
  for (std::uint64_t night = 1; night <= 5; ++night) {
    history.push_back(run_checkpoint(night, 4000 + night, 1.0));
    const darshan::PerfEstimate est =
        darshan::estimate_performance(history.back());
    std::printf("history job %llu: %.1f MiB/s (slowest rank %d)\n",
                static_cast<unsigned long long>(night),
                est.agg_perf_by_slowest_mibs, est.slowest_rank);
  }

  // Tonight's run: the file system is 4x congested.
  const darshan::Log tonight = run_checkpoint(6, 4006, 4.0);
  const darshan::RegressionReport report =
      darshan::check_regression(history, tonight, /*threshold=*/0.8);

  std::printf("\ntonight: %.1f MiB/s vs baseline (median) %.1f MiB/s "
              "-> ratio %.2f\n",
              report.current_mibs, report.baseline_mibs, report.ratio);
  const darshan::AccessPattern pattern =
      darshan::access_pattern_summary(tonight);
  std::printf("access pattern unchanged: %s, common write size %s "
              "(=> environment, not the application)\n",
              pattern.classification.c_str(),
              pattern.common_write_size.c_str());

  if (report.is_regression) {
    std::printf("\nGATE: REGRESSION — tonight's I/O is below 80%% of the "
                "historical baseline.\n"
                "With the Darshan-LDMS Connector enabled, the run-time "
                "pipeline (see system_correlation)\nwould have flagged this "
                "*during* the job instead of the morning after.\n");
    return 1;
  }
  std::printf("\nGATE: OK\n");
  return 0;
}
