// dsos_cmd: the command-line data-examination workflow the paper calls
// out ("DSOS ... allows for interaction via a command line interface
// which allows for fast query testing and data examination").
//
// With no arguments it runs a demo: generate a monitored IOR job, persist
// the event database to disk, reload it, and walk through the query
// commands.  With arguments it operates on a previously saved database:
//
//   dsos_cmd <dir> schema                 # show schema and indices
//   dsos_cmd <dir> count                  # object count per shard
//   dsos_cmd <dir> query <index> [k=v]... # filtered, index-ordered rows
//   dsos_cmd <dir> export <index>         # CSV to stdout
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/schema_darshan.hpp"
#include "dsos/csv.hpp"
#include "dsos/persist.hpp"
#include "exp/specs.hpp"
#include "workloads/ior.hpp"

using namespace dlc;

namespace {

dsos::ClusterConfig db_config() {
  dsos::ClusterConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  return cfg;
}

/// Parses "attr=value" into a typed condition against darshan_data.
bool parse_condition(const dsos::SchemaPtr& schema, const std::string& token,
                     dsos::Filter& filter) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  const std::string attr = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  const auto attr_id = schema->find_attr(attr);
  if (!attr_id) return false;
  switch (schema->attrs()[*attr_id].type) {
    case dsos::AttrType::kInt64:
      filter.push_back({attr, dsos::Cmp::kEq,
                        static_cast<std::int64_t>(std::atoll(value.c_str()))});
      return true;
    case dsos::AttrType::kUint64:
      filter.push_back({attr, dsos::Cmp::kEq,
                        static_cast<std::uint64_t>(
                            std::strtoull(value.c_str(), nullptr, 10))});
      return true;
    case dsos::AttrType::kDouble:
    case dsos::AttrType::kTimestamp:
      filter.push_back({attr, dsos::Cmp::kEq, std::atof(value.c_str())});
      return true;
    case dsos::AttrType::kString:
      filter.push_back({attr, dsos::Cmp::kEq, value});
      return true;
  }
  return false;
}

int run_command(dsos::DsosCluster& db, const std::vector<std::string>& args) {
  const auto schema = core::darshan_data_schema();
  const std::string& cmd = args[0];
  if (cmd == "schema") {
    std::printf("schema %s\n", schema->name().c_str());
    for (const auto& attr : schema->attrs()) {
      std::printf("  attr %-16s %s\n", attr.name.c_str(),
                  std::string(dsos::attr_type_name(attr.type)).c_str());
    }
    for (const auto& idx : schema->indices()) {
      std::printf("  index %s (", idx.name.c_str());
      for (std::size_t i = 0; i < idx.attr_ids.size(); ++i) {
        std::printf("%s%s", i ? "," : "",
                    schema->attrs()[idx.attr_ids[i]].name.c_str());
      }
      std::printf(")\n");
    }
    return 0;
  }
  if (cmd == "count") {
    for (std::size_t s = 0; s < db.shard_count(); ++s) {
      std::printf("%s: %zu objects\n", db.shard(s).name().c_str(),
                  db.shard(s).container().size());
    }
    std::printf("total: %zu\n", db.total_objects());
    return 0;
  }
  if (cmd == "query" || cmd == "export") {
    if (args.size() < 2) {
      std::fprintf(stderr, "%s needs an index name\n", cmd.c_str());
      return 2;
    }
    dsos::Filter filter;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (!parse_condition(schema, args[i], filter)) {
        std::fprintf(stderr, "bad condition: %s\n", args[i].c_str());
        return 2;
      }
    }
    const auto rows = db.query("darshan_data", args[1], filter);
    if (cmd == "export") {
      std::ostringstream out;
      dsos::export_csv(out, *schema, rows);
      std::fputs(out.str().c_str(), stdout);
    } else {
      std::printf("%zu rows (index %s)\n", rows.size(), args[1].c_str());
      std::size_t shown = 0;
      for (const auto* row : rows) {
        if (++shown > 10) {
          std::printf("  ... (%zu more)\n", rows.size() - 10);
          break;
        }
        std::printf("  job=%llu rank=%lld op=%-5s ts=%.3f dur=%.4f len=%lld\n",
                    static_cast<unsigned long long>(row->as_uint("job_id")),
                    static_cast<long long>(row->as_int("rank")),
                    row->as_string("op").c_str(),
                    row->as_double("seg_timestamp"),
                    row->as_double("seg_dur"),
                    static_cast<long long>(row->as_int("seg_len")));
      }
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    auto db = dsos::load_cluster(argv[1], db_config());
    if (!db) {
      std::fprintf(stderr, "cannot load DSOS database from %s\n", argv[1]);
      return 1;
    }
    std::vector<std::string> args(argv + 2, argv + argc);
    return run_command(*db, args);
  }

  // Demo mode: build, persist, reload, query.
  std::printf("== dsos_cmd demo: monitored IOR job -> persisted DSOS -> "
              "CLI queries ==\n\n");
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::IorConfig ior_cfg;
  ior_cfg.use_mpiio = true;
  ior_cfg.collective = true;
  ior_cfg.segments = 2;
  ior_cfg.reorder_shift = 1;
  spec.workload = workloads::ior(ior_cfg);
  spec.exe = workloads::kIorExe;
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.job_id = 5150;
  spec.decode_to_dsos = true;
  spec.dsos_shards = 4;
  const exp::RunResult result = exp::run_experiment(spec);
  std::printf("IOR job: %.1fs, %llu events stored\n\n", result.runtime_s,
              static_cast<unsigned long long>(result.stored));

  const std::string dir = "dlc_export/dsos_demo";
  if (!dsos::save_cluster(*result.dsos, dir)) {
    std::fprintf(stderr, "persist failed\n");
    return 1;
  }
  auto db = dsos::load_cluster(dir, db_config());
  if (!db) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }
  std::printf("persisted to %s and reloaded (%zu objects)\n\n", dir.c_str(),
              db->total_objects());

  std::printf("$ dsos_cmd %s count\n", dir.c_str());
  run_command(*db, {"count"});
  std::printf("\n$ dsos_cmd %s query job_rank_time rank=3 op=write\n",
              dir.c_str());
  run_command(*db, {"query", "job_rank_time", "rank=3", "op=write"});
  std::printf("\n$ dsos_cmd %s schema\n", dir.c_str());
  run_command(*db, {"schema"});
  return 0;
}
