// Quickstart: the whole pipeline in one file.
//
// Runs a small MPI-IO-TEST job under the Darshan-LDMS Connector, lets the
// LDMS transport carry the JSON event stream to an aggregator where it is
// decoded into DSOS, then queries the timestamped events back out — the
// run-time view of application I/O the paper is about.
#include <cstdio>

#include "analysis/figures.hpp"
#include "core/decoder.hpp"
#include "dsos/csv.hpp"
#include "exp/specs.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

int main() {
  // 1. Describe the experiment: 4 nodes x 2 ranks, Lustre, collective I/O.
  exp::ExperimentSpec spec =
      exp::mpi_io_test_spec(simfs::FsKind::kLustre, /*collective=*/true);
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.job_id = 101;
  spec.decode_to_dsos = true;  // keep the events queryable

  workloads::MpiIoTestConfig small;
  small.iterations = 4;
  small.block_size = 4 * 1024 * 1024;
  small.collective = true;
  spec.workload = workloads::mpi_io_test(small);

  // 2. Run it: workload -> darshan -> connector -> LDMS -> DSOS.
  const exp::RunResult result = exp::run_experiment(spec);
  std::printf("job %llu ran %.2fs (virtual), %llu I/O events, %llu messages "
              "published, %llu stored, %llu dropped\n",
              static_cast<unsigned long long>(spec.job_id), result.runtime_s,
              static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.stored),
              static_cast<unsigned long long>(result.dropped));
  std::printf("mean publish->store latency: %.3f ms\n\n",
              result.mean_latency_s * 1e3);

  // 3. Query the event database: rank 3's timeline via the job_rank_time
  //    joint index.
  const auto rows = result.dsos->query(
      "darshan_data", "job_rank_time",
      dsos::Filter{{"job_id", dsos::Cmp::kEq, std::uint64_t{101}},
                   {"rank", dsos::Cmp::kEq, std::int64_t{3}}});
  std::printf("rank 3 timeline (%zu events):\n", rows.size());
  std::printf("  %-6s %-7s %12s %10s %12s\n", "op", "module", "offset",
              "bytes", "dur (s)");
  for (const dsos::Object* row : rows) {
    std::printf("  %-6s %-7s %12lld %10lld %12.4f\n",
                row->as_string("op").c_str(),
                row->as_string("module").c_str(),
                static_cast<long long>(row->as_int("seg_off")),
                static_cast<long long>(row->as_int("seg_len")),
                row->as_double("seg_dur"));
  }

  // 4. Aggregate analysis (what a Grafana panel would show).
  const analysis::DataFrame events =
      analysis::job_events(*result.dsos, spec.job_id);
  const analysis::DataFrame by_op = events.group_by(
      {"op"}, {{.column = "", .op = analysis::Agg::kCount, .out_name = "n"},
               {.column = "seg_dur", .op = analysis::Agg::kMean,
                .out_name = "mean_dur"}});
  std::printf("\nper-op summary:\n");
  for (std::size_t r = 0; r < by_op.rows(); ++r) {
    std::printf("  %-6s n=%-4.0f mean_dur=%.4fs\n",
                by_op.get_string(r, "op").c_str(), by_op.get_double(r, "n"),
                by_op.get_double(r, "mean_dur"));
  }
  return 0;
}
