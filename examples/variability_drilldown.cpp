// Root-cause drill-down example: the Section VI workflow end to end.
//
// 1. Run a campaign of five identical MPI-IO-TEST jobs (one degrades).
// 2. Detect the anomalous job from the stored run-time event data.
// 3. Drill into it: per-rank durations (spatial view, Fig. 7) and the
//    execution-time distribution (temporal view, Fig. 8) that Darshan's
//    post-run summary alone cannot provide.
#include <algorithm>
#include <cstdio>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "exp/figdata.hpp"
#include "exp/table.hpp"

using namespace dlc;

int main() {
  std::printf("== Variability drill-down: five nominally identical jobs ==\n\n");
  const exp::FigDataset data = exp::mpiio_independent_campaign(5, 42);

  // --- step 1: campaign overview -----------------------------------------
  const analysis::DataFrame summary =
      analysis::fig7_job_summary(*data.db, data.job_ids);
  std::printf("campaign overview (mean op durations):\n");
  exp::TextTable overview({"Job", "op", "Mean dur (s)"});
  for (std::size_t r = 0; r < summary.rows(); ++r) {
    overview.add_row({std::to_string(summary.get_int(r, "job_id")),
                      summary.get_string(r, "op"),
                      exp::cell_f(summary.get_double(r, "mean_dur"), 3)});
  }
  std::printf("%s\n", overview.render().c_str());

  // --- step 2: anomaly detection -----------------------------------------
  const std::uint64_t suspect = analysis::find_anomalous_job(summary, "read");
  std::printf("job %llu deviates most from the campaign median -> drill in\n\n",
              static_cast<unsigned long long>(suspect));

  // --- step 3a: spatial view (which ranks/nodes?) -------------------------
  const analysis::DataFrame ranks =
      analysis::fig7_rank_durations(*data.db, {suspect});
  RunningStats read_means;
  for (std::size_t r = 0; r < ranks.rows(); ++r) {
    if (ranks.get_string(r, "op") == "read") {
      read_means.add(ranks.get_double(r, "mean_dur"));
    }
  }
  std::printf("spatial: reads across ranks — mean %.2fs, min %.2fs, max "
              "%.2fs (every rank affected => not a single bad node)\n\n",
              read_means.mean(), read_means.min(), read_means.max());

  // --- step 3b: temporal view (when in the run?) ---------------------------
  const analysis::DataFrame timeline =
      analysis::fig8_timeline(*data.db, suspect);
  analysis::ScatterSeries writes{'w', {}, {}};
  analysis::ScatterSeries reads{'r', {}, {}};
  for (std::size_t r = 0; r < timeline.rows(); ++r) {
    auto& series =
        timeline.get_string(r, "op") == "write" ? writes : reads;
    series.x.push_back(timeline.get_double(r, "rel_time_s"));
    series.y.push_back(timeline.get_double(r, "dur_s"));
  }
  std::printf("temporal: op durations through the run (w=write, r=read):\n");
  std::printf("%s\n",
              analysis::ascii_scatter({writes, reads}, 78, 18,
                                      "time since job start (s)",
                                      "duration (s)")
                  .c_str());
  std::printf(
      "diagnosis: write service degrades steadily through the run and the\n"
      "read-back pass misses cache — consistent with growing file-system\n"
      "contention, not an application change.  The absolute timestamps\n"
      "that the connector adds are what make this temporal correlation\n"
      "possible at run time.\n");
  return 0;
}
