// Operator's view of the online anomaly feed: a terminal `watch` over
// /api/anomalies (DESIGN.md §11d).
//
// Two modes:
//
//   anomaly_watch <port> [job] [polls] [interval_s]
//       Tail a running dashboard server (examples/web_dashboard, or any
//       DashboardService with an anomaly engine attached): GET
//       /api/anomalies every interval and render the alert table —
//       exactly the curl-in-a-loop workflow, with severity and evidence
//       made readable.
//
//   anomaly_watch
//       Self-contained demo: run the slow-node campaign from the paper
//       (one node's writes x12 mid-run), serve the run's database with
//       the live anomaly engine attached, and tail our own server — so
//       the rendered feed shows a real straggler alert, fired mid-run
//       and resolved when the fault window closed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "anomaly/engine.hpp"
#include "exp/pipeline.hpp"
#include "json/parser.hpp"
#include "relia/fault.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/http.hpp"
#include "websvc/service.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

namespace {

/// One alert object -> one table row on stdout.
void render_alert(const json::Value& a) {
  const std::string kind = a.get_string("kind", "?");
  std::string what;
  if (const json::Value* ev = a.find("evidence")) {
    char buf[128];
    if (kind == "straggler") {
      std::snprintf(buf, sizeof(buf), "z=%.1f node=%.2gs peers=%.2gs",
                    ev->get_double("z", 0.0),
                    ev->get_double("node_mean_s", 0.0),
                    ev->get_double("peer_mean_s", 0.0));
    } else if (kind == "slowdown") {
      std::snprintf(buf, sizeof(buf), "rise=%.0f%% r2=%.2f",
                    100.0 * ev->get_double("rel_rise", 0.0),
                    ev->get_double("r2", 0.0));
    } else {
      std::snprintf(buf, sizeof(buf), "rate=%.0f/s ewma=%.0f/s",
                    ev->get_double("rate_eps", 0.0),
                    ev->get_double("ewma_eps", 0.0));
    }
    what = buf;
  }
  std::printf("  %-9s %-8s %-8s job=%-4s %-10s hits=%-3.0f %s\n",
              kind.c_str(), a.get_string("state", "?").c_str(),
              a.get_string("severity", "?").c_str(),
              a.get_string("job", "?").c_str(),
              a.get_string("node", "-").c_str(),
              a.get_double("hit_buckets", 0.0), what.c_str());
}

/// One GET + render cycle; returns false on HTTP/parse failure.
bool poll_once(int port, const std::string& job) {
  const std::string path =
      job.empty() ? "/api/anomalies" : "/api/anomalies/" + job;
  int status = 0;
  const auto body = websvc::http_get(port, path, &status);
  if (!body || status != 200) {
    std::printf("GET %s -> %d (no anomaly engine attached?)\n",
                path.c_str(), status);
    return false;
  }
  const auto doc = json::parse(*body);
  if (!doc) {
    std::printf("GET %s -> unparseable body\n", path.c_str());
    return false;
  }
  std::printf("GET %s -> %d: firing=%.0f active=%.0f fired=%.0f "
              "resolved=%.0f\n",
              path.c_str(), status, doc->get_double("firing", 0.0),
              doc->get_double("active", 0.0),
              doc->get_double("total_fired", 0.0),
              doc->get_double("total_resolved", 0.0));
  const json::Value* alerts = doc->find("alerts");
  if (alerts == nullptr || !alerts->is_array() ||
      alerts->as_array().empty()) {
    std::printf("  (no alerts)\n");
    return true;
  }
  for (const json::Value& a : alerts->as_array()) render_alert(a);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // Tail an external server.
    const int port = std::atoi(argv[1]);
    const std::string job = argc > 2 ? argv[2] : "";
    const int polls = argc > 3 ? std::atoi(argv[3]) : 10;
    const double interval_s = argc > 4 ? std::atof(argv[4]) : 1.0;
    for (int i = 0; i < polls; ++i) {
      if (!poll_once(port, job)) return 1;
      if (i + 1 < polls) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval_s));
      }
    }
    return 0;
  }

  std::printf("== anomaly_watch: slow-node campaign -> /api/anomalies ==\n\n");

  // The Fig. 6 scenario as a fault campaign: nid00042's writes go x12
  // for 45 s in the middle of an 8-rank mpi-io-test run, with the online
  // detector riding the rollup seal path.
  exp::ExperimentSpec spec;
  workloads::MpiIoTestConfig io;
  io.iterations = 30;
  io.block_size = 1 << 20;
  io.collective = false;
  io.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(io);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.fs = simfs::FsKind::kLustre;
  spec.decode_to_dsos = true;
  spec.connector.anomaly = true;
  spec.connector.anomaly_bucket_s = 5.0;
  spec.fault_plan = relia::parse_fault_plan(
      "ioslow nid00042 at 10s for 45s factor 12 op write\n");
  const exp::RunResult run = exp::run_experiment(spec);
  std::printf("campaign done: %llu rows ingested, engine status:\n  %s\n\n",
              static_cast<unsigned long long>(run.decoded_rows),
              run.anomalies->status_json().c_str());

  // Serve the run's database with the engine attached and tail our own
  // feed — the same bytes a remote anomaly_watch <port> would see.
  websvc::DashboardService service(run.dsos);
  service.set_anomaly(run.anomalies.get());
  websvc::HttpServer server(0, websvc::HttpServer::wrap(service));
  std::printf("serving on port %d\n\n", server.port());

  bool ok = poll_once(server.port(), "");
  std::printf("\njob-filtered view:\n");
  ok = poll_once(server.port(), "1") && ok;
  return ok ? 0 : 1;
}
