// System-correlation example: the paper's end goal in action.
//
// Runs an MPI-IO-TEST job while LDMS samplers on every node collect
// system-state metric sets alongside the connector's I/O event stream,
// then correlates per-op durations against each system metric.  The
// fs_congestion channel (the actual driver of the injected slowdown)
// should light up; the nuisance channels (memory, CPU) should not —
// demonstrating root-cause attribution from run-time data alone.
#include <cstdio>

#include "analysis/correlate.hpp"
#include "analysis/figures.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace dlc;

int main() {
  std::printf("== Correlating I/O durations with system metrics ==\n\n");

  exp::ExperimentSpec spec =
      exp::mpi_io_test_spec(simfs::FsKind::kNfs, /*collective=*/false);
  spec.node_count = 8;
  spec.ranks_per_node = 4;
  spec.job_id = 909;
  spec.decode_to_dsos = true;
  spec.sample_system_metrics = true;
  spec.metric_interval = 5 * kSecond;
  // A long run (30 write rounds) so the correlation has statistics, under
  // a strong ramped write-congestion incident: the signal to recover.
  workloads::MpiIoTestConfig io;
  io.iterations = 30;
  io.block_size = 8ull * 1024 * 1024;
  io.collective = false;
  io.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(io);
  spec.incidents.push_back(simfs::Incident{
      .start = 0,
      .end = 900 * kSecond,  // ramps across the whole run
      .peak_factor = 3.0,
      .ramp = true,
      .applies_to = simfs::OpClass::kWrite});

  const exp::RunResult result = exp::run_experiment(spec);
  std::printf("job ran %.1fs; %zu metric series collected, %llu I/O events\n\n",
              result.runtime_s, result.system_metrics.size(),
              static_cast<unsigned long long>(result.events));

  // Node 0's channels (any node sees the same shared-FS congestion).
  std::vector<analysis::TimeSeries> channels;
  for (const auto& series : result.system_metrics) {
    if (series.name.find("@nid00040") != std::string::npos) {
      channels.push_back(series);
    }
  }

  const analysis::DataFrame timeline =
      analysis::fig8_timeline(*result.dsos, spec.job_id);
  const analysis::DataFrame corr = analysis::correlate_durations(
      timeline, channels, /*max_gap=*/15.0, /*bucket_seconds=*/25.0);

  exp::TextTable table({"op", "metric", "Pearson r", "n"});
  for (std::size_t r = 0; r < corr.rows(); ++r) {
    table.add_row({corr.get_string(r, "op"), corr.get_string(r, "metric"),
                   exp::cell_f(corr.get_double(r, "r"), 3),
                   exp::cell_f(corr.get_double(r, "n"), 0)});
  }
  std::printf("%s\n", table.render().c_str());

  // Verdict line: strongest |r| for writes.
  double best_r = 0;
  std::string best_metric = "(none)";
  for (std::size_t r = 0; r < corr.rows(); ++r) {
    if (corr.get_string(r, "op") == "write" &&
        std::abs(corr.get_double(r, "r")) > std::abs(best_r)) {
      best_r = corr.get_double(r, "r");
      best_metric = corr.get_string(r, "metric");
    }
  }
  std::printf("strongest write-duration correlate: %s (r=%.3f)\n",
              best_metric.c_str(), best_r);
  std::printf("=> the run-time pipeline attributes the slowdown to file-"
              "system congestion,\n   not memory or CPU pressure.\n");
  return 0;
}
