// libFuzzer entry point for the frame_cursor decode surface; the logic lives in
// fuzz/targets.cpp so the standalone driver and corpus test share it.
#include "fuzz/targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dlc::fuzz::frame_cursor_one(data, size);
}
