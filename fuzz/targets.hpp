// Fuzz entry points for every untrusted decode surface (ISSUE/DESIGN
// section 10): each *_one() consumes arbitrary bytes and aborts the
// process on any invariant violation — crash, hang guard, decoder
// disagreement — so the same body serves libFuzzer harnesses, the
// standalone corpus driver, and the tier-1 corpus round-trip test.
//
//   frame_cursor_one    wire::FrameCursor vs wire::decode_frame on raw
//                       bytes: never crashes, wrapper agrees with cursor.
//   json_scanner_one    json::Scanner scalar/SSE2/AVX2 transcript
//                       differential + DOM-subset acceptance contract.
//   rollup_policy_one   rollup policy DSL: parse never throws; every
//                       accepted policy round-trips through to_string.
//   store_recovery_one  store recovery on a mutated on-disk store dir:
//                       open() quarantines, never crashes; recovery is
//                       idempotent (second open yields the same rows).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dlc::fuzz {

int frame_cursor_one(const std::uint8_t* data, std::size_t size);
int json_scanner_one(const std::uint8_t* data, std::size_t size);
int rollup_policy_one(const std::uint8_t* data, std::size_t size);
int store_recovery_one(const std::uint8_t* data, std::size_t size);

}  // namespace dlc::fuzz
