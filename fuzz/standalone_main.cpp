// Driver for fuzz targets when libFuzzer is unavailable (gcc builds,
// the tier-1 smoke job).  Usage:
//
//   fuzz_<target> FILE...              run each corpus file once
//   fuzz_<target> -runs=N FILE...      then N deterministic mutations of
//                                      the corpus (xorshift RNG, seed
//                                      fixed so CI failures reproduce)
//
// Exit 0 means every input ran without tripping an invariant (the
// targets abort on violation, like libFuzzer crashes).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t rng_state = 0x9e3779b97f4a7c15ull;

std::uint64_t next_rand() {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return rng_state;
}

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

void mutate(std::vector<std::uint8_t>& buf) {
  const std::uint64_t r = next_rand();
  switch (r % 4) {
    case 0:  // flip a byte
      if (!buf.empty()) buf[next_rand() % buf.size()] ^= 1u << (r >> 8) % 8;
      break;
    case 1:  // truncate
      if (!buf.empty()) buf.resize(next_rand() % buf.size());
      break;
    case 2:  // insert a byte
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                   buf.empty() ? 0 : next_rand() % buf.size()),
                 static_cast<std::uint8_t>(r >> 16));
      break;
    case 3:  // overwrite a short run
      if (!buf.empty()) {
        std::size_t pos = next_rand() % buf.size();
        for (std::size_t k = 0; k < 1 + (r >> 24) % 8 && pos + k < buf.size();
             ++k) {
          buf[pos + k] = static_cast<std::uint8_t>(r >> (k * 7));
        }
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  std::vector<std::vector<std::uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-runs=", 6) == 0) {
      runs = std::strtol(argv[i] + 6, nullptr, 10);
      continue;
    }
    std::vector<std::uint8_t> buf;
    if (!read_file(argv[i], buf)) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 2;
    }
    corpus.push_back(std::move(buf));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "usage: %s [-runs=N] FILE...\n", argv[0]);
    return 2;
  }
  std::size_t executed = 0;
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  for (long i = 0; i < runs; ++i) {
    std::vector<std::uint8_t> buf = corpus[next_rand() % corpus.size()];
    mutate(buf);
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
    ++executed;
  }
  std::printf("ok: %zu inputs (%zu corpus + %ld mutations)\n", executed,
              corpus.size(), runs);
  return 0;
}
