// Implementations of the fuzz targets (see targets.hpp).  Invariant
// failures call fuzz_fail(), which prints and aborts — the signal every
// fuzzing driver (libFuzzer, standalone, gtest corpus test) understands.
#include "fuzz/targets.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/schema_darshan.hpp"
#include "darshan/events.hpp"
#include "dsos/cluster.hpp"
#include "dsos/schema.hpp"
#include "json/parser.hpp"
#include "json/scan.hpp"
#include "obs/trace.hpp"
#include "rollup/policy.hpp"
#include "store/store.hpp"
#include "util/cpu.hpp"
#include "wire/codec.hpp"

namespace dlc::fuzz {
namespace {

namespace fsys = std::filesystem;

[[noreturn]] void fuzz_fail(const char* target, const char* what) {
  std::fprintf(stderr, "FUZZ INVARIANT VIOLATED [%s]: %s\n", target, what);
  std::abort();
}

void require(bool ok, const char* target, const char* what) {
  if (!ok) fuzz_fail(target, what);
}

}  // namespace

// ------------------------------------------------------------ frames ----

int frame_cursor_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  (void)wire::looks_like_frame(payload);
  (void)wire::decode_frame_seq(payload);

  static const dsos::SchemaPtr schema = core::darshan_data_schema();
  const std::size_t n_attrs = schema->attrs().size();

  wire::FrameCursor cur(payload);
  std::vector<dsos::Value> values;
  obs::TraceContext trace;
  std::size_t rows = 0;
  int rc = 0;
  if (cur.ok()) {
    while ((rc = cur.next(values, &trace)) == 1) {
      require(values.size() == n_attrs, "frame_cursor",
              "cursor row is not in schema arity");
      ++rows;
      // Every decoded event consumes payload bytes; more rows than bytes
      // means the cursor stopped making progress.
      require(rows <= size + 1, "frame_cursor",
              "cursor produced more rows than the payload can hold");
    }
    require(rc == 0 || rc == -1, "frame_cursor",
            "cursor returned an undocumented code");
  }

  // The wrapped decoder is a thin shim over the cursor and must agree
  // byte-for-byte: a clean walk yields exactly the cursor's rows, any
  // malformed byte drops the whole frame.
  std::vector<obs::TraceContext> traces;
  const std::vector<dsos::Object> objs =
      wire::decode_frame(schema, payload, &traces);
  if (cur.ok() && rc == 0) {
    require(objs.size() == rows, "frame_cursor",
            "decode_frame row count disagrees with FrameCursor");
    require(traces.size() == objs.size(), "frame_cursor",
            "decode_frame trace count disagrees with its rows");
  } else {
    require(objs.empty(), "frame_cursor",
            "decode_frame accepted a frame the cursor rejected");
  }
  return 0;
}

// ------------------------------------------------------- json scanner ----

namespace {

void append_token(std::string& out, const json::Token& tok) {
  out += "tok(";
  out += std::to_string(static_cast<int>(tok.kind));
  out += ',';
  out += std::to_string(tok.i);
  out += ',';
  out += std::to_string(tok.u);
  out += ',';
  // Exact bit pattern: the equivalence contract is byte-identical values.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(tok.d));
  std::memcpy(&bits, &tok.d, sizeof(bits));
  out += std::to_string(bits);
  out += ',';
  out.append(tok.sv.data(), tok.sv.size());
  out += ')';
}

/// Canonical scan transcript at the currently active SIMD level: the
/// flat object walk the decode fast path performs (members scanned as
/// scalars, nested values span-skipped), falling back to an array walk
/// and then a single-token scan.  Every return code and token value goes
/// into the transcript, so any divergence between kernels shows up as a
/// transcript mismatch.
std::string scan_transcript(std::string_view text) {
  std::string out;
  {
    json::Scanner s(text);
    if (s.enter_object()) {
      out += "obj:";
      std::string key_scratch;
      std::string scratch;
      for (;;) {
        std::string_view key;
        const int m = s.next_member(key, key_scratch);
        out += "m";
        out += std::to_string(m);
        if (m != 1) break;
        out += '<';
        out.append(key.data(), key.size());
        out += '>';
        if (s.peek_array() || s.peek_object()) {
          std::string_view span;
          const bool ok = s.value_span(span);
          out += ok ? "span:" : "span-fail";
          if (ok) out.append(span.data(), span.size());
          if (!ok) break;
        } else {
          json::Token tok;
          if (!s.scan_token(tok, scratch)) {
            out += "tok-fail";
            break;
          }
          append_token(out, tok);
        }
      }
      out += s.at_end() ? "|end" : "|trail";
      return out;
    }
  }
  {
    json::Scanner s(text);
    if (s.enter_array()) {
      out += "arr:";
      std::string scratch;
      for (;;) {
        const int e = s.next_element();
        out += "e";
        out += std::to_string(e);
        if (e != 1) break;
        if (s.peek_array() || s.peek_object()) {
          if (!s.skip_value()) {
            out += "skip-fail";
            break;
          }
          out += "skip";
        } else {
          json::Token tok;
          if (!s.scan_token(tok, scratch)) {
            out += "tok-fail";
            break;
          }
          append_token(out, tok);
        }
      }
      out += s.at_end() ? "|end" : "|trail";
      return out;
    }
  }
  json::Scanner s(text);
  json::Token tok;
  std::string scratch;
  if (s.scan_token(tok, scratch)) {
    out += "scalar:";
    append_token(out, tok);
    out += s.at_end() ? "|end" : "|trail";
  } else {
    out += "reject";
  }
  return out;
}

}  // namespace

int json_scanner_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  // Differential across every kernel the host can run: the scalar code
  // is the semantics; SSE2/AVX2 only locate structural bytes and must be
  // transcript-identical.
  util::set_simd_level(util::SimdLevel::kScalar);
  const std::string scalar = scan_transcript(text);
  if (util::detected_simd() >= util::SimdLevel::kSse2) {
    util::set_simd_level(util::SimdLevel::kSse2);
    const std::string sse2 = scan_transcript(text);
    require(sse2 == scalar, "json_scanner",
            "SSE2 scan transcript diverges from scalar");
  }
  if (util::detected_simd() >= util::SimdLevel::kAvx2) {
    util::set_simd_level(util::SimdLevel::kAvx2);
    const std::string avx2 = scan_transcript(text);
    require(avx2 == scalar, "json_scanner",
            "AVX2 scan transcript diverges from scalar");
  }
  util::reset_simd_level();

  // Subset contract: a document the fast path scans cleanly end-to-end
  // must also be accepted by the DOM parser (Scanner accepts a strict
  // subset of json::parse; see scan.hpp).
  const bool clean_object_scan =
      scalar.rfind("obj:", 0) == 0 && scalar.find("m0|end") != std::string::npos;
  if (clean_object_scan) {
    require(json::parse(text).has_value(), "json_scanner",
            "Scanner accepted an object the DOM parser rejects");
  }
  return 0;
}

// ------------------------------------------------------ rollup policy ----

int rollup_policy_one(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const rollup::PolicySet set = rollup::parse_rollup_policies(text);
    for (const rollup::PolicyConfig& p : set.policies) {
      // Accepted policies must round-trip: render -> parse -> render is
      // a fixed point, and the re-parse accepts exactly one policy.
      const std::string spec = rollup::to_string(p);
      const rollup::PolicySet again = rollup::parse_rollup_policies(spec);
      require(again.ok(), "rollup_policy",
              "to_string() rendered a spec parse rejects");
      require(again.policies.size() == 1, "rollup_policy",
              "to_string() rendered a spec that parses to != 1 policy");
      require(rollup::to_string(again.policies[0]) == spec, "rollup_policy",
              "render -> parse -> render is not a fixed point");
    }
    double secs = 0.0;
    (void)rollup::parse_seconds(text.substr(0, std::min<std::size_t>(size, 32)),
                                secs);
  } catch (...) {
    fuzz_fail("rollup_policy", "parse_rollup_policies threw (contract: never)");
  }
  return 0;
}

// ----------------------------------------------------- store recovery ----

namespace {

dsos::SchemaPtr recovery_schema() {
  return dsos::SchemaBuilder("darshan_data")
      .attr("job_id", dsos::AttrType::kUint64)
      .attr("rank", dsos::AttrType::kInt64)
      .attr("timestamp", dsos::AttrType::kTimestamp)
      .attr("bytes", dsos::AttrType::kUint64)
      .attr("op", dsos::AttrType::kString)
      .index("job_rank_time", {"job_id", "rank", "timestamp"})
      .build();
}

dsos::ClusterConfig recovery_cluster_config() {
  dsos::ClusterConfig cfg;
  cfg.shard_count = 2;
  cfg.parallel_query = false;
  return cfg;
}

store::StoreConfig recovery_store_config(const std::string& dir) {
  store::StoreConfig cfg;
  cfg.mode = store::StoreMode::kTiered;
  cfg.dir = dir;
  cfg.wal_group_records = 8;
  cfg.seal_bytes = 512;  // small: the template gets sealed segments
  cfg.compact_interval_ms = 0;
  return cfg;
}

/// Builds the template store directory once per process: sealed segments
/// plus an unsealed WAL tail, so mutations can hit every on-disk format.
const std::string& template_store_dir() {
  static const std::string dir = [] {
    std::string d = (fsys::temp_directory_path() /
                     ("dlc_fuzz_store_template_" +
                      std::to_string(static_cast<std::uint64_t>(::getpid()))))
                        .string();
    fsys::remove_all(d);
    fsys::create_directories(d);
    const dsos::SchemaPtr schema = recovery_schema();
    dsos::DsosCluster db(recovery_cluster_config());
    db.register_schema(schema);
    store::Store st(recovery_store_config(d));
    st.open(db);
    for (int i = 0; i < 64; ++i) {
      db.insert(dsos::make_object(
          schema, {std::uint64_t{7}, std::int64_t{i % 4}, 100.0 + i,
                   std::uint64_t{64u + static_cast<unsigned>(i)},
                   std::string(i % 2 ? "write" : "read")}));
    }
    st.flush_all();
    st.seal_all();
    // A second batch left in the WAL (unsealed) so recovery exercises
    // both the segment and the WAL replay path.
    for (int i = 0; i < 16; ++i) {
      db.insert(dsos::make_object(
          schema, {std::uint64_t{8}, std::int64_t{i % 4}, 200.0 + i,
                   std::uint64_t{32}, std::string("open")}));
    }
    st.close();
    return d;
  }();
  return dir;
}

void copy_template(const std::string& dst) {
  fsys::remove_all(dst);
  fsys::create_directories(dst);
  for (const auto& entry : fsys::directory_iterator(template_store_dir())) {
    if (entry.is_regular_file()) {
      fsys::copy_file(entry.path(), fsys::path(dst) / entry.path().filename());
    }
  }
}

std::string recovered_rows(const std::string& dir) {
  const dsos::SchemaPtr schema = recovery_schema();
  dsos::DsosCluster db(recovery_cluster_config());
  db.register_schema(schema);
  store::Store st(recovery_store_config(dir));
  st.open(db);  // must not crash on any mutated dir
  std::string out;
  for (const dsos::Object* o : db.query("darshan_data", "job_rank_time")) {
    out += std::to_string(o->as_uint("job_id")) + "/";
    out += std::to_string(o->as_int("rank")) + "/";
    out += std::to_string(o->as_double("timestamp")) + "/";
    out += std::to_string(o->as_uint("bytes")) + "/";
    out += o->as_string("op") + ";";
  }
  st.close();
  return out;
}

}  // namespace

int store_recovery_one(const std::uint8_t* data, std::size_t size) {
  // The input is a mutation script over a copy of the template store
  // dir: records of 6 bytes [file, op, off_hi, off_lo, val, extra]
  // applied in order.  op % 4: 0 flip byte, 1 truncate, 2 append,
  // 3 overwrite run.
  static std::uint64_t iteration = 0;
  const std::string dir =
      (fsys::temp_directory_path() /
       ("dlc_fuzz_store_" + std::to_string(static_cast<std::uint64_t>(::getpid())) +
        "_" + std::to_string(iteration++)))
          .string();
  copy_template(dir);

  std::vector<fsys::path> files;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (std::size_t i = 0; !files.empty() && i + 6 <= size; i += 6) {
    const fsys::path& f = files[data[i] % files.size()];
    const std::uint8_t op = data[i + 1] % 4;
    const std::size_t off = (static_cast<std::size_t>(data[i + 2]) << 8) |
                            data[i + 3];
    const char val = static_cast<char>(data[i + 4]);
    std::error_code ec;
    const std::uintmax_t fsize = fsys::file_size(f, ec);
    if (ec) continue;
    switch (op) {
      case 0:
      case 3: {
        std::fstream fs(f, std::ios::in | std::ios::out | std::ios::binary);
        if (!fs) break;
        const std::size_t pos = fsize == 0 ? 0 : off % fsize;
        fs.seekp(static_cast<std::streamoff>(pos));
        const std::size_t run = op == 3 ? 1u + data[i + 5] % 16u : 1u;
        for (std::size_t k = 0; k < run; ++k) fs.put(val);
        break;
      }
      case 1:
        fsys::resize_file(f, fsize == 0 ? 0 : off % fsize, ec);
        break;
      case 2: {
        std::ofstream fs(f, std::ios::app | std::ios::binary);
        if (!fs) break;
        const std::size_t run = 1u + data[i + 5] % 32u;
        for (std::size_t k = 0; k < run; ++k) fs.put(val);
        break;
      }
    }
  }

  // Recovery must not crash, and must be idempotent: opening the
  // recovered directory a second time yields exactly the same rows
  // (quarantine/truncate decisions are themselves durable).
  try {
    const std::string first = recovered_rows(dir);
    const std::string second = recovered_rows(dir);
    require(first == second, "store_recovery",
            "recovery is not idempotent: second open saw different rows");
  } catch (const store::StoreCrash&) {
    fuzz_fail("store_recovery", "recovery hit an (unarmed) crash point");
  } catch (const std::exception&) {
    // Allowed: open() documents logic_error/runtime_error for unusable
    // directories.  What it must never do is crash or corrupt silently.
  }
  fsys::remove_all(dir);
  return 0;
}

}  // namespace dlc::fuzz
