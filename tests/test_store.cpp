// Tests for the durable store: object-block codec round trips, WAL
// replay with torn tails, sealed-segment corruption handling, zone-map
// pruning over persisted headers, retention TTL edges, the open/close
// guard rails, and FaultPlan-driven crash-recovery campaigns asserting
// zero acknowledged-event loss with byte-identical query results.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dsos/cluster.hpp"
#include "dsos/ingest.hpp"
#include "dsos/schema.hpp"
#include "relia/fault.hpp"
#include "store/format.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"
#include "wire/objblock.hpp"
#include "wire/varint.hpp"

namespace dlc::store {
namespace {

namespace fsys = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fsys::temp_directory_path() /
             ("dlc_store_" + tag + "_" + std::to_string(counter_++)))
                .string();
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const {
    return (fsys::path(path_) / name).string();
  }

 private:
  static std::atomic<int> counter_;
  std::string path_;
};

std::atomic<int> TempDir::counter_{0};

dsos::SchemaPtr test_schema() {
  return dsos::SchemaBuilder("darshan_data")
      .attr("job_id", dsos::AttrType::kUint64)
      .attr("rank", dsos::AttrType::kInt64)
      .attr("timestamp", dsos::AttrType::kTimestamp)
      .attr("bytes", dsos::AttrType::kUint64)
      .attr("op", dsos::AttrType::kString)
      .index("job_rank_time", {"job_id", "rank", "timestamp"})
      .build();
}

dsos::Object row(const dsos::SchemaPtr& s, std::uint64_t job,
                 std::int64_t rank, double t, std::uint64_t bytes) {
  return dsos::make_object(
      s, {job, rank, t, bytes, std::string(bytes % 2 ? "write" : "read")});
}

/// Deterministic event stream: `n` rows across `ranks` ranks of one job.
std::vector<dsos::Object> make_events(const dsos::SchemaPtr& s,
                                      std::size_t n, std::uint64_t job = 1,
                                      std::int64_t ranks = 4,
                                      double t0 = 100.0) {
  std::vector<dsos::Object> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(row(s, job, static_cast<std::int64_t>(i) % ranks,
                         t0 + static_cast<double>(i), 64 + i));
  }
  return events;
}

dsos::ClusterConfig cluster_config(std::size_t shards) {
  dsos::ClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.parallel_query = false;  // deterministic, cheap for tests
  return cfg;
}

/// Canonical rendering of every row in global index order — the
/// byte-identical-recovery oracle.
std::string fingerprint(const dsos::DsosCluster& db) {
  std::string out;
  for (const dsos::Object* obj :
       db.query("darshan_data", "job_rank_time")) {
    out += std::to_string(obj->as_uint("job_id")) + "/";
    out += std::to_string(obj->as_int("rank")) + "/";
    out += std::to_string(obj->as_double("timestamp")) + "/";
    out += std::to_string(obj->as_uint("bytes")) + "/";
    out += obj->as_string("op") + ";";
  }
  return out;
}

/// Fingerprint of an uninterrupted (store-less) run over `events`.
std::string baseline_fingerprint(const dsos::SchemaPtr& s,
                                 const std::vector<dsos::Object>& events,
                                 std::size_t shards) {
  dsos::DsosCluster db(cluster_config(shards));
  db.register_schema(s);
  for (const dsos::Object& e : events) db.insert(e);
  return fingerprint(db);
}

// ------------------------------------------------------------ objblock ----

TEST(ObjBlock, RoundTripsRowsAcrossSchemas) {
  const auto s = test_schema();
  std::vector<dsos::Object> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back(row(s, 7, i % 3, 100.0 + i, 1000 + i));
  }
  std::vector<const dsos::Object*> ptrs;
  for (const auto& r : rows) ptrs.push_back(&r);
  const std::string block = wire::encode_object_block(ptrs);

  const wire::SchemaResolver resolve =
      [&s](std::string_view name) -> dsos::SchemaPtr {
    return name == s->name() ? s : nullptr;
  };
  std::vector<dsos::Object> decoded;
  ASSERT_TRUE(wire::decode_object_block(block, resolve, &decoded));
  ASSERT_EQ(decoded.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].as_uint("job_id"), rows[i].as_uint("job_id"));
    EXPECT_EQ(decoded[i].as_int("rank"), rows[i].as_int("rank"));
    EXPECT_EQ(decoded[i].as_double("timestamp"),
              rows[i].as_double("timestamp"));
    EXPECT_EQ(decoded[i].as_string("op"), rows[i].as_string("op"));
  }
}

TEST(ObjBlock, SchemaDefRoundTripsIndices) {
  const auto s = test_schema();
  std::string buf;
  wire::put_schema_def(buf, *s);
  wire::Reader r(buf);
  const dsos::SchemaPtr back = wire::get_schema_def(r);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back->name(), s->name());
  ASSERT_EQ(back->attrs().size(), s->attrs().size());
  for (std::size_t i = 0; i < s->attrs().size(); ++i) {
    EXPECT_EQ(back->attrs()[i].name, s->attrs()[i].name);
    EXPECT_EQ(back->attrs()[i].type, s->attrs()[i].type);
  }
  ASSERT_EQ(back->indices().size(), 1u);
  EXPECT_EQ(back->indices()[0].name, "job_rank_time");
  EXPECT_EQ(back->indices()[0].attr_ids, s->indices()[0].attr_ids);
}

// ------------------------------------------------------------ WAL ---------

TEST(Wal, ReplayOfMissingFileIsEmptyLog) {
  const TempDir dir("wal_missing");
  WalReplay rep;
  EXPECT_TRUE(replay_wal(dir.sub("wal-0.log"), &rep));
  EXPECT_EQ(rep.frames, 0u);
  EXPECT_TRUE(rep.rows.empty());
  EXPECT_EQ(rep.torn_bytes, 0u);
}

TEST(Wal, GroupCommitRoundTrip) {
  const TempDir dir("wal_roundtrip");
  const auto s = test_schema();
  const auto rows = make_events(s, 6);
  std::vector<const dsos::Object*> a{&rows[0], &rows[1], &rows[2]};
  std::vector<const dsos::Object*> b{&rows[3], &rows[4], &rows[5]};

  WalWriter w;
  ASSERT_TRUE(w.open(dir.sub("wal-0.log")));
  ASSERT_TRUE(w.append_schema(*s));
  ASSERT_TRUE(w.append_group(1, a));
  ASSERT_TRUE(w.append_group(4, b));
  w.close();

  WalReplay rep;
  ASSERT_TRUE(replay_wal(dir.sub("wal-0.log"), &rep));
  EXPECT_EQ(rep.frames, 2u);
  EXPECT_EQ(rep.first_seq, 1u);
  EXPECT_EQ(rep.last_seq, 6u);
  ASSERT_EQ(rep.rows.size(), 6u);
  ASSERT_EQ(rep.schemas.size(), 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(rep.rows[i].as_uint("bytes"), rows[i].as_uint("bytes"));
  }
}

TEST(Wal, TornFinalRecordIsTruncatedAndAppendable) {
  const TempDir dir("wal_torn");
  const auto s = test_schema();
  const auto rows = make_events(s, 6);
  std::vector<const dsos::Object*> a{&rows[0], &rows[1], &rows[2]};
  std::vector<const dsos::Object*> b{&rows[3], &rows[4], &rows[5]};
  const std::string path = dir.sub("wal-0.log");

  WalWriter w;
  ASSERT_TRUE(w.open(path));
  ASSERT_TRUE(w.append_schema(*s));
  ASSERT_TRUE(w.append_group(1, a));
  // Process dies 13 bytes into the second group's framed record.
  EXPECT_FALSE(w.append_group(4, b, 13));
  w.close();

  WalReplay rep;
  ASSERT_TRUE(replay_wal(path, &rep));
  EXPECT_EQ(rep.frames, 1u);
  EXPECT_EQ(rep.rows.size(), 3u);
  EXPECT_GT(rep.torn_bytes, 0u);  // the torn group vanished entirely

  // The truncated log accepts appends and replays cleanly.
  WalWriter w2;
  ASSERT_TRUE(w2.open(path));
  ASSERT_TRUE(w2.append_group(4, b));
  w2.close();
  WalReplay rep2;
  ASSERT_TRUE(replay_wal(path, &rep2));
  EXPECT_EQ(rep2.frames, 2u);
  EXPECT_EQ(rep2.rows.size(), 6u);
  EXPECT_EQ(rep2.torn_bytes, 0u);
}

TEST(Wal, BitFlippedFrameStopsReplayAtLastGoodFrame) {
  const TempDir dir("wal_bitflip");
  const auto s = test_schema();
  const auto rows = make_events(s, 4);
  std::vector<const dsos::Object*> a{&rows[0], &rows[1]};
  std::vector<const dsos::Object*> b{&rows[2], &rows[3]};
  const std::string path = dir.sub("wal-0.log");
  {
    WalWriter w;
    ASSERT_TRUE(w.open(path));
    ASSERT_TRUE(w.append_schema(*s));
    ASSERT_TRUE(w.append_group(1, a));
    ASSERT_TRUE(w.append_group(3, b));
  }
  // Flip one byte inside the last frame's payload.
  const auto size = fsys::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size) - 3);
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  WalReplay rep;
  ASSERT_TRUE(replay_wal(path, &rep));
  EXPECT_EQ(rep.frames, 1u);
  EXPECT_EQ(rep.rows.size(), 2u);
  EXPECT_GT(rep.torn_bytes, 0u);
}

// ------------------------------------------------------------ segments ----

TEST(Segment, WriteReadRoundTripWithZones) {
  const TempDir dir("seg_roundtrip");
  const auto s = test_schema();
  const auto rows = make_events(s, 8, /*job=*/3, /*ranks=*/2, /*t0=*/500.0);
  std::vector<const dsos::Object*> ptrs;
  for (const auto& r : rows) ptrs.push_back(&r);

  SegmentMeta meta;
  meta.path = dir.sub(segment_file_name(0, 1));
  meta.id = 1;
  meta.shard = 0;
  meta.first_seq = 1;
  meta.last_seq = 8;
  meta.created_unix_s = 1234;
  ASSERT_TRUE(write_segment(&meta, ptrs));
  EXPECT_EQ(meta.row_count, 8u);
  EXPECT_EQ(meta.min_time, 500.0);
  EXPECT_EQ(meta.max_time, 507.0);
  EXPECT_FALSE(meta.zones.empty());
  EXPECT_FALSE(fsys::exists(meta.path + ".tmp"));

  const auto back = read_segment_meta(meta.path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, 1u);
  EXPECT_EQ(back->row_count, 8u);
  EXPECT_EQ(back->min_time, 500.0);
  EXPECT_EQ(back->max_time, 507.0);
  EXPECT_EQ(back->zones.size(), meta.zones.size());
  ASSERT_EQ(back->schemas.size(), 1u);
  EXPECT_EQ(back->schemas[0]->name(), "darshan_data");

  std::vector<dsos::Object> decoded;
  ASSERT_TRUE(read_segment_rows(*back, &decoded));
  ASSERT_EQ(decoded.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(decoded[i].as_double("timestamp"),
              rows[i].as_double("timestamp"));
  }
}

TEST(Segment, TruncatedFileFailsHeaderValidation) {
  const TempDir dir("seg_trunc");
  const auto s = test_schema();
  const auto rows = make_events(s, 4);
  std::vector<const dsos::Object*> ptrs;
  for (const auto& r : rows) ptrs.push_back(&r);
  SegmentMeta meta;
  meta.path = dir.sub(segment_file_name(0, 1));
  meta.id = 1;
  meta.first_seq = 1;
  meta.last_seq = 4;
  ASSERT_TRUE(write_segment(&meta, ptrs));
  fsys::resize_file(meta.path, fsys::file_size(meta.path) - 10);
  EXPECT_FALSE(read_segment_meta(meta.path).has_value());
}

TEST(Segment, BitFlippedDataBlockFailsRowReadNotHeader) {
  const TempDir dir("seg_bitflip");
  const auto s = test_schema();
  const auto rows = make_events(s, 4);
  std::vector<const dsos::Object*> ptrs;
  for (const auto& r : rows) ptrs.push_back(&r);
  SegmentMeta meta;
  meta.path = dir.sub(segment_file_name(0, 1));
  meta.id = 1;
  meta.first_seq = 1;
  meta.last_seq = 4;
  ASSERT_TRUE(write_segment(&meta, ptrs));
  const auto size = fsys::file_size(meta.path);
  {
    std::fstream f(meta.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size) - 4);
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(size) - 4);
    c = static_cast<char>(c ^ 0x01);
    f.write(&c, 1);
  }
  const auto back = read_segment_meta(meta.path);
  ASSERT_TRUE(back.has_value());  // header CRC untouched
  std::vector<dsos::Object> decoded;
  EXPECT_FALSE(read_segment_rows(*back, &decoded));  // data CRC catches it
}

TEST(Segment, ZoneMapsPruneDisjointFilters) {
  const TempDir dir("seg_zones");
  const auto s = test_schema();
  const auto rows = make_events(s, 8, /*job=*/3, /*ranks=*/2, /*t0=*/500.0);
  std::vector<const dsos::Object*> ptrs;
  for (const auto& r : rows) ptrs.push_back(&r);
  SegmentMeta meta;
  meta.path = dir.sub(segment_file_name(0, 1));
  meta.id = 1;
  meta.first_seq = 1;
  meta.last_seq = 8;
  ASSERT_TRUE(write_segment(&meta, ptrs));

  using dsos::Cmp;
  // Disjoint job id: zone [3,3] cannot contain 4.
  EXPECT_FALSE(segment_can_match(
      meta, "darshan_data",
      {{"job_id", Cmp::kEq, dsos::Value{std::uint64_t{4}}}}));
  // Disjoint time range: max_time is 507.
  EXPECT_FALSE(segment_can_match(
      meta, "darshan_data", {{"timestamp", Cmp::kGt, dsos::Value{1000.0}}}));
  // Overlapping filter cannot be ruled out.
  EXPECT_TRUE(segment_can_match(
      meta, "darshan_data",
      {{"job_id", Cmp::kEq, dsos::Value{std::uint64_t{3}}}}));
  // Unknown schema: nothing in this segment can match.
  EXPECT_FALSE(segment_can_match(meta, "other_schema", {}));
}

// ------------------------------------------------------------ store -------

StoreConfig store_config(const std::string& dir, StoreMode mode,
                         std::size_t group = 8) {
  StoreConfig cfg;
  cfg.mode = mode;
  cfg.dir = dir;
  cfg.wal_group_records = group;
  return cfg;
}

TEST(Store, MemoryModeAttachesNothing) {
  dsos::DsosCluster db(cluster_config(2));
  const auto s = test_schema();
  db.register_schema(s);
  Store st{StoreConfig{}};
  st.open(db);
  for (const auto& e : make_events(s, 10)) db.insert(e);
  EXPECT_EQ(db.shard(0).container().commit_sink(), nullptr);
  EXPECT_EQ(st.durable_seq(0), 0u);
  st.close();
}

TEST(Store, WalModeSurvivesCleanReopenByteIdentical) {
  const TempDir dir("wal_reopen");
  const auto s = test_schema();
  const auto events = make_events(s, 100);
  const std::string want = baseline_fingerprint(s, events, 2);

  const StoreConfig cfg = store_config(dir.path(), StoreMode::kWal);
  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    for (const auto& e : events) db.insert(e);
    st.flush_all();
    EXPECT_EQ(fingerprint(db), want);
    st.close();
  }
  {
    dsos::DsosCluster db(cluster_config(2));
    Store st(cfg);
    const RecoveryReport rep = st.open(db);
    EXPECT_EQ(rep.rows_from_wal, 100u);
    EXPECT_EQ(rep.torn_tails, 0u);
    EXPECT_EQ(fingerprint(db), want);
    st.close();
  }
}

TEST(Store, EmptyWalRecoversToEmptyCluster) {
  const TempDir dir("wal_empty");
  const StoreConfig cfg = store_config(dir.path(), StoreMode::kWal);
  {
    dsos::DsosCluster db(cluster_config(2));
    Store st(cfg);
    st.open(db);
    st.close();  // creates empty WAL files, writes nothing
  }
  dsos::DsosCluster db(cluster_config(2));
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  EXPECT_EQ(rep.rows_from_wal + rep.rows_from_segments, 0u);
  EXPECT_EQ(rep.torn_tails, 0u);
  EXPECT_EQ(db.total_objects(), 0u);
  st.close();
}

TEST(Store, TieredModeSealsAndReopensByteIdentical) {
  const TempDir dir("tiered_reopen");
  const auto s = test_schema();
  const auto events = make_events(s, 120);
  const std::string want = baseline_fingerprint(s, events, 2);

  StoreConfig cfg = store_config(dir.path(), StoreMode::kTiered);
  cfg.seal_bytes = 256;  // seal every few commits
  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    for (const auto& e : events) db.insert(e);
    st.flush_all();
    st.seal_all();
    st.close();
  }
  dsos::DsosCluster db(cluster_config(2));
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  EXPECT_GT(rep.segments_loaded, 0u);
  EXPECT_EQ(rep.rows_from_segments + rep.rows_from_wal, 120u);
  EXPECT_EQ(fingerprint(db), want);
  st.close();
}

TEST(Store, CompactionMergesSmallSegmentsPreservingRows) {
  const TempDir dir("compact");
  const auto s = test_schema();
  const auto events = make_events(s, 90, /*job=*/1, /*ranks=*/1);
  const std::string want = baseline_fingerprint(s, events, 1);

  StoreConfig cfg = store_config(dir.path(), StoreMode::kTiered);
  cfg.compact_min_bytes = 1 << 20;  // everything is a candidate
  {
    dsos::DsosCluster db(cluster_config(1));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    // Three seals -> three small segments.
    std::size_t i = 0;
    for (const auto& e : events) {
      db.insert(e);
      if (++i % 30 == 0) {
        st.flush_all();
        st.seal_all();
      }
    }
    const std::size_t merged = st.compact_once();
    EXPECT_EQ(merged, 3u);
    EXPECT_EQ(st.compact_once(), 0u);  // nothing left to merge
    st.close();
  }
  dsos::DsosCluster db(cluster_config(1));
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  EXPECT_EQ(rep.segments_loaded, 1u);  // one merged segment
  EXPECT_EQ(rep.rows_from_segments, 90u);
  EXPECT_EQ(fingerprint(db), want);
  st.close();
}

TEST(Store, RetentionExpiresExactlyAtTtl) {
  const TempDir dir("retention");
  const auto s = test_schema();
  // All rows at timestamp 100..129 => segment max_time = 129.
  const auto events = make_events(s, 30, /*job=*/1, /*ranks=*/1,
                                  /*t0=*/100.0);
  std::int64_t fake_now = 150;
  StoreConfig cfg = store_config(dir.path(), StoreMode::kTiered);
  cfg.retention_s = 50;
  cfg.now_unix_s = [&fake_now] { return fake_now; };

  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  Store st(cfg);
  st.open(db);
  for (const auto& e : events) db.insert(e);
  st.flush_all();
  st.seal_all();

  fake_now = 178;  // now - max_time = 49 < 50: kept
  EXPECT_EQ(st.apply_retention(), 0u);
  fake_now = 179;  // now - max_time = 50 == ttl: expired
  EXPECT_EQ(st.apply_retention(), 1u);
  EXPECT_EQ(st.apply_retention(), 0u);  // idempotent
  st.close();

  // The expired segment is gone from disk too.
  std::size_t seg_files = 0;
  for (const auto& entry : fsys::directory_iterator(dir.path())) {
    if (entry.path().string().ends_with(".seg")) ++seg_files;
  }
  EXPECT_EQ(seg_files, 0u);
}

TEST(Store, QueryColdPrunesDisjointPartitionsViaPersistedZones) {
  const TempDir dir("query_cold");
  const auto s = test_schema();
  StoreConfig cfg = store_config(dir.path(), StoreMode::kTiered);

  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  Store st(cfg);
  st.open(db);
  // Two disjoint job/time partitions, sealed into separate segments.
  for (const auto& e : make_events(s, 40, /*job=*/1, /*ranks=*/1, 100.0)) {
    db.insert(e);
  }
  st.flush_all();
  st.seal_all();
  for (const auto& e : make_events(s, 40, /*job=*/2, /*ranks=*/1, 5000.0)) {
    db.insert(e);
  }
  st.flush_all();
  st.seal_all();

  using dsos::Cmp;
  Store::ColdQueryStats stats;
  const auto hits = st.query_cold(
      "darshan_data", {{"job_id", Cmp::kEq, dsos::Value{std::uint64_t{2}}}},
      &stats);
  EXPECT_EQ(hits.size(), 40u);
  EXPECT_EQ(stats.segments_total, 2u);
  EXPECT_EQ(stats.pruned, 1u);  // job 1's segment never decoded
  EXPECT_EQ(stats.read, 1u);

  Store::ColdQueryStats none;
  const auto empty = st.query_cold(
      "darshan_data", {{"timestamp", Cmp::kGt, dsos::Value{99999.0}}},
      &none);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(none.pruned, 2u);  // answered entirely from headers
  EXPECT_EQ(none.read, 0u);
  st.close();
}

TEST(Store, StatusJsonReportsModeAndShards) {
  const TempDir dir("status");
  const auto s = test_schema();
  const StoreConfig cfg = store_config(dir.path(), StoreMode::kWal);
  dsos::DsosCluster db(cluster_config(2));
  db.register_schema(s);
  Store st(cfg);
  st.open(db);
  for (const auto& e : make_events(s, 20)) db.insert(e);
  st.flush_all();
  const std::string json = st.status_json();
  EXPECT_NE(json.find("\"mode\":\"wal\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
  EXPECT_NE(json.find("\"durable_seq\""), std::string::npos);
  st.close();
}

// ------------------------------------------------- guard rails ------------

TEST(Store, OpenGuardsFailLoudly) {
  const TempDir dir("guards");
  const auto s = test_schema();
  const StoreConfig cfg = store_config(dir.path(), StoreMode::kWal);

  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  Store st(cfg);
  st.open(db);
  // Double open of the same instance.
  EXPECT_THROW(st.open(db), std::logic_error);
  // Second store on the same directory while the first is live.
  {
    dsos::DsosCluster db2(cluster_config(1));
    Store st2(cfg);
    EXPECT_THROW(st2.open(db2), std::logic_error);
  }
  // Second store on a different directory but the same (already
  // attached) cluster: the container rejects the double sink.
  {
    const TempDir other("guards_other");
    Store st3(store_config(other.path(), StoreMode::kWal));
    EXPECT_THROW(st3.open(db), std::logic_error);
  }
  st.close();
  st.close();  // idempotent

  // After close the directory is claimable again.
  dsos::DsosCluster db4(cluster_config(1));
  Store st4(cfg);
  EXPECT_NO_THROW(st4.open(db4));
  st4.close();

  // Missing directory with create_dir off.
  StoreConfig missing = store_config(dir.sub("nope"), StoreMode::kWal);
  missing.create_dir = false;
  Store st5(missing);
  dsos::DsosCluster db5(cluster_config(1));
  EXPECT_THROW(st5.open(db5), std::runtime_error);

  // Operations on a store that is not open.
  EXPECT_THROW(st5.flush_all(), std::logic_error);
  EXPECT_THROW(st5.compact_once(), std::logic_error);
  EXPECT_THROW(st5.query_cold("darshan_data", {}), std::logic_error);
}

// ------------------------------------------------- crash campaigns --------

/// Drives `events` into a fresh cluster+store on `dir` until an armed
/// crash fires (or the stream ends), then reopens with a new
/// cluster+store, resubmits everything past the recovered frontier, and
/// checks the zero-acked-loss and byte-identical bars.
void run_crash_campaign(const std::string& dir, StoreConfig cfg,
                        const std::string& plan_text,
                        std::size_t shards = 2, std::size_t n_events = 200,
                        bool compact_after = false) {
  const auto s = test_schema();
  const auto events = make_events(s, n_events);
  const std::string want = baseline_fingerprint(s, events, shards);
  cfg.dir = dir;

  const relia::FaultPlan plan = relia::parse_fault_plan(plan_text);
  ASSERT_TRUE(plan.ok()) << plan_text;

  std::vector<std::uint64_t> acked(shards, 0);
  {
    dsos::DsosCluster db(cluster_config(shards));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    ASSERT_GT(st.faults().arm_from_plan(plan), 0u);
    bool crashed = false;
    try {
      for (const auto& e : events) {
        db.insert(e);
      }
      st.flush_all();
      st.seal_all();
      if (compact_after) st.compact_once();
    } catch (const StoreCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "plan never fired: " << plan_text;
    ASSERT_TRUE(st.crashed());
    for (std::size_t sh = 0; sh < shards; ++sh) {
      acked[sh] = st.durable_seq(sh);
    }
    // The dead instance stays inert: inserts are dropped, never acked.
    db.insert(events[0]);
    for (std::size_t sh = 0; sh < shards; ++sh) {
      EXPECT_EQ(st.durable_seq(sh), acked[sh]);
    }
  }

  // Recovery: fresh store + fresh cluster on the same directory.
  dsos::DsosCluster db(cluster_config(shards));
  db.register_schema(s);
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  for (std::size_t sh = 0; sh < shards; ++sh) {
    // Zero acknowledged-event loss: everything acked was recovered.
    EXPECT_GE(rep.high_seq[sh], acked[sh]) << "shard " << sh;
    EXPECT_EQ(st.recovered_high_seq(sh), rep.high_seq[sh]);
  }
  // At-least-once driver: resubmit everything past the frontier, in the
  // original per-shard order.
  std::vector<std::uint64_t> pos(shards, 0);
  for (const auto& e : events) {
    dsos::Object copy = e;
    const std::size_t sh = db.route(copy);
    if (++pos[sh] <= rep.high_seq[sh]) continue;  // already recovered
    db.insert_at(sh, std::move(copy));
  }
  st.flush_all();
  EXPECT_EQ(fingerprint(db), want) << plan_text;
  st.close();
}

TEST(CrashCampaign, TornWalCommitLosesNoAckedEvents) {
  const TempDir dir("crash_commit");
  run_crash_campaign(dir.path(), store_config("", StoreMode::kWal),
                     "storecrash commit after 3\n");
}

TEST(CrashCampaign, TornWalCommitTieredMode) {
  const TempDir dir("crash_commit_tiered");
  StoreConfig cfg = store_config("", StoreMode::kTiered);
  cfg.seal_bytes = 512;
  run_crash_campaign(dir.path(), cfg, "storecrash commit after 5\n");
}

TEST(CrashCampaign, CrashDuringSealLeavesWalAuthoritative) {
  const TempDir dir("crash_seal");
  StoreConfig cfg = store_config("", StoreMode::kTiered);
  cfg.seal_bytes = 512;  // seals happen during ingest
  run_crash_campaign(dir.path(), cfg, "storecrash seal after 2\n");
  // The torn .seg.tmp must be gone after recovery.
  for (const auto& entry : fsys::directory_iterator(dir.path())) {
    EXPECT_FALSE(entry.path().string().ends_with(".seg.tmp"))
        << entry.path();
  }
}

TEST(CrashCampaign, CrashDuringCompactionWriteKeepsInputs) {
  const TempDir dir("crash_compact");
  StoreConfig cfg = store_config("", StoreMode::kTiered);
  cfg.seal_bytes = 512;
  cfg.compact_min_bytes = 1 << 20;
  run_crash_campaign(dir.path(), cfg, "storecrash compact after 1\n",
                     /*shards=*/2, /*n_events=*/200, /*compact_after=*/true);
}

TEST(CrashCampaign, CrashDuringCompactionSwapDropsReplacedInputs) {
  const TempDir dir("crash_swap");
  StoreConfig cfg = store_config("", StoreMode::kTiered);
  cfg.dir = dir.path();
  cfg.seal_bytes = 512;
  cfg.compact_min_bytes = 1 << 20;
  run_crash_campaign(dir.path(), cfg, "storecrash compact_swap after 1\n",
                     /*shards=*/2, /*n_events=*/200, /*compact_after=*/true);
  // Reopen once more just to inspect the recovery report: the swapped
  // output won, its inputs were dropped.
  dsos::DsosCluster db(cluster_config(2));
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  EXPECT_EQ(rep.replaced_dropped, 0u);  // prior recovery already dropped
  EXPECT_GT(rep.segments_loaded + rep.rows_from_wal, 0u);
  st.close();
}

TEST(CrashCampaign, BitFlippedSegmentIsQuarantinedLoudly) {
  const TempDir dir("crash_bitflip");
  const auto s = test_schema();
  StoreConfig cfg = store_config(dir.path(), StoreMode::kTiered);
  {
    dsos::DsosCluster db(cluster_config(1));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    for (const auto& e : make_events(s, 40, 1, 1)) db.insert(e);
    st.flush_all();
    st.seal_all();
    st.close();
  }
  // Flip a byte in the segment's data block.
  std::string seg_path;
  for (const auto& entry : fsys::directory_iterator(dir.path())) {
    if (entry.path().string().ends_with(".seg")) {
      seg_path = entry.path().string();
    }
  }
  ASSERT_FALSE(seg_path.empty());
  const auto size = fsys::file_size(seg_path);
  {
    std::fstream f(seg_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size) - 8);
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(size) - 8);
    c = static_cast<char>(c ^ 0x10);
    f.write(&c, 1);
  }
  dsos::DsosCluster db(cluster_config(1));
  Store st(cfg);
  const RecoveryReport rep = st.open(db);
  EXPECT_EQ(rep.quarantined_segments, 1u);
  EXPECT_EQ(rep.rows_from_segments, 0u);  // nothing resurrected as garbage
  bool quarantine_file = false;
  for (const auto& entry : fsys::directory_iterator(dir.path())) {
    if (entry.path().string().ends_with(".quarantined")) {
      quarantine_file = true;
    }
  }
  EXPECT_TRUE(quarantine_file);  // evidence kept for post-mortem
  st.close();
}

// ------------------------------------------------- fault plan / injector --

TEST(FaultInjector, PlanRoundTripAndOccurrenceCounting) {
  const relia::FaultPlan plan =
      relia::parse_fault_plan("# store campaign\nstorecrash seal after 2\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(relia::to_string(plan.events[0]), "storecrash seal after 2");

  FaultInjector fi;
  EXPECT_EQ(fi.arm_from_plan(plan), 1u);
  EXPECT_FALSE(fi.should_crash(CrashPoint::kSeal));  // occurrence 1
  EXPECT_TRUE(fi.should_crash(CrashPoint::kSeal));   // occurrence 2 fires
  EXPECT_FALSE(fi.should_crash(CrashPoint::kSeal));  // disarmed after
  EXPECT_FALSE(fi.should_crash(CrashPoint::kWalCommit));
}

TEST(FaultInjector, UnknownPointNamesAreSkipped) {
  const relia::FaultPlan plan =
      relia::parse_fault_plan("storecrash flush after 1\n");
  ASSERT_TRUE(plan.ok());  // lexically valid; point name resolved later
  FaultInjector fi;
  EXPECT_EQ(fi.arm_from_plan(plan), 0u);
}

TEST(FaultInjector, CrashPointNamesRoundTrip) {
  for (std::size_t i = 0; i < kCrashPointCount; ++i) {
    const auto p = static_cast<CrashPoint>(i);
    CrashPoint back{};
    ASSERT_TRUE(crash_point_from_name(crash_point_name(p), back));
    EXPECT_EQ(back, p);
  }
  CrashPoint out{};
  EXPECT_FALSE(crash_point_from_name("nope", out));
}

// ------------------------------------------------- parallel ingest --------

TEST(Store, ParallelIngestExecutorCommitsDurably) {
  const TempDir dir("parallel");
  const auto s = test_schema();
  const auto events = make_events(s, 400);
  const std::string want = baseline_fingerprint(s, events, 4);
  const StoreConfig cfg = store_config(dir.path(), StoreMode::kWal, 32);
  {
    dsos::DsosCluster db(cluster_config(4));
    db.register_schema(s);
    Store st(cfg);
    st.open(db);
    dsos::IngestConfig icfg;
    icfg.workers = 2;
    icfg.batch = 16;
    dsos::IngestExecutor exec(db, icfg);
    for (const auto& e : events) exec.submit(e);
    exec.drain();  // durability barrier: every shard group-committed
    std::uint64_t durable_total = 0;
    for (std::size_t sh = 0; sh < 4; ++sh) durable_total += st.durable_seq(sh);
    EXPECT_EQ(durable_total, 400u);
    EXPECT_EQ(fingerprint(db), want);
    st.close();
  }
  dsos::DsosCluster db(cluster_config(4));
  Store st(cfg);
  st.open(db);
  EXPECT_EQ(fingerprint(db), want);
  st.close();
}

}  // namespace
}  // namespace dlc::store
