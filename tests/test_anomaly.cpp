// Online anomaly detection (DESIGN.md §11): detector math in isolation,
// AlertManager lifecycle, the seal-fed engine over synthetic batches,
// end-to-end ioslow fault campaigns through run_experiment, and the
// /api/anomalies web surface.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "anomaly/alert.hpp"
#include "anomaly/detect.hpp"
#include "anomaly/engine.hpp"
#include "exp/pipeline.hpp"
#include "json/parser.hpp"
#include "json/writer.hpp"
#include "relia/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "websvc/service.hpp"
#include "workloads/mpi_io_test.hpp"

namespace dlc::anomaly {
namespace {

// --- detector math -------------------------------------------------------

TEST(Trend, ExactLineRecovered) {
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) y.push_back(1.0 + 2.0 * i);
  const TrendFit fit = fit_trend(y);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  // Rise across the window: slope * 9 / intercept = 18.
  EXPECT_NEAR(trend_relative_rise(fit), 18.0, 1e-9);
}

TEST(Trend, FlatSeriesIsValidWithNoTrend) {
  const TrendFit fit = fit_trend({3.0, 3.0, 3.0, 3.0});
  ASSERT_TRUE(fit.valid);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
  EXPECT_DOUBLE_EQ(trend_relative_rise(fit), 0.0);
}

TEST(Trend, TooFewPointsIsInvalid) {
  EXPECT_FALSE(fit_trend({}).valid);
  EXPECT_FALSE(fit_trend({1.0}).valid);
  EXPECT_DOUBLE_EQ(trend_relative_rise(fit_trend({1.0})), 0.0);
}

TEST(Trend, NoisyRisingSeriesKeepsSignAndQuality) {
  Rng rng(7);
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    y.push_back(0.1 + 0.02 * i + 0.002 * (rng.uniform() - 0.5));
  }
  const TrendFit fit = fit_trend(y);
  ASSERT_TRUE(fit.valid);
  EXPECT_GT(fit.slope, 0.015);
  EXPECT_LT(fit.slope, 0.025);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_GT(trend_relative_rise(fit), 1.0);
}

TEST(Trend, SymmetricNoiseHasLowR2) {
  // Alternating series: slope ~0, r2 ~0 — must not read as a trend.
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) y.push_back(i % 2 == 0 ? 0.1 : 0.3);
  const TrendFit fit = fit_trend(y);
  ASSERT_TRUE(fit.valid);
  EXPECT_LT(fit.r2, 0.2);
}

// Welford merge: splitting a stream arbitrarily and merging recovers the
// single-pass moments (the per-node fold the straggler scan relies on).
TEST(Welford, MergeMatchesSinglePassAnySplit) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform() * 10.0);
  RunningStats whole;
  for (const double x : xs) whole.add(x);
  for (const std::size_t split : {std::size_t{1}, std::size_t{17},
                                  std::size_t{500}, std::size_t{999}}) {
    RunningStats a, b;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < split ? a : b).add(xs[i]);
    }
    RunningStats merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  }
}

TEST(Welford, MergeIsAssociativeAndOffsetStable) {
  // Large common offset: naive sum-of-squares would cancel
  // catastrophically; Welford keeps full precision.
  const double offset = 1e9;
  RunningStats a, b, c;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) a.add(offset + rng.uniform());
  for (int i = 0; i < 100; ++i) b.add(offset + rng.uniform());
  for (int i = 0; i < 100; ++i) c.add(offset + rng.uniform());
  RunningStats ab = a;
  ab.merge(b);
  RunningStats ab_c = ab;
  ab_c.merge(c);
  RunningStats bc = b;
  bc.merge(c);
  RunningStats a_bc = a;
  a_bc.merge(bc);
  EXPECT_NEAR(ab_c.mean(), a_bc.mean(), 1e-6);
  EXPECT_NEAR(ab_c.variance(), a_bc.variance(), 1e-6);
  // Variance of uniform(0,1) is ~1/12 regardless of the 1e9 offset.
  EXPECT_NEAR(ab_c.variance(), 1.0 / 12.0, 0.02);
}

TEST(Ewma, HitAndMissTable) {
  // (rate, expect_fired) against alpha=0.5, factor=3, min_rate=10.
  Ewma state;
  state.alpha = 0.5;
  const BurstConfig cfg{3.0, 10.0};
  struct Row {
    double rate;
    bool fired;
  };
  // ewma after each row: 100, 100, 102, 251, 225.5, ...
  const std::vector<Row> table = {
      {100.0, false},  // priming: no history, never fires
      {100.0, false},  // 100 !> 3*100
      {104.0, false},  // 104 !> 3*100
      {400.0, true},   // 400 > 3*102
      {200.0, false},  // 200 !> 3*251
  };
  for (const Row& row : table) {
    const BurstDecision d = judge_burst(state, row.rate, cfg);
    EXPECT_EQ(d.fired, row.fired) << "rate " << row.rate;
    EXPECT_DOUBLE_EQ(d.rate, row.rate);
  }
}

TEST(Ewma, MinRateFloorSuppressesTinyJobs) {
  Ewma state;
  const BurstConfig cfg{3.0, 100.0};
  judge_burst(state, 1.0, cfg);  // prime at 1 event/s
  // 50x jump but under the absolute floor: stays quiet.
  EXPECT_FALSE(judge_burst(state, 50.0, cfg).fired);
  // Past the floor AND the relative threshold: fires.
  EXPECT_TRUE(judge_burst(state, 200.0, cfg).fired);
}

TEST(Straggler, OneSlowNodeFlagged) {
  StragglerConfig cfg;
  std::vector<NodeSample> nodes;
  for (int n = 0; n < 7; ++n) {
    nodes.push_back({"nid4" + std::to_string(n), 0.10 + 0.002 * n, 100});
  }
  nodes.push_back({"nid47", 0.50, 100});
  const auto found = find_stragglers(nodes, cfg);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].node, "nid47");
  EXPECT_GE(found[0].z, cfg.z_threshold);
  EXPECT_NEAR(found[0].node_mean, 0.50, 1e-12);
  EXPECT_NEAR(found[0].peer_mean, 0.106, 1e-3);
}

TEST(Straggler, TightDistributionSmallSkewDoesNotFlag) {
  // All nodes within 2%: raw z would explode off the tiny stddev, but
  // the rel-std floor and min_rel_excess keep it quiet.
  StragglerConfig cfg;
  std::vector<NodeSample> nodes;
  for (int n = 0; n < 8; ++n) {
    nodes.push_back({std::string("n") + std::to_string(n),
                     0.100 + 0.0002 * n, 100});
  }
  nodes.push_back({"n8", 0.104, 100});
  EXPECT_TRUE(find_stragglers(nodes, cfg).empty());
}

TEST(Straggler, TooFewNodesNeverFlags) {
  StragglerConfig cfg;  // min_nodes = 3
  const std::vector<NodeSample> nodes = {{"a", 0.1, 10}, {"b", 10.0, 10}};
  EXPECT_TRUE(find_stragglers(nodes, cfg).empty());
}

// --- AlertManager lifecycle ----------------------------------------------

Observation straggler_obs(const std::string& node, double bucket,
                          double z = 5.0) {
  Observation o;
  o.kind = AlertKind::kStraggler;
  o.job = "7";
  o.node = node;
  o.op = "read";
  o.anomalous = true;
  o.bucket = bucket;
  o.evidence.z = z;
  o.evidence.cells.push_back(node + "@" + std::to_string(bucket));
  return o;
}

TEST(AlertManager, FiresAfterConsecutiveHitsAndResolvesAfterClean) {
  AlertManager mgr;  // fire_after = 2, resolve_after = 2
  EXPECT_EQ(mgr.observe_bucket(0.0, {straggler_obs("nid42", 0.0)}), 0u);
  EXPECT_EQ(mgr.firing(), 0u);  // one hit: pending only
  EXPECT_TRUE(mgr.snapshot().empty());
  EXPECT_EQ(mgr.observe_bucket(10.0, {straggler_obs("nid42", 10.0)}), 1u);
  ASSERT_EQ(mgr.firing(), 1u);
  const std::vector<Alert> firing = mgr.snapshot();
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_EQ(firing[0].state, AlertState::kFiring);
  EXPECT_EQ(firing[0].node, "nid42");
  EXPECT_GT(firing[0].id, 0u);
  // One clean bucket: still firing (damped).
  mgr.observe_bucket(20.0, {});
  EXPECT_EQ(mgr.firing(), 1u);
  // Second consecutive clean bucket: resolved, retained in history.
  mgr.observe_bucket(30.0, {});
  EXPECT_EQ(mgr.firing(), 0u);
  EXPECT_EQ(mgr.total_resolved(), 1u);
  const std::vector<Alert> hist = mgr.snapshot();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].state, AlertState::kResolved);
  EXPECT_DOUBLE_EQ(hist[0].resolved_bucket, 30.0);
}

TEST(AlertManager, FlappingNeverFires) {
  AlertManager mgr;
  for (int i = 0; i < 10; ++i) {
    const double b = 10.0 * i;
    if (i % 2 == 0) {
      mgr.observe_bucket(b, {straggler_obs("nid42", b)});
    } else {
      mgr.observe_bucket(b, {});  // clean bucket resets the streak
    }
    EXPECT_EQ(mgr.firing(), 0u) << "bucket " << b;
  }
  EXPECT_EQ(mgr.total_fired(), 0u);
}

TEST(AlertManager, DedupUpdatesOneAlertAndBoundsEvidence) {
  AlertManagerConfig cfg;
  cfg.max_cells = 4;
  AlertManager mgr(cfg);
  for (int i = 0; i < 8; ++i) {
    mgr.observe_bucket(10.0 * i, {straggler_obs("nid42", 10.0 * i, 4.0 + i)});
  }
  const std::vector<Alert> alerts = mgr.snapshot();
  ASSERT_EQ(alerts.size(), 1u);  // same key every bucket: one alert
  EXPECT_EQ(mgr.total_fired(), 1u);
  EXPECT_EQ(alerts[0].hit_buckets, 8u);
  EXPECT_DOUBLE_EQ(alerts[0].evidence.z, 11.0);  // latest evidence wins
  EXPECT_EQ(alerts[0].evidence.cells.size(), cfg.max_cells);
  // Distinct nodes are distinct alerts.
  mgr.observe_bucket(80.0, {straggler_obs("nid42", 80.0),
                            straggler_obs("nid43", 80.0)});
  mgr.observe_bucket(90.0, {straggler_obs("nid42", 90.0),
                            straggler_obs("nid43", 90.0)});
  EXPECT_EQ(mgr.firing(), 2u);
}

TEST(AlertManager, SeverityEscalatesAndResolvedHistoryIsBounded) {
  AlertManagerConfig cfg;
  cfg.retention = 3;
  AlertManager mgr(cfg);
  for (int k = 0; k < 6; ++k) {
    // Each round fires a distinct node then lets it resolve.
    const std::string node = "nid" + std::to_string(k);
    Observation o = straggler_obs(node, 100.0 * k);
    if (k == 5) o.severity = Severity::kCritical;
    mgr.observe_bucket(100.0 * k, {o});
    o.bucket += 10.0;
    mgr.observe_bucket(100.0 * k + 10.0, {o});
    mgr.observe_bucket(100.0 * k + 20.0, {});
    mgr.observe_bucket(100.0 * k + 30.0, {});
  }
  EXPECT_EQ(mgr.total_fired(), 6u);
  EXPECT_EQ(mgr.total_resolved(), 6u);
  const std::vector<Alert> hist = mgr.snapshot();
  ASSERT_EQ(hist.size(), cfg.retention);  // newest 3 retained
  EXPECT_EQ(hist[0].node, "nid5");        // newest first
  EXPECT_EQ(hist[0].severity, Severity::kCritical);
}

TEST(AlertManager, JsonRoundTripsThroughParser) {
  AlertManager mgr;
  mgr.observe_bucket(0.0, {straggler_obs("nid42", 0.0)});
  mgr.observe_bucket(10.0, {straggler_obs("nid42", 10.0)});
  json::Writer w;
  mgr.write_json(w);
  const std::optional<json::Value> v = json::parse(w.take());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->as_array().size(), 1u);
  const json::Value& alert = v->as_array()[0];
  EXPECT_EQ(alert.get_string("kind"), "straggler");
  EXPECT_EQ(alert.get_string("state"), "firing");
  EXPECT_EQ(alert.get_string("node"), "nid42");
  const json::Value* ev = alert.find("evidence");
  ASSERT_NE(ev, nullptr);
  EXPECT_NE(ev->find("z"), nullptr);
}

// --- seal-fed engine over synthetic batches ------------------------------

using rollup::CellAgg;
using rollup::CellKey;

std::vector<std::pair<CellKey, CellAgg>> bucket_cells(
    std::int64_t bucket, std::uint64_t job,
    const std::vector<std::pair<std::string, double>>& node_means,
    const std::string& op = "read", std::uint64_t count = 50) {
  std::vector<std::pair<CellKey, CellAgg>> cells;
  for (const auto& [node, mean] : node_means) {
    CellKey key;
    key.job = job;
    key.producer = node;
    key.op = op;
    key.bucket = bucket;
    CellAgg agg;
    agg.count = count;
    agg.dur_sum = mean * static_cast<double>(count);
    cells.emplace_back(key, agg);
  }
  return cells;
}

TEST(AnomalyEngine, StragglerFiresOncePerFrontierAndNamesTheNode) {
  AnomalyConfig cfg;
  cfg.bucket_s = 10.0;
  AnomalyEngine eng(cfg);
  const std::vector<std::pair<std::string, double>> skewed = {
      {"nid40", 0.1}, {"nid41", 0.11}, {"nid42", 1.2}, {"nid43", 0.09}};
  for (std::int64_t b = 0; b < 4; ++b) {
    // Watermark covers the bucket just sealed; nothing is evaluated
    // until the frontier passes the bucket end.
    eng.on_sealed(kAnomalyPolicyName, 0,
                  static_cast<double>(b + 1) * cfg.bucket_s,
                  bucket_cells(b, 7, skewed));
  }
  const AnomalyStats stats = eng.stats();
  EXPECT_EQ(stats.buckets_evaluated, 4u);
  EXPECT_EQ(stats.cells, 16u);
  ASSERT_EQ(stats.alerts_firing, 1u);
  const std::vector<Alert> alerts = eng.alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].kind, AlertKind::kStraggler);
  EXPECT_EQ(alerts[0].job, "7");
  EXPECT_EQ(alerts[0].node, "nid42");
  EXPECT_EQ(alerts[0].op, "read");
  EXPECT_EQ(alerts[0].state, AlertState::kFiring);
  // Job filter: another job sees nothing.
  EXPECT_TRUE(eng.alerts("8").empty());
  EXPECT_EQ(eng.alerts("7").size(), alerts.size());
}

TEST(AnomalyEngine, MultiShardFrontierHoldsBackEvaluation) {
  AnomalyConfig cfg;
  cfg.bucket_s = 10.0;
  AnomalyEngine eng(cfg);
  const std::vector<std::pair<std::string, double>> even = {
      {"nid40", 0.1}, {"nid41", 0.1}, {"nid42", 0.1}};
  // Shard 0 races ahead; shard 1 lags at watermark 10 — only bucket 0
  // may be evaluated.
  eng.on_sealed(kAnomalyPolicyName, 0, 40.0, bucket_cells(0, 1, even));
  EXPECT_EQ(eng.stats().buckets_evaluated, 1u);  // single-shard so far
  eng.on_sealed(kAnomalyPolicyName, 1, 10.0, bucket_cells(1, 1, even));
  EXPECT_EQ(eng.stats().buckets_evaluated, 1u);  // min(40, 10) = 10
  // Shard 1 catches up: bucket 1 evaluates.
  eng.on_sealed(kAnomalyPolicyName, 1, 40.0, {});
  EXPECT_EQ(eng.stats().buckets_evaluated, 2u);
  // A cell arriving behind the evaluated frontier is counted, dropped.
  eng.on_sealed(kAnomalyPolicyName, 0, 40.0, bucket_cells(0, 1, even));
  EXPECT_EQ(eng.stats().late_cells, 3u);
}

TEST(AnomalyEngine, SlowdownTrendFiresOnDegradingWrites) {
  AnomalyConfig cfg;
  cfg.bucket_s = 10.0;
  cfg.trend_min_points = 6;
  AnomalyEngine eng(cfg);
  // Mean write duration doubles across 8 buckets: rise well past 0.5.
  for (std::int64_t b = 0; b < 8; ++b) {
    const double mean = 0.1 * (1.0 + 0.15 * static_cast<double>(b));
    eng.on_sealed(kAnomalyPolicyName, 0,
                  static_cast<double>(b + 1) * cfg.bucket_s,
                  bucket_cells(b, 3, {{"nid40", mean}, {"nid41", mean}},
                               "write"));
  }
  const std::vector<Alert> alerts = eng.alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].kind, AlertKind::kSlowdown);
  EXPECT_EQ(alerts[0].job, "3");
  EXPECT_EQ(alerts[0].op, "write");
  EXPECT_GT(alerts[0].evidence.rel_rise, cfg.trend_rise);
  EXPECT_GT(alerts[0].evidence.r2, cfg.trend_r2);
}

TEST(AnomalyEngine, BurstFiresOnRateJumpAndResolves) {
  AnomalyConfig cfg;
  cfg.bucket_s = 10.0;
  cfg.burst.min_rate = 10.0;
  AnomalyEngine eng(cfg);
  const auto feed = [&](std::int64_t b, std::uint64_t count) {
    eng.on_sealed(kAnomalyPolicyName, 0,
                  static_cast<double>(b + 1) * cfg.bucket_s,
                  bucket_cells(b, 5, {{"nid40", 0.1}}, "read", count));
  };
  std::int64_t b = 0;
  for (; b < 4; ++b) feed(b, 100);    // steady 10 events/s
  for (; b < 6; ++b) feed(b, 5000);   // 500/s: > 3x EWMA, two buckets
  const std::vector<Alert> firing = eng.alerts();
  ASSERT_FALSE(firing.empty());
  EXPECT_EQ(firing[0].kind, AlertKind::kBurst);
  EXPECT_EQ(firing[0].state, AlertState::kFiring);
  EXPECT_GT(firing[0].evidence.rate, firing[0].evidence.ewma);
  // Rate settles: the EWMA absorbs it and the alert resolves.
  for (; b < 12; ++b) feed(b, 5000);
  const std::vector<Alert> after = eng.alerts();
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].state, AlertState::kResolved);
  EXPECT_EQ(eng.stats().alerts_firing, 0u);
}

TEST(AnomalyEngine, CleanUniformTrafficNeverAlerts) {
  AnomalyConfig cfg;
  cfg.bucket_s = 10.0;
  AnomalyEngine eng(cfg);
  Rng rng(31);
  for (std::int64_t b = 0; b < 30; ++b) {
    std::vector<std::pair<std::string, double>> nodes;
    for (int n = 0; n < 6; ++n) {
      // ±10% node-to-node jitter around a common mean.
      nodes.push_back({"nid4" + std::to_string(n),
                       0.1 * (0.9 + 0.2 * rng.uniform())});
    }
    eng.on_sealed(kAnomalyPolicyName, 0,
                  static_cast<double>(b + 1) * cfg.bucket_s,
                  bucket_cells(b, 9, nodes, "read"));
  }
  EXPECT_EQ(eng.stats().alerts_fired, 0u);
  EXPECT_TRUE(eng.alerts().empty());
}

TEST(AnomalyEngine, IgnoresOtherPoliciesAndReportsStatus) {
  AnomalyEngine eng;
  eng.on_sealed("op_counts", 0, 100.0,
                bucket_cells(0, 1, {{"nid40", 0.1}}));
  EXPECT_EQ(eng.stats().cells, 0u);
  const std::optional<json::Value> status = json::parse(eng.status_json());
  ASSERT_TRUE(status.has_value());
  const json::Value* attached = status->find("attached");
  ASSERT_NE(attached, nullptr);
  ASSERT_TRUE(attached->is_bool());
  EXPECT_FALSE(attached->as_bool());
  const std::optional<json::Value> feed = json::parse(eng.alerts_json());
  ASSERT_TRUE(feed.has_value());
  EXPECT_NE(feed->find("alerts"), nullptr);
}

// --- end-to-end: ioslow campaigns through the full pipeline --------------

exp::ExperimentSpec anomaly_spec() {
  exp::ExperimentSpec spec;
  workloads::MpiIoTestConfig io;
  io.iterations = 30;
  io.block_size = 1 << 20;
  io.collective = false;
  io.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(io);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  spec.fs = simfs::FsKind::kLustre;
  spec.decode_to_dsos = true;
  spec.connector.anomaly = true;
  spec.connector.anomaly_bucket_s = 5.0;
  return spec;
}

TEST(AnomalyE2E, SlowNodeCampaignFlagsTheInjectedNode) {
  exp::ExperimentSpec spec = anomaly_spec();
  // Cluster nodes are nid00040..; the job's 4 nodes are nid00040-nid00043.
  spec.fault_plan = relia::parse_fault_plan(
      "ioslow nid00042 at 10s for 45s factor 12 op write");
  ASSERT_TRUE(spec.fault_plan.ok());
  const exp::RunResult r = run_experiment(spec);
  ASSERT_TRUE(r.anomalies != nullptr);
  ASSERT_TRUE(r.rollups != nullptr);
  // The alert must have fired from mid-run seals, before the quiescent
  // flush: detection happened while ingest was still in progress.
  const std::vector<Alert> alerts = r.anomalies->alerts();
  ASSERT_FALSE(alerts.empty()) << r.anomalies->status_json();
  bool found = false;
  for (const Alert& a : alerts) {
    if (a.kind != AlertKind::kStraggler) continue;
    EXPECT_EQ(a.node, "nid00042") << "straggler named the wrong node";
    EXPECT_EQ(a.job, std::to_string(spec.job_id));
    EXPECT_EQ(a.op, "write");
    EXPECT_GE(a.evidence.z, 3.0);
    found = true;
  }
  EXPECT_TRUE(found) << r.anomalies->alerts_json();
  // The websvc surface serves the same alerts.
  websvc::DashboardService svc(r.dsos);
  svc.set_rollup(r.rollups.get());
  svc.set_anomaly(r.anomalies.get());
  const websvc::Response resp = svc.handle("/api/anomalies");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("straggler"), std::string::npos);
  EXPECT_NE(resp.body.find("nid00042"), std::string::npos);
  const websvc::Response by_job =
      svc.handle("/api/anomalies/" + std::to_string(spec.job_id));
  EXPECT_EQ(by_job.status, 200);
  EXPECT_NE(by_job.body.find("nid00042"), std::string::npos);
  const websvc::Response other = svc.handle("/api/anomalies/999");
  EXPECT_EQ(other.status, 200);
  EXPECT_EQ(other.body.find("straggler"), std::string::npos);
}

TEST(AnomalyE2E, DegradingWriteCampaignFiresSlowdown) {
  exp::ExperimentSpec spec = anomaly_spec();
  // FS-wide write degradation ramping to 10x across most of the run:
  // Fig. 8's "write durations grow as the run progresses".
  spec.fault_plan = relia::parse_fault_plan(
      "ioslow * at 5s for 80s factor 10 op write ramp");
  ASSERT_TRUE(spec.fault_plan.ok());
  spec.connector.anomaly_trend_window = 10;
  const exp::RunResult r = run_experiment(spec);
  ASSERT_TRUE(r.anomalies != nullptr);
  bool slowdown = false;
  for (const Alert& a : r.anomalies->alerts()) {
    if (a.kind == AlertKind::kSlowdown) {
      EXPECT_EQ(a.job, std::to_string(spec.job_id));
      EXPECT_GT(a.evidence.rel_rise, 0.5);
      slowdown = true;
    }
    // A uniform FS-wide slowdown must not be blamed on one node.
    EXPECT_NE(a.kind, AlertKind::kStraggler)
        << "straggler misfired on uniform slowdown: "
        << r.anomalies->alerts_json();
  }
  EXPECT_TRUE(slowdown) << r.anomalies->alerts_json();
}

TEST(AnomalyE2E, CleanRunFiresNoAlerts) {
  exp::ExperimentSpec spec = anomaly_spec();
  const exp::RunResult r = run_experiment(spec);
  ASSERT_TRUE(r.anomalies != nullptr);
  EXPECT_GT(r.anomalies->stats().buckets_evaluated, 0u);
  EXPECT_EQ(r.anomalies->stats().alerts_fired, 0u)
      << r.anomalies->alerts_json();
}

TEST(AnomalyE2E, SharedAnomalyEngineAcrossRunsKeepsOneSurface) {
  exp::ExperimentSpec spec = anomaly_spec();
  spec.connector.anomaly = false;
  auto shared = std::make_shared<AnomalyEngine>([] {
    AnomalyConfig cfg;
    cfg.bucket_s = 5.0;
    return cfg;
  }());
  spec.shared_anomaly = shared;
  spec.fault_plan = relia::parse_fault_plan(
      "ioslow nid00042 at 10s for 45s factor 12 op write");
  const exp::RunResult r = run_experiment(spec);
  EXPECT_EQ(r.anomalies.get(), shared.get());
  EXPECT_GT(shared->stats().buckets_evaluated, 0u);
  EXPECT_GT(shared->stats().alerts_fired, 0u);
  // The engine detaches with the run's rollup engine going away.
  shared->detach();
  EXPECT_FALSE(shared->attached());
}

TEST(AnomalyWebsvc, NoEngineAttachedIs404) {
  auto db = std::make_shared<dsos::DsosCluster>(dsos::ClusterConfig{});
  const websvc::DashboardService svc(db);
  EXPECT_EQ(svc.handle("/api/anomalies").status, 404);
}

}  // namespace
}  // namespace dlc::anomaly
