// src/relia unit tests plus daemon-level delivery-guarantee scenarios:
// sequence accounting, the spill spool, reconnect policy, the fault-plan
// DSL, and crash/partition/overflow runs comparing best-effort loss with
// at-least-once redelivery end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ldms/daemon.hpp"
#include "ldms/fault_inject.hpp"
#include "relia/delivery.hpp"
#include "relia/fault.hpp"
#include "relia/fileseg.hpp"
#include "relia/reconnect.hpp"
#include "relia/seq.hpp"
#include "relia/spool.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace dlc {
namespace {

using relia::SequenceTracker;

// ------------------------------------------------- sequence tracker ----

TEST(SequenceTracker, InOrderStreamIsAllAccepts) {
  SequenceTracker t;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    EXPECT_EQ(t.observe("nid1", s), SequenceTracker::Observe::kAccept);
  }
  const auto* st = t.stats("nid1");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->received, 10u);
  EXPECT_EQ(st->unique, 10u);
  EXPECT_EQ(st->duplicates, 0u);
  EXPECT_EQ(st->reordered, 0u);
  EXPECT_EQ(st->lost(), 0u);
}

TEST(SequenceTracker, DuplicatesDetectedBelowAndAboveFrontier) {
  SequenceTracker t;
  t.observe("p", 1);
  t.observe("p", 2);
  t.observe("p", 5);  // out of order, pending above the frontier
  EXPECT_EQ(t.observe("p", 1), SequenceTracker::Observe::kDuplicate);
  EXPECT_EQ(t.observe("p", 5), SequenceTracker::Observe::kDuplicate);
  const auto* st = t.stats("p");
  EXPECT_EQ(st->duplicates, 2u);
  EXPECT_EQ(st->unique, 3u);
}

TEST(SequenceTracker, GapsCountAsLossUntilFilled) {
  SequenceTracker t;
  t.observe("p", 1);
  t.observe("p", 4);
  EXPECT_EQ(t.stats("p")->lost(), 2u);  // 2 and 3 outstanding
  EXPECT_EQ(t.observe("p", 3), SequenceTracker::Observe::kAccept);
  EXPECT_EQ(t.stats("p")->reordered, 1u);  // arrived below max_seq
  EXPECT_EQ(t.stats("p")->lost(), 1u);
  t.observe("p", 2);  // gap closed
  EXPECT_EQ(t.stats("p")->lost(), 0u);
  EXPECT_EQ(t.stats("p")->unique, 4u);
}

TEST(SequenceTracker, SeqZeroIsUnsequencedNeverDuplicate) {
  SequenceTracker t;
  EXPECT_EQ(t.observe("p", 0), SequenceTracker::Observe::kAccept);
  EXPECT_EQ(t.observe("p", 0), SequenceTracker::Observe::kAccept);
  EXPECT_EQ(t.unsequenced(), 2u);
  EXPECT_EQ(t.stats("p"), nullptr);  // excluded from per-producer stats
}

TEST(SequenceTracker, ProducersAreIndependentAndTotalAggregates) {
  SequenceTracker t;
  t.observe("a", 1);
  t.observe("b", 1);  // same seq, different producer: not a duplicate
  t.observe("b", 2);
  t.observe("b", 2);
  EXPECT_EQ(t.producers(), (std::vector<std::string>{"a", "b"}));
  const auto total = t.total();
  EXPECT_EQ(total.received, 4u);
  EXPECT_EQ(total.unique, 3u);
  EXPECT_EQ(total.duplicates, 1u);
  EXPECT_EQ(total.lost(), 0u);
}

// ------------------------------------------------------ message spool ----

ldms::StreamMessage make_msg(std::uint64_t seq, std::string payload = "x") {
  ldms::StreamMessage m;
  m.tag = "t";
  m.format = ldms::PayloadFormat::kString;
  m.payload = std::move(payload);
  m.producer = "nid1";
  m.seq = seq;
  m.publish_time = static_cast<SimTime>(seq);
  return m;
}

TEST(MessageSpool, FifoWithinTheRing) {
  relia::MessageSpool spool;
  for (std::uint64_t s = 1; s <= 5; ++s) spool.append(make_msg(s));
  EXPECT_EQ(spool.size(), 5u);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    auto m = spool.pop_front();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, s);
  }
  EXPECT_TRUE(spool.empty());
  EXPECT_EQ(spool.appended(), 5u);
  EXPECT_EQ(spool.evicted(), 0u);
}

TEST(MessageSpool, RingOverflowEvictsOldestFirst) {
  relia::SpoolConfig cfg;
  cfg.max_msgs = 3;  // no file: evictions are dropped
  relia::MessageSpool spool(cfg);
  for (std::uint64_t s = 1; s <= 5; ++s) spool.append(make_msg(s));
  EXPECT_EQ(spool.size(), 3u);
  EXPECT_EQ(spool.evicted(), 2u);  // seqs 1 and 2 gone
  EXPECT_EQ(spool.pop_front()->seq, 3u);
}

TEST(MessageSpool, ByteBoundEvictsIndependentlyOfCount) {
  relia::SpoolConfig cfg;
  cfg.max_msgs = 100;
  cfg.max_bytes = 10;
  relia::MessageSpool spool(cfg);
  spool.append(make_msg(1, "aaaaaa"));  // 6 bytes
  spool.append(make_msg(2, "bbbbbb"));  // would make 12 > 10: evicts seq 1
  EXPECT_EQ(spool.evicted(), 1u);
  EXPECT_EQ(spool.pop_front()->seq, 2u);
}

TEST(MessageSpool, FileSegmentRoundTripsEvictedMessages) {
  const std::string path = ::testing::TempDir() + "relia_spool_seg.bin";
  std::remove(path.c_str());
  relia::SpoolConfig cfg;
  cfg.max_msgs = 2;
  cfg.file_path = path;
  relia::MessageSpool spool(cfg);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    spool.append(make_msg(s, "payload-" + std::to_string(s)));
  }
  // Ring holds {4, 5}; {1, 2, 3} spilled to the file segment.
  EXPECT_EQ(spool.size(), 5u);
  EXPECT_EQ(spool.spilled(), 3u);
  EXPECT_EQ(spool.evicted(), 0u);  // nothing lost: the file caught them
  // Publish order is preserved across the file/ring boundary, and the
  // spilled copies come back intact.
  for (std::uint64_t s = 1; s <= 5; ++s) {
    auto m = spool.pop_front();
    ASSERT_TRUE(m.has_value()) << "seq " << s;
    EXPECT_EQ(m->seq, s);
    EXPECT_EQ(m->payload, "payload-" + std::to_string(s));
    EXPECT_EQ(m->producer, "nid1");
    EXPECT_EQ(m->format, ldms::PayloadFormat::kString);
    EXPECT_EQ(m->publish_time, static_cast<SimTime>(s));
  }
  EXPECT_TRUE(spool.empty());
  std::remove(path.c_str());
}

TEST(MessageSpool, FileSegmentCapDropsAndCounts) {
  const std::string path = ::testing::TempDir() + "relia_spool_cap.bin";
  std::remove(path.c_str());
  relia::SpoolConfig cfg;
  cfg.max_msgs = 1;
  cfg.file_path = path;
  cfg.file_max_bytes = 1;  // effectively: nothing fits
  relia::MessageSpool spool(cfg);
  spool.append(make_msg(1, "0123456789"));
  spool.append(make_msg(2, "0123456789"));  // evicts seq 1; file refuses it
  EXPECT_EQ(spool.evicted(), 1u);
  EXPECT_EQ(spool.size(), 1u);
  std::remove(path.c_str());
}

TEST(MessageSpool, ClearCountsRetainedAsEvicted) {
  relia::MessageSpool spool;
  spool.append(make_msg(1));
  spool.append(make_msg(2));
  spool.clear();
  EXPECT_TRUE(spool.empty());
  EXPECT_EQ(spool.evicted(), 2u);
}

// ------------------------------------------------------ file segment ----

TEST(FileSegment, AppendReadRoundTripAndCleanEof) {
  const std::string path = ::testing::TempDir() + "relia_fileseg_rt.bin";
  std::remove(path.c_str());
  relia::FileSegment seg;
  ASSERT_TRUE(seg.open(path, relia::FileSegment::OpenMode::kTruncate));
  ASSERT_TRUE(seg.append("alpha"));
  ASSERT_TRUE(seg.append(""));  // zero-length bodies are legal frames
  ASSERT_TRUE(seg.append("gamma"));
  ASSERT_TRUE(seg.flush());

  std::string body;
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "alpha");
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "");
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "gamma");
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kEof);
  // rewind replays from the start.
  seg.rewind();
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "alpha");
  seg.close();
  std::remove(path.c_str());
}

TEST(FileSegment, PartialAppendLeavesDetectableTornTail) {
  const std::string path = ::testing::TempDir() + "relia_fileseg_torn.bin";
  std::remove(path.c_str());
  relia::FileSegment seg;
  ASSERT_TRUE(seg.open(path, relia::FileSegment::OpenMode::kTruncate));
  ASSERT_TRUE(seg.append("good-record"));
  // Process dies 12 bytes into the next frame (8-byte prefix + 4 bytes
  // of body).  True = the partial write itself hit the disk.
  EXPECT_TRUE(seg.append_partial("torn-record", 12));
  seg.flush();

  std::string body;
  seg.rewind();
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "good-record");
  const std::streamoff good_end = seg.read_pos();
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kTorn);

  // Quarantine: truncate at the end of the last good record; the
  // segment then reads clean and accepts appends again.
  ASSERT_TRUE(seg.truncate_to(good_end));
  EXPECT_EQ(seg.bytes(), static_cast<std::size_t>(good_end));
  ASSERT_TRUE(seg.append("after-recovery"));
  ASSERT_TRUE(seg.flush());
  seg.rewind();
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "after-recovery");
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kEof);
  seg.close();
  std::remove(path.c_str());
}

TEST(FileSegment, KeepModePreservesBytesAcrossReopen) {
  const std::string path = ::testing::TempDir() + "relia_fileseg_keep.bin";
  std::remove(path.c_str());
  {
    relia::FileSegment seg;
    ASSERT_TRUE(seg.open(path, relia::FileSegment::OpenMode::kTruncate));
    ASSERT_TRUE(seg.append("persisted"));
    ASSERT_TRUE(seg.flush());
  }
  relia::FileSegment seg;
  ASSERT_TRUE(seg.open(path, relia::FileSegment::OpenMode::kKeep));
  std::string body;
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "persisted");
  // Appends land after the preserved bytes, not over them.
  ASSERT_TRUE(seg.append("appended"));
  ASSERT_TRUE(seg.flush());
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "appended");
  seg.close();
  std::remove(path.c_str());
}

TEST(FileSegment, RecycleEmptiesAndResetsCursors) {
  const std::string path = ::testing::TempDir() + "relia_fileseg_rec.bin";
  std::remove(path.c_str());
  relia::FileSegment seg;
  ASSERT_TRUE(seg.open(path, relia::FileSegment::OpenMode::kTruncate));
  ASSERT_TRUE(seg.append("sealed-away"));
  ASSERT_TRUE(seg.flush());
  ASSERT_TRUE(seg.recycle());
  EXPECT_EQ(seg.bytes(), 0u);
  std::string body;
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kEof);
  // A recycled segment starts a fresh run.
  ASSERT_TRUE(seg.append("next-run"));
  ASSERT_TRUE(seg.flush());
  EXPECT_EQ(seg.read_next(body), relia::FileSegment::ReadStatus::kOk);
  EXPECT_EQ(body, "next-run");
  seg.close();
  std::remove(path.c_str());
}

// -------------------------------------------------- reconnect policy ----

TEST(Backoff, GrowsGeometricallyAndCaps) {
  relia::BackoffConfig cfg;
  cfg.initial = 100;
  cfg.max = 1000;
  cfg.multiplier = 2.0;
  cfg.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(relia::backoff_delay(cfg, 0, rng), 100);
  EXPECT_EQ(relia::backoff_delay(cfg, 1, rng), 200);
  EXPECT_EQ(relia::backoff_delay(cfg, 2, rng), 400);
  EXPECT_EQ(relia::backoff_delay(cfg, 10, rng), 1000);  // capped
}

TEST(Backoff, JitterStaysWithinBandAndVaries) {
  relia::BackoffConfig cfg;
  cfg.initial = 1000000;
  cfg.max = 1000000;
  cfg.jitter = 0.2;
  Rng rng(7);
  SimDuration lo = cfg.max, hi = 0;
  for (int i = 0; i < 200; ++i) {
    const SimDuration d = relia::backoff_delay(cfg, 0, rng);
    EXPECT_GE(d, static_cast<SimDuration>(800000));
    EXPECT_LE(d, static_cast<SimDuration>(1200000));
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, hi);  // actually jittered, not constant
}

TEST(Backoff, DeterministicUnderSeededRng) {
  relia::BackoffConfig cfg;
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(relia::backoff_delay(cfg, i, a), relia::backoff_delay(cfg, i, b));
  }
}

TEST(CircuitBreaker, OpensAtThresholdAndRecoversViaHalfOpen) {
  relia::BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_for = 100;
  relia::CircuitBreaker br(cfg);
  EXPECT_TRUE(br.allow(0));
  br.record_failure(0);
  br.record_failure(1);
  EXPECT_EQ(br.state(), relia::CircuitBreaker::State::kClosed);
  br.record_failure(2);  // third consecutive failure trips it
  EXPECT_EQ(br.state(), relia::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 1u);
  EXPECT_FALSE(br.allow(50));   // still inside open_for
  EXPECT_TRUE(br.allow(102));   // elapsed: half-open probe admitted
  EXPECT_EQ(br.state(), relia::CircuitBreaker::State::kHalfOpen);
  br.record_success();
  EXPECT_EQ(br.state(), relia::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenFailureReopensImmediately) {
  relia::BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_for = 100;
  relia::CircuitBreaker br(cfg);
  br.record_failure(0);
  br.record_failure(0);
  br.record_failure(0);
  ASSERT_TRUE(br.allow(200));  // half-open
  br.record_failure(200);      // single failure re-opens, no threshold
  EXPECT_EQ(br.state(), relia::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 2u);
  EXPECT_FALSE(br.allow(250));
}

// ------------------------------------------------------ fault plan DSL ----

TEST(FaultPlan, ParsesEveryDirective) {
  const auto plan = relia::parse_fault_plan(
      "# reference schedule\n"
      "crash nid00041 at 2s for 500ms\n"
      "\n"
      "partition voltrino-head -> shirley at 4s for 1s\n"
      "overflow nid00040 at 1s count 25\n"
      "restart nid00041 at 3s\n");
  ASSERT_TRUE(plan.ok()) << plan.errors.front();
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, relia::FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].daemon, "nid00041");
  EXPECT_EQ(plan.events[0].at, 2 * kSecond);
  EXPECT_EQ(plan.events[0].duration, 500 * kMillisecond);

  EXPECT_EQ(plan.events[1].kind, relia::FaultKind::kPartition);
  EXPECT_EQ(plan.events[1].daemon, "voltrino-head");
  EXPECT_EQ(plan.events[1].upstream, "shirley");
  EXPECT_EQ(plan.events[1].duration, 1 * kSecond);

  EXPECT_EQ(plan.events[2].kind, relia::FaultKind::kOverflow);
  EXPECT_EQ(plan.events[2].count, 25u);

  EXPECT_EQ(plan.events[3].kind, relia::FaultKind::kRestart);
  EXPECT_EQ(plan.events[3].at, 3 * kSecond);
}

TEST(FaultPlan, EventsRoundTripThroughToString) {
  const std::string text =
      "crash nid00041 at 2s for 500ms\n"
      "partition voltrino-head -> shirley at 4s for 1s\n"
      "overflow nid00040 at 1s count 25\n"
      "restart nid00041 at 3s\n";
  const auto plan = relia::parse_fault_plan(text);
  ASSERT_TRUE(plan.ok());
  std::string rendered;
  for (const auto& e : plan.events) rendered += relia::to_string(e) + "\n";
  const auto replay = relia::parse_fault_plan(rendered);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(replay.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(replay.events[i].daemon, plan.events[i].daemon);
    EXPECT_EQ(replay.events[i].upstream, plan.events[i].upstream);
    EXPECT_EQ(replay.events[i].at, plan.events[i].at);
    EXPECT_EQ(replay.events[i].duration, plan.events[i].duration);
    EXPECT_EQ(replay.events[i].count, plan.events[i].count);
  }
}

TEST(FaultPlan, StorecrashDirectiveIsOccurrenceCounted) {
  const auto plan = relia::parse_fault_plan(
      "storecrash commit after 3\n"
      "storecrash compact_swap after 1\n");
  ASSERT_TRUE(plan.ok()) << plan.errors.front();
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, relia::FaultKind::kStoreCrash);
  EXPECT_EQ(plan.events[0].daemon, "commit");  // crash-point name
  EXPECT_EQ(plan.events[0].count, 3u);
  EXPECT_EQ(plan.events[1].daemon, "compact_swap");
  // Renders without an `at` clause and round-trips through the parser.
  EXPECT_EQ(relia::to_string(plan.events[0]), "storecrash commit after 3");
  const auto replay = relia::parse_fault_plan(relia::to_string(plan.events[1]));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.events[0].count, 1u);

  // Occurrence 0 never fires: rejected at parse time, not silently armed.
  EXPECT_FALSE(relia::parse_fault_plan("storecrash seal after 0\n").ok());
}

TEST(FaultPlan, IoslowDirectiveParsesAllClauses) {
  const auto plan = relia::parse_fault_plan(
      "ioslow nid00042 at 10s for 45s factor 12\n"
      "ioslow * at 5s for 80s factor 8.5 op write ramp\n"
      "ioslow nid00040 at 1s for 2s factor 2 op meta\n");
  ASSERT_TRUE(plan.ok()) << plan.errors.front();
  ASSERT_EQ(plan.events.size(), 3u);

  EXPECT_EQ(plan.events[0].kind, relia::FaultKind::kIoSlow);
  EXPECT_EQ(plan.events[0].daemon, "nid00042");
  EXPECT_EQ(plan.events[0].at, 10 * kSecond);
  EXPECT_EQ(plan.events[0].duration, 45 * kSecond);
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 12.0);
  EXPECT_EQ(plan.events[0].op, "any");  // default scope
  EXPECT_FALSE(plan.events[0].ramp);

  EXPECT_EQ(plan.events[1].daemon, "*");
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 8.5);
  EXPECT_EQ(plan.events[1].op, "write");
  EXPECT_TRUE(plan.events[1].ramp);

  EXPECT_EQ(plan.events[2].op, "meta");
}

TEST(FaultPlan, IoslowRoundTripsThroughToString) {
  const auto plan = relia::parse_fault_plan(
      "ioslow * at 5s for 80s factor 8.5 op write ramp\n"
      "ioslow nid00042 at 10s for 45s factor 12\n");
  ASSERT_TRUE(plan.ok());
  for (const relia::FaultEvent& e : plan.events) {
    const auto replay = relia::parse_fault_plan(relia::to_string(e));
    ASSERT_TRUE(replay.ok()) << relia::to_string(e);
    ASSERT_EQ(replay.events.size(), 1u);
    EXPECT_EQ(replay.events[0].daemon, e.daemon);
    EXPECT_EQ(replay.events[0].at, e.at);
    EXPECT_EQ(replay.events[0].duration, e.duration);
    EXPECT_DOUBLE_EQ(replay.events[0].factor, e.factor);
    EXPECT_EQ(replay.events[0].op, e.op);
    EXPECT_EQ(replay.events[0].ramp, e.ramp);
  }
}

TEST(FaultPlan, IoslowRejectsBadFactorAndOpClass) {
  // A non-positive factor is meaningless; an unknown op class is a typo.
  EXPECT_FALSE(
      relia::parse_fault_plan("ioslow nid1 at 1s for 1s factor 0\n").ok());
  EXPECT_FALSE(
      relia::parse_fault_plan("ioslow nid1 at 1s for 1s factor -2\n").ok());
  EXPECT_FALSE(
      relia::parse_fault_plan("ioslow nid1 at 1s for 1s factor 2 op fsync\n")
          .ok());
  EXPECT_FALSE(relia::parse_fault_plan("ioslow nid1 at 1s factor 2\n").ok());
}

TEST(FaultPlan, MalformedLinesAreReportedWithLineNumbers) {
  const auto plan = relia::parse_fault_plan(
      "crash nid1 at 1s for 1s\n"
      "crash nid1 at noon for 1s\n"
      "partition a b at 1s for 1s\n"  // missing ->
      "explode nid1 at 1s\n");
  EXPECT_EQ(plan.events.size(), 1u);
  ASSERT_EQ(plan.errors.size(), 3u);
  EXPECT_EQ(plan.errors[0].substr(0, 2), "2:");
  EXPECT_EQ(plan.errors[1].substr(0, 2), "3:");
  EXPECT_EQ(plan.errors[2].substr(0, 2), "4:");
  EXPECT_FALSE(plan.ok());
}

TEST(FaultPlan, DurationUnits) {
  SimDuration d = 0;
  EXPECT_TRUE(relia::parse_sim_duration("250ms", d));
  EXPECT_EQ(d, 250 * kMillisecond);
  EXPECT_TRUE(relia::parse_sim_duration("1.5s", d));
  EXPECT_EQ(d, kSecond + 500 * kMillisecond);
  EXPECT_TRUE(relia::parse_sim_duration("2m", d));
  EXPECT_EQ(d, 120 * kSecond);
  EXPECT_TRUE(relia::parse_sim_duration("10us", d));
  EXPECT_EQ(d, 10 * kMicrosecond);
  EXPECT_TRUE(relia::parse_sim_duration("7ns", d));
  EXPECT_EQ(d, 7);
  EXPECT_FALSE(relia::parse_sim_duration("", d));
  EXPECT_FALSE(relia::parse_sim_duration("ms", d));
  EXPECT_FALSE(relia::parse_sim_duration("5weeks", d));
  EXPECT_FALSE(relia::parse_sim_duration("-1s", d));
}

// --------------------------------------- daemon delivery scenarios ----

struct Receiver {
  SequenceTracker tracker;
  std::uint64_t arrivals = 0;

  void attach(ldms::LdmsDaemon& daemon, const std::string& tag) {
    daemon.bus().subscribe(tag, [this](const ldms::StreamMessage& msg) {
      ++arrivals;
      tracker.observe(msg.producer, msg.seq);
    });
  }
};

ldms::ForwardConfig fast_route(relia::DeliveryMode mode) {
  ldms::ForwardConfig cfg;
  cfg.hop_latency = kMillisecond;
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.delivery = mode;
  cfg.backoff.initial = 20 * kMillisecond;
  cfg.backoff.max = 100 * kMillisecond;
  return cfg;
}

/// Publishes `count` messages, one every `gap`, starting at t=0.
sim::Task<void> paced_publisher(sim::Engine& engine, ldms::LdmsDaemon& d,
                                std::uint64_t count, SimDuration gap) {
  for (std::uint64_t i = 0; i < count; ++i) {
    d.publish("t", ldms::PayloadFormat::kString, "x");
    co_await engine.delay(gap);
  }
}

TEST(DaemonDelivery, BestEffortCrashLosesAtLeastOnceRecovers) {
  constexpr std::uint64_t kCount = 100;
  for (const auto mode : {relia::DeliveryMode::kBestEffort,
                          relia::DeliveryMode::kAtLeastOnce}) {
    sim::Engine engine;
    ldms::LdmsDaemon src(&engine, "src");
    ldms::LdmsDaemon dst(&engine, "dst");
    src.add_forward("t", dst, fast_route(mode));
    src.add_outage(100 * kMillisecond, 400 * kMillisecond);
    Receiver rx;
    rx.attach(dst, "t");
    engine.spawn(paced_publisher(engine, src, kCount, 5 * kMillisecond));
    engine.run();
    const auto total = rx.tracker.total();
    if (mode == relia::DeliveryMode::kBestEffort) {
      // Publishes inside the window are simply gone.
      EXPECT_GT(src.outage_dropped(), 0u);
      EXPECT_EQ(total.unique + src.outage_dropped(), kCount);
      EXPECT_GT(total.lost(), 0u);
      EXPECT_EQ(src.spooled(), 0u);
    } else {
      // Everything arrives exactly once after redelivery; duplicates come
      // from deliveries whose ack was lost inside the window.
      EXPECT_EQ(total.unique, kCount);
      EXPECT_EQ(total.lost(), 0u);
      EXPECT_EQ(src.outage_dropped(), 0u);
      EXPECT_GT(src.spooled(), 0u);
      EXPECT_GT(src.redelivered(), 0u);
      EXPECT_EQ(rx.arrivals, total.received);
      EXPECT_EQ(total.received - total.duplicates, kCount);
      EXPECT_EQ(src.spool_depth(), 0u);  // fully drained
    }
  }
}

TEST(DaemonDelivery, PartitionScopesToOneRoute) {
  constexpr std::uint64_t kCount = 50;
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon a(&engine, "up-a");
  ldms::LdmsDaemon b(&engine, "up-b");
  src.add_forward("t", a, fast_route(relia::DeliveryMode::kBestEffort));
  src.add_forward("t", b, fast_route(relia::DeliveryMode::kBestEffort));
  src.add_route_outage("up-a", 50 * kMillisecond, 150 * kMillisecond);
  Receiver rx_a, rx_b;
  rx_a.attach(a, "t");
  rx_b.attach(b, "t");
  engine.spawn(paced_publisher(engine, src, kCount, 5 * kMillisecond));
  engine.run();
  // The partitioned route loses traffic; the healthy one sees everything.
  EXPECT_LT(rx_a.tracker.total().unique, kCount);
  EXPECT_EQ(rx_b.tracker.total().unique, kCount);
  EXPECT_GT(src.outage_dropped(), 0u);
  EXPECT_EQ(src.outage_dropped(), kCount - rx_a.tracker.total().unique);
}

TEST(DaemonDelivery, AckLossDuplicatesAreObservableDownstream) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  src.add_forward("t", dst, fast_route(relia::DeliveryMode::kAtLeastOnce));
  // Outage opens *after* publish but before the 1 ms hop completes: the
  // message is delivered into the window, its ack is lost, and the spool
  // redelivers it after reconnect — two arrivals, one unique.
  src.add_outage(500 * kMicrosecond, 50 * kMillisecond);
  Receiver rx;
  rx.attach(dst, "t");
  engine.spawn(paced_publisher(engine, src, 1, kMillisecond));
  engine.run();
  const auto total = rx.tracker.total();
  EXPECT_EQ(rx.arrivals, 2u);
  EXPECT_EQ(total.unique, 1u);
  EXPECT_EQ(total.duplicates, 1u);
  EXPECT_EQ(src.redelivered(), 1u);
}

TEST(DaemonDelivery, InjectedOverflowDropsOrSpools) {
  for (const auto mode : {relia::DeliveryMode::kBestEffort,
                          relia::DeliveryMode::kAtLeastOnce}) {
    sim::Engine engine;
    ldms::LdmsDaemon src(&engine, "src");
    ldms::LdmsDaemon dst(&engine, "dst");
    src.add_forward("t", dst, fast_route(mode));
    src.inject_overflow(0, 5);
    Receiver rx;
    rx.attach(dst, "t");
    engine.spawn(paced_publisher(engine, src, 20, kMillisecond));
    engine.run();
    if (mode == relia::DeliveryMode::kBestEffort) {
      EXPECT_EQ(rx.tracker.total().unique, 15u);
      EXPECT_EQ(src.dropped(), 5u);
    } else {
      EXPECT_EQ(rx.tracker.total().unique, 20u);
      EXPECT_EQ(src.dropped(), 0u);
      EXPECT_EQ(src.spooled(), 5u);
      EXPECT_EQ(src.redelivered(), 5u);
    }
  }
}

TEST(DaemonDelivery, RestartTruncatesAnOutageInProgress) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  src.add_forward("t", dst, fast_route(relia::DeliveryMode::kBestEffort));
  src.add_outage(0, 10 * kSecond);
  src.restart_at(50 * kMillisecond);  // operator bounces it early
  Receiver rx;
  rx.attach(dst, "t");
  engine.spawn(paced_publisher(engine, src, 20, 10 * kMillisecond));
  engine.run();
  // Publishes before 50 ms die in the window; the rest flow normally.
  EXPECT_EQ(src.outage_dropped(), 5u);
  EXPECT_EQ(rx.tracker.total().unique, 15u);
}

TEST(DaemonDelivery, ProberGivesUpOnAPermanentlyDeadRoute) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  auto cfg = fast_route(relia::DeliveryMode::kAtLeastOnce);
  cfg.backoff.max_attempts = 4;
  src.add_forward("t", dst, cfg);
  src.add_outage(0, 365LL * 24 * 3600 * kSecond);  // down for a year
  Receiver rx;
  rx.attach(dst, "t");
  engine.spawn(paced_publisher(engine, src, 10, kMillisecond));
  engine.run();  // must terminate: the prober abandons, not loops
  EXPECT_EQ(rx.arrivals, 0u);
  EXPECT_GT(src.failed_probes(), 0u);
  EXPECT_EQ(src.spool_evicted(), 10u);
  EXPECT_EQ(src.dropped(), 10u);  // abandoned spool counts as loss
  EXPECT_EQ(src.spool_depth(), 0u);
}

TEST(DaemonDelivery, SpoolBoundsApplyUnderAtLeastOnce) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  auto cfg = fast_route(relia::DeliveryMode::kAtLeastOnce);
  cfg.spool.max_msgs = 8;  // tiny spool: overflow is honest loss
  src.add_forward("t", dst, cfg);
  src.add_outage(0, 200 * kMillisecond);
  Receiver rx;
  rx.attach(dst, "t");
  engine.spawn(paced_publisher(engine, src, 40, kMillisecond));
  engine.run();
  const auto total = rx.tracker.total();
  EXPECT_GT(src.spool_evicted(), 0u);
  // Conservation: everything published either arrived uniquely or was
  // evicted from the bounded spool.
  EXPECT_EQ(total.unique + src.spool_evicted(), 40u);
  EXPECT_EQ(total.lost(), src.spool_evicted());
}

// ----------------------------------------------- fault plan application ----

TEST(FaultInject, AppliesPlanByDaemonName) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "nid1");
  ldms::LdmsDaemon dst(&engine, "agg");
  src.add_forward("t", dst, fast_route(relia::DeliveryMode::kBestEffort));
  const auto plan = relia::parse_fault_plan(
      "crash nid1 at 10ms for 50ms\n"
      "partition nid1 -> agg at 100ms for 20ms\n");
  ASSERT_TRUE(plan.ok());
  const auto unresolved = ldms::apply_fault_plan(
      plan, [&](const std::string& name) -> ldms::LdmsDaemon* {
        if (name == "nid1") return &src;
        if (name == "agg") return &dst;
        return nullptr;
      });
  EXPECT_TRUE(unresolved.empty());
  Receiver rx;
  rx.attach(dst, "t");
  engine.spawn(paced_publisher(engine, src, 30, 5 * kMillisecond));
  engine.run();
  EXPECT_GT(src.outage_dropped(), 0u);
  EXPECT_LT(rx.tracker.total().unique, 30u);
}

TEST(FaultInject, ReturnsUnresolvedEvents) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "nid1");
  const auto plan = relia::parse_fault_plan("crash ghost at 1s for 1s\n");
  ASSERT_TRUE(plan.ok());
  const auto unresolved = ldms::apply_fault_plan(
      plan, [&](const std::string& name) -> ldms::LdmsDaemon* {
        return name == "nid1" ? &src : nullptr;
      });
  ASSERT_EQ(unresolved.size(), 1u);
  EXPECT_EQ(unresolved[0].daemon, "ghost");
}

}  // namespace
}  // namespace dlc
