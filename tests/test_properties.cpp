// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across the whole configuration space —
// file-system models, connector modes, transport capacities, sampling
// rates.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <tuple>

#include <limits>
#include <random>

#include "core/connector.hpp"
#include "core/decoder.hpp"
#include "core/schema_darshan.hpp"
#include "json/parser.hpp"
#include "ldms/store.hpp"
#include "sim/engine.hpp"
#include "simfs/lustre.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"
#include "util/queue.hpp"
#include "wire/codec.hpp"

namespace dlc {
namespace {

std::shared_ptr<simfs::VariabilityProcess> flat_variability() {
  simfs::VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  return std::make_shared<simfs::VariabilityProcess>(cfg, 1);
}

std::unique_ptr<simfs::FileSystem> make_fs(sim::Engine& engine,
                                           simfs::FsKind kind) {
  if (kind == simfs::FsKind::kNfs) {
    simfs::NfsConfig cfg;
    cfg.jitter_sigma = 0.0;
    cfg.small_io_batch = 1;
    cfg.read_cache_bandwidth_bytes_per_sec = 0;  // exercise the server path
    return std::make_unique<simfs::NfsModel>(engine, cfg, flat_variability(),
                                             1);
  }
  simfs::LustreConfig cfg;
  cfg.jitter_sigma = 0.0;
  cfg.small_io_batch = 1;
  cfg.read_cache_bandwidth_bytes_per_sec = 0;
  return std::make_unique<simfs::LustreModel>(engine, cfg, flat_variability(),
                                              1);
}

// ------------------------------------------------- fs model properties ----

// (fs kind, collective, op-is-write)
using FsParam = std::tuple<simfs::FsKind, bool, bool>;

class FsModelProperty : public ::testing::TestWithParam<FsParam> {};

SimDuration run_one_op(simfs::FsKind kind, bool collective, bool write,
                       std::uint64_t bytes) {
  sim::Engine engine;
  auto fs = make_fs(engine, kind);
  SimDuration dur = 0;
  auto proc = [](simfs::FileSystem& f, bool is_write, bool coll,
                 std::uint64_t n, SimDuration& out) -> sim::Task<void> {
    const simfs::IoFlags flags{.collective = coll, .sync = false};
    if (is_write) {
      out = co_await f.write(0, "/prop/file", 0, n, flags);
    } else {
      out = co_await f.read(0, "/prop/file", 0, n, flags);
    }
  };
  engine.spawn(proc(*fs, write, collective, bytes, dur));
  engine.run();
  return dur;
}

TEST_P(FsModelProperty, DurationIsPositive) {
  const auto [kind, collective, write] = GetParam();
  EXPECT_GT(run_one_op(kind, collective, write, 4096), 0);
}

TEST_P(FsModelProperty, DurationMonotoneInBytes) {
  const auto [kind, collective, write] = GetParam();
  SimDuration prev = 0;
  for (const std::uint64_t bytes :
       {1ull << 12, 1ull << 16, 1ull << 20, 1ull << 24, 1ull << 27}) {
    const SimDuration dur = run_one_op(kind, collective, write, bytes);
    EXPECT_GE(dur, prev) << "bytes=" << bytes;
    prev = dur;
  }
}

TEST_P(FsModelProperty, DeterministicGivenSeed) {
  const auto [kind, collective, write] = GetParam();
  EXPECT_EQ(run_one_op(kind, collective, write, 1 << 20),
            run_one_op(kind, collective, write, 1 << 20));
}

INSTANTIATE_TEST_SUITE_P(
    AllFsModes, FsModelProperty,
    ::testing::Combine(::testing::Values(simfs::FsKind::kNfs,
                                         simfs::FsKind::kLustre),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<FsParam>& info) {
      return std::string(simfs::fs_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_coll" : "_indep") +
             (std::get<2>(info.param) ? "_write" : "_read");
    });

// --------------------------------------------- connector message sweep ----

struct MessagePipeline {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{}};
  std::shared_ptr<simfs::VariabilityProcess> variability = flat_variability();
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;
  ldms::LdmsDaemon daemon{&engine, "nid00040"};
  ldms::CsvStore store;
  std::unique_ptr<core::DarshanLdmsConnector> connector;

  MessagePipeline() {
    simfs::NfsConfig cfg;
    cfg.jitter_sigma = 0;
    cfg.small_io_batch = 1;
    fs = std::make_unique<simfs::NfsModel>(engine, cfg, variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.node_count = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job);
    store.attach(daemon, "darshanConnector");
    connector = std::make_unique<core::DarshanLdmsConnector>(
        *runtime, [this](int) { return &daemon; }, core::ConnectorConfig{});
  }
};

class MessageSchemaProperty
    : public ::testing::TestWithParam<darshan::Module> {};

TEST_P(MessageSchemaProperty, EveryOpYieldsParsableCompleteMessage) {
  const darshan::Module module = GetParam();
  MessagePipeline p;
  auto proc = [](darshan::Runtime& rt, darshan::Module m) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const darshan::Fd fd = co_await io.open(m, "/prop/file.dat", true);
    co_await io.write(fd, 4096);
    co_await io.read_at(fd, 0, 1024);
    co_await io.flush(fd);
    co_await io.close(fd);
  };
  p.engine.spawn(proc(*p.runtime, module));
  p.engine.run();

  // MPIIO additionally emits POSIX sub-events.
  const std::size_t expected =
      module == darshan::Module::kMpiio ? 7u : 5u;
  ASSERT_EQ(p.store.rows().size(), expected);

  static const char* kRequired[] = {"uid",     "exe",    "job_id", "rank",
                                    "ProducerName", "file", "record_id",
                                    "module",  "type",   "max_byte",
                                    "switches", "flushes", "cnt", "op"};
  for (const std::string& row : p.store.rows()) {
    const auto msg = json::parse(row);
    ASSERT_TRUE(msg.has_value()) << row;
    for (const char* field : kRequired) {
      EXPECT_TRUE(msg->find(field) != nullptr) << field << " in " << row;
    }
    const auto* seg = msg->find("seg");
    ASSERT_TRUE(seg && seg->is_array() && seg->as_array().size() == 1) << row;
    // MET if and only if open.
    const bool is_open = msg->get_string("op") == "open";
    EXPECT_EQ(msg->get_string("type") == "MET", is_open) << row;
    // Non-HDF5 modules carry the -1 / N/A HDF5 sentinels.
    const auto& s = seg->as_array()[0];
    const std::string mod_name = msg->get_string("module");
    if (mod_name != "H5F" && mod_name != "H5D") {
      EXPECT_EQ(s.get_int("ndims"), -1);
      EXPECT_EQ(s.get_string("data_set"), "N/A");
    }
    EXPECT_GT(s.get_double("timestamp"), 1.6e9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModules, MessageSchemaProperty,
    ::testing::Values(darshan::Module::kPosix, darshan::Module::kMpiio,
                      darshan::Module::kStdio, darshan::Module::kH5F,
                      darshan::Module::kH5D),
    [](const ::testing::TestParamInfo<darshan::Module>& info) {
      return std::string(darshan::module_name(info.param));
    });

// ------------------------------------------------- sampling rate sweep ----

class SamplingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplingProperty, PublishedCountMatchesFormula) {
  const std::uint64_t n = GetParam();
  MessagePipeline base;  // reuse wiring but swap connector config
  core::ConnectorConfig cfg;
  cfg.sample_every_n = n;
  base.connector = std::make_unique<core::DarshanLdmsConnector>(
      *base.runtime, [&base](int) { return &base.daemon; }, cfg);

  constexpr int kWrites = 120;
  auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const darshan::Fd fd =
        co_await io.open(darshan::Module::kPosix, "/f", true);
    for (int i = 0; i < kWrites; ++i) co_await io.write(fd, 64);
    co_await io.close(fd);
  };
  base.engine.spawn(proc(*base.runtime));
  base.engine.run();

  const auto& stats = base.connector->stats();
  EXPECT_EQ(stats.events_seen, kWrites + 2u);
  // Data events pass when the per-rank counter is divisible by n; the
  // counter includes open/close, but only data events can be skipped.
  std::uint64_t expected_data = 0;
  for (std::uint64_t count = 2; count < kWrites + 2u; ++count) {
    if (n <= 1 || count % n == 0) ++expected_data;
  }
  EXPECT_EQ(stats.messages_published, expected_data + 2);
  EXPECT_EQ(stats.messages_published + stats.events_sampled_out,
            stats.events_seen);
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingProperty,
                         ::testing::Values(1, 2, 3, 10, 60, 1000));

// ------------------------------------------- transport capacity sweep ----

class QueueCapacityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueueCapacityProperty, LossesShrinkWithCapacity) {
  const std::size_t capacity = GetParam();
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  ldms::ForwardConfig cfg;
  cfg.queue_capacity = capacity;
  cfg.hop_latency = kSecond;  // slow drain => overflow pressure
  cfg.bandwidth_bytes_per_sec = 0;
  src.add_forward("t", dst, cfg);
  constexpr std::uint64_t kBurst = 64;
  auto proc = [](ldms::LdmsDaemon& d) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      d.publish("t", ldms::PayloadFormat::kString, "x");
    }
    co_return;
  };
  engine.spawn(proc(src));
  engine.run();
  // Conservation: forwarded + dropped == burst.
  EXPECT_EQ(src.forwarded() + src.dropped(), kBurst);
  // The publisher never yields during the burst, so the pump cannot drain
  // concurrently: exactly `capacity` messages queue, the rest drop.
  const std::uint64_t expected_drops =
      kBurst > capacity ? kBurst - capacity : 0;
  EXPECT_EQ(src.dropped(), expected_drops);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacityProperty,
                         ::testing::Values(1, 4, 16, 63, 64, 128));

// ---------------------------------------- bounded queue edge cases --------

TEST(BoundedQueueProperty, ZeroCapacityRejectsEveryPush) {
  BoundedQueue<int> q(0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(q.try_push(i));
    EXPECT_FALSE(q.try_push(i, 1));
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.size_bytes(), 0u);
  EXPECT_FALSE(q.try_pop().has_value());
  q.close();
  EXPECT_FALSE(q.pop().has_value());  // closed + empty => end-of-stream
}

TEST(BoundedQueueProperty, ByteCapIsInclusiveAtTheBoundary) {
  BoundedQueue<int> q(16, 100);
  EXPECT_TRUE(q.try_push(1, 60));
  EXPECT_TRUE(q.try_push(2, 40));  // lands exactly on the cap
  EXPECT_EQ(q.size_bytes(), 100u);
  EXPECT_FALSE(q.try_push(3, 1));  // anything past it is refused
  EXPECT_EQ(q.size_bytes(), 100u);
  ASSERT_TRUE(q.try_pop().has_value());  // frees 60
  EXPECT_TRUE(q.try_push(4, 60));        // exactly full again
  EXPECT_EQ(q.size_bytes(), 100u);
}

TEST(BoundedQueueProperty, HugeItemCostCannotWrapPastTheCap) {
  BoundedQueue<int> q(16, 100);
  ASSERT_TRUE(q.try_push(1, 30));
  // bytes_ + cost overflows std::size_t; naive `bytes_ + bytes > cap`
  // arithmetic would wrap around and admit the item.
  EXPECT_FALSE(q.try_push(2, std::numeric_limits<std::size_t>::max() - 10));
  EXPECT_FALSE(q.try_push(3, std::numeric_limits<std::size_t>::max()));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.size_bytes(), 30u);
}

class QueueByteCapProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueueByteCapProperty, AccountingStaysExactUnderRandomChurn) {
  const std::size_t cap_bytes = GetParam();
  BoundedQueue<std::size_t> q(64, cap_bytes);
  std::mt19937 rng(static_cast<unsigned>(cap_bytes) * 7919u + 1u);
  std::uniform_int_distribution<std::size_t> cost(0, cap_bytes / 2 + 3);
  std::deque<std::size_t> model;  // byte costs the queue must be holding
  std::size_t model_bytes = 0;
  for (int step = 0; step < 2000; ++step) {
    if (rng() % 3 != 0) {
      const std::size_t c = cost(rng);
      const bool fits =
          model.size() < 64 && c <= cap_bytes - model_bytes;
      EXPECT_EQ(q.try_push(c, c), fits);
      if (fits) {
        model.push_back(c);
        model_bytes += c;
      }
    } else if (!model.empty()) {
      const auto popped = q.try_pop();
      ASSERT_TRUE(popped.has_value());
      EXPECT_EQ(*popped, model.front());  // FIFO order preserved
      model_bytes -= model.front();
      model.pop_front();
    }
    EXPECT_EQ(q.size(), model.size());
    EXPECT_EQ(q.size_bytes(), model_bytes);
    EXPECT_LE(q.size_bytes(), cap_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(ByteCaps, QueueByteCapProperty,
                         ::testing::Values(1, 7, 64, 1024));

// --------------------------------------- wire format round-trip fidelity ----

// The JSON path (format_message -> decode_message) and the binary path
// (FrameEncoder -> decode_frame) must produce identical darshan_data rows
// for arbitrary event streams.  The only licensed difference: the JSON
// writer prints seg_dur / seg_timestamp with six fractional digits while
// the frame carries exact nanoseconds, so those two compare with a 1e-6
// tolerance and everything else compares exactly.
class WireRoundTripProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(WireRoundTripProperty, BinaryDecodesIdenticallyToJson) {
  MessagePipeline p;
  const SimEpoch epoch;
  const auto schema = core::darshan_data_schema();
  std::mt19937 rng(GetParam());

  const std::vector<std::string> paths = {
      "/fscratch/testFile", "/projects/run/output.h5",
      "/fscratch/deep/nested/dir/checkpoint.0001.dat"};
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> module_dist(0,
                                                 darshan::kModuleCount - 1);
  std::uniform_int_distribution<int> op_dist(0, darshan::kOpCount - 1);
  std::uniform_int_distribution<std::int64_t> small(0, 1 << 20);
  std::uniform_int_distribution<std::uint64_t> wide(
      0, std::numeric_limits<std::uint64_t>::max() / 2);

  wire::FrameEncoder encoder(
      core::DarshanLdmsConnector::encode_context(*p.runtime, epoch));
  json::Writer writer;
  const std::size_t ranks = p.runtime->job().rank_count();

  std::vector<dsos::Object> json_rows;
  constexpr int kEvents = 200;
  SimTime clock = 0;
  for (int i = 0; i < kEvents; ++i) {
    darshan::IoEvent e;
    e.module = static_cast<darshan::Module>(module_dist(rng));
    e.op = static_cast<darshan::Op>(op_dist(rng));
    e.rank = static_cast<int>(wide(rng) % ranks);
    e.record_id = wide(rng);
    // Opens sometimes lack a resolvable path; both paths must then fall
    // back to the "N/A" placeholder.
    e.file_path = coin(rng) ? &paths[wide(rng) % paths.size()] : nullptr;
    e.max_byte = coin(rng) ? -1 : small(rng);
    e.switches = coin(rng) ? -1 : small(rng);
    e.flushes = coin(rng) ? -1 : small(rng);
    e.cnt = small(rng);
    e.offset = wide(rng);
    e.length = static_cast<std::uint64_t>(small(rng));
    // Ranks interleave, so the per-frame timestamp deltas go both ways.
    clock += small(rng) - (1 << 19);
    e.end = clock;
    e.start = e.end - small(rng);
    if (coin(rng)) {
      e.h5.pt_sel = small(rng);
      e.h5.irreg_hslab = coin(rng) ? -1 : small(rng);
      e.h5.reg_hslab = small(rng);
      e.h5.ndims = small(rng) % 4;
      e.h5.npoints = small(rng);
    }
    if (coin(rng)) e.h5.data_set = "/group/dset" + std::to_string(i % 3);

    core::DarshanLdmsConnector::format_message(writer, e, *p.runtime, epoch);
    auto decoded = core::decode_message(schema, writer.str());
    ASSERT_EQ(decoded.size(), 1u) << writer.str();
    json_rows.push_back(std::move(decoded[0]));

    encoder.add(e, p.runtime->job().producer_name(
                       static_cast<std::size_t>(e.rank)));
  }

  const auto binary_rows = wire::decode_frame(schema, encoder.take_frame());
  ASSERT_EQ(binary_rows.size(), json_rows.size());
  for (std::size_t i = 0; i < json_rows.size(); ++i) {
    for (std::size_t a = 0; a < schema->attrs().size(); ++a) {
      const auto& name = schema->attrs()[a].name;
      const dsos::Value& jv = json_rows[i].at(a);
      const dsos::Value& bv = binary_rows[i].at(a);
      if (name == "seg_dur" || name == "seg_timestamp") {
        EXPECT_NEAR(std::get<double>(jv), std::get<double>(bv), 1e-6)
            << "event " << i << " attr " << name;
      } else {
        EXPECT_EQ(jv, bv) << "event " << i << " attr " << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripProperty,
                         ::testing::Values(1u, 42u, 2026u, 0xdecafu));

}  // namespace
}  // namespace dlc

// ------------------------------------------- workload x fs integration ----

#include "exp/specs.hpp"
#include "workloads/hacc_io.hpp"
#include "workloads/hmmer.hpp"
#include "workloads/ior.hpp"
#include "workloads/mpi_io_test.hpp"
#include "workloads/sw4.hpp"

namespace dlc {
namespace {

enum class App { kMpiIoTest, kHaccIo, kHmmer, kSw4, kIor };

const char* app_name(App app) {
  switch (app) {
    case App::kMpiIoTest:
      return "MpiIoTest";
    case App::kHaccIo:
      return "HaccIo";
    case App::kHmmer:
      return "Hmmer";
    case App::kSw4:
      return "Sw4";
    case App::kIor:
      return "Ior";
  }
  return "?";
}

using AppFsParam = std::tuple<App, simfs::FsKind>;

class WorkloadPipelineProperty
    : public ::testing::TestWithParam<AppFsParam> {};

TEST_P(WorkloadPipelineProperty, RunsCleanlyThroughFullPipeline) {
  const auto [app, fs] = GetParam();
  exp::ExperimentSpec spec = exp::base_spec(fs);
  spec.node_count = 2;
  spec.ranks_per_node = 2;
  spec.decode_to_dsos = true;
  switch (app) {
    case App::kMpiIoTest: {
      workloads::MpiIoTestConfig cfg;
      cfg.iterations = 2;
      cfg.block_size = 1 << 20;
      spec.workload = workloads::mpi_io_test(cfg);
      break;
    }
    case App::kHaccIo: {
      workloads::HaccIoConfig cfg;
      cfg.particles_per_rank = 20'000;
      cfg.initial_compute = 0;
      spec.workload = workloads::hacc_io(cfg);
      break;
    }
    case App::kHmmer: {
      workloads::HmmerConfig cfg;
      cfg.profiles = 50;
      cfg.reads_per_profile = 4;
      cfg.writes_per_profile = 3;
      spec.workload = workloads::hmmer_build(cfg);
      break;
    }
    case App::kSw4: {
      workloads::Sw4Config cfg;
      cfg.timesteps = 6;
      cfg.checkpoint_every = 3;
      cfg.image_every = 6;
      cfg.grid_points_per_rank = 10'000;
      cfg.compute_per_step = 10 * kMillisecond;
      spec.workload = workloads::sw4(cfg);
      break;
    }
    case App::kIor: {
      workloads::IorConfig cfg;
      cfg.segments = 2;
      cfg.reorder_shift = 1;
      spec.workload = workloads::ior(cfg);
      break;
    }
  }
  const exp::RunResult r = exp::run_experiment(spec);
  // Pipeline invariants that must hold for every app on every fs:
  EXPECT_GT(r.runtime_s, 0.0);
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.messages, r.events);   // n=1 sampling publishes everything
  EXPECT_EQ(r.stored, r.messages);   // default queues never overflow here
  EXPECT_EQ(r.dropped, 0u);
  ASSERT_TRUE(r.dsos != nullptr);
  EXPECT_EQ(r.dsos->total_objects(), r.stored);
  // Every stored event carries a plausible absolute timestamp.
  for (const auto* obj : r.dsos->query("darshan_data", "time")) {
    EXPECT_GT(obj->as_double("seg_timestamp"), 1.6e9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllFs, WorkloadPipelineProperty,
    ::testing::Combine(::testing::Values(App::kMpiIoTest, App::kHaccIo,
                                         App::kHmmer, App::kSw4, App::kIor),
                       ::testing::Values(simfs::FsKind::kNfs,
                                         simfs::FsKind::kLustre)),
    [](const ::testing::TestParamInfo<AppFsParam>& info) {
      return std::string(app_name(std::get<0>(info.param))) + "_" +
             std::string(simfs::fs_kind_name(std::get<1>(info.param)));
    });

// ----------------------------------------- wire format pipeline parity ----

class WireFormatPipelineProperty
    : public ::testing::TestWithParam<core::WireFormat> {};

// The same workload must land the same rows in DSOS whichever wire format
// carries them; only the message count and byte volume may differ.
TEST_P(WireFormatPipelineProperty, SameRowsFewerBytesThroughFullPipeline) {
  const auto run_with = [](core::WireFormat wf) {
    exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kNfs);
    spec.node_count = 2;
    spec.ranks_per_node = 2;
    spec.decode_to_dsos = true;
    spec.connector.wire_format = wf;
    workloads::MpiIoTestConfig cfg;
    cfg.iterations = 2;
    cfg.block_size = 1 << 20;
    spec.workload = workloads::mpi_io_test(cfg);
    return exp::run_experiment(spec);
  };

  const exp::RunResult json = run_with(core::WireFormat::kJson);
  const exp::RunResult r = run_with(GetParam());
  EXPECT_EQ(r.events, json.events);
  EXPECT_EQ(r.dropped, 0u);
  ASSERT_TRUE(r.dsos != nullptr);
  // Every event reaches storage as exactly one row in every mode.
  EXPECT_EQ(r.dsos->total_objects(), r.events);
  EXPECT_EQ(r.dsos->total_objects(), json.dsos->total_objects());
  if (GetParam() == core::WireFormat::kBinaryBatched) {
    EXPECT_LT(r.messages, r.events);  // frames coalesce events
  } else {
    EXPECT_EQ(r.messages, r.events);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, WireFormatPipelineProperty,
    ::testing::Values(core::WireFormat::kJson, core::WireFormat::kBinary,
                      core::WireFormat::kBinaryBatched),
    [](const ::testing::TestParamInfo<core::WireFormat>& info) {
      return std::string(core::wire_format_name(info.param));
    });

}  // namespace
}  // namespace dlc
