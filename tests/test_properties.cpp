// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across the whole configuration space —
// file-system models, connector modes, transport capacities, sampling
// rates.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/connector.hpp"
#include "core/decoder.hpp"
#include "json/parser.hpp"
#include "ldms/store.hpp"
#include "sim/engine.hpp"
#include "simfs/lustre.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"

namespace dlc {
namespace {

std::shared_ptr<simfs::VariabilityProcess> flat_variability() {
  simfs::VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  return std::make_shared<simfs::VariabilityProcess>(cfg, 1);
}

std::unique_ptr<simfs::FileSystem> make_fs(sim::Engine& engine,
                                           simfs::FsKind kind) {
  if (kind == simfs::FsKind::kNfs) {
    simfs::NfsConfig cfg;
    cfg.jitter_sigma = 0.0;
    cfg.small_io_batch = 1;
    cfg.read_cache_bandwidth_bytes_per_sec = 0;  // exercise the server path
    return std::make_unique<simfs::NfsModel>(engine, cfg, flat_variability(),
                                             1);
  }
  simfs::LustreConfig cfg;
  cfg.jitter_sigma = 0.0;
  cfg.small_io_batch = 1;
  cfg.read_cache_bandwidth_bytes_per_sec = 0;
  return std::make_unique<simfs::LustreModel>(engine, cfg, flat_variability(),
                                              1);
}

// ------------------------------------------------- fs model properties ----

// (fs kind, collective, op-is-write)
using FsParam = std::tuple<simfs::FsKind, bool, bool>;

class FsModelProperty : public ::testing::TestWithParam<FsParam> {};

SimDuration run_one_op(simfs::FsKind kind, bool collective, bool write,
                       std::uint64_t bytes) {
  sim::Engine engine;
  auto fs = make_fs(engine, kind);
  SimDuration dur = 0;
  auto proc = [](simfs::FileSystem& f, bool is_write, bool coll,
                 std::uint64_t n, SimDuration& out) -> sim::Task<void> {
    const simfs::IoFlags flags{.collective = coll, .sync = false};
    if (is_write) {
      out = co_await f.write(0, "/prop/file", 0, n, flags);
    } else {
      out = co_await f.read(0, "/prop/file", 0, n, flags);
    }
  };
  engine.spawn(proc(*fs, write, collective, bytes, dur));
  engine.run();
  return dur;
}

TEST_P(FsModelProperty, DurationIsPositive) {
  const auto [kind, collective, write] = GetParam();
  EXPECT_GT(run_one_op(kind, collective, write, 4096), 0);
}

TEST_P(FsModelProperty, DurationMonotoneInBytes) {
  const auto [kind, collective, write] = GetParam();
  SimDuration prev = 0;
  for (const std::uint64_t bytes :
       {1ull << 12, 1ull << 16, 1ull << 20, 1ull << 24, 1ull << 27}) {
    const SimDuration dur = run_one_op(kind, collective, write, bytes);
    EXPECT_GE(dur, prev) << "bytes=" << bytes;
    prev = dur;
  }
}

TEST_P(FsModelProperty, DeterministicGivenSeed) {
  const auto [kind, collective, write] = GetParam();
  EXPECT_EQ(run_one_op(kind, collective, write, 1 << 20),
            run_one_op(kind, collective, write, 1 << 20));
}

INSTANTIATE_TEST_SUITE_P(
    AllFsModes, FsModelProperty,
    ::testing::Combine(::testing::Values(simfs::FsKind::kNfs,
                                         simfs::FsKind::kLustre),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<FsParam>& info) {
      return std::string(simfs::fs_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_coll" : "_indep") +
             (std::get<2>(info.param) ? "_write" : "_read");
    });

// --------------------------------------------- connector message sweep ----

struct MessagePipeline {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{}};
  std::shared_ptr<simfs::VariabilityProcess> variability = flat_variability();
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;
  ldms::LdmsDaemon daemon{&engine, "nid00040"};
  ldms::CsvStore store;
  std::unique_ptr<core::DarshanLdmsConnector> connector;

  MessagePipeline() {
    simfs::NfsConfig cfg;
    cfg.jitter_sigma = 0;
    cfg.small_io_batch = 1;
    fs = std::make_unique<simfs::NfsModel>(engine, cfg, variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.node_count = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job);
    store.attach(daemon, "darshanConnector");
    connector = std::make_unique<core::DarshanLdmsConnector>(
        *runtime, [this](int) { return &daemon; }, core::ConnectorConfig{});
  }
};

class MessageSchemaProperty
    : public ::testing::TestWithParam<darshan::Module> {};

TEST_P(MessageSchemaProperty, EveryOpYieldsParsableCompleteMessage) {
  const darshan::Module module = GetParam();
  MessagePipeline p;
  auto proc = [](darshan::Runtime& rt, darshan::Module m) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const darshan::Fd fd = co_await io.open(m, "/prop/file.dat", true);
    co_await io.write(fd, 4096);
    co_await io.read_at(fd, 0, 1024);
    co_await io.flush(fd);
    co_await io.close(fd);
  };
  p.engine.spawn(proc(*p.runtime, module));
  p.engine.run();

  // MPIIO additionally emits POSIX sub-events.
  const std::size_t expected =
      module == darshan::Module::kMpiio ? 7u : 5u;
  ASSERT_EQ(p.store.rows().size(), expected);

  static const char* kRequired[] = {"uid",     "exe",    "job_id", "rank",
                                    "ProducerName", "file", "record_id",
                                    "module",  "type",   "max_byte",
                                    "switches", "flushes", "cnt", "op"};
  for (const std::string& row : p.store.rows()) {
    const auto msg = json::parse(row);
    ASSERT_TRUE(msg.has_value()) << row;
    for (const char* field : kRequired) {
      EXPECT_TRUE(msg->find(field) != nullptr) << field << " in " << row;
    }
    const auto* seg = msg->find("seg");
    ASSERT_TRUE(seg && seg->is_array() && seg->as_array().size() == 1) << row;
    // MET if and only if open.
    const bool is_open = msg->get_string("op") == "open";
    EXPECT_EQ(msg->get_string("type") == "MET", is_open) << row;
    // Non-HDF5 modules carry the -1 / N/A HDF5 sentinels.
    const auto& s = seg->as_array()[0];
    const std::string mod_name = msg->get_string("module");
    if (mod_name != "H5F" && mod_name != "H5D") {
      EXPECT_EQ(s.get_int("ndims"), -1);
      EXPECT_EQ(s.get_string("data_set"), "N/A");
    }
    EXPECT_GT(s.get_double("timestamp"), 1.6e9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModules, MessageSchemaProperty,
    ::testing::Values(darshan::Module::kPosix, darshan::Module::kMpiio,
                      darshan::Module::kStdio, darshan::Module::kH5F,
                      darshan::Module::kH5D),
    [](const ::testing::TestParamInfo<darshan::Module>& info) {
      return std::string(darshan::module_name(info.param));
    });

// ------------------------------------------------- sampling rate sweep ----

class SamplingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplingProperty, PublishedCountMatchesFormula) {
  const std::uint64_t n = GetParam();
  MessagePipeline base;  // reuse wiring but swap connector config
  core::ConnectorConfig cfg;
  cfg.sample_every_n = n;
  base.connector = std::make_unique<core::DarshanLdmsConnector>(
      *base.runtime, [&base](int) { return &base.daemon; }, cfg);

  constexpr int kWrites = 120;
  auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const darshan::Fd fd =
        co_await io.open(darshan::Module::kPosix, "/f", true);
    for (int i = 0; i < kWrites; ++i) co_await io.write(fd, 64);
    co_await io.close(fd);
  };
  base.engine.spawn(proc(*base.runtime));
  base.engine.run();

  const auto& stats = base.connector->stats();
  EXPECT_EQ(stats.events_seen, kWrites + 2u);
  // Data events pass when the per-rank counter is divisible by n; the
  // counter includes open/close, but only data events can be skipped.
  std::uint64_t expected_data = 0;
  for (std::uint64_t count = 2; count < kWrites + 2u; ++count) {
    if (n <= 1 || count % n == 0) ++expected_data;
  }
  EXPECT_EQ(stats.messages_published, expected_data + 2);
  EXPECT_EQ(stats.messages_published + stats.events_sampled_out,
            stats.events_seen);
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingProperty,
                         ::testing::Values(1, 2, 3, 10, 60, 1000));

// ------------------------------------------- transport capacity sweep ----

class QueueCapacityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueueCapacityProperty, LossesShrinkWithCapacity) {
  const std::size_t capacity = GetParam();
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  ldms::ForwardConfig cfg;
  cfg.queue_capacity = capacity;
  cfg.hop_latency = kSecond;  // slow drain => overflow pressure
  cfg.bandwidth_bytes_per_sec = 0;
  src.add_forward("t", dst, cfg);
  constexpr std::uint64_t kBurst = 64;
  auto proc = [](ldms::LdmsDaemon& d) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      d.publish("t", ldms::PayloadFormat::kString, "x");
    }
    co_return;
  };
  engine.spawn(proc(src));
  engine.run();
  // Conservation: forwarded + dropped == burst.
  EXPECT_EQ(src.forwarded() + src.dropped(), kBurst);
  // The publisher never yields during the burst, so the pump cannot drain
  // concurrently: exactly `capacity` messages queue, the rest drop.
  const std::uint64_t expected_drops =
      kBurst > capacity ? kBurst - capacity : 0;
  EXPECT_EQ(src.dropped(), expected_drops);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacityProperty,
                         ::testing::Values(1, 4, 16, 63, 64, 128));

}  // namespace
}  // namespace dlc

// ------------------------------------------- workload x fs integration ----

#include "exp/specs.hpp"
#include "workloads/hacc_io.hpp"
#include "workloads/hmmer.hpp"
#include "workloads/ior.hpp"
#include "workloads/mpi_io_test.hpp"
#include "workloads/sw4.hpp"

namespace dlc {
namespace {

enum class App { kMpiIoTest, kHaccIo, kHmmer, kSw4, kIor };

const char* app_name(App app) {
  switch (app) {
    case App::kMpiIoTest:
      return "MpiIoTest";
    case App::kHaccIo:
      return "HaccIo";
    case App::kHmmer:
      return "Hmmer";
    case App::kSw4:
      return "Sw4";
    case App::kIor:
      return "Ior";
  }
  return "?";
}

using AppFsParam = std::tuple<App, simfs::FsKind>;

class WorkloadPipelineProperty
    : public ::testing::TestWithParam<AppFsParam> {};

TEST_P(WorkloadPipelineProperty, RunsCleanlyThroughFullPipeline) {
  const auto [app, fs] = GetParam();
  exp::ExperimentSpec spec = exp::base_spec(fs);
  spec.node_count = 2;
  spec.ranks_per_node = 2;
  spec.decode_to_dsos = true;
  switch (app) {
    case App::kMpiIoTest: {
      workloads::MpiIoTestConfig cfg;
      cfg.iterations = 2;
      cfg.block_size = 1 << 20;
      spec.workload = workloads::mpi_io_test(cfg);
      break;
    }
    case App::kHaccIo: {
      workloads::HaccIoConfig cfg;
      cfg.particles_per_rank = 20'000;
      cfg.initial_compute = 0;
      spec.workload = workloads::hacc_io(cfg);
      break;
    }
    case App::kHmmer: {
      workloads::HmmerConfig cfg;
      cfg.profiles = 50;
      cfg.reads_per_profile = 4;
      cfg.writes_per_profile = 3;
      spec.workload = workloads::hmmer_build(cfg);
      break;
    }
    case App::kSw4: {
      workloads::Sw4Config cfg;
      cfg.timesteps = 6;
      cfg.checkpoint_every = 3;
      cfg.image_every = 6;
      cfg.grid_points_per_rank = 10'000;
      cfg.compute_per_step = 10 * kMillisecond;
      spec.workload = workloads::sw4(cfg);
      break;
    }
    case App::kIor: {
      workloads::IorConfig cfg;
      cfg.segments = 2;
      cfg.reorder_shift = 1;
      spec.workload = workloads::ior(cfg);
      break;
    }
  }
  const exp::RunResult r = exp::run_experiment(spec);
  // Pipeline invariants that must hold for every app on every fs:
  EXPECT_GT(r.runtime_s, 0.0);
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.messages, r.events);   // n=1 sampling publishes everything
  EXPECT_EQ(r.stored, r.messages);   // default queues never overflow here
  EXPECT_EQ(r.dropped, 0u);
  ASSERT_TRUE(r.dsos != nullptr);
  EXPECT_EQ(r.dsos->total_objects(), r.stored);
  // Every stored event carries a plausible absolute timestamp.
  for (const auto* obj : r.dsos->query("darshan_data", "time")) {
    EXPECT_GT(obj->as_double("seg_timestamp"), 1.6e9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllFs, WorkloadPipelineProperty,
    ::testing::Combine(::testing::Values(App::kMpiIoTest, App::kHaccIo,
                                         App::kHmmer, App::kSw4, App::kIor),
                       ::testing::Values(simfs::FsKind::kNfs,
                                         simfs::FsKind::kLustre)),
    [](const ::testing::TestParamInfo<AppFsParam>& info) {
      return std::string(app_name(std::get<0>(info.param))) + "_" +
             std::string(simfs::fs_kind_name(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace dlc
