// Tests for the rollup subsystem: policy DSL parsing, the sparse
// log-bucket histogram, cell row round trips, engine fold/seal/query
// semantics, covering-policy selection, the randomized rollup-vs-raw
// equivalence property (including duplicate + out-of-order delivery and
// an at-least-once pipeline run under a transport fault plan), and
// FaultPlan-driven crash-recovery campaigns asserting recovered rollups
// answer queries byte-identically to an uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsos/cluster.hpp"
#include "dsos/schema.hpp"
#include "exp/pipeline.hpp"
#include "exp/specs.hpp"
#include "json/parser.hpp"
#include "relia/fault.hpp"
#include "rollup/cell.hpp"
#include "rollup/engine.hpp"
#include "rollup/policy.hpp"
#include "rollup/serve.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/workload.hpp"

namespace dlc::rollup {
namespace {

namespace fsys = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fsys::temp_directory_path() /
             ("dlc_rollup_" + tag + "_" + std::to_string(counter_++)))
                .string();
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  static std::atomic<int> counter_;
  std::string path_;
};

std::atomic<int> TempDir::counter_{0};

/// The Table I subset the engine folds (full darshan_data in prod).
dsos::SchemaPtr test_schema() {
  using dsos::AttrType;
  return dsos::SchemaBuilder("darshan_data")
      .attr("module", AttrType::kString)
      .attr("ProducerName", AttrType::kString)
      .attr("rank", AttrType::kInt64)
      .attr("job_id", AttrType::kUint64)
      .attr("op", AttrType::kString)
      .attr("seg_dur", AttrType::kDouble)
      .attr("seg_len", AttrType::kInt64)
      .attr("seg_timestamp", AttrType::kTimestamp)
      .index("job_rank_time", {"job_id", "rank", "seg_timestamp"})
      .build();
}

dsos::Object event(const dsos::SchemaPtr& s, std::uint64_t job,
                   std::int64_t rank, const std::string& op, double ts,
                   double dur, std::int64_t len,
                   const std::string& producer = "nid00041",
                   const std::string& module = "POSIX") {
  return dsos::make_object(s,
                           {module, producer, rank, job, op, dur, len, ts});
}

dsos::ClusterConfig cluster_config(std::size_t shards) {
  dsos::ClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  return cfg;
}

/// Independent raw-scan oracle: folds every object in the cluster, per
/// shard in slot (insertion) order then shards ascending — the same
/// accumulation order the engine commits to — into per-policy cell maps.
std::map<CellKey, CellAgg> reference_cells(const dsos::DsosCluster& db,
                                           const PolicyConfig& p) {
  std::map<CellKey, CellAgg> out;
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    std::map<CellKey, CellAgg> shard_cells;
    const dsos::Container& c = db.shard(s).container();
    for (std::size_t slot = 0; slot < c.size(); ++slot) {
      const dsos::Object& obj = c.object(slot);
      if (obj.schema->find_attr("seg_timestamp") == std::nullopt) continue;
      bool match = true;
      for (const MatchClause& clause : p.match) {
        std::string v;
        if (clause.attr == "job_id") {
          v = std::to_string(obj.as_uint("job_id"));
        } else if (clause.attr == "rank") {
          v = std::to_string(obj.as_int("rank"));
        } else {
          v = obj.as_string(clause.attr);
        }
        match = std::find(clause.values.begin(), clause.values.end(), v) !=
                clause.values.end();
        if (!match) break;
      }
      if (!match) continue;
      const double ts = obj.as_double("seg_timestamp");
      CellKey key;
      key.bucket = static_cast<std::int64_t>(std::floor(ts / p.bucket_s));
      if (p.has_key("job_id")) key.job = obj.as_uint("job_id");
      if (p.has_key("ProducerName")) key.producer = obj.as_string("ProducerName");
      if (p.has_key("rank")) key.rank = obj.as_int("rank");
      if (p.has_key("op")) key.op = obj.as_string("op");
      if (p.has_key("module")) key.module = obj.as_string("module");
      shard_cells[key].add(obj.as_int("seg_len"), obj.as_double("seg_dur"));
    }
    for (const auto& [key, agg] : shard_cells) out[key].merge(agg);
  }
  return out;
}

/// Canonical byte rendering of one policy's query results (hex-float
/// doubles: "identical" means bit-identical).
std::string cell_fingerprint(const std::vector<RollupCell>& cells) {
  std::string out;
  char buf[128];
  for (const RollupCell& c : cells) {
    std::snprintf(buf, sizeof(buf), "%llu|%s|%lld|%s|%s|%lld|%a|%a|",
                  static_cast<unsigned long long>(c.key.job),
                  c.key.producer.c_str(),
                  static_cast<long long>(c.key.rank), c.key.op.c_str(),
                  c.key.module.c_str(),
                  static_cast<long long>(c.key.bucket), c.bucket_start,
                  c.bucket_w);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%llu|%llu|%a|%a|%a|",
                  static_cast<unsigned long long>(c.agg.count),
                  static_cast<unsigned long long>(c.agg.bytes),
                  c.agg.dur_sum, c.agg.dur_min, c.agg.dur_max);
    out += buf;
    out += c.agg.dur_hist.encode();
    out += '\n';
  }
  return out;
}

/// Engine query == raw-scan oracle, bit-exact (count, bytes, dur_sum,
/// min, max, histogram), for one policy.
void expect_matches_reference(const RollupEngine& engine,
                              const dsos::DsosCluster& db,
                              const PolicyConfig& p) {
  const std::map<CellKey, CellAgg> want = reference_cells(db, p);
  const std::vector<RollupCell> got = engine.query(p.name, {});
  ASSERT_EQ(got.size(), want.size()) << p.name;
  for (const RollupCell& cell : got) {
    const auto it = want.find(cell.key);
    ASSERT_NE(it, want.end()) << p.name;
    const CellAgg& ref = it->second;
    EXPECT_EQ(cell.agg.count, ref.count) << p.name;
    EXPECT_EQ(cell.agg.bytes, ref.bytes) << p.name;
    EXPECT_EQ(cell.agg.dur_sum, ref.dur_sum) << p.name;  // bit-exact
    EXPECT_EQ(cell.agg.dur_min, ref.dur_min) << p.name;
    EXPECT_EQ(cell.agg.dur_max, ref.dur_max) << p.name;
    EXPECT_EQ(cell.agg.dur_hist, ref.dur_hist) << p.name;
    EXPECT_EQ(cell.bucket_start,
              static_cast<double>(cell.key.bucket) * p.bucket_s);
  }
}

// ------------------------------------------------------------ policy DSL --

TEST(PolicyDsl, ParsesFullSpecAndRoundTrips) {
  const PolicySet set = parse_rollup_policies(
      "hot key=job_id,rank bucket=30s match=op:read|write,module:POSIX "
      "grace=90s");
  ASSERT_TRUE(set.ok()) << (set.errors.empty() ? "" : set.errors.front());
  ASSERT_EQ(set.policies.size(), 1u);
  const PolicyConfig& p = set.policies[0];
  EXPECT_EQ(p.name, "hot");
  EXPECT_EQ(p.keys, (std::vector<std::string>{"job_id", "rank"}));
  EXPECT_DOUBLE_EQ(p.bucket_s, 30.0);
  EXPECT_DOUBLE_EQ(p.grace(), 90.0);
  ASSERT_EQ(p.match.size(), 2u);
  EXPECT_EQ(p.match[0].attr, "op");
  EXPECT_EQ(p.match[0].values, (std::vector<std::string>{"read", "write"}));
  EXPECT_EQ(p.match[1].attr, "module");

  const PolicySet again = parse_rollup_policies(to_string(p));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.policies.size(), 1u);
  EXPECT_EQ(to_string(again.policies[0]), to_string(p));
}

TEST(PolicyDsl, DefaultExpandsToTheFigurePolicies) {
  const PolicySet set = parse_rollup_policies("default");
  ASSERT_TRUE(set.ok());
  std::vector<std::string> names;
  for (const PolicyConfig& p : set.policies) names.push_back(p.name);
  EXPECT_EQ(names, (std::vector<std::string>{"op_counts", "node_requests",
                                             "rank_durations", "throughput"}));
  for (const PolicyConfig& p : set.policies) {
    EXPECT_GT(p.bucket_s, 0.0) << p.name;
    EXPECT_TRUE(p.has_key("job_id")) << p.name;
  }
}

TEST(PolicyDsl, MalformedSpecsLandInErrorsNotExceptions) {
  for (const char* bad : {
           "x bucket=60s",                    // no projection
           "x key=zork bucket=60s",           // unknown dimension
           "x key=job_id bucket=0",           // non-positive bucket
           "x key=job_id bucket=banana",      // unparsable duration
           "x key=job_id bucket=60s match=zork:1",  // unknown match dim
           "key=job_id bucket=60s",           // missing name
           // job_id is uint64: a signed value would compile to a clause
           // silently matching job 0.
           "x key=job_id bucket=60s match=job_id:-1",
           "x key=job_id bucket=60s match=rank:4x",  // trailing garbage
       }) {
    const PolicySet set = parse_rollup_policies(bad);
    EXPECT_FALSE(set.ok()) << bad;
    EXPECT_FALSE(set.errors.empty()) << bad;
  }
  // One bad spec does not poison its neighbours.
  const PolicySet mixed =
      parse_rollup_policies("ok key=op bucket=60s; bad key=zork bucket=60s");
  EXPECT_FALSE(mixed.ok());
  ASSERT_EQ(mixed.policies.size(), 1u);
  EXPECT_EQ(mixed.policies[0].name, "ok");
}

TEST(PolicyDsl, ParseSecondsAcceptsUnitSuffixes) {
  double v = 0;
  EXPECT_TRUE(parse_seconds("10", v));
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_TRUE(parse_seconds("500ms", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(parse_seconds("2m", v));
  EXPECT_DOUBLE_EQ(v, 120.0);
  EXPECT_TRUE(parse_seconds("250us", v));
  EXPECT_DOUBLE_EQ(v, 250e-6);
  EXPECT_FALSE(parse_seconds("banana", v));
  EXPECT_FALSE(parse_seconds("", v));
}

// ------------------------------------------------------ sparse histogram --

TEST(SparseLogHist, RecordMatchesLogBucketGeometry) {
  SparseLogHist h;
  const std::uint64_t sample = 123456;
  h.record(sample);
  EXPECT_EQ(h.total(), 1u);
  // A lone sample interpolates to the midpoint of its bucket, at every p.
  const std::uint32_t idx = log_bucket_index(sample);
  const double lo = static_cast<double>(log_bucket_lo(idx));
  const double hi = static_cast<double>(log_bucket_hi(idx));
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), lo + 0.5 * (hi - lo)) << p;
  }
}

TEST(SparseLogHist, PercentileMatchesDenseLogBucketPercentile) {
  // Sparse and dense views of the same samples must agree bit-for-bit at
  // every p — the detectors read SparseLogHist, the obs histograms read
  // the dense walk, and both feed the same z-score math.
  Rng rng(99);
  SparseLogHist sparse;
  std::array<std::uint64_t, kLogBucketCount> dense{};
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_u64() % 10'000'000;
    sparse.record(v);
    dense[log_bucket_index(v)]++;
  }
  for (double p = 0.0; p <= 100.0; p += 1.0) {
    EXPECT_DOUBLE_EQ(sparse.percentile(p),
                     log_bucket_percentile(dense.data(), dense.size(), p))
        << p;
  }
}

TEST(SparseLogHist, MergeEqualsConcatenation) {
  Rng rng(7);
  SparseLogHist a, b, all;
  for (int i = 0; i < 200; ++i) {
    const auto sample = rng.next_u64() % 1000000;
    (i % 2 ? a : b).record(sample);
    all.record(sample);
  }
  a.merge(b);
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.total(), 200u);
}

TEST(SparseLogHist, EncodeDecodeRoundTripsAndRejectsGarbage) {
  SparseLogHist h;
  for (const std::uint64_t s : {1u, 17u, 444u, 444u, 1000000u}) h.record(s);
  SparseLogHist back;
  ASSERT_TRUE(SparseLogHist::decode(h.encode(), back));
  EXPECT_EQ(back, h);

  SparseLogHist empty;
  EXPECT_EQ(empty.encode(), "");
  ASSERT_TRUE(SparseLogHist::decode("", back));
  EXPECT_EQ(back, empty);

  EXPECT_FALSE(SparseLogHist::decode("1:2 x", back));
  EXPECT_FALSE(SparseLogHist::decode("nope", back));
}

// --------------------------------------------------------------- cell row --

TEST(CellRow, RoundTripsThroughTheDurableSchema) {
  const auto schema = rollup_cell_schema();
  CellKey key;
  key.job = 42;
  key.producer = "nid00043";
  key.rank = 7;
  key.op = "read";
  key.module = "POSIX";
  key.bucket = 26666666;
  CellAgg agg;
  agg.add(4096, 0.25);
  agg.add(-1, 0.5);  // negative seg_len clamps to 0 bytes, like fig9
  const dsos::Object row =
      cell_to_row(schema, "hot", key, 60.0, agg, /*shard=*/3, 1.6e9);

  RollupCell cell;
  std::uint64_t shard = 0;
  double watermark = 0;
  ASSERT_TRUE(row_to_cell(row, cell, shard, watermark));
  EXPECT_EQ(cell.policy, "hot");
  EXPECT_EQ(cell.key, key);
  EXPECT_EQ(cell.bucket_w, 60.0);
  EXPECT_EQ(cell.bucket_start, static_cast<double>(key.bucket) * 60.0);
  EXPECT_EQ(cell.agg.count, 2u);
  EXPECT_EQ(cell.agg.bytes, 4096u);
  EXPECT_EQ(cell.agg.dur_sum, 0.75);
  EXPECT_EQ(cell.agg.dur_min, 0.25);
  EXPECT_EQ(cell.agg.dur_max, 0.5);
  EXPECT_EQ(cell.agg.dur_hist, agg.dur_hist);
  EXPECT_EQ(shard, 3u);
  EXPECT_EQ(watermark, 1.6e9);
}

// ------------------------------------------------------------- the engine --

PolicySet must_parse(const std::string& text) {
  PolicySet set = parse_rollup_policies(text);
  EXPECT_TRUE(set.ok()) << (set.errors.empty() ? text : set.errors.front());
  return set;
}

TEST(Engine, FoldsCommittedEventsIntoProjectedCells) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(2));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies = must_parse("ops key=job_id,op bucket=60s").policies;
  RollupEngine engine(cfg);
  engine.attach(db);

  db.insert(event(s, 1, 0, "read", 100.0, 0.25, 1000));
  db.insert(event(s, 1, 1, "read", 101.0, 0.5, 200));
  db.insert(event(s, 1, 0, "write", 102.0, 1.0, 4000));
  db.insert(event(s, 2, 0, "read", 190.0, 2.0, -1));
  engine.flush();

  // (job 1, read, bucket 1): two events, projected over rank/producer.
  RollupQuery j1_read;
  j1_read.jobs = {1};
  j1_read.ops = {"read"};
  const std::vector<RollupCell> cells = engine.query("ops", j1_read);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.job, 1u);
  EXPECT_EQ(cells[0].key.op, "read");
  EXPECT_EQ(cells[0].key.producer, "*");  // unkeyed dims collapse
  EXPECT_EQ(cells[0].key.rank, 0);
  EXPECT_EQ(cells[0].key.bucket, 1);
  EXPECT_EQ(cells[0].agg.count, 2u);
  EXPECT_EQ(cells[0].agg.bytes, 1200u);
  EXPECT_EQ(cells[0].agg.dur_sum, 0.75);

  // job 2's negative seg_len clamps to zero bytes.
  RollupQuery j2_q;
  j2_q.jobs = {2};
  const auto j2 = engine.query("ops", j2_q);
  ASSERT_EQ(j2.size(), 1u);
  EXPECT_EQ(j2[0].agg.count, 1u);
  EXPECT_EQ(j2[0].agg.bytes, 0u);

  EXPECT_EQ(engine.stats().events, 4u);
  expect_matches_reference(engine, db,
                           *engine.find_policy("ops"));
}

TEST(Engine, MatchClausesFilterBeforeFolding) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies =
      must_parse("rw key=job_id,op bucket=60s match=op:read|write").policies;
  RollupEngine engine(cfg);
  engine.attach(db);

  db.insert(event(s, 1, 0, "read", 100.0, 0.1, 10));
  db.insert(event(s, 1, 0, "open", 101.0, 0.2, -1));  // filtered out
  engine.flush();

  const auto cells = engine.query("rw", {});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.op, "read");
  expect_matches_reference(engine, db, *engine.find_policy("rw"));
}

TEST(Engine, SealsPastTheWatermarkAndMergesSealedWithOpen) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(2));
  db.register_schema(s);
  RollupEngineConfig cfg;
  // grace=0: a bucket seals as soon as the shard's clock passes its end.
  cfg.policies =
      must_parse("ops key=job_id,op bucket=10s grace=0").policies;
  RollupEngine engine(cfg);
  engine.attach(db);

  // 40 events, 1 s apart, committed every 10: buckets 10..3x seal while
  // later ones stay open.
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    db.insert(event(s, 1, rng.uniform_int(0, 3), i % 2 ? "read" : "write",
                    100.0 + i, 0.01 * (i + 1),
                    rng.uniform_int(0, 1 << 16)));
    if ((i + 1) % 10 == 0) {
      for (std::size_t sh = 0; sh < db.shard_count(); ++sh) {
        db.commit_shard(sh);
      }
    }
  }
  engine.flush();

  const RollupStats st = engine.stats();
  EXPECT_GT(st.spills, 0u);
  EXPECT_GT(st.sealed_rows, 0u);
  EXPECT_GT(st.cells_open, 0u);  // the tail bucket has not sealed
  // Sealed + open contributions merge into the full aggregate.
  expect_matches_reference(engine, db, *engine.find_policy("ops"));

  // seal_all pushes the tail out too; queries are split-independent.
  const std::string before = cell_fingerprint(engine.query("ops", {}));
  engine.seal_all();
  EXPECT_EQ(engine.stats().cells_open, 0u);
  EXPECT_EQ(cell_fingerprint(engine.query("ops", {})), before);
}

TEST(Engine, LateEventsBehindTheSealedFrontierAreDroppedAndCounted) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies = must_parse("ops key=op bucket=10s grace=0").policies;
  RollupEngine engine(cfg);
  engine.attach(db);

  for (int i = 0; i < 30; ++i) {
    db.insert(event(s, 1, 0, "read", 100.0 + i, 0.1, 10));
  }
  db.commit_shard(0);  // seals buckets 10 and 11 (frontier = 129)
  const std::string before = cell_fingerprint(engine.query("ops", {}));
  ASSERT_GT(engine.stats().sealed_rows, 0u);

  db.insert(event(s, 1, 0, "read", 100.5, 9.0, 999));  // behind frontier
  db.commit_shard(0);
  EXPECT_EQ(engine.stats().late_dropped, 1u);
  EXPECT_EQ(cell_fingerprint(engine.query("ops", {})), before);
}

TEST(Engine, ReBucketQueriesMergeIntegerMultiplesOnly) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies = must_parse("ops key=op bucket=10s").policies;
  RollupEngine engine(cfg);
  engine.attach(db);
  for (int i = 0; i < 40; ++i) {
    db.insert(event(s, 1, 0, "read", 100.0 + i, 0.5, 100));
  }
  engine.flush();

  const auto fine = engine.query("ops", {});
  ASSERT_EQ(fine.size(), 4u);  // buckets 10..13
  RollupQuery coarse_q;
  coarse_q.bucket_s = 20.0;
  const auto coarse = engine.query("ops", coarse_q);
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse[0].bucket_w, 20.0);
  EXPECT_EQ(coarse[0].agg.count + coarse[1].agg.count, 40u);
  EXPECT_EQ(coarse[0].agg.count,
            fine[0].agg.count + fine[1].agg.count);

  RollupQuery ragged_q;
  ragged_q.bucket_s = 15.0;
  EXPECT_THROW(engine.query("ops", ragged_q), std::invalid_argument);
  EXPECT_THROW(engine.query("nope", {}), std::invalid_argument);
}

TEST(Engine, AttachIsIdempotentPerClusterAndExclusive) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies = default_rollup_policies();
  RollupEngine engine(cfg);
  engine.attach(db);
  engine.attach(db);  // same cluster: no-op
  dsos::DsosCluster other(cluster_config(1));
  EXPECT_THROW(engine.attach(other), std::logic_error);

  EXPECT_THROW(RollupEngine(RollupEngineConfig{}), std::invalid_argument);
  RollupEngineConfig durable;
  durable.policies = default_rollup_policies();
  durable.store_mode = store::StoreMode::kWal;  // no dir
  EXPECT_THROW(RollupEngine{durable}, std::invalid_argument);
}

TEST(Engine, StatusJsonReportsPoliciesAndTotals) {
  const auto s = test_schema();
  dsos::DsosCluster db(cluster_config(1));
  db.register_schema(s);
  RollupEngineConfig cfg;
  cfg.policies = default_rollup_policies();
  RollupEngine engine(cfg);
  engine.attach(db);
  db.insert(event(s, 1, 0, "read", 100.0, 0.1, 10));
  engine.flush();

  const auto doc = json::parse(engine.status_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_uint("events"), 1u);
  EXPECT_EQ(doc->get_uint("late_dropped"), 0u);
  const auto& policies = doc->find("policies")->as_array();
  ASSERT_EQ(policies.size(), 4u);
  EXPECT_EQ(policies[0].get_string("name"), "op_counts");
  EXPECT_FALSE(policies[0].get_string("spec").empty());
}

// --------------------------------------------------- covering policies ----

TEST(Serve, CoveringPolicyPrefersTheTightestProjection) {
  RollupEngineConfig cfg;
  cfg.policies = default_rollup_policies();
  RollupEngine engine(cfg);

  // fig5 groups by (job_id, op) over ALL ops: only an unfiltered policy
  // with a superset projection covers; op_counts (no extra keys) beats
  // rank_durations (filtered) and node_requests (filtered).
  const PolicyConfig* p = covering_policy(engine, {"job_id", "op"}, {});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "op_counts");

  // fig6 needs ProducerName and only open/close events: node_requests'
  // match=op:open|close is a superset of the panel's ops.
  p = covering_policy(engine, {"job_id", "ProducerName", "op"},
                      {"open", "close"});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "node_requests");

  // Same keys but an op outside the filter: nothing covers.
  EXPECT_EQ(covering_policy(engine, {"job_id", "ProducerName", "op"},
                            {"read"}),
            nullptr);

  // Time-bucketed requests need an integer multiple of the policy width.
  p = covering_policy(engine, {"job_id", "op"}, {"read", "write"}, 20.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "throughput");  // 10 s divides 20 s
  EXPECT_EQ(covering_policy(engine, {"job_id", "op"}, {"read", "write"},
                            15.0),
            nullptr);
}

// ----------------------------------------------- equivalence property -----

/// Randomized streams with duplicate and out-of-order delivery: every
/// rollup cell must equal the raw-scan aggregate of what the cluster
/// actually stored, bit-exactly — the "dashboards never lie" property.
TEST(EquivalenceProperty, RandomStreamsWithDupsAndReorderMatchRawScan) {
  const auto s = test_schema();
  const std::vector<PolicyConfig> policies =
      must_parse("ops key=job_id,op bucket=60s;"
                 "nodes key=job_id,ProducerName,op bucket=60s "
                 "match=op:open|close;"
                 "ranks key=job_id,rank,op bucket=300s match=op:read|write;"
                 "mods key=module bucket=120s")
          .policies;
  const char* ops[] = {"read", "write", "open", "close"};
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    // Generate an in-order stream, then a delivery order with ~10%
    // at-least-once duplicates and local reordering inside a 20 s window
    // — within every policy's grace, so nothing late-drops.
    std::vector<dsos::Object> stream;
    double ts = 1000.0;
    for (int i = 0; i < 800; ++i) {
      ts += rng.uniform(0.0, 2.0);
      stream.push_back(event(
          s, 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 2)),
          rng.uniform_int(0, 7), ops[rng.uniform_int(0, 3)], ts,
          rng.uniform(1e-5, 0.01), rng.uniform_int(-1, 1 << 16),
          "nid0004" + std::to_string(rng.uniform_int(0, 3)),
          rng.uniform() < 0.8 ? "POSIX" : "MPIIO"));
    }
    std::vector<dsos::Object> delivery;
    for (const dsos::Object& e : stream) {
      delivery.push_back(e);
      if (rng.uniform() < 0.1) delivery.push_back(e);  // redelivered dup
    }
    for (std::size_t i = 1; i < delivery.size(); ++i) {
      // Local shuffle: swap with a predecessor no further than ~10
      // events back (~10-20 s of stream time < the 120 s min grace).
      const auto back = static_cast<std::size_t>(rng.uniform_int(0, 10));
      if (back > 0 && back <= i) std::swap(delivery[i], delivery[i - back]);
    }

    dsos::DsosCluster db(cluster_config(4));
    db.register_schema(s);
    RollupEngineConfig cfg;
    cfg.policies = policies;
    RollupEngine engine(cfg);
    engine.attach(db);
    std::size_t since_commit = 0;
    for (dsos::Object& e : delivery) {
      db.insert(std::move(e));
      if (++since_commit >= 64) {
        since_commit = 0;
        for (std::size_t sh = 0; sh < db.shard_count(); ++sh) {
          db.commit_shard(sh);
        }
      }
    }
    engine.flush();

    EXPECT_EQ(engine.stats().late_dropped, 0u) << "seed " << seed;
    for (const PolicyConfig& p : policies) {
      expect_matches_reference(engine, db, p);
    }
  }
}

/// End-to-end: an at-least-once pipeline under a transport fault plan
/// (daemon crash + aggregator partition forcing spool/redelivery) with
/// rollups attached — the cells must equal a raw scan of the decoded
/// database even though delivery was faulty and duplicates arrived.
TEST(EquivalenceProperty, AtLeastOncePipelineRollupsMatchRawScan) {
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::MpiIoTestConfig io;
  io.block_size = 4ull * 1024 * 1024;
  io.iterations = 3;
  io.collective = false;
  io.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(io);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 3;
  spec.ranks_per_node = 4;
  spec.transport.hop_latency = 25 * kMillisecond;
  spec.connector.delivery = relia::DeliveryMode::kAtLeastOnce;
  spec.fault_plan = relia::parse_fault_plan(
      "crash nid00041 at 2500ms for 5s\n"
      "partition voltrino-head -> shirley at 9s for 4s\n");
  spec.decode_to_dsos = true;
  spec.connector.rollup_policies = "default";

  const exp::RunResult r = exp::run_experiment(spec);
  ASSERT_NE(r.rollups, nullptr);
  ASSERT_NE(r.dsos, nullptr);
  EXPECT_GT(r.redelivered, 0u);  // the plan really exercised redelivery
  EXPECT_GT(r.decoded_rows, 0u);
  EXPECT_EQ(r.rollups->stats().late_dropped, 0u);
  for (const PolicyConfig& p : r.rollups->policies()) {
    expect_matches_reference(*r.rollups, *r.dsos, p);
  }
}

// ------------------------------------------------- crash campaigns --------

/// Drives a deterministic stream into a cluster with a durable-spill
/// engine until an armed crash fires, then refills a fresh cluster (the
/// raw side recovers through its own store in production), reattaches a
/// fresh engine on the same directory and checks the recovered rollups
/// answer every policy query byte-identically to an uninterrupted run.
void run_rollup_crash_campaign(const std::string& dir,
                               const std::string& plan_text) {
  const auto s = test_schema();
  const char* ops[] = {"read", "write", "open", "close"};
  const auto make_stream = [&] {
    Rng rng(5);
    std::vector<dsos::Object> stream;
    for (int i = 0; i < 1500; ++i) {
      stream.push_back(event(
          s, 1 + static_cast<std::uint64_t>(i % 2), rng.uniform_int(0, 3),
          ops[rng.uniform_int(0, 3)], 100.0 + 0.5 * i,
          rng.uniform(1e-4, 0.01), rng.uniform_int(0, 4096),
          "nid0004" + std::to_string(rng.uniform_int(0, 1))));
    }
    return stream;
  };
  const std::vector<dsos::Object> stream = make_stream();
  const auto ingest = [&](dsos::DsosCluster& db, RollupEngine& engine) {
    std::size_t n = 0;
    for (const dsos::Object& e : stream) {
      dsos::Object copy = e;
      db.insert(std::move(copy));
      if (++n % 128 == 0) {
        for (std::size_t sh = 0; sh < db.shard_count(); ++sh) {
          db.commit_shard(sh);
        }
      }
    }
    engine.flush();
  };

  // Uninterrupted oracle (memory mode — durability must not change
  // query results).
  std::map<std::string, std::string> want;
  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    RollupEngineConfig cfg;
    cfg.policies = default_rollup_policies();
    // Short buckets so seals/spills actually happen mid-stream.
    for (PolicyConfig& p : cfg.policies) {
      p.bucket_s = std::min(p.bucket_s, 60.0);
      p.grace_s = 0.0;
    }
    RollupEngine engine(cfg);
    engine.attach(db);
    ingest(db, engine);
    for (const PolicyConfig& p : engine.policies()) {
      want[p.name] = cell_fingerprint(engine.query(p.name, {}));
      EXPECT_FALSE(want[p.name].empty()) << p.name;
    }
  }

  const relia::FaultPlan plan = relia::parse_fault_plan(plan_text);
  ASSERT_TRUE(plan.ok()) << plan_text;
  RollupEngineConfig cfg;
  cfg.policies = default_rollup_policies();
  for (PolicyConfig& p : cfg.policies) {
    p.bucket_s = std::min(p.bucket_s, 60.0);
    p.grace_s = 0.0;
  }
  cfg.store_mode = store::StoreMode::kTiered;
  cfg.dir = dir;

  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    RollupEngine engine(cfg);
    engine.attach(db);
    ASSERT_GT(engine.arm_from_plan(plan), 0u) << plan_text;
    bool crashed = false;
    try {
      ingest(db, engine);
      engine.seal_all();
    } catch (const store::StoreCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "plan never fired: " << plan_text;
    ASSERT_TRUE(engine.crashed());
    // The dead instance stays inert.
    const RollupStats at_crash = engine.stats();
    db.insert(stream.front());
    db.commit_shard(db.route(stream.front()));
    EXPECT_EQ(engine.stats().events, at_crash.events);
  }

  // Recovery: the raw cluster refills (its own store's job), a fresh
  // engine reopens the spill directory and replays the unsealed tail.
  dsos::DsosCluster db(cluster_config(2));
  db.register_schema(s);
  for (const dsos::Object& e : stream) {
    dsos::Object copy = e;
    db.insert(std::move(copy));
  }
  RollupEngine engine(cfg);
  const RollupRecovery rec = engine.attach(db);
  EXPECT_EQ(rec.replayed_events, stream.size());
  engine.flush();
  for (const PolicyConfig& p : engine.policies()) {
    EXPECT_EQ(cell_fingerprint(engine.query(p.name, {})), want[p.name])
        << p.name << " after " << plan_text;
  }
}

TEST(CrashCampaign, SealCrashRecoversIdenticalRollups) {
  const TempDir dir("seal");
  run_rollup_crash_campaign(dir.path(), "storecrash rollup_seal after 2\n");
}

TEST(CrashCampaign, SpillCrashRecoversIdenticalRollups) {
  const TempDir dir("spill");
  run_rollup_crash_campaign(dir.path(), "storecrash rollup_spill after 2\n");
}

TEST(CrashCampaign, TornWalCommitRecoversIdenticalRollups) {
  const TempDir dir("wal");
  run_rollup_crash_campaign(dir.path(), "storecrash commit after 2\n");
}

TEST(CrashCampaign, RawWalLossNeverLeavesDurableRollupsAhead) {
  // The ordering half of the bit-identical-recovery invariant: the raw
  // store's WAL group commit runs BEFORE the rollup observer, so a
  // durable rollup spill can never cover raw events lost to a torn raw
  // WAL frame.  Here the RAW store (not the rollup spill store) crashes
  // mid group-commit and loses its last batch; the recovered rollups
  // must still agree bit-exactly with a raw scan of what the raw store
  // actually recovered.
  const TempDir raw_dir("rawloss_raw");
  const TempDir roll_dir("rawloss_roll");
  const auto s = test_schema();
  const char* ops[] = {"read", "write", "open", "close"};
  Rng rng(9);
  std::vector<dsos::Object> stream;
  for (int i = 0; i < 1200; ++i) {
    stream.push_back(event(
        s, 1 + static_cast<std::uint64_t>(i % 2), rng.uniform_int(0, 3),
        ops[rng.uniform_int(0, 3)], 100.0 + 0.5 * i, rng.uniform(1e-4, 0.01),
        rng.uniform_int(0, 4096),
        "nid0004" + std::to_string(rng.uniform_int(0, 1))));
  }

  store::StoreConfig raw_cfg;
  raw_cfg.mode = store::StoreMode::kWal;
  raw_cfg.dir = raw_dir.path();
  // No automatic group commits: every WAL commit is an explicit
  // Container::commit, the barrier the rollup observer hangs off.
  raw_cfg.wal_group_records = 1u << 20;

  RollupEngineConfig cfg;
  cfg.policies = default_rollup_policies();
  // Short buckets, no grace: every commit round seals buckets that
  // include events of the batch being committed — exactly the window
  // where observer-before-sink ordering would spill unflushed raw data.
  for (PolicyConfig& p : cfg.policies) {
    p.bucket_s = std::min(p.bucket_s, 10.0);
    p.grace_s = 0.0;
  }
  cfg.store_mode = store::StoreMode::kTiered;
  cfg.dir = roll_dir.path();

  std::size_t inserted = 0;
  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    store::Store raw(raw_cfg);
    raw.open(db);
    RollupEngine engine(cfg);
    engine.attach(db);
    raw.faults().arm(store::CrashPoint::kWalCommit, 5);
    bool crashed = false;
    try {
      for (const dsos::Object& e : stream) {
        dsos::Object copy = e;
        db.insert(std::move(copy));
        if (++inserted % 128 == 0) {
          for (std::size_t sh = 0; sh < db.shard_count(); ++sh) {
            db.commit_shard(sh);
          }
        }
      }
    } catch (const store::StoreCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "raw WAL crash never fired";
    ASSERT_TRUE(raw.crashed());
    // The raw store died, not the engine — but the skipped observer
    // notification means nothing of the torn batch was spilled.
    EXPECT_FALSE(engine.crashed());
    // Earlier commits really did spill durable rollup rows, so the
    // recovery below proves ordering, not an empty store.
    EXPECT_GT(engine.stats().sealed_rows, 0u);
  }

  // Recovery: fresh raw store (loses the torn batch), fresh engine on
  // the spill directory.
  dsos::DsosCluster db(cluster_config(2));
  db.register_schema(s);
  store::Store raw(raw_cfg);
  const store::RecoveryReport rep = raw.open(db);
  EXPECT_GT(rep.torn_tails, 0u);
  std::uint64_t recovered = 0;
  for (const std::uint64_t h : rep.high_seq) recovered += h;
  // The crash must actually have lost raw events, or this test checks
  // nothing.
  ASSERT_LT(recovered, inserted);
  ASSERT_GT(recovered, 0u);

  RollupEngine engine(cfg);
  const RollupRecovery rec = engine.attach(db);
  EXPECT_GT(rec.sealed_rows, 0u);
  engine.flush();
  // Bit-identical to a raw scan of the RECOVERED raw cluster: no
  // durable rollup row covers an event the raw store lost.
  for (const PolicyConfig& p : engine.policies()) {
    expect_matches_reference(engine, db, p);
  }
}

TEST(CrashCampaign, SealedRollupsSurviveRestartWithoutRawReplay) {
  // Seal everything, restart over an EMPTY raw cluster: every sealed
  // cell must still be served, purely from the spill store.
  const TempDir dir("restart");
  const auto s = test_schema();
  RollupEngineConfig cfg;
  cfg.policies = must_parse("ops key=job_id,op bucket=10s").policies;
  cfg.store_mode = store::StoreMode::kTiered;
  cfg.dir = dir.path();

  std::string want;
  {
    dsos::DsosCluster db(cluster_config(2));
    db.register_schema(s);
    RollupEngine engine(cfg);
    engine.attach(db);
    for (int i = 0; i < 100; ++i) {
      db.insert(event(s, 1, i % 4, i % 2 ? "read" : "write", 100.0 + i,
                      0.01, 64));
    }
    engine.seal_all();
    want = cell_fingerprint(engine.query("ops", {}));
    ASSERT_FALSE(want.empty());
  }

  dsos::DsosCluster empty(cluster_config(2));
  empty.register_schema(s);
  RollupEngine engine(cfg);
  const RollupRecovery rec = engine.attach(empty);
  EXPECT_GT(rec.sealed_rows, 0u);
  EXPECT_EQ(rec.replayed_events, 0u);
  EXPECT_EQ(cell_fingerprint(engine.query("ops", {})), want);
}

}  // namespace
}  // namespace dlc::rollup
