// Unit tests for the discrete-event engine: determinism, ordering, barriers,
// FIFO resources and task composition.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace dlc::sim {
namespace {

Task<void> delayer(Engine& engine, SimDuration d, std::vector<SimTime>& out) {
  co_await engine.delay(d);
  out.push_back(engine.now());
}

TEST(Engine, DelayAdvancesVirtualClock) {
  Engine engine;
  std::vector<SimTime> times;
  engine.spawn(delayer(engine, 5 * kSecond, times));
  engine.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 5 * kSecond);
  EXPECT_EQ(engine.now(), 5 * kSecond);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}

TEST(Engine, EventsDispatchInTimeOrder) {
  Engine engine;
  std::vector<SimTime> times;
  engine.spawn(delayer(engine, 30, times));
  engine.spawn(delayer(engine, 10, times));
  engine.spawn(delayer(engine, 20, times));
  engine.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  auto proc = [](Engine& eng, int id, std::vector<int>& ord) -> Task<void> {
    co_await eng.delay(100);
    ord.push_back(id);
  };
  for (int i = 0; i < 8; ++i) engine.spawn(proc(engine, i, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine engine;
  std::vector<SimTime> times;
  engine.spawn(delayer(engine, 0, times));
  engine.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 0);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine engine;
  std::vector<SimTime> times;
  engine.spawn(delayer(engine, 10 * kSecond, times));
  engine.spawn(delayer(engine, 1 * kSecond, times));
  engine.run(5 * kSecond);
  EXPECT_EQ(times.size(), 1u);
  EXPECT_EQ(engine.unfinished_tasks(), 1u);
  engine.run();
  EXPECT_EQ(times.size(), 2u);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}

Task<int> answer(Engine& engine) {
  co_await engine.delay(7);
  co_return 42;
}

Task<void> ask(Engine& engine, int& out) {
  out = co_await answer(engine);
}

TEST(Task, ValueTasksComposeAcrossDelays) {
  Engine engine;
  int result = 0;
  engine.spawn(ask(engine, result));
  engine.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(engine.now(), 7);
}

Task<void> thrower(Engine& engine) {
  co_await engine.delay(1);
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionsPropagateFromRootTasks) {
  Engine engine;
  engine.spawn(thrower(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

Task<void> nested_thrower_parent(Engine& engine, bool& caught) {
  try {
    co_await thrower(engine);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionsPropagateThroughAwait) {
  Engine engine;
  bool caught = false;
  engine.spawn(nested_thrower_parent(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Event, WakesAllWaiters) {
  Engine engine;
  Event event(engine);
  std::vector<int> woke;
  auto waiter = [](Event& ev, int id, std::vector<int>& out) -> Task<void> {
    co_await ev.wait();
    out.push_back(id);
  };
  auto setter = [](Engine& eng, Event& ev) -> Task<void> {
    co_await eng.delay(100);
    ev.set();
  };
  engine.spawn(waiter(event, 1, woke));
  engine.spawn(waiter(event, 2, woke));
  engine.spawn(setter(engine, event));
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.now(), 100);
  EXPECT_TRUE(event.is_set());
}

TEST(Event, WaitAfterSetIsImmediate) {
  Engine engine;
  Event event(engine);
  event.set();
  std::vector<int> woke;
  auto waiter = [](Event& ev, std::vector<int>& out) -> Task<void> {
    co_await ev.wait();
    out.push_back(1);
  };
  engine.spawn(waiter(event, woke));
  engine.run();
  EXPECT_EQ(woke.size(), 1u);
  EXPECT_EQ(engine.now(), 0);
}

Task<void> barrier_proc(Engine& engine, Barrier& barrier, int id,
                        SimDuration arrive_after,
                        std::vector<std::pair<int, SimTime>>& out) {
  co_await engine.delay(arrive_after);
  co_await barrier.arrive_and_wait();
  out.emplace_back(id, engine.now());
}

TEST(Barrier, AllPartiesLeaveAtLastArrival) {
  Engine engine;
  Barrier barrier(engine, 3);
  std::vector<std::pair<int, SimTime>> out;
  engine.spawn(barrier_proc(engine, barrier, 0, 10, out));
  engine.spawn(barrier_proc(engine, barrier, 1, 50, out));
  engine.spawn(barrier_proc(engine, barrier, 2, 30, out));
  engine.run();
  ASSERT_EQ(out.size(), 3u);
  for (const auto& [id, t] : out) EXPECT_EQ(t, 50) << "rank " << id;
  EXPECT_EQ(barrier.generation(), 1u);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine engine;
  Barrier barrier(engine, 2);
  std::vector<SimTime> times;
  auto proc = [](Engine& eng, Barrier& bar, SimDuration step,
                 std::vector<SimTime>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await eng.delay(step);
      co_await bar.arrive_and_wait();
      out.push_back(eng.now());
    }
  };
  engine.spawn(proc(engine, barrier, 10, times));
  engine.spawn(proc(engine, barrier, 25, times));
  engine.run();
  ASSERT_EQ(times.size(), 6u);
  // Each round completes at the slower process's arrival.
  EXPECT_EQ(times[0], 25);
  EXPECT_EQ(times[1], 25);
  EXPECT_EQ(times[2], 50);
  EXPECT_EQ(times[3], 50);
  EXPECT_EQ(times[4], 75);
  EXPECT_EQ(times[5], 75);
  EXPECT_EQ(barrier.generation(), 3u);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Engine engine;
  Barrier barrier(engine, 1);
  std::vector<std::pair<int, SimTime>> out;
  engine.spawn(barrier_proc(engine, barrier, 0, 5, out));
  engine.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 5);
}

Task<void> resource_user(Engine& engine, Resource& res, SimDuration service,
                         std::vector<SimTime>& done) {
  co_await res.use(service);
  done.push_back(engine.now());
}

TEST(Resource, SingleServerSerialisesRequests) {
  Engine engine;
  Resource res(engine, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    engine.spawn(resource_user(engine, res, 100, done));
  }
  engine.run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(res.completed(), 3u);
  EXPECT_EQ(res.busy_time(), 300);
  EXPECT_EQ(res.wait_time(), 100 + 200);
  EXPECT_EQ(res.in_use(), 0u);
}

TEST(Resource, MultiServerRunsInParallel) {
  Engine engine;
  Resource res(engine, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    engine.spawn(resource_user(engine, res, 100, done));
  }
  engine.run();
  // Two waves of two parallel requests.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200, 200}));
  EXPECT_EQ(res.busy_time(), 400);
}

TEST(Resource, FifoOrderIsPreserved) {
  Engine engine;
  Resource res(engine, 1);
  std::vector<int> order;
  auto user = [](Engine& eng, Resource& r, int id, SimDuration arrive,
                 std::vector<int>& out) -> Task<void> {
    co_await eng.delay(arrive);
    co_await r.use(50);
    out.push_back(id);
  };
  engine.spawn(user(engine, res, 0, 0, order));
  engine.spawn(user(engine, res, 1, 10, order));
  engine.spawn(user(engine, res, 2, 20, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, AcquireReleaseManualPairing) {
  Engine engine;
  Resource res(engine, 1);
  std::vector<SimTime> done;
  auto holder = [](Engine& eng, Resource& r,
                   std::vector<SimTime>& out) -> Task<void> {
    co_await r.acquire();
    co_await eng.delay(500);
    r.release();
    out.push_back(eng.now());
  };
  engine.spawn(holder(engine, res, done));
  engine.spawn(holder(engine, res, done));
  engine.run();
  EXPECT_EQ(done, (std::vector<SimTime>{500, 1000}));
}

Task<void> timed_use_nothing(Engine& engine) { co_await engine.delay(5); }

Task<SimDuration> timed_use(Engine& engine, Resource& res, SimDuration service) {
  const SimTime start = engine.now();
  co_await res.use(service);
  co_return engine.now() - start;
}

Task<void> fork_join_parent(Engine& engine, Resource& res,
                            std::vector<SimDuration>& durations) {
  // Three chunks against a 2-server resource: two run in parallel, one
  // queues.  start()/join() must overlap them, not serialise.
  std::vector<Task<SimDuration>> chunks;
  for (int i = 0; i < 3; ++i) chunks.push_back(timed_use(engine, res, 100));
  for (auto& c : chunks) c.start();
  for (auto& c : chunks) durations.push_back(co_await c.join());
}

TEST(Task, ForkJoinOverlapsChildren) {
  Engine engine;
  Resource res(engine, 2);
  std::vector<SimDuration> durations;
  engine.spawn(fork_join_parent(engine, res, durations));
  engine.run();
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_EQ(durations[0], 100);
  EXPECT_EQ(durations[1], 100);
  EXPECT_EQ(durations[2], 200);  // queued behind the first two
  EXPECT_EQ(engine.now(), 200);  // not 300: children overlapped
}

Task<void> join_after_done(Engine& engine, bool& ok) {
  auto child = timed_use_nothing(engine);
  child.start();
  co_await engine.delay(1000);
  // Child finished long ago; join must be a no-op await.
  co_await child.join();
  ok = true;
}

TEST(Task, JoinAfterCompletionIsImmediate) {
  Engine engine;
  bool ok = false;
  engine.spawn(join_after_done(engine, ok));
  engine.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(engine.now(), 1000);
}

TEST(Engine, DeadlockLeavesUnfinishedTasks) {
  Engine engine;
  Event never(engine);
  auto waiter = [](Event& ev) -> Task<void> { co_await ev.wait(); };
  engine.spawn(waiter(never));
  engine.run();
  EXPECT_EQ(engine.unfinished_tasks(), 1u);
}

TEST(Engine, ManyProcessesStress) {
  Engine engine;
  Resource res(engine, 4);
  std::vector<SimTime> done;
  done.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    engine.spawn(resource_user(engine, res, 10, done));
  }
  engine.run();
  EXPECT_EQ(done.size(), 1000u);
  EXPECT_EQ(engine.now(), 1000 / 4 * 10);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}


Task<void> zero_delay_loop(Engine& engine) {
  while (true) {
    co_await engine.delay(1);  // tiny but nonzero: queue never drains
  }
}

TEST(Engine, DispatchLimitCatchesRunaways) {
  Engine engine;
  engine.set_dispatch_limit(1000);
  engine.spawn(zero_delay_loop(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
  EXPECT_GT(engine.events_dispatched(), 999u);
}

TEST(Engine, DispatchLimitZeroDisablesGuard) {
  Engine engine;
  std::vector<SimTime> times;
  for (int i = 0; i < 100; ++i) engine.spawn(delayer(engine, i, times));
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(times.size(), 100u);
}


Task<int> failing_child(Engine& engine) {
  co_await engine.delay(5);
  throw std::logic_error("child failed");
  co_return 0;  // unreachable
}

Task<void> join_failed_child(Engine& engine, bool& caught) {
  auto child = failing_child(engine);
  child.start();
  co_await engine.delay(100);  // child fails long before the join
  try {
    (void)co_await child.join();
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(Task, JoinPropagatesChildException) {
  Engine engine;
  bool caught = false;
  engine.spawn(join_failed_child(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, ReapedTaskExceptionStillSurfaces) {
  // Spawn enough completed tasks to trigger reaping, one of which threw:
  // run() must still rethrow the parked exception.
  Engine engine;
  engine.spawn(thrower(engine));
  auto noop = [](Engine& eng) -> Task<void> { co_await eng.delay(1); };
  for (int i = 0; i < 2000; ++i) engine.spawn(noop(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

}  // namespace
}  // namespace dlc::sim
