// Tests for the pipeline self-telemetry subsystem (src/obs): log-bucket
// histogram properties, trace-context serialization (JSON member and wire
// codec block), the metrics registry + Prometheus exposition, sampler
// metric-name stability across restarts, the slow-span exemplar ring and
// the full-pipeline end-to-end trace under an at-least-once fault plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/schema_darshan.hpp"
#include "exp/pipeline.hpp"
#include "exp/specs.hpp"
#include "json/parser.hpp"
#include "ldms/daemon.hpp"
#include "ldms/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "relia/fault.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/service.hpp"
#include "wire/codec.hpp"
#include "workloads/mpi_io_test.hpp"

namespace dlc {
namespace {

// ------------------------------------------------- log-bucket geometry ----

TEST(LogBuckets, EveryValueFallsInsideItsBucketBounds) {
  std::vector<std::uint64_t> probes = {0, 1, 2, 3};
  for (int oct = 2; oct < 64; ++oct) {
    const std::uint64_t base = std::uint64_t{1} << oct;
    for (const std::uint64_t v :
         {base - 1, base, base + 1, base + base / 4, base + base / 2,
          2 * base - 1}) {
      probes.push_back(v);
    }
  }
  for (const std::uint64_t v : probes) {
    const std::uint32_t idx = log_bucket_index(v);
    ASSERT_LT(idx, kLogBucketCount) << v;
    EXPECT_LE(log_bucket_lo(idx), v) << "v=" << v << " idx=" << idx;
    EXPECT_GE(log_bucket_hi(idx), v) << "v=" << v << " idx=" << idx;
  }
}

TEST(LogBuckets, IndexIsMonotoneAndBoundsNonDecreasing) {
  // Bucket index never decreases as the sample grows ...
  std::uint32_t prev_idx = log_bucket_index(0);
  for (std::uint64_t v = 1; v < (1u << 16); ++v) {
    const std::uint32_t idx = log_bucket_index(v);
    EXPECT_GE(idx, prev_idx) << v;
    prev_idx = idx;
  }
  // ... and bucket bounds never decrease as the index grows (octaves 0/1
  // contain unreachable sub-buckets whose bounds repeat, but never go
  // backwards — the cumulative walk in log_bucket_percentile relies on
  // this ordering).
  for (std::uint32_t idx = 1; idx < kLogBucketCount; ++idx) {
    EXPECT_LE(log_bucket_lo(idx), log_bucket_hi(idx)) << idx;
    EXPECT_GE(log_bucket_lo(idx), log_bucket_lo(idx - 1)) << idx;
    EXPECT_GE(log_bucket_hi(idx), log_bucket_hi(idx - 1)) << idx;
  }
}

TEST(LogBuckets, RelativeWidthBoundedByQuarter) {
  // One bucket width <= 25% of the value for octave >= 2: the quantile
  // error bound quoted in DESIGN.md "Self-telemetry".
  for (std::uint32_t idx = 1 + 2 * kLogBucketsPerOctave;
       idx < kLogBucketCount; ++idx) {
    const double lo = static_cast<double>(log_bucket_lo(idx));
    const double hi = static_cast<double>(log_bucket_hi(idx));
    EXPECT_LE(hi - lo, lo * 0.25 + 1.0) << idx;
  }
}

// ------------------------------------------------------ LogHistogram ------

TEST(LogHistogram, ShardMergeMatchesSingleThreadedRecording) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> samples(20'000);
  for (auto& s : samples) {
    // Log-uniform over ~9 decades, like latency data.
    const double mag = std::uniform_real_distribution<double>(0.0, 30.0)(rng);
    s = static_cast<std::uint64_t>(std::exp2(mag));
  }

  obs::LogHistogram single;
  for (const std::uint64_t s : samples) single.record(s);

  // Same multiset recorded from four threads: each writer stripes onto a
  // thread-local shard, so the merged snapshot exercises merge-on-scrape.
  obs::LogHistogram striped;
  std::vector<std::thread> threads;
  const std::size_t quarter = samples.size() / 4;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t begin = static_cast<std::size_t>(t) * quarter;
      const std::size_t end = t == 3 ? samples.size() : begin + quarter;
      for (std::size_t i = begin; i < end; ++i) striped.record(samples[i]);
    });
  }
  for (auto& th : threads) th.join();

  const auto a = single.snapshot();
  const auto b = striped.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_DOUBLE_EQ(a.percentile(50.0), b.percentile(50.0));
  EXPECT_DOUBLE_EQ(a.percentile(99.0), b.percentile(99.0));
}

TEST(LogHistogram, PercentileWithinOneBucketOfExact) {
  std::mt19937_64 rng(11);
  obs::LogHistogram hist;
  std::vector<std::uint64_t> samples(5'000);
  for (auto& s : samples) {
    const double mag = std::uniform_real_distribution<double>(0.0, 24.0)(rng);
    s = static_cast<std::uint64_t>(std::exp2(mag));
    hist.record(s);
  }
  std::sort(samples.begin(), samples.end());
  const auto snap = hist.snapshot();
  for (const double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    // Exact order statistic at the same rank convention the bucket walk
    // uses (1-based, ceil).
    const auto rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    const std::uint64_t exact = samples[rank - 1];
    const double est = snap.percentile(p);
    // The estimate interpolates within the bucket containing the exact
    // order statistic, so it stays inside that bucket's [lo, hi] bounds.
    EXPECT_GE(est, static_cast<double>(log_bucket_lo(log_bucket_index(exact))))
        << "p=" << p;
    EXPECT_LE(est, static_cast<double>(log_bucket_hi(log_bucket_index(exact))))
        << "p=" << p;
  }
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.max, samples.back());
}

TEST(LogHistogram, StatsPercentileShimStillExact) {
  // Satellite check: util::percentile kept its exact linear-interpolation
  // semantics after becoming a shim over SortedQuantiles.
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  SortedQuantiles q(v);
  for (const double p : {0.0, 12.5, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(q.percentile(p), percentile(v, p)) << p;
  }
}

// ------------------------------------------------------- TraceContext -----

obs::TraceContext full_trace(std::uint64_t id, std::int64_t base) {
  obs::TraceContext t;
  t.id = id;
  for (std::size_t h = 0; h < obs::kHopCount; ++h) {
    t.stamp(static_cast<obs::Hop>(h), base + static_cast<std::int64_t>(h) * 10);
  }
  return t;
}

TEST(Trace, CompletenessMonotonicityAndE2e) {
  obs::TraceContext t = full_trace(42, 1'000);
  EXPECT_TRUE(t.sampled());
  EXPECT_TRUE(t.complete());
  EXPECT_TRUE(t.monotonic());
  EXPECT_EQ(t.e2e_ns(), 70);

  obs::TraceContext partial;
  partial.id = 1;
  partial.stamp(obs::Hop::kIntercepted, 100);
  EXPECT_FALSE(partial.complete());
  EXPECT_TRUE(partial.monotonic());  // unset hops are skipped
  EXPECT_EQ(partial.e2e_ns(), 0);

  obs::TraceContext backwards = full_trace(2, 1'000);
  backwards.stamp(obs::Hop::kDecoded, 0);
  EXPECT_FALSE(backwards.monotonic());
}

TEST(Trace, JsonMemberRoundTrip) {
  obs::TraceContext t;
  t.id = (std::uint64_t{77} << 32) | 9;
  t.stamp(obs::Hop::kIntercepted, 123'456'789);
  t.stamp(obs::Hop::kPublished, 123'500'000);

  std::string payload = R"({"job_id":77,"rank":3})";
  obs::append_trace_member(&payload, t);
  // Still a valid JSON object with the original members intact.
  const auto doc = json::parse(payload);
  ASSERT_TRUE(doc);
  EXPECT_EQ(doc->get_uint("job_id"), 77u);
  ASSERT_NE(doc->find("trace"), nullptr);

  obs::TraceContext back;
  ASSERT_TRUE(obs::parse_trace_member(payload, &back));
  EXPECT_EQ(back.id, t.id);
  EXPECT_EQ(back.hop(obs::Hop::kIntercepted), 123'456'789);
  EXPECT_EQ(back.hop(obs::Hop::kPublished), 123'500'000);

  obs::TraceContext none;
  EXPECT_FALSE(obs::parse_trace_member(R"({"job_id":77})", &none));
}

// ----------------------------------------------------- wire trace block ---

wire::EncodeContext obs_test_context() {
  wire::EncodeContext ctx;
  ctx.uid = 99066;
  ctx.job_id = 77;
  ctx.exe = "/projects/ldms_darshan/mpi-io-test";
  ctx.epoch_seconds = 1'656'633'600.0;
  return ctx;
}

darshan::IoEvent obs_test_event(SimTime end) {
  darshan::IoEvent e;
  e.module = darshan::Module::kPosix;
  e.op = darshan::Op::kWrite;
  e.rank = 3;
  e.record_id = 42;
  e.offset = 4096;
  e.length = 4096;
  e.cnt = 1;
  e.start = end - 5 * kMicrosecond;
  e.end = end;
  return e;
}

TEST(WireTrace, BlockRoundTripsThroughFrame) {
  wire::FrameEncoder enc(obs_test_context());
  obs::TraceContext t;
  t.id = (std::uint64_t{77} << 32) | 3;
  t.stamp(obs::Hop::kIntercepted, kSecond - 5 * kMicrosecond);
  t.stamp(obs::Hop::kPublished, kSecond);
  enc.add(obs_test_event(kSecond), "nid00052", &t);
  enc.add(obs_test_event(kSecond + kMillisecond), "nid00052", nullptr);

  std::vector<obs::TraceContext> traces;
  const auto objs = wire::decode_frame(core::darshan_data_schema(),
                                       enc.take_frame(), &traces);
  ASSERT_EQ(objs.size(), 2u);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, t.id);
  EXPECT_EQ(traces[0].hop(obs::Hop::kIntercepted),
            kSecond - 5 * kMicrosecond);
  EXPECT_EQ(traces[0].hop(obs::Hop::kPublished), kSecond);
  // The untraced event decodes to an unsampled context.
  EXPECT_FALSE(traces[1].sampled());
}

TEST(WireTrace, TracingOffFramesAreByteIdentical) {
  // The acceptance bar for "tracing costs nothing when off": the 2-arg
  // add, a nullptr trace and an unsampled context all produce the exact
  // bytes of the pre-trace codec.
  const darshan::IoEvent e = obs_test_event(kSecond);
  wire::FrameEncoder plain(obs_test_context());
  plain.add(e, "nid00052");
  const std::string baseline = plain.take_frame();

  wire::FrameEncoder with_null(obs_test_context());
  with_null.add(e, "nid00052", nullptr);
  EXPECT_EQ(with_null.take_frame(), baseline);

  wire::FrameEncoder with_unsampled(obs_test_context());
  const obs::TraceContext unsampled;  // id == 0
  with_unsampled.add(e, "nid00052", &unsampled);
  EXPECT_EQ(with_unsampled.take_frame(), baseline);
}

// ---------------------------------------------------------- registry ------

TEST(Registry, HandlesAreStableAndValuesResolve) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("dlc.test.count");
  obs::Gauge& g = reg.gauge("dlc.test.depth");
  obs::LogHistogram& h = reg.histogram("dlc.test.lat_ns");
  c.add(3);
  g.set_max(7);
  g.set_max(5);  // high-watermark: stays 7
  for (std::uint64_t v : {100u, 200u, 300u, 400u}) h.record(v);

  // get-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("dlc.test.count"), &c);
  EXPECT_EQ(reg.value("dlc.test.count"), 3.0);
  EXPECT_EQ(reg.value("dlc.test.depth"), 7.0);
  EXPECT_EQ(reg.value("dlc.test.lat_ns.count"), 4.0);
  EXPECT_EQ(reg.value("dlc.test.lat_ns.max"), 400.0);
  EXPECT_GE(reg.value("dlc.test.lat_ns.p50").value_or(0.0), 200.0);
  EXPECT_FALSE(reg.value("dlc.test.absent").has_value());

  // flatten() expands histograms and sorts by name.
  const auto rows = reg.flatten();
  ASSERT_FALSE(rows.empty());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
  const auto has_row = [&](const std::string& name) {
    return std::any_of(rows.begin(), rows.end(),
                       [&](const auto& r) { return r.first == name; });
  };
  EXPECT_TRUE(has_row("dlc.test.count"));
  EXPECT_TRUE(has_row("dlc.test.lat_ns.p99"));

  // reset_values zeroes in place; cached references stay valid.
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);
  EXPECT_EQ(reg.value("dlc.test.count"), 1.0);
}

TEST(Registry, PrometheusExpositionParses) {
  obs::Registry reg;
  reg.counter("dlc.bus.published").add(12);
  reg.gauge("dlc.ingest.queue_depth").set(4);
  obs::LogHistogram& h = reg.histogram("dlc.trace.e2e_ns");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 1000);

  const std::string text = reg.prometheus_text();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  // Exposition-format check: every line is either `# TYPE <name> <kind>`
  // or `<name>[{labels}] <value>` with a valid metric name and a value
  // that parses as a double.
  std::size_t samples = 0;
  std::size_t types = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const auto valid_name = [](const std::string& n) {
      if (n.empty() || (!std::isalpha(static_cast<unsigned char>(n[0])) &&
                        n[0] != '_' && n[0] != ':')) {
        return false;
      }
      return std::all_of(n.begin(), n.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == ':';
      });
    };
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      EXPECT_TRUE(valid_name(rest.substr(0, sp))) << line;
      const std::string kind = rest.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "summary")
          << line;
      ++types;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    EXPECT_TRUE(valid_name(name)) << line;
    char* end = nullptr;
    const std::string value = line.substr(sp + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GT(types, 0u);
  EXPECT_GT(samples, 0u);

  // Dots are mangled to underscores; summaries expose quantile labels.
  EXPECT_NE(text.find("dlc_bus_published 12"), std::string::npos);
  EXPECT_NE(text.find("dlc_ingest_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("dlc_trace_e2e_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dlc_trace_e2e_ns_count 100"), std::string::npos);
  EXPECT_EQ(text.find("dlc.bus"), std::string::npos);
}

// --------------------------------------------------- sampler stability ----

TEST(Samplers, MetricNamesStableAcrossRestart) {
  // Satellite (a): the samplers' metric_names() vectors are built from
  // the shared channel lists, so a daemon restart (new sampler instance)
  // cannot change or reorder the set schema, and the registry mirror
  // names are the same channels under the dotted prefix.
  sim::Engine engine;
  ldms::LdmsDaemon d1(&engine, "nid00040");
  ldms::LdmsDaemon d2(&engine, "nid00040");  // the "restart"

  ldms::BusBytesSampler bus_a(d1), bus_b(d2);
  EXPECT_EQ(bus_a.metric_names(), bus_b.metric_names());
  EXPECT_EQ(bus_a.metric_names(), ldms::bus_bytes_channels());
  ASSERT_EQ(ldms::bus_bytes_channels().size(),
            static_cast<std::size_t>(ldms::BusChannel::kCount));

  ldms::TransportHealthSampler th_a(d1), th_b(d2);
  EXPECT_EQ(th_a.metric_names(), th_b.metric_names());
  EXPECT_EQ(th_a.metric_names(), ldms::transport_health_channels());
  ASSERT_EQ(ldms::transport_health_channels().size(),
            static_cast<std::size_t>(ldms::TransportChannel::kCount));

  // Registry mirror names derive from the same entries.
  EXPECT_EQ(ldms::bus_metric_name(ldms::BusChannel::kBytesJson),
            "dlc.bus.bytes_json");
  EXPECT_EQ(
      ldms::transport_metric_name(ldms::TransportChannel::kRedelivered),
      "dlc.transport.redelivered");
  for (std::size_t c = 0; c < ldms::transport_health_channels().size(); ++c) {
    EXPECT_EQ(ldms::transport_metric_name(
                  static_cast<ldms::TransportChannel>(c)),
              "dlc.transport." + ldms::transport_health_channels()[c]);
  }

  // Sampled values stay parallel to the names.
  std::vector<double> out;
  th_a.sample(0, out);
  EXPECT_EQ(out.size(), th_a.metric_names().size());
}

TEST(Samplers, ObsSelfSamplerReadsRegistry) {
  obs::Registry reg;
  reg.counter("dlc.bus.published").add(21);
  reg.counter("dlc.trace.completed").add(5);
  reg.histogram("dlc.trace.e2e_ns").record(4096);

  ldms::ObsSelfSampler a(reg), b(reg);
  EXPECT_EQ(a.metric_names(), b.metric_names());
  ASSERT_FALSE(a.metric_names().empty());

  std::vector<double> out;
  a.sample(0, out);
  ASSERT_EQ(out.size(), a.metric_names().size());
  const auto value_of = [&](const std::string& channel) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (a.metric_names()[i] == channel) return out[i];
    }
    ADD_FAILURE() << "channel missing: " << channel;
    return -1.0;
  };
  EXPECT_EQ(value_of("bus.published"), 21.0);
  EXPECT_EQ(value_of("trace.completed"), 5.0);
  EXPECT_GE(value_of("trace.e2e_ns.max"), 4096.0);
  // Channels the registry has not seen yet sample as 0, not an error.
  EXPECT_EQ(value_of("relia.duplicates"), 0.0);
}

// ------------------------------------------------------ TraceCollector ----

TEST(TraceCollector, WorstRingKeepsSlowestAndSpansJsonParses) {
  obs::Registry reg;
  obs::TraceCollector collector(reg, /*worst_n=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    // e2e grows with i: trace i spans i microseconds.
    obs::TraceContext t = full_trace(i, 0);
    t.stamp(obs::Hop::kCommitted,
            static_cast<std::int64_t>(i) * 1000);
    collector.complete(t);
  }
  obs::TraceContext bad;
  bad.id = 99;
  bad.stamp(obs::Hop::kIntercepted, 5);
  collector.complete(bad);

  EXPECT_EQ(collector.completed(), 10u);
  EXPECT_EQ(collector.incomplete(), 1u);
  EXPECT_EQ(reg.value("dlc.trace.completed"), 10.0);
  EXPECT_EQ(reg.value("dlc.trace.incomplete"), 1.0);
  EXPECT_EQ(reg.value("dlc.trace.e2e_ns.count"), 10.0);

  const auto worst = collector.worst();
  ASSERT_EQ(worst.size(), 4u);
  // Slowest first: ids 10, 9, 8, 7.
  for (std::size_t i = 0; i < worst.size(); ++i) {
    EXPECT_EQ(worst[i].id, 10 - i);
    if (i > 0) {
      EXPECT_LE(worst[i].e2e_ns(), worst[i - 1].e2e_ns());
    }
  }

  const auto doc = json::parse(collector.spans_json());
  ASSERT_TRUE(doc);
  const auto* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->as_array().size(), 4u);
}

// ------------------------------------------------- end-to-end pipeline ----

exp::ExperimentSpec traced_fault_spec() {
  // bench_relia's reference setup: MPI-IO-TEST under a daemon crash plus
  // an aggregator-link partition, at-least-once delivery, slow hops so
  // the fault windows open over undelivered queue contents.
  exp::ExperimentSpec spec = exp::base_spec(simfs::FsKind::kLustre);
  workloads::MpiIoTestConfig cfg;
  cfg.block_size = 4ull * 1024 * 1024;
  cfg.iterations = 3;
  cfg.collective = false;
  cfg.compute_per_iteration = 2 * kSecond;
  spec.workload = workloads::mpi_io_test(cfg);
  spec.exe = workloads::kMpiIoTestExe;
  spec.node_count = 3;
  spec.ranks_per_node = 4;
  spec.transport.hop_latency = 25 * kMillisecond;
  spec.connector.delivery = relia::DeliveryMode::kAtLeastOnce;
  spec.fault_plan = relia::parse_fault_plan(
      "crash nid00041 at 2500ms for 5s\n"
      "partition voltrino-head -> shirley at 9s for 4s\n");
  spec.decode_to_dsos = true;
  spec.connector.trace_sample_n = 1;  // trace every event
  return spec;
}

TEST(TraceE2e, EverySampledEventYieldsCompleteMonotonicSpan) {
  const exp::RunResult r = exp::run_experiment(traced_fault_spec());
  ASSERT_TRUE(r.traces != nullptr);

  // The fault plan really exercised redelivery: duplicates arrived and
  // were deduped, yet every published event committed exactly once and
  // finished its 8-hop span.
  EXPECT_GT(r.redelivered, 0u);
  EXPECT_GT(r.duplicates_dropped, 0u);
  EXPECT_EQ(r.seq_lost, 0u);
  EXPECT_GT(r.decoded_rows, 0u);
  EXPECT_EQ(r.traces_completed, r.decoded_rows);
  EXPECT_EQ(r.traces->incomplete(), 0u);

  const auto worst = r.traces->worst();
  ASSERT_FALSE(worst.empty());
  for (const obs::TraceContext& t : worst) {
    EXPECT_TRUE(t.sampled());
    EXPECT_TRUE(t.complete()) << "id=" << t.id;
    EXPECT_TRUE(t.monotonic()) << "id=" << t.id;
    EXPECT_GT(t.e2e_ns(), 0) << "id=" << t.id;
  }
}

TEST(TraceE2e, ParallelIngestFinishesSpansToo) {
  exp::ExperimentSpec spec = traced_fault_spec();
  spec.connector.ingest_threads = 2;
  const exp::RunResult r = exp::run_experiment(spec);
  ASSERT_TRUE(r.traces != nullptr);
  EXPECT_EQ(r.traces_completed, r.decoded_rows);
  for (const obs::TraceContext& t : r.traces->worst()) {
    EXPECT_TRUE(t.complete()) << "id=" << t.id;
    EXPECT_TRUE(t.monotonic()) << "id=" << t.id;
  }
}

TEST(TraceE2e, BinaryBatchedFormatCarriesTraceBlocks) {
  exp::ExperimentSpec spec = traced_fault_spec();
  spec.connector.wire_format = core::WireFormat::kBinaryBatched;
  spec.connector.batch.max_events = 8;
  const exp::RunResult r = exp::run_experiment(spec);
  ASSERT_TRUE(r.traces != nullptr);
  // A batched frame carries many events but at most one sampled span
  // (the envelope holds a single trace), so completions track frames,
  // not rows.
  EXPECT_GT(r.traces_completed, 0u);
  EXPECT_LE(r.traces_completed, r.decoded_rows);
  for (const obs::TraceContext& t : r.traces->worst()) {
    EXPECT_TRUE(t.complete()) << "id=" << t.id;
    EXPECT_TRUE(t.monotonic()) << "id=" << t.id;
  }
}

TEST(TraceE2e, SamplingOffCompletesNoTraces) {
  exp::ExperimentSpec spec = traced_fault_spec();
  spec.connector.trace_sample_n = 0;
  const exp::RunResult r = exp::run_experiment(spec);
  EXPECT_TRUE(r.traces == nullptr);
  EXPECT_EQ(r.traces_completed, 0u);
  EXPECT_GT(r.decoded_rows, 0u);  // pipeline still works
}

// ------------------------------------------------------- /metrics route ---

std::shared_ptr<dsos::DsosCluster> empty_db() {
  dsos::ClusterConfig cfg;
  cfg.shard_count = 1;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  auto db = std::make_shared<dsos::DsosCluster>(cfg);
  db->register_schema(core::darshan_data_schema());
  return db;
}

TEST(Metrics, ScrapeEndpointServesRegistry) {
  obs::Registry reg;
  reg.counter("dlc.bus.published").add(7);
  reg.counter("dlc.relia.duplicates").add(2);
  reg.gauge("dlc.ingest.queue_depth").set(3);
  reg.histogram("dlc.query.fanout_ns").record(1234);

  websvc::DashboardService service(empty_db());
  service.set_registry(&reg);
  const websvc::Response r = service.handle("/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type.rfind("text/plain", 0), 0u);
  EXPECT_NE(r.body.find("dlc_bus_published 7"), std::string::npos);
  EXPECT_NE(r.body.find("dlc_relia_duplicates 2"), std::string::npos);
  EXPECT_NE(r.body.find("dlc_ingest_queue_depth 3"), std::string::npos);
  EXPECT_NE(r.body.find("dlc_query_fanout_ns_count 1"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE dlc_bus_published counter"),
            std::string::npos);
}

TEST(Metrics, ObsSpansRouteAndSelfDashboardRender) {
  obs::Registry reg;
  obs::TraceCollector collector(reg, 4);
  collector.complete(full_trace(1, 100));

  websvc::DashboardService service(empty_db());
  service.set_registry(&reg);
  service.set_trace_collector(&collector);

  const websvc::Response spans = service.handle("/api/obs/spans");
  EXPECT_EQ(spans.status, 200);
  const auto doc = json::parse(spans.body);
  ASSERT_TRUE(doc);
  ASSERT_NE(doc->find("spans"), nullptr);
  EXPECT_EQ(doc->find("spans")->as_array().size(), 1u);

  // The self-monitoring dashboard renders both panels without error.
  const std::string rendered = websvc::render_dashboard(
      service, websvc::obs_self_dashboard());
  const auto dash = json::parse(rendered);
  ASSERT_TRUE(dash);
  const auto& panels = dash->find("panels")->as_array();
  ASSERT_EQ(panels.size(), 2u);
  for (const json::Value& panel : panels) {
    EXPECT_EQ(panel.find("error"), nullptr) << panel.get_string("title");
    EXPECT_NE(panel.find("data"), nullptr);
  }
}

}  // namespace
}  // namespace dlc
