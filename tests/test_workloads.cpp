// Tests for the application I/O skeletons: event inventories, byte
// volumes, pattern structure (phases, roles), determinism.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <memory>

#include "darshan/runtime.hpp"
#include "sim/engine.hpp"
#include "simfs/lustre.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"
#include "workloads/hacc_io.hpp"
#include "workloads/hmmer.hpp"
#include "workloads/ior.hpp"
#include "workloads/mpi_io_test.hpp"
#include "workloads/sw4.hpp"

namespace dlc::workloads {
namespace {

struct Harness {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{.node_count = 8}};
  std::shared_ptr<simfs::VariabilityProcess> variability;
  std::unique_ptr<simfs::LustreModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;
  std::vector<darshan::IoEvent> events;

  Harness(std::size_t nodes, std::size_t rpn, std::uint64_t seed = 1) {
    simfs::VariabilityConfig vcfg;
    vcfg.epoch_sigma = 0;
    vcfg.ar_sigma = 0;
    variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
    simfs::LustreConfig lcfg;
    lcfg.jitter_sigma = 0;
    fs = std::make_unique<simfs::LustreModel>(engine, lcfg, variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.node_count = nodes;
    jcfg.ranks_per_node = rpn;
    jcfg.seed = seed;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job);
    runtime->set_event_hook([this](const darshan::IoEvent& e) -> SimDuration {
      events.push_back(e);
      return 0;
    });
  }

  void run(const WorkloadFactory& factory) {
    simhpc::launch_job(engine, *job, factory(*runtime));
    engine.run();
    ASSERT_EQ(engine.unfinished_tasks(), 0u);
  }

  std::map<darshan::Op, int> op_counts() const {
    std::map<darshan::Op, int> counts;
    for (const auto& e : events) ++counts[e.op];
    return counts;
  }

  std::uint64_t bytes(darshan::Op op, darshan::Module module) const {
    std::uint64_t total = 0;
    for (const auto& e : events) {
      if (e.op == op && e.module == module) total += e.length;
    }
    return total;
  }
};

TEST(MpiIoTest, EventInventoryMatchesConfig) {
  Harness h(4, 2);
  MpiIoTestConfig cfg;
  cfg.iterations = 5;
  cfg.block_size = 1 << 20;
  cfg.collective = false;
  h.run(mpi_io_test(cfg));
  const auto counts = h.op_counts();
  // 8 ranks x (5 writes + 5 reads) at the MPIIO layer, each mirrored once
  // at POSIX (independent I/O).
  EXPECT_EQ(counts.at(darshan::Op::kWrite), 8 * 5 * 2);
  EXPECT_EQ(counts.at(darshan::Op::kRead), 8 * 5 * 2);
  EXPECT_EQ(counts.at(darshan::Op::kOpen), 8);
  EXPECT_EQ(counts.at(darshan::Op::kClose), 8);
  EXPECT_EQ(counts.at(darshan::Op::kFlush), 8);
  EXPECT_EQ(h.bytes(darshan::Op::kWrite, darshan::Module::kMpiio),
            8ull * 5 * (1 << 20));
}

TEST(MpiIoTest, CollectiveDoublesPosixSubEvents) {
  Harness h(2, 1);
  MpiIoTestConfig cfg;
  cfg.iterations = 3;
  cfg.block_size = 1 << 20;
  cfg.collective = true;
  h.run(mpi_io_test(cfg));
  int posix_writes = 0, mpiio_writes = 0;
  for (const auto& e : h.events) {
    if (e.op != darshan::Op::kWrite) continue;
    (e.module == darshan::Module::kPosix ? posix_writes : mpiio_writes)++;
  }
  EXPECT_EQ(mpiio_writes, 2 * 3);
  EXPECT_EQ(posix_writes, 2 * 3 * 2);  // two-phase
}

TEST(MpiIoTest, RankInterleavedSharedFileLayout) {
  Harness h(2, 1);
  MpiIoTestConfig cfg;
  cfg.iterations = 2;
  cfg.block_size = 1000;
  cfg.collective = false;
  h.run(mpi_io_test(cfg));
  // Rank r writes iteration i at offset i*nranks*B + r*B.
  std::map<std::pair<int, int>, std::uint64_t> offsets;  // (rank, iter)
  for (const auto& e : h.events) {
    if (e.op == darshan::Op::kWrite && e.module == darshan::Module::kMpiio) {
      const int iter = static_cast<int>(e.offset / 2000);
      offsets[{e.rank, iter}] = e.offset;
    }
  }
  EXPECT_EQ(offsets.at({0, 0}), 0u);
  EXPECT_EQ(offsets.at({1, 0}), 1000u);
  EXPECT_EQ(offsets.at({0, 1}), 2000u);
  EXPECT_EQ(offsets.at({1, 1}), 3000u);
}

TEST(MpiIoTest, WritePhasesPrecedeReads) {
  Harness h(2, 1);
  MpiIoTestConfig cfg;
  cfg.iterations = 4;
  h.run(mpi_io_test(cfg));
  SimTime last_write = 0, first_read = INT64_MAX;
  for (const auto& e : h.events) {
    if (e.module != darshan::Module::kMpiio) continue;
    if (e.op == darshan::Op::kWrite) last_write = std::max(last_write, e.end);
    if (e.op == darshan::Op::kRead) first_read = std::min(first_read, e.start);
  }
  EXPECT_GT(first_read, last_write);  // reads strictly at the tail
}

TEST(HaccIo, WritesAllNineVariables) {
  Harness h(2, 2);
  HaccIoConfig cfg;
  cfg.particles_per_rank = 1000;
  cfg.initial_compute = 0;
  h.run(hacc_io(cfg));
  // Per rank per phase: 38 bytes/particle across all variables.
  EXPECT_EQ(h.bytes(darshan::Op::kWrite, darshan::Module::kMpiio),
            4ull * 1000 * kHaccBytesPerParticle);
  EXPECT_EQ(h.bytes(darshan::Op::kRead, darshan::Module::kMpiio),
            4ull * 1000 * kHaccBytesPerParticle);
}

TEST(HaccIo, PosixModeSkipsMpiioLayer) {
  Harness h(2, 1);
  HaccIoConfig cfg;
  cfg.particles_per_rank = 100;
  cfg.mode = HaccIoConfig::Mode::kPosix;
  cfg.initial_compute = 0;
  h.run(hacc_io(cfg));
  for (const auto& e : h.events) {
    EXPECT_EQ(e.module, darshan::Module::kPosix);
  }
}

TEST(HaccIo, SegmentCountVariesAcrossSeeds) {
  auto count_writes = [](std::uint64_t seed) {
    Harness h(2, 2, seed);
    HaccIoConfig cfg;
    cfg.particles_per_rank = 1000;
    cfg.initial_compute = 0;
    cfg.segments_min = 2;
    cfg.segments_max = 4;
    h.run(hacc_io(cfg));
    return h.op_counts().at(darshan::Op::kWrite);
  };
  // The Fig. 5 premise: op counts differ run to run.
  const int a = count_writes(1);
  const int b = count_writes(2);
  const int c = count_writes(3);
  EXPECT_TRUE(a != b || b != c);
}

TEST(HaccIo, RankSlabsAreDisjoint) {
  Harness h(2, 1);
  HaccIoConfig cfg;
  cfg.particles_per_rank = 1000;
  cfg.initial_compute = 0;
  cfg.reopen_probability = 0;
  h.run(hacc_io(cfg));
  const std::uint64_t slab = 1000 * kHaccBytesPerParticle;
  for (const auto& e : h.events) {
    if (e.op != darshan::Op::kWrite) continue;
    const auto rank = static_cast<std::uint64_t>(e.rank);
    EXPECT_GE(e.offset, rank * slab);
    EXPECT_LE(e.offset + e.length, (rank + 1) * slab);
  }
}

TEST(Hmmer, MasterWritesWorkersRead) {
  Harness h(1, 4);
  HmmerConfig cfg;
  cfg.profiles = 90;
  cfg.reads_per_profile = 5;
  cfg.writes_per_profile = 3;
  h.run(hmmer_build(cfg));
  std::map<int, int> writes_by_rank, reads_by_rank;
  for (const auto& e : h.events) {
    if (e.op == darshan::Op::kWrite) ++writes_by_rank[e.rank];
    if (e.op == darshan::Op::kRead) ++reads_by_rank[e.rank];
  }
  EXPECT_EQ(writes_by_rank.size(), 1u);
  EXPECT_EQ(writes_by_rank.at(0), 90 * 3);
  EXPECT_EQ(reads_by_rank.count(0), 0u);  // master does not parse
  int total_reads = 0;
  for (const auto& [rank, n] : reads_by_rank) total_reads += n;
  EXPECT_EQ(total_reads, 90 * 5);
}

TEST(Hmmer, ExpectedEventCountMatches) {
  Harness h(1, 4);
  HmmerConfig cfg;
  cfg.profiles = 60;
  cfg.reads_per_profile = 4;
  cfg.writes_per_profile = 2;
  h.run(hmmer_build(cfg));
  EXPECT_EQ(h.events.size(), hmmer_expected_events(cfg, 4));
}

TEST(Hmmer, SingleRankDoesBothRoles) {
  Harness h(1, 1);
  HmmerConfig cfg;
  cfg.profiles = 10;
  cfg.reads_per_profile = 3;
  cfg.writes_per_profile = 2;
  h.run(hmmer_build(cfg));
  const auto counts = h.op_counts();
  EXPECT_EQ(counts.at(darshan::Op::kRead), 30);
  EXPECT_EQ(counts.at(darshan::Op::kWrite), 20);
}

TEST(Hmmer, UsesStdioModule) {
  Harness h(1, 2);
  HmmerConfig cfg;
  cfg.profiles = 10;
  h.run(hmmer_build(cfg));
  for (const auto& e : h.events) {
    EXPECT_EQ(e.module, darshan::Module::kStdio);
  }
}

TEST(Sw4, CheckpointCadenceAndHdf5Metadata) {
  Harness h(2, 2);
  Sw4Config cfg;
  cfg.timesteps = 20;
  cfg.checkpoint_every = 10;
  cfg.image_every = 0;
  cfg.fields = 3;
  cfg.grid_points_per_rank = 1000;
  cfg.compute_per_step = kMillisecond;
  h.run(sw4(cfg));
  int h5_writes = 0;
  for (const auto& e : h.events) {
    if (e.module == darshan::Module::kH5D && e.op == darshan::Op::kWrite) {
      ++h5_writes;
      EXPECT_EQ(e.h5.ndims, 3);
      EXPECT_EQ(e.h5.npoints, 1000);
      EXPECT_FALSE(e.h5.data_set.empty());
    }
  }
  // 2 checkpoints x 4 ranks x 3 fields.
  EXPECT_EQ(h5_writes, 2 * 4 * 3);
}

TEST(Sw4, ImageSlicesOnlyOnRankZero) {
  Harness h(2, 2);
  Sw4Config cfg;
  cfg.timesteps = 20;
  cfg.checkpoint_every = 0;
  cfg.image_every = 10;
  cfg.compute_per_step = kMillisecond;
  h.run(sw4(cfg));
  int posix_writes = 0;
  for (const auto& e : h.events) {
    if (e.module == darshan::Module::kPosix &&
        e.op == darshan::Op::kWrite) {
      EXPECT_EQ(e.rank, 0);
      ++posix_writes;
    }
  }
  EXPECT_EQ(posix_writes, 2);
}


TEST(Ior, SharedFileEventInventory) {
  Harness h(2, 2);
  IorConfig cfg;
  cfg.transfer_size = 1 << 20;
  cfg.block_size = 4u << 20;
  cfg.segments = 2;
  h.run(ior(cfg));
  EXPECT_EQ(h.events.size(), ior_expected_events(cfg, 4));
  const auto counts = h.op_counts();
  EXPECT_EQ(counts.at(darshan::Op::kWrite), 4 * 2 * 4);  // ranks*segs*xfers
  EXPECT_EQ(counts.at(darshan::Op::kRead), 4 * 2 * 4);
  EXPECT_EQ(counts.at(darshan::Op::kFlush), 4);
}

TEST(Ior, SegmentLayoutInterleavesRanks) {
  Harness h(2, 1);
  IorConfig cfg;
  cfg.transfer_size = 1000;
  cfg.block_size = 1000;
  cfg.segments = 2;
  cfg.do_read = false;
  h.run(ior(cfg));
  // Segment s, rank r at offset (s*nranks + r) * block.
  std::set<std::uint64_t> offsets;
  for (const auto& e : h.events) {
    if (e.op == darshan::Op::kWrite) offsets.insert(e.offset);
  }
  EXPECT_EQ(offsets, (std::set<std::uint64_t>{0, 1000, 2000, 3000}));
}

TEST(Ior, FilePerProcessCreatesDistinctRecords) {
  Harness h(2, 2);
  IorConfig cfg;
  cfg.file_per_process = true;
  cfg.do_read = false;
  h.run(ior(cfg));
  std::set<std::uint64_t> record_ids;
  for (const auto& e : h.events) record_ids.insert(e.record_id);
  EXPECT_EQ(record_ids.size(), 4u);  // one file per rank
}

TEST(Ior, ReorderShiftReadsOtherRanksData) {
  Harness h(2, 1);
  IorConfig cfg;
  cfg.transfer_size = 1 << 20;
  cfg.block_size = 1 << 20;
  cfg.reorder_shift = 1;
  h.run(ior(cfg));
  // Rank 0 reads rank 1's block and vice versa.
  for (const auto& e : h.events) {
    if (e.op != darshan::Op::kRead) continue;
    const std::uint64_t expected_offset =
        ((static_cast<std::uint64_t>(e.rank) + 1) % 2) * (1 << 20);
    EXPECT_EQ(e.offset, expected_offset) << "rank " << e.rank;
  }
}

TEST(Ior, MpiioModeEmitsBothLayers) {
  Harness h(2, 1);
  IorConfig cfg;
  cfg.use_mpiio = true;
  cfg.collective = true;
  cfg.do_read = false;
  h.run(ior(cfg));
  int mpiio = 0, posix = 0;
  for (const auto& e : h.events) {
    if (e.op != darshan::Op::kWrite) continue;
    (e.module == darshan::Module::kMpiio ? mpiio : posix)++;
  }
  EXPECT_GT(mpiio, 0);
  EXPECT_EQ(posix, 2 * mpiio);  // collective two-phase
}

TEST(Ior, InvalidGeometryThrows) {
  Harness h(1, 1);
  IorConfig cfg;
  cfg.transfer_size = 3000;
  cfg.block_size = 4000;  // not a multiple
  simhpc::launch_job(h.engine, *h.job, ior(cfg)(*h.runtime));
  EXPECT_THROW(h.engine.run(), std::invalid_argument);
}

TEST(Workloads, DeterministicAcrossRuns) {
  auto run_once = []() {
    Harness h(2, 2, 99);
    MpiIoTestConfig cfg;
    cfg.iterations = 3;
    h.run(mpi_io_test(cfg));
    std::vector<std::pair<SimTime, std::uint64_t>> sig;
    for (const auto& e : h.events) sig.emplace_back(e.end, e.offset);
    return sig;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dlc::workloads
