// Tests for the binary wire codec and stream batcher (src/wire).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "core/schema_darshan.hpp"
#include "dsos/cluster.hpp"
#include "ldms/daemon.hpp"
#include "sim/engine.hpp"
#include "wire/batcher.hpp"
#include "wire/codec.hpp"
#include "wire/varint.hpp"

namespace dlc {
namespace {

// ------------------------------------------------------------- varints ----

TEST(Varint, RoundTripEdgeValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::string buf;
    wire::put_varint(buf, v);
    wire::Reader r(buf);
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    std::string buf;
    wire::put_varint(buf, v);
    EXPECT_EQ(buf.size(), 1u);
  }
}

TEST(Varint, ZigzagMapsSentinelsToOneByte) {
  // The -1 sentinels that pepper connector messages must stay tiny.
  for (const std::int64_t v : {0ll, -1ll, 1ll, -64ll, 63ll}) {
    std::string buf;
    wire::put_zigzag(buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    wire::Reader r(buf);
    EXPECT_EQ(r.zigzag(), v);
  }
}

TEST(Varint, ZigzagRoundTripExtremes) {
  const std::int64_t cases[] = {std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max(),
                                -1234567890123ll, 987654321ll};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(wire::zigzag_decode(wire::zigzag_encode(v)), v);
    std::string buf;
    wire::put_zigzag(buf, v);
    wire::Reader r(buf);
    EXPECT_EQ(r.zigzag(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Varint, ReaderFailsOnTruncation) {
  std::string buf;
  wire::put_varint(buf, 300);  // two bytes
  const std::string truncated = buf.substr(0, 1);
  wire::Reader r(truncated);
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Varint, ReaderFailsOnOverlongEncoding) {
  // Eleven continuation bytes cannot be a valid 64-bit varint.
  std::string buf(11, static_cast<char>(0x80));
  wire::Reader r(buf);
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Varint, ReaderStringAndDouble) {
  std::string buf;
  wire::put_string(buf, "hello");
  wire::put_double(buf, 1656633600.25);
  wire::Reader r(buf);
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.raw_double(), 1656633600.25);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(Varint, ReaderFailureIsSticky) {
  wire::Reader r(std::string_view{});
  r.byte();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.string(), "");
  EXPECT_FALSE(r.ok());
}

// --------------------------------------------------------------- codec ----

wire::EncodeContext test_context() {
  wire::EncodeContext ctx;
  ctx.uid = 99066;
  ctx.job_id = 77;
  ctx.exe = "/projects/ldms_darshan/mpi-io-test";
  ctx.epoch_seconds = 1'656'633'600.0;
  return ctx;
}

darshan::IoEvent make_event(darshan::Op op, SimTime end) {
  darshan::IoEvent e;
  e.module = darshan::Module::kPosix;
  e.op = op;
  e.rank = 3;
  e.record_id = 9'184'815'607'937'547'264ull;
  e.max_byte = -1;
  e.switches = 0;
  e.flushes = -1;
  e.cnt = 1;
  e.start = end - 5 * kMicrosecond;
  e.end = end;
  return e;
}

TEST(Codec, OpenEventCarriesMetadata) {
  const std::string path = "/fscratch/testFile";
  wire::FrameEncoder enc(test_context());
  darshan::IoEvent e = make_event(darshan::Op::kOpen, kSecond);
  e.file_path = &path;
  enc.add(e, "nid00052");
  const auto schema = core::darshan_data_schema();
  const auto objs = wire::decode_frame(schema, enc.take_frame());
  ASSERT_EQ(objs.size(), 1u);
  const dsos::Object& o = objs[0];
  EXPECT_EQ(o.as_string("module"), "POSIX");
  EXPECT_EQ(o.as_uint("uid"), 99066u);
  EXPECT_EQ(o.as_string("ProducerName"), "nid00052");
  EXPECT_EQ(o.as_string("file"), path);
  EXPECT_EQ(o.as_string("exe"), "/projects/ldms_darshan/mpi-io-test");
  EXPECT_EQ(o.as_string("type"), "MET");
  EXPECT_EQ(o.as_string("op"), "open");
  EXPECT_EQ(o.as_uint("job_id"), 77u);
  EXPECT_EQ(o.as_int("rank"), 3);
  EXPECT_EQ(o.as_uint("record_id"), 9'184'815'607'937'547'264ull);
  EXPECT_EQ(o.as_int("max_byte"), -1);
  EXPECT_EQ(o.as_int("switches"), 0);
  EXPECT_EQ(o.as_int("flushes"), -1);
  EXPECT_EQ(o.as_int("cnt"), 1);
  // Opens use the -1 off/len sentinels and the N/A HDF5 placeholders.
  EXPECT_EQ(o.as_int("seg_off"), -1);
  EXPECT_EQ(o.as_int("seg_len"), -1);
  EXPECT_EQ(o.as_int("seg_ndims"), -1);
  EXPECT_EQ(o.as_string("seg_data_set"), "N/A");
  EXPECT_DOUBLE_EQ(o.as_double("seg_dur"), 5e-6);
  EXPECT_DOUBLE_EQ(o.as_double("seg_timestamp"), 1'656'633'601.0);
}

TEST(Codec, ModEventsElideMetadata) {
  const std::string path = "/fscratch/testFile";
  wire::FrameEncoder enc(test_context());
  darshan::IoEvent e = make_event(darshan::Op::kWrite, kSecond);
  e.file_path = &path;  // present on the event, but only opens publish it
  e.offset = 16'777'216;
  e.length = 16'777'216;
  enc.add(e, "nid00052");
  const auto objs =
      wire::decode_frame(core::darshan_data_schema(), enc.take_frame());
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].as_string("type"), "MOD");
  EXPECT_EQ(objs[0].as_string("file"), "N/A");
  EXPECT_EQ(objs[0].as_string("exe"), "N/A");
  EXPECT_EQ(objs[0].as_int("seg_off"), 16'777'216);
  EXPECT_EQ(objs[0].as_int("seg_len"), 16'777'216);
}

TEST(Codec, Hdf5FieldsSurviveRoundTrip) {
  wire::FrameEncoder enc(test_context());
  darshan::IoEvent e = make_event(darshan::Op::kRead, kSecond);
  e.module = darshan::Module::kH5D;
  e.offset = 0;
  e.length = 4096;
  e.h5.pt_sel = 2;
  e.h5.irreg_hslab = 0;
  e.h5.reg_hslab = 4;
  e.h5.ndims = 3;
  e.h5.npoints = 1'000'000;
  e.h5.data_set = "/group/dataset0";
  enc.add(e, "nid00001");
  const auto objs =
      wire::decode_frame(core::darshan_data_schema(), enc.take_frame());
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].as_string("module"), "H5D");
  EXPECT_EQ(objs[0].as_int("seg_pt_sel"), 2);
  EXPECT_EQ(objs[0].as_int("seg_irreg_hslab"), 0);
  EXPECT_EQ(objs[0].as_int("seg_reg_hslab"), 4);
  EXPECT_EQ(objs[0].as_int("seg_ndims"), 3);
  EXPECT_EQ(objs[0].as_int("seg_npoints"), 1'000'000);
  EXPECT_EQ(objs[0].as_string("seg_data_set"), "/group/dataset0");
}

TEST(Codec, MultiEventFramePreservesOrderAndTimestamps) {
  wire::FrameEncoder enc(test_context());
  const SimTime ends[] = {kSecond, kSecond + 250 * kMicrosecond,
                          2 * kSecond, 2 * kSecond + 1};
  for (const SimTime end : ends) {
    darshan::IoEvent e = make_event(darshan::Op::kWrite, end);
    e.offset = static_cast<std::uint64_t>(end);
    e.length = 64;
    enc.add(e, "nid00052");
  }
  EXPECT_EQ(enc.event_count(), 4u);
  const auto objs =
      wire::decode_frame(core::darshan_data_schema(), enc.take_frame());
  ASSERT_EQ(objs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(objs[i].as_double("seg_timestamp"),
                     1'656'633'600.0 + to_seconds(ends[i]))
        << i;
    EXPECT_EQ(objs[i].as_int("seg_off"), static_cast<std::int64_t>(ends[i]));
  }
}

TEST(Codec, InterningMakesRepeatedStringsCheap) {
  const std::string path = "/fscratch/some/deeply/nested/path/testFile.dat";
  wire::FrameEncoder enc(test_context());
  darshan::IoEvent e = make_event(darshan::Op::kOpen, kSecond);
  e.file_path = &path;
  enc.add(e, "nid00052");
  const std::size_t first = enc.size_bytes();
  e.end += kMicrosecond;
  e.start = e.end - kMicrosecond;
  enc.add(e, "nid00052");
  const std::size_t second = enc.size_bytes() - first;
  // The second event back-references producer and file by id instead of
  // re-sending the bytes.
  EXPECT_LT(second + path.size(), first);
  const auto objs =
      wire::decode_frame(core::darshan_data_schema(), enc.take_frame());
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[1].as_string("file"), path);
  EXPECT_EQ(objs[1].as_string("ProducerName"), "nid00052");
}

TEST(Codec, TakeFrameResetsEncoderState) {
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kClose, 5 * kSecond), "nid00001");
  const std::string f1 = enc.take_frame();
  EXPECT_TRUE(enc.empty());
  // The next frame must decode independently: fresh intern table, fresh
  // timestamp delta base.
  enc.add(make_event(darshan::Op::kClose, 7 * kSecond), "nid00001");
  const std::string f2 = enc.take_frame();
  const auto schema = core::darshan_data_schema();
  const auto o1 = wire::decode_frame(schema, f1);
  const auto o2 = wire::decode_frame(schema, f2);
  ASSERT_EQ(o1.size(), 1u);
  ASSERT_EQ(o2.size(), 1u);
  EXPECT_DOUBLE_EQ(o1[0].as_double("seg_timestamp"), 1'656'633'605.0);
  EXPECT_DOUBLE_EQ(o2[0].as_double("seg_timestamp"), 1'656'633'607.0);
  EXPECT_EQ(o2[0].as_string("ProducerName"), "nid00001");
}

TEST(Codec, FrameSeqIncrementsPerFrameAndRoundTrips) {
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kWrite, kSecond), "nid1");
  const std::string f1 = enc.take_frame();
  enc.add(make_event(darshan::Op::kWrite, 2 * kSecond), "nid1");
  const std::string f2 = enc.take_frame();
  // frame_seq() reports the *pending* frame's number: two frames taken,
  // so the encoder is already stamping #3.
  EXPECT_EQ(enc.frame_seq(), 3u);
  // The header seq survives the trip and orders the frames...
  EXPECT_EQ(wire::decode_frame_seq(f1), 1u);
  EXPECT_EQ(wire::decode_frame_seq(f2), 2u);
  // ...without disturbing the row payload.
  EXPECT_EQ(wire::decode_frame(core::darshan_data_schema(), f2).size(), 1u);
}

TEST(Codec, DecodeFrameSeqRejectsForeignPayloads) {
  EXPECT_EQ(wire::decode_frame_seq(""), 0u);
  EXPECT_EQ(wire::decode_frame_seq("{\"json\":true}"), 0u);
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kOpen, kSecond), "nid1");
  std::string frame = enc.take_frame();
  frame[1] = 99;  // unknown version
  EXPECT_EQ(wire::decode_frame_seq(frame), 0u);
}

TEST(Codec, NegativeTimestampDeltasDecode) {
  // Events from different ranks are not globally time-ordered; the delta
  // base must handle end times that go backwards.
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kClose, 5 * kSecond), "nid00001");
  enc.add(make_event(darshan::Op::kClose, 2 * kSecond), "nid00002");
  const auto objs =
      wire::decode_frame(core::darshan_data_schema(), enc.take_frame());
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_DOUBLE_EQ(objs[0].as_double("seg_timestamp"), 1'656'633'605.0);
  EXPECT_DOUBLE_EQ(objs[1].as_double("seg_timestamp"), 1'656'633'602.0);
}

TEST(Codec, RejectsForeignAndCorruptPayloads) {
  const auto schema = core::darshan_data_schema();
  EXPECT_TRUE(wire::decode_frame(schema, "").empty());
  EXPECT_TRUE(wire::decode_frame(schema, "{\"uid\": 99066}").empty());
  EXPECT_FALSE(wire::looks_like_frame("{\"uid\": 99066}"));

  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kWrite, kSecond), "nid00001");
  std::string frame = enc.take_frame();
  EXPECT_TRUE(wire::looks_like_frame(frame));

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_TRUE(wire::decode_frame(schema, bad_magic).empty());

  std::string bad_version = frame;
  bad_version[1] = 9;
  EXPECT_TRUE(wire::decode_frame(schema, bad_version).empty());
}

TEST(Codec, RejectsOutOfRangeEnumBytes) {
  // Hand-build a frame whose single event has an invalid module byte.
  const auto ctx = test_context();
  std::string buf;
  buf.push_back(wire::kFrameMagic);
  buf.push_back(static_cast<char>(wire::kFrameVersion));
  wire::put_varint(buf, ctx.uid);
  wire::put_varint(buf, ctx.job_id);
  wire::put_double(buf, ctx.epoch_seconds);
  wire::put_string(buf, ctx.exe);
  const std::size_t header = buf.size();
  buf.push_back(0);   // flags
  buf.push_back(99);  // module: out of range
  buf.push_back(3);   // op: close
  EXPECT_TRUE(
      wire::decode_frame(core::darshan_data_schema(), buf).empty());

  // Same header, but the event references intern id 5 with an empty table.
  buf.resize(header);
  buf.push_back(0);  // flags
  buf.push_back(0);  // module: POSIX
  buf.push_back(3);  // op: close
  wire::put_zigzag(buf, 0);  // rank
  wire::put_varint(buf, 1);  // record_id
  wire::put_varint(buf, 5);  // producer intern id: dangling
  EXPECT_TRUE(
      wire::decode_frame(core::darshan_data_schema(), buf).empty());
}

TEST(Codec, TruncatedFramesNeverYieldExtraRows) {
  wire::FrameEncoder enc(test_context());
  const std::string path = "/fscratch/testFile";
  darshan::IoEvent open = make_event(darshan::Op::kOpen, kSecond);
  open.file_path = &path;
  enc.add(open, "nid00052");
  darshan::IoEvent write = make_event(darshan::Op::kWrite, 2 * kSecond);
  write.offset = 4096;
  write.length = 4096;
  enc.add(write, "nid00052");
  const std::string frame = enc.take_frame();
  const auto schema = core::darshan_data_schema();
  ASSERT_EQ(wire::decode_frame(schema, frame).size(), 2u);
  // Every strict prefix decodes to fewer rows (frames carry no event
  // count, so a prefix ending exactly on an event boundary is simply a
  // shorter valid frame) and must never crash or fabricate rows.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const auto objs = wire::decode_frame(schema, frame.substr(0, n));
    EXPECT_LT(objs.size(), 2u) << "prefix length " << n;
  }
}

// -------------------------------------------------------- frame cursor ----
//
// FrameCursor is the single source of truth for binary decode:
// decode_frame wraps it and the core decoder's binary fast path walks it
// directly (codec.hpp).  These tests pin the cursor's own contract —
// header validation, event-by-event equivalence to decode_frame, the
// whole-frame -1 discard rule, and trace-block delivery.

TEST(FrameCursor, HeaderParsesAndSeqMatchesDecodeFrameSeq) {
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kWrite, kSecond), "nid00001");
  const std::string frame = enc.take_frame();
  wire::FrameCursor cursor(frame);
  EXPECT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.frame_seq(), wire::decode_frame_seq(frame));

  wire::FrameCursor bad_magic("Xnothing");
  EXPECT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.frame_seq(), 0u);
  wire::FrameCursor truncated(frame.substr(0, 3));  // header cut short
  EXPECT_FALSE(truncated.ok());
}

TEST(FrameCursor, YieldsExactlyDecodeFrameRowsInOrder) {
  // A frame exercising every optional block: open with file metadata,
  // plain write, HDF5 read with a dataset name.
  wire::FrameEncoder enc(test_context());
  const std::string path = "/fscratch/testFile";
  darshan::IoEvent open = make_event(darshan::Op::kOpen, kSecond);
  open.file_path = &path;
  enc.add(open, "nid00052");
  darshan::IoEvent write = make_event(darshan::Op::kWrite, 2 * kSecond);
  write.offset = 4096;
  write.length = 65536;
  enc.add(write, "nid00052");
  darshan::IoEvent h5 = make_event(darshan::Op::kRead, 3 * kSecond);
  h5.module = darshan::Module::kH5D;
  h5.h5.ndims = 2;
  h5.h5.npoints = 1024;
  h5.h5.data_set = "/dset/a";
  enc.add(h5, "nid00052");
  const std::string frame = enc.take_frame();
  const auto schema = core::darshan_data_schema();

  const auto objs = wire::decode_frame(schema, frame);
  ASSERT_EQ(objs.size(), 3u);
  wire::FrameCursor cursor(frame);
  ASSERT_TRUE(cursor.ok());
  std::vector<dsos::Value> values;
  for (const dsos::Object& obj : objs) {
    ASSERT_EQ(cursor.next(values, nullptr), 1);
    EXPECT_EQ(values, obj.values);
  }
  EXPECT_EQ(cursor.next(values, nullptr), 0);  // clean end of frame
  EXPECT_EQ(cursor.next(values, nullptr), 0);  // and stays ended
}

TEST(FrameCursor, MalformedBytesReturnMinusOne) {
  // Same corruption decode_frame rejects wholesale: an out-of-range op
  // byte mid-frame.  The first event still yields, then -1 — and the
  // caller contract says discard everything from the frame.
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kWrite, kSecond), "nid00001");
  std::string frame = enc.take_frame();
  const std::size_t event_start = frame.size();
  {
    wire::FrameEncoder two(test_context());
    two.add(make_event(darshan::Op::kWrite, kSecond), "nid00001");
    two.add(make_event(darshan::Op::kRead, 2 * kSecond), "nid00001");
    frame = two.take_frame();
  }
  frame[event_start + 2] = 0x7f;  // second event's op byte: out of range
  ASSERT_TRUE(wire::decode_frame(core::darshan_data_schema(), frame).empty());
  wire::FrameCursor cursor(frame);
  ASSERT_TRUE(cursor.ok());
  std::vector<dsos::Value> values;
  EXPECT_EQ(cursor.next(values, nullptr), 1);   // first event is intact
  EXPECT_EQ(cursor.next(values, nullptr), -1);  // corruption surfaces
}

TEST(FrameCursor, DeliversTraceBlocksPerEvent) {
  obs::TraceContext traced;
  traced.id = 42;
  traced.stamp(obs::Hop::kIntercepted, 100);
  traced.stamp(obs::Hop::kPublished, 250);
  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kWrite, kSecond), "nid00001", &traced);
  enc.add(make_event(darshan::Op::kRead, 2 * kSecond), "nid00001");
  const std::string frame = enc.take_frame();

  wire::FrameCursor cursor(frame);
  ASSERT_TRUE(cursor.ok());
  std::vector<dsos::Value> values;
  obs::TraceContext got;
  ASSERT_EQ(cursor.next(values, &got), 1);
  EXPECT_EQ(got.id, 42u);
  EXPECT_EQ(got.hop(obs::Hop::kIntercepted), 100);
  EXPECT_EQ(got.hop(obs::Hop::kPublished), 250);
  ASSERT_EQ(cursor.next(values, &got), 1);
  EXPECT_EQ(got.id, 0u);  // untraced event resets the out-param
  ASSERT_EQ(cursor.next(values, &got), 0);
}

// ------------------------------------------------------------- batcher ----

struct SinkCapture {
  std::vector<std::string> frames;
  std::vector<std::size_t> counts;
  wire::FrameSink sink() {
    return [this](std::string frame, std::size_t events) {
      frames.push_back(std::move(frame));
      counts.push_back(events);
    };
  }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const std::size_t c : counts) n += c;
    return n;
  }
};

TEST(Batcher, CountTriggeredFlush) {
  SinkCapture cap;
  wire::BatchConfig cfg;
  cfg.max_events = 4;
  cfg.max_delay = 0;
  wire::StreamBatcher b(test_context(), cfg, cap.sink());
  for (int i = 0; i < 10; ++i) {
    const auto out =
        b.add(make_event(darshan::Op::kWrite, (i + 1) * kMillisecond),
              "nid00001", (i + 1) * kMillisecond);
    EXPECT_GT(out.bytes_added, 0u);
  }
  EXPECT_EQ(cap.frames.size(), 2u);  // two full frames of four
  EXPECT_EQ(cap.counts, (std::vector<std::size_t>{4, 4}));
  EXPECT_EQ(b.pending_events(), 2u);
  b.flush();
  EXPECT_EQ(cap.frames.size(), 3u);
  EXPECT_EQ(cap.counts.back(), 2u);
  EXPECT_EQ(b.pending_events(), 0u);
  b.flush();  // idempotent when empty
  EXPECT_EQ(cap.frames.size(), 3u);
  const auto& st = b.stats();
  EXPECT_EQ(st.events_added, 10u);
  EXPECT_EQ(st.flush_count_full, 2u);
  EXPECT_EQ(st.flush_explicit, 1u);
  EXPECT_EQ(cap.total_events(), st.events_added);
}

TEST(Batcher, ByteTriggeredFlush) {
  SinkCapture cap;
  wire::BatchConfig cfg;
  cfg.max_events = 1 << 20;  // never the trigger
  cfg.max_bytes = 128;
  cfg.max_delay = 0;
  wire::StreamBatcher b(test_context(), cfg, cap.sink());
  for (int i = 0; i < 50; ++i) {
    b.add(make_event(darshan::Op::kWrite, (i + 1) * kMillisecond), "nid00001",
          (i + 1) * kMillisecond);
  }
  b.flush();
  EXPECT_GT(b.stats().flush_bytes_full, 0u);
  for (const std::string& f : cap.frames) {
    EXPECT_LE(f.size(), 128u + 64u);  // one event past the limit at most
  }
  EXPECT_EQ(cap.total_events(), 50u);
}

TEST(Batcher, StaleFlushOnNextAdd) {
  SinkCapture cap;
  wire::BatchConfig cfg;
  cfg.max_events = 1 << 20;
  cfg.max_bytes = 1 << 20;
  cfg.max_delay = 100 * kMillisecond;
  wire::StreamBatcher b(test_context(), cfg, cap.sink());
  b.add(make_event(darshan::Op::kWrite, 0), "nid00001", 0);
  // Within the window: still pending.
  b.add(make_event(darshan::Op::kWrite, 50 * kMillisecond), "nid00001",
        50 * kMillisecond);
  EXPECT_TRUE(cap.frames.empty());
  // Past the window: the pending frame flushes before the new event opens
  // a fresh one.
  const auto out = b.add(make_event(darshan::Op::kWrite, kSecond), "nid00001",
                         kSecond);
  EXPECT_EQ(out.frames_emitted, 1u);
  ASSERT_EQ(cap.counts.size(), 1u);
  EXPECT_EQ(cap.counts[0], 2u);
  EXPECT_EQ(b.pending_events(), 1u);
  EXPECT_EQ(b.stats().flush_stale, 1u);
}

TEST(Batcher, EveryFlushedFrameDecodes) {
  SinkCapture cap;
  wire::BatchConfig cfg;
  cfg.max_events = 7;
  wire::StreamBatcher b(test_context(), cfg, cap.sink());
  const std::string path = "/fscratch/batched";
  for (int i = 0; i < 40; ++i) {
    darshan::IoEvent e = make_event(
        i % 10 == 0 ? darshan::Op::kOpen : darshan::Op::kWrite,
        (i + 1) * kMillisecond);
    if (e.op == darshan::Op::kOpen) e.file_path = &path;
    b.add(e, "nid00001", e.end);
  }
  b.flush();
  const auto schema = core::darshan_data_schema();
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < cap.frames.size(); ++i) {
    const auto objs = wire::decode_frame(schema, cap.frames[i]);
    EXPECT_EQ(objs.size(), cap.counts[i]);
    decoded += objs.size();
  }
  EXPECT_EQ(decoded, 40u);
  EXPECT_EQ(b.stats().bytes_flushed, [&] {
    std::size_t n = 0;
    for (const auto& f : cap.frames) n += f.size();
    return n;
  }());
}

// ---------------------------------------------- decoder + daemon paths ----

TEST(WireDecoder, BinaryFramesReachDsos) {
  ldms::LdmsDaemon daemon(nullptr, "shirley");
  dsos::ClusterConfig ccfg;
  ccfg.shard_count = 2;
  ccfg.parallel_query = false;
  dsos::DsosCluster cluster(ccfg);
  core::DarshanDecoder decoder(daemon, "darshanConnector", cluster);

  wire::FrameEncoder enc(test_context());
  for (int i = 0; i < 5; ++i) {
    enc.add(make_event(darshan::Op::kWrite, (i + 1) * kSecond), "nid00001");
  }
  daemon.publish("darshanConnector", ldms::PayloadFormat::kBinary,
                 enc.take_frame());
  EXPECT_EQ(decoder.decoded(), 5u);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
  EXPECT_EQ(decoder.malformed(), 0u);
  EXPECT_EQ(cluster.total_objects(), 5u);

  // A corrupt binary payload counts as malformed, like bad JSON.
  daemon.publish("darshanConnector", ldms::PayloadFormat::kBinary, "Wgarbage");
  EXPECT_EQ(decoder.malformed(), 1u);
  EXPECT_EQ(cluster.total_objects(), 5u);
}

TEST(WireDecoder, MixedJsonAndBinaryTraffic) {
  ldms::LdmsDaemon daemon(nullptr, "shirley");
  dsos::ClusterConfig ccfg;
  ccfg.shard_count = 1;
  ccfg.parallel_query = false;
  dsos::DsosCluster cluster(ccfg);
  core::DarshanDecoder decoder(daemon, "t", cluster);

  wire::FrameEncoder enc(test_context());
  enc.add(make_event(darshan::Op::kClose, kSecond), "nid00001");
  daemon.publish("t", ldms::PayloadFormat::kBinary, enc.take_frame());
  daemon.publish(
      "t", ldms::PayloadFormat::kJson,
      R"({"uid":1,"exe":"N/A","job_id":2,"rank":0,"ProducerName":"n1",)"
      R"("file":"N/A","record_id":3,"module":"POSIX","type":"MOD",)"
      R"("max_byte":-1,"switches":-1,"flushes":-1,"cnt":1,"op":"close",)"
      R"("seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,)"
      R"("reg_hslab":-1,"ndims":-1,"npoints":-1,"off":-1,"len":-1,)"
      R"("dur":0.5,"timestamp":1656633601.0}]})");
  EXPECT_EQ(decoder.decoded(), 2u);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
  EXPECT_EQ(cluster.total_objects(), 2u);
}

TEST(WireTransport, ByteCapacityDropsLargeBacklog) {
  sim::Engine engine;
  ldms::LdmsDaemon src(&engine, "src");
  ldms::LdmsDaemon dst(&engine, "dst");
  ldms::ForwardConfig cfg;
  cfg.queue_capacity = 1 << 20;  // count cap never binds
  cfg.queue_capacity_bytes = 20;
  cfg.hop_latency = kSecond;  // slow drain => backlog
  cfg.bandwidth_bytes_per_sec = 0;
  src.add_forward("t", dst, cfg);
  auto proc = [](ldms::LdmsDaemon& d) -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) {
      d.publish("t", ldms::PayloadFormat::kString, std::string(8, 'x'));
    }
    co_return;
  };
  engine.spawn(proc(src));
  engine.run();
  // 8-byte payloads against a 20-byte cap: two fit, the rest drop.
  EXPECT_EQ(src.forwarded(), 2u);
  EXPECT_EQ(src.dropped(), 4u);
  EXPECT_EQ(src.forwarded_bytes(), 16u);
  EXPECT_LE(src.max_queue_bytes(), 20u);
}

}  // namespace
}  // namespace dlc
