// Model-checker suite: checker self-tests (the litmus outcomes the TSO
// model must and must not produce), exhaustive SpscRing harnesses,
// obs/rollup counter-protocol litmus tests, and the mutation-mode
// non-vacuity gate (every seeded ordering mutant must be detected).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <type_traits>
#include <utility>

#include "util/mc/mc.hpp"
#include "util/mc/policy.hpp"
#include "util/spsc_ring.hpp"

namespace mc = dlc::mc;

using McRing = dlc::SpscRingT<int, mc::McPolicy>;

// ---------------------------------------------------------------------
// Checker self-tests: prove the model produces exactly the allowed weak
// behaviors before trusting it with real protocols.
// ---------------------------------------------------------------------

// Store buffering (Dekker): with relaxed stores, the weak outcome
// r1 == r2 == 0 must be reachable — this is the behavior the SpscRing
// sleep/wake fences exist to forbid.
TEST(McSelf, StoreBufferingWeakOutcomeReachable) {
  std::set<std::pair<int, int>> outcomes;
  const mc::Result res = mc::check([&outcomes](mc::Env& env) {
    mc::atomic<int> x(0);
    mc::atomic<int> y(0);
    x.set_name("x");
    y.set_name("y");
    int r1 = -1;
    int r2 = -1;
    env.thread(
        [&] {
          x.store(1, std::memory_order_relaxed);
          r1 = y.load(std::memory_order_relaxed);
        },
        "t1");
    env.thread(
        [&] {
          y.store(1, std::memory_order_relaxed);
          r2 = x.load(std::memory_order_relaxed);
        },
        "t2");
    env.join_all();
    outcomes.insert({r1, r2});
  });
  ASSERT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(outcomes.count({0, 0}), 1u) << "TSO store buffering missing";
  EXPECT_EQ(outcomes.count({1, 0}), 1u);
  EXPECT_EQ(outcomes.count({0, 1}), 1u);
  EXPECT_EQ(outcomes.count({1, 1}), 1u);
}

// The same litmus with seq_cst fences between store and load: the weak
// outcome must be gone ([atomics.fences]/4, the SpscRing wake proof).
TEST(McSelf, SeqCstFencesForbidStoreBuffering) {
  std::set<std::pair<int, int>> outcomes;
  const mc::Result res = mc::check([&outcomes](mc::Env& env) {
    mc::atomic<int> x(0);
    mc::atomic<int> y(0);
    x.set_name("x");
    y.set_name("y");
    int r1 = -1;
    int r2 = -1;
    env.thread(
        [&] {
          x.store(1, std::memory_order_relaxed);
          mc::fence(std::memory_order_seq_cst, "f1");
          r1 = y.load(std::memory_order_relaxed);
        },
        "t1");
    env.thread(
        [&] {
          y.store(1, std::memory_order_relaxed);
          mc::fence(std::memory_order_seq_cst, "f2");
          r2 = x.load(std::memory_order_relaxed);
        },
        "t2");
    env.join_all();
    outcomes.insert({r1, r2});
  });
  ASSERT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(outcomes.count({0, 0}), 0u)
      << "seq_cst fences must forbid the store-buffering outcome";
  EXPECT_EQ(outcomes.count({1, 1}), 1u);
}

// Message passing, correct version: release store / acquire load carry
// happens-before, so the mc::var read is race-free and sees the data.
TEST(McSelf, MessagePassingAcquireReleaseIsRaceFree) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<int> flag(0);
    flag.set_name("flag");
    mc::var<int> data;
    env.thread(
        [&] {
          data = 42;
          flag.store(1, std::memory_order_release);
        },
        "writer");
    env.thread(
        [&] {
          if (flag.load(std::memory_order_acquire) == 1) {
            const int v = data;
            mc::mc_assert(v == 42, "acquire must see released data");
          }
        },
        "reader");
    env.join_all();
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
}

// Message passing with the release weakened to relaxed: the var access
// must be flagged as a data race (this is the detector that catches
// release->relaxed mutants even when TSO still delivers the value).
TEST(McSelf, MessagePassingRelaxedIsARace) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<int> flag(0);
    flag.set_name("flag");
    mc::var<int> data;
    env.thread(
        [&] {
          data = 42;
          flag.store(1, std::memory_order_relaxed);
        },
        "writer");
    env.thread(
        [&] {
          if (flag.load(std::memory_order_relaxed) == 1) {
            const int v = data;
            (void)v;
          }
        },
        "reader");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDataRace)
      << res.violation.message;
  EXPECT_FALSE(res.violation.trace.empty());
}

// Classic AB-BA lock cycle: the checker must report a deadlock, with
// the schedule that produced it.
TEST(McSelf, LockCycleDeadlockDetected) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::Mutex a("a");
    mc::Mutex b("b");
    env.thread(
        [&] {
          mc::LockGuard la(a);
          mc::LockGuard lb(b);
        },
        "t1");
    env.thread(
        [&] {
          mc::LockGuard lb(b);
          mc::LockGuard la(a);
        },
        "t2");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDeadlock)
      << res.violation.message;
  EXPECT_FALSE(res.violation.trace.empty());
}

// mc::CondVar generates no spurious wakeups, so a missing notify is a
// visible deadlock instead of being rescued by the scheduler.
TEST(McSelf, LostNotifyIsADeadlock) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::Mutex m("m");
    mc::CondVar cv;
    bool ready = false;
    env.thread(
        [&] {
          mc::UniqueLock lock(m);
          cv.wait(lock, [&] { return ready; });
        },
        "waiter");
    env.thread(
        [&] {
          mc::LockGuard lock(m);
          ready = true;
          // BUG under test: no cv.notify_one().
        },
        "setter");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDeadlock)
      << res.violation.message;
}

// Harness assertions surface as violations with a schedule attached.
TEST(McSelf, AssertionFailureCarriesSchedule) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<int> x(0);
    x.set_name("x");
    env.thread([&] { x.store(1, std::memory_order_relaxed); }, "t1");
    env.thread(
        [&] {
          const int v = x.load(std::memory_order_relaxed);
          mc::mc_assert(v == 0, "deliberately schedule-dependent");
        },
        "t2");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kAssert);
  EXPECT_FALSE(res.violation.trace.empty());
}

// The per-execution step budget is a loud violation, never a silent
// truncation of the state space.
TEST(McSelf, StepLimitReportedLoudly) {
  mc::Options opts;
  opts.max_steps = 100;
  opts.max_executions = 4;
  const mc::Result res = mc::check(opts, [](mc::Env& env) {
    mc::atomic<int> x(0);
    x.set_name("x");
    env.thread(
        [&] {
          while (x.load(std::memory_order_relaxed) == 0) {
          }
        },
        "spinner");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kStepLimit);
}

// Bounded-preemption mode still finds a 1-preemption bug.
TEST(McSelf, BoundedPreemptionFindsSimpleRace) {
  mc::Options opts;
  opts.max_preemptions = 2;
  const mc::Result res = mc::check(opts, [](mc::Env& env) {
    mc::atomic<int> flag(0);
    flag.set_name("flag");
    mc::var<int> data;
    env.thread(
        [&] {
          data = 1;
          flag.store(1, std::memory_order_relaxed);
        },
        "writer");
    env.thread(
        [&] {
          if (flag.load(std::memory_order_relaxed) == 1) {
            const int v = data;
            (void)v;
          }
        },
        "reader");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDataRace);
}

// ---------------------------------------------------------------------
// SpscRing harnesses: the production ring instantiated with the mc
// policy, explored exhaustively at small capacities.
// ---------------------------------------------------------------------

namespace {

/// Producer pushes 1..items with push_wait; consumer pops them blocking
/// and asserts FIFO order.  Exercises the Dekker sleep/wake handshake in
/// both directions (producer sleeps on full, consumer sleeps on empty)
/// plus wraparound/slot-reuse whenever items > capacity.
mc::Result check_ring_push_pop(std::size_t capacity, int items,
                               const mc::Options& opts = mc::Options{}) {
  return mc::check(opts, [capacity, items](mc::Env& env) {
    McRing ring(capacity);
    env.thread(
        [&] {
          for (int i = 1; i <= items; ++i) {
            const bool ok = ring.push_wait(i);
            mc::mc_assert(ok, "push_wait on an open ring must succeed");
          }
        },
        "producer");
    env.thread(
        [&] {
          for (int i = 1; i <= items; ++i) {
            const std::optional<int> v = ring.pop();
            mc::mc_assert(v.has_value(), "pop must yield an item");
            mc::mc_assert(v.has_value() && *v == i, "FIFO order violated");
          }
        },
        "consumer");
    env.join_all();
    mc::mc_assert(!ring.try_pop().has_value(), "ring must be drained");
    mc::mc_assert(ring.size() == 0, "size must be 0 after drain");
  });
}

}  // namespace

// Capacity 1 forces every push to wait for the matching pop: maximum
// contention on the Dekker handshake, minimal state space.
TEST(McSpscRing, ExhaustivePushPopCapacity1) {
  const mc::Result res = check_ring_push_pop(1, 2);
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete) << "state space not exhausted; executions="
                            << res.executions;
}

// Capacity 2 with 3 items: index wraparound plus slot reuse, so the
// head_cache_ refresh (acquire on head_) is actually on the hot path.
TEST(McSpscRing, ExhaustiveWraparoundCapacity2) {
  const mc::Result res = check_ring_push_pop(2, 3);
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete) << "state space not exhausted; executions="
                            << res.executions;
}

// close() racing a blocked push_wait: the push must either land before
// the close or fail cleanly, and the backlog stays poppable — no item
// may be lost or duplicated under any schedule.
TEST(McSpscRing, ExhaustiveCloseVsPushWait) {
  const mc::Result res = mc::check([](mc::Env& env) {
    McRing ring(1);
    int pushed = 0;
    env.thread(
        [&] {
          if (ring.push_wait(1)) ++pushed;
          if (ring.push_wait(2)) ++pushed;
        },
        "producer");
    env.thread([&] { ring.close(); }, "closer");
    env.join_all();
    mc::mc_assert(!ring.try_push(9), "push after close must fail");
    int popped = 0;
    while (ring.try_pop().has_value()) ++popped;
    mc::mc_assert(popped == pushed, "close lost or duplicated items");
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete) << "state space not exhausted; executions="
                            << res.executions;
}

// The production alias is exactly the std-policy instantiation: nothing
// about the templatization may change what ships.
TEST(McSpscRing, ProductionAliasIsStdPolicy) {
  static_assert(
      std::is_same_v<dlc::SpscRing<int>,
                     dlc::SpscRingT<int, dlc::util::StdAtomicsPolicy>>);
  dlc::SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(7));
  const auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------
// Litmus harnesses for the other lock-free protocols in the tree.
// ---------------------------------------------------------------------

// obs::Registry Counter: concurrent relaxed fetch_adds merge losslessly
// (registry.hpp Counter::add), and a concurrent reader can only see a
// value some prefix of the increments produced.
TEST(McLitmus, RegistryCounterMerge) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<std::uint64_t> ctr(0);
    ctr.set_name("obs.counter");
    for (int t = 0; t < 3; ++t) {
      env.thread(
          [&] {
            ctr.fetch_add(1, std::memory_order_relaxed);
            ctr.fetch_add(1, std::memory_order_relaxed);
          },
          "adder");
    }
    env.join_all();
    mc::mc_assert(ctr.load(std::memory_order_relaxed) == 6,
                  "relaxed counter increments must merge losslessly");
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
}

// obs::Registry Gauge::set_max: the relaxed CAS max loop converges to
// the true maximum under every interleaving.
TEST(McLitmus, GaugeSetMaxConverges) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<std::int64_t> gauge(0);
    gauge.set_name("obs.gauge");
    auto set_max = [&gauge](std::int64_t v) {
      std::int64_t cur = gauge.load(std::memory_order_relaxed);
      while (cur < v && !gauge.compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {
      }
    };
    env.thread([&] { set_max(5); }, "t1");
    env.thread([&] { set_max(9); }, "t2");
    env.join_all();
    mc::mc_assert(gauge.load(std::memory_order_relaxed) == 9,
                  "set_max must converge to the maximum");
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
}

// rollup::RollupEngine open-cell gauge: per-shard open_count cells are
// relaxed stores summed by a reader without the shard locks
// (engine.cpp on_commit); any sum of {old,new} per shard is legal, and
// nothing else.
TEST(McLitmus, RollupOpenCellGaugeSum) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<std::uint64_t> shard0(0);
    mc::atomic<std::uint64_t> shard1(0);
    shard0.set_name("rollup.open0");
    shard1.set_name("rollup.open1");
    env.thread([&] { shard0.store(2, std::memory_order_relaxed); }, "w0");
    env.thread([&] { shard1.store(3, std::memory_order_relaxed); }, "w1");
    env.thread(
        [&] {
          const std::uint64_t total =
              shard0.load(std::memory_order_relaxed) +
              shard1.load(std::memory_order_relaxed);
          mc::mc_assert(total == 0 || total == 2 || total == 3 || total == 5,
                        "gauge sum outside the per-shard old/new lattice");
        },
        "reader");
    env.join_all();
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
}

// rollup watermark publication: seal contents are published before the
// watermark advances (release), so a reader that observes the new
// watermark (acquire) reads the cells race-free.
TEST(McLitmus, RollupWatermarkPublishesCells) {
  const mc::Result res = mc::check([](mc::Env& env) {
    mc::atomic<std::uint64_t> watermark(0);
    watermark.set_name("rollup.watermark");
    mc::var<int> cells;
    env.thread(
        [&] {
          cells = 7;
          watermark.store(1, std::memory_order_release);
        },
        "committer");
    env.thread(
        [&] {
          if (watermark.load(std::memory_order_acquire) == 1) {
            const int v = cells;
            mc::mc_assert(v == 7, "watermark advanced before its cells");
          }
        },
        "reader");
    env.join_all();
  });
  EXPECT_TRUE(res.ok()) << res.violation.message;
  EXPECT_TRUE(res.complete);
}

// ---------------------------------------------------------------------
// Non-vacuity gate: the checker must DETECT every seeded weakening of
// the SpscRing protocol.  A checker that passes the harnesses above but
// misses these mutants is vacuous and must fail CI.
//
// Not seeded (documented model limitation, DESIGN.md section 10): the
// waiter-side Dekker fences.  Waiter registration is an RMW, which is
// atomic against memory in this TSO model (x86 locked-op semantics), so
// dropping the fence after it does not change any explored behavior.
// ---------------------------------------------------------------------

namespace {

struct MutantCase {
  const char* label;
  mc::Mutation mutation;
};

const MutantCase kSpscMutants[] = {
    {"tail release store -> relaxed",
     {mc::Mutation::kWeakenStore, "spsc.tail"}},
    {"head release store -> relaxed",
     {mc::Mutation::kWeakenStore, "spsc.head"}},
    {"tail acquire load -> relaxed",
     {mc::Mutation::kWeakenLoad, "spsc.tail"}},
    {"head acquire load -> relaxed",
     {mc::Mutation::kWeakenLoad, "spsc.head"}},
    {"dekker wake fence dropped",
     {mc::Mutation::kDropFence, "spsc.fence.wake"}},
};

}  // namespace

TEST(McMutation, AllSeededSpscMutantsDetected) {
  for (const MutantCase& m : kSpscMutants) {
    mc::Options opts;
    opts.mutation = m.mutation;
    const mc::Result res = check_ring_push_pop(1, 2, opts);
    EXPECT_FALSE(res.ok())
        << "mutant NOT detected (checker is vacuous for it): " << m.label;
    if (!res.ok()) {
      EXPECT_NE(res.violation.kind, mc::Violation::kNone) << m.label;
      EXPECT_FALSE(res.violation.trace.empty()) << m.label;
    }
  }
}

// The fence-drop mutant must manifest specifically as the lost-wakeup
// deadlock the Dekker handshake exists to prevent (not as some
// incidental assertion) — pin the failure mode.
TEST(McMutation, WakeFenceDropIsALostWakeup) {
  mc::Options opts;
  opts.mutation = {mc::Mutation::kDropFence, "spsc.fence.wake"};
  const mc::Result res = check_ring_push_pop(1, 2, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDeadlock)
      << res.violation.message;
}

// Release->relaxed on the tail publication must surface as a data race
// on the slot payload (the var detector), not rely on a wrong value
// happening to trip an assert.
TEST(McMutation, TailStoreWeakeningIsASlotRace) {
  mc::Options opts;
  opts.mutation = {mc::Mutation::kWeakenStore, "spsc.tail"};
  const mc::Result res = check_ring_push_pop(1, 2, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDataRace)
      << res.violation.message;
}

// Litmus-level mutant: weakening the rollup watermark release is caught
// by the same race detector (non-vacuity beyond the ring).
TEST(McMutation, WatermarkStoreWeakeningDetected) {
  mc::Options opts;
  opts.mutation = {mc::Mutation::kWeakenStore, "rollup.watermark"};
  const mc::Result res = mc::check(opts, [](mc::Env& env) {
    mc::atomic<std::uint64_t> watermark(0);
    watermark.set_name("rollup.watermark");
    mc::var<int> cells;
    env.thread(
        [&] {
          cells = 7;
          watermark.store(1, std::memory_order_release);
        },
        "committer");
    env.thread(
        [&] {
          if (watermark.load(std::memory_order_acquire) == 1) {
            const int v = cells;
            (void)v;
          }
        },
        "reader");
    env.join_all();
  });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation.kind, mc::Violation::kDataRace)
      << res.violation.message;
}
