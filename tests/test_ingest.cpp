// Tests for the sharded ingest executor: parallel ingest must be
// indistinguishable from serial ingest (same routing, same per-shard
// insertion order, byte-identical query results) across worker counts and
// under queue-full back-pressure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dsos/cluster.hpp"
#include "dsos/csv.hpp"
#include "dsos/ingest.hpp"
#include "dsos/schema.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace dlc::dsos {
namespace {

SchemaPtr test_schema() {
  return SchemaBuilder("events")
      .attr("job_id", AttrType::kUint64)
      .attr("rank", AttrType::kInt64)
      .attr("timestamp", AttrType::kTimestamp)
      .attr("op", AttrType::kString)
      .attr("dur", AttrType::kDouble)
      .index("job_rank_time", {"job_id", "rank", "timestamp"})
      .index("time", {"timestamp"})
      .build();
}

std::vector<Object> random_events(const SchemaPtr& schema, std::size_t n,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Object> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(make_object(
        schema, {1 + rng.next_u64() % 4,
                 static_cast<std::int64_t>(rng.next_u64() % 16),
                 rng.uniform() * 100.0, std::string(i % 2 ? "read" : "write"),
                 rng.uniform()}));
  }
  return out;
}

DsosCluster make_cluster(std::size_t shards, const SchemaPtr& schema) {
  ClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.shard_attr = "rank";
  DsosCluster cluster(cfg);
  cluster.register_schema(schema);
  return cluster;
}

// Full query_auto result, rendered row by row: byte-identical fingerprints
// mean identical contents in identical order.
std::string fingerprint(DsosCluster& cluster) {
  std::string out;
  for (const Object* hit : cluster.query("events", "job_rank_time")) {
    out += csv_row(*hit);
    out += '\n';
  }
  return out;
}

std::string ingest_fingerprint(std::size_t shards, IngestConfig icfg,
                               const SchemaPtr& schema,
                               const std::vector<Object>& events,
                               IngestStats* stats_out = nullptr) {
  DsosCluster cluster = make_cluster(shards, schema);
  {
    IngestExecutor ex(cluster, icfg);
    for (const Object& obj : events) ex.submit(obj);
    ex.drain();
    if (stats_out) *stats_out = ex.stats();
  }
  return fingerprint(cluster);
}

TEST(Ingest, SerialModeInsertsInline) {
  const auto schema = test_schema();
  DsosCluster cluster = make_cluster(4, schema);
  IngestExecutor ex(cluster, IngestConfig{});  // workers = 0
  EXPECT_EQ(ex.workers(), 0u);
  for (Object& obj : random_events(schema, 50, 7)) ex.submit(std::move(obj));
  // No drain needed: serial mode inserts on the submit() call itself.
  EXPECT_EQ(ex.stats().submitted, 50u);
  EXPECT_EQ(ex.stats().inserted, 50u);
  EXPECT_EQ(cluster.query_auto("events", {}).size(), 50u);
}

TEST(Ingest, WorkersClampedToShardCount) {
  const auto schema = test_schema();
  DsosCluster cluster = make_cluster(2, schema);
  IngestConfig icfg;
  icfg.workers = 8;
  IngestExecutor ex(cluster, icfg);
  EXPECT_EQ(ex.workers(), 2u);
}

// The determinism contract: any worker count produces the same bytes as
// serial ingest, because routing happens on the submitting thread and each
// shard has exactly one inserting worker.
TEST(Ingest, ParallelMatchesSerialAcrossWorkerCounts) {
  const auto schema = test_schema();
  const std::vector<Object> events = random_events(schema, 400, 23);

  std::string serial;
  {
    DsosCluster cluster = make_cluster(8, schema);
    for (const Object& obj : events) cluster.insert(obj);
    serial = fingerprint(cluster);
  }
  ASSERT_FALSE(serial.empty());

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    IngestConfig icfg;
    icfg.workers = workers;
    IngestStats stats;
    EXPECT_EQ(ingest_fingerprint(8, icfg, schema, events, &stats), serial)
        << "workers=" << workers;
    EXPECT_EQ(stats.submitted, events.size());
    EXPECT_EQ(stats.inserted, events.size());
  }
}

// Tiny queues force push_wait back-pressure on the submitting thread;
// results must still be byte-identical (blocked, not dropped).
TEST(Ingest, BackpressureKeepsResultsIdentical) {
  const auto schema = test_schema();
  const std::vector<Object> events = random_events(schema, 300, 41);

  std::string serial;
  {
    DsosCluster cluster = make_cluster(2, schema);
    for (const Object& obj : events) cluster.insert(obj);
    serial = fingerprint(cluster);
  }

  IngestConfig icfg;
  icfg.workers = 2;
  icfg.queue_capacity = 1;
  icfg.batch = 1;
  // Hold the workers at their first dequeued batch until the releaser
  // fires: with capacity-1 queues the submitting thread is then
  // guaranteed to block in push_wait, so the back-pressure duration
  // counters must come back nonzero (not just "may, depending on
  // scheduling").
  std::atomic<bool> release{false};
  icfg.commit_hook = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true, std::memory_order_release);
  });
  IngestStats stats;
  EXPECT_EQ(ingest_fingerprint(2, icfg, schema, events, &stats), serial);
  releaser.join();
  // batch=1 => one enqueued batch per event.
  EXPECT_EQ(stats.batches, events.size());
  EXPECT_EQ(stats.inserted, events.size());
  EXPECT_GT(stats.backpressure_waits, 0u);
  EXPECT_GT(stats.backpressure_wait_ns, 0u);
}

// Events without the shard attribute fall back to round-robin routing,
// which mutates cluster state — exactly why routing stays on the caller
// thread.  Parallel ingest must agree with serial here too.
TEST(Ingest, RoundRobinRoutingStaysDeterministic) {
  const auto schema = SchemaBuilder("plain")
                          .attr("seq", AttrType::kUint64)
                          .attr("note", AttrType::kString)
                          .index("seq", {"seq"})
                          .build();
  ClusterConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_attr = "rank";  // absent from the schema
  auto build = [&](std::size_t workers) {
    DsosCluster cluster(cfg);
    cluster.register_schema(schema);
    std::vector<std::size_t> per_shard;
    {
      IngestConfig icfg;
      icfg.workers = workers;
      IngestExecutor ex(cluster, icfg);
      for (std::uint64_t i = 0; i < 100; ++i) {
        ex.submit(make_object(schema, {i, std::string("n")}));
      }
      ex.drain();
    }
    for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
      per_shard.push_back(
          cluster.shard(s).container().select("plain", "seq").size());
    }
    return per_shard;
  };
  const auto serial = build(0);
  EXPECT_EQ(serial, build(4));
  // Round-robin spreads 100 events evenly over 4 shards.
  EXPECT_EQ(serial, (std::vector<std::size_t>{25, 25, 25, 25}));
}

TEST(Ingest, DrainThenReuse) {
  const auto schema = test_schema();
  DsosCluster cluster = make_cluster(4, schema);
  IngestConfig icfg;
  icfg.workers = 4;
  IngestExecutor ex(cluster, icfg);
  for (Object& obj : random_events(schema, 64, 3)) ex.submit(std::move(obj));
  ex.drain();
  EXPECT_EQ(cluster.query_auto("events", {}).size(), 64u);
  for (Object& obj : random_events(schema, 32, 5)) ex.submit(std::move(obj));
  ex.drain();
  EXPECT_EQ(cluster.query_auto("events", {}).size(), 96u);
  EXPECT_EQ(ex.stats().submitted, 96u);
  EXPECT_EQ(ex.stats().inserted, 96u);
}

// Regression for a race the thread-safety annotation pass surfaced: the
// submitted/batches/backpressure counters were plain fields written by
// submit() and read by stats() with no synchronisation.  A monitoring
// thread polling stats() during ingest was a data race (now atomics).
// Run under TSan this test fails on the old code.
TEST(Ingest, StatsReadableWhileIngesting) {
  const auto schema = test_schema();
  DsosCluster cluster = make_cluster(4, schema);
  IngestConfig icfg;
  icfg.workers = 4;
  icfg.batch = 4;
  IngestExecutor ex(cluster, icfg);

  std::atomic<bool> done{false};
  std::uint64_t last_submitted = 0;
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const IngestStats s = ex.stats();
      // Monotone non-decreasing and never past what drain() will settle
      // on; inserted can trail submitted but never exceed it.
      EXPECT_GE(s.submitted, last_submitted);
      EXPECT_LE(s.inserted, s.submitted);
      last_submitted = s.submitted;
      std::this_thread::yield();
    }
  });
  for (Object& obj : random_events(schema, 2000, 41)) {
    ex.submit(std::move(obj));
  }
  ex.drain();
  done.store(true, std::memory_order_release);
  monitor.join();
  const IngestStats s = ex.stats();
  EXPECT_EQ(s.submitted, 2000u);
  EXPECT_EQ(s.inserted, 2000u);
}

// -------------------------------------------------------- writer pinning ----

TEST(Ingest, UnpinnedWorkersReportNoPlacement) {
  const auto schema = test_schema();
  DsosCluster cluster = make_cluster(2, schema);
  IngestConfig icfg;
  icfg.workers = 2;  // pin_cpus empty: DARSHAN_LDMS_PIN=none
  IngestExecutor ex(cluster, icfg);
  for (Object& obj : random_events(schema, 100, 5)) ex.submit(std::move(obj));
  ex.drain();
  const auto placements = ex.writer_placements();
  ASSERT_EQ(placements.size(), 2u);
  for (const auto& p : placements) {
    EXPECT_EQ(p.pinned_cpu, -1);  // never asked to pin
    EXPECT_GE(p.last_cpu, 0);     // but the OS placement is still visible
  }
}

TEST(Ingest, PinnedWorkersReportPlacementAndStayIdentical) {
  // DARSHAN_LDMS_PIN=auto resolution: workers pin round-robin over the
  // allowed-CPU list (util::resolve_pin_cpus), report the pin back via
  // writer_placements(), and — pinning being pure placement — produce
  // byte-identical results to the unpinned serial ingest.
  const auto schema = test_schema();
  const auto events = random_events(schema, 500, 7);
  util::PinPolicy policy;
  ASSERT_TRUE(util::parse_pin_policy("auto", policy));
  const std::vector<int> cpus = util::resolve_pin_cpus(policy);
  ASSERT_FALSE(cpus.empty());  // sched_getaffinity always reports >= 1

  DsosCluster cluster = make_cluster(2, schema);
  IngestConfig icfg;
  icfg.workers = 2;
  icfg.pin_cpus = cpus;
  {
    IngestExecutor ex(cluster, icfg);
    for (const Object& obj : events) ex.submit(obj);
    ex.drain();
    const auto placements = ex.writer_placements();
    ASSERT_EQ(placements.size(), 2u);
    for (std::size_t w = 0; w < placements.size(); ++w) {
      // Pinning to a CPU in the affinity mask must succeed on Linux; the
      // worker then really runs there.
      EXPECT_EQ(placements[w].pinned_cpu, cpus[w % cpus.size()]);
      EXPECT_EQ(placements[w].last_cpu, cpus[w % cpus.size()]);
    }
  }
  EXPECT_EQ(fingerprint(cluster),
            ingest_fingerprint(2, IngestConfig{}, schema, events));
}

TEST(Ingest, ExplicitPinListRoundRobinsAcrossWorkers) {
  // DARSHAN_LDMS_PIN=<list>: more workers than listed CPUs wraps.
  const auto schema = test_schema();
  const int cpu0 = util::resolve_pin_cpus(util::PinPolicy{
      util::PinPolicy::Mode::kAuto, {}})[0];
  DsosCluster cluster = make_cluster(4, schema);
  IngestConfig icfg;
  icfg.workers = 4;
  icfg.pin_cpus = {cpu0};  // single-entry list: all workers share it
  IngestExecutor ex(cluster, icfg);
  for (Object& obj : random_events(schema, 200, 9)) ex.submit(std::move(obj));
  ex.drain();
  for (const auto& p : ex.writer_placements()) {
    EXPECT_EQ(p.pinned_cpu, cpu0);
    EXPECT_EQ(p.last_cpu, cpu0);
  }
}

}  // namespace
}  // namespace dlc::dsos
