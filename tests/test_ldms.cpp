// Tests for the LDMS layer: stream bus semantics (tags, best-effort,
// subscribe-before-publish), daemon forwarding (hop latency, drops),
// multi-hop aggregation, store plugins, threaded transport.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ldms/config.hpp"
#include "ldms/daemon.hpp"
#include "ldms/metrics.hpp"
#include "ldms/store.hpp"
#include "ldms/stream_bus.hpp"
#include "ldms/threaded.hpp"
#include "sim/engine.hpp"

namespace dlc::ldms {
namespace {

StreamMessage make_msg(std::string tag, std::string payload) {
  StreamMessage m;
  m.tag = std::move(tag);
  m.payload = std::move(payload);
  return m;
}

TEST(StreamBus, DeliversToMatchingTagOnly) {
  StreamBus bus;
  std::vector<std::string> got_a, got_b;
  bus.subscribe("a", [&](const StreamMessage& m) { got_a.push_back(m.payload); });
  bus.subscribe("b", [&](const StreamMessage& m) { got_b.push_back(m.payload); });
  EXPECT_EQ(bus.publish(make_msg("a", "1")), 1u);
  EXPECT_EQ(bus.publish(make_msg("b", "2")), 1u);
  EXPECT_EQ(bus.publish(make_msg("c", "3")), 0u);
  EXPECT_EQ(got_a, (std::vector<std::string>{"1"}));
  EXPECT_EQ(got_b, (std::vector<std::string>{"2"}));
  EXPECT_EQ(bus.published(), 3u);
  EXPECT_EQ(bus.delivered(), 2u);
  EXPECT_EQ(bus.missed(), 1u);
}

TEST(StreamBus, NoCacheBeforeSubscription) {
  // "the published data can only be received after subscription"
  StreamBus bus;
  bus.publish(make_msg("darshanConnector", "early"));
  std::vector<std::string> got;
  bus.subscribe("darshanConnector",
                [&](const StreamMessage& m) { got.push_back(m.payload); });
  bus.publish(make_msg("darshanConnector", "late"));
  EXPECT_EQ(got, (std::vector<std::string>{"late"}));
}

TEST(StreamBus, MultipleSubscribersFanOut) {
  StreamBus bus;
  int count = 0;
  bus.subscribe("t", [&](const StreamMessage&) { ++count; });
  bus.subscribe("t", [&](const StreamMessage&) { ++count; });
  EXPECT_EQ(bus.publish(make_msg("t", "x")), 2u);
  EXPECT_EQ(count, 2);
}

TEST(StreamBus, UnsubscribeStopsDelivery) {
  StreamBus bus;
  int count = 0;
  const auto id = bus.subscribe("t", [&](const StreamMessage&) { ++count; });
  bus.publish(make_msg("t", "x"));
  bus.unsubscribe(id);
  bus.publish(make_msg("t", "y"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(Daemon, PublishStampsProducerAndTime) {
  sim::Engine engine;
  LdmsDaemon d(&engine, "nid00040");
  StreamMessage received;
  d.bus().subscribe("tag", [&](const StreamMessage& m) { received = m; });
  auto proc = [](sim::Engine& eng, LdmsDaemon& daemon) -> sim::Task<void> {
    co_await eng.delay(5 * kSecond);
    daemon.publish("tag", PayloadFormat::kJson, "{}");
  };
  engine.spawn(proc(engine, d));
  engine.run();
  EXPECT_EQ(received.producer, "nid00040");
  EXPECT_EQ(received.publish_time, 5 * kSecond);
  EXPECT_EQ(received.format, PayloadFormat::kJson);
}

TEST(Daemon, ForwardsWithHopLatency) {
  sim::Engine engine;
  LdmsDaemon sampler(&engine, "nid00040");
  LdmsDaemon aggregator(&engine, "head");
  ForwardConfig cfg;
  cfg.hop_latency = 10 * kMillisecond;
  cfg.bandwidth_bytes_per_sec = 0;  // unmetered
  sampler.add_forward("darshanConnector", aggregator, cfg);

  std::vector<SimTime> deliver_times;
  aggregator.bus().subscribe("darshanConnector", [&](const StreamMessage& m) {
    deliver_times.push_back(m.deliver_time);
    EXPECT_EQ(m.hops, 1);
  });
  auto proc = [](LdmsDaemon& d) -> sim::Task<void> {
    d.publish("darshanConnector", PayloadFormat::kJson, "{}");
    co_return;
  };
  engine.spawn(proc(sampler));
  engine.run();
  ASSERT_EQ(deliver_times.size(), 1u);
  EXPECT_EQ(deliver_times[0], 10 * kMillisecond);
  EXPECT_EQ(sampler.forwarded(), 1u);
  EXPECT_EQ(sampler.dropped(), 0u);
}

TEST(Daemon, MultiHopAggregationAccumulatesLatency) {
  // Paper topology: compute-node sampler -> head-node aggregator ->
  // Shirley aggregator -> store.
  sim::Engine engine;
  LdmsDaemon sampler(&engine, "nid00040");
  LdmsDaemon l1(&engine, "voltrino-head");
  LdmsDaemon l2(&engine, "shirley");
  ForwardConfig cfg;
  cfg.hop_latency = 1 * kMillisecond;
  cfg.bandwidth_bytes_per_sec = 0;
  sampler.add_forward("t", l1, cfg);
  l1.add_forward("t", l2, cfg);

  CountingStore store;
  store.attach(l2, "t");
  auto proc = [](LdmsDaemon& d) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      d.publish("t", PayloadFormat::kJson, "{\"i\":1}");
    }
    co_return;
  };
  engine.spawn(proc(sampler));
  engine.run();
  EXPECT_EQ(store.stored(), 10u);
  // Every message crossed 2 hops of >= 1 ms each.
  EXPECT_GE(store.mean_latency_seconds(), 0.002);
}

TEST(Daemon, BestEffortDropsOnQueueOverflow) {
  sim::Engine engine;
  LdmsDaemon sampler(&engine, "n");
  LdmsDaemon agg(&engine, "a");
  ForwardConfig cfg;
  cfg.queue_capacity = 4;
  cfg.hop_latency = kSecond;  // slow drain
  cfg.bandwidth_bytes_per_sec = 0;
  sampler.add_forward("t", agg, cfg);
  int received = 0;
  agg.bus().subscribe("t", [&](const StreamMessage&) { ++received; });
  auto proc = [](LdmsDaemon& d) -> sim::Task<void> {
    // Publish 20 back-to-back with no virtual time passing: the route can
    // hold 4 + 1 in flight; the rest are dropped, never retried.
    for (int i = 0; i < 20; ++i) d.publish("t", PayloadFormat::kString, "x");
    co_return;
  };
  engine.spawn(proc(sampler));
  engine.run();
  EXPECT_GT(sampler.dropped(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(received), sampler.forwarded());
  EXPECT_EQ(sampler.forwarded() + sampler.dropped(), 20u);
  EXPECT_LE(sampler.max_queue_depth(), 4u);
}

TEST(Daemon, PayloadBandwidthMetersTransfer) {
  sim::Engine engine;
  LdmsDaemon a(&engine, "a");
  LdmsDaemon b(&engine, "b");
  ForwardConfig cfg;
  cfg.hop_latency = 0;
  cfg.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s: 500 B -> 0.5 s
  a.add_forward("t", b, cfg);
  SimTime delivered_at = -1;
  b.bus().subscribe("t",
                    [&](const StreamMessage& m) { delivered_at = m.deliver_time; });
  auto proc = [](LdmsDaemon& d) -> sim::Task<void> {
    d.publish("t", PayloadFormat::kString, std::string(500, 'x'));
    co_return;
  };
  engine.spawn(proc(a));
  engine.run();
  EXPECT_EQ(delivered_at, kSecond / 2);
}

TEST(Store, CsvStoreCollectsRowsAndFile) {
  sim::Engine engine;
  LdmsDaemon d(&engine, "n");
  CsvStore store;
  store.attach(d, "t");
  auto proc = [](LdmsDaemon& daemon) -> sim::Task<void> {
    daemon.publish("t", PayloadFormat::kString, "1,2,3");
    daemon.publish("t", PayloadFormat::kString, "4,5,6");
    co_return;
  };
  engine.spawn(proc(d));
  engine.run();
  ASSERT_EQ(store.rows().size(), 2u);
  EXPECT_EQ(store.rows()[1], "4,5,6");
  EXPECT_EQ(store.stored_bytes(), 10u);
}

TEST(Store, CallbackStoreForwards) {
  sim::Engine engine;
  LdmsDaemon d(&engine, "n");
  std::vector<std::string> got;
  CallbackStore store([&](const StreamMessage& m) { got.push_back(m.payload); });
  store.attach(d, "t");
  auto proc = [](LdmsDaemon& daemon) -> sim::Task<void> {
    daemon.publish("t", PayloadFormat::kJson, "{\"x\":1}");
    co_return;
  };
  engine.spawn(proc(d));
  engine.run();
  EXPECT_EQ(got, (std::vector<std::string>{"{\"x\":1}"}));
}

TEST(Threaded, ForwardsAcrossRealThreads) {
  StreamBus from, to;
  std::atomic<int> received{0};
  to.subscribe("t", [&](const StreamMessage&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  {
    ThreadedForwarder fwd(from, to, "t");
    for (int i = 0; i < 10'000; ++i) {
      from.publish(make_msg("t", "payload"));
    }
    fwd.stop();
    EXPECT_EQ(static_cast<std::uint64_t>(received.load()), fwd.forwarded());
    EXPECT_EQ(fwd.forwarded() + fwd.dropped(), 10'000u);
  }
}

TEST(Threaded, SaturationConservesMessagesAcrossProducers) {
  // Many producers hammer a deliberately tiny queue while the worker
  // drains concurrently.  Whatever the interleaving: every published
  // message is either forwarded exactly once or counted dropped — no
  // loss without accounting, no duplication.
  StreamBus from, to;
  std::atomic<std::uint64_t> received{0};
  to.subscribe("t", [&](const StreamMessage&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5'000;
  {
    ThreadedForwarder fwd(from, to, "t", /*queue_capacity=*/8);
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&from] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          from.publish(make_msg("t", "payload"));
        }
      });
    }
    for (auto& t : producers) t.join();
    fwd.stop();
    EXPECT_EQ(fwd.forwarded() + fwd.dropped(), kProducers * kPerProducer);
    EXPECT_EQ(received.load(), fwd.forwarded());
    EXPECT_GT(fwd.forwarded(), 0u);
  }
}

TEST(Threaded, ByteCapacityBoundsQueuedPayload) {
  StreamBus from, to;
  std::atomic<std::uint64_t> received_bytes{0};
  to.subscribe("t", [&](const StreamMessage& m) {
    received_bytes.fetch_add(m.payload.size(), std::memory_order_relaxed);
  });
  constexpr std::size_t kPayload = 1024;
  {
    // Count cap is huge; only the 4 KiB byte cap can cause drops.
    ThreadedForwarder fwd(from, to, "t", 1 << 20, 4 * kPayload);
    for (int i = 0; i < 1000; ++i) {
      from.publish(make_msg("t", std::string(kPayload, 'x')));
    }
    fwd.stop();
    EXPECT_EQ(fwd.forwarded() + fwd.dropped(), 1000u);
    EXPECT_EQ(fwd.forwarded_bytes(), received_bytes.load());
    EXPECT_EQ(fwd.forwarded_bytes(), fwd.forwarded() * kPayload);
  }
}

TEST(StreamBus, TracksPerFormatByteCounters) {
  StreamBus bus;
  StreamMessage m = make_msg("t", "12345678");  // 8 bytes
  m.format = PayloadFormat::kJson;
  bus.publish(m);
  bus.publish(m);
  m.format = PayloadFormat::kBinary;
  m.payload = "123";  // 3 bytes
  bus.publish(m);
  m.format = PayloadFormat::kString;
  m.payload = "1";
  bus.publish(m);
  EXPECT_EQ(bus.published_bytes(PayloadFormat::kJson), 16u);
  EXPECT_EQ(bus.published_bytes(PayloadFormat::kBinary), 3u);
  EXPECT_EQ(bus.published_bytes(PayloadFormat::kString), 1u);
  EXPECT_EQ(bus.published_bytes(), 20u);
  EXPECT_EQ(bus.published_count(PayloadFormat::kJson), 2u);
  EXPECT_EQ(bus.published_count(PayloadFormat::kBinary), 1u);
  EXPECT_EQ(bus.published_count(PayloadFormat::kString), 1u);
}

TEST(Threaded, ChainedHopsDeliverInOrder) {
  StreamBus a, b, c;
  std::vector<int> order;
  std::mutex mu;
  c.subscribe("t", [&](const StreamMessage& m) {
    const std::scoped_lock lock(mu);
    order.push_back(std::stoi(m.payload));
    EXPECT_EQ(m.hops, 2);
  });
  {
    ThreadedForwarder hop1(a, b, "t", 1 << 20);
    ThreadedForwarder hop2(b, c, "t", 1 << 20);
    for (int i = 0; i < 1000; ++i) a.publish(make_msg("t", std::to_string(i)));
    hop1.stop();
    hop2.stop();
  }
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace dlc::ldms

// ----------------------------------------------------------- metric sets --

namespace dlc::ldms {
namespace {

class FakePlugin final : public SamplerPlugin {
 public:
  const std::string& set_name() const override { return name_; }
  const std::vector<std::string>& metric_names() const override {
    return names_;
  }
  void sample(dlc::SimTime now, std::vector<double>& out) override {
    out.push_back(dlc::to_seconds(now));
    out.push_back(42.0);
  }

 private:
  std::string name_ = "fake";
  std::vector<std::string> names_ = {"t_echo", "answer"};
};

TEST(Metrics, SamplerPublishesOnCadence) {
  dlc::sim::Engine engine;
  LdmsDaemon daemon(&engine, "nid00001");
  std::vector<MetricSample> received;
  daemon.bus().subscribe("ldms-metrics", [&](const StreamMessage& msg) {
    MetricSample s;
    ASSERT_TRUE(MetricSampler::from_json(msg.payload, s));
    received.push_back(s);
  });
  MetricSampler sampler(engine, daemon, std::make_unique<FakePlugin>(),
                        10 * dlc::kSecond);
  sampler.start(35 * dlc::kSecond);
  engine.run();
  ASSERT_EQ(received.size(), 3u);  // t=10,20,30
  EXPECT_EQ(sampler.samples_taken(), 3u);
  EXPECT_EQ(received[0].set_name, "fake");
  EXPECT_EQ(received[0].producer, "nid00001");
  EXPECT_EQ(received[1].timestamp, 20 * dlc::kSecond);
  // Channels round-trip by name (JSON object order is alphabetical).
  ASSERT_EQ(received[2].names.size(), 2u);
  EXPECT_EQ(received[2].names[0], "answer");
  EXPECT_DOUBLE_EQ(received[2].values[0], 42.0);
  EXPECT_EQ(received[2].names[1], "t_echo");
  EXPECT_DOUBLE_EQ(received[2].values[1], 30.0);
}

TEST(Metrics, StopPredicateEndsSampling) {
  dlc::sim::Engine engine;
  LdmsDaemon daemon(&engine, "n");
  MetricSampler sampler(engine, daemon, std::make_unique<FakePlugin>(),
                        dlc::kSecond);
  bool stop = false;
  sampler.set_stop_predicate([&stop] { return stop; });
  sampler.start();
  auto stopper = [](dlc::sim::Engine& eng, bool& flag) -> dlc::sim::Task<void> {
    co_await eng.delay(5 * dlc::kSecond + 1);
    flag = true;
  };
  engine.spawn(stopper(engine, stop));
  engine.run();
  EXPECT_EQ(sampler.samples_taken(), 5u);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}

TEST(Metrics, BusBytesSamplerReportsWireSplit) {
  dlc::sim::Engine engine;
  LdmsDaemon daemon(&engine, "nid00001");
  daemon.publish("t", PayloadFormat::kJson, "{\"k\":1}");   // 7 bytes
  daemon.publish("t", PayloadFormat::kBinary, "Wxyz");      // 4 bytes
  daemon.publish("t", PayloadFormat::kBinary, "Wab");       // 3 bytes
  BusBytesSampler sampler(daemon);
  EXPECT_EQ(sampler.set_name(), "darshan_stream_bytes");
  ASSERT_EQ(sampler.metric_names().size(), 7u);
  std::vector<double> out;
  sampler.sample(0, out);
  ASSERT_EQ(out.size(), sampler.metric_names().size());
  const auto value_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (sampler.metric_names()[i] == name) return out[i];
    }
    ADD_FAILURE() << "missing metric " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("msgs_json"), 1.0);
  EXPECT_EQ(value_of("msgs_binary"), 2.0);
  EXPECT_EQ(value_of("bytes_json"), 7.0);
  EXPECT_EQ(value_of("bytes_binary"), 7.0);
  EXPECT_EQ(value_of("bytes_total"), 14.0);
}

TEST(Metrics, TransportHealthSamplerExposesDropAndSpoolCounters) {
  dlc::sim::Engine engine;
  LdmsDaemon src(&engine, "nid00001");
  LdmsDaemon agg(&engine, "agg");
  ForwardConfig cfg;
  cfg.hop_latency = dlc::kMillisecond;
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.delivery = relia::DeliveryMode::kAtLeastOnce;
  src.add_forward("t", agg, cfg);
  src.add_outage(0, 10 * dlc::kMillisecond);
  auto proc = [](dlc::sim::Engine& eng, LdmsDaemon& d) -> dlc::sim::Task<void> {
    d.publish("t", PayloadFormat::kString, "during");  // t=0: spooled
    co_await eng.delay(100 * dlc::kMillisecond);
    d.publish("t", PayloadFormat::kString, "after");
  };
  engine.spawn(proc(engine, src));
  engine.run();

  TransportHealthSampler sampler(src);
  EXPECT_EQ(sampler.set_name(), "darshan_transport_health");
  std::vector<double> out;
  sampler.sample(engine.now(), out);
  ASSERT_EQ(out.size(), sampler.metric_names().size());
  const auto value_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (sampler.metric_names()[i] == name) return out[i];
    }
    ADD_FAILURE() << "missing metric " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("forwarded"), 2.0);  // spooled redelivery + "after"
  EXPECT_EQ(value_of("dropped"), 0.0);
  EXPECT_EQ(value_of("outage_dropped"), 0.0);
  EXPECT_GE(value_of("spooled"), 1.0);
  EXPECT_GE(value_of("redelivered"), 1.0);
  EXPECT_EQ(value_of("spool_depth"), 0.0);
  EXPECT_GT(value_of("forwarded_bytes"), 0.0);
}

TEST(Metrics, TransportHealthRidesTheMetricsPathAsJson) {
  // The health channels must survive the publish -> from_json trip the
  // collector uses (this is the path into the Grafana export).
  dlc::sim::Engine engine;
  LdmsDaemon src(&engine, "nid00001");
  LdmsDaemon agg(&engine, "agg");
  src.add_forward("t", agg, ForwardConfig{.hop_latency = dlc::kMillisecond,
                                          .bandwidth_bytes_per_sec = 0});
  std::vector<MetricSample> samples;
  src.bus().subscribe("health", [&](const StreamMessage& msg) {
    MetricSample s;
    if (MetricSampler::from_json(msg.payload, s)) samples.push_back(s);
  });
  MetricSampler sampler(engine, src,
                        std::make_unique<TransportHealthSampler>(src),
                        10 * dlc::kMillisecond, "health");
  sampler.start(35 * dlc::kMillisecond);
  auto proc = [](LdmsDaemon& d) -> dlc::sim::Task<void> {
    d.publish("t", PayloadFormat::kString, "x");
    co_return;
  };
  engine.spawn(proc(src));
  engine.run();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples[0].set_name, "darshan_transport_health");
  EXPECT_EQ(samples[0].producer, "nid00001");
  ASSERT_EQ(samples[0].names.size(), samples[0].values.size());
  // forwarded == 1 once the hop completes.
  const auto& last = samples.back();
  for (std::size_t i = 0; i < last.names.size(); ++i) {
    if (last.names[i] == "forwarded") EXPECT_EQ(last.values[i], 1.0);
  }
}

TEST(Metrics, FromJsonRejectsGarbage) {
  MetricSample s;
  EXPECT_FALSE(MetricSampler::from_json("not json", s));
  EXPECT_FALSE(MetricSampler::from_json("{}", s));
  EXPECT_FALSE(MetricSampler::from_json(
      R"({"metrics":{"x":"string"}})", s));
}


// ---------------------------------------------------- topology config ----

TEST(Config, ParsesLinesIntoCommandAndArgs) {
  std::string cmd;
  std::map<std::string, std::string> args;
  ASSERT_TRUE(parse_config_line("route from=a to=b tag=t queue=16", cmd, args));
  EXPECT_EQ(cmd, "route");
  EXPECT_EQ(args.at("from"), "a");
  EXPECT_EQ(args.at("queue"), "16");
  EXPECT_FALSE(parse_config_line("", cmd, args));
  EXPECT_FALSE(parse_config_line("x=1 daemon", cmd, args));   // no command
  EXPECT_FALSE(parse_config_line("daemon =bad", cmd, args));  // empty key
}

TEST(Config, BuildsWorkingTopology) {
  dlc::sim::Engine engine;
  const std::string script = R"(
# three-level paper topology
daemon name=nid00040
daemon name=head
daemon name=shirley
route from=nid00040 to=head tag=darshanConnector queue=1024 latency_us=100
route from=head to=shirley tag=darshanConnector latency_us=200
store daemon=shirley tag=darshanConnector type=counting
)";
  ConfigError error;
  auto topo = parse_topology(script, &engine, &error);
  ASSERT_TRUE(topo.has_value()) << error.message;
  ASSERT_EQ(topo->daemons.size(), 3u);
  ASSERT_EQ(topo->stores.size(), 1u);

  auto proc = [](LdmsDaemon& d) -> dlc::sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      d.publish("darshanConnector", PayloadFormat::kJson, "{}");
    }
    co_return;
  };
  engine.spawn(proc(*topo->daemon("nid00040")));
  engine.run();
  EXPECT_EQ(topo->stores[0]->stored(), 5u);
  // Two modelled hops of 100+200 us.
  EXPECT_GE(engine.now(), 300 * dlc::kMicrosecond);
}

TEST(Config, LineContinuationsJoin) {
  dlc::sim::Engine engine;
  // The `route` command is split across two physical lines with a
  // trailing-backslash continuation.
  const std::string text =
      "daemon name=a\n"
      "daemon name=b\n"
      "route from=a to=b \\\n"
      "      tag=t queue=8\n";
  ConfigError error;
  auto topo = parse_topology(text, &engine, &error);
  ASSERT_TRUE(topo.has_value()) << error.message;
  EXPECT_EQ(topo->daemons.size(), 2u);
  // The route exists: a publish on `a` reaches `b`.
  int received = 0;
  topo->daemon("b")->bus().subscribe(
      "t", [&received](const StreamMessage&) { ++received; });
  auto proc = [](LdmsDaemon& d) -> dlc::sim::Task<void> {
    d.publish("t", PayloadFormat::kString, "x");
    co_return;
  };
  engine.spawn(proc(*topo->daemon("a")));
  engine.run();
  EXPECT_EQ(received, 1);
}

TEST(Config, ReportsErrorsWithLineNumbers) {
  dlc::sim::Engine engine;
  ConfigError error;
  EXPECT_FALSE(parse_topology("daemon name=a\nroute from=a to=missing tag=t",
                              &engine, &error)
                   .has_value());
  // (line numbering counts logical lines)
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("unknown daemon"), std::string::npos);

  EXPECT_FALSE(parse_topology("daemon name=a\ndaemon name=a", &engine, &error)
                   .has_value());
  EXPECT_NE(error.message.find("duplicate"), std::string::npos);

  EXPECT_FALSE(parse_topology("frobnicate x=1", &engine, &error).has_value());
  EXPECT_NE(error.message.find("unknown command"), std::string::npos);

  EXPECT_FALSE(parse_topology(
                   "daemon name=a\nstore daemon=a tag=t type=exotic", &engine,
                   &error)
                   .has_value());
  EXPECT_NE(error.message.find("unknown store type"), std::string::npos);
}


TEST(Daemon, OutageDropsNewArrivalsButDrainsQueue) {
  dlc::sim::Engine engine;
  LdmsDaemon sampler(&engine, "n");
  LdmsDaemon agg(&engine, "a");
  ForwardConfig cfg;
  cfg.hop_latency = 100 * dlc::kMillisecond;
  cfg.bandwidth_bytes_per_sec = 0;
  sampler.add_forward("t", agg, cfg);
  int received = 0;
  agg.bus().subscribe("t", [&](const StreamMessage&) { ++received; });

  // Aggregator link down between t=1s and t=3s.
  sampler.set_outage(dlc::kSecond, 3 * dlc::kSecond);
  auto proc = [](dlc::sim::Engine& eng, LdmsDaemon& d) -> dlc::sim::Task<void> {
    d.publish("t", PayloadFormat::kString, "before");   // t=0: delivered
    co_await eng.delay(2 * dlc::kSecond);
    d.publish("t", PayloadFormat::kString, "during");   // t=2s: lost
    co_await eng.delay(2 * dlc::kSecond);
    d.publish("t", PayloadFormat::kString, "after");    // t=4s: delivered
  };
  engine.spawn(proc(engine, sampler));
  engine.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(sampler.outage_dropped(), 1u);
  EXPECT_EQ(sampler.dropped(), 1u);
  EXPECT_EQ(sampler.forwarded(), 2u);
}

}  // namespace
}  // namespace dlc::ldms
