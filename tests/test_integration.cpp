// End-to-end integration test: the paper's complete story in one suite.
//
//   campaign of jobs (one anomalous) -> connector JSON -> LDMS multi-hop
//   transport -> DSOS -> anomaly detection -> temporal drill-down ->
//   metric correlation -> dashboard render over the web API -> persist ->
//   reload -> identical answers.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/correlate.hpp"
#include "analysis/figures.hpp"
#include "darshan/derived.hpp"
#include "darshan/log_compress.hpp"
#include "dsos/persist.hpp"
#include "exp/figdata.hpp"
#include "exp/specs.hpp"
#include "json/parser.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/http.hpp"
#include "workloads/mpi_io_test.hpp"

namespace dlc {
namespace {

class FullStory : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new exp::FigDataset(exp::mpiio_independent_campaign(5, 42));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static exp::FigDataset* dataset_;
};

exp::FigDataset* FullStory::dataset_ = nullptr;

TEST_F(FullStory, CampaignLandsAllJobsInDsos) {
  ASSERT_EQ(dataset_->job_ids.size(), 5u);
  // 5 jobs x 7568 events each, all decoded.
  EXPECT_EQ(dataset_->db->total_objects(), 5u * 7568u);
}

TEST_F(FullStory, AnomalyDetectedFromStoredDataAlone) {
  const analysis::DataFrame summary =
      analysis::fig7_job_summary(*dataset_->db, dataset_->job_ids);
  EXPECT_EQ(analysis::find_anomalous_job(summary, "read"),
            dataset_->anomalous_job);
  EXPECT_EQ(analysis::find_anomalous_job(summary, "write"),
            dataset_->anomalous_job);
}

TEST_F(FullStory, TemporalDrilldownShowsDegradation) {
  const analysis::DataFrame timeline =
      analysis::fig8_timeline(*dataset_->db, dataset_->anomalous_job);
  ASSERT_GT(timeline.rows(), 0u);
  // Split writes into first/last third and compare means.
  double t_end = 0;
  for (std::size_t r = 0; r < timeline.rows(); ++r) {
    t_end = std::max(t_end, timeline.get_double(r, "rel_time_s"));
  }
  RunningStats early, late;
  for (std::size_t r = 0; r < timeline.rows(); ++r) {
    if (timeline.get_string(r, "op") != "write") continue;
    const double t = timeline.get_double(r, "rel_time_s");
    if (t < t_end / 3) early.add(timeline.get_double(r, "dur_s"));
    if (t > 2 * t_end / 3) late.add(timeline.get_double(r, "dur_s"));
  }
  EXPECT_GT(late.mean(), early.mean() * 1.3);  // writes degrade over time
}

TEST_F(FullStory, DashboardServesTheAnomalyOverHttp) {
  websvc::DashboardService service(dataset_->db);
  websvc::HttpServer server(0, websvc::HttpServer::wrap(service));
  int status = 0;
  const auto body = websvc::http_get(
      server.port(),
      "/api/panel?module=fig7_summary&job=1,2,3,4,5", &status);
  ASSERT_TRUE(body.has_value());
  ASSERT_EQ(status, 200);
  const auto doc = json::parse(*body);
  ASSERT_TRUE(doc.has_value());
  // job 2's read mean stands out in the served data.
  double job2_read = 0, others_max = 0;
  for (const auto& row : doc->find("data")->find("rows")->as_array()) {
    const auto& cells = row.as_array();
    if (cells[1].as_string() != "read") continue;
    if (cells[0].as_uint() == dataset_->anomalous_job) {
      job2_read = cells[2].as_double();
    } else {
      others_max = std::max(others_max, cells[2].as_double());
    }
  }
  EXPECT_GT(job2_read, 10 * others_max);
  server.stop();

  const std::string dashboard = websvc::render_dashboard(
      service, websvc::default_io_dashboard(dataset_->anomalous_job));
  EXPECT_TRUE(json::parse(dashboard).has_value());
}

TEST_F(FullStory, PersistReloadAnswersIdentically) {
  const std::string dir = "/tmp/dlc_integration_db";
  ASSERT_TRUE(dsos::save_cluster(*dataset_->db, dir));
  dsos::ClusterConfig cfg;
  cfg.shard_count = dataset_->db->shard_count();
  cfg.shard_attr = "rank";
  cfg.parallel_query = true;
  auto reloaded = dsos::load_cluster(dir, cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->total_objects(), dataset_->db->total_objects());

  const dsos::Filter filter{
      {"job_id", dsos::Cmp::kEq, dataset_->anomalous_job},
      {"rank", dsos::Cmp::kEq, std::int64_t{3}}};
  const auto before =
      dataset_->db->query("darshan_data", "job_rank_time", filter);
  const auto after = reloaded->query("darshan_data", "job_rank_time", filter);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i]->as_double("seg_timestamp"),
              after[i]->as_double("seg_timestamp"));
    EXPECT_EQ(before[i]->as_string("op"), after[i]->as_string("op"));
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FullStory, CorrelationNamesTheDriver) {
  // Re-run the anomalous job with system metric sampling and confirm the
  // correlation analysis points at fs congestion, not nuisance channels.
  exp::ExperimentSpec spec =
      exp::mpi_io_test_spec(simfs::FsKind::kNfs, /*collective=*/false);
  spec.node_count = 4;
  spec.ranks_per_node = 4;
  spec.job_id = 77;
  spec.decode_to_dsos = true;
  spec.sample_system_metrics = true;
  spec.metric_interval = 5 * kSecond;
  workloads::MpiIoTestConfig io;
  io.iterations = 25;
  io.block_size = 8ull * 1024 * 1024;
  io.collective = false;
  spec.workload = workloads::mpi_io_test(io);
  spec.incidents.push_back(simfs::Incident{.start = 0,
                                           .end = 800 * kSecond,
                                           .peak_factor = 3.0,
                                           .ramp = true,
                                           .applies_to =
                                               simfs::OpClass::kWrite});
  const exp::RunResult r = exp::run_experiment(spec);
  ASSERT_FALSE(r.system_metrics.empty());

  std::vector<analysis::TimeSeries> channels;
  for (const auto& series : r.system_metrics) {
    if (series.name.find("@nid00040") != std::string::npos) {
      channels.push_back(series);
    }
  }
  const analysis::DataFrame corr = analysis::correlate_durations(
      analysis::fig8_timeline(*r.dsos, spec.job_id), channels, 15.0, 25.0);
  double congestion_r = 0, nuisance_max = 0;
  for (std::size_t row = 0; row < corr.rows(); ++row) {
    if (corr.get_string(row, "op") != "write") continue;
    const double rv = std::abs(corr.get_double(row, "r"));
    if (corr.get_string(row, "metric").rfind("fs_congestion", 0) == 0) {
      congestion_r = rv;
    } else {
      nuisance_max = std::max(nuisance_max, rv);
    }
  }
  EXPECT_GT(congestion_r, 0.7);
  EXPECT_GT(congestion_r, nuisance_max);
}

TEST_F(FullStory, DarshanLogSurvivesTheSameJob) {
  // The classic post-run path still works alongside the run-time path.
  exp::ExperimentSpec spec =
      exp::mpi_io_test_spec(simfs::FsKind::kLustre, true);
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  const exp::RunResult r = exp::run_experiment(spec);
  ASSERT_FALSE(r.darshan_log.records.empty());

  std::stringstream stream;
  darshan::write_log_compressed(r.darshan_log, stream);
  const auto parsed = darshan::read_log_compressed(stream);
  ASSERT_TRUE(parsed.has_value());
  const darshan::AccessPattern pattern =
      darshan::access_pattern_summary(*parsed);
  EXPECT_EQ(pattern.classification, "sequential");  // rank-strided blocks
  // Dominant access size: the collective 16 MiB MPIIO ops decompose into
  // two 8 MiB POSIX phase accesses, which outnumber the MPIIO ops 2:1.
  EXPECT_EQ(pattern.common_write_size, "4M_10M");
  const darshan::PerfEstimate perf = darshan::estimate_performance(*parsed);
  EXPECT_GT(perf.agg_perf_by_slowest_mibs, 0.0);
}

}  // namespace
}  // namespace dlc
