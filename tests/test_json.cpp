// Tests for the JSON writer (all three number back ends), DOM and parser,
// including writer->parser round-trip properties.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "json/parser.hpp"
#include "json/scan.hpp"
#include "json/value.hpp"
#include "json/writer.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace dlc::json {
namespace {

TEST(Writer, FlatObject) {
  Writer w;
  w.begin_object();
  w.member("rank", 3);
  w.member("op", "open");
  w.member("dur", 0.25);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rank":3,"op":"open","dur":0.250000})");
}

TEST(Writer, NestedArrayOfObjects) {
  Writer w;
  w.begin_object();
  w.key("seg");
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.member("off", i);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"seg":[{"off":0},{"off":1}]})");
}

TEST(Writer, EmptyContainers) {
  Writer w;
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(Writer, EscapesStrings) {
  Writer w;
  w.begin_object();
  w.member("path", "/a\\b\"c\n\td");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"path\":\"/a\\\\b\\\"c\\n\\td\"}");
}

TEST(Writer, EscapesControlCharacters) {
  std::string out;
  Writer::append_escaped(out, std::string_view("\x01", 1));
  EXPECT_EQ(out, "\"\\u0001\"");
}

TEST(Writer, SnprintfAndFastItoaAgree) {
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64());
    Writer fast(NumberFormat::kFastItoa);
    Writer slow(NumberFormat::kSnprintf);
    fast.value_int(v);
    slow.value_int(v);
    EXPECT_EQ(fast.str(), slow.str());
  }
}

TEST(Writer, NullFormatElidesDigits) {
  Writer w(NumberFormat::kNull);
  w.begin_object();
  w.member("rank", 123456789);
  w.member("dur", 3.14159);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rank":0,"dur":0})");
}

TEST(Writer, ResetRetainsNothing) {
  Writer w;
  w.begin_object();
  w.member("a", 1);
  w.end_object();
  w.reset();
  w.begin_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Writer, BooleansAndNull) {
  Writer w;
  w.begin_array();
  w.value_bool(true);
  w.value_bool(false);
  w.value_null();
  w.end_array();
  EXPECT_EQ(w.str(), "[true,false,null]");
}

TEST(Parser, ParsesScalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("-42")->as_int(), -42);
  EXPECT_DOUBLE_EQ(parse("2.5e3")->as_double(), 2500.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(Parser, IntegersStayIntegers) {
  const auto v = parse("9007199254740993");  // > 2^53, breaks via double
  ASSERT_TRUE(v && v->is_int());
  EXPECT_EQ(v->as_int(), 9007199254740993LL);
}

TEST(Parser, HugeIntegerFallsBackToDouble) {
  const auto v = parse("99999999999999999999999999");
  ASSERT_TRUE(v && v->is_double());
  EXPECT_GT(v->as_double(), 1e25);
}

TEST(Parser, ParsesNestedDocument) {
  const auto v = parse(R"({"job":7,"seg":[{"len":100,"dur":0.5}],"ok":true})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_int("job"), 7);
  const auto& seg = v->find("seg")->as_array();
  ASSERT_EQ(seg.size(), 1u);
  EXPECT_EQ(seg[0].get_int("len"), 100);
  EXPECT_DOUBLE_EQ(seg[0].get_double("dur"), 0.5);
}

TEST(Parser, WhitespaceTolerant) {
  const auto v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->as_array().size(), 2u);
}

TEST(Parser, RejectsMalformedInput) {
  ParseError err;
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("{\"a\":}", &err).has_value());
  EXPECT_FALSE(parse("[1,]", &err).has_value());
  EXPECT_FALSE(parse("tru", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(err.message.empty());
}

TEST(Parser, UnescapesSequences) {
  const auto v = parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\ndA");
}

TEST(Parser, UnicodeEscapeUtf8) {
  const auto v = parse(R"("é€")");  // é €
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\xC3\xA9\xE2\x82\xAC");
}


TEST(Parser, DeeplyNestedArrays) {
  std::string doc;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < kDepth; ++i) doc += "]";
  const auto v = parse(doc);
  ASSERT_TRUE(v.has_value());
  const Value* cur = &*v;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(cur->is_array());
    cur = &cur->as_array()[0];
  }
  EXPECT_EQ(cur->as_int(), 1);
}

TEST(Parser, Uint64RecordIdsRoundTripExactly) {
  // Record ids are FNV hashes: frequently above INT64_MAX.
  const std::uint64_t id = 0xDEADBEEFCAFEF00DULL;
  Writer w;
  w.begin_object();
  w.member("record_id", id);
  w.end_object();
  const auto doc = parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_uint("record_id"), id);
}

TEST(Writer, LargePayloadStaysValid) {
  Writer w;
  w.begin_object();
  w.key("seg");
  w.begin_array();
  for (int i = 0; i < 5000; ++i) {
    w.begin_object();
    w.member("off", static_cast<std::int64_t>(i) * 4096);
    w.member("len", 4096);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const auto doc = parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("seg")->as_array().size(), 5000u);
}

TEST(Value, TypedGettersWithFallbacks) {
  const auto v = parse(R"({"i":3,"d":2.5,"s":"x"})");
  EXPECT_EQ(v->get_int("i"), 3);
  EXPECT_EQ(v->get_int("missing", -1), -1);
  EXPECT_EQ(v->get_int("s", -1), -1);  // wrong type -> fallback
  EXPECT_DOUBLE_EQ(v->get_double("d"), 2.5);
  EXPECT_EQ(v->get_string("s"), "x");
  EXPECT_EQ(v->get_string("i", "fb"), "fb");
}

TEST(Value, DumpParsesBack) {
  Object obj;
  obj["n"] = Value(nullptr);
  obj["b"] = Value(true);
  obj["i"] = Value(std::int64_t{-7});
  obj["s"] = Value("text with \"quotes\"");
  obj["a"] = Value(Array{Value(1), Value(2)});
  const Value original(std::move(obj));
  const auto round = parse(original.dump());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, original);
}

// Property: random documents survive dump->parse.
Value random_value(Rng& rng, int depth) {
  const auto kind = rng.uniform_int(0, depth > 2 ? 3 : 5);
  switch (kind) {
    case 0:
      return Value(rng.uniform_int(-1'000'000, 1'000'000));
    case 1:
      return Value(std::string("s") + std::to_string(rng.uniform_int(0, 999)));
    case 2:
      return Value(rng.bernoulli(0.5));
    case 3:
      return Value(nullptr);
    case 4: {
      Array arr;
      const auto n = rng.uniform_int(0, 4);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      const auto n = rng.uniform_int(0, 4);
      for (int i = 0; i < n; ++i) {
        obj["k" + std::to_string(i)] = random_value(rng, depth + 1);
      }
      return Value(std::move(obj));
    }
  }
}

TEST(Property, RandomDocumentsRoundTrip) {
  Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    const Value doc = random_value(rng, 0);
    const auto round = parse(doc.dump());
    ASSERT_TRUE(round.has_value()) << doc.dump();
    EXPECT_EQ(*round, doc) << doc.dump();
  }
}

TEST(Property, WriterOutputAlwaysParses) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    Writer w(i % 2 ? NumberFormat::kFastItoa : NumberFormat::kSnprintf);
    w.begin_object();
    const auto fields = rng.uniform_int(0, 10);
    for (int f = 0; f < fields; ++f) {
      const std::string key = "f" + std::to_string(f);
      switch (rng.uniform_int(0, 3)) {
        case 0:
          w.member(key, rng.uniform_int(-1e9, 1e9));
          break;
        case 1:
          w.member(key, rng.uniform(-1e6, 1e6));
          break;
        case 2:
          w.member(key, "v\"al\\ue\n");
          break;
        default:
          w.member(key, rng.bernoulli(0.5));
          break;
      }
    }
    w.end_object();
    EXPECT_TRUE(parse(w.str()).has_value()) << w.str();
  }
}

// ------------------------------------------------------ SIMD scanning ----
//
// The Scanner's whitespace and string-body loops dispatch to SSE2/AVX2
// kernels via util::active_simd() (scan.hpp).  The kernels only LOCATE
// structural bytes, so every level must produce bit-identical scans —
// including identical failures.  These tests pin the active level to
// each tier the host supports (set_simd_level clamps to detected) and
// compare full scan transcripts; ScopedSimd restores auto-detection so
// test order can't leak a capped level.

struct ScopedSimd {
  explicit ScopedSimd(util::SimdLevel level) { util::set_simd_level(level); }
  ~ScopedSimd() { util::reset_simd_level(); }
};

/// Recursive scan transcript: every key, every typed scalar, every
/// container edge, in order — two scans are equivalent iff their
/// transcripts match byte-for-byte.  Scan failure yields a transcript
/// too ("FAIL@<prefix>"), so malformed inputs must fail identically.
bool walk_value(Scanner& s, std::string& out) {
  std::string scratch;
  if (s.peek_object()) {
    if (!s.enter_object()) return false;
    std::string_view key;
    std::string key_scratch;
    int st;
    while ((st = s.next_member(key, key_scratch)) == 1) {
      out += '<';
      out += key;
      out += '=';
      if (!walk_value(s, out)) return false;
      out += '>';
    }
    return st == 0;
  }
  if (s.peek_array()) {
    if (!s.enter_array()) return false;
    out += '[';
    int st;
    while ((st = s.next_element()) == 1) {
      if (!walk_value(s, out)) return false;
      out += ';';
    }
    out += ']';
    return st == 0;
  }
  Token tok;
  if (!s.scan_token(tok, scratch)) return false;
  char buf[64];
  switch (tok.kind) {
    case Token::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "i%lld", static_cast<long long>(tok.i));
      break;
    case Token::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "u%llu",
                    static_cast<unsigned long long>(tok.u));
      break;
    case Token::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "d%.17g", tok.d);
      break;
    case Token::Kind::kString:
      out += 's';
      out += tok.sv;
      return true;
    default:
      buf[0] = 'o';
      buf[1] = '\0';
      break;
  }
  out += buf;
  return true;
}

std::string scan_transcript(std::string_view text) {
  Scanner s(text);
  std::string out;
  if (!walk_value(s, out)) return "FAIL@" + out;
  if (!s.at_end()) return "TRAILING@" + out;
  return out;
}

/// Every level the host supports, weakest first.
std::vector<util::SimdLevel> supported_levels() {
  std::vector<util::SimdLevel> levels{util::SimdLevel::kScalar};
  if (util::detected_simd() >= util::SimdLevel::kSse2) {
    levels.push_back(util::SimdLevel::kSse2);
  }
  if (util::detected_simd() >= util::SimdLevel::kAvx2) {
    levels.push_back(util::SimdLevel::kAvx2);
  }
  return levels;
}

void expect_levels_agree(const std::string& doc) {
  ScopedSimd scalar(util::SimdLevel::kScalar);
  const std::string reference = scan_transcript(doc);
  for (const util::SimdLevel level : supported_levels()) {
    util::set_simd_level(level);
    EXPECT_EQ(scan_transcript(doc), reference)
        << "level=" << util::simd_level_name(level) << " doc=" << doc;
  }
}

TEST(Simd, LevelControlClampsAndRestores) {
  const util::SimdLevel detected = util::detected_simd();
  EXPECT_EQ(util::active_simd(), detected);  // auto by default
  EXPECT_EQ(util::set_simd_level(util::SimdLevel::kScalar),
            util::SimdLevel::kScalar);
  EXPECT_EQ(util::active_simd(), util::SimdLevel::kScalar);
  // Asking for more than the host has clamps instead of faulting.
  EXPECT_LE(util::set_simd_level(util::SimdLevel::kAvx2), detected);
  util::reset_simd_level();
  EXPECT_EQ(util::active_simd(), detected);
}

TEST(Simd, LevelsAgreeOnConnectorShapedPayload) {
  Writer w;
  w.begin_object();
  w.member("uid", std::uint64_t{99066});
  w.member("exe", "/projects/ovis/bench/mpi-io-test");
  w.member("rank", std::int64_t{3});
  w.member("op", "write");
  w.key("seg");
  w.begin_array();
  w.begin_object();
  w.member("off", std::int64_t{4096});
  w.member("dur", 0.000125);
  w.member("data_set", "N/A");
  w.end_object();
  w.end_array();
  w.end_object();
  expect_levels_agree(w.str());
}

TEST(Simd, LevelsAgreeAcrossVectorWidthBoundaries) {
  // Whitespace runs and string bodies of every length 0..96 — each one
  // lands the structural byte at a different lane of the 16/32-byte
  // kernels, covering head, full-stride, and tail handling.
  for (int n = 0; n <= 96; ++n) {
    const std::string ws(static_cast<std::size_t>(n), ' ');
    expect_levels_agree("{" + ws + "\"k\"" + ws + ":" + ws + "1" + ws + "}");
    const std::string body(static_cast<std::size_t>(n), 'x');
    expect_levels_agree("{\"k\":\"" + body + "\"}");
    // Escape exactly at the boundary position, forcing the scratch path.
    expect_levels_agree("{\"k\":\"" + body + "\\n tail\"}");
    expect_levels_agree("{\"k\":\"" + body + "\\\" tail\"}");
  }
  // Mixed whitespace classes (the kernels match all four JSON ws bytes).
  expect_levels_agree("{ \t\n\r \"k\" \t : \n [1, \t2,\r3] }");
}

TEST(Simd, LevelsAgreeOnFuzzedAndMutatedDocuments) {
  Rng rng(9091);
  for (int i = 0; i < 200; ++i) {
    const std::string doc = random_value(rng, 0).dump();
    expect_levels_agree(doc);
    // Mutations: truncations and byte flips must FAIL identically too.
    std::string cut = doc;
    cut.resize(static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(doc.size()))));
    expect_levels_agree(cut);
    std::string flipped = doc;
    if (!flipped.empty()) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(flipped.size()) - 1));
      flipped[at] = static_cast<char>(rng.uniform_int(1, 127));
      expect_levels_agree(flipped);
    }
  }
}

}  // namespace
}  // namespace dlc::json
