// Tests for the darshan-runtime analogue: counters, DXT, event hook
// payloads, cnt/switches semantics, heatmap, log round-trip.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "darshan/derived.hpp"
#include "darshan/log.hpp"
#include "darshan/log_compress.hpp"
#include "darshan/runtime.hpp"
#include "sim/engine.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"

namespace dlc::darshan {
namespace {

struct Fixture {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{.node_count = 4}};
  std::shared_ptr<simfs::VariabilityProcess> variability;
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<Runtime> runtime;
  std::vector<IoEvent> events;

  explicit Fixture(std::size_t ranks = 2, RuntimeConfig cfg = {}) {
    simfs::VariabilityConfig vcfg;
    vcfg.epoch_sigma = 0.0;
    vcfg.ar_sigma = 0.0;
    variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
    simfs::NfsConfig ncfg;
    ncfg.jitter_sigma = 0.0;
    ncfg.small_io_batch = 1;
    fs = std::make_unique<simfs::NfsModel>(engine, ncfg, variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.job_id = 259903;
    jcfg.node_count = ranks;
    jcfg.ranks_per_node = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    runtime = std::make_unique<Runtime>(engine, *fs, *job, cfg);
    runtime->set_event_hook([this](const IoEvent& e) -> SimDuration {
      events.push_back(e);
      return 0;
    });
  }
};

sim::Task<void> simple_posix_session(Runtime& rt, int rank) {
  RankIo io = rt.rank(rank);
  const Fd fd = co_await io.open(Module::kPosix, "/scratch/data.out", true);
  co_await io.write(fd, 1000);
  co_await io.write(fd, 1000);
  co_await io.read_at(fd, 0, 500);
  co_await io.close(fd);
}

TEST(Runtime, CountersTrackOps) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();

  const auto records = fx.runtime->records();
  ASSERT_EQ(records.size(), 1u);
  const auto& c = records[0]->counters;
  EXPECT_EQ(c.opens, 1);
  EXPECT_EQ(c.closes, 1);
  EXPECT_EQ(c.writes, 2);
  EXPECT_EQ(c.reads, 1);
  EXPECT_EQ(c.bytes_written, 2000u);
  EXPECT_EQ(c.bytes_read, 500u);
  EXPECT_EQ(c.max_byte_written, 1999);
  EXPECT_EQ(c.max_byte_read, 499);
  EXPECT_EQ(c.rw_switches, 1);
  EXPECT_GT(c.f_write_time, 0.0);
  EXPECT_GT(c.f_read_time, 0.0);
  EXPECT_GE(c.f_open_start, 0.0);
  EXPECT_GT(c.f_close_end, c.f_open_end);
}

TEST(Runtime, SequentialWritesAdvanceCursorAndCountConsec) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  const auto& c = fx.runtime->records()[0]->counters;
  EXPECT_EQ(c.consec_writes, 1);  // second write directly follows the first
  EXPECT_EQ(c.seq_writes, 1);
}

TEST(Runtime, EventHookSeesEveryOpInOrder) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  ASSERT_EQ(fx.events.size(), 5u);
  EXPECT_EQ(fx.events[0].op, Op::kOpen);
  EXPECT_EQ(fx.events[1].op, Op::kWrite);
  EXPECT_EQ(fx.events[2].op, Op::kWrite);
  EXPECT_EQ(fx.events[3].op, Op::kRead);
  EXPECT_EQ(fx.events[4].op, Op::kClose);
  EXPECT_EQ(fx.runtime->event_count(), 5u);
  // Absolute timestamps are monotone and end >= start.
  SimTime prev_end = -1;
  for (const auto& e : fx.events) {
    EXPECT_GE(e.end, e.start);
    EXPECT_GE(e.end, prev_end);
    prev_end = e.end;
  }
}

TEST(Runtime, CntIncrementsAndResetsOnClose) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    Fd fd = co_await io.open(Module::kPosix, "/a", true);
    co_await io.write(fd, 10);
    co_await io.close(fd);
    fd = co_await io.open(Module::kPosix, "/a", false);
    co_await io.read(fd, 10);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  ASSERT_EQ(fx.events.size(), 6u);
  EXPECT_EQ(fx.events[0].cnt, 1);  // open
  EXPECT_EQ(fx.events[1].cnt, 2);  // write
  EXPECT_EQ(fx.events[2].cnt, 3);  // close -> reset
  EXPECT_EQ(fx.events[3].cnt, 1);  // second open restarts at 1
  EXPECT_EQ(fx.events[4].cnt, 2);
  EXPECT_EQ(fx.events[5].cnt, 3);
}

TEST(Runtime, CntIsPerModulePerRank) {
  Fixture fx(2);
  auto proc = [](Runtime& rt, int rank, Module m) -> sim::Task<void> {
    RankIo io = rt.rank(rank);
    const Fd fd = co_await io.open(m, "/shared", true);
    co_await io.write(fd, 10);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime, 0, Module::kPosix));
  fx.engine.spawn(proc(*fx.runtime, 1, Module::kPosix));
  fx.engine.spawn(proc(*fx.runtime, 0, Module::kStdio));
  fx.engine.run();
  // Each (module, rank) stream counts independently: all opens have cnt 1.
  int open_cnt_ones = 0;
  for (const auto& e : fx.events) {
    if (e.op == Op::kOpen) {
      EXPECT_EQ(e.cnt, 1);
      ++open_cnt_ones;
    }
  }
  EXPECT_EQ(open_cnt_ones, 3);
}

TEST(Runtime, OpenEventUsesSentinelFields) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  const auto& open_event = fx.events[0];
  EXPECT_EQ(open_event.max_byte, -1);
  EXPECT_EQ(open_event.switches, -1);
  EXPECT_EQ(open_event.flushes, -1);
  EXPECT_EQ(open_event.length, 0u);
  // POSIX data events: switches real, flushes stays -1 (HDF5-only field).
  const auto& write_event = fx.events[1];
  EXPECT_EQ(write_event.switches, 0);
  EXPECT_EQ(write_event.flushes, -1);
  EXPECT_EQ(write_event.max_byte, 999);
}

TEST(Runtime, RecordIdIsStablePathHash) {
  Fixture fx(2);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.spawn(simple_posix_session(*fx.runtime, 1));
  fx.engine.run();
  EXPECT_EQ(fx.events[0].record_id, fnv1a64("/scratch/data.out"));
  // Same file on both ranks -> same record id, distinct records.
  const auto records = fx.runtime->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]->record_id, records[1]->record_id);
  EXPECT_NE(records[0]->rank, records[1]->rank);
}

TEST(Runtime, DxtTracesDataOpsWithTimestamps) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  const Log log = fx.runtime->finalize();
  ASSERT_EQ(log.records.size(), 1u);
  const auto& dxt = log.records[0].dxt;
  ASSERT_EQ(dxt.size(), 3u);  // 2 writes + 1 read; open/close not traced
  EXPECT_EQ(dxt[0].op, Op::kWrite);
  EXPECT_EQ(dxt[0].offset, 0u);
  EXPECT_EQ(dxt[0].length, 1000u);
  EXPECT_EQ(dxt[1].offset, 1000u);
  EXPECT_EQ(dxt[2].op, Op::kRead);
  EXPECT_LT(dxt[0].start, dxt[0].end);
  EXPECT_LE(dxt[0].end, dxt[1].start);
}

TEST(Runtime, DxtRespectsSegmentCap) {
  RuntimeConfig cfg;
  cfg.dxt_max_segments = 4;
  Fixture fx(1, cfg);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/a", true);
    for (int i = 0; i < 10; ++i) co_await io.write(fd, 8);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const Log log = fx.runtime->finalize();
  EXPECT_EQ(log.records[0].dxt.size(), 4u);
  EXPECT_EQ(log.records[0].dxt_dropped, 6u);
}

TEST(Runtime, DxtCanBeDisabled) {
  RuntimeConfig cfg;
  cfg.dxt_enabled = false;
  Fixture fx(1, cfg);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  const Log log = fx.runtime->finalize();
  EXPECT_TRUE(log.records[0].dxt.empty());
  // Events still fire: the connector does not depend on DXT storage.
  EXPECT_EQ(fx.events.size(), 5u);
}

TEST(Runtime, MpiioEmitsPosixSubEvents) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kMpiio, "/mpi.dat", true);
    co_await io.write(fd, 4096, simfs::IoFlags{});  // independent
    co_await io.write(fd, 4096,
                      simfs::IoFlags{.collective = true, .sync = false});
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  int mpiio_writes = 0, posix_writes = 0;
  for (const auto& e : fx.events) {
    if (e.op != Op::kWrite) continue;
    if (e.module == Module::kMpiio) ++mpiio_writes;
    if (e.module == Module::kPosix) ++posix_writes;
  }
  EXPECT_EQ(mpiio_writes, 2);
  EXPECT_EQ(posix_writes, 3);  // 1 (independent) + 2 (collective two-phase)
}

TEST(Runtime, MpiioPosixLayerCanBeDisabled) {
  RuntimeConfig cfg;
  cfg.mpiio_emits_posix = false;
  Fixture fx(1, cfg);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kMpiio, "/mpi.dat", true);
    co_await io.write(fd, 4096, simfs::IoFlags{.collective = true,
                                               .sync = false});
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  for (const auto& e : fx.events) EXPECT_NE(e.module, Module::kPosix);
}

TEST(Runtime, Hdf5EventsCarryDatasetMetadata) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kH5D, "/sim.h5", true);
    Hdf5Info info;
    info.data_set = "/level0/pressure";
    info.ndims = 3;
    info.npoints = 64 * 64 * 64;
    info.reg_hslab = 1;
    info.pt_sel = 0;
    co_await io.h5d_write(fd, info, 0, 1 << 20);
    co_await io.flush(fd);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const auto& write_event = fx.events[1];
  EXPECT_EQ(write_event.module, Module::kH5D);
  EXPECT_EQ(write_event.h5.data_set, "/level0/pressure");
  EXPECT_EQ(write_event.h5.ndims, 3);
  EXPECT_EQ(write_event.h5.npoints, 64 * 64 * 64);
  const auto& flush_event = fx.events[2];
  EXPECT_EQ(flush_event.op, Op::kFlush);
  EXPECT_EQ(flush_event.flushes, 1);  // H5 modules report real flush counts
}

TEST(Runtime, SeekCountsWithoutIo) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/a", true);
    io.seek(fd, 4096);
    co_await io.write(fd, 100);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const auto& c = fx.runtime->records()[0]->counters;
  EXPECT_EQ(c.seeks, 1);
  // Write landed at the seeked offset.
  EXPECT_EQ(c.max_byte_written, 4195);
}

TEST(Runtime, BadFdThrows) {
  Fixture fx(1);
  auto proc = [](Runtime& rt, bool& threw) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    try {
      co_await io.write(99, 10);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  };
  bool threw = false;
  fx.engine.spawn(proc(*fx.runtime, threw));
  fx.engine.run();
  EXPECT_TRUE(threw);
}

TEST(Runtime, UseAfterCloseThrows) {
  Fixture fx(1);
  auto proc = [](Runtime& rt, bool& threw) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/a", true);
    co_await io.close(fd);
    try {
      co_await io.write(fd, 10);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  };
  bool threw = false;
  fx.engine.spawn(proc(*fx.runtime, threw));
  fx.engine.run();
  EXPECT_TRUE(threw);
}

TEST(Runtime, HeatmapAccumulatesPerRank) {
  Fixture fx(2);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.spawn(simple_posix_session(*fx.runtime, 1));
  fx.engine.run();
  const Heatmap& hm = fx.runtime->heatmap();
  std::uint64_t write_total = 0, read_total = 0;
  for (std::size_t r = 0; r < hm.ranks(); ++r) {
    for (std::size_t b = 0; b < hm.bins(r); ++b) {
      write_total += hm.at(r, b).write_bytes;
      read_total += hm.at(r, b).read_bytes;
    }
  }
  EXPECT_EQ(write_total, 4000u);
  EXPECT_EQ(read_total, 1000u);
}

TEST(Log, BinaryRoundTrip) {
  Fixture fx(2);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.spawn(simple_posix_session(*fx.runtime, 1));
  fx.engine.run();
  fx.job->note_end(fx.engine.now());
  const Log original = fx.runtime->finalize();

  std::stringstream stream;
  write_log(original, stream);
  const auto parsed = read_log(stream);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->job_id, original.job_id);
  EXPECT_EQ(parsed->uid, original.uid);
  EXPECT_EQ(parsed->exe, original.exe);
  EXPECT_EQ(parsed->nprocs, original.nprocs);
  ASSERT_EQ(parsed->records.size(), original.records.size());
  for (std::size_t i = 0; i < parsed->records.size(); ++i) {
    const auto& a = parsed->records[i];
    const auto& b = original.records[i];
    EXPECT_EQ(a.record.record_id, b.record.record_id);
    EXPECT_EQ(a.record.file_path, b.record.file_path);
    EXPECT_EQ(a.record.rank, b.record.rank);
    EXPECT_EQ(a.record.counters.bytes_written, b.record.counters.bytes_written);
    EXPECT_EQ(a.record.counters.rw_switches, b.record.counters.rw_switches);
    ASSERT_EQ(a.dxt.size(), b.dxt.size());
    for (std::size_t s = 0; s < a.dxt.size(); ++s) {
      EXPECT_EQ(a.dxt[s].offset, b.dxt[s].offset);
      EXPECT_EQ(a.dxt[s].start, b.dxt[s].start);
    }
  }
}

TEST(Log, RejectsCorruptInput) {
  std::stringstream empty;
  EXPECT_FALSE(read_log(empty).has_value());
  std::stringstream bad("NOTALOGFILE");
  EXPECT_FALSE(read_log(bad).has_value());
  // Truncated valid prefix.
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  std::stringstream full;
  write_log(fx.runtime->finalize(), full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(read_log(truncated).has_value());
}

TEST(Log, TextDumpMentionsKeyFields) {
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  const std::string text = log_to_text(fx.runtime->finalize());
  EXPECT_NE(text.find("POSIX"), std::string::npos);
  EXPECT_NE(text.find("/scratch/data.out"), std::string::npos);
  EXPECT_NE(text.find("bytes_written=2000"), std::string::npos);
}

TEST(ModuleNames, RoundTrip) {
  for (std::size_t i = 0; i < kModuleCount; ++i) {
    const auto m = static_cast<Module>(i);
    Module parsed;
    ASSERT_TRUE(module_from_name(module_name(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  Module m;
  EXPECT_FALSE(module_from_name("NOPE", m));
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const auto op = static_cast<Op>(i);
    Op parsed;
    ASSERT_TRUE(op_from_name(op_name(op), parsed));
    EXPECT_EQ(parsed, op);
  }
}

TEST(SizeBins, EdgesMatchDarshan) {
  EXPECT_EQ(size_bin_index(0), 0u);
  EXPECT_EQ(size_bin_index(100), 0u);
  EXPECT_EQ(size_bin_index(101), 1u);
  EXPECT_EQ(size_bin_index(1024), 1u);
  EXPECT_EQ(size_bin_index(1 << 20), 4u);
  EXPECT_EQ(size_bin_index(16u << 20), 7u);
  EXPECT_EQ(size_bin_index(2ull << 30), 9u);
  EXPECT_EQ(size_bin_name(0), "0_100");
  EXPECT_EQ(size_bin_name(9), "1G_PLUS");
}


// ------------------------------------------------------------- derived ----

TEST(Derived, SharedRecordReductionMergesRanks) {
  Fixture fx(2);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.spawn(simple_posix_session(*fx.runtime, 1));
  fx.engine.run();
  const Log log = fx.runtime->finalize();
  ASSERT_EQ(log.records.size(), 2u);

  const Log reduced = reduce_shared_records(log);
  ASSERT_EQ(reduced.records.size(), 1u);
  const auto& entry = reduced.records[0];
  EXPECT_EQ(entry.record.rank, -1);  // shared marker
  EXPECT_EQ(entry.record.counters.opens, 2);
  EXPECT_EQ(entry.record.counters.writes, 4);
  EXPECT_EQ(entry.record.counters.bytes_written, 4000u);
  // DXT segments concatenated and time-sorted.
  ASSERT_EQ(entry.dxt.size(), 6u);
  for (std::size_t i = 1; i < entry.dxt.size(); ++i) {
    EXPECT_LE(entry.dxt[i - 1].start, entry.dxt[i].start);
  }
}

TEST(Derived, ReductionKeepsDistinctFilesApart) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    Fd a = co_await io.open(Module::kPosix, "/a", true);
    co_await io.write(a, 10);
    co_await io.close(a);
    Fd b = co_await io.open(Module::kPosix, "/b", true);
    co_await io.read(b, 10);
    co_await io.close(b);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const Log reduced = reduce_shared_records(fx.runtime->finalize());
  EXPECT_EQ(reduced.records.size(), 2u);
  for (const auto& e : reduced.records) {
    EXPECT_EQ(e.record.rank, 0);  // single-rank records keep their rank
  }
}

TEST(Derived, PerfEstimateUsesSlowestRank) {
  Log log;
  log.nprocs = 2;
  Log::RecordEntry fast;
  fast.record.rank = 0;
  fast.record.counters.bytes_written = 100 * 1024 * 1024;
  fast.record.counters.f_write_time = 1.0;
  Log::RecordEntry slow;
  slow.record.rank = 1;
  slow.record.counters.bytes_written = 100 * 1024 * 1024;
  slow.record.counters.f_write_time = 4.0;
  log.records = {fast, slow};

  const PerfEstimate est = estimate_performance(log);
  EXPECT_EQ(est.total_bytes, 200ull * 1024 * 1024);
  EXPECT_EQ(est.slowest_rank, 1);
  EXPECT_DOUBLE_EQ(est.slowest_rank_io_time, 4.0);
  EXPECT_DOUBLE_EQ(est.agg_perf_by_slowest_mibs, 200.0 / 4.0);
}

TEST(Derived, PerfEstimateEmptyLog) {
  const PerfEstimate est = estimate_performance(Log{});
  EXPECT_EQ(est.total_bytes, 0u);
  EXPECT_DOUBLE_EQ(est.agg_perf_by_slowest_mibs, 0.0);
}

TEST(Derived, FileCountSummaryCategorises) {
  Fixture fx(2);
  auto proc = [](Runtime& rt, int rank) -> sim::Task<void> {
    RankIo io = rt.rank(rank);
    // Shared read/write file.
    Fd shared = co_await io.open(Module::kPosix, "/shared", true);
    co_await io.write(shared, 10);
    co_await io.read_at(shared, 0, 5);
    co_await io.close(shared);
    if (rank == 0) {
      // Rank-private write-only and read-only files.
      Fd w = co_await io.open(Module::kPosix, "/write-only", true);
      co_await io.write(w, 10);
      co_await io.close(w);
      Fd r = co_await io.open(Module::kPosix, "/read-only", false);
      co_await io.read(r, 10);
      co_await io.close(r);
    }
  };
  fx.engine.spawn(proc(*fx.runtime, 0));
  fx.engine.spawn(proc(*fx.runtime, 1));
  fx.engine.run();
  const FileCountSummary summary = count_files(fx.runtime->finalize());
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.read_write, 1u);
  EXPECT_EQ(summary.write_only, 1u);
  EXPECT_EQ(summary.read_only, 1u);
  EXPECT_EQ(summary.shared, 1u);
}

TEST(Derived, ModuleTotalsSplitByLayer) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    Fd p = co_await io.open(Module::kPosix, "/p", true);
    co_await io.write(p, 100);
    co_await io.close(p);
    Fd s = co_await io.open(Module::kStdio, "/s", false);
    co_await io.read(s, 50);
    co_await io.close(s);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const auto totals = module_totals(fx.runtime->finalize());
  ASSERT_TRUE(totals.contains("POSIX"));
  ASSERT_TRUE(totals.contains("STDIO"));
  EXPECT_EQ(totals.at("POSIX").bytes_written, 100u);
  EXPECT_EQ(totals.at("POSIX").reads, 0);
  EXPECT_EQ(totals.at("STDIO").bytes_read, 50u);
  EXPECT_GT(totals.at("STDIO").read_time, 0.0);
}


TEST(Derived, RegressionDetection) {
  auto log_with_perf = [](double io_time) {
    Log log;
    Log::RecordEntry entry;
    entry.record.rank = 0;
    entry.record.counters.bytes_written = 1024ull * 1024 * 1024;
    entry.record.counters.f_write_time = io_time;
    log.records.push_back(entry);
    return log;
  };
  // History around 1024 MiB/s (1 GiB in ~1 s).
  const std::vector<Log> history = {log_with_perf(1.0), log_with_perf(1.1),
                                    log_with_perf(0.9), log_with_perf(1.05)};
  // A current run 3x slower -> regression.
  const RegressionReport bad =
      check_regression(history, log_with_perf(3.0), 0.8);
  EXPECT_TRUE(bad.is_regression);
  EXPECT_LT(bad.ratio, 0.5);
  EXPECT_NEAR(bad.baseline_mibs, 1024.0 / 1.025, 1.0);
  // A normal run -> no regression.
  const RegressionReport ok =
      check_regression(history, log_with_perf(1.02), 0.8);
  EXPECT_FALSE(ok.is_regression);
  EXPECT_NEAR(ok.ratio, 1.0, 0.15);
}

TEST(Derived, RegressionNeedsHistory) {
  Log log;
  Log::RecordEntry entry;
  entry.record.counters.bytes_written = 1000;
  entry.record.counters.f_write_time = 1.0;
  log.records.push_back(entry);
  const RegressionReport r = check_regression({log}, log, 0.8);
  EXPECT_FALSE(r.is_regression);
  EXPECT_EQ(r.baseline_mibs, 0.0);
  // Degenerate current run (no I/O time) is never flagged.
  const RegressionReport r2 = check_regression({log, log}, Log{}, 0.8);
  EXPECT_FALSE(r2.is_regression);
}


// ------------------------------------------------------ compressed log ----

TEST(LogCompress, VarintRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 21, 1ull << 35,
        ~0ull}) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    std::uint64_t out;
    ASSERT_TRUE(get_varint(buf, pos, out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
  // Truncated input fails cleanly.
  std::string buf;
  put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  std::uint64_t out;
  EXPECT_FALSE(get_varint(buf, pos, out));
}

TEST(LogCompress, ZigzagRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63},
        std::int64_t{-64}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes encode small.
  EXPECT_LT(zigzag_encode(-2), 8u);
}

TEST(LogCompress, RoundTripEqualsUncompressed) {
  Fixture fx(2);
  auto proc = [](Runtime& rt, int rank) -> sim::Task<void> {
    RankIo io = rt.rank(rank);
    const Fd fd = co_await io.open(Module::kPosix, "/c/data", true);
    for (int i = 0; i < 50; ++i) co_await io.write(fd, 4096);
    for (int i = 0; i < 20; ++i) co_await io.read_at(fd, i * 4096ull, 4096);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime, 0));
  fx.engine.spawn(proc(*fx.runtime, 1));
  fx.engine.run();
  const Log original = fx.runtime->finalize();

  std::stringstream stream;
  write_log_compressed(original, stream);
  const auto parsed = read_log_compressed(stream);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), original.records.size());
  EXPECT_EQ(parsed->job_id, original.job_id);
  EXPECT_EQ(parsed->exe, original.exe);
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    const auto& a = parsed->records[i];
    const auto& b = original.records[i];
    EXPECT_EQ(a.record.file_path, b.record.file_path);
    EXPECT_EQ(a.record.counters.bytes_written, b.record.counters.bytes_written);
    EXPECT_EQ(a.record.counters.f_write_time, b.record.counters.f_write_time);
    ASSERT_EQ(a.dxt.size(), b.dxt.size());
    for (std::size_t seg = 0; seg < a.dxt.size(); ++seg) {
      EXPECT_EQ(a.dxt[seg].offset, b.dxt[seg].offset);
      EXPECT_EQ(a.dxt[seg].length, b.dxt[seg].length);
      EXPECT_EQ(a.dxt[seg].start, b.dxt[seg].start);
      EXPECT_EQ(a.dxt[seg].end, b.dxt[seg].end);
    }
  }
}

TEST(LogCompress, CompressesDxtHeavyLogs) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/c/data", true);
    for (int i = 0; i < 2000; ++i) co_await io.write(fd, 4096);
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const Log log = fx.runtime->finalize();

  std::stringstream raw, packed;
  write_log(log, raw);
  write_log_compressed(log, packed);
  EXPECT_LT(packed.str().size() * 2, raw.str().size())
      << "raw=" << raw.str().size() << " packed=" << packed.str().size();
}

TEST(LogCompress, RejectsCorruptInput) {
  std::stringstream empty;
  EXPECT_FALSE(read_log_compressed(empty).has_value());
  std::stringstream wrong_magic("DLCLxxxxxxx");
  EXPECT_FALSE(read_log_compressed(wrong_magic).has_value());
  Fixture fx(1);
  fx.engine.spawn(simple_posix_session(*fx.runtime, 0));
  fx.engine.run();
  std::stringstream full;
  write_log_compressed(fx.runtime->finalize(), full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() * 2 / 3));
  EXPECT_FALSE(read_log_compressed(truncated).has_value());
}


TEST(Derived, AccessPatternClassifiesSequentialRun) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/seq", true);
    for (int i = 0; i < 50; ++i) co_await io.write(fd, 1 << 20);  // cursor
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const AccessPattern p = access_pattern_summary(fx.runtime->finalize());
  EXPECT_EQ(p.total_writes, 50);
  EXPECT_GT(p.consec_write_pct, 90.0);  // 49 of 50 follow directly
  EXPECT_EQ(p.classification, "sequential");
  EXPECT_EQ(p.common_write_size, "100K_1M");  // 1 MiB falls in (100K,1M]
}

TEST(Derived, AccessPatternClassifiesRandomRun) {
  Fixture fx(1);
  auto proc = [](Runtime& rt) -> sim::Task<void> {
    RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/rand", true);
    Rng rng(3);
    std::uint64_t prev = 1u << 30;
    for (int i = 0; i < 60; ++i) {
      // Strictly decreasing offsets: never sequential.
      prev -= static_cast<std::uint64_t>(rng.uniform_int(4096, 1 << 20));
      co_await io.write_at(fd, prev, 512);
    }
    co_await io.close(fd);
  };
  fx.engine.spawn(proc(*fx.runtime));
  fx.engine.run();
  const AccessPattern p = access_pattern_summary(fx.runtime->finalize());
  EXPECT_EQ(p.classification, "random");
  EXPECT_LT(p.seq_write_pct, 10.0);
}

TEST(Derived, AccessPatternEmptyLog) {
  const AccessPattern p = access_pattern_summary(Log{});
  EXPECT_EQ(p.classification, "no-io");
  EXPECT_TRUE(p.common_read_size.empty());
}

}  // namespace
}  // namespace dlc::darshan
