// Tests for the cluster/job layer: node naming, rank placement, barriers,
// job launch bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"

namespace dlc::simhpc {
namespace {

TEST(Cluster, CrayStyleNodeNames) {
  Cluster cluster(ClusterConfig{.node_count = 24, .first_node_id = 40,
                                .node_prefix = "nid"});
  EXPECT_EQ(cluster.node_count(), 24u);
  EXPECT_EQ(cluster.node_name(0), "nid00040");
  EXPECT_EQ(cluster.node_name(6), "nid00046");  // the paper's sample node
  EXPECT_EQ(cluster.node_name(23), "nid00063");
}

TEST(Job, BlockRankPlacement) {
  sim::Engine engine;
  Cluster cluster(ClusterConfig{.node_count = 8});
  JobConfig cfg;
  cfg.node_count = 4;
  cfg.ranks_per_node = 2;
  cfg.first_node = 2;
  Job job(engine, cluster, cfg);
  EXPECT_EQ(job.rank_count(), 8u);
  EXPECT_EQ(job.node_of_rank(0), 2u);
  EXPECT_EQ(job.node_of_rank(1), 2u);
  EXPECT_EQ(job.node_of_rank(2), 3u);
  EXPECT_EQ(job.node_of_rank(7), 5u);
  EXPECT_EQ(job.producer_name(0), cluster.node_name(2));
}

TEST(Job, RankRngIsDeterministicPerRank) {
  sim::Engine engine;
  Cluster cluster(ClusterConfig{});
  JobConfig cfg;
  cfg.seed = 77;
  cfg.node_count = 2;
  cfg.ranks_per_node = 1;
  Job job(engine, cluster, cfg);
  Rng a = job.rank_rng(0, "io");
  Rng b = job.rank_rng(0, "io");
  Rng c = job.rank_rng(1, "io");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Job, LaunchRunsAllRanksAndRecordsTimes) {
  sim::Engine engine;
  Cluster cluster(ClusterConfig{});
  JobConfig cfg;
  cfg.node_count = 3;
  cfg.ranks_per_node = 2;
  Job job(engine, cluster, cfg);
  std::vector<int> ran;
  launch_job(engine, job, [&ran](Job& j, std::size_t rank) -> sim::Task<void> {
    co_await j.engine().delay(static_cast<SimDuration>(rank + 1) * 100);
    ran.push_back(static_cast<int>(rank));
  });
  engine.run();
  EXPECT_EQ(ran.size(), 6u);
  EXPECT_EQ(job.start_time(), 0);
  EXPECT_EQ(job.end_time(), 600);  // slowest rank finishes at 600
  EXPECT_EQ(job.runtime(), 600);
}

TEST(Job, BarrierSynchronisesRanks) {
  sim::Engine engine;
  Cluster cluster(ClusterConfig{});
  JobConfig cfg;
  cfg.node_count = 4;
  cfg.ranks_per_node = 1;
  Job job(engine, cluster, cfg);
  std::vector<SimTime> after_barrier;
  launch_job(engine, job,
             [&after_barrier](Job& j, std::size_t rank) -> sim::Task<void> {
               co_await j.engine().delay(
                   static_cast<SimDuration>(rank) * 1000);
               co_await j.barrier();
               after_barrier.push_back(j.engine().now());
             });
  engine.run();
  ASSERT_EQ(after_barrier.size(), 4u);
  for (SimTime t : after_barrier) EXPECT_EQ(t, 3000);
}

TEST(Job, MultipleJobsShareOneEngine) {
  sim::Engine engine;
  Cluster cluster(ClusterConfig{});
  JobConfig cfg1;
  cfg1.job_id = 1;
  cfg1.node_count = 2;
  JobConfig cfg2;
  cfg2.job_id = 2;
  cfg2.node_count = 2;
  Job job1(engine, cluster, cfg1);
  Job job2(engine, cluster, cfg2);
  int done = 0;
  auto body = [&done](Job& j, std::size_t) -> sim::Task<void> {
    co_await j.engine().delay(10);
    ++done;
  };
  launch_job(engine, job1, body);
  launch_job(engine, job2, body);
  engine.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}

}  // namespace
}  // namespace dlc::simhpc
