// Tests for the file-system models: service-time scaling, contention,
// striping, collective amortisation, variability processes.
#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"
#include "simfs/lustre.hpp"
#include "simfs/nfs.hpp"
#include "simfs/variability.hpp"

namespace dlc::simfs {
namespace {

std::shared_ptr<VariabilityProcess> flat_variability() {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  return std::make_shared<VariabilityProcess>(cfg, 1);
}

NfsConfig quiet_nfs() {
  NfsConfig cfg;
  cfg.jitter_sigma = 0.0;
  cfg.small_io_batch = 1;  // disable client caching for determinism
  return cfg;
}

LustreConfig quiet_lustre() {
  LustreConfig cfg;
  cfg.jitter_sigma = 0.0;
  cfg.small_io_batch = 1;
  return cfg;
}

sim::Task<void> one_write(sim::Engine& engine, FileSystem& fs,
                          std::uint64_t bytes, IoFlags flags,
                          SimDuration& out) {
  out = co_await fs.write(0, "/scratch/f.dat", 0, bytes, flags);
  (void)engine;
}

TEST(Nfs, WriteCostScalesWithBytes) {
  sim::Engine engine;
  NfsModel fs(engine, quiet_nfs(), flat_variability(), 1);
  SimDuration small = 0, large = 0;
  engine.spawn(one_write(engine, fs, 1 << 20, {}, small));
  engine.run();
  sim::Engine engine2;
  NfsModel fs2(engine2, quiet_nfs(), flat_variability(), 1);
  engine2.spawn(one_write(engine2, fs2, 16u << 20, {}, large));
  engine2.run();
  EXPECT_GT(large, small);
  // 16x the bytes should be ~16x the transfer term (latency additive).
  EXPECT_GT(static_cast<double>(large) / static_cast<double>(small), 8.0);
}

TEST(Nfs, ContentionQueuesBehindSharedServer) {
  const auto cfg = quiet_nfs();
  // Sequential baseline.
  sim::Engine e1;
  NfsModel fs1(e1, cfg, flat_variability(), 1);
  SimDuration solo = 0;
  e1.spawn(one_write(e1, fs1, 8u << 20, {}, solo));
  e1.run();
  // 16 concurrent writers (> server_slots=4) must see queueing delay.
  sim::Engine e2;
  NfsModel fs2(e2, cfg, flat_variability(), 1);
  std::vector<SimDuration> durs(16);
  for (int i = 0; i < 16; ++i) {
    e2.spawn(one_write(e2, fs2, 8u << 20, {}, durs[i]));
  }
  e2.run();
  SimDuration max_dur = 0;
  for (auto d : durs) max_dur = std::max(max_dur, d);
  EXPECT_GT(max_dur, 2 * solo);
  EXPECT_GT(fs2.server().wait_time(), 0);
}

TEST(Nfs, SmallIoBatchingAbsorbsClientCachedOps) {
  NfsConfig cfg = quiet_nfs();
  cfg.small_io_batch = 16;
  sim::Engine engine;
  NfsModel fs(engine, cfg, flat_variability(), 1);
  auto writer = [](FileSystem& f, int n, SimDuration& total) -> sim::Task<void> {
    SimDuration sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += co_await f.write(0, "/f", static_cast<std::uint64_t>(i) * 100,
                              100, {});
    }
    total = sum;
  };
  SimDuration batched_total = 0;
  engine.spawn(writer(fs, 64, batched_total));
  engine.run();

  NfsConfig nocache = quiet_nfs();
  sim::Engine engine2;
  NfsModel fs2(engine2, nocache, flat_variability(), 1);
  SimDuration unbatched_total = 0;
  engine2.spawn(writer(fs2, 64, unbatched_total));
  engine2.run();
  EXPECT_LT(batched_total, unbatched_total / 4);
}

TEST(Nfs, CollectiveIsSlowerThanIndependent) {
  // No striped back end on NFS: the two-phase shuffle is pure overhead
  // (Table IIa shows collective NFS as the slowest configuration).
  SimDuration independent = 0, collective = 0;
  {
    sim::Engine engine;
    NfsModel fs(engine, quiet_nfs(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 16u << 20, {}, independent));
    engine.run();
  }
  {
    sim::Engine engine;
    NfsModel fs(engine, quiet_nfs(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 16u << 20,
                           IoFlags{.collective = true, .sync = false},
                           collective));
    engine.run();
  }
  EXPECT_GT(collective, independent);
}

TEST(Lustre, CollectiveBeatsIndependentForLargeSharedIo) {
  // Stripe-aligned aggregator access avoids the extent-lock penalty.
  SimDuration independent = 0, collective = 0;
  {
    sim::Engine engine;
    LustreModel fs(engine, quiet_lustre(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 16u << 20, {}, independent));
    engine.run();
  }
  {
    sim::Engine engine;
    LustreModel fs(engine, quiet_lustre(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 16u << 20,
                           IoFlags{.collective = true, .sync = false},
                           collective));
    engine.run();
  }
  EXPECT_LT(collective, independent);
}

TEST(Nfs, MetadataOpsUseMetadataLatency) {
  sim::Engine engine;
  NfsConfig cfg = quiet_nfs();
  NfsModel fs(engine, cfg, flat_variability(), 1);
  SimDuration open_dur = 0;
  auto proc = [](FileSystem& f, SimDuration& out) -> sim::Task<void> {
    out = co_await f.open(0, "/f", true);
  };
  engine.spawn(proc(fs, open_dur));
  engine.run();
  EXPECT_EQ(open_dur, cfg.metadata_latency);
}

TEST(Nfs, TracksFileSizes) {
  sim::Engine engine;
  NfsModel fs(engine, quiet_nfs(), flat_variability(), 1);
  auto proc = [](FileSystem& f) -> sim::Task<void> {
    co_await f.write(0, "/a", 0, 1000, {});
    co_await f.write(0, "/a", 5000, 2000, {});
    co_await f.write(0, "/a", 100, 10, {});
  };
  engine.spawn(proc(fs));
  engine.run();
  EXPECT_EQ(fs.file_size("/a"), 7000u);
  EXPECT_EQ(fs.file_size("/missing"), 0u);
}

TEST(Lustre, LargeWritesStripeAcrossOsts) {
  sim::Engine engine;
  LustreConfig cfg = quiet_lustre();
  LustreModel fs(engine, cfg, flat_variability(), 1);
  auto proc = [](FileSystem& f) -> sim::Task<void> {
    co_await f.write(0, "/scratch/big", 0, 16u << 20, {});
  };
  engine.spawn(proc(fs));
  engine.run();
  // 16 MiB at 1 MiB stripes over stripe_count=4 OSTs: 4 OSTs busy.
  int busy_osts = 0;
  for (std::size_t i = 0; i < fs.ost_count(); ++i) {
    if (fs.ost(i).busy_time() > 0) ++busy_osts;
  }
  EXPECT_EQ(busy_osts, 4);
}

TEST(Lustre, StripingBeatsSingleServerForLargeIo) {
  // Same nominal bandwidth: Lustre with 4 stripes should complete a large
  // write faster than NFS's single funnel.
  SimDuration lustre_dur = 0, nfs_dur = 0;
  {
    sim::Engine engine;
    LustreModel fs(engine, quiet_lustre(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 64u << 20, {}, lustre_dur));
    engine.run();
  }
  {
    sim::Engine engine;
    NfsModel fs(engine, quiet_nfs(), flat_variability(), 1);
    engine.spawn(one_write(engine, fs, 64u << 20, {}, nfs_dur));
    engine.run();
  }
  EXPECT_LT(lustre_dur, nfs_dur);
}

TEST(Lustre, CollectiveAmortisesLatencyForManySmallChunks) {
  LustreConfig cfg = quiet_lustre();
  cfg.small_io_batch = 1;
  SimDuration independent = 0, collective = 0;
  {
    sim::Engine engine;
    LustreModel fs(engine, cfg, flat_variability(), 1);
    auto proc = [](FileSystem& f, IoFlags flags,
                   SimDuration& out) -> sim::Task<void> {
      SimDuration total = 0;
      for (int i = 0; i < 64; ++i) {
        total += co_await f.write(0, "/f", static_cast<std::uint64_t>(i) * 4096,
                                  4096, flags);
      }
      out = total;
    };
    engine.spawn(proc(fs, IoFlags{}, independent));
    engine.run();
    sim::Engine engine2;
    LustreModel fs2(engine2, cfg, flat_variability(), 1);
    engine2.spawn(proc(fs2, IoFlags{.collective = true, .sync = false},
                       collective));
    engine2.run();
  }
  EXPECT_LT(collective, independent);
}

TEST(Lustre, LayoutMergesContiguousSameOstSpans) {
  sim::Engine engine;
  LustreConfig cfg = quiet_lustre();
  cfg.stripe_count = 1;  // everything lands on one OST
  LustreModel fs(engine, cfg, flat_variability(), 1);
  auto proc = [](FileSystem& f) -> sim::Task<void> {
    co_await f.write(0, "/one-ost", 0, 8u << 20, {});
  };
  engine.spawn(proc(fs));
  engine.run();
  int busy = 0;
  for (std::size_t i = 0; i < fs.ost_count(); ++i) {
    busy += fs.ost(i).busy_time() > 0;
  }
  EXPECT_EQ(busy, 1);
}

TEST(Lustre, OffsetDeterminesOst) {
  sim::Engine engine;
  LustreConfig cfg = quiet_lustre();
  LustreModel fs(engine, cfg, flat_variability(), 1);
  // Two writes to the same stripe index must hit the same OST set.
  auto proc = [](FileSystem& f) -> sim::Task<void> {
    co_await f.write(0, "/f", 0, 1 << 20, {});
    co_await f.read(0, "/f", 0, 1 << 20, {});
  };
  engine.spawn(proc(fs));
  engine.run();
  int busy = 0;
  for (std::size_t i = 0; i < fs.ost_count(); ++i) {
    busy += fs.ost(i).completed() > 0;
  }
  EXPECT_EQ(busy, 1);  // same 1 MiB extent -> same single OST
}


TEST(Lustre, StripeCountLargerThanOstsWraps) {
  sim::Engine engine;
  LustreConfig cfg = quiet_lustre();
  cfg.ost_count = 3;
  cfg.stripe_count = 8;  // > ost_count: layout must wrap, not crash
  LustreModel fs(engine, cfg, flat_variability(), 1);
  auto proc = [](FileSystem& f) -> sim::Task<void> {
    co_await f.write(0, "/wrap", 0, 12u << 20, {});
  };
  engine.spawn(proc(fs));
  engine.run();
  int busy = 0;
  for (std::size_t i = 0; i < fs.ost_count(); ++i) {
    busy += fs.ost(i).busy_time() > 0;
  }
  EXPECT_EQ(busy, 3);
}

TEST(Nfs, ReadCacheHitsAfterWriteMissesOutsideExtent) {
  sim::Engine engine;
  NfsConfig cfg = quiet_nfs();
  cfg.read_cache_bandwidth_bytes_per_sec = 1024.0 * 1024 * 1024;
  cfg.read_cache_hit_rate = 1.0;
  NfsModel fs(engine, cfg, flat_variability(), 1);
  SimDuration cached = 0, uncached = 0, other_node = 0;
  auto proc = [](FileSystem& f, SimDuration& hit, SimDuration& miss,
                 SimDuration& other) -> sim::Task<void> {
    co_await f.write(0, "/rc", 0, 1 << 20, {});
    hit = co_await f.read(0, "/rc", 0, 1 << 20, {});        // covered
    miss = co_await f.read(0, "/rc", 10u << 20, 1 << 20, {});  // beyond
    other = co_await f.read(1, "/rc", 0, 1 << 20, {});      // wrong node
  };
  engine.spawn(proc(fs, cached, uncached, other_node));
  engine.run();
  // The covered read streams from the page cache; the others pay the
  // server's per-op latency + slower bandwidth.
  EXPECT_LT(cached, uncached);
  EXPECT_EQ(uncached, other_node);
  EXPECT_GT(uncached, cached + kMillisecond / 2);
}

TEST(Nfs, FlushIsMetadataPriced) {
  sim::Engine engine;
  NfsConfig cfg = quiet_nfs();
  NfsModel fs(engine, cfg, flat_variability(), 1);
  SimDuration dur = 0;
  auto proc = [](FileSystem& f, SimDuration& out) -> sim::Task<void> {
    out = co_await f.flush(0, "/f");
  };
  engine.spawn(proc(fs, dur));
  engine.run();
  EXPECT_EQ(dur, cfg.metadata_latency);
}

// ----------------------------------------------------------- variability --

TEST(Variability, FlatConfigIsUnity) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  VariabilityProcess v(cfg, 7);
  EXPECT_DOUBLE_EQ(v.factor(0), 1.0);
  EXPECT_DOUBLE_EQ(v.factor(100 * kSecond), 1.0);
}

TEST(Variability, EpochSeedChangesFactorDeterministically) {
  VariabilityConfig cfg;
  cfg.ar_sigma = 0.0;
  VariabilityProcess a1(cfg, 42), a2(cfg, 42), b(cfg, 43);
  EXPECT_DOUBLE_EQ(a1.epoch_factor(), a2.epoch_factor());
  EXPECT_NE(a1.epoch_factor(), b.epoch_factor());
}

TEST(Variability, ArPathIsReproducibleAndTimeVarying) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.2;
  VariabilityProcess a(cfg, 5), b(cfg, 5);
  bool varied = false;
  for (int w = 0; w < 20; ++w) {
    const SimTime t = w * cfg.window + 1;
    EXPECT_DOUBLE_EQ(a.factor(t), b.factor(t));
    if (std::abs(a.factor(t) - 1.0) > 1e-9) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Variability, ArPathHandlesOutOfOrderQueries) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.2;
  VariabilityProcess a(cfg, 5), b(cfg, 5);
  const double late_first = a.factor(15 * cfg.window);
  (void)b.factor(2 * cfg.window);
  const double late_second = b.factor(15 * cfg.window);
  EXPECT_DOUBLE_EQ(late_first, late_second);
}

TEST(Variability, FlatIncidentAppliesInWindow) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  VariabilityProcess v(cfg, 1);
  v.add_incident({.start = 10 * kSecond,
                  .end = 20 * kSecond,
                  .peak_factor = 3.0,
                  .ramp = false,
                  .applies_to = OpClass::kWrite});
  EXPECT_DOUBLE_EQ(v.factor(5 * kSecond, OpClass::kWrite), 1.0);
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kWrite), 3.0);
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kRead), 1.0);
  EXPECT_DOUBLE_EQ(v.factor(20 * kSecond, OpClass::kWrite), 1.0);  // end excl
}

TEST(Variability, RampedIncidentGrowsLinearly) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  VariabilityProcess v(cfg, 1);
  v.add_incident({.start = 0,
                  .end = 100 * kSecond,
                  .peak_factor = 5.0,
                  .ramp = true,
                  .applies_to = OpClass::kAny});
  EXPECT_DOUBLE_EQ(v.factor(0), 1.0);
  EXPECT_DOUBLE_EQ(v.factor(50 * kSecond), 3.0);
  EXPECT_NEAR(v.factor(99 * kSecond), 4.96, 0.01);
}

TEST(Variability, NodeScopedIncidentHitsOnlyThatNode) {
  // The Fig. 6 slow-node scenario: one node's I/O degrades while its
  // peers (and node-less queries) stay at baseline.
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  VariabilityProcess v(cfg, 1);
  v.add_incident({.start = 10 * kSecond,
                  .end = 20 * kSecond,
                  .peak_factor = 12.0,
                  .ramp = false,
                  .applies_to = OpClass::kWrite,
                  .node = 2});
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kWrite, 2), 12.0);
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kWrite, 0), 1.0);
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kWrite, 3), 1.0);
  // Scoped to writes: the slow node's reads are untouched.
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kRead, 2), 1.0);
  // Unknown issuing node (-1): node-scoped incidents don't apply.
  EXPECT_DOUBLE_EQ(v.factor(15 * kSecond, OpClass::kWrite), 1.0);
  // Outside the window the node is back to baseline.
  EXPECT_DOUBLE_EQ(v.factor(25 * kSecond, OpClass::kWrite, 2), 1.0);
}

TEST(Variability, IncidentsCompose) {
  VariabilityConfig cfg;
  cfg.epoch_sigma = 0.0;
  cfg.ar_sigma = 0.0;
  VariabilityProcess v(cfg, 1);
  v.add_incident({.start = 0, .end = 10, .peak_factor = 2.0});
  v.add_incident({.start = 0, .end = 10, .peak_factor = 3.0});
  EXPECT_DOUBLE_EQ(v.factor(5), 6.0);
}

}  // namespace
}  // namespace dlc::simfs
