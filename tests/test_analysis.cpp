// Tests for the analysis layer: DataFrame ops (filter, group_by, sort),
// figure pipelines on synthetic DSOS data, renderers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/correlate.hpp"
#include "analysis/figures.hpp"
#include "analysis/frame.hpp"
#include "analysis/render.hpp"
#include "core/schema_darshan.hpp"
#include "json/parser.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dlc::analysis {
namespace {

DataFrame sample_frame() {
  DataFrame df;
  df.add_int_column("job", {1, 1, 1, 2, 2, 2});
  df.add_string_column("op", {"read", "write", "read", "read", "write",
                              "write"});
  df.add_double_column("dur", {0.1, 1.0, 0.3, 0.2, 2.0, 4.0});
  return df;
}

TEST(Frame, BasicAccessors) {
  const DataFrame df = sample_frame();
  EXPECT_EQ(df.rows(), 6u);
  EXPECT_EQ(df.cols(), 3u);
  EXPECT_TRUE(df.has_column("op"));
  EXPECT_FALSE(df.has_column("nope"));
  EXPECT_EQ(df.column_type("job"), ColType::kInt);
  EXPECT_EQ(df.column_type("dur"), ColType::kDouble);
  EXPECT_EQ(df.column_type("op"), ColType::kString);
  EXPECT_EQ(df.get_int(3, "job"), 2);
  EXPECT_EQ(df.get_string(1, "op"), "write");
  EXPECT_DOUBLE_EQ(df.get_number(1, "job"), 1.0);  // int promotion
  EXPECT_THROW(df.get_int(0, "nope"), std::out_of_range);
}

TEST(Frame, ColumnLengthMismatchThrows) {
  DataFrame df;
  df.add_int_column("a", {1, 2, 3});
  EXPECT_THROW(df.add_int_column("b", {1}), std::invalid_argument);
}

TEST(Frame, FilterAndWhere) {
  const DataFrame df = sample_frame();
  const DataFrame reads = df.where_string("op", "read");
  EXPECT_EQ(reads.rows(), 3u);
  const DataFrame job2 = df.where_int("job", 2);
  EXPECT_EQ(job2.rows(), 3u);
  const DataFrame slow = df.filter([](const DataFrame& f, std::size_t r) {
    return f.get_double(r, "dur") > 0.5;
  });
  EXPECT_EQ(slow.rows(), 3u);
}

TEST(Frame, GroupByMultiKeyAggregates) {
  const DataFrame df = sample_frame();
  const DataFrame agg = df.group_by(
      {"job", "op"},
      {{.column = "", .op = Agg::kCount, .out_name = "n"},
       {.column = "dur", .op = Agg::kMean, .out_name = "mean"},
       {.column = "dur", .op = Agg::kSum, .out_name = "total"},
       {.column = "dur", .op = Agg::kMax, .out_name = "max"}});
  ASSERT_EQ(agg.rows(), 4u);  // (1,read),(1,write),(2,read),(2,write)
  // Deterministic (key-sorted) order: find (1, read).
  bool found = false;
  for (std::size_t r = 0; r < agg.rows(); ++r) {
    if (agg.get_int(r, "job") == 1 && agg.get_string(r, "op") == "read") {
      EXPECT_DOUBLE_EQ(agg.get_double(r, "n"), 2.0);
      EXPECT_DOUBLE_EQ(agg.get_double(r, "mean"), 0.2);
      EXPECT_DOUBLE_EQ(agg.get_double(r, "total"), 0.4);
      EXPECT_DOUBLE_EQ(agg.get_double(r, "max"), 0.3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Frame, GroupByStdAndCi) {
  DataFrame df;
  df.add_string_column("k", {"a", "a", "a", "a", "a"});
  df.add_double_column("v", {1, 2, 3, 4, 5});
  const DataFrame agg = df.group_by(
      {"k"}, {{.column = "v", .op = Agg::kStd, .out_name = "sd"},
              {.column = "v", .op = Agg::kCi95, .out_name = "ci"}});
  ASSERT_EQ(agg.rows(), 1u);
  EXPECT_NEAR(agg.get_double(0, "sd"), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(agg.get_double(0, "ci"), 2.776 * std::sqrt(0.5), 1e-9);
}

TEST(Frame, SortByNumericAndString) {
  const DataFrame df = sample_frame();
  const DataFrame by_dur = df.sort_by("dur");
  for (std::size_t r = 1; r < by_dur.rows(); ++r) {
    EXPECT_LE(by_dur.get_double(r - 1, "dur"), by_dur.get_double(r, "dur"));
  }
  const DataFrame desc = df.sort_by("dur", /*descending=*/true);
  EXPECT_DOUBLE_EQ(desc.get_double(0, "dur"), 4.0);
  const DataFrame by_op = df.sort_by("op");
  EXPECT_EQ(by_op.get_string(0, "op"), "read");
  EXPECT_EQ(by_op.get_string(5, "op"), "write");
}

TEST(Frame, HeadAndCsv) {
  const DataFrame df = sample_frame();
  EXPECT_EQ(df.head(2).rows(), 2u);
  EXPECT_EQ(df.head(100).rows(), 6u);
  const std::string csv = df.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "job,op,dur");
  EXPECT_NE(csv.find("1,read,"), std::string::npos);
}

TEST(Frame, NumbersExtractsColumn) {
  const DataFrame df = sample_frame();
  const auto durs = df.numbers("dur");
  ASSERT_EQ(durs.size(), 6u);
  EXPECT_DOUBLE_EQ(durs[5], 4.0);
  const auto jobs = df.numbers("job");
  EXPECT_DOUBLE_EQ(jobs[0], 1.0);
}

// ------------------------------------------------------- figure helpers ---

/// Builds a DSOS cluster holding synthetic darshan_data rows.
struct SyntheticDb {
  std::shared_ptr<dsos::DsosCluster> db;
  dsos::SchemaPtr schema;

  SyntheticDb() {
    dsos::ClusterConfig cfg;
    cfg.shard_count = 2;
    cfg.parallel_query = false;
    db = std::make_shared<dsos::DsosCluster>(cfg);
    schema = core::darshan_data_schema();
    db->register_schema(schema);
  }

  void add(std::uint64_t job, std::int64_t rank, const std::string& node,
           const std::string& op, double ts, double dur, std::int64_t len) {
    db->insert(dsos::make_object(
        schema,
        {std::string("POSIX"), std::uint64_t{1}, node, std::int64_t{0},
         std::string("N/A"), rank, std::int64_t{-1}, std::uint64_t{42},
         std::string("N/A"), std::int64_t{len - 1}, std::string("MOD"), job,
         op, std::int64_t{1}, std::int64_t{0}, std::int64_t{-1}, dur, len,
         std::int64_t{-1}, std::int64_t{-1}, std::int64_t{-1},
         std::string("N/A"), std::int64_t{-1}, ts}));
  }
};

TEST(Figures, Fig5CountsOpsAcrossJobs) {
  SyntheticDb s;
  // job 1: 2 reads, 1 write; job 2: 4 reads, 1 write.
  s.add(1, 0, "n0", "read", 1.0, 0.1, 10);
  s.add(1, 0, "n0", "read", 2.0, 0.1, 10);
  s.add(1, 0, "n0", "write", 3.0, 0.1, 10);
  for (int i = 0; i < 4; ++i) s.add(2, 0, "n0", "read", 1.0 + i, 0.1, 10);
  s.add(2, 0, "n0", "write", 9.0, 0.1, 10);

  const DataFrame counts = fig5_op_counts(*s.db, {1, 2});
  ASSERT_EQ(counts.rows(), 2u);  // read, write
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    if (counts.get_string(r, "op") == "read") {
      EXPECT_DOUBLE_EQ(counts.get_double(r, "mean_count"), 3.0);
      EXPECT_GT(counts.get_double(r, "ci95"), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(counts.get_double(r, "mean_count"), 1.0);
      EXPECT_DOUBLE_EQ(counts.get_double(r, "ci95"), 0.0);
    }
  }
}

TEST(Figures, Fig6CountsPerNodeOpensCloses) {
  SyntheticDb s;
  s.add(1, 0, "nodeA", "open", 1.0, 0.0, -1);
  s.add(1, 0, "nodeA", "open", 2.0, 0.0, -1);
  s.add(1, 1, "nodeB", "open", 1.5, 0.0, -1);
  s.add(1, 0, "nodeA", "close", 3.0, 0.0, -1);
  s.add(1, 0, "nodeA", "read", 2.5, 0.1, 10);  // excluded
  const DataFrame per_node = fig6_requests_per_node(*s.db, {1});
  ASSERT_EQ(per_node.rows(), 3u);  // (A,open)(A,close)(B,open)
  double a_open = 0;
  for (std::size_t r = 0; r < per_node.rows(); ++r) {
    if (per_node.get_string(r, "ProducerName") == "nodeA" &&
        per_node.get_string(r, "op") == "open") {
      a_open = per_node.get_double(r, "count");
    }
  }
  EXPECT_DOUBLE_EQ(a_open, 2.0);
}

TEST(Figures, Fig7RankDurationsAndAnomaly) {
  SyntheticDb s;
  // Jobs 1,3,4: fast reads.  Job 2: slow reads.
  for (std::uint64_t job : {1u, 3u, 4u}) {
    s.add(job, 0, "n0", "read", 1.0, 0.05, 10);
    s.add(job, 1, "n0", "read", 1.0, 0.05, 10);
  }
  s.add(2, 0, "n0", "read", 1.0, 6.75, 10);
  s.add(2, 1, "n0", "read", 1.0, 6.75, 10);

  const DataFrame summary = fig7_job_summary(*s.db, {1, 2, 3, 4});
  EXPECT_EQ(find_anomalous_job(summary, "read"), 2u);

  const DataFrame ranks = fig7_rank_durations(*s.db, {2});
  ASSERT_EQ(ranks.rows(), 2u);
  EXPECT_DOUBLE_EQ(ranks.get_double(0, "mean_dur"), 6.75);
  EXPECT_DOUBLE_EQ(ranks.get_double(0, "count"), 1.0);
}

TEST(Figures, AnomalyNeedsThreeJobs) {
  SyntheticDb s;
  s.add(1, 0, "n0", "read", 1.0, 0.05, 10);
  s.add(2, 0, "n0", "read", 1.0, 9.0, 10);
  const DataFrame summary = fig7_job_summary(*s.db, {1, 2});
  EXPECT_EQ(find_anomalous_job(summary, "read"), 0u);
}

TEST(Figures, Fig8TimelineIsRelativeAndSorted) {
  SyntheticDb s;
  s.add(1, 0, "n0", "write", 100.0, 1.0, 10);
  s.add(1, 1, "n0", "write", 105.0, 2.0, 10);
  s.add(1, 0, "n0", "read", 103.0, 0.5, 10);
  s.add(1, 0, "n0", "open", 99.0, 0.0, -1);  // excluded from timeline
  const DataFrame tl = fig8_timeline(*s.db, 1);
  ASSERT_EQ(tl.rows(), 3u);
  EXPECT_DOUBLE_EQ(tl.get_double(0, "rel_time_s"), 0.0);
  EXPECT_DOUBLE_EQ(tl.get_double(1, "rel_time_s"), 3.0);
  EXPECT_DOUBLE_EQ(tl.get_double(2, "rel_time_s"), 5.0);
  EXPECT_EQ(tl.get_string(1, "op"), "read");
}

TEST(Figures, Fig9BucketsCountsAndBytes) {
  SyntheticDb s;
  s.add(1, 0, "n0", "write", 1.0, 0.1, 100);
  s.add(1, 1, "n0", "write", 2.0, 0.1, 100);
  s.add(1, 0, "n0", "write", 15.0, 0.1, 100);
  s.add(1, 0, "n0", "read", 16.0, 0.1, 50);
  const DataFrame buckets = fig9_throughput_buckets(*s.db, 1, 10.0);
  ASSERT_EQ(buckets.rows(), 3u);  // [0,10)write, [10,20)write, [10,20)read
  EXPECT_DOUBLE_EQ(buckets.get_double(0, "bucket_s"), 0.0);
  EXPECT_DOUBLE_EQ(buckets.get_double(0, "bytes"), 200.0);
  EXPECT_DOUBLE_EQ(buckets.get_double(0, "count"), 2.0);
  // Buckets ordered numerically.
  for (std::size_t r = 1; r < buckets.rows(); ++r) {
    EXPECT_LE(buckets.get_double(r - 1, "bucket_s"),
              buckets.get_double(r, "bucket_s"));
  }
}

TEST(Figures, EmptyDbYieldsEmptyFrames) {
  SyntheticDb s;
  EXPECT_EQ(fig5_op_counts(*s.db, {1}).rows(), 0u);
  EXPECT_EQ(fig8_timeline(*s.db, 1).rows(), 0u);
  EXPECT_EQ(fig9_throughput_buckets(*s.db, 1).rows(), 0u);
}

// -------------------------------------------------------------- render ----

TEST(Render, AsciiBarChartScalesAndLabels) {
  const std::string chart =
      ascii_bar_chart({"read", "write"}, {10.0, 20.0}, {1.0, 2.0}, 40);
  EXPECT_NE(chart.find("read"), std::string::npos);
  EXPECT_NE(chart.find("20.00 +/- 2.00"), std::string::npos);
  // write bar is full width, read bar roughly half.
  const auto lines = dlc::split(chart, '\n');
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_EQ(hashes(lines[1]), 40);
  EXPECT_NEAR(static_cast<double>(hashes(lines[0])), 20.0, 1.0);
}

TEST(Render, AsciiBarChartHandlesBadInput) {
  EXPECT_TRUE(ascii_bar_chart({}, {}).empty());
  EXPECT_TRUE(ascii_bar_chart({"a"}, {1.0, 2.0}).empty());
}

TEST(Render, AsciiScatterPlacesGlyphs) {
  ScatterSeries s{'x', {0.0, 1.0}, {0.0, 1.0}};
  const std::string plot = ascii_scatter({s}, 10, 5, "t", "v");
  EXPECT_NE(plot.find('x'), std::string::npos);
  EXPECT_NE(plot.find("t: [0, 1]"), std::string::npos);
  EXPECT_EQ(ascii_scatter({}, 10, 5), "(no data)\n");
}

TEST(Render, GnuplotScriptContainsSeriesAndData) {
  DataFrame df;
  df.add_double_column("t", {1.0, 2.0});
  df.add_double_column("v", {10.0, 20.0});
  df.add_string_column("op", {"read", "write"});
  const std::string script = gnuplot_script(df, "t", "v", "op", "demo");
  EXPECT_NE(script.find("set title \"demo\""), std::string::npos);
  EXPECT_NE(script.find("title \"read\""), std::string::npos);
  EXPECT_NE(script.find("2 20"), std::string::npos);
}

TEST(Render, GrafanaPanelJsonIsValidJson) {
  DataFrame df;
  df.add_double_column("t", {1.0, 2.0, 3.0});
  df.add_double_column("v", {10.0, 20.0, 30.0});
  df.add_string_column("op", {"read", "write", "read"});
  const std::string panel = grafana_panel_json(df, "t", "v", "op", "p");
  const auto doc = json::parse(panel);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("title"), "p");
  const auto& series = doc->find("series")->as_array();
  ASSERT_EQ(series.size(), 2u);  // read, write
  EXPECT_EQ(series[0].get_string("target"), "read");
  EXPECT_EQ(series[0].find("datapoints")->as_array().size(), 2u);
}


// ----------------------------------------------------------- correlate ----

TEST(Correlate, PearsonKnownValues) {
  EXPECT_NEAR(*pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(*pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  const auto r = pearson({1, 2, 3, 4, 5}, {2, 1, 4, 3, 5});
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(*r, 0.5);
  EXPECT_LT(*r, 1.0);
}

TEST(Correlate, PearsonDegenerateCases) {
  EXPECT_FALSE(pearson({1, 2}, {1, 2}).has_value());       // too few
  EXPECT_FALSE(pearson({1, 1, 1}, {1, 2, 3}).has_value()); // zero variance
  EXPECT_FALSE(pearson({1, 2, 3}, {5, 5, 5}).has_value());
}

TEST(Correlate, AlignNearestPicksClosestWithinGap) {
  TimeSeries series;
  series.name = "m";
  series.t = {0, 10, 20, 30};
  series.v = {100, 110, 120, 130};
  const AlignedPairs pairs =
      align_nearest(series, {1.0, 14.0, 26.0, 95.0}, {1, 2, 3, 4}, 5.0);
  ASSERT_EQ(pairs.metric.size(), 3u);  // 95.0 has no neighbour within 5s
  EXPECT_DOUBLE_EQ(pairs.metric[0], 100);
  EXPECT_DOUBLE_EQ(pairs.metric[1], 110);
  EXPECT_DOUBLE_EQ(pairs.metric[2], 130);  // 26 -> 30 closer than 20
  EXPECT_DOUBLE_EQ(pairs.value[2], 3);
}

TEST(Correlate, AlignNearestEmptySeries) {
  const AlignedPairs pairs = align_nearest(TimeSeries{}, {1.0}, {1.0});
  EXPECT_TRUE(pairs.metric.empty());
}

TEST(Correlate, CorrelateDurationsFindsDriver) {
  // Timeline where write duration tracks a congestion series exactly and
  // a noise series does not.
  DataFrame timeline;
  DataFrame::DoubleCol t, dur;
  DataFrame::StringCol op;
  DataFrame::IntCol rank;
  Rng rng(3);
  TimeSeries congestion{"congestion", {}, {}};
  TimeSeries noise{"noise", {}, {}};
  for (int i = 0; i < 60; ++i) {
    const double time = i * 10.0;
    const double level = 1.0 + 0.05 * i;
    congestion.t.push_back(time);
    congestion.v.push_back(level);
    noise.t.push_back(time);
    noise.v.push_back(rng.normal(5.0, 1.0));
    t.push_back(time);
    dur.push_back(level * 2.0 + rng.normal(0.0, 0.05));
    op.push_back("write");
    rank.push_back(0);
  }
  timeline.add_double_column("rel_time_s", std::move(t));
  timeline.add_double_column("dur_s", std::move(dur));
  timeline.add_string_column("op", std::move(op));
  timeline.add_int_column("rank", std::move(rank));

  const DataFrame corr =
      correlate_durations(timeline, {congestion, noise}, 6.0);
  ASSERT_EQ(corr.rows(), 2u);
  double r_congestion = 0, r_noise = 0;
  for (std::size_t r = 0; r < corr.rows(); ++r) {
    if (corr.get_string(r, "metric") == "congestion") {
      r_congestion = corr.get_double(r, "r");
    } else {
      r_noise = corr.get_double(r, "r");
    }
  }
  EXPECT_GT(r_congestion, 0.95);
  EXPECT_LT(std::abs(r_noise), 0.5);
}

TEST(Correlate, DegenerateDurationsReportZero) {
  DataFrame timeline;
  timeline.add_double_column("rel_time_s", {0, 10, 20, 30});
  timeline.add_double_column("dur_s", {0.05, 0.05, 0.05, 0.05});
  timeline.add_string_column("op", {"read", "read", "read", "read"});
  timeline.add_int_column("rank", {0, 0, 0, 0});
  TimeSeries m{"m", {0, 10, 20, 30}, {1, 2, 3, 4}};
  const DataFrame corr = correlate_durations(timeline, {m}, 6.0);
  ASSERT_EQ(corr.rows(), 1u);
  EXPECT_DOUBLE_EQ(corr.get_double(0, "r"), 0.0);
}

TEST(Correlate, BucketingSmoothsNoise) {
  // Event durations = trend + heavy per-event noise; bucket means should
  // correlate far better than raw events.
  DataFrame timeline;
  DataFrame::DoubleCol t, dur;
  DataFrame::StringCol op;
  DataFrame::IntCol rank;
  Rng rng(9);
  TimeSeries trend{"trend", {}, {}};
  for (int i = 0; i < 400; ++i) {
    const double time = i * 1.0;
    t.push_back(time);
    dur.push_back(1.0 + 0.01 * i + rng.normal(0.0, 1.0));
    op.push_back("write");
    rank.push_back(0);
  }
  for (int i = 0; i < 40; ++i) {
    trend.t.push_back(i * 10.0 + 5.0);
    trend.v.push_back(1.0 + 0.1 * i);
  }
  timeline.add_double_column("rel_time_s", std::move(t));
  timeline.add_double_column("dur_s", std::move(dur));
  timeline.add_string_column("op", std::move(op));
  timeline.add_int_column("rank", std::move(rank));

  const double raw =
      correlate_durations(timeline, {trend}, 6.0).get_double(0, "r");
  const double bucketed =
      correlate_durations(timeline, {trend}, 6.0, 20.0).get_double(0, "r");
  EXPECT_GT(bucketed, raw);
  EXPECT_GT(bucketed, 0.9);
}

TEST(Correlate, RollingMeanAndOutliers) {
  const std::vector<double> v{1, 1, 1, 10, 1, 1, 1};
  const auto smooth = rolling_mean(v, 3);
  ASSERT_EQ(smooth.size(), v.size());
  EXPECT_NEAR(smooth[3], 4.0, 1e-12);
  EXPECT_NEAR(smooth[0], 1.0, 1e-12);
  EXPECT_EQ(rolling_mean(v, 1), v);

  const auto mask = outliers(v, 1.5);
  EXPECT_TRUE(mask[3]);
  EXPECT_FALSE(mask[0]);
  // Constant vector: no outliers, no NaNs.
  const auto flat = outliers({2, 2, 2, 2});
  for (bool b : flat) EXPECT_FALSE(b);
}


TEST(Render, AsciiHeatmapShadesByIntensity) {
  const std::vector<std::vector<double>> rows = {
      {0.0, 5.0, 10.0},
      {10.0, 0.0, 0.0},
  };
  const std::string map = ascii_heatmap(rows, {"rank0", "rank1"});
  const auto lines = dlc::split(map, '\n');
  ASSERT_GE(lines.size(), 2u);
  // Max cells render as '@', zero cells as ' '.
  EXPECT_NE(lines[0].find('@'), std::string::npos);
  EXPECT_NE(lines[1].find('@'), std::string::npos);
  EXPECT_NE(lines[0].find("rank0"), std::string::npos);
  // Row 0 first cell is blank (zero intensity).
  const std::size_t bar = lines[0].find('|');
  EXPECT_EQ(lines[0][bar + 1], ' ');
}

TEST(Render, AsciiHeatmapHandlesRaggedAndEmpty) {
  EXPECT_EQ(ascii_heatmap({}), "(no data)\n");
  const std::string map = ascii_heatmap({{1.0, 2.0, 3.0}, {4.0}});
  const auto lines = dlc::split(map, '\n');
  ASSERT_GE(lines.size(), 2u);
  // Ragged second row padded: same rendered width.
  EXPECT_EQ(lines[0].size(), lines[1].size());
}

TEST(Render, AsciiHeatmapDownSamplesColumns) {
  std::vector<double> wide(1000, 1.0);
  wide[999] = 10.0;
  const std::string map = ascii_heatmap({wide}, {}, 50);
  const auto lines = dlc::split(map, '\n');
  // 50 cells + 2 border chars.
  EXPECT_EQ(lines[0].size(), 52u);
  // The peak survives down-sampling (max pooling).
  EXPECT_NE(lines[0].find('@'), std::string::npos);
}


TEST(Figures, HotFilesRanksByIoTime) {
  SyntheticDb s;
  // record_id is fixed at 42 in SyntheticDb::add; extend with a second
  // file by re-using add and patching via a second SyntheticDb is clumsy,
  // so drive hot_files with one hot file and verify ordering fields.
  for (int i = 0; i < 5; ++i) s.add(1, 0, "n0", "write", i * 1.0, 2.0, 1000);
  s.add(1, 0, "n0", "open", 0.0, 0.0, -1);  // excluded (not a data op)
  const DataFrame hot = hot_files(*s.db, {1}, 10);
  ASSERT_EQ(hot.rows(), 1u);
  EXPECT_EQ(hot.get_int(0, "record_id"), 42);
  EXPECT_DOUBLE_EQ(hot.get_double(0, "ops"), 5.0);
  EXPECT_DOUBLE_EQ(hot.get_double(0, "bytes"), 5000.0);
  EXPECT_DOUBLE_EQ(hot.get_double(0, "total_dur"), 10.0);
}

TEST(Figures, HotFilesTruncatesToTopN) {
  // Build a db whose events span many distinct record ids.
  dsos::ClusterConfig cfg;
  cfg.shard_count = 1;
  cfg.parallel_query = false;
  auto db = std::make_shared<dsos::DsosCluster>(cfg);
  const auto schema = core::darshan_data_schema();
  db->register_schema(schema);
  for (std::uint64_t file = 0; file < 20; ++file) {
    db->insert(dsos::make_object(
        schema,
        {std::string("POSIX"), std::uint64_t{1}, std::string("n0"),
         std::int64_t{0}, std::string("N/A"), std::int64_t{0},
         std::int64_t{-1}, file, std::string("N/A"), std::int64_t{99},
         std::string("MOD"), std::uint64_t{1}, std::string("write"),
         std::int64_t{1}, std::int64_t{0}, std::int64_t{-1},
         static_cast<double>(file), std::int64_t{100}, std::int64_t{-1},
         std::int64_t{-1}, std::int64_t{-1}, std::string("N/A"),
         std::int64_t{-1}, 1.0}));
  }
  const DataFrame hot = hot_files(*db, {1}, 5);
  ASSERT_EQ(hot.rows(), 5u);
  // Descending by total_dur: files 19..15.
  EXPECT_EQ(hot.get_int(0, "record_id"), 19);
  EXPECT_EQ(hot.get_int(4, "record_id"), 15);
}


TEST(Frame, GroupByPercentiles) {
  DataFrame df;
  DataFrame::StringCol k;
  DataFrame::DoubleCol v;
  for (int i = 1; i <= 100; ++i) {
    k.push_back("a");
    v.push_back(static_cast<double>(i));
  }
  df.add_string_column("k", std::move(k));
  df.add_double_column("v", std::move(v));
  const DataFrame agg = df.group_by(
      {"k"}, {{.column = "v", .op = Agg::kP50, .out_name = "p50"},
              {.column = "v", .op = Agg::kP95, .out_name = "p95"}});
  ASSERT_EQ(agg.rows(), 1u);
  EXPECT_NEAR(agg.get_double(0, "p50"), 50.5, 0.01);
  EXPECT_NEAR(agg.get_double(0, "p95"), 95.05, 0.01);
}


TEST(Frame, LeftJoinMatchesAndFillsDefaults) {
  DataFrame left;
  left.add_int_column("rank", {0, 1, 2});
  left.add_double_column("dur", {1.0, 2.0, 3.0});
  DataFrame right;
  right.add_int_column("rank", {0, 2, 2});
  right.add_string_column("node", {"a", "c", "c2"});
  right.add_double_column("dur", {9.0, 8.0, 7.0});  // name collision

  const DataFrame joined = left.join(right, {"rank"});
  // rank 0 -> 1 match, rank 1 -> none, rank 2 -> 2 matches: 4 rows.
  ASSERT_EQ(joined.rows(), 4u);
  EXPECT_TRUE(joined.has_column("dur_right"));
  EXPECT_EQ(joined.get_int(0, "rank"), 0);
  EXPECT_EQ(joined.get_string(0, "node"), "a");
  EXPECT_DOUBLE_EQ(joined.get_double(0, "dur_right"), 9.0);
  // Unmatched left row keeps values, right columns default.
  EXPECT_EQ(joined.get_int(1, "rank"), 1);
  EXPECT_EQ(joined.get_string(1, "node"), "");
  EXPECT_DOUBLE_EQ(joined.get_double(1, "dur_right"), 0.0);
  // Fan-out rows.
  EXPECT_EQ(joined.get_string(2, "node"), "c");
  EXPECT_EQ(joined.get_string(3, "node"), "c2");
}

TEST(Frame, JoinOnMultipleKeys) {
  DataFrame left;
  left.add_int_column("job", {1, 1, 2});
  left.add_string_column("op", {"read", "write", "read"});
  DataFrame right;
  right.add_int_column("job", {1, 2});
  right.add_string_column("op", {"write", "read"});
  right.add_double_column("budget", {10.0, 20.0});
  const DataFrame joined = left.join(right, {"job", "op"});
  ASSERT_EQ(joined.rows(), 3u);
  EXPECT_DOUBLE_EQ(joined.get_double(0, "budget"), 0.0);   // (1,read) no match
  EXPECT_DOUBLE_EQ(joined.get_double(1, "budget"), 10.0);  // (1,write)
  EXPECT_DOUBLE_EQ(joined.get_double(2, "budget"), 20.0);  // (2,read)
}

}  // namespace
}  // namespace dlc::analysis
