// Tests for the HPC Web Services layer: URL parsing, API routes, panel
// modules, the HTTP server round-trip, dashboard rendering.
#include <gtest/gtest.h>

#include <memory>

#include "core/schema_darshan.hpp"
#include "dsos/ingest.hpp"
#include "json/parser.hpp"
#include "rollup/engine.hpp"
#include "util/cpu.hpp"
#include "rollup/policy.hpp"
#include "websvc/dashboard.hpp"
#include "websvc/http.hpp"
#include "websvc/service.hpp"

namespace dlc::websvc {
namespace {

/// Small populated database: 2 jobs x 2 ranks x a few ops.
std::shared_ptr<dsos::DsosCluster> demo_db() {
  dsos::ClusterConfig cfg;
  cfg.shard_count = 2;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  auto db = std::make_shared<dsos::DsosCluster>(cfg);
  const auto schema = core::darshan_data_schema();
  db->register_schema(schema);
  auto add = [&](std::uint64_t job, std::int64_t rank, const std::string& op,
                 double ts, double dur, std::int64_t len) {
    db->insert(dsos::make_object(
        schema,
        {std::string("POSIX"), std::uint64_t{99066}, std::string("nid00040"),
         std::int64_t{0}, std::string("N/A"), rank, std::int64_t{-1},
         std::uint64_t{7}, std::string("N/A"), std::int64_t{len - 1},
         std::string("MOD"), job, op, std::int64_t{1}, std::int64_t{0},
         std::int64_t{-1}, dur, len, std::int64_t{-1}, std::int64_t{-1},
         std::int64_t{-1}, std::string("N/A"), std::int64_t{-1}, ts}));
  };
  for (std::uint64_t job : {1u, 2u}) {
    for (std::int64_t rank : {0, 1}) {
      add(job, rank, "write", 100.0 + static_cast<double>(job), 0.5, 1024);
      add(job, rank, "read", 200.0 + static_cast<double>(job), 0.1, 512);
    }
  }
  return db;
}

TEST(Service, SplitUrlDecodesParams) {
  std::string path;
  Params params;
  DashboardService::split_url("/api/query?index=time&op=read%2Bwrite&x=a+b",
                              path, params);
  EXPECT_EQ(path, "/api/query");
  EXPECT_EQ(params.at("index"), "time");
  EXPECT_EQ(params.at("op"), "read+write");
  EXPECT_EQ(params.at("x"), "a b");
  DashboardService::split_url("/plain", path, params);
  EXPECT_EQ(path, "/plain");
  EXPECT_TRUE(params.empty());
}

TEST(Service, HealthReportsObjectCount) {
  DashboardService service(demo_db());
  const Response r = service.handle("/api/health");
  EXPECT_EQ(r.status, 200);
  const auto doc = json::parse(r.body);
  EXPECT_EQ(doc->get_string("status"), "ok");
  EXPECT_EQ(doc->get_uint("objects"), 8u);
}

TEST(Service, SchemasListsIndices) {
  DashboardService service(demo_db());
  const Response r = service.handle("/api/schemas");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("job_rank_time"), std::string::npos);
  EXPECT_NE(r.body.find("seg_timestamp"), std::string::npos);
}

TEST(Service, JobsEnumeratesDistinctJobs) {
  DashboardService service(demo_db());
  const Response r = service.handle("/api/jobs");
  const auto doc = json::parse(r.body);
  const auto& jobs = doc->find("jobs")->as_array();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].get_uint("job_id"), 1u);
  EXPECT_EQ(jobs[0].get_uint("rows"), 4u);
}

TEST(Service, QueryFiltersAndLimits) {
  DashboardService service(demo_db());
  const Response r =
      service.handle("/api/query?index=job_rank_time&job_id=2&rank=1");
  ASSERT_EQ(r.status, 200);
  const auto doc = json::parse(r.body);
  EXPECT_EQ(doc->get_uint("total"), 2u);
  EXPECT_EQ(doc->get_uint("returned"), 2u);

  const Response limited =
      service.handle("/api/query?index=time&limit=3");
  const auto ldoc = json::parse(limited.body);
  EXPECT_EQ(ldoc->get_uint("total"), 8u);
  EXPECT_EQ(ldoc->get_uint("returned"), 3u);
}

TEST(Service, QueryRejectsUnknownIndex) {
  DashboardService service(demo_db());
  EXPECT_EQ(service.handle("/api/query?index=bogus").status, 400);
}

TEST(Service, PanelRunsFigureModules) {
  DashboardService service(demo_db());
  const Response r = service.handle("/api/panel?module=fig5&job=1,2");
  ASSERT_EQ(r.status, 200);
  const auto doc = json::parse(r.body);
  const auto* data = doc->find("data");
  ASSERT_TRUE(data);
  const auto& columns = data->find("columns")->as_array();
  ASSERT_EQ(columns.size(), 3u);  // op, mean_count, ci95
  const auto& rows = data->find("rows")->as_array();
  ASSERT_EQ(rows.size(), 2u);  // read, write
}

TEST(Service, PanelUnknownModuleIs404) {
  DashboardService service(demo_db());
  EXPECT_EQ(service.handle("/api/panel?module=nope").status, 404);
  EXPECT_EQ(service.handle("/api/panel").status, 400);
}

TEST(Service, CustomModuleRegistration) {
  DashboardService service(demo_db());
  service.register_module(
      "row_count", [](const dsos::DsosCluster& db, const Params&) {
        analysis::DataFrame df;
        df.add_int_column(
            "rows", {static_cast<std::int64_t>(db.total_objects())});
        return df;
      });
  const Response r = service.handle("/api/panel?module=row_count");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("[8]"), std::string::npos);
}

TEST(Service, CsvExportsRows) {
  DashboardService service(demo_db());
  const Response r = service.handle("/api/csv?index=time&op=read");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/csv");
  // Header + 4 read rows (+ trailing newline).
  EXPECT_EQ(std::count(r.body.begin(), r.body.end(), '\n'), 5);
}

TEST(Service, UnknownRouteIs404) {
  DashboardService service(demo_db());
  EXPECT_EQ(service.handle("/api/nope").status, 404);
  EXPECT_EQ(service.handle("/").status, 404);
}

TEST(Http, RoundTripOverLoopback) {
  DashboardService service(demo_db());
  HttpServer server(0, HttpServer::wrap(service));
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string content_type;
  const auto body =
      http_get(server.port(), "/api/health", &status, &content_type);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(content_type, "application/json");
  const auto doc = json::parse(*body);
  EXPECT_EQ(doc->get_string("status"), "ok");

  const auto query = http_get(
      server.port(), "/api/query?index=job_rank_time&job_id=1", &status);
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(status, 200);
  EXPECT_NE(query->find("\"total\":4"), std::string::npos);

  const auto missing = http_get(server.port(), "/api/nope", &status);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(status, 404);

  server.stop();
  EXPECT_GE(server.connections_handled(), 3u);
}

TEST(Http, ServesManySequentialClients) {
  DashboardService service(demo_db());
  HttpServer server(0, HttpServer::wrap(service));
  for (int i = 0; i < 32; ++i) {
    int status = 0;
    const auto body = http_get(server.port(), "/api/jobs", &status);
    ASSERT_TRUE(body.has_value()) << i;
    EXPECT_EQ(status, 200);
  }
  server.stop();
}

TEST(Service, ApiObsExposesWriterPlacementGauges) {
  // Regression for writer pinning observability: after a pinned ingest
  // drains, /api/obs (the registry's JSON twin) must carry the
  // dlc.ingest.writer.<w>.cpu and .pinned_cpu gauges with the CPU the
  // worker actually pinned to — this is the operator's only way to
  // confirm DARSHAN_LDMS_PIN placement took effect.
  util::PinPolicy policy;
  ASSERT_TRUE(util::parse_pin_policy("auto", policy));
  const std::vector<int> cpus = util::resolve_pin_cpus(policy);
  ASSERT_FALSE(cpus.empty());
  auto db = demo_db();
  {
    dsos::IngestConfig icfg;
    icfg.workers = 1;
    icfg.pin_cpus = cpus;
    dsos::IngestExecutor ex(*db, icfg);
    ex.drain();  // worker ran, pinned itself, published its gauges
  }
  DashboardService svc(db);  // default registry: the global one
  const Response r = svc.handle("/api/obs");
  EXPECT_EQ(r.status, 200);
  const auto parsed = json::parse(r.body);
  ASSERT_TRUE(parsed.has_value());
  const json::Value* metrics = parsed->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->get_double("dlc.ingest.writer.0.pinned_cpu", -2.0),
      static_cast<double>(cpus[0]));
  EXPECT_DOUBLE_EQ(metrics->get_double("dlc.ingest.writer.0.cpu", -2.0),
                   static_cast<double>(cpus[0]));
}

TEST(Service, RollupEndpointsNeedAnAttachedEngine) {
  DashboardService service(demo_db());
  EXPECT_EQ(service.handle("/api/rollup").status, 404);
  EXPECT_EQ(service.handle("/api/rollup/op_counts").status, 404);
}

TEST(Service, RollupStatusCellsAndPanelSource) {
  auto db = demo_db();
  rollup::RollupEngineConfig cfg;
  cfg.policies = rollup::default_rollup_policies();
  rollup::RollupEngine engine(cfg);
  engine.attach(*db);  // replays the pre-inserted demo rows
  engine.flush();
  DashboardService service(db);

  // Without the engine wired up, panels report the raw path.
  {
    const auto doc =
        json::parse(service.handle("/api/panel?module=fig5&job=1,2").body);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("source"), "raw");
  }

  service.set_rollup(&engine);

  const auto status = json::parse(service.handle("/api/rollup").body);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->find("policies")->as_array().size(), 4u);
  EXPECT_EQ(status->get_uint("late_dropped"), 0u);

  // Cells for one policy, filtered to one job/op.
  const Response cells =
      service.handle("/api/rollup/op_counts?job=1&op=read");
  ASSERT_EQ(cells.status, 200);
  const auto doc = json::parse(cells.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("policy"), "op_counts");
  const auto& rows = doc->find("cells")->as_array();
  ASSERT_EQ(rows.size(), 1u);  // demo db: 2 ranks x 1 read each for job 1
  EXPECT_EQ(rows[0].get_uint("count"), 2u);
  EXPECT_EQ(rows[0].get_string("op"), "read");

  EXPECT_EQ(service.handle("/api/rollup/nope").status, 404);
  EXPECT_EQ(service.handle("/api/rollup/op_counts?bucket_s=45").status, 400);

  // The same panel now serves from rollup cells and says so.
  const auto served =
      json::parse(service.handle("/api/panel?module=fig5&job=1,2").body);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->get_string("source"), "rollup:op_counts");
}

TEST(Service, PanelFig9WithNoJobsRunsTheRegisteredRawModule) {
  // Empty database: job_list() finds no jobs, so the rollup path cannot
  // serve fig9 and must fall through to the registered raw module — not
  // return a fabricated empty frame labeled "raw" without invoking it.
  dsos::ClusterConfig cfg;
  cfg.shard_count = 1;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  auto db = std::make_shared<dsos::DsosCluster>(cfg);
  db->register_schema(core::darshan_data_schema());

  rollup::RollupEngineConfig rcfg;
  rcfg.policies = rollup::default_rollup_policies();
  rollup::RollupEngine engine(rcfg);
  engine.attach(*db);
  DashboardService service(db);
  service.set_rollup(&engine);
  service.register_module("fig9",
                          [](const dsos::DsosCluster&, const Params&) {
                            analysis::DataFrame df;
                            df.add_int_column("sentinel", {42});
                            return df;
                          });

  const Response r = service.handle("/api/panel?module=fig9");
  ASSERT_EQ(r.status, 200);
  const auto doc = json::parse(r.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("source"), "raw");
  EXPECT_NE(r.body.find("sentinel"), std::string::npos);
}

TEST(Dashboard, DefaultDashboardRendersAllPanels) {
  DashboardService service(demo_db());
  const Dashboard dash = default_io_dashboard(2);
  const std::string rendered = render_dashboard(service, dash);
  const auto doc = json::parse(rendered);
  ASSERT_TRUE(doc.has_value()) << rendered.substr(0, 200);
  const auto& panels = doc->find("panels")->as_array();
  ASSERT_EQ(panels.size(), 6u);
  bool has_alerts = false;
  for (const auto& panel : panels) {
    EXPECT_TRUE(panel.find("data") != nullptr)
        << panel.get_string("title") << ": "
        << panel.get_string("error", "(no error)");
    if (panel.get_string("title") == "Alerts") has_alerts = true;
  }
  // The alerts panel renders (empty) even with no anomaly engine
  // attached — a dashboard must not break when detection is off.
  EXPECT_TRUE(has_alerts);
}

TEST(Dashboard, BrokenPanelReportsErrorInline) {
  DashboardService service(demo_db());
  Dashboard dash;
  dash.title = "broken";
  dash.panels = {PanelDef{"nope", "missing_module", {}, "table"}};
  const std::string rendered = render_dashboard(service, dash);
  const auto doc = json::parse(rendered);
  const auto& panels = doc->find("panels")->as_array();
  ASSERT_EQ(panels.size(), 1u);
  EXPECT_FALSE(panels[0].get_string("error").empty());
}

}  // namespace
}  // namespace dlc::websvc
