// Integration tests for the experiment harness: full pipeline wiring,
// campaign statistics, overhead calculus, figure datasets, table printer.
#include <gtest/gtest.h>

#include "analysis/figures.hpp"
#include "exp/campaign.hpp"
#include "exp/figdata.hpp"
#include "exp/specs.hpp"
#include "exp/table.hpp"
#include "workloads/mpi_io_test.hpp"

namespace dlc::exp {
namespace {

ExperimentSpec tiny_mpiio(simfs::FsKind fs) {
  ExperimentSpec spec = mpi_io_test_spec(fs, /*collective=*/false);
  spec.node_count = 4;
  spec.ranks_per_node = 2;
  workloads::MpiIoTestConfig cfg;
  cfg.iterations = 3;
  cfg.block_size = 1 << 20;
  cfg.collective = false;
  spec.workload = workloads::mpi_io_test(cfg);
  return spec;
}

TEST(Pipeline, EndToEndCountsAreConsistent) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.runtime_s, 0.0);
  // 8 ranks x (open + 3w + 3r + flush + close) MPIIO + 6 POSIX sub-events.
  EXPECT_EQ(r.events, 8u * (1 + 3 + 3 + 1 + 1) + 8u * 6);
  // Every event published, transported (2 hops) and stored; none dropped.
  EXPECT_EQ(r.messages, r.events);
  EXPECT_EQ(r.stored, r.messages);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GT(r.mean_latency_s, 0.0);
  EXPECT_GT(r.charged_s, 0.0);
  // The darshan summary log came back too.
  EXPECT_FALSE(r.darshan_log.records.empty());
  EXPECT_EQ(r.darshan_log.nprocs, 8u);
}

TEST(Pipeline, ConnectorDisabledPublishesNothing) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  spec.connector_enabled = false;
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.stored, 0u);
  EXPECT_EQ(r.charged_s, 0.0);
}

TEST(Pipeline, DecodeToDsosStoresEveryEvent) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.decode_to_dsos = true;
  const RunResult r = run_experiment(spec);
  ASSERT_TRUE(r.dsos != nullptr);
  EXPECT_EQ(r.dsos->total_objects(), r.messages);
}

TEST(Pipeline, ParallelIngestMatchesSerial) {
  // DARSHAN_LDMS_INGEST_THREADS end to end: the executor path must store
  // the same rows in the same global query order as inline insertion.
  ExperimentSpec serial = tiny_mpiio(simfs::FsKind::kNfs);
  serial.decode_to_dsos = true;
  ExperimentSpec parallel = serial;
  parallel.connector.ingest_threads = 4;
  const RunResult a = run_experiment(serial);
  const RunResult b = run_experiment(parallel);
  ASSERT_TRUE(a.dsos != nullptr);
  ASSERT_TRUE(b.dsos != nullptr);
  EXPECT_EQ(a.dsos->total_objects(), b.dsos->total_objects());
  const auto ra = a.dsos->query("darshan_data", "job_rank_time");
  const auto rb = b.dsos->query("darshan_data", "job_rank_time");
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i]->as_int("rank"), rb[i]->as_int("rank"));
    EXPECT_EQ(ra[i]->as_string("op"), rb[i]->as_string("op"));
    EXPECT_EQ(ra[i]->as_double("seg_timestamp"),
              rb[i]->as_double("seg_timestamp"));
  }
}

TEST(Pipeline, SameSeedSameResult) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.seed = 123;
  spec.epoch_seed = 77;
  const RunResult a = run_experiment(spec);
  const RunResult b = run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.events, b.events);
}

TEST(Pipeline, EpochSeedChangesRuntime) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.epoch_seed = 1;
  const RunResult a = run_experiment(spec);
  spec.epoch_seed = 2;
  const RunResult b = run_experiment(spec);
  EXPECT_NE(a.runtime_s, b.runtime_s);  // different FS weather
}

TEST(Pipeline, MissingWorkloadThrows) {
  ExperimentSpec spec;
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
}

TEST(Pipeline, OversizedJobThrows) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.node_count = 99;
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
}

TEST(Pipeline, TinyTransportQueueDropsBestEffort) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  spec.transport.queue_capacity = 1;
  spec.transport.hop_latency = 10 * kSecond;  // drain far slower than I/O
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_LT(r.stored, r.messages);
}

TEST(Campaign, RepeatedRunsVaryAndAverage) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  const RepeatedResult rr = run_repeated(spec, 4, /*epoch=*/500);
  EXPECT_EQ(rr.runs.size(), 4u);
  EXPECT_EQ(rr.runtime_s.count(), 4u);
  EXPECT_GT(rr.runtime_s.mean(), 0.0);
  // Epoch jitter between repetitions -> non-zero spread.
  EXPECT_GT(rr.runtime_s.stddev(), 0.0);
}

TEST(Campaign, OverheadRowComputesPercent) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  // Make the connector cost large so overhead must be positive even
  // across epochs.
  spec.connector.costs.format_base = 50 * kMillisecond;
  CampaignConfig campaign;
  campaign.repetitions = 2;
  campaign.baseline_epoch = 1;
  campaign.connector_epoch = 2;
  const OverheadRow row = measure_overhead("test", spec, campaign);
  EXPECT_EQ(row.label, "test");
  EXPECT_GT(row.dc_runtime_s, row.darshan_runtime_s);
  EXPECT_GT(row.overhead_pct, 0.0);
  EXPECT_NEAR(row.overhead_pct,
              (row.dc_runtime_s - row.darshan_runtime_s) /
                  row.darshan_runtime_s * 100.0,
              1e-9);
  EXPECT_GT(row.avg_messages, 0.0);
}

TEST(Campaign, SameEpochIsolatesConnectorCost) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  spec.connector.format = core::FormatMode::kNone;
  CampaignConfig campaign;
  campaign.repetitions = 3;
  campaign.baseline_epoch = 42;
  campaign.connector_epoch = 42;  // same weather
  const OverheadRow row = measure_overhead("ablation", spec, campaign);
  // Publish-only cost is sub-percent on this workload.
  EXPECT_LT(std::abs(row.overhead_pct), 1.0);
  EXPECT_GE(row.overhead_pct, 0.0);
}

TEST(FigData, MpiioCampaignProducesQueryableAnomaly) {
  const FigDataset data = mpiio_independent_campaign(3, 7);
  EXPECT_EQ(data.job_ids.size(), 3u);
  EXPECT_EQ(data.anomalous_job, 2u);
  EXPECT_GT(data.db->total_objects(), 0u);
  const analysis::DataFrame summary =
      analysis::fig7_job_summary(*data.db, data.job_ids);
  EXPECT_EQ(analysis::find_anomalous_job(summary, "read"), 2u);
}

TEST(FigData, HaccCampaignStoresAllJobs) {
  const FigDataset data = hacc_campaign(simfs::FsKind::kLustre, 100'000, 3, 5);
  EXPECT_EQ(data.job_ids.size(), 3u);
  const analysis::DataFrame counts =
      analysis::fig5_op_counts(*data.db, data.job_ids);
  EXPECT_GT(counts.rows(), 0u);
  // Every op row aggregated over exactly 3 jobs.
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    EXPECT_GT(counts.get_double(r, "mean_count"), 0.0);
  }
}

TEST(Specs, PaperSpecsAreRunnable) {
  // Smoke: each paper spec builds a valid pipeline (scaled down where the
  // full size would be slow).
  {
    ExperimentSpec spec = mpi_io_test_spec(simfs::FsKind::kLustre, true);
    spec.node_count = 2;
    spec.ranks_per_node = 1;
    EXPECT_NO_THROW(run_experiment(spec));
  }
  {
    ExperimentSpec spec = hacc_io_spec(simfs::FsKind::kNfs, 10'000);
    spec.node_count = 2;
    spec.ranks_per_node = 1;
    EXPECT_NO_THROW(run_experiment(spec));
  }
  {
    ExperimentSpec spec = hmmer_spec(simfs::FsKind::kLustre, 0.005);
    EXPECT_NO_THROW(run_experiment(spec));
  }
  {
    ExperimentSpec spec = sw4_spec(simfs::FsKind::kLustre);
    spec.node_count = 2;
    spec.ranks_per_node = 1;
    EXPECT_NO_THROW(run_experiment(spec));
  }
}


TEST(Pipeline, SystemMetricsCollectedAndPlausible) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.sample_system_metrics = true;
  spec.metric_interval = 5 * kSecond;
  const RunResult r = run_experiment(spec);
  // 3 channels x 4 nodes.
  ASSERT_EQ(r.system_metrics.size(), 12u);
  bool saw_congestion = false;
  for (const auto& series : r.system_metrics) {
    EXPECT_FALSE(series.t.empty()) << series.name;
    EXPECT_EQ(series.t.size(), series.v.size());
    for (std::size_t i = 1; i < series.t.size(); ++i) {
      EXPECT_GT(series.t[i], series.t[i - 1]);  // strictly increasing time
    }
    if (series.name.rfind("fs_congestion@", 0) == 0) {
      saw_congestion = true;
      for (double v : series.v) EXPECT_GT(v, 0.0);
    }
  }
  EXPECT_TRUE(saw_congestion);
}

TEST(Pipeline, MetricSamplerSeesInjectedIncident) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.sample_system_metrics = true;
  spec.metric_interval = 2 * kSecond;
  spec.variability.epoch_sigma = 0;
  spec.variability.ar_sigma = 0;
  spec.incidents.push_back(simfs::Incident{.start = 0,
                                           .end = 10'000 * kSecond,
                                           .peak_factor = 5.0,
                                           .ramp = false,
                                           .applies_to =
                                               simfs::OpClass::kWrite});
  const RunResult r = run_experiment(spec);
  for (const auto& series : r.system_metrics) {
    if (series.name.rfind("fs_congestion@", 0) == 0) {
      for (double v : series.v) EXPECT_DOUBLE_EQ(v, 5.0);
    }
  }
}


TEST(Campaign, InterleavedPairsOutWeather) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kNfs);
  spec.connector.format = core::FormatMode::kNone;  // near-zero true cost
  CampaignConfig drifted;
  drifted.repetitions = 3;
  drifted.baseline_epoch = 100;
  drifted.connector_epoch = 900;  // different weather -> noisy overhead
  CampaignConfig interleaved = drifted;
  interleaved.interleaved = true;

  const OverheadRow noisy = measure_overhead("noisy", spec, drifted);
  const OverheadRow clean = measure_overhead("clean", spec, interleaved);
  // Paired runs isolate the (tiny, non-negative) publish-only cost.
  EXPECT_GE(clean.overhead_pct, 0.0);
  EXPECT_LT(clean.overhead_pct, 1.0);
  // And it is at least as tight as the cross-campaign estimate.
  EXPECT_LE(std::abs(clean.overhead_pct), std::abs(noisy.overhead_pct) + 1.0);
  EXPECT_GT(clean.avg_messages, 0.0);
}


TEST(Pipeline, HeatmapSnapshotTracksWrites) {
  ExperimentSpec spec = tiny_mpiio(simfs::FsKind::kLustre);
  const RunResult r = run_experiment(spec);
  ASSERT_EQ(r.heatmap_write_bytes.size(), 8u);  // one row per rank
  double written = 0, read = 0;
  for (const auto& row : r.heatmap_write_bytes) {
    for (double v : row) written += v;
  }
  for (const auto& row : r.heatmap_read_bytes) {
    for (double v : row) read += v;
  }
  // 8 ranks x 3 iterations x 1 MiB per phase; the heatmap counts each
  // access once at the issuing (MPIIO) layer — the POSIX sub-events do
  // not double-count bytes.
  EXPECT_DOUBLE_EQ(written, 1.0 * 8 * 3 * (1 << 20));
  EXPECT_DOUBLE_EQ(read, 1.0 * 8 * 3 * (1 << 20));
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"Config", "Runtime", "Overhead"});
  table.add_row({"NFS/coll", cell_f(1376.67), cell_pct(-1.55)});
  table.add_row({"Lustre", cell_f(249.97), cell_pct(8.41)});
  const std::string out = table.render();
  EXPECT_NE(out.find("NFS/coll"), std::string::npos);
  EXPECT_NE(out.find("1376.67"), std::string::npos);
  EXPECT_NE(out.find("8.41%"), std::string::npos);
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CellHelpers) {
  EXPECT_EQ(cell_f(3.14159, 2), "3.14");
  EXPECT_EQ(cell_pct(-1.5, 1), "-1.5%");
  EXPECT_EQ(cell_u(42), "42");
}

}  // namespace
}  // namespace dlc::exp
