// Tier-1 coverage of the fuzz surface: every checked-in seed corpus
// file runs through its fuzz target (the targets abort on invariant
// violation, so a regression crashes the test), plus a deterministic
// mutation sweep per target so the decoders face adversarial bytes in
// every CI run, not just in the fuzz-smoke job.  Crash artifacts found
// by fuzzing get checked into the corpus and are pinned here forever.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/targets.hpp"
#include "wire/codec.hpp"

#ifndef DLC_CORPUS_DIR
#error "DLC_CORPUS_DIR must point at tests/corpus"
#endif

namespace dlc {
namespace {

namespace fsys = std::filesystem;

using FuzzTarget = int (*)(const std::uint8_t*, std::size_t);

std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& name) {
  const fsys::path dir = fsys::path(DLC_CORPUS_DIR) / name;
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    corpus.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  return corpus;
}

/// Runs the corpus, then `mutations` deterministic xorshift mutations of
/// it (same scheme as fuzz/standalone_main.cpp, fixed seed: failures
/// reproduce by re-running the test).
void run_corpus(const std::string& name, FuzzTarget target,
                int mutations) {
  const auto corpus = load_corpus(name);
  ASSERT_FALSE(corpus.empty()) << "empty corpus dir: " << name;
  for (const auto& input : corpus) {
    target(input.data(), input.size());
  }
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < mutations; ++i) {
    std::vector<std::uint8_t> buf = corpus[next() % corpus.size()];
    const std::uint64_t r = next();
    switch (r % 3) {
      case 0:
        if (!buf.empty()) buf[next() % buf.size()] ^= 1u << ((r >> 8) % 8);
        break;
      case 1:
        if (!buf.empty()) buf.resize(next() % buf.size());
        break;
      case 2:
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                     buf.empty() ? 0 : next() % buf.size()),
                   static_cast<std::uint8_t>(r >> 16));
        break;
    }
    target(buf.data(), buf.size());
  }
}

TEST(FuzzCorpus, FrameCursorSeedsAndMutations) {
  run_corpus("frame_cursor", fuzz::frame_cursor_one, 400);
}

TEST(FuzzCorpus, JsonScannerSeedsAndMutations) {
  run_corpus("json_scanner", fuzz::json_scanner_one, 400);
}

TEST(FuzzCorpus, RollupPolicySeedsAndMutations) {
  run_corpus("rollup_policy", fuzz::rollup_policy_one, 400);
}

TEST(FuzzCorpus, StoreRecoverySeedsAndMutations) {
  // Each input builds, mutates and re-opens a store directory twice, so
  // the sweep here is smaller; the fuzz-smoke job runs the long leg.
  run_corpus("store_recovery", fuzz::store_recovery_one, 24);
}

// The binary frame corpus must stay decodable as the codec evolves: a
// freshly encoded frame exercises the accept path even if every
// checked-in .frame seed predates a wire-format bump, and at least one
// seed must still parse with the current decoder (corpus freshness).
TEST(FuzzCorpus, FrameCorpusStaysFresh) {
  wire::EncodeContext ctx;
  ctx.uid = 1;
  ctx.job_id = 2;
  ctx.exe = "/bin/app";
  ctx.epoch_seconds = 1e9;
  wire::FrameEncoder enc(ctx);
  darshan::IoEvent e;
  e.end = 1000;
  enc.add(e, "nid0");
  const std::string frame = enc.take_frame();
  fuzz::frame_cursor_one(reinterpret_cast<const std::uint8_t*>(frame.data()),
                         frame.size());

  bool any_valid = false;
  for (const auto& seed : load_corpus("frame_cursor")) {
    const std::string_view sv(reinterpret_cast<const char*>(seed.data()),
                              seed.size());
    if (wire::decode_frame_seq(sv) != 0) any_valid = true;
  }
  EXPECT_TRUE(any_valid)
      << "no frame_cursor seed parses anymore - regenerate the corpus";
}

}  // namespace
}  // namespace dlc
