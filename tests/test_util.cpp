// Unit and property tests for the util substrate: rng, stats, formatting,
// strings, bounded queue, virtual time.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/format.hpp"
#include "util/lockdep.hpp"
#include "util/queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace dlc {
namespace {

// ---------------------------------------------------------------- time ----

TEST(Time, FromSecondsRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(12.5)), 12.5);
  EXPECT_EQ(from_seconds(-2.0), -2 * kSecond);
}

TEST(Time, FromSecondsSaturates) {
  EXPECT_EQ(from_seconds(1e30), std::numeric_limits<SimDuration>::max());
  EXPECT_EQ(from_seconds(-1e30), std::numeric_limits<SimDuration>::min());
}

TEST(Time, SimEpochAnchorsTimestamps) {
  SimEpoch epoch(1'000'000.0);
  EXPECT_DOUBLE_EQ(epoch.to_epoch_seconds(0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(epoch.to_epoch_seconds(2 * kSecond + kSecond / 2),
                   1'000'002.5);
}

TEST(Time, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(2 * kSecond), "2.00s");
  EXPECT_EQ(format_duration(3 * kMillisecond), "3.00ms");
  EXPECT_EQ(format_duration(7 * kMicrosecond), "7.00us");
  EXPECT_EQ(format_duration(42), "42ns");
}

TEST(Time, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(16ull * 1024 * 1024), "16.00MiB");
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentFuture) {
  Rng parent(7);
  Rng child1 = parent.fork("io", 0);
  parent.next_u64();  // advance parent
  Rng parent2(7);
  Rng child2 = parent2.fork("io", 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForkDistinctPurposesDiffer) {
  Rng parent(7);
  Rng a = parent.fork("alpha", 0);
  Rng b = parent.fork("beta", 0);
  Rng c = parent.fork("alpha", 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a2 = parent.fork("alpha", 0);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 20'000.0, 0.25, 0.02);
}

TEST(Rng, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("/path/a"), fnv1a64("/path/b"));
}

// --------------------------------------------------------------- stats ----

TEST(Stats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Ci95UsesSmallSampleT) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  // stddev = sqrt(2.5), se = sqrt(0.5), t(4 dof) = 2.776.
  EXPECT_NEAR(s.ci95_half_width(), 2.776 * std::sqrt(0.5), 1e-9);
}

TEST(Stats, Ci95ZeroForTinySamples) {
  RunningStats s;
  EXPECT_EQ(s.ci95_half_width(), 0.0);
  s.add(1.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Stats, TQuantileTable) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-6);
  EXPECT_NEAR(t_quantile_975(30), 2.042, 1e-6);
  EXPECT_NEAR(t_quantile_975(1000), 1.96, 1e-6);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);
}

// Degenerate-case pins for the log-bucket quantile interpolation: the
// anomaly detectors divide by these values, so single-sample and
// all-in-one-bucket inputs must be stable, bounded and monotone rather
// than collapsing to a bucket edge.
TEST(Stats, LogBucketPercentileSingleSampleIsBucketMidpoint) {
  std::array<std::uint64_t, kLogBucketCount> counts{};
  const std::uint64_t sample = 123456;
  const std::uint32_t idx = log_bucket_index(sample);
  counts[idx] = 1;
  const double lo = static_cast<double>(log_bucket_lo(idx));
  const double hi = static_cast<double>(log_bucket_hi(idx));
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(log_bucket_percentile(counts.data(), counts.size(), p),
                     lo + 0.5 * (hi - lo))
        << p;
  }
}

TEST(Stats, LogBucketPercentileOneBucketSpansLoToHi) {
  std::array<std::uint64_t, kLogBucketCount> counts{};
  const std::uint32_t idx = log_bucket_index(100000);
  const std::uint64_t n = 1000;
  counts[idx] = n;
  const double lo = static_cast<double>(log_bucket_lo(idx));
  const double hi = static_cast<double>(log_bucket_hi(idx));
  const double w = hi - lo;
  const double p0 = log_bucket_percentile(counts.data(), counts.size(), 0.0);
  const double p50 = log_bucket_percentile(counts.data(), counts.size(), 50.0);
  const double p100 =
      log_bucket_percentile(counts.data(), counts.size(), 100.0);
  // p=0 sits half a sample slice above lo, p=100 half a slice below hi,
  // p=50 on the midpoint; all strictly inside [lo, hi].
  EXPECT_NEAR(p0, lo + 0.5 / static_cast<double>(n) * w, 1e-9);
  EXPECT_NEAR(p50, lo + 0.5 * w, w / static_cast<double>(n));
  EXPECT_NEAR(p100, hi - 0.5 / static_cast<double>(n) * w, 1e-9);
  EXPECT_LT(p0, p50);
  EXPECT_LT(p50, p100);
}

TEST(Stats, LogBucketPercentileZeroBucketAndEmpty) {
  std::array<std::uint64_t, kLogBucketCount> counts{};
  EXPECT_DOUBLE_EQ(log_bucket_percentile(counts.data(), counts.size(), 50.0),
                   0.0);
  counts[0] = 7;  // bucket 0 holds exactly v == 0: lo == hi == 0
  for (const double p : {0.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(log_bucket_percentile(counts.data(), counts.size(), p),
                     0.0)
        << p;
  }
}

TEST(Stats, LogBucketPercentileMonotoneAndWithinBucketBounds) {
  Rng rng(4242);
  std::array<std::uint64_t, kLogBucketCount> counts{};
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 2000; ++i) {
    const auto mag = rng.uniform(0.0, 30.0);
    const auto v = static_cast<std::uint64_t>(std::exp2(mag));
    samples.push_back(v);
    counts[log_bucket_index(v)]++;
  }
  std::sort(samples.begin(), samples.end());
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double est =
        log_bucket_percentile(counts.data(), counts.size(), p);
    EXPECT_GE(est, prev) << "non-monotone at p=" << p;
    prev = est;
    const auto rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    const std::uint32_t idx = log_bucket_index(samples[rank - 1]);
    EXPECT_GE(est, static_cast<double>(log_bucket_lo(idx))) << "p=" << p;
    EXPECT_LE(est, static_cast<double>(log_bucket_hi(idx))) << "p=" << p;
  }
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// -------------------------------------------------------------- format ----

TEST(Format, AppendIntMatchesSnprintf) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64());
    std::string fast, slow;
    append_int(fast, v);
    append_int_snprintf(slow, v);
    EXPECT_EQ(fast, slow) << v;
  }
}

TEST(Format, AppendIntEdgeCases) {
  std::string out;
  append_int(out, 0);
  EXPECT_EQ(out, "0");
  out.clear();
  append_int(out, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(out, "-9223372036854775808");
  out.clear();
  append_int(out, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(out, "9223372036854775807");
}

TEST(Format, AppendUintEdgeCases) {
  std::string out;
  append_uint(out, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(out, "18446744073709551615");
}

TEST(Format, AppendFixedMatchesSnprintfWithinOneUlp) {
  // The fast path rounds half-away-from-zero on the scaled integer; libc
  // rounds on the exact binary value, so the last printed digit may differ
  // by one.  Assert the parsed values agree to within one unit in the last
  // (6th) decimal place.
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-1e9, 1e9);
    std::string fast, slow;
    append_fixed(fast, v, 6);
    append_fixed_snprintf(slow, v, 6);
    EXPECT_NEAR(std::stod(fast), std::stod(slow), 2e-6) << v;
    EXPECT_EQ(fast.size(), slow.size()) << v;
  }
}

TEST(Format, AppendFixedExactOnRepresentableValues) {
  std::string out;
  append_fixed(out, 0.25, 2);
  EXPECT_EQ(out, "0.25");
  out.clear();
  append_fixed(out, -1.5, 1);
  EXPECT_EQ(out, "-1.5");
  out.clear();
  append_fixed(out, 3.0, 0);
  EXPECT_EQ(out, "3");
  out.clear();
  append_fixed(out, 1e19, 2);  // falls back to snprintf path
  std::string ref;
  append_fixed_snprintf(ref, 1e19, 2);
  EXPECT_EQ(out, ref);
}

TEST(Format, AppendFixedHandlesNonFinite) {
  std::string out;
  append_fixed(out, std::nan(""), 3);
  EXPECT_EQ(out, "0");
  out.clear();
  append_fixed(out, std::numeric_limits<double>::infinity(), 3);
  EXPECT_EQ(out, "0");
}

TEST(Format, DecimalDigits) {
  EXPECT_EQ(decimal_digits(0), 1);
  EXPECT_EQ(decimal_digits(9), 1);
  EXPECT_EQ(decimal_digits(10), 2);
  EXPECT_EQ(decimal_digits(18446744073709551615ULL), 20);
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"a", "bb", "", "c"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("darshan.log", "darshan"));
  EXPECT_FALSE(starts_with("dar", "darshan"));
  EXPECT_TRUE(ends_with("darshan.log", ".log"));
  EXPECT_FALSE(ends_with("log", ".log"));
}

TEST(Strings, CsvEscapeRoundTrip) {
  const std::vector<std::string> fields{"plain", "has,comma", "has\"quote",
                                        "multi\nline", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line.push_back(',');
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(csv_parse_line(line), fields);
}

// --------------------------------------------------------------- queue ----

TEST(Queue, DropsOnOverflow) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(Queue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(8);
  q.try_push(1);
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Queue, TryPopKeepsDrainingAfterClose) {
  // Documented contract: close() fails new pushes immediately but leaves
  // everything already queued poppable — shutdown must not lose messages.
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  q.close();
  EXPECT_FALSE(q.try_push(99));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // closed and drained => end-of-stream
}

TEST(Queue, ZeroCapacityRejectsEverything) {
  // capacity 0 is a valid "drop everything" configuration, not UB.
  BoundedQueue<int> q(0);
  EXPECT_FALSE(q.try_push(1));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.try_pop().has_value());
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Queue, PushWaitSucceedsWithoutBlockingWhenRoomy) {
  BoundedQueue<int> q(2);
  bool waited = true;
  EXPECT_TRUE(q.push_wait(1, 0, &waited));
  EXPECT_FALSE(waited);  // room available: no back-pressure recorded
  EXPECT_EQ(q.try_pop().value(), 1);
}

TEST(Queue, PushWaitBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread popper([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(q.try_pop().value(), 1);
  });
  bool waited = false;
  EXPECT_TRUE(q.push_wait(2, 0, &waited));  // full until the popper runs
  popper.join();
  EXPECT_TRUE(waited);
  EXPECT_EQ(q.try_pop().value(), 2);
}

TEST(Queue, PushWaitReturnsFalseWhenItemCanNeverFit) {
  // Impossible items fail immediately instead of blocking forever.
  BoundedQueue<int> zero(0);
  bool waited = true;
  EXPECT_FALSE(zero.push_wait(1, 0, &waited));
  EXPECT_FALSE(waited);
  BoundedQueue<int> bytes(4, 10);
  EXPECT_FALSE(bytes.push_wait(1, 11, &waited));  // above the byte cap
  EXPECT_TRUE(bytes.push_wait(2, 10, &waited));   // exactly at it: fits
}

TEST(Queue, CloseUnblocksPushWait) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
  });
  EXPECT_FALSE(q.push_wait(2));  // woken by close => push fails, no hang
  closer.join();
  EXPECT_EQ(q.try_pop().value(), 1);  // queued item still drains
}

TEST(Queue, ByteCapacityBindsIndependently) {
  BoundedQueue<std::string> q(100, 10);
  EXPECT_TRUE(q.try_push("aaaa", 4));
  EXPECT_TRUE(q.try_push("bbbb", 4));
  EXPECT_EQ(q.size_bytes(), 8u);
  EXPECT_FALSE(q.try_push("cccc", 4));  // 12 > 10: byte cap binds
  EXPECT_TRUE(q.try_push("cc", 2));     // exactly at the cap is fine
  EXPECT_EQ(q.size_bytes(), 10u);
  EXPECT_EQ(q.try_pop().value(), "aaaa");
  EXPECT_EQ(q.size_bytes(), 6u);  // pops release their byte cost
  EXPECT_TRUE(q.try_push("dddd", 4));
}

TEST(Queue, ZeroByteCapacityMeansUnlimited) {
  BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.try_push("x", 1 << 30));
  EXPECT_TRUE(q.try_push("y", 1 << 30));
  EXPECT_EQ(q.size(), 2u);
}

TEST(Queue, CrossThreadDelivery) {
  BoundedQueue<int> q(1024);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 1000);
}

// Shutdown semantics under contention: close() must wake every blocked
// producer AND consumer exactly once, fail all later pushes, and still
// hand out everything queued before the close — no deadlock, no loss.

TEST(Queue, CloseRacesPushWaitWithoutDeadlockOrLoss) {
  constexpr int kProducers = 4;
  BoundedQueue<int> q(2);  // tiny: most push_wait calls block
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&q, &accepted] {
      for (int i = 0; i < 1000; ++i) {
        if (!q.push_wait(i)) return;  // closed: exit, don't spin
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  int drained = 0;
  while (q.pop()) ++drained;  // end-of-stream only after close + empty
  for (auto& t : producers) t.join();
  closer.join();
  // Every accepted push was popped: close() never drops queued items and
  // never double-delivers.  (If close() lost a wakeup, the join above
  // would hang and the test would time out instead.)
  EXPECT_EQ(drained, accepted.load());
  EXPECT_FALSE(q.try_push(7));  // stays closed
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Queue, CloseWakesAllBlockedPoppers) {
  BoundedQueue<int> q(8);  // empty: every pop() blocks
  constexpr int kPoppers = 4;
  std::atomic<int> woke{0};
  std::vector<std::thread> poppers;
  poppers.reserve(kPoppers);
  for (int t = 0; t < kPoppers; ++t) {
    poppers.emplace_back([&q, &woke] {
      EXPECT_FALSE(q.pop().has_value());  // end-of-stream, not an item
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();  // one close must release all four (notify_all, not _one)
  for (auto& t : poppers) t.join();
  EXPECT_EQ(woke.load(), kPoppers);
}

// ----------------------------------------------------------- spsc ring ----
//
// SpscRing replaced BoundedQueue on the 1-producer/1-consumer ingest
// edges (DESIGN.md section 9), advertising contract parity with the
// queue's push/pop/close semantics.  These tests mirror the Queue suite
// above within the SPSC thread contract (at most one thread per side;
// close() from anywhere), plus ring-specific boundaries: index
// wraparound, the non-power-of-two capacity bind, and a randomized
// model-check of the full/empty transitions.  The whole suite runs under
// TSan in CI alongside the Queue suite.

TEST(SpscRing, FifoOrderAndOverflow) {
  SpscRing<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: item cap binds
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, NonPowerOfTwoCapacityBinds) {
  // The slot array rounds up to a power of two; the advertised capacity
  // must still be what binds.
  SpscRing<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // not 4, despite the 4-slot array
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(4));
}

TEST(SpscRing, IndexWraparoundPreservesFifo) {
  // Monotonic 64-bit indices masked into a tiny ring: drive many times
  // the slot count through it so every slot is reused repeatedly.
  SpscRing<int> q(2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(2 * i));
    ASSERT_TRUE(q.try_push(2 * i + 1));
    ASSERT_EQ(q.try_pop().value(), 2 * i);
    ASSERT_EQ(q.try_pop().value(), 2 * i + 1);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(SpscRing, CloseDrainsThenSignalsEnd) {
  SpscRing<int> q(8);
  q.try_push(1);
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SpscRing, TryPopKeepsDrainingAfterClose) {
  SpscRing<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  q.close();
  EXPECT_FALSE(q.try_push(99));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // closed and drained => end-of-stream
}

TEST(SpscRing, ZeroCapacityRejectsEverything) {
  SpscRing<int> q(0);
  EXPECT_FALSE(q.try_push(1));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.try_pop().has_value());
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SpscRing, PushWaitSucceedsWithoutBlockingWhenRoomy) {
  SpscRing<int> q(2);
  bool waited = true;
  EXPECT_TRUE(q.push_wait(1, 0, &waited));
  EXPECT_FALSE(waited);  // room available: no back-pressure recorded
  EXPECT_EQ(q.try_pop().value(), 1);
}

TEST(SpscRing, PushWaitBlocksUntilPopMakesRoom) {
  SpscRing<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread popper([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(q.try_pop().value(), 1);
  });
  bool waited = false;
  EXPECT_TRUE(q.push_wait(2, 0, &waited));  // full until the popper runs
  popper.join();
  EXPECT_TRUE(waited);
  EXPECT_EQ(q.try_pop().value(), 2);
}

TEST(SpscRing, PushWaitReturnsFalseWhenItemCanNeverFit) {
  SpscRing<int> zero(0);
  bool waited = true;
  EXPECT_FALSE(zero.push_wait(1, 0, &waited));
  EXPECT_FALSE(waited);
  SpscRing<int> bytes(4, 10);
  EXPECT_FALSE(bytes.push_wait(1, 11, &waited));  // above the byte cap
  EXPECT_TRUE(bytes.push_wait(2, 10, &waited));   // exactly at it: fits
}

TEST(SpscRing, CloseUnblocksPushWait) {
  // The shutdown race the Dekker fence protocol exists for: a producer
  // asleep on a full ring must see close() and fail, not hang.
  SpscRing<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
  });
  EXPECT_FALSE(q.push_wait(2));  // woken by close => push fails, no hang
  closer.join();
  EXPECT_EQ(q.try_pop().value(), 1);  // queued item still drains
}

TEST(SpscRing, CloseWakesBlockedPopper) {
  SpscRing<int> q(8);  // empty: pop() blocks
  std::thread popper([&q] {
    EXPECT_FALSE(q.pop().has_value());  // end-of-stream, not an item
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  popper.join();
}

TEST(SpscRing, ByteCapacityBindsIndependently) {
  SpscRing<std::string> q(100, 10);
  EXPECT_TRUE(q.try_push("aaaa", 4));
  EXPECT_TRUE(q.try_push("bbbb", 4));
  EXPECT_EQ(q.size_bytes(), 8u);
  EXPECT_FALSE(q.try_push("cccc", 4));  // 12 > 10: byte cap binds
  EXPECT_TRUE(q.try_push("cc", 2));     // exactly at the cap is fine
  EXPECT_EQ(q.size_bytes(), 10u);
  EXPECT_EQ(q.try_pop().value(), "aaaa");
  EXPECT_EQ(q.size_bytes(), 6u);  // pops release their byte cost
  EXPECT_TRUE(q.try_push("dddd", 4));
}

TEST(SpscRing, ZeroByteCapacityMeansUnlimited) {
  SpscRing<std::string> q(4);
  EXPECT_TRUE(q.try_push("x", 1 << 30));
  EXPECT_TRUE(q.try_push("y", 1 << 30));
  EXPECT_EQ(q.size(), 2u);
}

TEST(SpscRing, FullEmptyBoundaryModelCheck) {
  // Property test: a random push/pop interleaving against a deque model.
  // One thread plays both roles (legal: at most one thread per side), so
  // every full->not-full and empty->not-empty transition — where the
  // index caches go stale and must refresh — is hit hundreds of times.
  Rng rng(404);
  SpscRing<int> q(5);  // non-power-of-two: masks and capacity disagree
  std::deque<int> model;
  int next = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.uniform() < 0.55) {
      const bool pushed = q.try_push(next);
      ASSERT_EQ(pushed, model.size() < 5u);
      if (pushed) model.push_back(next++);
    } else {
      const auto v = q.try_pop();
      ASSERT_EQ(v.has_value(), !model.empty());
      if (v.has_value()) {
        ASSERT_EQ(*v, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

TEST(SpscRing, CrossThreadDelivery) {
  // The deployment shape: one producer thread (push_wait, back-pressure
  // not loss), one consumer thread (pop), items arrive exactly once in
  // order.  Runs under TSan in CI — this is the release/acquire
  // publication proof in executable form.
  SpscRing<int> q(8);  // tiny: constant wrap + frequent blocking
  std::thread producer([&] {
    for (int i = 0; i < 20000; ++i) ASSERT_TRUE(q.push_wait(i));
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    ASSERT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 20000);
}

TEST(SpscRing, CloseRacesPushWaitWithoutLossOfAcceptedItems) {
  // close() fired from a third thread mid-stream: the producer must come
  // unstuck and stop, and every push that REPORTED success must still be
  // delivered.  close() is a producer-quiesce protocol (see spsc_ring.hpp),
  // so the consumer joins the producer before declaring the backlog
  // drained — the same order the executor and forwarder shut down in.
  SpscRing<int> q(2);
  std::atomic<int> accepted{0};
  std::thread producer([&] {
    for (int i = 0; i < 100000; ++i) {
      if (!q.push_wait(i)) return;  // closed: exit, don't spin
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  int drained = 0;
  while (q.pop()) ++drained;  // end-of-stream after close + apparent-empty
  producer.join();
  closer.join();
  while (q.try_pop()) ++drained;  // in-flight push that raced the close
  EXPECT_EQ(drained, accepted.load());
  EXPECT_FALSE(q.try_push(7));  // stays closed
}

// ------------------------------------------------------------- lockdep ----
//
// The checker is compiled in every build; these tests drive it directly
// through its API so the cycle detection itself is covered even when
// util::Mutex instrumentation (DLC_LOCKDEP) is off.

TEST(Lockdep, AbBaOrderInversionIsOneViolation) {
  lockdep::reset();
  int a = 0, b = 0;  // addresses double as lock identities
  // Thread 1 order: A then B.
  lockdep::on_acquire(&a, "A");
  lockdep::on_acquire(&b, "B");
  lockdep::on_release(&b);
  lockdep::on_release(&a);
  EXPECT_EQ(lockdep::violations(), 0u);  // consistent so far
  // Same thread, inverted order: B then A closes the cycle.
  lockdep::on_acquire(&b, "B");
  lockdep::on_acquire(&a, "A");
  lockdep::on_release(&a);
  lockdep::on_release(&b);
  EXPECT_EQ(lockdep::violations(), 1u);
  const std::string report = lockdep::report();
  EXPECT_NE(report.find("A"), std::string::npos);
  EXPECT_NE(report.find("B"), std::string::npos);
  // Repeating the inversion is the same ordered pair: deduplicated.
  lockdep::on_acquire(&b, "B");
  lockdep::on_acquire(&a, "A");
  lockdep::on_release(&a);
  lockdep::on_release(&b);
  EXPECT_EQ(lockdep::violations(), 1u);
  lockdep::reset();
}

TEST(Lockdep, TransitiveCycleThroughThreeClasses) {
  lockdep::reset();
  int a = 0, b = 0, c = 0;
  lockdep::on_acquire(&a, "LA");
  lockdep::on_acquire(&b, "LB");  // LA -> LB
  lockdep::on_release(&b);
  lockdep::on_release(&a);
  lockdep::on_acquire(&b, "LB");
  lockdep::on_acquire(&c, "LC");  // LB -> LC
  lockdep::on_release(&c);
  lockdep::on_release(&b);
  EXPECT_EQ(lockdep::violations(), 0u);
  lockdep::on_acquire(&c, "LC");
  lockdep::on_acquire(&a, "LA");  // LC -> LA: cycle via LB
  lockdep::on_release(&a);
  lockdep::on_release(&c);
  EXPECT_EQ(lockdep::violations(), 1u);
  lockdep::reset();
}

TEST(Lockdep, DistinctInstancesOfOneClassShareOrdering) {
  // Two BoundedQueues are the same lock class: an order established on
  // one instance pair constrains every other pair (Linux-lockdep rule).
  lockdep::reset();
  int q1 = 0, q2 = 0;
  lockdep::on_acquire(&q1, "Q");
  lockdep::on_acquire(&q2, "Q");  // nested same-class: Q -> Q self-edge
  lockdep::on_release(&q2);
  lockdep::on_release(&q1);
  EXPECT_EQ(lockdep::violations(), 1u);  // self-cycle flagged immediately
  lockdep::reset();
}

TEST(Lockdep, AnonymousLocksNeverCrossTalk) {
  lockdep::reset();
  int a = 0, b = 0;
  lockdep::on_acquire(&a, nullptr);
  lockdep::on_acquire(&b, nullptr);  // per-instance classes: a -> b
  lockdep::on_release(&b);
  lockdep::on_release(&a);
  lockdep::on_acquire(&b, nullptr);  // b alone: no inversion
  lockdep::on_release(&b);
  EXPECT_EQ(lockdep::violations(), 0u);
  lockdep::reset();
}

#if DLC_LOCKDEP
TEST(Lockdep, InstrumentedMutexCatchesAbBaFixture) {
  // End-to-end through util::Mutex: a deliberate AB/BA fixture must be
  // caught in instrumented (Debug) builds even though no deadlock ever
  // happens on this serial schedule.
  lockdep::reset();
  util::Mutex ma("FixtureA");
  util::Mutex mb("FixtureB");
  {
    const util::LockGuard la(ma);
    const util::LockGuard lb(mb);
  }
  {
    const util::LockGuard lb(mb);
    const util::LockGuard la(ma);
  }
  EXPECT_EQ(lockdep::violations(), 1u);
  const std::string report = lockdep::report();
  EXPECT_NE(report.find("FixtureA"), std::string::npos);
  EXPECT_NE(report.find("FixtureB"), std::string::npos);
  lockdep::reset();
}

TEST(Lockdep, InstrumentedCondVarWaitKeepsMutexHeld) {
  // cv.wait() releases the native mutex while sleeping, but the predicate
  // runs with it held — lockdep keeps the hold across the wait, so a lock
  // taken inside a wait predicate still records an ordering edge.
  lockdep::reset();
  util::Mutex m("WaitOuter");
  util::CondVar cv;
  util::Mutex inner("WaitInner");
  bool ready = false;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      const util::LockGuard lock(m);
      ready = true;
    }
    cv.notify_all();
  });
  {
    util::UniqueLock lock(m);
    cv.wait(lock, [&]() DLC_REQUIRES(m) {
      const util::LockGuard g(inner);  // WaitOuter -> WaitInner edge
      return ready;
    });
  }
  t.join();
  EXPECT_EQ(lockdep::violations(), 0u);
  // The inverted order must now be flagged.
  {
    const util::LockGuard g(inner);
    const util::LockGuard g2(m);
  }
  EXPECT_EQ(lockdep::violations(), 1u);
  lockdep::reset();
}
#endif  // DLC_LOCKDEP

}  // namespace
}  // namespace dlc
