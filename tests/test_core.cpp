// Tests for the Darshan-LDMS Connector: message schema (Fig. 3 / Table I),
// MET/MOD typing, N/A|-1 fill, sampling, cost charging, ablation modes,
// decoder and end-to-end mini pipeline into DSOS.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/connector.hpp"
#include "core/decoder.hpp"
#include "core/env_config.hpp"
#include "core/schema_darshan.hpp"
#include "json/parser.hpp"
#include "ldms/store.hpp"
#include "sim/engine.hpp"
#include "simfs/nfs.hpp"
#include "simhpc/cluster.hpp"
#include "simhpc/job.hpp"
#include "util/cpu.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "wire/codec.hpp"

namespace dlc::core {
namespace {

using darshan::Fd;
using darshan::Module;

struct Pipeline {
  sim::Engine engine;
  simhpc::Cluster cluster{simhpc::ClusterConfig{.node_count = 4,
                                                .first_node_id = 40,
                                                .node_prefix = "nid"}};
  std::shared_ptr<simfs::VariabilityProcess> variability;
  std::unique_ptr<simfs::NfsModel> fs;
  std::unique_ptr<simhpc::Job> job;
  std::unique_ptr<darshan::Runtime> runtime;
  std::vector<std::unique_ptr<ldms::LdmsDaemon>> node_daemons;
  std::unique_ptr<ldms::LdmsDaemon> aggregator;
  std::unique_ptr<DarshanLdmsConnector> connector;

  static const std::string& store_row_or(const ldms::CsvStore& store,
                                         std::size_t index) {
    static const std::string kEmpty;
    return index < store.rows().size() ? store.rows()[index] : kEmpty;
  }

  explicit Pipeline(ConnectorConfig ccfg = {}, std::size_t ranks = 2) {
    simfs::VariabilityConfig vcfg;
    vcfg.epoch_sigma = 0.0;
    vcfg.ar_sigma = 0.0;
    variability = std::make_shared<simfs::VariabilityProcess>(vcfg, 1);
    simfs::NfsConfig ncfg;
    ncfg.jitter_sigma = 0.0;
    ncfg.small_io_batch = 1;
    fs = std::make_unique<simfs::NfsModel>(engine, ncfg, variability, 1);
    simhpc::JobConfig jcfg;
    jcfg.job_id = 259903;
    jcfg.uid = 99066;
    jcfg.node_count = ranks;
    jcfg.ranks_per_node = 1;
    job = std::make_unique<simhpc::Job>(engine, cluster, jcfg);
    darshan::RuntimeConfig rcfg;
    rcfg.exe = "/home/user/mpi-io-test";
    runtime = std::make_unique<darshan::Runtime>(engine, *fs, *job, rcfg);
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      node_daemons.push_back(
          std::make_unique<ldms::LdmsDaemon>(&engine, cluster.node_name(n)));
    }
    aggregator = std::make_unique<ldms::LdmsDaemon>(&engine, "shirley");
    for (auto& d : node_daemons) {
      d->add_forward(ccfg.stream_tag, *aggregator,
                     ldms::ForwardConfig{.queue_capacity = 1 << 20,
                                         .hop_latency = 10 * kMicrosecond,
                                         .bandwidth_bytes_per_sec = 0});
    }
    connector = std::make_unique<DarshanLdmsConnector>(
        *runtime,
        [this](int rank) {
          return node_daemons[job->node_of_rank(
                                  static_cast<std::size_t>(rank))]
              .get();
        },
        ccfg);
  }
};

sim::Task<void> session(darshan::Runtime& rt, int rank) {
  darshan::RankIo io = rt.rank(rank);
  const Fd fd = co_await io.open(Module::kPosix, "/scratch/out.dat", true);
  co_await io.write(fd, 1 << 20);
  co_await io.read_at(fd, 0, 4096);
  co_await io.close(fd);
}

TEST(Connector, MessageMatchesFig3Schema) {
  Pipeline p;
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();

  ASSERT_EQ(store.rows().size(), 4u);  // open, write, read, close
  const auto open_msg = json::parse(store.rows()[0]);
  ASSERT_TRUE(open_msg.has_value());
  EXPECT_EQ(open_msg->get_uint("uid"), 99066u);
  EXPECT_EQ(open_msg->get_string("exe"), "/home/user/mpi-io-test");
  EXPECT_EQ(open_msg->get_uint("job_id"), 259903u);
  EXPECT_EQ(open_msg->get_int("rank"), 0);
  EXPECT_EQ(open_msg->get_string("ProducerName"), "nid00040");
  EXPECT_EQ(open_msg->get_string("file"), "/scratch/out.dat");
  EXPECT_EQ(open_msg->get_uint("record_id"), fnv1a64("/scratch/out.dat"));
  EXPECT_EQ(open_msg->get_string("module"), "POSIX");
  EXPECT_EQ(open_msg->get_string("type"), "MET");
  EXPECT_EQ(open_msg->get_int("max_byte"), -1);
  EXPECT_EQ(open_msg->get_int("switches"), -1);
  EXPECT_EQ(open_msg->get_int("flushes"), -1);
  EXPECT_EQ(open_msg->get_int("cnt"), 1);
  EXPECT_EQ(open_msg->get_string("op"), "open");
  const auto& seg = open_msg->find("seg")->as_array();
  ASSERT_EQ(seg.size(), 1u);
  EXPECT_EQ(seg[0].get_string("data_set"), "N/A");
  EXPECT_EQ(seg[0].get_int("pt_sel"), -1);
  EXPECT_EQ(seg[0].get_int("ndims"), -1);
  EXPECT_EQ(seg[0].get_int("len"), -1);
  EXPECT_GT(seg[0].get_double("timestamp"), 1.6e9);  // absolute epoch time
}

TEST(Connector, ModMessagesElideMetadata) {
  Pipeline p;
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  const auto write_msg = json::parse(store.rows()[1]);
  EXPECT_EQ(write_msg->get_string("type"), "MOD");
  EXPECT_EQ(write_msg->get_string("exe"), "N/A");
  EXPECT_EQ(write_msg->get_string("file"), "N/A");
  EXPECT_EQ(write_msg->get_string("op"), "write");
  EXPECT_EQ(write_msg->get_int("max_byte"), (1 << 20) - 1);
  EXPECT_EQ(write_msg->get_int("switches"), 0);
  const auto& seg = write_msg->find("seg")->as_array();
  EXPECT_EQ(seg[0].get_int("off"), 0);
  EXPECT_EQ(seg[0].get_int("len"), 1 << 20);
  EXPECT_GT(seg[0].get_double("dur"), 0.0);
}

TEST(Connector, ProducerNameTracksRankNode) {
  Pipeline p(ConnectorConfig{}, 2);
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.spawn(session(*p.runtime, 1));
  p.engine.run();
  int saw_40 = 0, saw_41 = 0;
  for (const auto& row : store.rows()) {
    const auto msg = json::parse(row);
    const auto producer = msg->get_string("ProducerName");
    saw_40 += producer == "nid00040";
    saw_41 += producer == "nid00041";
  }
  EXPECT_EQ(saw_40, 4);
  EXPECT_EQ(saw_41, 4);
}

TEST(Connector, ChargesFormattingCostToVirtualTime) {
  ConnectorConfig on;
  on.charge_costs = true;
  ConnectorConfig off;
  off.charge_costs = false;
  SimTime with_cost, without_cost;
  {
    Pipeline p(on, 1);
    p.engine.spawn(session(*p.runtime, 0));
    p.engine.run();
    with_cost = p.engine.now();
    EXPECT_GT(p.connector->stats().charged, 0);
  }
  {
    Pipeline p(off, 1);
    p.engine.spawn(session(*p.runtime, 0));
    p.engine.run();
    without_cost = p.engine.now();
    EXPECT_EQ(p.connector->stats().charged, 0);
  }
  EXPECT_GT(with_cost, without_cost);
}

TEST(Connector, NoneModeSkipsFormattingButPublishes) {
  ConnectorConfig cfg;
  cfg.format = FormatMode::kNone;
  Pipeline p(cfg, 1);
  ldms::CountingStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  EXPECT_EQ(store.stored(), 4u);
  // Only the publish cost is charged: far below one format_base per event.
  EXPECT_LT(p.connector->stats().charged,
            4 * p.connector->config().costs.format_base);
  EXPECT_EQ(p.connector->stats().charged,
            4 * p.connector->config().costs.publish_cost);
}

TEST(Connector, FastJsonCostsLessThanSnprintf) {
  ConnectorConfig slow;
  slow.format = FormatMode::kSnprintfJson;
  ConnectorConfig fast;
  fast.format = FormatMode::kFastJson;
  SimDuration slow_charge, fast_charge;
  {
    Pipeline p(slow, 1);
    p.engine.spawn(session(*p.runtime, 0));
    p.engine.run();
    slow_charge = p.connector->stats().charged;
  }
  {
    Pipeline p(fast, 1);
    p.engine.spawn(session(*p.runtime, 0));
    p.engine.run();
    fast_charge = p.connector->stats().charged;
  }
  EXPECT_LT(fast_charge, slow_charge / 4);
}

TEST(Connector, SamplingPublishesEveryNth) {
  ConnectorConfig cfg;
  cfg.sample_every_n = 4;
  Pipeline p(cfg, 1);
  ldms::CountingStore store;
  store.attach(*p.aggregator, "darshanConnector");
  auto many_ops = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/f", true);
    for (int i = 0; i < 16; ++i) co_await io.write(fd, 100);
    co_await io.close(fd);
  };
  p.engine.spawn(many_ops(*p.runtime));
  p.engine.run();
  // open + close always published; 16 writes sampled 1-in-4.
  EXPECT_EQ(p.connector->stats().events_seen, 18u);
  EXPECT_EQ(p.connector->stats().messages_published, 2u + 4u);
  EXPECT_EQ(p.connector->stats().events_sampled_out, 12u);
  EXPECT_EQ(store.stored(), 6u);
}

TEST(Connector, SamplingReducesCharge) {
  auto run_with_n = [](std::uint64_t n) {
    ConnectorConfig cfg;
    cfg.sample_every_n = n;
    Pipeline p(cfg, 1);
    auto many_ops = [](darshan::Runtime& rt) -> sim::Task<void> {
      darshan::RankIo io = rt.rank(0);
      const Fd fd = co_await io.open(Module::kPosix, "/f", true);
      for (int i = 0; i < 100; ++i) co_await io.write(fd, 100);
      co_await io.close(fd);
    };
    p.engine.spawn(many_ops(*p.runtime));
    p.engine.run();
    return p.connector->stats().charged;
  };
  const auto full = run_with_n(1);
  const auto tenth = run_with_n(10);
  EXPECT_LT(tenth, full / 5);
}

TEST(Connector, PublishDisabledObservesOnly) {
  ConnectorConfig cfg;
  cfg.publish = false;
  Pipeline p(cfg, 1);
  ldms::CountingStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  EXPECT_EQ(store.stored(), 0u);
  EXPECT_EQ(p.connector->stats().events_seen, 4u);
  EXPECT_EQ(p.connector->stats().messages_published, 0u);
}

// ------------------------------------------------------------- decoder ----

TEST(Decoder, DecodesConnectorMessage) {
  Pipeline p;
  dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 2,
                                                .shard_attr = "rank",
                                                .parallel_query = false});
  DarshanDecoder decoder(*p.aggregator, "darshanConnector", cluster);
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  EXPECT_EQ(decoder.decoded(), 4u);
  EXPECT_EQ(decoder.malformed(), 0u);
  EXPECT_EQ(cluster.total_objects(), 4u);

  const auto rows = cluster.query("darshan_data", "job_rank_time");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0]->as_string("op"), "open");
  EXPECT_EQ(rows[0]->as_string("type"), "MET");
  EXPECT_EQ(rows[3]->as_string("op"), "close");
  EXPECT_EQ(rows[1]->as_uint("record_id"), fnv1a64("/scratch/out.dat"));
  // Timestamps strictly increase along the rank's timeline.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i]->as_double("seg_timestamp"),
              rows[i - 1]->as_double("seg_timestamp"));
  }
}

TEST(Decoder, RejectsMalformedPayloads) {
  dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 1,
                                                .shard_attr = "rank",
                                                .parallel_query = false});
  sim::Engine engine;
  ldms::LdmsDaemon daemon(&engine, "d");
  DarshanDecoder decoder(daemon, "t", cluster);
  auto proc = [](ldms::LdmsDaemon& d) -> sim::Task<void> {
    d.publish("t", ldms::PayloadFormat::kJson, "{not json");
    d.publish("t", ldms::PayloadFormat::kJson, "{\"no\":\"seg\"}");
    d.publish("t", ldms::PayloadFormat::kString, "plain");
    co_return;
  };
  engine.spawn(proc(daemon));
  engine.run();
  EXPECT_EQ(decoder.decoded(), 0u);
  EXPECT_EQ(decoder.malformed(), 3u);
}

TEST(Decoder, CsvRowMatchesHeaderArity) {
  const auto schema = darshan_data_schema();
  const std::string header(darshan_csv_header());
  const auto msgs = decode_message(
      schema,
      R"({"uid":1,"exe":"/e","job_id":2,"rank":0,"ProducerName":"n","file":"/f",)"
      R"("record_id":3,"module":"POSIX","type":"MET","max_byte":-1,)"
      R"("switches":-1,"flushes":-1,"cnt":1,"op":"open",)"
      R"("seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,"reg_hslab":-1,)"
      R"("ndims":-1,"npoints":-1,"off":-1,"len":-1,"dur":0.1,"timestamp":1.5}]})");
  ASSERT_EQ(msgs.size(), 1u);
  const std::string row = to_csv_row(msgs[0]);
  EXPECT_EQ(dlc::split(row, ',').size(), dlc::split(header, ',').size());
}

TEST(Decoder, MultiSegmentMessagesFlatten) {
  const auto schema = darshan_data_schema();
  const auto msgs = decode_message(
      schema,
      R"({"uid":1,"exe":"N/A","job_id":2,"rank":0,"ProducerName":"n",)"
      R"("file":"N/A","record_id":3,"module":"POSIX","type":"MOD",)"
      R"("max_byte":99,"switches":0,"flushes":-1,"cnt":2,"op":"write",)"
      R"("seg":[{"off":0,"len":50,"dur":0.1,"timestamp":1.0},)"
      R"({"off":50,"len":50,"dur":0.2,"timestamp":2.0}]})");
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].as_int("seg_off"), 0);
  EXPECT_EQ(msgs[1].as_int("seg_off"), 50);
  // Missing HDF5 fields fall back to sentinels.
  EXPECT_EQ(msgs[0].as_int("seg_ndims"), -1);
  EXPECT_EQ(msgs[0].as_string("seg_data_set"), "N/A");
}

// One single-event binary frame; `end` varies the payload slightly.
std::string one_event_frame(SimTime end) {
  wire::EncodeContext ctx;
  ctx.uid = 1;
  ctx.job_id = 2;
  ctx.exe = "/e";
  ctx.epoch_seconds = 0.0;
  wire::FrameEncoder enc(ctx);
  darshan::IoEvent e;
  e.module = Module::kPosix;
  e.op = darshan::Op::kWrite;
  e.rank = 0;
  e.record_id = 7;
  e.cnt = 1;
  e.start = end - kMicrosecond;
  e.end = end;
  enc.add(e, "nid1");
  return enc.take_frame();
}

ldms::StreamMessage sequenced_frame(std::uint64_t seq) {
  ldms::StreamMessage msg;
  msg.tag = "t";
  msg.format = ldms::PayloadFormat::kBinary;
  msg.payload = one_event_frame(static_cast<SimTime>(seq) * kMillisecond);
  msg.producer = "nid1";
  msg.seq = seq;
  return msg;
}

TEST(Decoder, OutOfOrderBinaryFramesDecodeIndependently) {
  dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 1,
                                                .shard_attr = "rank",
                                                .parallel_query = false});
  sim::Engine engine;
  ldms::LdmsDaemon daemon(&engine, "d");
  DarshanDecoder decoder(daemon, "t", cluster, /*dedup_redelivered=*/true);
  // Arrival order 2, 1, 3: frames are self-contained, so reordering can
  // never corrupt decode — every row lands, and the tracker records the
  // straggler.
  daemon.bus().publish(sequenced_frame(2));
  daemon.bus().publish(sequenced_frame(1));
  daemon.bus().publish(sequenced_frame(3));
  EXPECT_EQ(decoder.decoded(), 3u);
  EXPECT_EQ(decoder.malformed(), 0u);
  EXPECT_EQ(decoder.duplicates_dropped(), 0u);
  const auto* st = decoder.tracker().stats("nid1");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->unique, 3u);
  EXPECT_EQ(st->reordered, 1u);
  EXPECT_EQ(st->lost(), 0u);
}

TEST(Decoder, DuplicatedBinaryFramesAreDroppedWhenDedupEnabled) {
  dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 1,
                                                .shard_attr = "rank",
                                                .parallel_query = false});
  sim::Engine engine;
  ldms::LdmsDaemon daemon(&engine, "d");
  DarshanDecoder decoder(daemon, "t", cluster, /*dedup_redelivered=*/true);
  daemon.bus().publish(sequenced_frame(1));
  daemon.bus().publish(sequenced_frame(2));
  daemon.bus().publish(sequenced_frame(1));  // at-least-once redelivery
  daemon.bus().publish(sequenced_frame(2));
  EXPECT_EQ(decoder.decoded(), 2u);  // each unique frame ingested once
  EXPECT_EQ(decoder.duplicates_dropped(), 2u);
  EXPECT_EQ(cluster.total_objects(), 2u);
  EXPECT_EQ(decoder.tracker().stats("nid1")->duplicates, 2u);
}

TEST(Decoder, DuplicatesIngestButAreCountedWhenDedupDisabled) {
  dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 1,
                                                .shard_attr = "rank",
                                                .parallel_query = false});
  sim::Engine engine;
  ldms::LdmsDaemon daemon(&engine, "d");
  DarshanDecoder decoder(daemon, "t", cluster);  // best-effort default
  daemon.bus().publish(sequenced_frame(1));
  daemon.bus().publish(sequenced_frame(1));
  // Historical behaviour preserved: both copies land in DSOS...
  EXPECT_EQ(decoder.decoded(), 2u);
  EXPECT_EQ(decoder.duplicates_dropped(), 0u);
  // ...but the tracker still makes the duplication visible.
  EXPECT_EQ(decoder.tracker().stats("nid1")->duplicates, 1u);
}

TEST(Schema, JointIndicesExist) {
  const auto schema = darshan_data_schema();
  EXPECT_TRUE(schema->find_index("job_rank_time").has_value());
  EXPECT_TRUE(schema->find_index("job_time_rank").has_value());
  EXPECT_TRUE(schema->find_index("time").has_value());
  EXPECT_EQ(schema->attrs().size(), 24u);
}


// ------------------------------------------------ filters & rate limits ---

TEST(Connector, ModuleFilterDropsOtherModules) {
  ConnectorConfig cfg;
  cfg.module_filter = {darshan::Module::kMpiio};
  Pipeline p(cfg, 1);
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const Fd posix_fd = co_await io.open(Module::kPosix, "/p", true);
    co_await io.write(posix_fd, 10);
    co_await io.close(posix_fd);
    const Fd mpi_fd = co_await io.open(Module::kMpiio, "/m", true);
    co_await io.write(mpi_fd, 10);
    co_await io.close(mpi_fd);
  };
  p.engine.spawn(proc(*p.runtime));
  p.engine.run();
  // Only the MPIIO-layer events pass (the POSIX sub-event is filtered).
  ASSERT_EQ(store.rows().size(), 3u);
  for (const auto& row : store.rows()) {
    EXPECT_NE(row.find("\"module\":\"MPIIO\""), std::string::npos) << row;
  }
  EXPECT_GT(p.connector->stats().events_sampled_out, 0u);
}

TEST(Connector, RateLimitBoundsPublishRate) {
  ConnectorConfig cfg;
  cfg.min_publish_interval = 10 * kSecond;
  Pipeline p(cfg, 1);
  ldms::CountingStore store;
  store.attach(*p.aggregator, "darshanConnector");
  auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/f", true);
    // 100 writes in quick succession: far faster than 1 per 10s.
    for (int i = 0; i < 100; ++i) co_await io.write(fd, 100);
    co_await io.close(fd);
  };
  p.engine.spawn(proc(*p.runtime));
  p.engine.run();
  const double runtime_s = to_seconds(p.engine.now());
  const auto data_published = p.connector->stats().messages_published - 2;
  // At most one data event per 10 s window (plus the first).
  EXPECT_LE(static_cast<double>(data_published), runtime_s / 10.0 + 1.0);
  EXPECT_GT(p.connector->stats().events_sampled_out, 50u);
  // Open/close always pass.
  EXPECT_GE(store.stored(), 2u);
}

TEST(Connector, RateLimitAndSamplingCompose) {
  ConnectorConfig cfg;
  cfg.sample_every_n = 2;
  cfg.min_publish_interval = kSecond;
  Pipeline p(cfg, 1);
  auto proc = [](darshan::Runtime& rt) -> sim::Task<void> {
    darshan::RankIo io = rt.rank(0);
    const Fd fd = co_await io.open(Module::kPosix, "/f", true);
    for (int i = 0; i < 20; ++i) co_await io.write(fd, 100);
    co_await io.close(fd);
  };
  p.engine.spawn(proc(*p.runtime));
  p.engine.run();
  // Both mitigations applied: strictly fewer messages than either alone
  // would allow at most.
  EXPECT_LT(p.connector->stats().messages_published, 12u);
  EXPECT_EQ(p.connector->stats().events_seen, 22u);
}



TEST(Connector, MessageFieldOrderMatchesFig3) {
  Pipeline p;
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  // The paper's sample message (Fig. 3) fixes the field order; verify the
  // raw text, not just the parsed content.
  const std::string& raw = p.store_row_or(store, 0);
  const char* expected_order[] = {"\"uid\":",      "\"exe\":",
                                  "\"job_id\":",   "\"rank\":",
                                  "\"ProducerName\":", "\"file\":",
                                  "\"record_id\":", "\"module\":",
                                  "\"type\":",     "\"max_byte\":",
                                  "\"switches\":", "\"flushes\":",
                                  "\"cnt\":",      "\"op\":",
                                  "\"seg\":"};
  std::size_t pos = 0;
  for (const char* field : expected_order) {
    const std::size_t found = raw.find(field, pos);
    ASSERT_NE(found, std::string::npos) << field << " out of order in " << raw;
    pos = found;
  }
}

TEST(Decoder, FuzzedPayloadsNeverCrash) {
  // Mutate a valid message with random byte edits; the decoder must either
  // decode or count the payload malformed — never throw or crash.
  Pipeline p;
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  const std::string valid = store.rows()[1];

  const auto schema = darshan_data_schema();
  Rng rng(20260706);
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int edits = static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    const auto objects = decode_message(schema, mutated);
    objects.empty() ? ++rejected : ++decoded;
  }
  // Most mutations break the JSON; some survive.  Both paths executed.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(decoded + rejected, 2000);
}

// Renders decoded rows so equivalence checks compare bytes, not spot
// fields.
std::string rows_csv(const std::vector<dsos::Object>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += to_csv_row(row);
    out += '\n';
  }
  return out;
}

TEST(Decoder, FastPathMatchesDomOnConnectorPayloads) {
  const auto schema = darshan_data_schema();
  const std::vector<std::string> payloads{
      // Canonical single-segment message.
      R"({"uid":1,"exe":"/e","job_id":2,"rank":0,"ProducerName":"n","file":"/f",)"
      R"("record_id":3,"module":"POSIX","type":"MET","max_byte":-1,)"
      R"("switches":-1,"flushes":-1,"cnt":1,"op":"open",)"
      R"("seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,"reg_hslab":-1,)"
      R"("ndims":-1,"npoints":-1,"off":-1,"len":-1,"dur":0.1,"timestamp":1.5}]})",
      // Multi-segment with missing fields (sentinel fallbacks).
      R"({"uid":1,"job_id":2,"rank":3,"module":"MPIIO","type":"MOD","cnt":2,)"
      R"("op":"write","seg":[{"off":0,"len":50,"dur":0.1,"timestamp":1.0},)"
      R"({"off":50,"len":50,"dur":0.2,"timestamp":2.0}]})",
      // Escapes in strings and wrong-typed numeric fields.
      R"({"uid":"not-a-number","exe":"/bin\t\"x\"","job_id":2.75,"rank":-4,)"
      R"("module":"POSIX","type":"MET","op":"open\\close",)"
      R"("seg":[{"dur":"bad","timestamp":3}]})",
      // Duplicate keys: last one wins in both paths.
      R"({"rank":1,"rank":7,"module":"POSIX","op":"open",)"
      R"("seg":[{"timestamp":1.0,"timestamp":2.0}]})",
      // Unknown extra members are skipped (objects, arrays, literals).
      R"({"rank":1,"module":"POSIX","extra":{"a":[1,2,{"b":null}]},)"
      R"("more":true,"seg":[{"timestamp":1.0}]})",
      // Empty segment list decodes to zero rows.
      R"({"rank":1,"module":"POSIX","seg":[]})",
      // Non-object segment entries are skipped, like the DOM loop.
      R"({"rank":1,"module":"POSIX","seg":[1,{"timestamp":2.0},"x"]})",
  };
  for (const std::string& payload : payloads) {
    std::vector<dsos::Object> fast;
    ASSERT_TRUE(decode_message_fast(schema, payload, fast)) << payload;
    EXPECT_EQ(rows_csv(fast), rows_csv(decode_message(schema, payload)))
        << payload;
  }
}

TEST(Decoder, FastPathFallsBackOnUnsupportedInput) {
  const auto schema = darshan_data_schema();
  // \u escapes, malformed JSON, trailing garbage, wrong top-level type:
  // the scanner refuses (caller then uses the DOM), never mis-decodes.
  const std::vector<std::string> rejected{
      R"({"op":"\u0041","seg":[{"timestamp":1.0}]})",
      R"({"rank":1,"seg":[{"timestamp":1.0}]} trailing)",
      R"({"rank":1,"seg":[{"timestamp":1.0})",
      R"([{"rank":1}])",
      R"({"rank":1 "seg":[]})",
  };
  for (const std::string& payload : rejected) {
    std::vector<dsos::Object> fast;
    EXPECT_FALSE(decode_message_fast(schema, payload, fast)) << payload;
  }
}

TEST(Decoder, FastPathEquivalentUnderFuzzedMutation) {
  // Property: whenever the zero-copy scanner accepts a payload, its rows
  // are byte-identical to the DOM decoder's.  Mutations exercise partial
  // JSON, shuffled types, and broken numbers.  Since the scanner's
  // structural loops dispatch to SIMD kernels (scan.hpp), every trial
  // also re-runs the fast path at each SIMD tier the host supports:
  // acceptance AND bytes must match the scalar reference exactly.
  Pipeline p;
  ldms::CsvStore store;
  store.attach(*p.aggregator, "darshanConnector");
  p.engine.spawn(session(*p.runtime, 0));
  p.engine.run();
  const std::string valid = store.rows()[1];

  const auto schema = darshan_data_schema();
  Rng rng(20260807);
  int fast_ok = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int edits = static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    util::set_simd_level(util::SimdLevel::kScalar);
    std::vector<dsos::Object> fast;
    const bool accepted = decode_message_fast(schema, mutated, fast);
    const std::string reference = accepted ? rows_csv(fast) : std::string();
    for (const auto level :
         {util::SimdLevel::kSse2, util::SimdLevel::kAvx2}) {
      if (util::detected_simd() < level) continue;
      util::set_simd_level(level);
      std::vector<dsos::Object> rows;
      ASSERT_EQ(decode_message_fast(schema, mutated, rows), accepted)
          << mutated;
      if (accepted) ASSERT_EQ(rows_csv(rows), reference) << mutated;
    }
    util::reset_simd_level();
    if (accepted) {
      ++fast_ok;
      ASSERT_EQ(reference, rows_csv(decode_message(schema, mutated)))
          << mutated;
    }
  }
  EXPECT_GT(fast_ok, 0);  // the equivalence branch actually executed
}

// ----------------------------------------------------- binary fast path ----
//
// The decoder's kBinary branch defaults to the FrameCursor fast path
// (make_object_unchecked, per-frame obs stamping).  decode_frame wraps
// the same cursor, so the two A/B arms must be byte-identical on good
// frames AND agree on malformed counting — set_binary_fastpath(false) is
// only trustworthy as a diagnostic if flipping it changes nothing.

std::string cluster_csv(const dsos::DsosCluster& cluster) {
  std::string out;
  for (const dsos::Object* obj :
       cluster.query("darshan_data", "job_rank_time")) {
    out += to_csv_row(*obj);
    out += '\n';
  }
  return out;
}

TEST(Decoder, BinaryFastPathByteIdenticalToWrappedDecode) {
  // Frames exercising every optional block, plus one corrupt payload.
  std::vector<std::string> frames;
  {
    wire::EncodeContext ctx;
    ctx.uid = 99066;
    ctx.job_id = 7;
    ctx.exe = "/projects/ldms_darshan/mpi-io-test";
    ctx.epoch_seconds = 1.6e9;
    wire::FrameEncoder enc(ctx);
    const std::string path = "/fscratch/testFile";
    darshan::IoEvent open;
    open.op = darshan::Op::kOpen;
    open.rank = 1;
    open.file_path = &path;
    open.end = kSecond;
    enc.add(open, "nid1");
    darshan::IoEvent write;
    write.op = darshan::Op::kWrite;
    write.rank = 2;
    write.offset = 4096;
    write.length = 65536;
    write.end = 2 * kSecond;
    enc.add(write, "nid1");
    frames.push_back(enc.take_frame());
    darshan::IoEvent h5;
    h5.module = darshan::Module::kH5D;
    h5.op = darshan::Op::kRead;
    h5.rank = 3;
    h5.h5.ndims = 2;
    h5.h5.npoints = 1024;
    h5.h5.data_set = "/dset/a";
    h5.end = 3 * kSecond;
    enc.add(h5, "nid2");
    frames.push_back(enc.take_frame());
  }
  frames.push_back("Wgarbage-not-a-frame");

  struct Arm {
    std::string csv;
    std::uint64_t decoded = 0;
    std::uint64_t frames_decoded = 0;
    std::uint64_t malformed = 0;
  };
  const auto run = [&](bool fastpath) {
    dsos::DsosCluster cluster(dsos::ClusterConfig{.shard_count = 2,
                                                  .shard_attr = "rank",
                                                  .parallel_query = false});
    sim::Engine engine;
    ldms::LdmsDaemon daemon(&engine, "d");
    DarshanDecoder decoder(daemon, "t", cluster);
    decoder.set_binary_fastpath(fastpath);
    EXPECT_EQ(decoder.binary_fastpath(), fastpath);
    for (const std::string& f : frames) {
      daemon.publish("t", ldms::PayloadFormat::kBinary, f);
    }
    return Arm{cluster_csv(cluster), decoder.decoded(),
               decoder.frames_decoded(), decoder.malformed()};
  };
  const Arm fast = run(true);
  const Arm slow = run(false);
  EXPECT_FALSE(fast.csv.empty());
  EXPECT_EQ(fast.csv, slow.csv);  // byte-identical rows, same order
  EXPECT_EQ(fast.decoded, slow.decoded);
  EXPECT_EQ(fast.frames_decoded, slow.frames_decoded);
  EXPECT_EQ(fast.malformed, slow.malformed);
  EXPECT_EQ(fast.decoded, 3u);
  EXPECT_EQ(fast.malformed, 1u);
}

TEST(Decoder, BinaryRowsMatchJsonRowsOnMicrosecondGrid) {
  // The codec doc promises the binary path differs from JSON only in
  // precision (codec.hpp): the JSON writer prints six fractional digits
  // while frames carry exact nanoseconds.  On a whole-microsecond time
  // grid both renderings denote the same doubles, so the decoded rows
  // must be byte-identical — the honest cross-format identity check.
  const auto schema = darshan_data_schema();
  wire::EncodeContext ctx;
  ctx.uid = 7;
  ctx.job_id = 9;
  ctx.exe = "/bin/app";
  ctx.epoch_seconds = 1.6e9;
  wire::FrameEncoder enc(ctx);
  const std::string path = "/fscratch/f";
  darshan::IoEvent open;
  open.op = darshan::Op::kOpen;
  open.rank = 3;
  open.record_id = 11;
  open.switches = 0;
  open.cnt = 1;
  open.file_path = &path;
  open.start = 3 * kSecond;
  open.end = 3 * kSecond + 1 * kMillisecond;
  enc.add(open, "nid9");
  darshan::IoEvent write;
  write.op = darshan::Op::kWrite;
  write.rank = 3;
  write.record_id = 11;
  write.max_byte = 4095;
  write.switches = 0;
  write.cnt = 5;
  write.offset = 0;
  write.length = 4096;
  write.start = 3 * kSecond + 1 * kMillisecond;
  write.end = 3 * kSecond + 1250 * kMicrosecond;
  enc.add(write, "nid9");
  const auto binary_rows = wire::decode_frame(schema, enc.take_frame());
  ASSERT_EQ(binary_rows.size(), 2u);

  // The same two events as the connector's JSON mode renders them
  // (Fig. 3 member order, %.6f doubles, MET/MOD metadata elision).
  const std::string open_json =
      R"({"uid":7,"exe":"/bin/app","job_id":9,"rank":3,"ProducerName":"nid9",)"
      R"("file":"/fscratch/f","record_id":11,"module":"POSIX","type":"MET",)"
      R"("max_byte":-1,"switches":0,"flushes":-1,"cnt":1,"op":"open",)"
      R"("seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,)"
      R"("reg_hslab":-1,"ndims":-1,"npoints":-1,"off":-1,"len":-1,)"
      R"("dur":0.001000,"timestamp":1600000003.001000}]})";
  const std::string write_json =
      R"({"uid":7,"exe":"N/A","job_id":9,"rank":3,"ProducerName":"nid9",)"
      R"("file":"N/A","record_id":11,"module":"POSIX","type":"MOD",)"
      R"("max_byte":4095,"switches":0,"flushes":-1,"cnt":5,"op":"write",)"
      R"("seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,)"
      R"("reg_hslab":-1,"ndims":-1,"npoints":-1,"off":0,"len":4096,)"
      R"("dur":0.000250,"timestamp":1600000003.001250}]})";
  std::string json_csv;
  for (const std::string& payload : {open_json, write_json}) {
    const auto rows = decode_message(schema, payload);
    ASSERT_EQ(rows.size(), 1u) << payload;
    json_csv += rows_csv(rows);
  }
  EXPECT_EQ(rows_csv(binary_rows), json_csv);
}

// ---------------------------------------------------------- env config ----

core::EnvGetter fake_env(std::map<std::string, std::string> vars) {
  auto owned = std::make_shared<std::map<std::string, std::string>>(
      std::move(vars));
  return [owned](const char* name) -> const char* {
    const auto it = owned->find(name);
    return it == owned->end() ? nullptr : it->second.c_str();
  };
}

TEST(EnvConfig, DisabledByDefault) {
  const EnvConfig cfg = connector_config_from_env(fake_env({}));
  EXPECT_FALSE(cfg.enabled);
  EXPECT_TRUE(cfg.errors.empty());
  EXPECT_EQ(cfg.connector.stream_tag, "darshanConnector");
}

TEST(EnvConfig, ParsesAllKnobs) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_ENABLE", "1"},
      {"DARSHAN_LDMS_STREAM", "my-stream"},
      {"DARSHAN_LDMS_FORMAT", "fast"},
      {"DARSHAN_LDMS_SAMPLE_N", "10"},
      {"DARSHAN_LDMS_MIN_INTERVAL_US", "2500"},
      {"DARSHAN_LDMS_MODULES", "POSIX, MPIIO"},
      {"DARSHAN_LDMS_INGEST_THREADS", "4"},
  }));
  EXPECT_TRUE(cfg.enabled);
  EXPECT_TRUE(cfg.errors.empty());
  EXPECT_EQ(cfg.connector.stream_tag, "my-stream");
  EXPECT_EQ(cfg.connector.format, FormatMode::kFastJson);
  EXPECT_EQ(cfg.connector.sample_every_n, 10u);
  EXPECT_EQ(cfg.connector.min_publish_interval, 2500 * kMicrosecond);
  EXPECT_EQ(cfg.connector.ingest_threads, 4u);
  ASSERT_EQ(cfg.connector.module_filter.size(), 2u);
  EXPECT_EQ(cfg.connector.module_filter[0], darshan::Module::kPosix);
  EXPECT_EQ(cfg.connector.module_filter[1], darshan::Module::kMpiio);
}

TEST(EnvConfig, EnableZeroMeansOff) {
  const EnvConfig cfg = connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_ENABLE", "0"}}));
  EXPECT_FALSE(cfg.enabled);
}

TEST(EnvConfig, ReportsUnparsableValues) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_FORMAT", "yaml"},
      {"DARSHAN_LDMS_SAMPLE_N", "zero"},
      {"DARSHAN_LDMS_MODULES", "POSIX,NVME"},
      {"DARSHAN_LDMS_INGEST_THREADS", "many"},
  }));
  ASSERT_EQ(cfg.errors.size(), 4u);
  // The valid parts still apply.
  ASSERT_EQ(cfg.connector.module_filter.size(), 1u);
  EXPECT_EQ(cfg.connector.sample_every_n, 1u);    // default kept
  EXPECT_EQ(cfg.connector.ingest_threads, 0u);    // default kept
}

TEST(EnvConfig, ParsesWireFormatKnobs) {
  EXPECT_EQ(connector_config_from_env(fake_env({})).connector.wire_format,
            WireFormat::kJson);
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_WIRE_FORMAT", "binary_batched"},
      {"DARSHAN_LDMS_BATCH_EVENTS", "128"},
      {"DARSHAN_LDMS_BATCH_BYTES", "32768"},
      {"DARSHAN_LDMS_BATCH_DELAY_US", "250"},
  }));
  EXPECT_TRUE(cfg.errors.empty());
  EXPECT_EQ(cfg.connector.wire_format, WireFormat::kBinaryBatched);
  EXPECT_EQ(cfg.connector.batch.max_events, 128u);
  EXPECT_EQ(cfg.connector.batch.max_bytes, 32768u);
  EXPECT_EQ(cfg.connector.batch.max_delay, 250 * kMicrosecond);

  const EnvConfig plain = connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_WIRE_FORMAT", "binary"}}));
  EXPECT_EQ(plain.connector.wire_format, WireFormat::kBinary);
  EXPECT_EQ(wire_format_name(plain.connector.wire_format), "binary");
}

TEST(EnvConfig, ReportsBadWireFormatValues) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_WIRE_FORMAT", "protobuf"},
      {"DARSHAN_LDMS_BATCH_EVENTS", "0"},
      {"DARSHAN_LDMS_BATCH_BYTES", "-5"},
      {"DARSHAN_LDMS_BATCH_DELAY_US", "soon"},
  }));
  EXPECT_EQ(cfg.errors.size(), 4u);
  EXPECT_EQ(cfg.connector.wire_format, WireFormat::kJson);  // default kept
  EXPECT_EQ(cfg.connector.batch.max_events, wire::BatchConfig{}.max_events);
}

TEST(EnvConfig, ParsesHotPathKnobs) {
  // Defaults: no pinning, auto SIMD, auto (on) binary fast path.
  const EnvConfig defaults = connector_config_from_env(fake_env({}));
  EXPECT_EQ(defaults.connector.pin, "none");
  EXPECT_EQ(defaults.connector.simd, "auto");
  EXPECT_EQ(defaults.connector.fastpath, "auto");
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_PIN", "0,2"},
      {"DARSHAN_LDMS_SIMD", "sse2"},
      {"DARSHAN_LDMS_FASTPATH", "off"},
  }));
  EXPECT_TRUE(cfg.errors.empty());
  EXPECT_EQ(cfg.connector.pin, "0,2");
  EXPECT_EQ(cfg.connector.simd, "sse2");
  EXPECT_EQ(cfg.connector.fastpath, "off");
  const EnvConfig autos = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_PIN", "auto"},
      {"DARSHAN_LDMS_SIMD", "scalar"},
      {"DARSHAN_LDMS_FASTPATH", "on"},
  }));
  EXPECT_TRUE(autos.errors.empty());
  EXPECT_EQ(autos.connector.pin, "auto");
}

TEST(EnvConfig, ReportsBadHotPathValues) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_PIN", "0,,2"},      // empty list item
      {"DARSHAN_LDMS_SIMD", "avx512"},   // not a supported tier name
      {"DARSHAN_LDMS_FASTPATH", "fast"}, // not auto/on/off
  }));
  EXPECT_EQ(cfg.errors.size(), 3u);
  EXPECT_EQ(cfg.connector.pin, "none");       // defaults kept
  EXPECT_EQ(cfg.connector.simd, "auto");
  EXPECT_EQ(cfg.connector.fastpath, "auto");
  const EnvConfig bad_cpu = connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_PIN", "-3"}}));
  EXPECT_EQ(bad_cpu.errors.size(), 1u);
  EXPECT_EQ(bad_cpu.connector.pin, "none");
}

TEST(EnvConfig, ParsesDeliveryKnobs) {
  EXPECT_EQ(connector_config_from_env(fake_env({})).connector.delivery,
            relia::DeliveryMode::kBestEffort);
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_DELIVERY", "at_least_once"},
      {"DARSHAN_LDMS_SPOOL_MSGS", "1234"},
      {"DARSHAN_LDMS_SPOOL_BYTES", "65536"},
  }));
  EXPECT_TRUE(cfg.errors.empty());
  EXPECT_EQ(cfg.connector.delivery, relia::DeliveryMode::kAtLeastOnce);
  EXPECT_EQ(cfg.connector.spool.max_msgs, 1234u);
  EXPECT_EQ(cfg.connector.spool.max_bytes, 65536u);
}

TEST(EnvConfig, ReportsBadDeliveryValues) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_DELIVERY", "exactly_once"},  // nobody has this
      {"DARSHAN_LDMS_SPOOL_MSGS", "0"},
      {"DARSHAN_LDMS_SPOOL_BYTES", "many"},
  }));
  EXPECT_EQ(cfg.errors.size(), 3u);
  EXPECT_EQ(cfg.connector.delivery, relia::DeliveryMode::kBestEffort);
  EXPECT_EQ(cfg.connector.spool.max_msgs, relia::SpoolConfig{}.max_msgs);
}

// Integer-parsing hardening: negative, overflowing, and trailing-garbage
// values must never take effect — the default stays and the rejection is
// recorded (and logged; see LogsRejectedValues).

TEST(EnvConfig, RejectsNegativeIntegers) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_INGEST_THREADS", "-1"},
      {"DARSHAN_LDMS_SPOOL_MSGS", "-4"},
      {"DARSHAN_LDMS_SPOOL_BYTES", "-65536"},
  }));
  EXPECT_EQ(cfg.errors.size(), 3u);
  EXPECT_EQ(cfg.connector.ingest_threads, 0u);
  EXPECT_EQ(cfg.connector.spool.max_msgs, relia::SpoolConfig{}.max_msgs);
  EXPECT_EQ(cfg.connector.spool.max_bytes, relia::SpoolConfig{}.max_bytes);
}

TEST(EnvConfig, RejectsOverflowingIntegers) {
  // Twenty digits: past 2^64-1, so from_chars reports out-of-range rather
  // than silently wrapping to some small number of threads.
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_INGEST_THREADS", "99999999999999999999"},
      {"DARSHAN_LDMS_SPOOL_MSGS", "18446744073709551616"},  // 2^64
  }));
  EXPECT_EQ(cfg.errors.size(), 2u);
  EXPECT_EQ(cfg.connector.ingest_threads, 0u);
  EXPECT_EQ(cfg.connector.spool.max_msgs, relia::SpoolConfig{}.max_msgs);
}

TEST(EnvConfig, RejectsTrailingGarbage) {
  const EnvConfig cfg = connector_config_from_env(fake_env({
      {"DARSHAN_LDMS_INGEST_THREADS", "12x"},
      {"DARSHAN_LDMS_SPOOL_MSGS", "4 "},
      {"DARSHAN_LDMS_SPOOL_BYTES", "0x100"},
  }));
  EXPECT_EQ(cfg.errors.size(), 3u);
  EXPECT_EQ(cfg.connector.ingest_threads, 0u);
  EXPECT_EQ(cfg.connector.spool.max_msgs, relia::SpoolConfig{}.max_msgs);
  EXPECT_EQ(cfg.connector.spool.max_bytes, relia::SpoolConfig{}.max_bytes);
}

TEST(EnvConfig, CapsIngestThreadCount) {
  const EnvConfig at_cap = connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_INGEST_THREADS", "1024"}}));
  EXPECT_TRUE(at_cap.errors.empty());
  EXPECT_EQ(at_cap.connector.ingest_threads, 1024u);

  // Lexically valid but absurd: would try to spawn 10M OS threads.
  const EnvConfig over = connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_INGEST_THREADS", "10000000"}}));
  ASSERT_EQ(over.errors.size(), 1u);
  EXPECT_EQ(over.errors[0], "DARSHAN_LDMS_INGEST_THREADS=10000000");
  EXPECT_EQ(over.connector.ingest_threads, 0u);  // default kept
}

TEST(EnvConfig, LogsRejectedValues) {
  std::vector<std::string> warnings;
  set_log_sink([&](LogLevel level, const std::string& msg) {
    if (level >= LogLevel::kWarn) warnings.push_back(msg);
  });
  connector_config_from_env(
      fake_env({{"DARSHAN_LDMS_INGEST_THREADS", "banana"}}));
  set_log_sink(nullptr);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("DARSHAN_LDMS_INGEST_THREADS"),
            std::string::npos);
  EXPECT_NE(warnings[0].find("banana"), std::string::npos);
}

}  // namespace
}  // namespace dlc::core
