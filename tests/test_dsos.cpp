// Tests for the DSOS layer: key encoding order preservation, schemas,
// joint indices, filtered queries, sharded clusters with merged parallel
// queries, CSV round-trips.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "dsos/cluster.hpp"
#include "dsos/container.hpp"
#include "dsos/csv.hpp"
#include "dsos/index.hpp"
#include "dsos/partition.hpp"
#include "dsos/persist.hpp"
#include "dsos/schema.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dlc::dsos {
namespace {

// ------------------------------------------------------------ encoding ----

template <typename T, typename Encode>
void expect_order_preserved(const std::vector<T>& sorted, Encode encode) {
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    KeyBytes a, b;
    encode(a, sorted[i - 1]);
    encode(b, sorted[i]);
    EXPECT_LT(a, b) << "at " << i;
  }
}

TEST(Encoding, Int64OrderPreserved) {
  expect_order_preserved<std::int64_t>(
      {std::numeric_limits<std::int64_t>::min(), -1'000'000, -1, 0, 1, 42,
       std::numeric_limits<std::int64_t>::max()},
      [](KeyBytes& out, std::int64_t v) { encode_int64(out, v); });
}

TEST(Encoding, Uint64OrderPreserved) {
  expect_order_preserved<std::uint64_t>(
      {0, 1, 255, 256, 1'000'000, std::numeric_limits<std::uint64_t>::max()},
      [](KeyBytes& out, std::uint64_t v) { encode_uint64(out, v); });
}

TEST(Encoding, DoubleOrderPreserved) {
  expect_order_preserved<double>(
      {-1e300, -1.5, -1e-300, 0.0, 1e-300, 1.0, 3.14, 1e300},
      [](KeyBytes& out, double v) { encode_double(out, v); });
}

TEST(Encoding, StringOrderPreservedIncludingPrefixes) {
  expect_order_preserved<std::string>(
      {"", "a", "aa", "ab", "b", std::string("b\0c", 3), "bc"},
      [](KeyBytes& out, const std::string& v) { encode_string(out, v); });
}

TEST(Encoding, PropertyRandomInt64PairsOrdered) {
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::int64_t>(rng.next_u64());
    const auto b = static_cast<std::int64_t>(rng.next_u64());
    KeyBytes ka, kb;
    encode_int64(ka, a);
    encode_int64(kb, b);
    EXPECT_EQ(a < b, ka < kb);
    EXPECT_EQ(a == b, ka == kb);
  }
}

TEST(Encoding, PropertyRandomDoublePairsOrdered) {
  Rng rng(103);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-1e6, 1e6);
    const double b = rng.uniform(-1e6, 1e6);
    KeyBytes ka, kb;
    encode_double(ka, a);
    encode_double(kb, b);
    EXPECT_EQ(a < b, ka < kb) << a << " vs " << b;
  }
}

TEST(Encoding, PrefixUpperBound) {
  EXPECT_EQ(prefix_upper_bound("abc"), "abd");
  EXPECT_EQ(prefix_upper_bound(std::string("a\xff", 2)), "b");
  EXPECT_TRUE(prefix_upper_bound(std::string("\xff\xff", 2)).empty());
}

// -------------------------------------------------------------- schema ----

SchemaPtr test_schema() {
  return SchemaBuilder("events")
      .attr("job_id", AttrType::kUint64)
      .attr("rank", AttrType::kInt64)
      .attr("timestamp", AttrType::kTimestamp)
      .attr("op", AttrType::kString)
      .attr("dur", AttrType::kDouble)
      .index("job_rank_time", {"job_id", "rank", "timestamp"})
      .index("job_time_rank", {"job_id", "timestamp", "rank"})
      .index("time", {"timestamp"})
      .build();
}

Object make_event(const SchemaPtr& schema, std::uint64_t job, std::int64_t rank,
                  double ts, std::string op, double dur) {
  return make_object(schema,
                     {job, rank, ts, std::move(op), dur});
}

TEST(Schema, BuilderWiresAttrsAndIndices) {
  const auto schema = test_schema();
  EXPECT_EQ(schema->name(), "events");
  EXPECT_EQ(schema->attrs().size(), 5u);
  EXPECT_EQ(schema->attr_id("rank"), 1u);
  EXPECT_THROW(schema->attr_id("nope"), std::out_of_range);
  EXPECT_EQ(schema->index("job_rank_time").attr_ids,
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_FALSE(schema->find_index("bogus").has_value());
}

TEST(Schema, BuilderRejectsUnknownIndexAttr) {
  EXPECT_THROW(SchemaBuilder("s").attr("a", AttrType::kInt64).index("i", {"b"}),
               std::invalid_argument);
}

TEST(Schema, MakeObjectValidatesTypes) {
  const auto schema = test_schema();
  EXPECT_THROW(make_object(schema, {std::int64_t{1}}), std::invalid_argument);
  EXPECT_THROW(
      make_object(schema, {std::uint64_t{1}, std::int64_t{0}, 0.0,
                           std::string("open"), std::string("oops")}),
      std::invalid_argument);
}

// ----------------------------------------------------------- container ----

TEST(Container, InsertAndIndexOrderedScan) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  c.insert(make_event(schema, 2, 0, 30.0, "write", 0.5));
  c.insert(make_event(schema, 1, 1, 20.0, "read", 0.1));
  c.insert(make_event(schema, 1, 0, 10.0, "open", 0.01));
  const auto hits = c.select("events", "job_rank_time");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0]->as_uint("job_id"), 1u);
  EXPECT_EQ(hits[0]->as_int("rank"), 0);
  EXPECT_EQ(hits[1]->as_int("rank"), 1);
  EXPECT_EQ(hits[2]->as_uint("job_id"), 2u);
}

TEST(Container, RejectsUnregisteredSchema) {
  Container c;
  const auto schema = test_schema();
  EXPECT_THROW(c.insert(make_event(schema, 1, 0, 0.0, "open", 0.0)),
               std::out_of_range);
  c.register_schema(schema);
  EXPECT_THROW(c.select("other", "time"), std::out_of_range);
  EXPECT_THROW(c.select("events", "nope"), std::out_of_range);
}

TEST(Container, EqualityPrefixNarrowsScan) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (std::uint64_t job = 1; job <= 4; ++job) {
    for (std::int64_t rank = 0; rank < 8; ++rank) {
      for (int t = 0; t < 10; ++t) {
        c.insert(make_event(schema, job, rank, t * 1.0, "write", 0.1));
      }
    }
  }
  // job==2 && rank==3 via job_rank_time: exactly 10 entries scanned.
  const Filter filter{{"job_id", Cmp::kEq, std::uint64_t{2}},
                      {"rank", Cmp::kEq, std::int64_t{3}}};
  const auto hits = c.select("events", "job_rank_time", filter);
  EXPECT_EQ(hits.size(), 10u);
  EXPECT_EQ(c.last_scanned(), 10u);
  // Same query via the `time` index must scan everything.
  const auto hits2 = c.select("events", "time", filter);
  EXPECT_EQ(hits2.size(), 10u);
  EXPECT_EQ(c.last_scanned(), 320u);
}

TEST(Container, ResidualConditionsApply) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (int t = 0; t < 10; ++t) {
    c.insert(make_event(schema, 1, 0, t * 1.0, t % 2 ? "read" : "write",
                        t * 0.1));
  }
  const Filter filter{{"job_id", Cmp::kEq, std::uint64_t{1}},
                      {"op", Cmp::kEq, std::string("read")},
                      {"dur", Cmp::kGt, 0.25}};
  const auto hits = c.select("events", "job_rank_time", filter);
  ASSERT_EQ(hits.size(), 4u);  // t in {3,5,7,9}
  for (const Object* o : hits) {
    EXPECT_EQ(o->as_string("op"), "read");
    EXPECT_GT(o->as_double("dur"), 0.25);
  }
}

TEST(Container, ComparisonOperatorsWork) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (int t = 0; t < 5; ++t) {
    c.insert(make_event(schema, 1, t, t * 10.0, "w", 1.0));
  }
  EXPECT_EQ(c.select("events", "time",
                     {{"timestamp", Cmp::kGe, 20.0}}).size(),
            3u);
  EXPECT_EQ(c.select("events", "time",
                     {{"timestamp", Cmp::kLt, 20.0}}).size(),
            2u);
  EXPECT_EQ(c.select("events", "time",
                     {{"rank", Cmp::kNe, std::int64_t{0}}}).size(),
            4u);
}

TEST(Container, DuplicateKeysAreKept) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  c.insert(make_event(schema, 1, 0, 5.0, "a", 0.0));
  c.insert(make_event(schema, 1, 0, 5.0, "b", 0.0));
  EXPECT_EQ(c.select("events", "job_rank_time").size(), 2u);
}

// ------------------------------------------------------------- cluster ----

TEST(Cluster, ShardsByRankAndMergesInKeyOrder) {
  ClusterConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_attr = "rank";
  DsosCluster cluster(cfg);
  const auto schema = test_schema();
  cluster.register_schema(schema);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    cluster.insert(make_event(schema, 1 + static_cast<std::uint64_t>(i % 3),
                              rng.uniform_int(0, 15), rng.uniform(0, 100),
                              "write", 0.1));
  }
  EXPECT_EQ(cluster.total_objects(), 500u);
  // Objects should be spread across shards.
  std::size_t nonempty = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    nonempty += cluster.shard(s).container().size() > 0;
  }
  EXPECT_GE(nonempty, 3u);

  const auto merged = cluster.query("events", "job_rank_time");
  ASSERT_EQ(merged.size(), 500u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const auto& a = *merged[i - 1];
    const auto& b = *merged[i];
    const auto ta = std::tuple(a.as_uint("job_id"), a.as_int("rank"),
                               a.as_double("timestamp"));
    const auto tb = std::tuple(b.as_uint("job_id"), b.as_int("rank"),
                               b.as_double("timestamp"));
    EXPECT_LE(ta, tb);
  }
}

TEST(Cluster, ParallelAndSerialQueriesAgree) {
  const auto schema = test_schema();
  ClusterConfig par;
  par.shard_count = 4;
  par.parallel_query = true;
  ClusterConfig ser = par;
  ser.parallel_query = false;
  DsosCluster a(par), b(ser);
  a.register_schema(schema);
  b.register_schema(schema);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    auto obj = make_event(schema, 1, rng.uniform_int(0, 7),
                          rng.uniform(0, 50), i % 2 ? "read" : "write",
                          rng.uniform(0, 2));
    b.insert(obj);
    a.insert(std::move(obj));
  }
  const Filter filter{{"job_id", Cmp::kEq, std::uint64_t{1}},
                      {"op", Cmp::kEq, std::string("read")}};
  const auto ra = a.query("events", "job_rank_time", filter);
  const auto rb = b.query("events", "job_rank_time", filter);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i]->as_double("timestamp"), rb[i]->as_double("timestamp"));
    EXPECT_EQ(ra[i]->as_int("rank"), rb[i]->as_int("rank"));
  }
}

TEST(Cluster, FallsBackToRoundRobinWithoutShardAttr) {
  ClusterConfig cfg;
  cfg.shard_count = 3;
  cfg.shard_attr = "no_such_attr";
  DsosCluster cluster(cfg);
  const auto schema = test_schema();
  cluster.register_schema(schema);
  for (int i = 0; i < 9; ++i) {
    cluster.insert(make_event(schema, 1, 0, i * 1.0, "w", 0.0));
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.shard(s).container().size(), 3u);
  }
}

// ----------------------------------------------------------------- csv ----

TEST(Csv, HeaderAndRowRoundTrip) {
  const auto schema = test_schema();
  EXPECT_EQ(csv_header(*schema), "job_id,rank,timestamp,op,dur");
  const Object obj = make_event(schema, 7, 3, 123.456, "op,with,commas", 0.25);
  const std::string row = csv_row(obj);
  const auto parsed = csv_parse_row(schema, row);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_uint("job_id"), 7u);
  EXPECT_EQ(parsed->as_int("rank"), 3);
  EXPECT_DOUBLE_EQ(parsed->as_double("timestamp"), 123.456);
  EXPECT_EQ(parsed->as_string("op"), "op,with,commas");
  EXPECT_DOUBLE_EQ(parsed->as_double("dur"), 0.25);
}

TEST(Csv, ParseRejectsBadRows) {
  const auto schema = test_schema();
  EXPECT_FALSE(csv_parse_row(schema, "1,2").has_value());
  EXPECT_FALSE(csv_parse_row(schema, "x,0,0,op,0").has_value());
  EXPECT_FALSE(csv_parse_row(schema, "1,0,zebra,op,0").has_value());
}

TEST(Csv, ExportWritesAllRows) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  c.insert(make_event(schema, 1, 0, 1.0, "open", 0.0));
  c.insert(make_event(schema, 1, 0, 2.0, "close", 0.0));
  std::ostringstream out;
  export_csv(out, *schema, c.select("events", "time"));
  const auto lines = dlc::split(out.str(), '\n');
  ASSERT_EQ(lines.size(), 4u);  // header + 2 rows + trailing empty
  EXPECT_EQ(lines[0], "job_id,rank,timestamp,op,dur");
  EXPECT_NE(lines[1].find("open"), std::string::npos);
}


// ------------------------------------------------------------- persist ----

TEST(Persist, ContainerRoundTrip) {
  Container original;
  const auto schema = test_schema();
  original.register_schema(schema);
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    original.insert(make_event(schema, 1 + static_cast<std::uint64_t>(i % 4),
                               rng.uniform_int(0, 7), rng.uniform(0, 100),
                               i % 2 ? "read" : "write", rng.uniform(0, 2)));
  }

  std::stringstream stream;
  save_container(original, stream);
  auto loaded = load_container(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), original.size());

  // Queries over the rebuilt indices agree with the original.
  const Filter filter{{"job_id", Cmp::kEq, std::uint64_t{2}},
                      {"op", Cmp::kEq, std::string("read")}};
  const auto a = original.select("events", "job_rank_time", filter);
  const auto b = loaded->select("events", "job_rank_time", filter);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i]->as_double("timestamp"),
                     b[i]->as_double("timestamp"));
    EXPECT_EQ(a[i]->as_int("rank"), b[i]->as_int("rank"));
  }
}

TEST(Persist, RejectsCorruptStreams) {
  std::stringstream empty;
  EXPECT_FALSE(load_container(empty).has_value());
  std::stringstream garbage("garbage data here");
  EXPECT_FALSE(load_container(garbage).has_value());

  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  c.insert(make_event(schema, 1, 0, 1.0, "open", 0.0));
  std::stringstream full;
  save_container(c, full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 4));
  EXPECT_FALSE(load_container(truncated).has_value());
}

TEST(Persist, ClusterRoundTripOnDisk) {
  ClusterConfig cfg;
  cfg.shard_count = 3;
  cfg.shard_attr = "rank";
  cfg.parallel_query = false;
  DsosCluster cluster(cfg);
  const auto schema = test_schema();
  cluster.register_schema(schema);
  Rng rng(66);
  for (int i = 0; i < 100; ++i) {
    cluster.insert(make_event(schema, 1, rng.uniform_int(0, 9),
                              rng.uniform(0, 50), "write", 0.1));
  }

  const std::string dir = "/tmp/dlc_dsos_persist_test";
  ASSERT_TRUE(save_cluster(cluster, dir));
  auto loaded = load_cluster(dir, cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->total_objects(), 100u);
  // Shard contents preserved shard by shard.
  for (std::size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(loaded->shard(shard).container().size(),
              cluster.shard(shard).container().size());
  }
  const auto a = cluster.query("events", "job_rank_time");
  const auto b = loaded->query("events", "job_rank_time");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->as_int("rank"), b[i]->as_int("rank"));
  }
}

TEST(Persist, LoadClusterFailsOnMissingDir) {
  EXPECT_FALSE(load_cluster("/tmp/definitely-not-a-dlc-dir", ClusterConfig{})
                   .has_value());
}


// ----------------------------------------------------------- partition ----

TEST(Partition, InsertsLandInPrimary) {
  PartitionedStore store("2022-06");
  const auto schema = test_schema();
  store.register_schema(schema);
  store.insert(make_event(schema, 1, 0, 1.0, "open", 0.0));
  const auto parts = store.partitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].name, "2022-06");
  EXPECT_EQ(parts[0].state, PartitionState::kPrimary);
  EXPECT_EQ(parts[0].objects, 1u);
}

TEST(Partition, RotateRetargetsInsertsAndKeepsOldQueryable) {
  PartitionedStore store("june");
  const auto schema = test_schema();
  store.register_schema(schema);
  store.insert(make_event(schema, 1, 0, 1.0, "write", 0.1));
  ASSERT_TRUE(store.rotate("july"));
  EXPECT_EQ(store.primary(), "july");
  store.insert(make_event(schema, 2, 0, 2.0, "write", 0.1));

  const auto parts = store.partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].state, PartitionState::kActive);
  EXPECT_EQ(parts[1].state, PartitionState::kPrimary);
  EXPECT_EQ(parts[0].objects, 1u);
  EXPECT_EQ(parts[1].objects, 1u);
  // Both partitions answer queries, merged in index order.
  const auto rows = store.query("events", "time");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0]->as_double("timestamp"), 1.0);
  EXPECT_DOUBLE_EQ(rows[1]->as_double("timestamp"), 2.0);
  // Duplicate rotation target rejected.
  EXPECT_FALSE(store.rotate("june"));
}

TEST(Partition, OfflineExcludesFromQueries) {
  PartitionedStore store("a");
  const auto schema = test_schema();
  store.register_schema(schema);
  store.insert(make_event(schema, 1, 0, 1.0, "write", 0.1));
  store.rotate("b");
  store.insert(make_event(schema, 2, 0, 2.0, "write", 0.1));

  ASSERT_TRUE(store.set_offline("a"));
  EXPECT_EQ(store.queryable_objects(), 1u);
  EXPECT_EQ(store.query("events", "time").size(), 1u);
  // Primary cannot go offline; unknown names fail.
  EXPECT_FALSE(store.set_offline("b"));
  EXPECT_FALSE(store.set_offline("zzz"));
  // Reattach.
  ASSERT_TRUE(store.set_active("a"));
  EXPECT_EQ(store.query("events", "time").size(), 2u);
  EXPECT_FALSE(store.set_active("b"));  // not offline
}

TEST(Partition, ArchiveAndRestoreRoundTrip) {
  PartitionedStore store("old");
  const auto schema = test_schema();
  store.register_schema(schema);
  for (int i = 0; i < 10; ++i) {
    store.insert(make_event(schema, 1, i % 3, i * 1.0, "write", 0.1));
  }
  store.rotate("new");

  // Archive the old partition to a stream, then drop it offline.
  std::stringstream archive;
  ASSERT_TRUE(store.save_partition("old", archive));
  ASSERT_TRUE(store.set_offline("old"));
  EXPECT_EQ(store.query("events", "time").size(), 0u);

  // Restore it under a new name (e.g. on a different analysis host).
  PartitionedStore other("current");
  other.register_schema(schema);
  ASSERT_TRUE(other.load_partition("restored-old", archive));
  EXPECT_EQ(other.query("events", "time").size(), 10u);
  const auto parts = other.partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1].name, "restored-old");
  EXPECT_EQ(parts[1].state, PartitionState::kActive);
  // Name collisions are rejected.
  std::stringstream again;
  ASSERT_TRUE(other.save_partition("restored-old", again));
  EXPECT_FALSE(other.load_partition("restored-old", again));
}

TEST(Partition, SchemaRegistrationCoversFuturePartitions) {
  PartitionedStore store("p0");
  const auto schema = test_schema();
  store.register_schema(schema);
  store.rotate("p1");
  // Insert into the post-rotation primary works (schema was propagated).
  store.insert(make_event(schema, 1, 0, 1.0, "open", 0.0));
  EXPECT_EQ(store.queryable_objects(), 1u);
}


TEST(Container, QueryPlannerPicksLongestEqualityPrefix) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (std::uint64_t job = 1; job <= 3; ++job) {
    for (std::int64_t rank = 0; rank < 4; ++rank) {
      for (int t = 0; t < 5; ++t) {
        c.insert(make_event(schema, job, rank, t * 1.0, "write", 0.1));
      }
    }
  }
  // job+rank equalities -> job_rank_time (2-attr prefix).
  const Filter jr{{"rank", Cmp::kEq, std::int64_t{1}},
                  {"job_id", Cmp::kEq, std::uint64_t{2}}};
  EXPECT_EQ(c.best_index("events", jr).name, "job_rank_time");
  const auto hits = c.query_auto("events", jr);
  EXPECT_EQ(hits.size(), 5u);
  EXPECT_EQ(c.last_scanned(), 5u);  // prefix scan, not full scan

  // Only timestamp equality -> time index.
  const Filter t_only{{"timestamp", Cmp::kEq, 2.0}};
  EXPECT_EQ(c.best_index("events", t_only).name, "time");

  // No equalities -> first declared index.
  EXPECT_EQ(c.best_index("events", {}).name, "job_rank_time");
}

TEST(Cluster, QueryAutoMatchesExplicitIndex) {
  ClusterConfig cfg;
  cfg.shard_count = 3;
  cfg.parallel_query = false;
  DsosCluster cluster(cfg);
  const auto schema = test_schema();
  cluster.register_schema(schema);
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    cluster.insert(make_event(schema, 1 + static_cast<std::uint64_t>(i % 2),
                              rng.uniform_int(0, 5), rng.uniform(0, 10),
                              "write", 0.1));
  }
  const Filter filter{{"job_id", Cmp::kEq, std::uint64_t{1}},
                      {"rank", Cmp::kEq, std::int64_t{2}}};
  const auto manual = cluster.query("events", "job_rank_time", filter);
  const auto automatic = cluster.query_auto("events", filter);
  ASSERT_EQ(manual.size(), automatic.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(manual[i], automatic[i]);
  }
}

// Low bytes collide with the escape alphabet ({0x00,0x01} escapes, 0x00
// terminator), so ordering around '\0' and '\x01' is the hard case for
// the string encoding.
TEST(Encoding, StringOrderPreservedWithLowBytes) {
  expect_order_preserved<std::string>(
      {std::string(""), std::string("\0", 1), std::string("\0\x01", 2),
       std::string("\x01", 1), std::string("a")},
      [](KeyBytes& out, const std::string& v) { encode_string(out, v); });
}

// ----------------------------------------------------------- zone maps ----

TEST(Container, ZoneMapsPruneDisjointTimeFilter) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (int t = 0; t < 10; ++t) {
    c.insert(make_event(schema, 1, t % 4, t * 1.0, "w", 0.1));
  }
  // Timestamps span [0, 9]: a filter for >= 100 is provably empty.
  const Filter disjoint{{"timestamp", Cmp::kGe, 100.0}};
  EXPECT_FALSE(c.can_match("events", disjoint));
  const std::uint64_t pruned_before = c.zone_pruned();
  EXPECT_TRUE(c.query("events", "time", disjoint).empty());
  EXPECT_EQ(c.zone_pruned(), pruned_before + 1);
  EXPECT_EQ(c.last_scanned(), 0u);  // skipped without touching the index

  // With zone maps off the same query scans and still returns nothing.
  c.set_zone_maps(false);
  EXPECT_TRUE(c.query("events", "time", disjoint).empty());
  EXPECT_GT(c.last_scanned(), 0u);
  c.set_zone_maps(true);

  // A filter overlapping the zone must not be pruned.
  const Filter overlapping{{"timestamp", Cmp::kGe, 5.0}};
  EXPECT_TRUE(c.can_match("events", overlapping));
  EXPECT_EQ(c.query("events", "time", overlapping).size(), 5u);
}

TEST(Container, ZoneMapsMatchUnprunedResults) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    c.insert(make_event(schema, 1 + static_cast<std::uint64_t>(i % 3),
                        rng.uniform_int(0, 7), rng.uniform(0, 50), "w",
                        rng.uniform()));
  }
  const std::vector<Filter> filters{
      {{"timestamp", Cmp::kLt, 10.0}},
      {{"job_id", Cmp::kEq, std::uint64_t{2}}},
      {{"job_id", Cmp::kEq, std::uint64_t{9}}},  // disjoint: prunable
      {{"rank", Cmp::kGe, std::int64_t{6}}},
      {{"op", Cmp::kEq, std::string("w")}},  // unindexed attr: no zone
  };
  for (const Filter& f : filters) {
    c.set_zone_maps(true);
    const auto pruned = c.query("events", "time", f);
    c.set_zone_maps(false);
    const auto unpruned = c.query("events", "time", f);
    ASSERT_EQ(pruned.size(), unpruned.size());
    for (std::size_t i = 0; i < pruned.size(); ++i) {
      EXPECT_EQ(pruned[i].object, unpruned[i].object);
    }
  }
  c.set_zone_maps(true);
}

TEST(Container, ZoneMapsUnknownAttrIsProvablyEmpty) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  c.insert(make_event(schema, 1, 0, 1.0, "w", 0.1));
  // matches() rejects every object on an unknown attribute, so pruning
  // the whole scan is exact, not approximate.
  const Filter f{{"no_such_attr", Cmp::kEq, std::int64_t{1}}};
  EXPECT_FALSE(c.can_match("events", f));
  EXPECT_TRUE(c.query("events", "time", f).empty());
}

// ---------------------------------------------------------------- limit ----

TEST(Container, QueryLimitCapsResultsInOrder) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (int t = 9; t >= 0; --t) {
    c.insert(make_event(schema, 1, 0, t * 1.0, "w", 0.1));
  }
  const auto full = c.query("events", "time");
  ASSERT_EQ(full.size(), 10u);
  const auto limited = c.query("events", "time", {}, 3);
  ASSERT_EQ(limited.size(), 3u);
  for (std::size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i].object, full[i].object);
  }
  // Residual filtering happens before the cap: the limit counts matching
  // rows, not scanned rows.
  const Filter odd_dur{{"op", Cmp::kEq, std::string("w")},
                       {"timestamp", Cmp::kGe, 4.0}};
  const auto filtered = c.query("events", "time", odd_dur, 2);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].object->as_double("timestamp"), 4.0);
  EXPECT_EQ(filtered[1].object->as_double("timestamp"), 5.0);
}

TEST(Cluster, QueryLimitReturnsGlobalPrefix) {
  ClusterConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_attr = "rank";
  DsosCluster cluster(cfg);
  const auto schema = test_schema();
  cluster.register_schema(schema);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    cluster.insert(make_event(schema, 1, rng.uniform_int(0, 15),
                              rng.uniform(0, 100), "w", 0.1));
  }
  const auto full = cluster.query("events", "job_rank_time");
  ASSERT_EQ(full.size(), 200u);
  const auto limited = cluster.query("events", "job_rank_time", {}, 25);
  ASSERT_EQ(limited.size(), 25u);
  // The limited result is exactly the first 25 of the global merge order.
  for (std::size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i], full[i]);
  }
}

// Regression: the parallel query path used to capture the shard loop
// variable by reference ([&]), so every async task raced on the mutating
// iteration state and could query the wrong (or a dead) shard.  With the
// by-value capture, repeated parallel queries match a serial cluster.
TEST(Cluster, ParallelQueryCapturesShardByValue) {
  const auto schema = test_schema();
  ClusterConfig par;
  par.shard_count = 16;
  par.shard_attr = "rank";
  par.parallel_query = true;
  ClusterConfig ser = par;
  ser.parallel_query = false;
  DsosCluster a(par), b(ser);
  a.register_schema(schema);
  b.register_schema(schema);
  Rng rng(29);
  for (int i = 0; i < 320; ++i) {
    auto obj = make_event(schema, 1 + static_cast<std::uint64_t>(i % 2),
                          rng.uniform_int(0, 15), rng.uniform(0, 100), "w",
                          0.1);
    b.insert(obj);
    a.insert(std::move(obj));
  }
  for (int iter = 0; iter < 20; ++iter) {
    const auto ra = a.query("events", "job_rank_time");
    const auto rb = b.query("events", "job_rank_time");
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i]->as_int("rank"), rb[i]->as_int("rank"));
      ASSERT_EQ(ra[i]->as_double("timestamp"), rb[i]->as_double("timestamp"));
    }
  }
}

// Regression for a race the annotation pass surfaced: query() is const
// but mutates the last_scanned_/zone_pruned_ diagnostics, and the cluster
// runs per-shard queries on real threads — two concurrent queries against
// one container raced on the counters (now behind the stats mutex).
TEST(Container, ConcurrentQueriesKeepStatsCoherent) {
  Container c;
  const auto schema = test_schema();
  c.register_schema(schema);
  for (int t = 0; t < 64; ++t) {
    c.insert(make_event(schema, 1, t % 4, t * 1.0, "w", 0.1));
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  const Filter disjoint{{"timestamp", Cmp::kGe, 1e6}};  // always pruned
  const std::uint64_t pruned_before = c.zone_pruned();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &disjoint] {
      for (int i = 0; i < kIters; ++i) {
        EXPECT_TRUE(c.query("events", "time", disjoint).empty());
        // Identical queries => every thread should observe a coherent
        // value written by SOME pruned query, never a torn/stale mix.
        EXPECT_EQ(c.last_scanned(), 0u);
      }
    });
  }
  for (auto& t : threads) t.join();
  // No lost increments: each of the kThreads * kIters pruned queries
  // bumped the counter exactly once.
  EXPECT_EQ(c.zone_pruned(), pruned_before + kThreads * kIters);
}

}  // namespace
}  // namespace dlc::dsos
