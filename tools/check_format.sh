#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run -Werror over every tracked C++
# source, using the checked-in .clang-format.  Run from anywhere; pass
# --fix to rewrite files in place instead of checking.
#
# When clang-format is not installed (e.g. a gcc-only dev box) the check
# is skipped with a notice and exit 0 — the CI static-analysis job always
# has it and is the enforcing run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

mode="--dry-run -Werror"
if [[ "${1:-}" == "--fix" ]]; then
  mode="-i"
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping (CI enforces)" >&2
  exit 0
fi

# shellcheck disable=SC2086
git ls-files '*.cpp' '*.hpp' | xargs clang-format --style=file $mode
echo "check_format: OK"
