#!/usr/bin/env python3
"""Schema-parity lint: prove the Table I field list stays consistent
across every encoding surface, statically.

The canonical field list lives in src/core/schema_darshan.cpp (the DSOS
schema, which is also the Fig. 3 column order).  Four other surfaces
re-state it and can silently drift:

  1. the CSV header literal (schema_darshan.cpp),
  2. the JSON encoder's member keys (core/connector.cpp format_message),
  3. the fast-scanner slot tables + row assembly (core/decoder.cpp:
     kTopFields / kSegFields, decode_message_fast, decode_message), and
  4. the wire codec (wire/codec.cpp: FrameEncoder::add put_* sequence,
     decode_frame read sequence, and its row assembly).

A second canonical list — obs::kTraceFields in src/obs/trace.cpp, the
payload half of the pipeline-trace context — is re-stated by three more
surfaces and is checked the same way:

  5. the JSON envelope writer/parser (obs/trace.cpp append_trace_member /
     parse_trace_member key literals),
  6. the wire codec's optional trace block (codec.cpp `// trace:<field>`
     tags on the encoder puts and decoder reads), and
  7. the Hop enum vs kHopNames (trace.hpp / trace.cpp): same count, same
     order, enum entries snake_cased must BE the names.

A third canonical group — the durable store's on-disk formats — is
checked the same way:

  8. kWalDataFrameFields / kSegmentHeaderFields (store/format.cpp) vs the
     `// walframe:` / `// seghdr:` tags on writer AND reader (store/wal.cpp,
     store/segment.cpp), and the dsos::AttrType enum vs the `// objval:`
     case tags on put_value AND get_value (wire/objblock.cpp).

A fourth canonical list — rollup::kRollupCellFields in src/rollup/cell.hpp
(plus kRollupRowExtraFields, the row-only bookkeeping attrs) — is the
aggregate surface the storage-policy engine persists and serves:

  9. the rollup_cell schema builder and the `// rollupcell:` tags on
     cell_to_row AND row_to_cell (rollup/cell.cpp), the tagged JSON
     members of /api/rollup/<policy> (websvc/service.cpp), and
     kRollupDims (rollup/policy.hpp) — every policy-keyable dimension
     must be a cell key field, in canonical order.

This lint extracts each surface with small, surface-specific grammars and
diffs them against the canonical list: names, order (where the surface is
order-bearing), and the N/A / -1 / 0 defaults that the DOM and fast JSON
decoders must agree on.  Any drift fails with a unified diff.  Extraction
that comes up empty is itself a failure — a refactor that breaks the
grammar must be loud, never vacuously green.

Run from anywhere:  python3 tools/lint_schema_parity.py  [--repo DIR]
Exit code 0 = parity holds, 1 = drift (diff printed), 2 = extraction
broke (the lint needs updating alongside the refactor).
"""

import argparse
import difflib
import os
import re
import sys

FAIL_DRIFT = 1
FAIL_EXTRACT = 2


def read(repo, rel):
    path = os.path.join(repo, rel)
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def die_extract(msg):
    print(f"lint_schema_parity: EXTRACTION FAILURE: {msg}", file=sys.stderr)
    sys.exit(FAIL_EXTRACT)


def strip_block(text, start_pat, end_pat, what):
    """Returns text between the first match of start_pat and the next
    match of end_pat."""
    m = re.search(start_pat, text)
    if not m:
        die_extract(f"cannot find start of {what} ({start_pat!r})")
    rest = text[m.end():]
    e = re.search(end_pat, rest)
    if not e:
        die_extract(f"cannot find end of {what} ({end_pat!r})")
    return rest[: e.start()]


def diff_fail(what, expected, actual):
    print(f"lint_schema_parity: PARITY DRIFT in {what}:", file=sys.stderr)
    diff = difflib.unified_diff(
        [str(x) for x in expected],
        [str(x) for x in actual],
        fromfile="canonical (schema_darshan.cpp)",
        tofile=what,
        lineterm="",
    )
    for line in diff:
        print("  " + line, file=sys.stderr)
    sys.exit(FAIL_DRIFT)


def check_eq(what, expected, actual):
    if list(expected) != list(actual):
        diff_fail(what, expected, actual)


# --------------------------------------------------------------------------
# Canonical surface: the SchemaBuilder chain.

def canonical_schema(repo):
    src = read(repo, "src/core/schema_darshan.cpp")
    block = strip_block(
        src, r'SchemaBuilder\("darshan_data"\)', r"\.index\(",
        "SchemaBuilder attr chain")
    attrs = re.findall(r'\.attr\("([^"]+)",\s*AttrType::k(\w+)\)', block)
    if len(attrs) < 10:
        die_extract(f"only {len(attrs)} .attr() entries found")
    return attrs  # ordered [(name, type)]


def seg_base(name):
    return name[len("seg_"):] if name.startswith("seg_") else None


# --------------------------------------------------------------------------
# Surface 1: CSV header literal.

def check_csv_header(repo, fields):
    src = read(repo, "src/core/schema_darshan.cpp")
    block = strip_block(src, r"darshan_csv_header\(\)\s*\{", r"\n\}",
                        "darshan_csv_header")
    literals = re.findall(r'"([^"]*)"', block)
    if not literals:
        die_extract("no string literals in darshan_csv_header")
    header = "".join(literals)
    expected = []
    for i, (name, _) in enumerate(fields):
        base = seg_base(name)
        col = f"seg:{base}" if base else name
        expected.append(("#" + col) if i == 0 else col)
    check_eq("CSV header (schema_darshan.cpp)", expected, header.split(","))


# --------------------------------------------------------------------------
# Surface 2: JSON encoder member keys (order-free set parity; the wire
# order is Fig. 3's, not the schema's).

def check_connector(repo, fields):
    src = read(repo, "src/core/connector.cpp")
    body = strip_block(src, r"void DarshanLdmsConnector::format_message",
                       r"\n\}", "format_message")
    seg_split = body.find('w.key("seg")')
    if seg_split < 0:
        die_extract('format_message has no w.key("seg")')
    top_keys = re.findall(r'w\.member\("([^"]+)"', body[:seg_split])
    seg_keys = re.findall(r'w\.member\("([^"]+)"', body[seg_split:])
    want_top = sorted(n for n, _ in fields if not seg_base(n))
    want_seg = sorted(seg_base(n) for n, _ in fields if seg_base(n))
    check_eq("JSON encoder top-level keys (connector.cpp)",
             want_top, sorted(top_keys))
    check_eq("JSON encoder seg keys (connector.cpp)",
             want_seg, sorted(seg_keys))
    # The paper's sample message renders absent strings as "N/A"; the
    # encoder must keep emitting that marker for exe / file / data_set.
    if body.count('"N/A"') < 3:
        diff_fail("JSON encoder N/A fallbacks (connector.cpp)",
                  ['>=3 "N/A" string fallbacks (exe, file, data_set)'],
                  [f'{body.count(chr(34) + "N/A" + chr(34))} found'])


# --------------------------------------------------------------------------
# Surface 3: fast scanner + DOM decoder (core/decoder.cpp).

def array_literal(src, name, what):
    m = re.search(name + r"\s*=\s*\{(.*?)\};", src, re.S)
    if not m:
        die_extract(f"cannot find {what}")
    return re.findall(r'"([^"]+)"', m.group(1))


# Statement-level extraction of `values.emplace_back(...); // field`
# sequences (multi-line statements carry the comment on their last line).
EMPLACE_RE = re.compile(
    r"values\.emplace_back\((?P<expr>.*?)\);\s*(?://\s*(?P<field>\S+))?",
    re.S)


def emplaces(body):
    out = []
    for m in EMPLACE_RE.finditer(body):
        expr = " ".join(m.group("expr").split())
        out.append((expr, m.group("field")))
    return out


def fast_default(expr):
    """Default value a fast-path slot falls back to, from its accessor."""
    m = re.search(r"as_int\((-?\d+)\)", expr)
    if m:
        return int(m.group(1))
    m = re.search(r"as_uint\((\d+)\)", expr)
    if m:
        return int(m.group(1))
    m = re.search(r"as_double\(([-0-9.]+)\)", expr)
    if m:
        return float(m.group(1))
    if expr.startswith("str("):
        return "N/A"  # str() wraps as_string("N/A"); checked below
    return None


def dom_default(expr):
    """Default value the DOM path falls back to for one emplace expr."""
    if re.search(r"\bgets\(", expr):
        return "N/A"  # gets() hardcodes "N/A"; checked below
    m = re.search(r"\bgeti\([^,]+,\s*\"[^\"]+\"\s*,\s*(-?\d+)\)", expr)
    if m:
        return int(m.group(1))
    if re.search(r"\bgeti\(", expr):
        return -1  # geti's declared fallback; checked below
    m = re.search(r"get_uint\([^,]+,\s*(\d+)\)", expr)
    if m:
        return int(m.group(1))
    m = re.search(r"get_double\([^,]+,\s*([-0-9.]+)\)", expr)
    if m:
        return float(m.group(1))
    return None


def check_decoder(repo, fields):
    src = read(repo, "src/core/decoder.cpp")
    names = [n for n, _ in fields]
    top_names = [n for n in names if not seg_base(n)]
    seg_names = [seg_base(n) for n in names if seg_base(n)]

    # Slot tables: set parity with the schema (slot order is local to the
    # scanner), sizes exact.
    ktop = array_literal(src, r"kTopFields", "kTopFields")
    kseg = array_literal(src, r"kSegFields", "kSegFields")
    check_eq("kTopFields (decoder.cpp)", sorted(top_names), sorted(ktop))
    check_eq("kSegFields (decoder.cpp)", sorted(seg_names), sorted(kseg))

    # The helpers whose defaults the extraction below relies on.
    if not re.search(r'fallback\s*=\s*-1', src):
        die_extract("geti fallback default changed; update the lint")
    if not re.search(r'get_string\(k,\s*"N/A"\)', src):
        die_extract('gets no longer defaults to "N/A"; update the lint')

    # Fast path: ordered (slot table, index, field comment) triples.
    fast = strip_block(src, r"bool decode_message_fast", r"\n\}",
                       "decode_message_fast")
    if 'as_string("N/A")' not in fast:
        die_extract('fast-path str() helper no longer defaults to "N/A"')
    fast_rows = emplaces(fast)
    if len(fast_rows) != len(names):
        diff_fail("fast-path row assembly size (decoder.cpp)",
                  names, [f for _, f in fast_rows])
    fast_defaults = {}
    for i, (expr, field) in enumerate(fast_rows):
        if field != names[i]:
            diff_fail("fast-path row assembly order (decoder.cpp)",
                      names, [f for _, f in fast_rows])
        m = re.search(r"\b(top|seg)\[(\d+)\]", expr)
        if not m:
            die_extract(f"fast-path row {i} has no top[]/seg[] slot: {expr}")
        table, slot = m.group(1), int(m.group(2))
        slot_name = (ktop[slot] if table == "top" else "seg_" + kseg[slot])
        if slot_name != names[i]:
            diff_fail(
                "fast-path slot/field binding (decoder.cpp)",
                [f"{names[i]} <- {table}[{slot}]"],
                [f"{table}[{slot}] is {slot_name}"])
        fast_defaults[names[i]] = fast_default(expr)

    # DOM path: ordered keys must BE the schema order, and defaults must
    # match the fast path field-for-field.
    dom = strip_block(src, r"std::vector<dsos::Object> decode_message\(",
                      r"\n\}", "decode_message")
    dom_rows = emplaces(dom)
    dom_seq = []
    dom_defaults = {}
    for expr, _ in dom_rows:
        key = re.search(r'"([^"]+)"', expr)
        if not key:
            die_extract(f"DOM row has no key literal: {expr}")
        if re.search(r"\bdoc\b", expr):
            name = key.group(1)
        elif re.search(r"\bs\b", expr):
            name = "seg_" + key.group(1)
        else:
            die_extract(f"DOM row has no doc/s scope: {expr}")
        dom_seq.append(name)
        dom_defaults[name] = dom_default(expr)
    check_eq("DOM row assembly order (decoder.cpp)", names, dom_seq)
    for name in names:
        if fast_defaults[name] != dom_defaults[name]:
            diff_fail(
                "fast vs DOM decoder defaults (decoder.cpp)",
                [f"{name}: {dom_defaults[name]} (DOM)"],
                [f"{name}: {fast_defaults[name]} (fast)"])


# --------------------------------------------------------------------------
# Surface 4: wire codec (wire/codec.cpp).

# Expression tokens that satisfy each schema field in codec row assembly.
FIELD_TOKEN = {
    "module": r"module",
    "uid": r"\buid\b",
    "ProducerName": r"\bproducer\b",
    "switches": r"\bswitches\b",
    "file": r"\bfile\b",
    "rank": r"\brank\b",
    "flushes": r"\bflushes\b",
    "record_id": r"\brecord_id\b",
    "exe": r"\bexe\b",
    "max_byte": r"\bmax_byte\b",
    "type": r"MET|MOD",
    "job_id": r"\bjob_id\b",
    "op": r"\bop\b",
    "cnt": r"\bcnt\b",
    "seg_off": r"\boff\b",
    "seg_pt_sel": r"\bpt_sel\b",
    "seg_dur": r"\bdur\b",
    "seg_len": r"\blen\b",
    "seg_ndims": r"\bndims\b",
    "seg_reg_hslab": r"\breg\b|\breg_hslab\b",
    "seg_irreg_hslab": r"\birreg\b|\birreg_hslab\b",
    "seg_data_set": r"\bdata_set\b",
    "seg_npoints": r"\bnpoints\b",
    "seg_timestamp": r"\bend\b|\btimestamp\b",
}

# On-wire event field order (after the fixed flags/module/op preamble),
# as (canonical token, wire primitive).  Both FrameEncoder::add and
# FrameCursor::next must realize exactly this sequence.
WIRE_SEQUENCE = [
    ("rank", "zigzag"),
    ("record_id", "varint"),
    ("producer", "interned"),
    ("file", "interned"),
    ("max_byte", "zigzag"),
    ("switches", "zigzag"),
    ("flushes", "zigzag"),
    ("cnt", "zigzag"),
    ("off", "varint"),
    ("len", "varint"),
    ("dur", "zigzag"),
    ("end_delta", "zigzag"),
    ("pt_sel", "zigzag"),
    ("irreg_hslab", "zigzag"),
    ("reg_hslab", "zigzag"),
    ("ndims", "zigzag"),
    ("npoints", "zigzag"),
    ("data_set", "interned"),
]

ENCODER_ARG = {
    "e.rank": "rank",
    "e.record_id": "record_id",
    "producer": "producer",
    "*e.file_path": "file",
    "e.max_byte": "max_byte",
    "e.switches": "switches",
    "e.flushes": "flushes",
    "e.cnt": "cnt",
    "e.offset": "off",
    "e.length": "len",
    "e.end - e.start": "dur",
    "e.end - prev_end_": "end_delta",
    "e.h5.pt_sel": "pt_sel",
    "e.h5.irreg_hslab": "irreg_hslab",
    "e.h5.reg_hslab": "reg_hslab",
    "e.h5.ndims": "ndims",
    "e.h5.npoints": "npoints",
    "e.h5.data_set": "data_set",
}


def check_codec(repo, fields):
    """Checks the event field sequences; returns the encoder/decoder trace
    block field lists (the statements tagged `// trace:<field>`) for
    check_trace."""
    src = read(repo, "src/wire/codec.cpp")
    names = [n for n, _ in fields]

    # --- encoder: ordered put_* calls in FrameEncoder::add ---------------
    # Anchor on the trace-aware overload: the two-argument add is a pure
    # forwarder with no put_* calls of its own.
    add = strip_block(src, r"void FrameEncoder::add\([^)]*trace\)\s*\{",
                      r"\n\}", "FrameEncoder::add (trace overload)")
    enc_seq = []
    enc_trace = []
    for m in re.finditer(
            r"put_(zigzag|varint)\(buf_,\s*([^;]+?)\);"
            r"(?:[ \t]*//[ \t]*(\S+))?|put_interned\(([^;]+?)\);",
            add):
        if m.group(4) is not None:
            arg, prim, tag = " ".join(m.group(4).split()), "interned", None
        else:
            arg, prim = " ".join(m.group(2).split()), m.group(1)
            tag = m.group(3)
        if tag and tag.startswith("trace:"):
            enc_trace.append(tag[len("trace:"):])
            continue
        if arg not in ENCODER_ARG:
            die_extract(f"FrameEncoder::add writes unknown field {arg!r}")
        enc_seq.append((ENCODER_ARG[arg], prim))
    check_eq("wire encoder field sequence (codec.cpp FrameEncoder::add)",
             WIRE_SEQUENCE, enc_seq)

    # --- decoder: ordered reads in FrameCursor::next ---------------------
    # (decode_frame is a thin wrapper over the cursor, so linting the
    # cursor covers both the wrapper and the core decoder's fast path.)
    # The frame-header reads live in the FrameCursor constructor, so the
    # whole body is per-event — no loop-skipping needed.
    loop = strip_block(src, r"int FrameCursor::next\(",
                       r"\n  return 1;", "FrameCursor::next")
    dec_seq = []
    dec_trace = []
    for m in re.finditer(
            r"(\w+)\s*=[^=;]*r\.(zigzag|varint)\(\);?"
            r"(?:[ \t]*//[ \t]*(\S+))?|"
            r"read_interned\(r,\s*table,\s*(\w+)\)", loop):
        if m.group(4) is not None:
            var, prim, tag = m.group(4), "interned", None
        else:
            var, prim, tag = m.group(1), m.group(2), m.group(3)
        if tag and tag.startswith("trace:"):
            dec_trace.append(tag[len("trace:"):])
            continue
        alias = {"producer": "producer", "file": "file",
                 "data_set": "data_set", "off": "off", "len": "len",
                 "irreg": "irreg_hslab", "reg": "reg_hslab",
                 "end": "end_delta"}.get(var, var)
        dec_seq.append((alias, prim))
    check_eq("wire decoder read sequence (codec.cpp FrameCursor::next)",
             WIRE_SEQUENCE, dec_seq)

    # --- row assembly: comment sequence == schema order, tokens match ----
    rows = emplaces(loop)
    if len(rows) != len(names):
        diff_fail("wire row assembly size (codec.cpp)", names,
                  [f for _, f in rows])
    for i, (expr, field) in enumerate(rows):
        if field != names[i]:
            diff_fail("wire row assembly order (codec.cpp)", names,
                      [f for _, f in rows])
        if not re.search(FIELD_TOKEN[names[i]], expr):
            diff_fail(
                "wire row assembly expression (codec.cpp)",
                [f"{names[i]}: expression matching /{FIELD_TOKEN[names[i]]}/"],
                [f"{names[i]}: {expr}"])
    return enc_trace, dec_trace


# --------------------------------------------------------------------------
# Surface 8: the durable store's on-disk formats (src/store, wire/objblock).
#
# Three canonical lists, three pairs of encode/decode sites:
#   - kWalDataFrameFields (store/format.cpp) vs the `// walframe:<field>`
#     tags on the WAL writer AND replayer (store/wal.cpp),
#   - kSegmentHeaderFields (store/format.cpp) vs the `// seghdr:<field>`
#     tags on the segment header encoder AND decoder (store/segment.cpp),
#   - the dsos::AttrType enum (dsos/schema.hpp) vs the `// objval:<type>`
#     case tags on put_value AND get_value (wire/objblock.cpp) — a type
#     added to the schema layer cannot silently miss the at-rest codec.

def tag_sequence(body, prefix, what):
    tags = re.findall(r"//\s*" + prefix + r":(\S+)", body)
    if not tags:
        die_extract(f"no // {prefix}: tags found in {what}")
    return tags


def split_once(src, pat, what):
    """Splits src at the first match of pat: (before, after)."""
    m = re.search(pat, src)
    if not m:
        die_extract(f"cannot find {what} ({pat!r})")
    return src[: m.start()], src[m.start():]


def check_store(repo):
    fmt = read(repo, "src/store/format.cpp")
    hdr = read(repo, "src/store/format.hpp")

    wal_fields = array_literal(fmt, r"kWalDataFrameFields", "kWalDataFrameFields")
    seg_fields = array_literal(fmt, r"kSegmentHeaderFields", "kSegmentHeaderFields")
    for name, fields in (("kWalDataFrameFieldCount", wal_fields),
                         ("kSegmentHeaderFieldCount", seg_fields)):
        m = re.search(name + r"\s*=\s*(\d+)", hdr)
        if not m:
            die_extract(f"cannot find {name} in format.hpp")
        if int(m.group(1)) != len(fields):
            diff_fail(f"{name} vs array size (format.hpp/.cpp)",
                      [f"{name} = {len(fields)}"],
                      [f"{name} = {m.group(1)}"])

    # WAL: writer tags (everything before replay_wal) and replayer tags
    # must each realize the canonical frame order.  The writer splits the
    # frame across frame_body (type, crc) and append_group (payload), so
    # tags are collected across the whole writer half.
    wal_src = read(repo, "src/store/wal.cpp")
    writer_half, replay_half = split_once(wal_src, r"bool replay_wal\(",
                                          "replay_wal in wal.cpp")
    check_eq("WAL writer frame fields (wal.cpp vs format.cpp)",
             wal_fields, tag_sequence(writer_half, "walframe", "WAL writer"))
    check_eq("WAL replay frame fields (wal.cpp vs format.cpp)",
             wal_fields, tag_sequence(replay_half, "walframe", "replay_wal"))

    # Segment header: the encode helper (feeding write_segment) and
    # decode_header (feeding read_segment_meta) both carry ordered seghdr
    # tags; decode_header's definition is the boundary between them.
    seg_src = read(repo, "src/store/segment.cpp")
    enc_half, dec_half = split_once(seg_src, r"bool decode_header\(",
                                    "decode_header in segment.cpp")
    check_eq("segment header encode fields (segment.cpp vs format.cpp)",
             seg_fields, tag_sequence(enc_half, "seghdr", "header encoder"))
    check_eq("segment header decode fields (segment.cpp vs format.cpp)",
             seg_fields, tag_sequence(dec_half, "seghdr", "decode_header"))

    # Object values: every AttrType enum entry must have a tagged case in
    # BOTH put_value and get_value, in enum order.
    schema_hdr = read(repo, "src/dsos/schema.hpp")
    enum_block = strip_block(schema_hdr, r"enum class AttrType\b", r"\};",
                             "enum class AttrType")
    attr_types = [camel_to_snake(n) for n in
                  re.findall(r"\bk([A-Z]\w*)\b", enum_block)]
    if not attr_types:
        die_extract("no AttrType enum entries found")
    obj_src = read(repo, "src/wire/objblock.cpp")
    put_half, get_half = split_once(obj_src, r"bool get_value\(",
                                    "get_value in objblock.cpp")
    check_eq("put_value AttrType cases (objblock.cpp vs schema.hpp)",
             attr_types, tag_sequence(put_half, "objval", "put_value"))
    check_eq("get_value AttrType cases (objblock.cpp vs schema.hpp)",
             attr_types, tag_sequence(get_half, "objval", "get_value"))
    return wal_fields, seg_fields, attr_types


# --------------------------------------------------------------------------
# Surfaces 5-7: the pipeline-trace block (obs/trace.*, codec trace tags).

def camel_to_snake(name):
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def check_trace(repo, enc_trace, dec_trace):
    src = read(repo, "src/obs/trace.cpp")
    hdr = read(repo, "src/obs/trace.hpp")

    # Canonical trace-block field list.
    fields = array_literal(src, r"kTraceFields", "kTraceFields (trace.cpp)")
    if not fields:
        die_extract("kTraceFields is empty")

    # JSON envelope writer: every \"<key>\": literal built by
    # append_trace_member, minus the enclosing "trace" member itself.
    writer = strip_block(src, r"void append_trace_member\(", r"\n\}",
                         "append_trace_member")
    wkeys = [k for k in re.findall(r'\\"(\w+)\\":', writer) if k != "trace"]
    check_eq("JSON trace writer keys (trace.cpp append_trace_member)",
             fields, wkeys)

    # JSON envelope parser: the keys parse_trace_member searches for.
    parser = strip_block(src, r"bool parse_trace_member\(", r"\n\}",
                         "parse_trace_member")
    pkeys = [k for k in re.findall(r'\\"(\w+)\\":', parser) if k != "trace"]
    check_eq("JSON trace parser keys (trace.cpp parse_trace_member)",
             fields, pkeys)

    # Wire codec trace block: the `// trace:<field>` tags collected by
    # check_codec from FrameEncoder::add and decode_frame.
    if not enc_trace:
        die_extract("no // trace: tags found in FrameEncoder::add")
    if not dec_trace:
        die_extract("no // trace: tags found in FrameCursor::next")
    check_eq("wire encoder trace block (codec.cpp FrameEncoder::add)",
             fields, enc_trace)
    check_eq("wire decoder trace block (codec.cpp FrameCursor::next)",
             fields, dec_trace)

    # Hop enum (trace.hpp) vs kHopNames (trace.cpp) vs kHopCount.
    hops = array_literal(src, r"kHopNames", "kHopNames (trace.cpp)")
    enum_block = strip_block(hdr, r"enum class Hop\b", r"\};",
                             "enum class Hop")
    enum_hops = [camel_to_snake(n) for n in
                 re.findall(r"\bk([A-Z]\w*)\b", enum_block)
                 if n != "HopCount"]
    check_eq("Hop enum vs kHopNames (trace.hpp / trace.cpp)",
             enum_hops, hops)
    m = re.search(r"kHopCount\s*=\s*(\d+)", hdr)
    if not m:
        die_extract("cannot find kHopCount in trace.hpp")
    if int(m.group(1)) != len(hops):
        diff_fail("kHopCount vs kHopNames size (trace.hpp / trace.cpp)",
                  [f"kHopCount = {len(hops)}"],
                  [f"kHopCount = {m.group(1)}"])
    m = re.search(r"kTraceFieldCount\s*=\s*(\d+)", hdr)
    if not m:
        die_extract("cannot find kTraceFieldCount in trace.hpp")
    if int(m.group(1)) != len(fields):
        diff_fail("kTraceFieldCount vs kTraceFields size (trace.hpp/.cpp)",
                  [f"kTraceFieldCount = {len(fields)}"],
                  [f"kTraceFieldCount = {m.group(1)}"])
    return fields, hops


# --------------------------------------------------------------------------
# Surface 9: the rollup cell (src/rollup, websvc/service.cpp).
#
# Canonical: kRollupCellFields + kRollupRowExtraFields (rollup/cell.hpp).
# Re-stated by four surfaces:
#   - the rollup_cell SchemaBuilder chain (cell.cpp): attr names must BE
#     cell fields + extras in order, each carrying a matching tag,
#   - cell_to_row / row_to_cell (cell.cpp): ordered `// rollupcell:` (and
#     `// rollupcell-extra:`) tags on encoder AND decoder,
#   - the /api/rollup/<policy> JSON members (websvc/service.cpp): each
#     tagged line's key literal must BE its tag, sequence in cell order
#     (extras are bookkeeping and must NOT leak into the response),
#   - kRollupDims (rollup/policy.hpp): the policy-keyable dimensions,
#     which must appear in kRollupCellFields in the same relative order.

def count_constant(src, name, where):
    m = re.search(name + r"\s*=\s*(\d+)", src)
    if not m:
        die_extract(f"cannot find {name} in {where}")
    return int(m.group(1))


def check_rollup(repo):
    hdr = read(repo, "src/rollup/cell.hpp")
    cell_fields = array_literal(hdr, r"kRollupCellFields\[\]",
                                "kRollupCellFields (cell.hpp)")
    extra_fields = array_literal(hdr, r"kRollupRowExtraFields\[\]",
                                 "kRollupRowExtraFields (cell.hpp)")
    if not cell_fields or not extra_fields:
        die_extract("empty rollup field list in cell.hpp")
    for name, fields in (("kRollupCellFieldCount", cell_fields),
                         ("kRollupRowExtraFieldCount", extra_fields)):
        n = count_constant(hdr, name, "cell.hpp")
        if n != len(fields):
            diff_fail(f"{name} vs array size (cell.hpp)",
                      [f"{name} = {len(fields)}"], [f"{name} = {n}"])
    row_fields = cell_fields + extra_fields

    src = read(repo, "src/rollup/cell.cpp")
    schema_part, rest = split_once(src, r"dsos::Object cell_to_row\(",
                                   "cell_to_row in cell.cpp")
    enc_part, dec_part = split_once(rest, r"bool row_to_cell\(",
                                    "row_to_cell in cell.cpp")

    def tags(body, what):
        """Ordered rollupcell/rollupcell-extra tags; extras must trail."""
        found = re.findall(r"rollupcell(-extra)?:(\S+)", body)
        if not found:
            die_extract(f"no rollupcell: tags found in {what}")
        seq = [f for _, f in found]
        first_extra = next(
            (i for i, (x, _) in enumerate(found) if x), len(found))
        if any(not x for x, _ in found[first_extra:]):
            diff_fail(f"rollupcell tag grouping ({what})",
                      ["all rollupcell-extra tags after cell-field tags"],
                      [f"{'extra:' if x else ''}{f}" for x, f in found])
        return seq

    # Schema builder: attr names == row fields, each tagged consistently.
    attrs = re.findall(r'\.attr\("([^"]+)",\s*AttrType::k\w+\)\s*'
                       r'//\s*rollupcell(?:-extra)?:(\S+)', schema_part)
    check_eq("rollup_cell schema attrs (cell.cpp vs cell.hpp)",
             row_fields, [a for a, _ in attrs])
    for attr, tag in attrs:
        if attr != tag:
            diff_fail("rollup_cell schema attr/tag binding (cell.cpp)",
                      [f'.attr("{attr}") tagged rollupcell:{attr}'],
                      [f'.attr("{attr}") tagged rollupcell:{tag}'])

    check_eq("cell_to_row field tags (cell.cpp vs cell.hpp)",
             row_fields, tags(enc_part, "cell_to_row"))
    check_eq("row_to_cell field tags (cell.cpp vs cell.hpp)",
             row_fields, tags(dec_part, "row_to_cell"))

    # Websvc JSON: the tagged member/key literals of the cell object, in
    # cell order; every tag line must name the literal it annotates, and
    # the row-only extras must not be served.
    svc = read(repo, "src/websvc/service.cpp")
    body = strip_block(svc, r"Response DashboardService::api_rollup_cells\(",
                       r"\n\}", "api_rollup_cells")
    svc_seq = []
    for line in body.splitlines():
        m = re.search(r"rollupcell(-extra)?:(\S+)", line)
        if not m:
            continue
        if m.group(1):
            diff_fail("JSON rollup cell members (service.cpp)",
                      ["no rollupcell-extra fields in the response"],
                      [f"rollupcell-extra:{m.group(2)} served"])
        key = re.search(r'w\.(?:member|key)\("(\w+)"', line)
        if not key:
            die_extract(f"rollupcell tag on a non-member line: {line.strip()}")
        if key.group(1) != m.group(2):
            diff_fail("JSON rollup cell member/tag binding (service.cpp)",
                      [f'"{key.group(1)}" tagged rollupcell:{key.group(1)}'],
                      [f'"{key.group(1)}" tagged rollupcell:{m.group(2)}'])
        svc_seq.append(key.group(1))
    if not svc_seq:
        die_extract("no rollupcell: tags found in api_rollup_cells")
    check_eq("JSON rollup cell members (service.cpp vs cell.hpp)",
             cell_fields, svc_seq)

    # Policy dimensions: keyable dims are exactly the cell key fields
    # (everything between the policy name and the time bucket), in the
    # same order — a dimension added to one side must reach the other.
    pol = read(repo, "src/rollup/policy.hpp")
    dims = array_literal(pol, r"kRollupDims\[\]", "kRollupDims (policy.hpp)")
    n = count_constant(pol, "kRollupDimCount", "policy.hpp")
    if n != len(dims):
        diff_fail("kRollupDimCount vs array size (policy.hpp)",
                  [f"kRollupDimCount = {len(dims)}"],
                  [f"kRollupDimCount = {n}"])
    try:
        key_fields = cell_fields[cell_fields.index("policy") + 1:
                                 cell_fields.index("bucket")]
    except ValueError:
        die_extract("kRollupCellFields lost its policy/bucket delimiters")
    check_eq("policy dims vs cell key fields (policy.hpp vs cell.hpp)",
             key_fields, dims)
    return cell_fields, extra_fields, dims


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    args = ap.parse_args()
    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    fields = canonical_schema(repo)
    names = [n for n, _ in fields]
    if len(names) != len(set(names)):
        die_extract("duplicate field names in canonical schema")

    check_csv_header(repo, fields)
    check_connector(repo, fields)
    check_decoder(repo, fields)
    enc_trace, dec_trace = check_codec(repo, fields)
    trace_fields, hops = check_trace(repo, enc_trace, dec_trace)
    wal_fields, seg_fields, attr_types = check_store(repo)
    cell_fields, extra_fields, dims = check_rollup(repo)

    print(f"lint_schema_parity: OK — {len(fields)} fields consistent "
          "across schema, CSV header, JSON encoder, fast+DOM decoders, "
          "and wire codec; "
          f"{len(trace_fields)}-field trace block and {len(hops)}-hop "
          "span consistent across JSON envelope, wire codec, and Hop enum; "
          f"{len(wal_fields)}-field WAL frame, {len(seg_fields)}-field "
          f"segment header and {len(attr_types)}-type object-value codec "
          "consistent across their encode/decode sites; "
          f"{len(cell_fields)}+{len(extra_fields)}-field rollup cell and "
          f"{len(dims)}-dim policy key consistent across schema, row "
          "codec, and websvc JSON")


if __name__ == "__main__":
    main()
