#!/usr/bin/env python3
"""Atomics-protocol lint: every lock-free primitive in src/ must be
inventoried, tagged with the protocol it implements, and mirrored in the
DESIGN.md section 10 protocol table — the atomics twin of the section 5c
lock-hierarchy table, enforced the same way lint_schema_parity.py
enforces schemas.

What it checks
--------------

1. TAG COVERAGE.  Every `std::atomic<...>` declaration (and every
   policy-templated `Atomic<...>` member in spsc_ring.hpp) must carry a
   machine-readable tag on the line directly above it:

       // atomic-protocol: kind=<kind> pairs=<site>

   <kind> names the protocol from the closed taxonomy below; <site>
   names the code location(s) the operation pairs with (the reader of a
   publication, the scraper of a counter, the other half of a Dekker
   handshake).  An untagged atomic is an error: if the author cannot say
   what protocol it implements, it does not belong in the tree.

       publication    release store / acquire load handoff of a data block
       counter        relaxed monotonic accumulator; read by a scraper
       gauge          relaxed last-write-wins (or CAS-max) level value
       flag           one-way or settable boolean; pairs with a predicate
       spsc-index     SPSC ring head/tail index (release/acquire pair)
       dekker-waiters waiter registration half of a Dekker sleep/wake
       config         rarely-written tuning knob, relaxed read on hot path

2. RAW-PRIMITIVE BAN.  `std::mutex`, `std::condition_variable`,
   `std::thread`, and raw `std::atomic_thread_fence` are forbidden
   outside the explicit allowlist (the util/ wrappers that exist
   precisely so everything else goes through an annotated or
   inventoried type).  Use util::Mutex / util::CondVar / util::Thread.

3. EXPLICIT ORDERING.  Every atomic member-function op must spell out
   its std::memory_order; `++`/`--`/compound-assignment/plain `=` on an
   inventoried atomic are flagged (they are implicit seq_cst and
   invisible to grep-based ordering review).

4. TABLE PARITY.  The inventory (file, variable, kind, pairs) and the
   named fence sites must exactly match the DESIGN.md section 10 table.
   Run `tools/lint_atomics.py --dump-table` to regenerate the table
   after an intentional change.

compile_commands.json (from any CMake configure) drives TU discovery so
a .cpp dropped from the build cannot silently escape; all src/ headers
are scanned unconditionally.  src/util/mc/ (the model checker's own
shims) and src/util/atomics_policy.hpp (the indirection layer the
checker swaps) are exempt from tagging — they implement the machinery,
not a protocol.

Run from anywhere:  python3 tools/lint_atomics.py [--repo DIR]
Exit code 0 = clean, 1 = protocol violation (details printed),
2 = setup/extraction failure (missing compdb, unparseable table).

--self-test seeds one violation of every class through the same code
paths and fails loudly if any goes undetected — the lint proves its own
non-vacuity on every CI run, like the model checker's mutation mode.
"""

import argparse
import json
import os
import re
import sys

FAIL_VIOLATION = 1
FAIL_SETUP = 2

KINDS = {
    "publication",
    "counter",
    "gauge",
    "flag",
    "spsc-index",
    "dekker-waiters",
    "config",
}

# Files implementing the concurrency machinery itself; their atomics are
# the shims every protocol is built from, not protocol instances.
EXEMPT_PREFIXES = ("src/util/mc/",)
EXEMPT_FILES = {"src/util/atomics_policy.hpp"}

# The only files allowed to name raw standard threading primitives.
# Everything else must use the util/ wrappers so locks are annotated
# (thread-safety analysis + lockdep) and threads are kernel-named.
RAW_ALLOWLIST = {
    "src/util/thread_annotations.hpp",  # util::Mutex/CondVar wrap the raw types
    "src/util/lockdep.cpp",             # deliberately-raw mutex (no recursion)
    "src/util/thread.hpp",              # util::Thread wraps std::thread
    "src/util/cpu.cpp",                 # std::thread::hardware_concurrency()
}

RAW_PATTERNS = [
    (re.compile(r"\bstd::mutex\b"), "std::mutex (use util::Mutex)"),
    (re.compile(r"\bstd::recursive_mutex\b"), "std::recursive_mutex"),
    (re.compile(r"\bstd::shared_mutex\b"), "std::shared_mutex"),
    (re.compile(r"\bstd::condition_variable\b"),
     "std::condition_variable (use util::CondVar)"),
    (re.compile(r"\bstd::thread\b"), "std::thread (use util::Thread)"),
    (re.compile(r"\bstd::atomic_thread_fence\b"),
     "std::atomic_thread_fence (use the atomics-policy fence hook)"),
]

ATOMIC_DECL_RE = re.compile(
    r"(?:\bstd::atomic<|\bP::template Atomic<|\btemplate Atomic<)")
TAG_RE = re.compile(
    r"//\s*atomic-protocol:\s*kind=([A-Za-z0-9_-]+)\s+pairs=(\S+)")
# Last identifier before an optional brace-init and the terminating ';'.
DECL_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\{[^{}]*\})?\s*;")
OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
FENCE_SITE_RE = re.compile(r'P::fence\(\s*std::memory_order_\w+,\s*"([^"]+)"')


class Lint:
    def __init__(self):
        self.errors = []
        self.inventory = []   # (relpath, name, kind, pairs)
        self.fence_sites = []  # (relpath, site)

    def error(self, relpath, lineno, msg):
        self.errors.append(f"{relpath}:{lineno}: {msg}")


def strip_comment(line):
    """Code portion of a physical line (string-literal '//' is not used
    anywhere in src/ in a way that matters to these patterns)."""
    i = line.find("//")
    return line if i < 0 else line[:i]


def is_exempt(relpath):
    return relpath in EXEMPT_FILES or any(
        relpath.startswith(p) for p in EXEMPT_PREFIXES)


def scan_file(lint, relpath, text):
    lines = text.split("\n")
    atomic_names = []
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        lineno = i + 1

        # -- raw-primitive ban ------------------------------------------
        if relpath not in RAW_ALLOWLIST and not is_exempt(relpath):
            for pat, what in RAW_PATTERNS:
                if pat.search(code):
                    lint.error(relpath, lineno, f"raw {what} is forbidden "
                               "outside the util/ wrappers")

        # -- fence sites ------------------------------------------------
        m = FENCE_SITE_RE.search(code)
        if m and not is_exempt(relpath):
            lint.fence_sites.append((relpath, m.group(1)))

        # -- declaration inventory + tag requirement --------------------
        dm = ATOMIC_DECL_RE.search(code)
        if dm and not is_exempt(relpath):
            if re.search(r"\busing\s+\w+\s*=", code):
                continue  # policy alias, not a declaration
            if "(" in code[:dm.start()]:
                continue  # function parameter, not a member declaration
            # Join continuation lines until the statement terminates.
            stmt, j = code, i
            while ";" not in stmt and j + 1 < len(lines):
                j += 1
                stmt += " " + strip_comment(lines[j])
            nm = DECL_NAME_RE.search(stmt)
            name = nm.group(1) if nm else "<unparsed>"
            tag = TAG_RE.search(lines[i - 1]) if i > 0 else None
            if not tag:
                lint.error(relpath, lineno,
                           f"std::atomic '{name}' has no atomic-protocol "
                           "tag on the preceding line")
                continue
            kind, pairs = tag.group(1), tag.group(2)
            if kind not in KINDS:
                lint.error(relpath, lineno,
                           f"unknown protocol kind '{kind}' for '{name}' "
                           f"(taxonomy: {', '.join(sorted(KINDS))})")
            lint.inventory.append((relpath, name, kind, pairs))
            atomic_names.append(name)

    # -- explicit-ordering checks (second pass: statement-joined) -------
    if is_exempt(relpath):
        return
    joined = []  # (start_lineno, stmt) with comments stripped
    buf, start = "", 0
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        if not buf:
            start = i + 1
        buf += code + " "
        if ";" in code or "{" in code or "}" in code:
            joined.append((start, buf))
            buf = ""
    if buf:
        joined.append((start, buf))

    for start, stmt in joined:
        for m in OP_RE.finditer(stmt):
            args = _call_args(stmt, m.end() - 1)
            op = m.group(1)
            if args is None:
                continue  # spans a statement boundary; next TU pass sees it
            if "memory_order" not in args:
                lint.error(relpath, start,
                           f".{op}() without an explicit std::memory_order "
                           "(implicit seq_cst)")
    return atomic_names


def _call_args(stmt, open_paren):
    """Text between a '(' at open_paren and its matching ')'."""
    depth = 0
    for k in range(open_paren, len(stmt)):
        if stmt[k] == "(":
            depth += 1
        elif stmt[k] == ")":
            depth -= 1
            if depth == 0:
                return stmt[open_paren + 1:k]
    return None


def scan_operator_forms(lint, module_files, atomic_names_by_file):
    """Flags ++/--/compound-assign/plain = on inventoried atomics.

    Scoped to the declaring file (the only place the name is
    unambiguously the atomic): a same-named plain member in another
    file — BoundedQueue's mutex-guarded `bytes_` next to SpscRing's
    atomic `bytes_`, a Snapshot struct mirroring its shard's counter
    names — cannot false-positive.  Member access on a different object
    (`out.count += ...`) and typed declarations (`int count = 0;`) are
    likewise skipped."""
    for relpath, names in atomic_names_by_file.items():
        if is_exempt(relpath) or not names:
            continue
        pat = re.compile(
            r"(^|.)\s*\b(" + "|".join(re.escape(n) for n in sorted(set(names)))
            + r")\s*(\+\+|--|[-+|&^]=|=[^=])")
        for i, raw in enumerate(module_files[relpath].split("\n")):
            code = strip_comment(raw)
            if ATOMIC_DECL_RE.search(code):
                continue  # the declaration's own brace-init
            for m in pat.finditer(code):
                before = code[:m.start(2)].rstrip()
                if before.endswith(".") or before.endswith("->"):
                    continue  # a member of some other object
                if re.search(r"[\w>\]]$", before):
                    continue  # typed declaration of a same-named plain var
                lint.error(relpath, i + 1,
                           f"operator form '{m.group(3).strip()}' on atomic "
                           f"'{m.group(2)}' is implicit seq_cst; use an "
                           "explicit-order member function")


# --------------------------------------------------------------------------
# DESIGN.md section 10 table parity.

TABLE_ROW_RE = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|\s*([a-z-]+)\s*\|\s*`([^`]+)`\s*\|")
FENCE_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|[^|]*\|\s*$")


def parse_design_table(design_text):
    """Extracts (atomics rows, fence rows) from the section 10 tables."""
    m = re.search(r"^## 10\. .*$", design_text, re.M)
    if not m:
        return None, None
    end = re.search(r"^## 11\. ", design_text[m.end():], re.M)
    section = design_text[m.end():m.end() + end.start()] if end \
        else design_text[m.end():]
    atomics, fences = [], []
    for line in section.split("\n"):
        am = TABLE_ROW_RE.match(line)
        if am:
            atomics.append((am.group(1), am.group(2), am.group(3),
                            am.group(4)))
            continue
        fm = FENCE_ROW_RE.match(line)
        if fm:
            fences.append((fm.group(1), fm.group(2)))
    return atomics, fences


def dump_table(lint):
    print("| File | Variable | Kind | Pairs with |")
    print("| --- | --- | --- | --- |")
    for relpath, name, kind, pairs in sorted(lint.inventory):
        print(f"| `{relpath}` | `{name}` | {kind} | `{pairs}` |")
    print()
    print("| File | Fence site | Order |")
    print("| --- | --- | --- |")
    for relpath, site in sorted(set(lint.fence_sites)):
        print(f"| `{relpath}` | `{site}` | seq_cst |")


def check_table(lint, design_text):
    table, fence_table = parse_design_table(design_text)
    if table is None:
        lint.errors.append(
            "DESIGN.md: no '## 10.' section found for the protocol table")
        return
    want = sorted(set(lint.inventory))
    got = sorted(set(table))
    if want != got:
        missing = [r for r in want if r not in got]
        stale = [r for r in got if r not in want]
        for r in missing:
            lint.errors.append(
                f"DESIGN.md section 10 table is missing {r[0]}:{r[1]} "
                f"(kind={r[2]} pairs={r[3]}) — run --dump-table")
        for r in stale:
            lint.errors.append(
                f"DESIGN.md section 10 table has stale row {r[0]}:{r[1]} "
                f"(kind={r[2]}) — run --dump-table")
    want_f = sorted(set(lint.fence_sites))
    got_f = sorted(set(fence_table or []))
    if want_f != got_f:
        lint.errors.append(
            f"DESIGN.md section 10 fence table mismatch: code has {want_f}, "
            f"table has {got_f} — run --dump-table")


# --------------------------------------------------------------------------
# File discovery.

def discover_files(repo, compdb_path):
    """src/ TUs from compile_commands.json + every src/ header on disk."""
    if not os.path.exists(compdb_path):
        print(f"lint_atomics: SETUP FAILURE: {compdb_path} not found; "
              "configure cmake first (cmake -B build -S .)", file=sys.stderr)
        sys.exit(FAIL_SETUP)
    with open(compdb_path, encoding="utf-8") as f:
        compdb = json.load(f)
    files = {}
    compdb_cpps = set()
    for entry in compdb:
        ap = os.path.abspath(os.path.join(entry.get("directory", ""),
                                          entry["file"]))
        rel = os.path.relpath(ap, repo)
        if rel.startswith("src" + os.sep):
            compdb_cpps.add(rel)
    on_disk_cpps = set()
    for root, _dirs, names in os.walk(os.path.join(repo, "src")):
        for n in names:
            rel = os.path.relpath(os.path.join(root, n), repo)
            if n.endswith(".hpp"):
                files[rel] = None
            elif n.endswith(".cpp"):
                on_disk_cpps.add(rel)
    escaped = on_disk_cpps - compdb_cpps
    if escaped:
        print("lint_atomics: SETUP FAILURE: src/ TUs absent from "
              f"compile_commands.json (dropped from the build?): "
              f"{sorted(escaped)}", file=sys.stderr)
        sys.exit(FAIL_SETUP)
    for rel in on_disk_cpps:
        files[rel] = None
    for rel in files:
        with open(os.path.join(repo, rel), encoding="utf-8") as f:
            files[rel] = f.read()
    return files


def run(files, design_text):
    lint = Lint()
    atomic_names_by_file = {}
    for relpath in sorted(files):
        names = scan_file(lint, relpath, files[relpath])
        if names:
            atomic_names_by_file[relpath] = names
    scan_operator_forms(lint, files, atomic_names_by_file)
    if design_text is not None:
        check_table(lint, design_text)
    return lint


# --------------------------------------------------------------------------
# Self-test: seed one violation of every class and require detection.

SELF_TEST_CASES = [
    ("untagged atomic",
     {"src/fake/a.hpp": "class X {\n  std::atomic<int> v_{0};\n};\n"},
     "no atomic-protocol tag"),
    ("unknown kind",
     {"src/fake/a.hpp":
      "// atomic-protocol: kind=vibes pairs=nowhere\n"
      "std::atomic<int> v_{0};\n"},
     "unknown protocol kind"),
    ("raw mutex outside util",
     {"src/fake/a.cpp": "#include <mutex>\nstd::mutex m;\n"},
     "raw std::mutex"),
    ("raw thread outside util",
     {"src/fake/a.cpp": "std::thread t;\n"},
     "raw std::thread"),
    ("raw fence outside policy",
     {"src/fake/a.cpp": "void f() { std::atomic_thread_fence("
      "std::memory_order_seq_cst); }\n"},
     "raw std::atomic_thread_fence"),
    ("implicit seq_cst load",
     {"src/fake/a.cpp":
      "// atomic-protocol: kind=flag pairs=x\n"
      "std::atomic<bool> f_{false};\nbool g() { return f_.load(); }\n"},
     "without an explicit std::memory_order"),
    ("implicit seq_cst multi-line store",
     {"src/fake/a.cpp":
      "// atomic-protocol: kind=counter pairs=x\n"
      "std::atomic<int> c_{0};\nvoid g() {\n  c_.store(\n      42);\n}\n"},
     "without an explicit std::memory_order"),
    ("operator form on atomic",
     {"src/fake/a.hpp":
      "// atomic-protocol: kind=counter pairs=x\n"
      "std::atomic<int> n_{0};\nvoid bump() { n_++; }\n"},
     "operator form"),
]


def self_test(real_files, design_text):
    failures = []
    for label, seeded, expect in SELF_TEST_CASES:
        files = dict(real_files)
        files.update(seeded)
        lint = run(files, None)
        if not any(expect in e for e in lint.errors):
            failures.append(
                f"  seeded '{label}' went UNDETECTED (expected an error "
                f"containing {expect!r}); got: {lint.errors or '<clean>'}")
    # Table parity must also fail loudly: drop one real inventory row.
    lint = run(real_files, design_text)
    if lint.inventory:
        mutated = re.sub(
            r"^\|\s*`" + re.escape(lint.inventory[0][0]) + r"`.*\n",
            "", design_text, count=1, flags=re.M)
        lint2 = run(real_files, mutated)
        if not any("table" in e for e in lint2.errors):
            failures.append("  seeded table-row removal went UNDETECTED")
    if failures:
        print("lint_atomics: SELF-TEST FAILURE (the lint is vacuous):",
              file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        sys.exit(FAIL_VIOLATION)
    print(f"lint_atomics: self-test ok "
          f"({len(SELF_TEST_CASES) + 1} seeded violations all detected)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json "
                    "(default: <repo>/build/compile_commands.json)")
    ap.add_argument("--dump-table", action="store_true",
                    help="print the DESIGN.md section 10 tables and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="seed violations and require the lint catch them")
    args = ap.parse_args()

    repo = os.path.abspath(
        args.repo or os.path.join(os.path.dirname(__file__), ".."))
    compdb = args.compile_commands or os.path.join(
        repo, "build", "compile_commands.json")
    files = discover_files(repo, compdb)
    with open(os.path.join(repo, "DESIGN.md"), encoding="utf-8") as f:
        design_text = f.read()

    if args.self_test:
        self_test(files, design_text)
        return

    lint = run(files, None if args.dump_table else design_text)
    if args.dump_table:
        dump_table(lint)
        return
    if lint.errors:
        print(f"lint_atomics: {len(lint.errors)} violation(s):",
              file=sys.stderr)
        for e in lint.errors:
            print("  " + e, file=sys.stderr)
        sys.exit(FAIL_VIOLATION)
    print(f"lint_atomics: ok ({len(lint.inventory)} tagged atomics, "
          f"{len(set(lint.fence_sites))} named fence sites, "
          "0 raw primitives outside util/)")


if __name__ == "__main__":
    main()
