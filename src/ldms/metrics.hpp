// LDMS metric sets: the sampler half of LDMS.
//
// Beyond streams, real LDMS daemons run *sampler plugins* that collect
// fixed-schema system metric sets (meminfo, vmstat, network counters) on
// a synchronous cadence; aggregators pull/push them alongside stream
// data.  The paper's motivation is correlating application I/O behaviour
// with exactly this system-state data, so the reproduction includes a
// sampler framework plus a synthetic "system state" sampler driven by the
// same variability process that perturbs the file-system models — giving
// the correlation analyses something true to correlate against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ldms/daemon.hpp"
#include "obs/registry.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

namespace dlc::ldms {

// --- Canonical metric channels -------------------------------------------
//
// Single source of truth for the bus / transport channel names: the
// sampler plugins build their metric_names() vectors from these lists
// and the obs registry mirrors derive their dotted names
// ("dlc.bus.<channel>" / "dlc.transport.<channel>") from the same
// entries, so set/channel names cannot drift between a sampler restart,
// the /metrics exposition and the Grafana exports (regression-tested in
// tests/test_obs.cpp).

enum class BusChannel : std::size_t {
  kMsgsString = 0,
  kMsgsJson,
  kMsgsBinary,
  kBytesString,
  kBytesJson,
  kBytesBinary,
  kBytesTotal,
  kCount,
};

enum class TransportChannel : std::size_t {
  kForwarded = 0,
  kForwardedBytes,
  kDropped,
  kOutageDropped,
  kMaxQueueDepth,
  kMaxQueueBytes,
  kSpooled,
  kRedelivered,
  kSpoolEvicted,
  kSpoolDepth,
  kCount,
};

/// Channel names in enum order (the samplers' metric_names()).
const std::vector<std::string>& bus_bytes_channels();
const std::vector<std::string>& transport_health_channels();

/// Registry names for the process-wide mirrors of the same channels.
std::string bus_metric_name(BusChannel c);
std::string transport_metric_name(TransportChannel c);

/// One sampled metric set instance: schema name, producer, timestamp and
/// the metric values (fixed order defined by the sampler).
struct MetricSample {
  std::string set_name;     // e.g. "meminfo"
  std::string producer;     // node name
  SimTime timestamp = 0;
  std::vector<double> values;
  /// Channel names; filled by from_json (parallel to `values`).  Samplers
  /// leave it empty and carry names in the plugin instead.
  std::vector<std::string> names;
};

/// Sampler plugin interface: fills `out` with the current metric values.
class SamplerPlugin {
 public:
  virtual ~SamplerPlugin() = default;
  virtual const std::string& set_name() const = 0;
  virtual const std::vector<std::string>& metric_names() const = 0;
  virtual void sample(SimTime now, std::vector<double>& out) = 0;
};

/// Sampler plugin exposing a daemon's stream-transport byte counters as a
/// metric set: per-payload-format published bytes and message counts (the
/// "darshan_stream_bytes" set).  This is how deployments watch the wire
/// saving of the binary/batched formats live — the JSON vs binary byte
/// split is a channel on the normal metrics path, not a log line.
class BusBytesSampler final : public SamplerPlugin {
 public:
  explicit BusBytesSampler(const LdmsDaemon& daemon);

  const std::string& set_name() const override { return name_; }
  const std::vector<std::string>& metric_names() const override {
    return names_;
  }
  void sample(SimTime now, std::vector<double>& out) override;

 private:
  const LdmsDaemon& daemon_;
  std::string name_ = "darshan_stream_bytes";
  std::vector<std::string> names_;
};

/// Sampler plugin exposing a daemon's transport-health counters as a
/// metric set ("darshan_transport_health"): forwarded/dropped message
/// counts, outage losses, queue high-water marks and the at-least-once
/// spool/redelivery counters.  This is how best-effort loss — previously
/// visible only to unit tests via Daemon::outage_dropped() — reaches
/// dashboards: the channels ride the normal metrics path into Grafana
/// JSON exports (see examples/grafana_export).
class TransportHealthSampler final : public SamplerPlugin {
 public:
  explicit TransportHealthSampler(const LdmsDaemon& daemon);

  const std::string& set_name() const override { return name_; }
  const std::vector<std::string>& metric_names() const override {
    return names_;
  }
  void sample(SimTime now, std::vector<double>& out) override;

 private:
  const LdmsDaemon& daemon_;
  std::string name_ = "darshan_transport_health";
  std::vector<std::string> names_;
};

/// Sampler plugin exposing the connector's *own* telemetry (the obs
/// registry) as a metric set ("darshan_connector_obs"): pipeline trace
/// latency quantiles, ingest back-pressure and queue depth, relia
/// dedup/loss counters.  The connector monitors itself through the same
/// LDMS metric-set path it provides to applications — channels ride the
/// bus like any sampler, so the self-telemetry shows up in the stored
/// metric series and Grafana exports with zero extra plumbing.
class ObsSelfSampler final : public SamplerPlugin {
 public:
  explicit ObsSelfSampler(const obs::Registry& registry = obs::Registry::global());

  const std::string& set_name() const override { return name_; }
  const std::vector<std::string>& metric_names() const override {
    return names_;
  }
  void sample(SimTime now, std::vector<double>& out) override;

 private:
  const obs::Registry& registry_;
  std::string name_ = "darshan_connector_obs";
  std::vector<std::string> names_;
};

/// Periodic sampler runner: samples every `interval` on the virtual
/// timeline and publishes each sample as a JSON stream message on
/// `tag` (so the existing transport/storage path carries metric sets
/// too, like the LDMS store plugins would).
class MetricSampler {
 public:
  MetricSampler(sim::Engine& engine, LdmsDaemon& daemon,
                std::unique_ptr<SamplerPlugin> plugin, SimDuration interval,
                std::string tag = "ldms-metrics");

  /// Starts sampling until `until` (virtual time).
  void start(SimTime until = INT64_MAX);

  /// Optional early-stop check, evaluated at each tick (e.g. "job is
  /// done") so open-ended samplers don't run the engine forever.
  void set_stop_predicate(std::function<bool()> stop) {
    stop_ = std::move(stop);
  }

  std::uint64_t samples_taken() const { return samples_; }
  const SamplerPlugin& plugin() const { return *plugin_; }

  /// Renders a sample as the JSON payload published on the bus.
  static std::string to_json(const MetricSample& sample,
                             const std::vector<std::string>& names);

  /// Parses a payload produced by to_json; returns false on mismatch.
  static bool from_json(const std::string& payload, MetricSample& out);

 private:
  sim::Task<void> run(SimTime until);

  sim::Engine& engine_;
  LdmsDaemon& daemon_;
  std::unique_ptr<SamplerPlugin> plugin_;
  SimDuration interval_;
  std::string tag_;
  std::function<bool()> stop_;
  std::uint64_t samples_ = 0;
  std::vector<double> scratch_;
};

}  // namespace dlc::ldms
