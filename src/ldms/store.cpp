#include "ldms/store.hpp"

namespace dlc::ldms {

void StorePlugin::attach(LdmsDaemon& daemon, const std::string& tag) {
  daemon.bus().subscribe(tag,
                         [this](const StreamMessage& msg) { store(msg); });
}

void CountingStore::store(const StreamMessage& msg) {
  account(msg);
  latency_sum_ += to_seconds(msg.deliver_time - msg.publish_time);
}

double CountingStore::mean_latency_seconds() const {
  return stored() ? latency_sum_ / static_cast<double>(stored()) : 0.0;
}

CsvStore::CsvStore(const std::string& file_path) : file_(file_path) {}

void CsvStore::store(const StreamMessage& msg) {
  account(msg);
  rows_.push_back(msg.payload);
  if (file_.is_open()) file_ << msg.payload << '\n';
}

}  // namespace dlc::ldms
