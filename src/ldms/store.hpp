// LDMS storage plugins: terminal subscribers that persist stream data.
//
//   CountingStore — counts messages/bytes (overhead experiments need only
//                   message accounting, not persistence).
//   CsvStore      — appends raw payload lines to an in-memory or file CSV
//                   sink (store_csv plugin analogue).
//   CallbackStore — adapter delivering messages to arbitrary code (the
//                   Darshan decoder in core/ uses this to feed DSOS).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "ldms/daemon.hpp"
#include "ldms/message.hpp"

namespace dlc::ldms {

class StorePlugin {
 public:
  virtual ~StorePlugin() = default;

  /// Attaches this store to `daemon`'s bus for `tag`.
  void attach(LdmsDaemon& daemon, const std::string& tag);

  virtual void store(const StreamMessage& msg) = 0;

  std::uint64_t stored() const { return stored_; }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 protected:
  void account(const StreamMessage& msg) {
    ++stored_;
    stored_bytes_ += msg.payload.size();
  }

 private:
  std::uint64_t stored_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

/// Counts and (optionally) samples latency, discarding payloads.
class CountingStore final : public StorePlugin {
 public:
  void store(const StreamMessage& msg) override;

  /// Mean publish->store latency over the messages seen (virtual seconds).
  double mean_latency_seconds() const;

 private:
  double latency_sum_ = 0.0;
};

/// Accumulates payload lines; optionally mirrors them to a file.
class CsvStore final : public StorePlugin {
 public:
  CsvStore() = default;
  explicit CsvStore(const std::string& file_path);

  void store(const StreamMessage& msg) override;

  const std::vector<std::string>& rows() const { return rows_; }

 private:
  std::vector<std::string> rows_;
  std::ofstream file_;
};

/// Forwards to a std::function.
class CallbackStore final : public StorePlugin {
 public:
  explicit CallbackStore(std::function<void(const StreamMessage&)> fn)
      : fn_(std::move(fn)) {}

  void store(const StreamMessage& msg) override {
    account(msg);
    fn_(msg);
  }

 private:
  std::function<void(const StreamMessage&)> fn_;
};

}  // namespace dlc::ldms
