// Applies a relia::FaultPlan to live LDMS daemons.
//
// The plan is pure data (relia/fault.hpp); this is the binding to the
// transport: crash => daemon-wide outage window, partition => route
// window toward the named upstream, overflow => forced enqueue
// rejections, restart => truncation of whatever window is open at that
// time.  Names resolve through a caller-supplied lookup so any topology
// (pipeline, tests, benches) can inject the same schedule.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ldms/daemon.hpp"
#include "relia/fault.hpp"

namespace dlc::ldms {

/// Maps a daemon name from the plan to the live instance (nullptr =
/// unknown).
using DaemonResolver = std::function<LdmsDaemon*(const std::string&)>;

/// Applies every event of `plan`; returns the events that referenced
/// unknown daemons (empty = fully applied).  Unknown names are skipped,
/// not fatal: a shared fault schedule may name daemons a smaller
/// topology does not instantiate.
std::vector<relia::FaultEvent> apply_fault_plan(const relia::FaultPlan& plan,
                                                const DaemonResolver& resolve);

}  // namespace dlc::ldms
