#include "ldms/stream_bus.hpp"

#include <algorithm>
#include <array>

#include "ldms/metrics.hpp"
#include "obs/registry.hpp"

namespace dlc::ldms {

namespace {

// Process-wide mirrors of the per-bus counters under "dlc.bus.*".  The
// per-format channels share their names with BusBytesSampler via
// bus_metric_name(); published/delivered/missed are registry-only.
// Bumped outside the bus lock — counter init must not nest the registry
// mutex under the StreamBus leaf mutex.
struct BusObs {
  obs::Counter& published;
  obs::Counter& delivered;
  obs::Counter& missed;
  std::array<obs::Counter*, kPayloadFormatCount> msgs;
  std::array<obs::Counter*, kPayloadFormatCount> bytes;
  obs::Counter& bytes_total;
};

BusObs& bus_obs() {
  using C = BusChannel;
  obs::Registry& reg = obs::Registry::global();
  static BusObs b{
      reg.counter("dlc.bus.published"),
      reg.counter("dlc.bus.delivered"),
      reg.counter("dlc.bus.missed"),
      {&reg.counter(bus_metric_name(C::kMsgsString)),
       &reg.counter(bus_metric_name(C::kMsgsJson)),
       &reg.counter(bus_metric_name(C::kMsgsBinary))},
      {&reg.counter(bus_metric_name(C::kBytesString)),
       &reg.counter(bus_metric_name(C::kBytesJson)),
       &reg.counter(bus_metric_name(C::kBytesBinary))},
      reg.counter(bus_metric_name(C::kBytesTotal)),
  };
  return b;
}

}  // namespace

SubscriptionId StreamBus::subscribe(std::string tag, SubscriberFn fn) {
  const util::LockGuard lock(mutex_);
  const SubscriptionId id = next_id_++;
  subs_.push_back(Subscription{id, std::move(tag), std::move(fn)});
  return id;
}

void StreamBus::unsubscribe(SubscriptionId id) {
  const util::LockGuard lock(mutex_);
  std::erase_if(subs_, [id](const Subscription& s) { return s.id == id; });
}

std::size_t StreamBus::publish(const StreamMessage& msg) {
  // Snapshot matching callbacks under the lock, invoke outside it (CP.22:
  // never call unknown code while holding a lock).
  std::vector<SubscriberFn> targets;
  {
    const util::LockGuard lock(mutex_);
    ++published_;
    const auto fmt = static_cast<std::size_t>(msg.format);
    if (fmt < kPayloadFormatCount) {
      format_bytes_[fmt] += msg.payload.size();
      ++format_counts_[fmt];
    }
    for (const Subscription& s : subs_) {
      if (s.tag == msg.tag) targets.push_back(s.fn);
    }
    if (targets.empty()) {
      ++missed_;
    } else {
      delivered_ += targets.size();
    }
  }
  if (obs::enabled()) {
    BusObs& mirror = bus_obs();
    mirror.published.add();
    const auto fmt = static_cast<std::size_t>(msg.format);
    if (fmt < kPayloadFormatCount) {
      mirror.msgs[fmt]->add();
      mirror.bytes[fmt]->add(msg.payload.size());
      mirror.bytes_total.add(msg.payload.size());
    }
    if (targets.empty()) {
      mirror.missed.add();
    } else {
      mirror.delivered.add(targets.size());
    }
  }
  for (const auto& fn : targets) fn(msg);
  return targets.size();
}

std::uint64_t StreamBus::published() const {
  const util::LockGuard lock(mutex_);
  return published_;
}

std::uint64_t StreamBus::delivered() const {
  const util::LockGuard lock(mutex_);
  return delivered_;
}

std::uint64_t StreamBus::missed() const {
  const util::LockGuard lock(mutex_);
  return missed_;
}

std::size_t StreamBus::subscriber_count() const {
  const util::LockGuard lock(mutex_);
  return subs_.size();
}

std::uint64_t StreamBus::published_bytes(PayloadFormat format) const {
  const util::LockGuard lock(mutex_);
  return format_bytes_[static_cast<std::size_t>(format)];
}

std::uint64_t StreamBus::published_bytes() const {
  const util::LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const std::uint64_t b : format_bytes_) total += b;
  return total;
}

std::uint64_t StreamBus::published_count(PayloadFormat format) const {
  const util::LockGuard lock(mutex_);
  return format_counts_[static_cast<std::size_t>(format)];
}

}  // namespace dlc::ldms
