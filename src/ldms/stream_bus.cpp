#include "ldms/stream_bus.hpp"

#include <algorithm>

namespace dlc::ldms {

SubscriptionId StreamBus::subscribe(std::string tag, SubscriberFn fn) {
  const util::LockGuard lock(mutex_);
  const SubscriptionId id = next_id_++;
  subs_.push_back(Subscription{id, std::move(tag), std::move(fn)});
  return id;
}

void StreamBus::unsubscribe(SubscriptionId id) {
  const util::LockGuard lock(mutex_);
  std::erase_if(subs_, [id](const Subscription& s) { return s.id == id; });
}

std::size_t StreamBus::publish(const StreamMessage& msg) {
  // Snapshot matching callbacks under the lock, invoke outside it (CP.22:
  // never call unknown code while holding a lock).
  std::vector<SubscriberFn> targets;
  {
    const util::LockGuard lock(mutex_);
    ++published_;
    const auto fmt = static_cast<std::size_t>(msg.format);
    if (fmt < kPayloadFormatCount) {
      format_bytes_[fmt] += msg.payload.size();
      ++format_counts_[fmt];
    }
    for (const Subscription& s : subs_) {
      if (s.tag == msg.tag) targets.push_back(s.fn);
    }
    if (targets.empty()) {
      ++missed_;
    } else {
      delivered_ += targets.size();
    }
  }
  for (const auto& fn : targets) fn(msg);
  return targets.size();
}

std::uint64_t StreamBus::published() const {
  const util::LockGuard lock(mutex_);
  return published_;
}

std::uint64_t StreamBus::delivered() const {
  const util::LockGuard lock(mutex_);
  return delivered_;
}

std::uint64_t StreamBus::missed() const {
  const util::LockGuard lock(mutex_);
  return missed_;
}

std::size_t StreamBus::subscriber_count() const {
  const util::LockGuard lock(mutex_);
  return subs_.size();
}

std::uint64_t StreamBus::published_bytes(PayloadFormat format) const {
  const util::LockGuard lock(mutex_);
  return format_bytes_[static_cast<std::size_t>(format)];
}

std::uint64_t StreamBus::published_bytes() const {
  const util::LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const std::uint64_t b : format_bytes_) total += b;
  return total;
}

std::uint64_t StreamBus::published_count(PayloadFormat format) const {
  const util::LockGuard lock(mutex_);
  return format_counts_[static_cast<std::size_t>(format)];
}

}  // namespace dlc::ldms
