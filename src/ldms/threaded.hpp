// Real-thread LDMS transport: a bounded queue drained by a worker thread.
//
// The virtual-time pipeline (LdmsDaemon routes) measures *modelled*
// latency; this forwarder exists to measure the *actual* software cost of
// the streams path on real hardware — used by bench_streams to report
// publish throughput across 1..3 hops with best-effort drop semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include "util/thread.hpp"

#include "ldms/message.hpp"
#include "ldms/stream_bus.hpp"
#include "util/spsc_ring.hpp"

namespace dlc::ldms {

class ThreadedForwarder {
 public:
  /// Subscribes to `tag` on `from` and pushes matching messages to `to`
  /// from a dedicated worker thread.  `queue_capacity_bytes` additionally
  /// caps the queued payload bytes (0 => unlimited) so batched frames and
  /// tiny per-event messages compete for the same buffer budget.
  ///
  /// SINGLE-PUBLISHER REQUIREMENT: the hand-off queue is a lock-free
  /// SpscRing, so all publishes to `tag` on `from` must come from one
  /// thread at a time (the forwarder worker is the one consumer).  That
  /// is every existing deployment — a connector/daemon publish thread or
  /// the upstream forwarder's single worker feeding each hop — and what
  /// makes this edge part of the lock-free hot path (relia redelivery
  /// rides the same bus edges on reconnect).
  ThreadedForwarder(StreamBus& from, StreamBus& to, const std::string& tag,
                    std::size_t queue_capacity = 65536,
                    std::size_t queue_capacity_bytes = 0);
  ~ThreadedForwarder();

  ThreadedForwarder(const ThreadedForwarder&) = delete;
  ThreadedForwarder& operator=(const ThreadedForwarder&) = delete;

  /// Stops the worker after draining in-flight messages.
  void stop();

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  /// Payload bytes successfully published to the downstream bus.
  std::uint64_t forwarded_bytes() const {
    return forwarded_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  StreamBus& to_;
  SpscRing<StreamMessage> queue_;
  // atomic-protocol: kind=counter pairs=ThreadedForwarder::stats
  std::atomic<std::uint64_t> dropped_{0};
  // atomic-protocol: kind=counter pairs=ThreadedForwarder::stats
  std::atomic<std::uint64_t> forwarded_{0};
  // atomic-protocol: kind=counter pairs=ThreadedForwarder::stats
  std::atomic<std::uint64_t> forwarded_bytes_{0};
  SubscriptionId sub_id_;
  StreamBus& from_;
  util::Thread worker_;
};

}  // namespace dlc::ldms
