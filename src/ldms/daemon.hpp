// LDMSD: an LDMS daemon with a local stream bus and push-based forwarding.
//
// Mirrors the paper's deployment: sampler daemons on compute nodes push
// Darshan stream data one hop to the head-node aggregator, which pushes to
// a second-level aggregator on the analysis cluster (Shirley) where the
// storage plugin subscribes.  Forwarding is best-effort by default: each
// route has a bounded in-flight queue; overflow drops the message and
// bumps a counter (LDMS Streams has no resend).  Hop latency and per-byte
// transport cost advance virtual time.
//
// src/relia layers an optional at-least-once mode per route
// (ForwardConfig::delivery): messages a down or full route cannot take
// are retained in a bounded spool and redelivered by a reconnect prober
// (exponential backoff + circuit breaker) once the route heals.
// Deliveries made into an outage window are treated as
// delivered-without-ack — the publisher cannot see across a partition —
// so they are redelivered too and deduped downstream by sequence number
// (every publish stamps a per-(producer, tag) seq; see relia/seq.hpp).
//
// Fault injection: daemon-wide outage windows (crash), per-route windows
// (partition), forced enqueue rejections (queue overflow bursts) and
// restarts that truncate a window in progress; fault_inject.hpp drives
// these from a relia::FaultPlan.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ldms/message.hpp"
#include "ldms/stream_bus.hpp"
#include "relia/delivery.hpp"
#include "relia/reconnect.hpp"
#include "relia/spool.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace dlc::ldms {

struct ForwardConfig {
  /// Max messages queued on this route before drops begin.
  std::size_t queue_capacity = 4096;
  /// Max queued payload *bytes* on this route (0 => unlimited).  Message
  /// counts stop being a meaningful capacity once batching makes message
  /// sizes differ by orders of magnitude; a bytes cap models the real
  /// buffer limit and is fair across wire formats.
  std::size_t queue_capacity_bytes = 0;
  /// Per-hop transport latency.
  SimDuration hop_latency = 50 * kMicrosecond;
  /// Transport bandwidth for the payload (bytes/sec); 0 => unmetered.
  double bandwidth_bytes_per_sec = 1.0 * 1024 * 1024 * 1024;
  /// Delivery guarantee.  kBestEffort reproduces the paper's LDMS
  /// Streams; kAtLeastOnce spools what the route cannot take and
  /// redelivers after reconnect (requires an engine; inert without one).
  relia::DeliveryMode delivery = relia::DeliveryMode::kBestEffort;
  /// Spool bound for kAtLeastOnce (DARSHAN_LDMS_SPOOL_{MSGS,BYTES}).
  relia::SpoolConfig spool;
  /// Reconnect probing schedule for kAtLeastOnce.
  relia::BackoffConfig backoff;
  relia::BreakerConfig breaker;
};

class LdmsDaemon {
 public:
  /// `engine` may be null for pure real-thread use (no virtual transport).
  LdmsDaemon(sim::Engine* engine, std::string name);

  const std::string& name() const { return name_; }
  StreamBus& bus() { return bus_; }
  const StreamBus& bus() const { return bus_; }

  /// ldms_stream_publish: stamps times/producer/sequence and delivers to
  /// the local bus (whence forward routes pick it up).  Returns
  /// subscribers reached.  `trace` (optional) attaches the envelope half
  /// of a sampled pipeline trace; the daemon stamps Hop::kBusEnqueued and
  /// the forward pumps stamp the transport hops in transit.
  std::size_t publish(std::string_view tag, PayloadFormat format,
                      std::string payload,
                      const obs::TraceContext* trace = nullptr);

  /// Configures push-forwarding of `tag` to `upstream` (prdcr/updtr
  /// analogue).  Messages published to this daemon's bus with a matching
  /// tag are queued and delivered to the upstream daemon's bus after the
  /// modelled hop delay.
  void add_forward(const std::string& tag, LdmsDaemon& upstream,
                   ForwardConfig config = {});

  // --- fault injection --------------------------------------------------
  /// Daemon crash: during [start, end) every forward route of this daemon
  /// refuses new arrivals.  Best-effort drops them (LDMS has no
  /// reconnect/resend); at-least-once spools them for redelivery.
  /// Messages already queued keep draining — queue contents survive a
  /// transport outage.  Windows accumulate; a FaultPlan may crash the
  /// same daemon repeatedly.
  void add_outage(SimTime start, SimTime end);
  /// Replaces all outage windows with one (legacy single-window API).
  void set_outage(SimTime start, SimTime end);
  /// Operator restart at `t`: truncates any daemon-wide or route window
  /// covering `t` (later scheduled windows are untouched).
  void restart_at(SimTime t);
  /// Network partition: only the route(s) toward `upstream` refuse new
  /// arrivals during [start, end).
  void add_route_outage(const std::string& upstream, SimTime start,
                        SimTime end);
  /// Forces the next `count` enqueues on this daemon's routes from
  /// `at` onward to be rejected as if the queue were full.
  void inject_overflow(SimTime at, std::uint64_t count);

  bool in_outage() const;
  /// Messages lost to outage/partition windows (best-effort only; the
  /// at-least-once path spools instead).
  std::uint64_t outage_dropped() const;

  // --- transport statistics ---------------------------------------------
  /// Messages dropped across all routes of this daemon (queue overflow +
  /// outage losses + abandoned/evicted spool contents).
  std::uint64_t dropped() const;
  /// Messages successfully handed to upstream buses.
  std::uint64_t forwarded() const;
  /// Payload bytes successfully handed to upstream buses.
  std::uint64_t forwarded_bytes() const;
  /// Largest queue depth observed on any route (transport back-pressure).
  std::size_t max_queue_depth() const;
  /// Largest queued payload byte total observed on any route.
  std::size_t max_queue_bytes() const;

  // --- at-least-once statistics -----------------------------------------
  /// Messages retained in route spools (outage, breaker, overflow or
  /// lost-ack retention).
  std::uint64_t spooled() const;
  /// Spooled messages re-enqueued after reconnect.
  std::uint64_t redelivered() const;
  /// Spooled messages lost anyway: ring/file overflow eviction plus
  /// abandonment after BackoffConfig::max_attempts.
  std::uint64_t spool_evicted() const;
  /// Messages currently retained across route spools.
  std::size_t spool_depth() const;
  /// Reconnect probes that found the route still down.
  std::uint64_t failed_probes() const;

 private:
  struct Window {
    SimTime start = 0;
    SimTime end = 0;
  };

  struct Route {
    LdmsDaemon* upstream = nullptr;
    ForwardConfig config;
    std::deque<StreamMessage> queue;
    std::size_t queued_bytes = 0;
    bool pump_active = false;
    std::uint64_t dropped = 0;
    std::uint64_t outage_dropped = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t forwarded_bytes = 0;
    std::size_t max_depth = 0;
    std::size_t max_depth_bytes = 0;
    // Fault-injection state.
    std::vector<Window> outages;
    std::uint64_t forced_rejects = 0;
    // At-least-once state (constructed only when configured).
    std::unique_ptr<relia::MessageSpool> spool;
    relia::CircuitBreaker breaker;
    bool prober_active = false;
    std::uint64_t spooled = 0;
    std::uint64_t redelivered = 0;
    std::uint64_t failed_probes = 0;
    /// Spool evictions already mirrored into the obs registry (the spool
    /// itself only keeps an aggregate counter).
    std::uint64_t mirrored_evicted = 0;
  };

  struct OverflowInjection {
    SimTime at = 0;
    std::uint64_t remaining = 0;
  };

  bool at_least_once(const Route& route) const;
  bool route_down(const Route& route) const;
  bool queue_has_room(const Route& route, std::size_t bytes) const;
  void push_to_queue(Route& route, StreamMessage msg);
  void spool_message(Route& route, const StreamMessage& msg);
  /// Forwards new spool evictions to the dlc.transport.spool_evicted
  /// mirror (delta against Route::mirrored_evicted).
  void sync_spool_evicted(Route& route);
  void enqueue(Route& route, const StreamMessage& msg);
  sim::Task<void> pump(Route& route);
  sim::Task<void> reconnect_prober(Route& route);

  static bool in_windows(const std::vector<Window>& windows, SimTime now);
  static void truncate_windows(std::vector<Window>& windows, SimTime t);

  sim::Engine* engine_;
  std::string name_;
  StreamBus bus_;
  std::vector<Window> outages_;
  std::uint64_t outage_dropped_ = 0;
  std::vector<OverflowInjection> overflow_injections_;
  /// Per-tag publish sequence counters (seq starts at 1).
  std::map<std::string, std::uint64_t, std::less<>> next_seq_;
  /// Jitter source for reconnect backoff; seeded from the daemon name so
  /// a fleet recovering together still fans out deterministically.
  Rng rng_;
  // Stable addresses: routes are captured by reference in pump coroutines.
  std::vector<std::unique_ptr<Route>> routes_;
};

}  // namespace dlc::ldms
