// LDMSD: an LDMS daemon with a local stream bus and push-based forwarding.
//
// Mirrors the paper's deployment: sampler daemons on compute nodes push
// Darshan stream data one hop to the head-node aggregator, which pushes to
// a second-level aggregator on the analysis cluster (Shirley) where the
// storage plugin subscribes.  Forwarding is best-effort: each route has a
// bounded in-flight queue; overflow drops the message and bumps a counter
// (LDMS Streams has no resend).  Hop latency and per-byte transport cost
// advance virtual time.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ldms/message.hpp"
#include "ldms/stream_bus.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace dlc::ldms {

struct ForwardConfig {
  /// Max messages queued on this route before drops begin.
  std::size_t queue_capacity = 4096;
  /// Max queued payload *bytes* on this route (0 => unlimited).  Message
  /// counts stop being a meaningful capacity once batching makes message
  /// sizes differ by orders of magnitude; a bytes cap models the real
  /// buffer limit and is fair across wire formats.
  std::size_t queue_capacity_bytes = 0;
  /// Per-hop transport latency.
  SimDuration hop_latency = 50 * kMicrosecond;
  /// Transport bandwidth for the payload (bytes/sec); 0 => unmetered.
  double bandwidth_bytes_per_sec = 1.0 * 1024 * 1024 * 1024;
};

class LdmsDaemon {
 public:
  /// `engine` may be null for pure real-thread use (no virtual transport).
  LdmsDaemon(sim::Engine* engine, std::string name);

  const std::string& name() const { return name_; }
  StreamBus& bus() { return bus_; }
  const StreamBus& bus() const { return bus_; }

  /// ldms_stream_publish: stamps times/producer and delivers to the local
  /// bus (whence forward routes pick it up).  Returns subscribers reached.
  std::size_t publish(std::string_view tag, PayloadFormat format,
                      std::string payload);

  /// Configures push-forwarding of `tag` to `upstream` (prdcr/updtr
  /// analogue).  Messages published to this daemon's bus with a matching
  /// tag are queued and delivered to the upstream daemon's bus after the
  /// modelled hop delay.
  void add_forward(const std::string& tag, LdmsDaemon& upstream,
                   ForwardConfig config = {});

  /// Failure injection: during [start, end) the daemon's forward routes
  /// drop everything (aggregator crash / network partition).  Messages
  /// already queued keep draining once the daemon recovers — queue
  /// contents survive a transport outage, new arrivals do not (LDMS has
  /// no reconnect/resend).
  void set_outage(SimTime start, SimTime end);
  bool in_outage() const;
  std::uint64_t outage_dropped() const { return outage_dropped_; }

  /// Messages dropped across all routes of this daemon (queue overflow +
  /// outage losses).
  std::uint64_t dropped() const;
  /// Messages successfully handed to upstream buses.
  std::uint64_t forwarded() const;
  /// Payload bytes successfully handed to upstream buses.
  std::uint64_t forwarded_bytes() const;
  /// Largest queue depth observed on any route (transport back-pressure).
  std::size_t max_queue_depth() const;
  /// Largest queued payload byte total observed on any route.
  std::size_t max_queue_bytes() const;

 private:
  struct Route {
    LdmsDaemon* upstream = nullptr;
    ForwardConfig config;
    std::deque<StreamMessage> queue;
    std::size_t queued_bytes = 0;
    bool pump_active = false;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t forwarded_bytes = 0;
    std::size_t max_depth = 0;
    std::size_t max_depth_bytes = 0;
  };

  void enqueue(Route& route, const StreamMessage& msg);
  sim::Task<void> pump(Route& route);

  sim::Engine* engine_;
  std::string name_;
  StreamBus bus_;
  SimTime outage_start_ = 0;
  SimTime outage_end_ = 0;
  std::uint64_t outage_dropped_ = 0;
  // Stable addresses: routes are captured by reference in pump coroutines.
  std::vector<std::unique_ptr<Route>> routes_;
};

}  // namespace dlc::ldms
