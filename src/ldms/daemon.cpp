#include "ldms/daemon.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dlc::ldms {

LdmsDaemon::LdmsDaemon(sim::Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

std::size_t LdmsDaemon::publish(std::string_view tag, PayloadFormat format,
                                std::string payload) {
  StreamMessage msg;
  msg.tag = std::string(tag);
  msg.format = format;
  msg.payload = std::move(payload);
  msg.producer = name_;
  if (engine_) {
    msg.publish_time = engine_->now();
    msg.deliver_time = engine_->now();
  }
  return bus_.publish(msg);
}

void LdmsDaemon::add_forward(const std::string& tag, LdmsDaemon& upstream,
                             ForwardConfig config) {
  routes_.push_back(std::make_unique<Route>());
  Route* route = routes_.back().get();
  route->upstream = &upstream;
  route->config = config;
  bus_.subscribe(tag,
                 [this, route](const StreamMessage& msg) { enqueue(*route, msg); });
}

void LdmsDaemon::set_outage(SimTime start, SimTime end) {
  outage_start_ = start;
  outage_end_ = end;
}

bool LdmsDaemon::in_outage() const {
  if (outage_end_ <= outage_start_ || !engine_) return false;
  const SimTime now = engine_->now();
  return now >= outage_start_ && now < outage_end_;
}

void LdmsDaemon::enqueue(Route& route, const StreamMessage& msg) {
  if (in_outage()) {
    ++outage_dropped_;  // transport down: the message is simply gone
    return;
  }
  if (route.queue.size() >= route.config.queue_capacity ||
      (route.config.queue_capacity_bytes > 0 &&
       route.queued_bytes + msg.payload.size() >
           route.config.queue_capacity_bytes)) {
    ++route.dropped;  // best effort: no resend, no back-pressure
    return;
  }
  route.queued_bytes += msg.payload.size();
  route.queue.push_back(msg);
  route.max_depth = std::max(route.max_depth, route.queue.size());
  route.max_depth_bytes = std::max(route.max_depth_bytes, route.queued_bytes);
  if (engine_ && !route.pump_active) {
    route.pump_active = true;
    engine_->spawn(pump(route));
  } else if (!engine_) {
    // No virtual transport: deliver inline (degenerate zero-latency hop).
    StreamMessage inline_msg = std::move(route.queue.front());
    route.queue.pop_front();
    route.queued_bytes -= inline_msg.payload.size();
    ++inline_msg.hops;
    route.forwarded_bytes += inline_msg.payload.size();
    route.upstream->bus().publish(inline_msg);
    ++route.forwarded;
  }
}

sim::Task<void> LdmsDaemon::pump(Route& route) {
  // Drains the route queue, modelling per-message hop cost; exits when the
  // queue is empty (re-spawned on the next enqueue).
  while (!route.queue.empty()) {
    StreamMessage msg = std::move(route.queue.front());
    route.queue.pop_front();
    route.queued_bytes -= msg.payload.size();
    SimDuration cost = route.config.hop_latency;
    if (route.config.bandwidth_bytes_per_sec > 0) {
      cost += static_cast<SimDuration>(
          static_cast<double>(msg.payload.size()) /
          route.config.bandwidth_bytes_per_sec *
          static_cast<double>(kSecond));
    }
    co_await engine_->delay(cost);
    msg.deliver_time = engine_->now();
    ++msg.hops;
    route.forwarded_bytes += msg.payload.size();
    route.upstream->bus().publish(msg);
    ++route.forwarded;
  }
  route.pump_active = false;
}

std::uint64_t LdmsDaemon::dropped() const {
  std::uint64_t total = outage_dropped_;
  for (const auto& r : routes_) total += r->dropped;
  return total;
}

std::uint64_t LdmsDaemon::forwarded() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->forwarded;
  return total;
}

std::uint64_t LdmsDaemon::forwarded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->forwarded_bytes;
  return total;
}

std::size_t LdmsDaemon::max_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& r : routes_) depth = std::max(depth, r->max_depth);
  return depth;
}

std::size_t LdmsDaemon::max_queue_bytes() const {
  std::size_t bytes = 0;
  for (const auto& r : routes_) bytes = std::max(bytes, r->max_depth_bytes);
  return bytes;
}

}  // namespace dlc::ldms
