#include "ldms/daemon.hpp"

#include <algorithm>

#include "ldms/metrics.hpp"
#include "obs/registry.hpp"
#include "util/log.hpp"

namespace dlc::ldms {

namespace {

// Process-wide mirrors of the per-daemon transport counters, under the
// canonical "dlc.transport.*" names shared with TransportHealthSampler
// (see metrics.hpp).  Counters aggregate over every daemon in the
// process; the depth channels are high-watermark gauges.  References are
// resolved once — the hot path pays one enabled() branch plus a relaxed
// atomic per bump.
struct TransportObs {
  obs::Counter& forwarded;
  obs::Counter& forwarded_bytes;
  obs::Counter& dropped;
  obs::Counter& outage_dropped;
  obs::Counter& spooled;
  obs::Counter& redelivered;
  obs::Counter& spool_evicted;
  obs::Gauge& max_queue_depth;
  obs::Gauge& max_queue_bytes;
  obs::Gauge& spool_depth;
};

TransportObs& transport_obs() {
  using C = TransportChannel;
  obs::Registry& reg = obs::Registry::global();
  static TransportObs t{
      reg.counter(transport_metric_name(C::kForwarded)),
      reg.counter(transport_metric_name(C::kForwardedBytes)),
      reg.counter(transport_metric_name(C::kDropped)),
      reg.counter(transport_metric_name(C::kOutageDropped)),
      reg.counter(transport_metric_name(C::kSpooled)),
      reg.counter(transport_metric_name(C::kRedelivered)),
      reg.counter(transport_metric_name(C::kSpoolEvicted)),
      reg.gauge(transport_metric_name(C::kMaxQueueDepth)),
      reg.gauge(transport_metric_name(C::kMaxQueueBytes)),
      reg.gauge(transport_metric_name(C::kSpoolDepth)),
  };
  return t;
}

}  // namespace

LdmsDaemon::LdmsDaemon(sim::Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)), rng_(fnv1a64(name_)) {}

std::size_t LdmsDaemon::publish(std::string_view tag, PayloadFormat format,
                                std::string payload,
                                const obs::TraceContext* trace) {
  StreamMessage msg;
  msg.tag = std::string(tag);
  msg.format = format;
  msg.payload = std::move(payload);
  msg.producer = name_;
  msg.seq = ++next_seq_[msg.tag];
  if (engine_) {
    msg.publish_time = engine_->now();
    msg.deliver_time = engine_->now();
  }
  if (trace != nullptr && trace->sampled()) {
    msg.trace = *trace;
    msg.trace.stamp(obs::Hop::kBusEnqueued,
                    engine_ ? engine_->now()
                            : msg.trace.hop(obs::Hop::kPublished));
  }
  return bus_.publish(msg);
}

void LdmsDaemon::add_forward(const std::string& tag, LdmsDaemon& upstream,
                             ForwardConfig config) {
  routes_.push_back(std::make_unique<Route>());
  Route* route = routes_.back().get();
  route->upstream = &upstream;
  route->config = config;
  if (config.delivery == relia::DeliveryMode::kAtLeastOnce) {
    route->spool = std::make_unique<relia::MessageSpool>(config.spool);
    route->breaker.configure(config.breaker);
  }
  bus_.subscribe(tag,
                 [this, route](const StreamMessage& msg) { enqueue(*route, msg); });
}

// --- fault injection ------------------------------------------------------

void LdmsDaemon::add_outage(SimTime start, SimTime end) {
  if (end <= start) return;
  outages_.push_back({start, end});
}

void LdmsDaemon::set_outage(SimTime start, SimTime end) {
  outages_.clear();
  add_outage(start, end);
}

void LdmsDaemon::restart_at(SimTime t) {
  truncate_windows(outages_, t);
  for (const auto& r : routes_) truncate_windows(r->outages, t);
}

void LdmsDaemon::add_route_outage(const std::string& upstream, SimTime start,
                                  SimTime end) {
  if (end <= start) return;
  for (const auto& r : routes_) {
    if (r->upstream && r->upstream->name() == upstream) {
      r->outages.push_back({start, end});
    }
  }
}

void LdmsDaemon::inject_overflow(SimTime at, std::uint64_t count) {
  if (count == 0) return;
  overflow_injections_.push_back({at, count});
}

bool LdmsDaemon::in_windows(const std::vector<Window>& windows, SimTime now) {
  for (const Window& w : windows) {
    if (now >= w.start && now < w.end) return true;
  }
  return false;
}

void LdmsDaemon::truncate_windows(std::vector<Window>& windows, SimTime t) {
  for (Window& w : windows) {
    if (w.start < t && w.end > t) w.end = t;
  }
}

bool LdmsDaemon::in_outage() const {
  return engine_ && in_windows(outages_, engine_->now());
}

bool LdmsDaemon::route_down(const Route& route) const {
  if (!engine_) return false;
  return in_outage() || in_windows(route.outages, engine_->now());
}

// --- forwarding -----------------------------------------------------------

bool LdmsDaemon::at_least_once(const Route& route) const {
  // The spool/prober machinery rides the virtual clock; without an engine
  // the route degrades to best-effort (documented in ForwardConfig).
  return route.spool != nullptr && engine_ != nullptr;
}

bool LdmsDaemon::queue_has_room(const Route& route, std::size_t bytes) const {
  if (route.queue.size() >= route.config.queue_capacity) return false;
  if (route.config.queue_capacity_bytes > 0 &&
      bytes > route.config.queue_capacity_bytes - route.queued_bytes) {
    return false;
  }
  return true;
}

void LdmsDaemon::push_to_queue(Route& route, StreamMessage msg) {
  if (!engine_) {
    // No virtual transport: deliver inline (degenerate zero-latency hop).
    ++msg.hops;
    if (msg.trace.sampled()) {
      msg.trace.stamp(msg.hops == 1 ? obs::Hop::kDaemonForwarded
                                    : obs::Hop::kAggregated,
                      msg.deliver_time);
    }
    route.forwarded_bytes += msg.payload.size();
    route.upstream->bus().publish(msg);
    ++route.forwarded;
    if (obs::enabled()) {
      transport_obs().forwarded.add();
      transport_obs().forwarded_bytes.add(msg.payload.size());
    }
    return;
  }
  route.queued_bytes += msg.payload.size();
  route.queue.push_back(std::move(msg));
  route.max_depth = std::max(route.max_depth, route.queue.size());
  route.max_depth_bytes = std::max(route.max_depth_bytes, route.queued_bytes);
  if (obs::enabled()) {
    transport_obs().max_queue_depth.set_max(
        static_cast<std::int64_t>(route.max_depth));
    transport_obs().max_queue_bytes.set_max(
        static_cast<std::int64_t>(route.max_depth_bytes));
  }
  if (!route.pump_active) {
    route.pump_active = true;
    engine_->spawn(pump(route));
  }
}

void LdmsDaemon::sync_spool_evicted(Route& route) {
  if (!route.spool || !obs::enabled()) return;
  const std::uint64_t evicted = route.spool->evicted();
  if (evicted > route.mirrored_evicted) {
    transport_obs().spool_evicted.add(evicted - route.mirrored_evicted);
    route.mirrored_evicted = evicted;
  }
}

void LdmsDaemon::spool_message(Route& route, const StreamMessage& msg) {
  ++route.spooled;
  route.spool->append(msg);
  if (obs::enabled()) {
    transport_obs().spooled.add();
    transport_obs().spool_depth.set_max(
        static_cast<std::int64_t>(route.spool->size()));
  }
  sync_spool_evicted(route);
  if (!route.prober_active) {
    route.prober_active = true;
    engine_->spawn(reconnect_prober(route));
  }
}

void LdmsDaemon::enqueue(Route& route, const StreamMessage& msg) {
  const bool alo = at_least_once(route);

  // Injected queue-overflow burst: reject as if the route buffer were
  // momentarily full.
  bool forced_overflow = false;
  if (engine_ && !overflow_injections_.empty()) {
    for (OverflowInjection& inj : overflow_injections_) {
      if (inj.remaining > 0 && engine_->now() >= inj.at) {
        --inj.remaining;
        forced_overflow = true;
        break;
      }
    }
  }

  if (route_down(route)) {
    if (alo) {
      route.breaker.record_failure(engine_->now());
      spool_message(route, msg);  // retained: redelivered after reconnect
    } else if (in_outage()) {
      ++outage_dropped_;  // transport down: the message is simply gone
      if (obs::enabled()) transport_obs().outage_dropped.add();
    } else {
      ++route.outage_dropped;  // partition on this route only
      if (obs::enabled()) transport_obs().outage_dropped.add();
    }
    return;
  }
  if (alo && !route.breaker.allow(engine_->now())) {
    spool_message(route, msg);  // breaker open: don't hammer a dead peer
    return;
  }
  if (forced_overflow || !queue_has_room(route, msg.payload.size())) {
    if (alo) {
      spool_message(route, msg);  // absorbed: retried once the queue drains
    } else {
      ++route.dropped;  // best effort: no resend, no back-pressure
      if (obs::enabled()) transport_obs().dropped.add();
    }
    return;
  }
  push_to_queue(route, msg);
}

sim::Task<void> LdmsDaemon::pump(Route& route) {
  // Drains the route queue, modelling per-message hop cost; exits when the
  // queue is empty (re-spawned on the next enqueue).
  while (!route.queue.empty()) {
    StreamMessage msg = std::move(route.queue.front());
    route.queue.pop_front();
    route.queued_bytes -= msg.payload.size();
    SimDuration cost = route.config.hop_latency;
    if (route.config.bandwidth_bytes_per_sec > 0) {
      cost += static_cast<SimDuration>(
          static_cast<double>(msg.payload.size()) /
          route.config.bandwidth_bytes_per_sec *
          static_cast<double>(kSecond));
    }
    co_await engine_->delay(cost);
    msg.deliver_time = engine_->now();
    ++msg.hops;
    if (msg.trace.sampled()) {
      // First transport hop is node -> L1 (daemon_forwarded); the second
      // is L1 -> L2 (aggregated).  A redelivered copy re-stamps with the
      // later time, which is the arrival the decoder actually sees.
      msg.trace.stamp(msg.hops == 1 ? obs::Hop::kDaemonForwarded
                                    : obs::Hop::kAggregated,
                      msg.deliver_time);
    }
    route.forwarded_bytes += msg.payload.size();
    route.upstream->bus().publish(msg);
    ++route.forwarded;
    if (obs::enabled()) {
      transport_obs().forwarded.add();
      transport_obs().forwarded_bytes.add(msg.payload.size());
    }
    if (at_least_once(route) && route_down(route)) {
      // Delivered into an outage/partition window: the ack never makes it
      // back, so the message stays unacked and will be redelivered after
      // reconnect — the duplicate the decode-side SequenceTracker dedups.
      spool_message(route, msg);
    }
  }
  route.pump_active = false;
}

sim::Task<void> LdmsDaemon::reconnect_prober(Route& route) {
  // Probes the route on the backoff schedule and drains the spool back
  // into the queue once the route heals; exits when the spool is empty or
  // after max_attempts consecutive no-progress probes (give-up).
  int attempt = 0;
  const relia::BackoffConfig& backoff = route.config.backoff;
  while (true) {
    co_await engine_->delay(relia::backoff_delay(backoff, attempt, rng_));
    ++attempt;
    const SimTime now = engine_->now();
    if (route_down(route)) {
      ++route.failed_probes;
      route.breaker.record_failure(now);
    } else if (route.breaker.allow(now)) {
      bool progressed = false;
      while (!route.spool->empty()) {
        // Peek-free two-step: pop, then re-append if the queue is full
        // (spool order is preserved because nothing else appends while
        // the route is healthy and the queue is full).
        auto msg = route.spool->pop_front();
        if (!msg) break;
        if (!queue_has_room(route, msg->payload.size())) {
          route.spool->append(std::move(*msg));
          break;
        }
        ++route.redelivered;
        if (obs::enabled()) transport_obs().redelivered.add();
        push_to_queue(route, std::move(*msg));
        progressed = true;
      }
      if (progressed) {
        route.breaker.record_success();
        attempt = 0;  // fresh backoff for the next stall
      }
      sync_spool_evicted(route);
      if (route.spool->empty()) break;
    }
    if (backoff.max_attempts > 0 && attempt >= backoff.max_attempts) {
      // Permanently dead route: abandon the spool (counted as evicted)
      // rather than probing virtual time forever.
      route.spool->clear();
      sync_spool_evicted(route);
      break;
    }
  }
  route.prober_active = false;
}

// --- statistics -----------------------------------------------------------

std::uint64_t LdmsDaemon::outage_dropped() const {
  std::uint64_t total = outage_dropped_;
  for (const auto& r : routes_) total += r->outage_dropped;
  return total;
}

std::uint64_t LdmsDaemon::dropped() const {
  std::uint64_t total = outage_dropped_;
  for (const auto& r : routes_) {
    total += r->dropped + r->outage_dropped;
    if (r->spool) total += r->spool->evicted();
  }
  return total;
}

std::uint64_t LdmsDaemon::forwarded() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->forwarded;
  return total;
}

std::uint64_t LdmsDaemon::forwarded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->forwarded_bytes;
  return total;
}

std::size_t LdmsDaemon::max_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& r : routes_) depth = std::max(depth, r->max_depth);
  return depth;
}

std::size_t LdmsDaemon::max_queue_bytes() const {
  std::size_t bytes = 0;
  for (const auto& r : routes_) bytes = std::max(bytes, r->max_depth_bytes);
  return bytes;
}

std::uint64_t LdmsDaemon::spooled() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->spooled;
  return total;
}

std::uint64_t LdmsDaemon::redelivered() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->redelivered;
  return total;
}

std::uint64_t LdmsDaemon::spool_evicted() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) {
    if (r->spool) total += r->spool->evicted();
  }
  return total;
}

std::size_t LdmsDaemon::spool_depth() const {
  std::size_t total = 0;
  for (const auto& r : routes_) {
    if (r->spool) total += r->spool->size();
  }
  return total;
}

std::uint64_t LdmsDaemon::failed_probes() const {
  std::uint64_t total = 0;
  for (const auto& r : routes_) total += r->failed_probes;
  return total;
}

}  // namespace dlc::ldms
