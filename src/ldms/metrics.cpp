#include "ldms/metrics.hpp"

#include "json/parser.hpp"
#include "json/writer.hpp"

namespace dlc::ldms {

const std::vector<std::string>& bus_bytes_channels() {
  // Indexed by BusChannel.
  static const std::vector<std::string> kChannels = {
      "msgs_string", "msgs_json",    "msgs_binary", "bytes_string",
      "bytes_json",  "bytes_binary", "bytes_total"};
  return kChannels;
}

const std::vector<std::string>& transport_health_channels() {
  // Indexed by TransportChannel.
  static const std::vector<std::string> kChannels = {
      "forwarded",       "forwarded_bytes", "dropped",     "outage_dropped",
      "max_queue_depth", "max_queue_bytes", "spooled",     "redelivered",
      "spool_evicted",   "spool_depth"};
  return kChannels;
}

std::string bus_metric_name(BusChannel c) {
  return "dlc.bus." + bus_bytes_channels()[static_cast<std::size_t>(c)];
}

std::string transport_metric_name(TransportChannel c) {
  return "dlc.transport." +
         transport_health_channels()[static_cast<std::size_t>(c)];
}

BusBytesSampler::BusBytesSampler(const LdmsDaemon& daemon)
    : daemon_(daemon), names_(bus_bytes_channels()) {}

void BusBytesSampler::sample(SimTime /*now*/, std::vector<double>& out) {
  const StreamBus& bus = daemon_.bus();
  for (const auto f :
       {PayloadFormat::kString, PayloadFormat::kJson, PayloadFormat::kBinary}) {
    out.push_back(static_cast<double>(bus.published_count(f)));
  }
  for (const auto f :
       {PayloadFormat::kString, PayloadFormat::kJson, PayloadFormat::kBinary}) {
    out.push_back(static_cast<double>(bus.published_bytes(f)));
  }
  out.push_back(static_cast<double>(bus.published_bytes()));
}

TransportHealthSampler::TransportHealthSampler(const LdmsDaemon& daemon)
    : daemon_(daemon), names_(transport_health_channels()) {}

void TransportHealthSampler::sample(SimTime /*now*/,
                                    std::vector<double>& out) {
  out.push_back(static_cast<double>(daemon_.forwarded()));
  out.push_back(static_cast<double>(daemon_.forwarded_bytes()));
  out.push_back(static_cast<double>(daemon_.dropped()));
  out.push_back(static_cast<double>(daemon_.outage_dropped()));
  out.push_back(static_cast<double>(daemon_.max_queue_depth()));
  out.push_back(static_cast<double>(daemon_.max_queue_bytes()));
  out.push_back(static_cast<double>(daemon_.spooled()));
  out.push_back(static_cast<double>(daemon_.redelivered()));
  out.push_back(static_cast<double>(daemon_.spool_evicted()));
  out.push_back(static_cast<double>(daemon_.spool_depth()));
}

ObsSelfSampler::ObsSelfSampler(const obs::Registry& registry)
    : registry_(registry),
      // Channel names are the registry names minus the "dlc." prefix;
      // histogram statistics use the registry's ".p50"/".p99"/".max"
      // suffix convention (see DESIGN.md "Self-telemetry").
      names_({"bus.published", "bus.delivered", "transport.forwarded",
              "transport.redelivered", "relia.duplicates", "relia.reordered",
              "relia.seq_lost", "ingest.backpressure_waits",
              "ingest.backpressure_wait_ns.p99", "ingest.commit_ns.p99",
              "ingest.queue_depth", "query.fanout_ns.p99", "trace.completed",
              "trace.e2e_ns.p50", "trace.e2e_ns.p99", "trace.e2e_ns.max"}) {}

void ObsSelfSampler::sample(SimTime /*now*/, std::vector<double>& out) {
  for (const std::string& channel : names_) {
    out.push_back(registry_.value("dlc." + channel).value_or(0.0));
  }
}

MetricSampler::MetricSampler(sim::Engine& engine, LdmsDaemon& daemon,
                             std::unique_ptr<SamplerPlugin> plugin,
                             SimDuration interval, std::string tag)
    : engine_(engine),
      daemon_(daemon),
      plugin_(std::move(plugin)),
      interval_(interval <= 0 ? kSecond : interval),
      tag_(std::move(tag)) {}

void MetricSampler::start(SimTime until) { engine_.spawn(run(until)); }

sim::Task<void> MetricSampler::run(SimTime until) {
  while (engine_.now() + interval_ <= until) {
    if (stop_ && stop_()) break;
    co_await engine_.delay(interval_);
    if (stop_ && stop_()) break;
    scratch_.clear();
    plugin_->sample(engine_.now(), scratch_);
    MetricSample sample;
    sample.set_name = plugin_->set_name();
    sample.producer = daemon_.name();
    sample.timestamp = engine_.now();
    sample.values = scratch_;
    daemon_.publish(tag_, PayloadFormat::kJson,
                    to_json(sample, plugin_->metric_names()));
    ++samples_;
  }
}

std::string MetricSampler::to_json(const MetricSample& sample,
                                   const std::vector<std::string>& names) {
  json::Writer w;
  w.begin_object();
  w.member("schema", sample.set_name);
  w.member("ProducerName", sample.producer);
  w.member("timestamp", to_seconds(sample.timestamp));
  w.key("metrics");
  w.begin_object();
  const std::size_t n = std::min(names.size(), sample.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    w.member(names[i], sample.values[i]);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

bool MetricSampler::from_json(const std::string& payload, MetricSample& out) {
  const auto doc = json::parse(payload);
  if (!doc || !doc->is_object()) return false;
  const json::Value* metrics = doc->find("metrics");
  if (!metrics || !metrics->is_object()) return false;
  out.set_name = doc->get_string("schema");
  out.producer = doc->get_string("ProducerName");
  out.timestamp = from_seconds(doc->get_double("timestamp"));
  out.values.clear();
  out.names.clear();
  for (const auto& [name, value] : metrics->as_object()) {
    if (!value.is_number()) return false;
    out.names.push_back(name);
    out.values.push_back(value.as_double());
  }
  return true;
}

}  // namespace dlc::ldms
