#include "ldms/config.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace dlc::ldms {

namespace {

bool to_u64(const std::string& s, std::uint64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && p == s.data() + s.size();
}

}  // namespace

bool parse_config_line(const std::string& line, std::string& command,
                       std::map<std::string, std::string>& args) {
  command.clear();
  args.clear();
  for (const std::string& raw : split(std::string(trim(line)), ' ')) {
    const std::string token(trim(raw));
    if (token.empty()) continue;
    if (command.empty()) {
      if (token.find('=') != std::string::npos) return false;
      command = token;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    args[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return !command.empty();
}

std::optional<Topology> parse_topology(const std::string& text,
                                       sim::Engine* engine,
                                       ConfigError* error) {
  Topology topo;
  auto fail = [&](std::size_t line_no,
                  std::string msg) -> std::optional<Topology> {
    if (error) *error = ConfigError{line_no, std::move(msg)};
    return std::nullopt;
  };

  const auto lines = split(text, '\n');
  // Continuation handling: a trailing backslash joins the next line.
  std::vector<std::pair<std::size_t, std::string>> logical;
  std::string pending;
  std::size_t pending_line = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string piece(trim(lines[i]));
    const bool continued = ends_with(piece, "\\");
    if (continued) piece.pop_back();
    if (pending.empty()) pending_line = i + 1;
    pending += piece;
    pending.push_back(' ');
    if (!continued) {
      logical.emplace_back(pending_line, pending);
      pending.clear();
    }
  }
  if (!pending.empty()) logical.emplace_back(pending_line, pending);

  for (const auto& [line_no, raw] : logical) {
    const std::string_view stripped = trim(raw);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::string command;
    std::map<std::string, std::string> args;
    if (!parse_config_line(std::string(stripped), command, args)) {
      return fail(line_no, "malformed line");
    }

    if (command == "daemon") {
      if (!args.contains("name")) return fail(line_no, "daemon needs name=");
      const std::string& name = args["name"];
      if (topo.daemons.contains(name)) {
        return fail(line_no, "duplicate daemon " + name);
      }
      topo.daemons.emplace(name,
                           std::make_unique<LdmsDaemon>(engine, name));
    } else if (command == "route") {
      if (!args.contains("from") || !args.contains("to") ||
          !args.contains("tag")) {
        return fail(line_no, "route needs from=, to=, tag=");
      }
      LdmsDaemon* from = topo.daemon(args["from"]);
      LdmsDaemon* to = topo.daemon(args["to"]);
      if (!from || !to) return fail(line_no, "route references unknown daemon");
      ForwardConfig cfg;
      if (args.contains("queue")) {
        std::uint64_t q;
        if (!to_u64(args["queue"], q) || q == 0) {
          return fail(line_no, "bad queue=");
        }
        cfg.queue_capacity = q;
      }
      if (args.contains("latency_us")) {
        std::uint64_t us;
        if (!to_u64(args["latency_us"], us)) {
          return fail(line_no, "bad latency_us=");
        }
        cfg.hop_latency = static_cast<SimDuration>(us) * kMicrosecond;
      }
      if (args.contains("bw_mbps")) {
        std::uint64_t mbps;
        if (!to_u64(args["bw_mbps"], mbps)) {
          return fail(line_no, "bad bw_mbps=");
        }
        cfg.bandwidth_bytes_per_sec =
            static_cast<double>(mbps) * 1024.0 * 1024.0;
      }
      from->add_forward(args["tag"], *to, cfg);
    } else if (command == "store") {
      if (!args.contains("daemon") || !args.contains("tag") ||
          !args.contains("type")) {
        return fail(line_no, "store needs daemon=, tag=, type=");
      }
      LdmsDaemon* daemon = topo.daemon(args["daemon"]);
      if (!daemon) return fail(line_no, "store references unknown daemon");
      const std::string& type = args["type"];
      std::unique_ptr<StorePlugin> store;
      if (type == "counting") {
        store = std::make_unique<CountingStore>();
      } else if (type == "csv") {
        store = args.contains("path")
                    ? std::make_unique<CsvStore>(args["path"])
                    : std::make_unique<CsvStore>();
      } else {
        return fail(line_no, "unknown store type " + type);
      }
      store->attach(*daemon, args["tag"]);
      topo.stores.push_back(std::move(store));
    } else {
      return fail(line_no, "unknown command " + command);
    }
  }
  return topo;
}

}  // namespace dlc::ldms
