#include "ldms/fault_inject.hpp"

namespace dlc::ldms {

std::vector<relia::FaultEvent> apply_fault_plan(const relia::FaultPlan& plan,
                                                const DaemonResolver& resolve) {
  std::vector<relia::FaultEvent> unresolved;
  for (const relia::FaultEvent& e : plan.events) {
    // Storage-layer faults name crash points, not daemons (consumed by
    // store::FaultInjector::arm_from_plan), and ioslow names simulated
    // FS nodes (consumed by exp::run_experiment) — neither is ours.
    if (e.kind == relia::FaultKind::kStoreCrash ||
        e.kind == relia::FaultKind::kIoSlow) {
      continue;
    }
    LdmsDaemon* daemon = resolve(e.daemon);
    if (!daemon) {
      unresolved.push_back(e);
      continue;
    }
    switch (e.kind) {
      case relia::FaultKind::kCrash:
        daemon->add_outage(e.at, e.at + e.duration);
        break;
      case relia::FaultKind::kPartition:
        daemon->add_route_outage(e.upstream, e.at, e.at + e.duration);
        break;
      case relia::FaultKind::kOverflow:
        daemon->inject_overflow(e.at, e.count);
        break;
      case relia::FaultKind::kRestart:
        daemon->restart_at(e.at);
        break;
      case relia::FaultKind::kStoreCrash:
      case relia::FaultKind::kIoSlow:
        break;  // unreachable: filtered above
    }
  }
  return unresolved;
}

}  // namespace dlc::ldms
