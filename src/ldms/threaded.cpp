#include "ldms/threaded.hpp"

namespace dlc::ldms {

ThreadedForwarder::ThreadedForwarder(StreamBus& from, StreamBus& to,
                                     const std::string& tag,
                                     std::size_t queue_capacity,
                                     std::size_t queue_capacity_bytes)
    : to_(to), queue_(queue_capacity, queue_capacity_bytes), from_(from) {
  sub_id_ = from.subscribe(tag, [this](const StreamMessage& msg) {
    if (!queue_.try_push(msg, msg.payload.size())) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  worker_ = util::Thread("dlc-forward", [this] { run(); });
}

ThreadedForwarder::~ThreadedForwarder() { stop(); }

void ThreadedForwarder::stop() {
  if (worker_.joinable()) {
    from_.unsubscribe(sub_id_);
    queue_.close();
    worker_.join();
  }
}

void ThreadedForwarder::run() {
  while (auto msg = queue_.pop()) {
    ++msg->hops;
    const std::size_t bytes = msg->payload.size();
    to_.publish(*msg);
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    forwarded_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
}

}  // namespace dlc::ldms
