// LDMS Streams message: a tagged, variable-length event payload.
//
// Per the paper: "Event data can be specified as either string or JSON
// format", publishers and subscribers rendezvous on a stream *tag*, and
// delivery is best effort — no cache, no resend, subscribers only see data
// published after they subscribed.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "util/time.hpp"

namespace dlc::ldms {

enum class PayloadFormat : std::uint8_t { kString = 0, kJson = 1, kBinary = 2 };
inline constexpr std::size_t kPayloadFormatCount = 3;

struct StreamMessage {
  std::string tag;
  PayloadFormat format = PayloadFormat::kJson;
  std::string payload;
  /// Name of the daemon that first published the message.
  std::string producer;
  /// Per-(producer, tag) monotonic sequence number stamped by
  /// LdmsDaemon::publish, starting at 1 (0 = unsequenced raw bus
  /// traffic).  Redelivered copies keep the original seq, which is what
  /// lets relia::SequenceTracker dedup at-least-once redeliveries and
  /// account loss/reorder per producer.
  std::uint64_t seq = 0;
  /// Virtual time of the original publish call.
  SimTime publish_time = 0;
  /// Virtual time of delivery at the current hop (updated in transit).
  SimTime deliver_time = 0;
  /// Number of transport hops traversed so far.
  int hops = 0;
  /// Envelope half of the pipeline trace for sampled events (id == 0 for
  /// the unsampled 63/64).  Daemons stamp the transport hops here; the
  /// payload carries the source-side hops (see obs/trace.hpp).
  obs::TraceContext trace;
};

}  // namespace dlc::ldms
