// ldmsd_controller-style topology configuration.
//
// Real LDMS deployments are described by daemon configuration scripts
// (prdcr_add / updtr_add / strgp_add lines of key=value pairs).  This is
// the reproduction's equivalent dialect — line-oriented, key=value, with
// `#` comments — so experiments and examples can declare their transport
// topology as data instead of code:
//
//   daemon name=nid00040
//   daemon name=head
//   daemon name=shirley
//   route from=nid00040 to=head tag=darshanConnector queue=65536 <backslash>
//         latency_us=100 bw_mbps=1024    (trailing backslash continues)
//   route from=head to=shirley tag=darshanConnector
//   store daemon=shirley tag=darshanConnector type=csv path=/tmp/events.csv
//   store daemon=shirley tag=darshanConnector type=counting
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ldms/daemon.hpp"
#include "ldms/store.hpp"
#include "sim/engine.hpp"

namespace dlc::ldms {

/// A parsed-and-instantiated topology: owning the daemons and stores.
struct Topology {
  std::map<std::string, std::unique_ptr<LdmsDaemon>> daemons;
  std::vector<std::unique_ptr<StorePlugin>> stores;

  LdmsDaemon* daemon(const std::string& name) {
    const auto it = daemons.find(name);
    return it == daemons.end() ? nullptr : it->second.get();
  }
};

struct ConfigError {
  std::size_t line = 0;
  std::string message;
};

/// Parses and instantiates a topology script.  Returns nullopt and fills
/// `error` on the first malformed line; `engine` may be null for
/// real-thread (inline-forwarding) use.
std::optional<Topology> parse_topology(const std::string& text,
                                       sim::Engine* engine,
                                       ConfigError* error = nullptr);

/// Splits one config line into (command, key=value map).  Exposed for
/// tests; returns false on syntax errors (missing '=', empty command).
bool parse_config_line(const std::string& line, std::string& command,
                       std::map<std::string, std::string>& args);

}  // namespace dlc::ldms
