// LDMS Streams publish/subscribe bus (one per daemon).
//
// Subscribers register on a tag; publish() synchronously delivers to every
// matching subscriber.  Messages with no matching subscriber are dropped
// and counted — LDMS Streams "does not cache its data so the published
// data can only be received after subscription".
//
// The bus is thread-safe (mutex-protected subscriber table) so the same
// type serves both the single-threaded virtual-time pipeline and the
// real-thread transport benchmarks.  Per CP.22, subscriber callbacks are
// invoked *outside* the lock.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ldms/message.hpp"
#include "util/thread_annotations.hpp"

namespace dlc::ldms {

using SubscriberFn = std::function<void(const StreamMessage&)>;
using SubscriptionId = std::uint64_t;

class StreamBus {
 public:
  /// Registers `fn` for messages whose tag equals `tag`.
  SubscriptionId subscribe(std::string tag, SubscriberFn fn);

  /// Removes a subscription; no-op for unknown ids.
  void unsubscribe(SubscriptionId id);

  /// Delivers `msg` to all current subscribers of its tag.  Returns the
  /// number of subscribers reached (0 => the message is gone for good).
  std::size_t publish(const StreamMessage& msg);

  // --- statistics -------------------------------------------------------
  std::uint64_t published() const;
  std::uint64_t delivered() const;
  /// Messages that found no subscriber.
  std::uint64_t missed() const;
  std::size_t subscriber_count() const;
  /// On-wire payload bytes published in `format` messages (per-format
  /// accounting: string vs JSON vs binary traffic through this bus).
  std::uint64_t published_bytes(PayloadFormat format) const;
  /// Payload bytes across all formats.
  std::uint64_t published_bytes() const;
  /// Message count published in `format` messages.
  std::uint64_t published_count(PayloadFormat format) const;

 private:
  struct Subscription {
    SubscriptionId id;
    std::string tag;
    SubscriberFn fn;
  };

  // StreamBus is a lock-hierarchy leaf BY CONSTRUCTION: publish()
  // snapshots the matching callbacks under mutex_ and invokes them
  // outside it (CP.22), so no subscriber code — decoder, forwarder,
  // ingest — ever runs while the bus lock is held.
  mutable util::Mutex mutex_{"StreamBus"};
  std::vector<Subscription> subs_ DLC_GUARDED_BY(mutex_);
  SubscriptionId next_id_ DLC_GUARDED_BY(mutex_) = 1;
  std::uint64_t published_ DLC_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ DLC_GUARDED_BY(mutex_) = 0;
  std::uint64_t missed_ DLC_GUARDED_BY(mutex_) = 0;
  std::array<std::uint64_t, kPayloadFormatCount> format_bytes_
      DLC_GUARDED_BY(mutex_){};
  std::array<std::uint64_t, kPayloadFormatCount> format_counts_
      DLC_GUARDED_BY(mutex_){};
};

}  // namespace dlc::ldms
