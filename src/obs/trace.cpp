#include "obs/trace.hpp"

#include <charconv>

namespace dlc::obs {

// Indexed by Hop; doubles as the per-hop metric suffix
// (dlc.trace.hop.<name>_ns) and the spans-dump hop label.
const std::array<std::string_view, kHopCount> kHopNames = {
    "intercepted",      // Hop::kIntercepted
    "published",        // Hop::kPublished
    "bus_enqueued",     // Hop::kBusEnqueued
    "daemon_forwarded",  // Hop::kDaemonForwarded
    "aggregated",       // Hop::kAggregated
    "decoded",          // Hop::kDecoded
    "ingest_enqueued",  // Hop::kIngestEnqueued
    "committed",        // Hop::kCommitted
};

// Canonical payload-side field list (the source-side hops; transport and
// ingest hops ride the message envelope / are stamped downstream).
const std::array<std::string_view, kTraceFieldCount> kTraceFields = {
    "id",           // trace id, nonzero when sampled
    "intercepted",  // absolute virtual ns of Darshan interception
    "published",    // absolute virtual ns of the connector publish
};

bool TraceContext::complete() const {
  for (const std::int64_t t : hops) {
    if (t == kHopUnset) return false;
  }
  return true;
}

bool TraceContext::monotonic() const {
  std::int64_t prev = kHopUnset;
  for (const std::int64_t t : hops) {
    if (t == kHopUnset) continue;
    if (prev != kHopUnset && t < prev) return false;
    prev = t;
  }
  return true;
}

std::int64_t TraceContext::e2e_ns() const {
  if (!has(Hop::kIntercepted) || !has(Hop::kCommitted)) return 0;
  return hop(Hop::kCommitted) - hop(Hop::kIntercepted);
}

void append_trace_member(std::string* payload_json, const TraceContext& t) {
  if (payload_json == nullptr) return;
  const std::size_t close = payload_json->rfind('}');
  if (close == std::string::npos) return;
  std::string member;
  member.reserve(80);
  if (close > 0 && (*payload_json)[close - 1] != '{') member += ',';
  member += "\"trace\":{\"id\":";
  member += std::to_string(t.id);
  member += ",\"intercepted\":";
  member += std::to_string(t.hop(Hop::kIntercepted));
  member += ",\"published\":";
  member += std::to_string(t.hop(Hop::kPublished));
  member += '}';
  payload_json->insert(close, member);
}

namespace {

// Parses the integer immediately following `key` (searched at or after
// `from`).  Compact writer output: no whitespace between ':' and digits.
template <typename Int>
bool int_after(std::string_view text, std::string_view key, std::size_t from,
               Int* out) {
  const std::size_t at = text.find(key, from);
  if (at == std::string_view::npos) return false;
  const char* first = text.data() + at + key.size();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr != first;
}

}  // namespace

bool parse_trace_member(std::string_view payload_json, TraceContext* out) {
  if (out == nullptr) return false;
  const std::size_t at = payload_json.rfind("\"trace\":{");
  if (at == std::string_view::npos) return false;
  std::uint64_t id = 0;
  std::int64_t intercepted = 0;
  std::int64_t published = 0;
  if (!int_after(payload_json, "\"id\":", at, &id) ||
      !int_after(payload_json, "\"intercepted\":", at, &intercepted) ||
      !int_after(payload_json, "\"published\":", at, &published)) {
    return false;
  }
  if (id == 0) return false;
  out->id = id;
  out->stamp(Hop::kIntercepted, intercepted);
  out->stamp(Hop::kPublished, published);
  return true;
}

}  // namespace dlc::obs
