// Process-wide metrics registry: counters, gauges and log-bucketed
// histograms under stable dotted names (naming scheme in DESIGN.md
// "Self-telemetry").
//
// Design goals, in order:
//   * hot-path updates are lock-free — a Counter::add is one relaxed
//     fetch_add, a LogHistogram::record is three relaxed RMWs on a
//     thread-striped shard (no false sharing between worker threads);
//   * instrument handles are stable for the life of the process — the
//     registry hands out references into node-based maps and never
//     erases, so call sites cache `static Counter& c = ...` once and pay
//     zero lookups afterwards;
//   * scrape is rare and pays all the cost — /metrics and the
//     ObsSelfSampler merge histogram shards on read (merge-on-scrape).
//
// The whole subsystem is gated by the process-wide obs::enabled() flag
// (default on).  Mirror sites check it so bench_obs can A/B the
// instrumentation cost in one process.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace dlc::obs {

/// Process-wide instrumentation switch.  When off, mirror sites skip
/// their registry updates; existing instruments keep their values.
bool enabled();
void set_enabled(bool on);

/// Monotonic counter.  Relaxed atomics: per-metric totals need no
/// ordering with respect to anything else.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  // atomic-protocol: kind=counter pairs=Registry::scrape
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / high-watermark gauge (integer-valued: depths, counts).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-watermark tracking).
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  // atomic-protocol: kind=gauge pairs=Registry::scrape
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-size log-bucketed histogram for non-negative integer samples
/// (latencies in ns, sizes in bytes).  Geometry is util/stats.hpp's
/// shared log-bucket layout: 4 sub-buckets per power-of-two octave, so
/// quantile estimates are within 25% relative error (one bucket width).
///
/// Writers stripe across kShards cache-line-aligned shards by a
/// thread-local index; readers merge all shards into a Snapshot.
class LogHistogram {
 public:
  static constexpr std::size_t kShards = 8;

  void record(std::uint64_t v);

  /// Point-in-time merged view.  Quantiles interpolate within the
  /// containing bucket (within one bucket width of exact); max is exact.
  struct Snapshot {
    std::array<std::uint64_t, kLogBucketCount> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    double percentile(double p) const {
      return log_bucket_percentile(buckets.data(), buckets.size(), p);
    }
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };

  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    // atomic-protocol: kind=counter pairs=LogHistogram::snapshot
    std::array<std::atomic<std::uint64_t>, kLogBucketCount> buckets{};
    // atomic-protocol: kind=counter pairs=LogHistogram::snapshot
    std::atomic<std::uint64_t> count{0};
    // atomic-protocol: kind=counter pairs=LogHistogram::snapshot
    std::atomic<std::uint64_t> sum{0};
    // atomic-protocol: kind=gauge pairs=LogHistogram::snapshot-cas-max
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Name -> instrument maps.  get-or-create takes the registry mutex (a
/// leaf: nothing is locked under it); cached references make that a
/// one-time cost per call site.  Entries are never erased — reset()
/// zeroes values in place so cached references stay valid.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const LogHistogram* find_histogram(std::string_view name) const;

  /// Scalar lookup for samplers: resolves a counter or gauge by exact
  /// name, or a histogram statistic via a ".p50" / ".p95" / ".p99" /
  /// ".max" / ".count" / ".mean" suffix on the histogram's name.
  std::optional<double> value(std::string_view name) const;

  /// Every instrument flattened to (name, value) rows, sorted by name;
  /// histograms expand to .count/.mean/.p50/.p95/.p99/.max rows.
  std::vector<std::pair<std::string, double>> flatten() const;

  /// Prometheus text exposition format ('.' mangled to '_'; histograms
  /// rendered as summaries with quantile labels plus _sum/_count/_max).
  std::string prometheus_text() const;

  /// Zeroes every instrument in place (bench/test isolation).  Never
  /// removes entries: cached references remain valid.
  void reset_values();

  /// The process-wide registry all built-in mirrors write to.
  static Registry& global();

 private:
  mutable util::Mutex m_{"ObsRegistry"};
  // node-based maps: references returned by get-or-create stay valid
  // across rehash-free inserts for the life of the registry.
  std::map<std::string, Counter, std::less<>> counters_ DLC_GUARDED_BY(m_);
  std::map<std::string, Gauge, std::less<>> gauges_ DLC_GUARDED_BY(m_);
  std::map<std::string, LogHistogram, std::less<>> histograms_
      DLC_GUARDED_BY(m_);
};

}  // namespace dlc::obs
