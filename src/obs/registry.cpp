#include "obs/registry.hpp"

#include <algorithm>

namespace dlc::obs {

namespace {

// atomic-protocol: kind=flag pairs=obs::set_enabled/enabled
std::atomic<bool> g_enabled{true};

/// Round-robin thread -> shard assignment; stable per thread so a worker
/// keeps hitting the same cache lines.
std::size_t thread_shard() {
  // atomic-protocol: kind=counter pairs=thread_shard-assignment
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine % LogHistogram::kShards;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void LogHistogram::record(std::uint64_t v) {
  Shard& s = shards_[thread_shard()];
  s.buckets[log_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kLogBucketCount; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  return out;
}

void LogHistogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

Counter& Registry::counter(std::string_view name) {
  util::LockGuard lock(m_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::LockGuard lock(m_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

LogHistogram& Registry::histogram(std::string_view name) {
  util::LockGuard lock(m_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  util::LockGuard lock(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  util::LockGuard lock(m_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LogHistogram* Registry::find_histogram(std::string_view name) const {
  util::LockGuard lock(m_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::optional<double> Registry::value(std::string_view name) const {
  if (const Counter* c = find_counter(name)) {
    return static_cast<double>(c->value());
  }
  if (const Gauge* g = find_gauge(name)) {
    return static_cast<double>(g->value());
  }
  static constexpr std::string_view kSuffixes[] = {".p50",  ".p95", ".p99",
                                                   ".max",  ".count", ".mean"};
  for (const std::string_view suffix : kSuffixes) {
    if (name.size() <= suffix.size() || !name.ends_with(suffix)) continue;
    const std::string_view base = name.substr(0, name.size() - suffix.size());
    const LogHistogram* h = find_histogram(base);
    if (h == nullptr) continue;
    const LogHistogram::Snapshot snap = h->snapshot();
    if (suffix == ".p50") return snap.percentile(50.0);
    if (suffix == ".p95") return snap.percentile(95.0);
    if (suffix == ".p99") return snap.percentile(99.0);
    if (suffix == ".max") return static_cast<double>(snap.max);
    if (suffix == ".count") return static_cast<double>(snap.count);
    return snap.mean();
  }
  return std::nullopt;
}

std::vector<std::pair<std::string, double>> Registry::flatten() const {
  std::vector<std::pair<std::string, double>> out;
  {
    util::LockGuard lock(m_);
    out.reserve(counters_.size() + gauges_.size() + 6 * histograms_.size());
    for (const auto& [name, c] : counters_) {
      out.emplace_back(name, static_cast<double>(c.value()));
    }
    for (const auto& [name, g] : gauges_) {
      out.emplace_back(name, static_cast<double>(g.value()));
    }
    for (const auto& [name, h] : histograms_) {
      const LogHistogram::Snapshot snap = h.snapshot();
      out.emplace_back(name + ".count", static_cast<double>(snap.count));
      out.emplace_back(name + ".mean", snap.mean());
      out.emplace_back(name + ".p50", snap.percentile(50.0));
      out.emplace_back(name + ".p95", snap.percentile(95.0));
      out.emplace_back(name + ".p99", snap.percentile(99.0));
      out.emplace_back(name + ".max", static_cast<double>(snap.max));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Prometheus metric names: dots become underscores; anything outside
/// [a-zA-Z0-9_:] becomes '_'.
std::string mangle(std::string_view dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (const char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_number(std::string* out, double v) {
  // Integral values (the common case: counts, ns) print without a
  // fractional part so the exposition stays compact and exact.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    *out += std::to_string(static_cast<std::int64_t>(v));
  } else {
    *out += std::to_string(v);
  }
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::string out;
  util::LockGuard lock(m_);
  for (const auto& [name, c] : counters_) {
    const std::string n = mangle(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = mangle(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const LogHistogram::Snapshot snap = h.snapshot();
    const std::string n = mangle(name);
    out += "# TYPE " + n + " summary\n";
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"0.5", 50.0},
          std::pair<const char*, double>{"0.95", 95.0},
          std::pair<const char*, double>{"0.99", 99.0}}) {
      out += n + "{quantile=\"" + label + "\"} ";
      append_number(&out, snap.percentile(p));
      out += "\n";
    }
    out += n + "_sum " + std::to_string(snap.sum) + "\n";
    out += n + "_count " + std::to_string(snap.count) + "\n";
    out += n + "_max " + std::to_string(snap.max) + "\n";
  }
  return out;
}

void Registry::reset_values() {
  util::LockGuard lock(m_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace dlc::obs
