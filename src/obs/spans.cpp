#include "obs/spans.hpp"

#include <algorithm>

#include "json/writer.hpp"

namespace dlc::obs {

TraceCollector::TraceCollector(Registry& registry, std::size_t worst_n)
    : completed_metric_(registry.counter("dlc.trace.completed")),
      incomplete_metric_(registry.counter("dlc.trace.incomplete")),
      e2e_(registry.histogram("dlc.trace.e2e_ns")),
      durable_ns_(registry.histogram("dlc.trace.committed_durable_ns")),
      worst_n_(worst_n == 0 ? 1 : worst_n) {
  hop_ns_.reserve(kHopCount);
  hop_ns_.push_back(nullptr);  // kIntercepted has no predecessor
  for (std::size_t h = 1; h < kHopCount; ++h) {
    hop_ns_.push_back(&registry.histogram(
        "dlc.trace.hop." + std::string(kHopNames[h]) + "_ns"));
  }
}

void TraceCollector::complete(const TraceContext& t) {
  if (!t.complete() || !t.monotonic()) {
    incomplete_metric_.add();
    incomplete_count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  completed_metric_.add();
  completed_count_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t e2e = t.e2e_ns();
  e2e_.record(static_cast<std::uint64_t>(e2e));
  for (std::size_t h = 1; h < kHopCount; ++h) {
    const std::int64_t delta = t.hops[h] - t.hops[h - 1];
    hop_ns_[h]->record(static_cast<std::uint64_t>(delta));
  }
  if (t.committed_durable != kHopUnset) {
    const std::int64_t d = t.committed_durable - t.hop(Hop::kCommitted);
    if (d >= 0) durable_ns_.record(static_cast<std::uint64_t>(d));
  }

  util::LockGuard lock(m_);
  if (ring_.size() >= worst_n_ && e2e <= ring_.back().e2e_ns()) return;
  const auto at = std::upper_bound(
      ring_.begin(), ring_.end(), e2e,
      [](std::int64_t v, const TraceContext& c) { return v > c.e2e_ns(); });
  ring_.insert(at, t);
  if (ring_.size() > worst_n_) ring_.pop_back();
}

std::vector<TraceContext> TraceCollector::worst() const {
  util::LockGuard lock(m_);
  return ring_;
}

std::string TraceCollector::spans_json() const {
  const std::vector<TraceContext> spans = worst();
  json::Writer w;
  w.begin_object();
  w.key("spans");
  w.begin_array();
  for (const TraceContext& t : spans) {
    w.begin_object();
    w.member("id", t.id);
    w.member("e2e_ns", t.e2e_ns());
    // -1 = no durable store attached when this trace completed.
    w.member("committed_durable_ns",
             t.committed_durable == kHopUnset
                 ? std::int64_t{-1}
                 : t.committed_durable - t.hop(Hop::kCommitted));
    w.key("hops");
    w.begin_array();
    for (std::size_t h = 0; h < kHopCount; ++h) {
      w.begin_object();
      w.member("hop", kHopNames[h]);
      w.member("t_ns", t.hops[h]);
      w.member("delta_ns", h == 0 ? std::int64_t{0} : t.hops[h] - t.hops[h - 1]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::string(w.str());
}

}  // namespace dlc::obs
