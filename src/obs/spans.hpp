// Trace completion sink: turns finished TraceContexts into registry
// metrics and keeps a worst-N exemplar ring.
//
// The decoder (serial ingest) or the ingest executor's workers
// (parallel ingest) call complete() once per sampled row.  Every
// completion feeds:
//   * dlc.trace.completed / dlc.trace.incomplete counters,
//   * the dlc.trace.e2e_ns histogram,
//   * one dlc.trace.hop.<name>_ns histogram per hop transition
//     (delta from the previous hop),
//   * the slow-span exemplar ring — the worst-N traces by end-to-end
//     latency, dumped on demand via spans_json() and rendered by the
//     self-monitoring dashboard (websvc) and the obs_dump example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace dlc::obs {

class TraceCollector {
 public:
  explicit TraceCollector(Registry& registry = Registry::global(),
                          std::size_t worst_n = 16);

  /// Records a finished trace.  Thread-safe; callable from ingest
  /// workers and the sim thread concurrently.
  void complete(const TraceContext& t);

  std::uint64_t completed() const {
    return completed_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t incomplete() const {
    return incomplete_count_.load(std::memory_order_relaxed);
  }

  /// The exemplar ring, worst end-to-end latency first.
  std::vector<TraceContext> worst() const;

  /// JSON dump of the exemplar ring with per-hop breakdown:
  /// {"spans":[{"id":..,"e2e_ns":..,"hops":[{"hop":..,"t_ns":..,
  /// "delta_ns":..},..]},..]}.
  std::string spans_json() const;

 private:
  Counter& completed_metric_;
  Counter& incomplete_metric_;
  LogHistogram& e2e_;
  /// commit -> durable-ack latency; only fed when a store stamped
  /// committed_durable (memory mode records nothing).
  LogHistogram& durable_ns_;
  std::vector<LogHistogram*> hop_ns_;  // per transition, index = to-hop

  // atomic-protocol: kind=counter pairs=SpanRecorder::stats
  std::atomic<std::uint64_t> completed_count_{0};
  // atomic-protocol: kind=counter pairs=SpanRecorder::stats
  std::atomic<std::uint64_t> incomplete_count_{0};

  mutable util::Mutex m_{"ObsSpanRing"};
  std::size_t worst_n_;
  /// Sorted descending by e2e_ns; at most worst_n_ entries.
  std::vector<TraceContext> ring_ DLC_GUARDED_BY(m_);
};

}  // namespace dlc::obs
