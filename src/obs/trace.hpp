// End-to-end pipeline trace context.
//
// A TraceContext follows a single sampled I/O event from Darshan
// interception to the committed DSOS object, recording a virtual-time
// stamp at each of the eight pipeline hops.  It travels two ways:
//   * inside the payload — appended as a `"trace"` member to the JSON
//     envelope, or as an optional per-event block in the wire codec
//     (flag kHasTrace; absolute first hop, deltas after — MET/MOD-style
//     elision, see wire/codec.cpp);
//   * on the ldms::StreamMessage envelope — the transport hops
//     (bus_enqueued, daemon_forwarded, aggregated) are stamped by the
//     daemons, which never look inside payloads.
// The decoder merges both halves and the ingest executor finishes the
// span at commit time (see obs::TraceCollector).
//
// Sampling is 1-in-N at the connector (DARSHAN_LDMS_TRACE_SAMPLE,
// default 64; 0 disables).  An unsampled context has id == 0 and costs
// one branch on the hot path; with tracing off the encoded bytes are
// identical to a build without this subsystem.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace dlc::obs {

/// The eight pipeline stages a sampled event is stamped at, in pipeline
/// order.  Kept in sync with kHopNames (lint_schema_parity.py checks).
enum class Hop : std::uint8_t {
  kIntercepted = 0,      // Darshan wrapper sees the I/O call
  kPublished = 1,        // connector hands the payload to ldmsd
  kBusEnqueued = 2,      // node daemon stamps seq + enqueues on the bus
  kDaemonForwarded = 3,  // node daemon -> L1 aggregator delivery
  kAggregated = 4,       // L1 -> L2 aggregator delivery
  kDecoded = 5,          // decoder parsed the payload at L2
  kIngestEnqueued = 6,   // row handed to the ingest executor
  kCommitted = 7,        // object inserted into its DSOS shard
};

inline constexpr std::size_t kHopCount = 8;

/// Dotted-metric / JSON names for each hop, indexed by Hop.
extern const std::array<std::string_view, kHopCount> kHopNames;

/// Sentinel for a hop that has not been stamped yet.
inline constexpr std::int64_t kHopUnset =
    std::numeric_limits<std::int64_t>::min();

constexpr std::array<std::int64_t, kHopCount> unset_hops() {
  std::array<std::int64_t, kHopCount> a{};
  for (auto& v : a) v = kHopUnset;
  return a;
}

struct TraceContext {
  /// Nonzero for sampled events: (job_id << 32) | per-connector counter.
  std::uint64_t id = 0;
  /// Per-hop timestamps in virtual ns since the sim epoch.
  std::array<std::int64_t, kHopCount> hops = unset_hops();
  /// Real (steady-clock) ns anchor taken when the row was handed to the
  /// ingest executor; the worker thread stamps kCommitted as
  /// kIngestEnqueued + real elapsed, because worker threads run off the
  /// virtual timeline.  Not serialized.
  std::uint64_t real_anchor_ns = 0;
  /// When the durable store acknowledged the group commit covering this
  /// row (same clock construction as kCommitted).  Deliberately NOT a
  /// ninth hop: kHopCount is wire format and durability is optional —
  /// kHopUnset means "memory mode / store off".  Not serialized.
  std::int64_t committed_durable = kHopUnset;

  bool sampled() const { return id != 0; }

  void stamp(Hop h, std::int64_t t_ns) {
    hops[static_cast<std::size_t>(h)] = t_ns;
  }
  std::int64_t hop(Hop h) const { return hops[static_cast<std::size_t>(h)]; }
  bool has(Hop h) const { return hop(h) != kHopUnset; }

  /// All eight hops stamped.
  bool complete() const;
  /// Stamped hops are non-decreasing in pipeline order (unset skipped).
  bool monotonic() const;
  /// committed - intercepted; 0 unless both ends are stamped.
  std::int64_t e2e_ns() const;
};

// --- JSON envelope block -------------------------------------------------
//
// The payload-side half of the context is serialized as a trailing
// `"trace"` member of the connector's JSON envelope.  Field list is the
// canonical kTraceFields; lint_schema_parity.py diffs it against the
// writer, the parser and the wire-codec block.

inline constexpr std::size_t kTraceFieldCount = 3;
extern const std::array<std::string_view, kTraceFieldCount> kTraceFields;

/// Appends `,"trace":{...}` before the closing brace of a rendered JSON
/// object.  No-op if `payload_json` does not end in an object.
void append_trace_member(std::string* payload_json, const TraceContext& t);

/// Extracts the trailing `"trace"` member written by append_trace_member;
/// fills id / intercepted / published and returns true on success.
bool parse_trace_member(std::string_view payload_json, TraceContext* out);

}  // namespace dlc::obs
