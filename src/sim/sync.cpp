#include "sim/sync.hpp"

namespace dlc::sim {

void Event::set() {
  if (set_) return;
  set_ = true;
  // Wake via the run queue (not inline resume) so wakeup order is the
  // deterministic queue order and the setter's frame isn't re-entered.
  for (auto h : waiters_) engine_.schedule_after(0, h);
  waiters_.clear();
}

void Barrier::release_all() {
  ++generation_;
  for (auto h : waiting_) engine_.schedule_after(0, h);
  waiting_.clear();
}

void Resource::release() {
  if (!waiters_.empty()) {
    // Slot transfers directly to the head of the queue; in_use_ unchanged.
    const Waiter next = waiters_.front();
    waiters_.pop_front();
    wait_time_ += engine_.now() - next.enqueued_at;
    engine_.schedule_after(0, next.handle);
  } else if (in_use_ > 0) {
    --in_use_;
  }
}

Task<void> Resource::use(SimDuration service) {
  co_await acquire();
  const SimTime start = engine_.now();
  co_await engine_.delay(service);
  busy_time_ += engine_.now() - start;
  ++completed_;
  release();
}

}  // namespace dlc::sim
