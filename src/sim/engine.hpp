// Discrete-event engine: a virtual clock plus a time-ordered run queue of
// suspended coroutines.  Ties are broken by insertion sequence so identical
// seeds replay identically regardless of allocator behaviour.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "util/time.hpp"

namespace dlc::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Registers a root process; it starts when run() reaches `start`.
  void spawn(Task<void> task, SimTime start = 0);

  /// Schedules a raw coroutine handle to resume at absolute time `t`
  /// (clamped to now).  Building block for awaitables.
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedules `h` to resume after `d` ns of virtual time.
  void schedule_after(SimDuration d, std::coroutine_handle<> h) {
    schedule_at(now_ + (d < 0 ? 0 : d), h);
  }

  /// Runs until the event queue is empty or `until` is reached (whichever
  /// first).  Rethrows the first exception that escaped a root task.
  void run(SimTime until = INT64_MAX);

  /// Number of spawned root tasks that have not completed.  A non-zero
  /// value after run() means deadlock (process waiting on an event nobody
  /// will signal) — tests assert on this.
  std::size_t unfinished_tasks() const;

  /// Total events dispatched (diagnostics / perf counters).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Runaway guard: run() throws std::runtime_error once this many events
  /// have been dispatched in total (0 disables).  Catches accidental
  /// zero-delay self-rescheduling loops in workload code.
  void set_dispatch_limit(std::uint64_t limit) { dispatch_limit_ = limit; }

  /// Awaitable: suspends the current coroutine for `d` virtual ns.
  auto delay(SimDuration d) {
    struct Awaiter {
      Engine& engine;
      SimDuration dur;
      bool await_ready() const noexcept { return dur <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine.schedule_after(dur, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

 private:
  struct ScheduledEvent {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const ScheduledEvent& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Frees frames of completed root tasks; called periodically from
  /// spawn() so long-running pipelines don't accumulate dead frames.
  /// The first escaped exception is parked and rethrown by run().
  void reap_completed();

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t dispatch_limit_ = 0;
  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                      std::greater<>>
      queue_;
  std::vector<Task<void>> root_tasks_;
  std::exception_ptr pending_exception_;
  std::size_t spawns_since_reap_ = 0;
};

}  // namespace dlc::sim
