// Coroutine task type for simulated processes.
//
// A sim::Task<T> is a lazily-started coroutine on the virtual timeline.
// Rank processes read like MPI code:
//
//   sim::Task<void> rank_main(RankCtx& ctx) {
//     co_await ctx.fs.write(ctx.node, fh, bytes);
//     co_await ctx.job.barrier();
//   }
//
// Tasks are single-threaded: the Engine resumes exactly one coroutine at a
// time, so no synchronisation is needed inside frames (determinism is the
// point — every experiment replays bit-identically from its seed).
//
// Ownership: the Task object owns the coroutine frame (destroying a Task
// destroys a suspended frame safely).  `co_await child_task` starts the
// child via symmetric transfer and resumes the parent when the child's
// final_suspend runs.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace dlc::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool started = false;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  template <typename U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Starts or resumes the coroutine directly (used by the Engine for root
  /// tasks; in-task code should `co_await` instead).
  void resume() const { handle_.resume(); }

  /// Rethrows an exception that escaped the task body, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Non-owning view of the frame, e.g. for scheduling the initial resume.
  std::coroutine_handle<> raw_handle() const { return handle_; }

  // --- awaiter: `co_await task` starts the child and suspends the parent.
  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) const noexcept {
      handle.promise().continuation = parent;
      return handle;  // symmetric transfer: run the child now
    }
    T await_resume() const {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(*handle.promise().value);
      }
    }
  };

  Awaiter operator co_await() const noexcept {
    handle_.promise().started = true;
    return Awaiter{handle_};
  }

  /// Starts the task eagerly (runs inline until its first suspension).
  /// Idempotent.  Combine with join() for fork/join parallelism:
  ///
  ///   for (auto& t : chunks) t.start();
  ///   for (auto& t : chunks) co_await t.join();
  void start() const {
    auto& p = handle_.promise();
    if (!p.started) {
      p.started = true;
      handle_.resume();
    }
  }

  /// Awaiter for a task that was already start()ed: never transfers into
  /// the child (it may be suspended in the engine queue); just parks the
  /// parent as the child's continuation.
  struct JoinAwaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    void await_suspend(std::coroutine_handle<> parent) const noexcept {
      handle.promise().continuation = parent;
    }
    T await_resume() const {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(*handle.promise().value);
      }
    }
  };

  JoinAwaiter join() const {
    start();
    return JoinAwaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace dlc::sim
