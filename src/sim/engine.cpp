#include "sim/engine.hpp"

#include <stdexcept>

namespace dlc::sim {

Engine::~Engine() = default;

void Engine::spawn(Task<void> task, SimTime start) {
  if (!task.valid()) return;
  if (++spawns_since_reap_ >= 1024) {
    reap_completed();
    spawns_since_reap_ = 0;
  }
  // The Task object keeps owning the frame; the run queue holds a
  // non-owning handle for the initial resume.  Frame addresses are stable
  // across vector reallocation because moving a Task moves only the handle.
  root_tasks_.push_back(std::move(task));
  schedule_at(start < now_ ? now_ : start, root_tasks_.back().raw_handle());
}

void Engine::reap_completed() {
  std::erase_if(root_tasks_, [this](const Task<void>& t) {
    if (!t.done()) return false;
    if (!pending_exception_) {
      try {
        t.rethrow_if_failed();
      } catch (...) {
        pending_exception_ = std::current_exception();
      }
    }
    return true;
  });
}

void Engine::schedule_at(SimTime t, std::coroutine_handle<> h) {
  queue_.push(ScheduledEvent{t < now_ ? now_ : t, seq_++, h});
}

void Engine::run(SimTime until) {
  while (!queue_.empty()) {
    const ScheduledEvent ev = queue_.top();
    if (ev.time > until) break;
    queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    if (dispatch_limit_ != 0 && dispatched_ > dispatch_limit_) {
      throw std::runtime_error("sim::Engine dispatch limit exceeded");
    }
    ev.handle.resume();
  }
  if (pending_exception_) {
    std::exception_ptr ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  for (const auto& t : root_tasks_) t.rethrow_if_failed();
}

std::size_t Engine::unfinished_tasks() const {
  std::size_t n = 0;
  for (const auto& t : root_tasks_) {
    if (t.valid() && !t.done()) ++n;
  }
  return n;
}

}  // namespace dlc::sim
