// Synchronisation primitives on the virtual timeline.
//
//   Event    — one-shot signal (fan-out wakeup)
//   Barrier  — reusable rendezvous for N processes (MPI_Barrier analogue)
//   Resource — FIFO multi-server queue: `co_await res.use(service)` models a
//              request that waits for one of `capacity` servers, holds it
//              for `service` ns, then releases.  Queueing delay — the source
//              of file-system contention in simfs — falls out naturally.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace dlc::sim {

/// One-shot event: wait() suspends until set() is called; waits after set()
/// complete immediately.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  bool is_set() const { return set_; }

  /// Wakes all current and future waiters.
  void set();

  /// Awaitable wait.
  auto wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Reusable N-party barrier.  The Nth arrival releases everyone (including
/// itself, without suspension) and resets for the next generation.
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties)
      : engine_(engine), parties_(parties) {}

  std::size_t parties() const { return parties_; }
  std::uint64_t generation() const { return generation_; }

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& barrier;
      bool await_ready() const noexcept {
        return barrier.parties_ <= 1;  // degenerate barrier never blocks
      }
      bool await_suspend(std::coroutine_handle<> h) {
        if (barrier.waiting_.size() + 1 == barrier.parties_) {
          barrier.release_all();
          return false;  // last arrival continues immediately
        }
        barrier.waiting_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void release_all();

  Engine& engine_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

/// FIFO multi-server resource with utilisation accounting.
class Resource {
 public:
  Resource(Engine& engine, std::size_t capacity)
      : engine_(engine), capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Total busy server-nanoseconds accumulated so far.
  SimDuration busy_time() const { return busy_time_; }
  /// Total request-nanoseconds spent waiting in the queue.
  SimDuration wait_time() const { return wait_time_; }
  std::uint64_t completed() const { return completed_; }

  /// Acquire one server slot (FIFO).  Pair with release().
  auto acquire() {
    struct Awaiter {
      Resource& res;
      SimTime enqueue_time = 0;
      bool await_ready() {
        if (res.in_use_ < res.capacity_ && res.waiters_.empty()) {
          ++res.in_use_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        enqueue_time = res.engine_.now();
        res.waiters_.push_back(Waiter{h, enqueue_time});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Releases one slot; hands it to the longest-waiting request, if any.
  void release();

  /// Acquire + hold for `service` + release, accounting busy time.
  Task<void> use(SimDuration service);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    SimTime enqueued_at;
  };

  Engine& engine_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Waiter> waiters_;
  SimDuration busy_time_ = 0;
  SimDuration wait_time_ = 0;
  std::uint64_t completed_ = 0;

  friend class ResourceAwaiterAccess;
};

}  // namespace dlc::sim
