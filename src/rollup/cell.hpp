// Rollup cell: one (policy, key, time-bucket) aggregate and its durable
// row encoding (DESIGN.md §8b).
//
// A cell carries the Fig. 5–9 panel aggregates — op count, byte sum and
// duration stats (sum/min/max plus a sparse log-bucket histogram in the
// src/obs/ geometry) — keyed by the policy's projection of (job, node,
// rank, op, module) and an absolute time bucket.  Sealed cells are
// materialised as `rollup_cell` DSOS rows so the PR 6 tiered store
// persists them and retention expires them like any other schema.
//
// The field list is a lint surface: kRollupCellFields below, the schema
// builder, cell_to_row/row_to_cell's `// rollupcell:` tags and the
// websvc JSON response must all agree (tools/lint_schema_parity.py).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dsos/schema.hpp"

namespace dlc::rollup {

/// Canonical rollup cell field list, in row/JSON order.
inline constexpr const char* kRollupCellFields[] = {
    "policy",  "job_id", "ProducerName", "rank",    "op",
    "module",  "bucket", "bucket_w",     "count",   "bytes",
    "dur_sum", "dur_min", "dur_max",     "dur_hist",
};
inline constexpr std::size_t kRollupCellFieldCount = 14;

/// Row-only bookkeeping attrs (not part of the served cell): the raw
/// shard the cell aggregated and the seal watermark it records.
inline constexpr const char* kRollupRowExtraFields[] = {"shard", "watermark"};
inline constexpr std::size_t kRollupRowExtraFieldCount = 2;

/// Sparse counterpart of obs::LogHistogram: same util/stats.hpp
/// log-bucket geometry (4 sub-buckets per octave), but stored as sorted
/// (bucket, count) pairs so an idle cell costs bytes, not 2 KiB.
class SparseLogHist {
 public:
  void record(std::uint64_t sample);
  void merge(const SparseLogHist& other);
  std::uint64_t total() const;
  /// In-bucket interpolated, identical convention to
  /// util::log_bucket_percentile (within one log bucket of exact).
  double percentile(double p) const;

  /// "idx:count idx:count ..." (ascending idx; empty string when empty).
  std::string encode() const;
  static bool decode(std::string_view text, SparseLogHist& out);

  const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets()
      const {
    return buckets_;
  }
  bool operator==(const SparseLogHist&) const = default;

 private:
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets_;
};

/// Aggregates of one cell.  Duration histogram samples are nanoseconds
/// (llround(seg_dur * 1e9)); bytes clamp negative seg_len to 0 exactly
/// like the fig9 raw scan.
struct CellAgg {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double dur_sum = 0.0;
  double dur_min = std::numeric_limits<double>::infinity();
  double dur_max = -std::numeric_limits<double>::infinity();
  SparseLogHist dur_hist;

  void add(std::int64_t seg_len, double seg_dur);
  void merge(const CellAgg& other);
};

/// Projection key.  Unkeyed dimensions hold their neutral value ("*"
/// for strings, 0 for numerics); `bucket` is the absolute bucket index
/// floor(seg_timestamp / bucket_s).
struct CellKey {
  std::uint64_t job = 0;
  std::string producer = "*";
  std::int64_t rank = 0;
  std::string op = "*";
  std::string module = "*";
  std::int64_t bucket = 0;

  auto operator<=>(const CellKey&) const = default;
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const;
};

/// A decoded cell as served to queries.
struct RollupCell {
  std::string policy;
  CellKey key;
  double bucket_start = 0.0;  // key.bucket * bucket_w
  double bucket_w = 0.0;
  CellAgg agg;
};

/// The `rollup_cell` schema (cell fields + row extras; indexed by
/// (policy, bucket) and (policy, job_id, bucket)).
dsos::SchemaPtr rollup_cell_schema();

/// Cell -> durable row.  `watermark` is the per-(policy, shard) seal
/// frontier this spill advances to (recovery resumes from the max).
dsos::Object cell_to_row(const dsos::SchemaPtr& schema,
                         std::string_view policy, const CellKey& key,
                         double bucket_w, const CellAgg& agg,
                         std::uint64_t shard, double watermark);

/// Durable row -> cell.  False on a malformed row (bad histogram text).
bool row_to_cell(const dsos::Object& row, RollupCell& cell,
                 std::uint64_t& shard, double& watermark);

}  // namespace dlc::rollup
