#include "rollup/serve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "analysis/figures.hpp"
#include "obs/registry.hpp"

namespace dlc::rollup {

namespace {

const std::vector<std::string>& data_ops() {
  static const std::vector<std::string> ops{"read", "write"};
  return ops;
}

void count_panel(bool from_rollup) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  if (from_rollup) {
    reg.counter("dlc.rollup.panels_rollup").add(1);
  } else {
    reg.counter("dlc.rollup.panels_raw").add(1);
  }
}

PanelResult served(analysis::DataFrame frame, std::string policy) {
  count_panel(true);
  return {std::move(frame), true, std::move(policy)};
}

PanelResult fallback(analysis::DataFrame frame) {
  count_panel(false);
  return {std::move(frame), false, {}};
}

/// Cells usable at all?  A crashed engine's in-memory state is torn.
bool usable(const RollupEngine* engine) {
  return engine != nullptr && !engine->crashed();
}

}  // namespace

const PolicyConfig* covering_policy(const RollupEngine& engine,
                                    const std::vector<std::string>& keys,
                                    const std::vector<std::string>& ops,
                                    double bucket_s) {
  const PolicyConfig* best = nullptr;
  std::size_t best_extra = std::numeric_limits<std::size_t>::max();
  for (const PolicyConfig& p : engine.policies()) {
    const bool keys_ok =
        std::all_of(keys.begin(), keys.end(),
                    [&](const std::string& k) { return p.has_key(k); });
    if (!keys_ok) continue;
    if (!p.match.empty()) {
      // A filtered policy only has the events its match kept: usable
      // only when it is a pure op filter covering the panel's ops.
      if (ops.empty() || p.match.size() != 1 || p.match[0].attr != "op") {
        continue;
      }
      const std::vector<std::string>& kept = p.match[0].values;
      const bool covers = std::all_of(
          ops.begin(), ops.end(), [&](const std::string& op) {
            return std::find(kept.begin(), kept.end(), op) != kept.end();
          });
      if (!covers) continue;
    }
    if (bucket_s > 0) {
      const double f = bucket_s / p.bucket_s;
      const auto factor = std::llround(f);
      if (factor < 1 ||
          std::abs(f - static_cast<double>(factor)) > 1e-9) {
        continue;
      }
    }
    const std::size_t extra = p.keys.size() - keys.size();
    if (extra < best_extra) {
      best = &p;
      best_extra = extra;
    }
  }
  return best;
}

PanelResult panel_fig5(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs) {
  if (usable(engine) && !jobs.empty()) {
    if (const PolicyConfig* p =
            covering_policy(*engine, {"job_id", "op"}, {})) {
      RollupQuery q;
      q.jobs = jobs;
      const std::vector<RollupCell> cells = engine->query(p->name, q);
      if (!cells.empty()) {
        analysis::DataFrame cf;
        analysis::DataFrame::StringCol op;
        analysis::DataFrame::IntCol job, cnt;
        for (const RollupCell& c : cells) {
          op.push_back(c.key.op);
          job.push_back(static_cast<std::int64_t>(c.key.job));
          cnt.push_back(static_cast<std::int64_t>(c.agg.count));
        }
        cf.add_string_column("op", std::move(op));
        cf.add_int_column("job_id", std::move(job));
        cf.add_int_column("count_partial", std::move(cnt));
        // Same shape as the raw path: per-(op, job) counts, then
        // mean/CI across jobs — identical group order, so the Welford
        // accumulation matches bit for bit.
        const analysis::DataFrame per_job = cf.group_by(
            {"op", "job_id"}, {{.column = "count_partial",
                                .op = analysis::Agg::kSum,
                                .out_name = "count"}});
        analysis::DataFrame out = per_job.group_by(
            {"op"}, {{.column = "count", .op = analysis::Agg::kMean,
                      .out_name = "mean_count"},
                     {.column = "count", .op = analysis::Agg::kCi95,
                      .out_name = "ci95"}});
        return served(std::move(out), p->name);
      }
    }
  }
  return fallback(analysis::fig5_op_counts(db, jobs));
}

PanelResult panel_fig6(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs) {
  if (usable(engine) && !jobs.empty()) {
    if (const PolicyConfig* p = covering_policy(
            *engine, {"job_id", "ProducerName", "op"}, {"open", "close"})) {
      RollupQuery q;
      q.jobs = jobs;
      q.ops = {"open", "close"};
      const std::vector<RollupCell> cells = engine->query(p->name, q);
      if (!cells.empty()) {
        analysis::DataFrame cf;
        analysis::DataFrame::IntCol job, cnt;
        analysis::DataFrame::StringCol producer, op;
        for (const RollupCell& c : cells) {
          job.push_back(static_cast<std::int64_t>(c.key.job));
          producer.push_back(c.key.producer);
          op.push_back(c.key.op);
          cnt.push_back(static_cast<std::int64_t>(c.agg.count));
        }
        cf.add_int_column("job_id", std::move(job));
        cf.add_string_column("ProducerName", std::move(producer));
        cf.add_string_column("op", std::move(op));
        cf.add_int_column("count_partial", std::move(cnt));
        analysis::DataFrame out = cf.group_by(
            {"job_id", "ProducerName", "op"},
            {{.column = "count_partial", .op = analysis::Agg::kSum,
              .out_name = "count"}});
        return served(std::move(out), p->name);
      }
    }
  }
  return fallback(analysis::fig6_requests_per_node(db, jobs));
}

namespace {

/// Shared shape of fig7 / fig7_summary: per-group duration sums and
/// counts from cells, with mean_dur derived as dur_sum / count.
analysis::DataFrame duration_frame(const std::vector<RollupCell>& cells,
                                   bool per_rank) {
  analysis::DataFrame cf;
  analysis::DataFrame::IntCol job, rank, cnt;
  analysis::DataFrame::DoubleCol dur;
  analysis::DataFrame::StringCol op;
  for (const RollupCell& c : cells) {
    job.push_back(static_cast<std::int64_t>(c.key.job));
    if (per_rank) rank.push_back(c.key.rank);
    op.push_back(c.key.op);
    dur.push_back(c.agg.dur_sum);
    cnt.push_back(static_cast<std::int64_t>(c.agg.count));
  }
  cf.add_int_column("job_id", std::move(job));
  if (per_rank) cf.add_int_column("rank", std::move(rank));
  cf.add_string_column("op", std::move(op));
  cf.add_double_column("dur_partial", std::move(dur));
  cf.add_int_column("count_partial", std::move(cnt));
  std::vector<std::string> keys{"job_id"};
  if (per_rank) keys.emplace_back("rank");
  keys.emplace_back("op");
  return cf.group_by(
      keys, {{.column = "dur_partial", .op = analysis::Agg::kSum,
              .out_name = "total_dur"},
             {.column = "count_partial", .op = analysis::Agg::kSum,
              .out_name = "count"}});
}

}  // namespace

PanelResult panel_fig7(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs) {
  if (usable(engine) && !jobs.empty()) {
    if (const PolicyConfig* p = covering_policy(
            *engine, {"job_id", "rank", "op"}, data_ops())) {
      RollupQuery q;
      q.jobs = jobs;
      q.ops = data_ops();
      const std::vector<RollupCell> cells = engine->query(p->name, q);
      if (!cells.empty()) {
        const analysis::DataFrame g = duration_frame(cells, /*per_rank=*/true);
        analysis::DataFrame out;
        analysis::DataFrame::IntCol job, rank;
        analysis::DataFrame::StringCol op;
        analysis::DataFrame::DoubleCol mean_dur, total_dur, cnt;
        for (std::size_t r = 0; r < g.rows(); ++r) {
          job.push_back(g.get_int(r, "job_id"));
          rank.push_back(g.get_int(r, "rank"));
          op.push_back(g.get_string(r, "op"));
          const double total = g.get_double(r, "total_dur");
          const double count = g.get_double(r, "count");
          mean_dur.push_back(count > 0 ? total / count : 0.0);
          total_dur.push_back(total);
          cnt.push_back(count);
        }
        out.add_int_column("job_id", std::move(job));
        out.add_int_column("rank", std::move(rank));
        out.add_string_column("op", std::move(op));
        out.add_double_column("mean_dur", std::move(mean_dur));
        out.add_double_column("total_dur", std::move(total_dur));
        out.add_double_column("count", std::move(cnt));
        return served(std::move(out), p->name);
      }
    }
  }
  return fallback(analysis::fig7_rank_durations(db, jobs));
}

PanelResult panel_fig7_summary(const RollupEngine* engine,
                               const dsos::DsosCluster& db,
                               const std::vector<std::uint64_t>& jobs) {
  if (usable(engine) && !jobs.empty()) {
    if (const PolicyConfig* p =
            covering_policy(*engine, {"job_id", "op"}, data_ops())) {
      RollupQuery q;
      q.jobs = jobs;
      q.ops = data_ops();
      const std::vector<RollupCell> cells = engine->query(p->name, q);
      if (!cells.empty()) {
        const analysis::DataFrame g =
            duration_frame(cells, /*per_rank=*/false);
        analysis::DataFrame out;
        analysis::DataFrame::IntCol job;
        analysis::DataFrame::StringCol op;
        analysis::DataFrame::DoubleCol mean_dur;
        for (std::size_t r = 0; r < g.rows(); ++r) {
          job.push_back(g.get_int(r, "job_id"));
          op.push_back(g.get_string(r, "op"));
          const double total = g.get_double(r, "total_dur");
          const double count = g.get_double(r, "count");
          mean_dur.push_back(count > 0 ? total / count : 0.0);
        }
        out.add_int_column("job_id", std::move(job));
        out.add_string_column("op", std::move(op));
        out.add_double_column("mean_dur", std::move(mean_dur));
        return served(std::move(out), p->name);
      }
    }
  }
  return fallback(analysis::fig7_job_summary(db, jobs));
}

PanelResult panel_fig9(const RollupEngine* engine,
                       const dsos::DsosCluster& db, std::uint64_t job,
                       double bucket_seconds) {
  if (usable(engine) && bucket_seconds > 0) {
    if (const PolicyConfig* p = covering_policy(
            *engine, {"job_id", "op"}, data_ops(), bucket_seconds)) {
      RollupQuery q;
      q.jobs = {job};
      q.ops = data_ops();
      q.bucket_s = bucket_seconds;
      const std::vector<RollupCell> cells = engine->query(p->name, q);
      if (!cells.empty()) {
        // Same phase convention as the raw scan: buckets are absolute
        // (floor(ts / w) * w), re-based on the job's first bucket.
        double base = std::numeric_limits<double>::infinity();
        for (const RollupCell& c : cells) {
          base = std::min(base, c.bucket_start);
        }
        analysis::DataFrame cf;
        analysis::DataFrame::DoubleCol bucket;
        analysis::DataFrame::StringCol op;
        analysis::DataFrame::IntCol cnt, bytes;
        for (const RollupCell& c : cells) {
          bucket.push_back(c.bucket_start - base);
          op.push_back(c.key.op);
          cnt.push_back(static_cast<std::int64_t>(c.agg.count));
          bytes.push_back(static_cast<std::int64_t>(c.agg.bytes));
        }
        cf.add_double_column("bucket_s", std::move(bucket));
        cf.add_string_column("op", std::move(op));
        cf.add_int_column("count_partial", std::move(cnt));
        cf.add_int_column("bytes_partial", std::move(bytes));
        analysis::DataFrame out =
            cf.group_by({"bucket_s", "op"},
                        {{.column = "count_partial",
                          .op = analysis::Agg::kSum,
                          .out_name = "count"},
                         {.column = "bytes_partial",
                          .op = analysis::Agg::kSum,
                          .out_name = "bytes"}})
                .sort_by("bucket_s");
        return served(std::move(out), p->name);
      }
    }
  }
  return fallback(analysis::fig9_throughput_buckets(db, job, bucket_seconds));
}

}  // namespace dlc::rollup
