// Rollup engine: the storage-policy decomposition stage of the
// ingest -> store -> serve spine (DESIGN.md §8).
//
// attach() mounts one commit observer (dsos::CommitSink) on every shard
// of the raw cluster.  From then on each decoded event is matched
// against every policy on its shard's single writer thread and folded
// into a *pending* cell map lock-free; Container::commit() — the same
// barrier the durable store group-commits on — merges pending cells
// into the shard's *open* (query-visible) cells under the RollupShard
// lock, so ingest stays parallel and readers only ever see
// commit-consistent aggregates.
//
// Bucket lifecycle: a cell's bucket seals once the shard's max event
// timestamp passes bucket end + grace.  Sealed cells are materialised
// as `rollup_cell` rows into an engine-owned single-shard cluster
// backed by its own PR 6 tiered store (one spill batch == one atomic
// WAL group commit), so rollups survive restart and obey retention.
// Each spilled row records the seal watermark; recovery restores the
// sealed rows, then rebuilds the unsealed tail by replaying the
// recovered raw cluster in original per-shard insertion order —
// making post-crash rollups byte-identical to an uninterrupted run.
// Events older than the sealed frontier are dropped and counted
// (dlc.rollup.late_dropped); with the default grace of 2 bucket widths
// this never fires on in-order-ish streams.
//
// Crash injection mirrors the store: relia::FaultPlan `storecrash`
// directives with points `rollup_seal` (before the spill writes
// anything) and `rollup_spill` (after the rows are buffered, before
// the WAL commit) throw store::StoreCrash and deaden the engine; the
// spill store's own `commit` point tears the WAL frame itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dsos/cluster.hpp"
#include "obs/registry.hpp"
#include "relia/fault.hpp"
#include "rollup/cell.hpp"
#include "rollup/policy.hpp"
#include "store/store.hpp"
#include "util/thread_annotations.hpp"

namespace dlc::rollup {

struct RollupEngineConfig {
  std::vector<PolicyConfig> policies;
  /// Durability of sealed cells (memory keeps them queryable only).
  store::StoreMode store_mode = store::StoreMode::kMemory;
  /// Spill-store directory (DARSHAN_LDMS_ROLLUP_DIR); required unless
  /// kMemory.
  std::string dir;
  /// Retention over sealed rollup segments, seconds (0 = keep forever).
  std::uint64_t retention_s = 0;
  /// Metrics registry (nullptr = obs::Registry::global()).
  obs::Registry* registry = nullptr;
};

/// Engine-level crash points (beyond the spill store's own).
enum class RollupCrashPoint : std::uint8_t {
  kSeal = 0,   // cells extracted, nothing written yet
  kSpill = 1,  // rows buffered into the spill sink, WAL commit pending
};
inline constexpr std::size_t kRollupCrashPointCount = 2;

std::string_view rollup_crash_point_name(RollupCrashPoint p);
bool rollup_crash_point_from_name(std::string_view name,
                                  RollupCrashPoint& out);

/// Observer of sealed batches — how downstream streaming stages (the
/// anomaly engine) ride the seal path, mirroring how the engine itself
/// rides dsos::CommitSinks.  on_sealed fires after the batch has been
/// durably spilled, on the thread that drove the commit (a shard writer
/// thread, or the drain/flush thread), with cells in canonical CellKey
/// order and NO engine lock held — observers may query the engine or
/// take their own locks freely.  Batches sealed by the attach()-time
/// recovery replay fire too when the observer is registered before
/// attach(); register after attach() to see only live seals.
class SealObserver {
 public:
  virtual ~SealObserver() = default;
  virtual void on_sealed(std::string_view policy, std::size_t shard,
                         double watermark,
                         const std::vector<std::pair<CellKey, CellAgg>>&
                             cells) = 0;
};

/// What attach() reconstructed.
struct RollupRecovery {
  std::uint64_t sealed_rows = 0;      // rows restored from the spill store
  std::uint64_t replayed_events = 0;  // raw events rebuilt into open cells
  store::RecoveryReport store;        // spill store's own report
};

struct RollupStats {
  std::uint64_t events = 0;        // raw events folded (sum over policies)
  std::uint64_t late_dropped = 0;  // events behind a sealed frontier
  std::uint64_t cells_open = 0;
  std::uint64_t sealed_rows = 0;  // rows spilled by this instance
  std::uint64_t spills = 0;       // spill batches (= atomic commits)
};

/// Query over one policy's cells.  Sealed and open contributions for
/// the same (key, shard) merge in canonical shard order, so results do
/// not depend on how much has sealed — the crash-campaign invariant.
struct RollupQuery {
  std::vector<std::uint64_t> jobs;  // empty = all
  std::vector<std::string> ops;     // empty = all
  std::string producer;             // empty = all
  std::optional<std::int64_t> rank;
  double from_s = -std::numeric_limits<double>::infinity();  // bucket >=
  double to_s = std::numeric_limits<double>::infinity();     // bucket <
  /// 0 = the policy's own width; otherwise an integer multiple of it,
  /// and cells are re-aggregated into the coarser buckets.
  double bucket_s = 0.0;
};

class RollupEngine {
 public:
  explicit RollupEngine(RollupEngineConfig config);
  ~RollupEngine();

  RollupEngine(const RollupEngine&) = delete;
  RollupEngine& operator=(const RollupEngine&) = delete;

  /// Opens the spill store (recovering sealed cells), registers a
  /// commit observer on every shard of `raw` and rebuilds the unsealed
  /// tail from the cluster's current contents.  Call before ingest
  /// starts; idempotent for the same cluster, throws std::logic_error
  /// for a second one.  The cluster must outlive the engine or be
  /// released via detach().
  RollupRecovery attach(dsos::DsosCluster& raw);

  /// Removes the observers and closes the spill store.  Idempotent.
  void detach();
  bool attached() const { return raw_ != nullptr; }

  /// Merges pending cells into the query-visible state and seals what
  /// the watermarks allow.  Runs the commit path on every shard — call
  /// only at quiescent points (after IngestExecutor::drain(), or under
  /// serial ingest where no commits happen otherwise).
  void flush();

  /// flush() + seal every open cell regardless of watermark (end of
  /// campaign / orderly shutdown: push everything to the spill store).
  void seal_all();

  const std::vector<PolicyConfig>& policies() const { return policies_; }
  const PolicyConfig* find_policy(std::string_view name) const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Registers/removes a seal observer (see SealObserver).  Safe at any
  /// time; the observer must outlive the engine or be removed first.
  void add_seal_observer(SealObserver* observer);
  void remove_seal_observer(SealObserver* observer);

  /// Arms engine-level crash points from `storecrash rollup_seal|
  /// rollup_spill after <n>` directives and forwards the rest to the
  /// spill store's injector.  Returns how many were armed.  Only under
  /// serial ingest — a StoreCrash unwinding a worker thread would
  /// terminate the process for real.
  std::size_t arm_from_plan(const relia::FaultPlan& plan);
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// The spill store (nullptr in memory mode) — its FaultInjector,
  /// retention and status are the caller's to drive.
  store::Store* spill_store() { return spill_store_.get(); }
  const RollupRecovery& recovery() const { return recovery_; }

  std::vector<RollupCell> query(std::string_view policy,
                                const RollupQuery& q) const;

  RollupStats stats() const;
  /// /api/rollup payload: policies with per-policy cell counts, totals,
  /// spill-store state.
  std::string status_json() const;

 private:
  struct ShardSink;

  /// Resolved Table I attribute ids for one raw schema (cached per
  /// shard; events of schemas missing any of these are ignored).
  struct AttrIds {
    std::size_t job = 0, producer = 0, rank = 0, op = 0, module = 0;
    std::size_t seg_len = 0, seg_dur = 0, seg_ts = 0;
    bool valid = false;
  };

  /// Writer side of one (policy, shard): the *running* unsealed cells,
  /// owned by the shard's single writer thread (lock-free insert path,
  /// like Container::objects_).  Cells accumulate continuously in
  /// insert order — never as merged partial sums — so the double
  /// `dur_sum` is bit-identical to a raw scan of the shard in slot
  /// order regardless of commit batching.  `frontier` mirrors the
  /// sealed watermark for the late-drop check; it is only written by
  /// the commit path, which runs on the writer thread itself (or the
  /// drain thread at quiescence), so the unguarded read cannot race.
  struct PolicyWriter {
    std::unordered_map<CellKey, CellAgg, CellKeyHash> cells;
    double max_ts = -std::numeric_limits<double>::infinity();
    double frontier = -std::numeric_limits<double>::infinity();
  };

  /// Reader side: the commit-consistent snapshot queries see, refreshed
  /// from PolicyWriter at every Container::commit under the shard lock.
  struct PolicyOpen {
    std::unordered_map<CellKey, CellAgg, CellKeyHash> open;
    double watermark = -std::numeric_limits<double>::infinity();
  };

  /// Policy pre-compiled against Table I types (match values parsed,
  /// key dimensions as flags) so the per-event path does no parsing.
  struct CompiledPolicy {
    bool key_job = false, key_producer = false, key_rank = false;
    bool key_op = false, key_module = false;
    struct Clause {
      std::uint8_t dim = 0;  // index into kRollupDims
      std::vector<std::string> strs;
      std::vector<std::uint64_t> u64s;
      std::vector<std::int64_t> i64s;
    };
    std::vector<Clause> clauses;
  };

  struct ShardState {
    mutable util::Mutex m{"RollupShard"};
    std::vector<PolicyWriter> writer;  // writer-thread-owned, unguarded
    std::vector<PolicyOpen> pol DLC_GUARDED_BY(m);
    /// This shard's open-cell count as of its last commit — lets the
    /// dlc.rollup.cells_open gauge publish the engine-wide total
    /// without taking the other shards' locks on the commit path.
    // atomic-protocol: kind=gauge pairs=RollupEngine::stats
    std::atomic<std::uint64_t> open_count{0};
    // Writer-thread schema cache (unguarded by the single-writer
    // contract, like Container::objects_).
    const dsos::Schema* cached_schema = nullptr;
    AttrIds ids;
    std::unique_ptr<ShardSink> sink;
  };

  /// One policy's extracted seal batch, spilled outside the shard lock.
  struct SealBatch {
    std::size_t policy = 0;
    double watermark = 0.0;
    std::vector<std::pair<CellKey, CellAgg>> cells;
  };

  void on_insert(std::size_t shard, const dsos::Object& obj);
  void on_commit(std::size_t shard, bool seal_everything = false);
  void spill(std::size_t shard, const SealBatch& batch);
  void notify_sealed(std::size_t shard, const SealBatch& batch);
  const AttrIds& resolve_ids(ShardState& sh, const dsos::Object& obj);
  bool matches_policy(std::size_t policy, const dsos::Object& obj,
                      const AttrIds& ids) const;
  bool should_crash(RollupCrashPoint p);
  void mark_crashed() const { crashed_.store(true, std::memory_order_release); }

  std::vector<PolicyConfig> policies_;
  std::vector<CompiledPolicy> compiled_;
  RollupEngineConfig config_;
  dsos::DsosCluster* raw_ = nullptr;
  std::vector<std::unique_ptr<ShardState>> shards_;
  RollupRecovery recovery_;
  bool replaying_ = false;  // attach()-time rebuild: skip metrics/drops

  /// Sealed side: a single-shard cluster of `rollup_cell` rows plus its
  /// optional durable store.  RollupSealed is taken *after* RollupShard
  /// is released (spill batches are extracted first), never nested.
  /// Seal observers.  The mutex is a leaf taken only to copy the list;
  /// on_sealed itself runs with no engine lock held (RollupShard and
  /// RollupSealed are released before notify_sealed).
  mutable util::Mutex observers_m_{"RollupObservers"};
  std::vector<SealObserver*> observers_ DLC_GUARDED_BY(observers_m_);

  dsos::SchemaPtr cell_schema_;
  mutable util::Mutex sealed_m_{"RollupSealed"};
  std::unique_ptr<dsos::DsosCluster> sealed_db_ DLC_GUARDED_BY(sealed_m_);
  std::unique_ptr<store::Store> spill_store_;
  std::uint64_t sealed_rows_ DLC_GUARDED_BY(sealed_m_) = 0;
  std::uint64_t spills_ DLC_GUARDED_BY(sealed_m_) = 0;

  // atomic-protocol: kind=flag pairs=crash-injection-test-hooks
  mutable std::atomic<bool> crashed_{false};
  // atomic-protocol: kind=counter pairs=crash-injection-test-hooks
  std::array<std::atomic<std::uint64_t>, kRollupCrashPointCount>
      crash_after_{};
  // atomic-protocol: kind=counter pairs=RollupEngine::stats
  std::atomic<std::uint64_t> events_{0};
  // atomic-protocol: kind=counter pairs=RollupEngine::stats
  std::atomic<std::uint64_t> late_dropped_{0};

  // Pre-resolved dlc.rollup.* instruments (nullptr when obs is off).
  obs::Counter* m_events_ = nullptr;
  obs::Counter* m_late_ = nullptr;
  obs::Counter* m_sealed_rows_ = nullptr;
  obs::Counter* m_spills_ = nullptr;
  obs::Gauge* m_cells_open_ = nullptr;
  obs::LogHistogram* m_query_ns_ = nullptr;
};

}  // namespace dlc::rollup
