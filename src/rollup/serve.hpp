// Rollup-backed panel serving: answers the Fig. 5–9 dashboard queries
// from rollup cells when a policy covers them, falling back to the raw
// analysis/figures.hpp scans otherwise (DESIGN.md §8f).
//
// Coverage: a policy covers a panel when the panel's group-by keys are
// a subset of the policy's projection and the policy's filter keeps
// every event the panel needs (no match clauses, or a single op clause
// whose values are a superset of the panel's ops — the panel then
// restricts its cell query to exactly its own ops).  Time-bucketed
// panels additionally need the requested width to be an integer
// multiple of the policy's.
//
// Served frames reproduce the raw frames' column layout and row order
// (the cell-level intermediates run through the same DataFrame::group_by
// chains), so counts and integer byte sums are bit-identical to the raw
// scan; duration means/sums agree to float accumulation order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/frame.hpp"
#include "dsos/cluster.hpp"
#include "rollup/engine.hpp"

namespace dlc::rollup {

struct PanelResult {
  analysis::DataFrame frame;
  bool from_rollup = false;
  std::string policy;  // the covering policy (empty on fallback)
};

/// The best covering policy for (required keys, required ops, optional
/// bucket width): fewest extra key dimensions wins, ties by declaration
/// order.  nullptr when nothing covers — callers fall back to raw.
const PolicyConfig* covering_policy(const RollupEngine& engine,
                                    const std::vector<std::string>& keys,
                                    const std::vector<std::string>& ops,
                                    double bucket_s = 0.0);

/// Fig. 5: op, mean_count, ci95 (analysis::fig5_op_counts).
PanelResult panel_fig5(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs);

/// Fig. 6: job_id, ProducerName, op, count (fig6_requests_per_node).
PanelResult panel_fig6(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs);

/// Fig. 7: job_id, rank, op, mean_dur, total_dur, count
/// (fig7_rank_durations).
PanelResult panel_fig7(const RollupEngine* engine,
                       const dsos::DsosCluster& db,
                       const std::vector<std::uint64_t>& jobs);

/// Fig. 7 companion: job_id, op, mean_dur (fig7_job_summary).
PanelResult panel_fig7_summary(const RollupEngine* engine,
                               const dsos::DsosCluster& db,
                               const std::vector<std::uint64_t>& jobs);

/// Fig. 9: bucket_s, op, count, bytes (fig9_throughput_buckets).
PanelResult panel_fig9(const RollupEngine* engine,
                       const dsos::DsosCluster& db, std::uint64_t job,
                       double bucket_seconds = 10.0);

}  // namespace dlc::rollup
