// Storage policies: the LDMS-style "decomposition" config that fans one
// decoded Darshan event stream into N rollup sinks (DESIGN.md §8).
//
// A policy names a filter predicate (equality/alternation match on
// Table I fields), a projection (the subset of dimensions kept as the
// rollup key) and a time-bucket width.  The textual DSL lives in
// DARSHAN_LDMS_ROLLUP_POLICIES — ';'-separated policy specs of
// space-separated tokens:
//
//   <name> key=<dim>[,<dim>...] bucket=<dur> [match=<dim>:<v>[|<v>...]
//          [,<dim>:<v>[|<v>...]]] [grace=<dur>]
//
//   op_counts key=job_id,op bucket=60s;
//   throughput key=job_id,op bucket=10s match=op:read|write
//
// Durations accept ns/us/ms/s/m suffixes (bare numbers are seconds).
// The literal value `default` expands to default_rollup_policies() —
// the four policies that cover the paper's Fig. 5–9 dashboard panels.
// Parsing never throws; malformed specs land in PolicySet::errors so a
// typo'd config fails loudly instead of silently rolling up nothing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dlc::rollup {

/// Dimensions a policy may key or match on, in canonical order (the
/// subset of Table I fields the Fig. 5–9 panels group by).
inline constexpr const char* kRollupDims[] = {
    "job_id", "ProducerName", "rank", "op", "module",
};
inline constexpr std::size_t kRollupDimCount = 5;

bool is_rollup_dim(std::string_view name);

/// One `match=<dim>:<v>|<v>` clause: the event's value of `attr` must
/// equal one of `values`.  Clauses AND together; values OR together.
struct MatchClause {
  std::string attr;
  std::vector<std::string> values;
};

struct PolicyConfig {
  std::string name;
  /// Projection: dimensions kept in the rollup key, canonical order.
  /// Unkeyed dimensions collapse ("*" / 0 in the cell key).
  std::vector<std::string> keys;
  /// Time-bucket width in seconds (> 0); events aggregate into absolute
  /// buckets [i*bucket_s, (i+1)*bucket_s).
  double bucket_s = 60.0;
  /// Reorder tolerance: a bucket seals only once the shard's max
  /// timestamp passes bucket end + grace.  Negative = 2 * bucket_s.
  double grace_s = -1.0;
  std::vector<MatchClause> match;

  double grace() const { return grace_s < 0 ? 2.0 * bucket_s : grace_s; }
  bool has_key(std::string_view dim) const;
};

struct PolicySet {
  std::vector<PolicyConfig> policies;
  /// Unparsable specs ("<spec>: <what>"), kept so env_config can reject
  /// the variable with a useful message.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Parses the DSL (or the literal `default`); never throws.
PolicySet parse_rollup_policies(std::string_view text);

/// The built-in policy set covering the Fig. 5–9 panels:
///   op_counts       key=job_id,op            bucket=60s   (fig5, fig7s)
///   node_requests   key=job_id,ProducerName,op bucket=60s match=op:open|close
///   rank_durations  key=job_id,rank,op       bucket=3600s match=op:read|write
///   throughput      key=job_id,op            bucket=10s   match=op:read|write
std::vector<PolicyConfig> default_rollup_policies();

/// Renders a policy back to its DSL spec (round-trips through parse).
std::string to_string(const PolicyConfig& policy);

/// "10s" / "500ms" / "2m" / "10" -> seconds; false on malformed input.
bool parse_seconds(std::string_view text, double& out);

}  // namespace dlc::rollup
