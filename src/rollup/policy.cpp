#include "rollup/policy.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>

namespace dlc::rollup {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(s);
      return out;
    }
    out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
}

std::size_t dim_rank(std::string_view name) {
  for (std::size_t i = 0; i < kRollupDimCount; ++i) {
    if (name == kRollupDims[i]) return i;
  }
  return kRollupDimCount;
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

bool is_rollup_dim(std::string_view name) {
  return dim_rank(name) < kRollupDimCount;
}

bool PolicyConfig::has_key(std::string_view dim) const {
  return std::find(keys.begin(), keys.end(), dim) != keys.end();
}

bool parse_seconds(std::string_view text, double& out) {
  text = trim(text);
  double scale = 1.0;
  if (text.ends_with("ns")) {
    scale = 1e-9;
    text.remove_suffix(2);
  } else if (text.ends_with("us")) {
    scale = 1e-6;
    text.remove_suffix(2);
  } else if (text.ends_with("ms")) {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (text.ends_with("s")) {
    text.remove_suffix(1);
  } else if (text.ends_with("m")) {
    scale = 60.0;
    text.remove_suffix(1);
  }
  if (text.empty()) return false;
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  out = value * scale;
  return true;
}

PolicySet parse_rollup_policies(std::string_view text) {
  PolicySet set;
  if (trim(text) == "default") {
    set.policies = default_rollup_policies();
    return set;
  }
  for (const std::string_view raw_spec : split(text, ';')) {
    const std::string_view spec = trim(raw_spec);
    if (spec.empty()) continue;
    const auto fail = [&](std::string_view what) {
      set.errors.push_back(std::string(spec) + ": " + std::string(what));
    };

    PolicyConfig policy;
    bool bad = false;
    bool saw_key = false;
    bool saw_bucket = false;
    for (const std::string_view raw_tok : split(spec, ' ')) {
      const std::string_view tok = trim(raw_tok);
      if (tok.empty()) continue;
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        if (!policy.name.empty()) {
          fail("more than one policy name");
          bad = true;
          break;
        }
        if (!valid_name(tok)) {
          fail("invalid policy name");
          bad = true;
          break;
        }
        policy.name = std::string(tok);
        continue;
      }
      const std::string_view field = tok.substr(0, eq);
      const std::string_view value = tok.substr(eq + 1);
      if (field == "key") {
        saw_key = true;
        for (const std::string_view dim : split(value, ',')) {
          if (!is_rollup_dim(dim)) {
            fail("unknown key dimension '" + std::string(dim) + "'");
            bad = true;
            break;
          }
          policy.keys.emplace_back(dim);
        }
        if (bad) break;
      } else if (field == "bucket") {
        saw_bucket = true;
        if (!parse_seconds(value, policy.bucket_s) || policy.bucket_s <= 0) {
          fail("bad bucket width '" + std::string(value) + "'");
          bad = true;
          break;
        }
      } else if (field == "grace") {
        if (!parse_seconds(value, policy.grace_s) || policy.grace_s < 0) {
          fail("bad grace '" + std::string(value) + "'");
          bad = true;
          break;
        }
      } else if (field == "match") {
        for (const std::string_view clause_text : split(value, ',')) {
          const std::size_t colon = clause_text.find(':');
          if (colon == std::string_view::npos) {
            fail("match clause needs <dim>:<v>[|<v>...]");
            bad = true;
            break;
          }
          MatchClause clause;
          clause.attr = std::string(clause_text.substr(0, colon));
          if (!is_rollup_dim(clause.attr)) {
            fail("unknown match dimension '" + clause.attr + "'");
            bad = true;
            break;
          }
          for (const std::string_view v :
               split(clause_text.substr(colon + 1), '|')) {
            if (v.empty()) continue;
            // Numeric dimensions must carry values of the attribute's
            // actual Table I type, or the clause can never match —
            // reject at parse time.  job_id is uint64 on the wire, so
            // "-1" is invalid here (an int64 parse would accept it and
            // the compiled clause would silently match job 0).
            bool numeric_ok = true;
            if (clause.attr == "job_id") {
              std::uint64_t n = 0;
              const auto [ptr, ec] =
                  std::from_chars(v.data(), v.data() + v.size(), n);
              numeric_ok = ec == std::errc() && ptr == v.data() + v.size();
            } else if (clause.attr == "rank") {
              std::int64_t n = 0;
              const auto [ptr, ec] =
                  std::from_chars(v.data(), v.data() + v.size(), n);
              numeric_ok = ec == std::errc() && ptr == v.data() + v.size();
            }
            if (!numeric_ok) {
              fail("non-numeric " + clause.attr + " match value '" +
                   std::string(v) + "'");
              bad = true;
              break;
            }
            clause.values.emplace_back(v);
          }
          if (bad) break;
          if (clause.values.empty()) {
            fail("match clause '" + clause.attr + "' has no values");
            bad = true;
            break;
          }
          policy.match.push_back(std::move(clause));
        }
        if (bad) break;
      } else {
        fail("unknown field '" + std::string(field) + "'");
        bad = true;
        break;
      }
    }
    if (bad) continue;
    if (policy.name.empty()) {
      fail("missing policy name");
      continue;
    }
    if (!saw_key || policy.keys.empty()) {
      fail("missing key=");
      continue;
    }
    if (!saw_bucket) {
      fail("missing bucket=");
      continue;
    }
    // Canonical key order + dedupe so equivalent specs compare equal.
    std::sort(policy.keys.begin(), policy.keys.end(),
              [](const std::string& a, const std::string& b) {
                return dim_rank(a) < dim_rank(b);
              });
    policy.keys.erase(std::unique(policy.keys.begin(), policy.keys.end()),
                      policy.keys.end());
    const bool dup = std::any_of(
        set.policies.begin(), set.policies.end(),
        [&](const PolicyConfig& p) { return p.name == policy.name; });
    if (dup) {
      fail("duplicate policy name '" + policy.name + "'");
      continue;
    }
    set.policies.push_back(std::move(policy));
  }
  if (set.policies.empty() && set.errors.empty()) {
    set.errors.push_back("rollup policy list is empty");
  }
  return set;
}

std::vector<PolicyConfig> default_rollup_policies() {
  const PolicySet set = parse_rollup_policies(
      "op_counts key=job_id,op bucket=60s;"
      "node_requests key=job_id,ProducerName,op bucket=60s "
      "match=op:open|close;"
      "rank_durations key=job_id,rank,op bucket=3600s match=op:read|write;"
      "throughput key=job_id,op bucket=10s match=op:read|write");
  return set.policies;
}

namespace {

std::string format_seconds(double s) {
  std::string out = std::to_string(s);
  // Trim trailing zeros ("60.000000" -> "60").
  const std::size_t dot = out.find('.');
  if (dot != std::string::npos) {
    std::size_t last = out.find_last_not_of('0');
    if (last == dot) last = dot - 1;
    out.resize(last + 1);
  }
  out.push_back('s');
  return out;
}

}  // namespace

std::string to_string(const PolicyConfig& policy) {
  std::string out = policy.name + " key=";
  for (std::size_t i = 0; i < policy.keys.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += policy.keys[i];
  }
  out += " bucket=" + format_seconds(policy.bucket_s);
  if (!policy.match.empty()) {
    out += " match=";
    for (std::size_t c = 0; c < policy.match.size(); ++c) {
      if (c > 0) out.push_back(',');
      out += policy.match[c].attr + ":";
      for (std::size_t v = 0; v < policy.match[c].values.size(); ++v) {
        if (v > 0) out.push_back('|');
        out += policy.match[c].values[v];
      }
    }
  }
  if (policy.grace_s >= 0) out += " grace=" + format_seconds(policy.grace_s);
  return out;
}

}  // namespace dlc::rollup
