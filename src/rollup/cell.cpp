#include "rollup/cell.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <functional>

#include "util/stats.hpp"

namespace dlc::rollup {

void SparseLogHist::record(std::uint64_t sample) {
  const std::uint32_t idx = log_bucket_index(sample);
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), idx,
      [](const auto& entry, std::uint32_t i) { return entry.first < i; });
  if (it != buckets_.end() && it->first == idx) {
    ++it->second;
  } else {
    buckets_.insert(it, {idx, 1});
  }
}

void SparseLogHist::merge(const SparseLogHist& other) {
  for (const auto& [idx, count] : other.buckets_) {
    const auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), idx,
        [](const auto& entry, std::uint32_t i) { return entry.first < i; });
    if (it != buckets_.end() && it->first == idx) {
      it->second += count;
    } else {
      buckets_.insert(it, {idx, count});
    }
  }
}

std::uint64_t SparseLogHist::total() const {
  std::uint64_t total = 0;
  for (const auto& [idx, count] : buckets_) total += count;
  return total;
}

double SparseLogHist::percentile(double p) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  // Same rank + interpolation convention as util::log_bucket_percentile,
  // so sparse and dense views of the same samples agree exactly.
  const std::uint64_t rank = log_bucket_rank(p, n);
  std::uint64_t cum = 0;
  for (const auto& [idx, count] : buckets_) {
    if (cum + count >= rank) {
      return log_bucket_interpolate(idx, rank, cum, count);
    }
    cum += count;
  }
  return static_cast<double>(log_bucket_hi(buckets_.back().first));
}

std::string SparseLogHist::encode() const {
  std::string out;
  for (const auto& [idx, count] : buckets_) {
    if (!out.empty()) out.push_back(' ');
    out += std::to_string(idx) + ":" + std::to_string(count);
  }
  return out;
}

bool SparseLogHist::decode(std::string_view text, SparseLogHist& out) {
  out.buckets_.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(' ', pos), text.size());
    const std::string_view pair_text = text.substr(pos, end - pos);
    pos = end + 1;
    if (pair_text.empty()) continue;
    const std::size_t colon = pair_text.find(':');
    if (colon == std::string_view::npos) return false;
    std::uint32_t idx = 0;
    std::uint64_t count = 0;
    const auto* const base = pair_text.data();
    auto r1 = std::from_chars(base, base + colon, idx);
    auto r2 = std::from_chars(base + colon + 1, base + pair_text.size(), count);
    if (r1.ec != std::errc() || r1.ptr != base + colon ||
        r2.ec != std::errc() || r2.ptr != base + pair_text.size() ||
        idx >= kLogBucketCount || count == 0) {
      return false;
    }
    if (!out.buckets_.empty() && out.buckets_.back().first >= idx) {
      return false;  // must be strictly ascending
    }
    out.buckets_.push_back({idx, count});
  }
  return true;
}

void CellAgg::add(std::int64_t seg_len, double seg_dur) {
  ++count;
  bytes += static_cast<std::uint64_t>(std::max<std::int64_t>(0, seg_len));
  dur_sum += seg_dur;
  dur_min = std::min(dur_min, seg_dur);
  dur_max = std::max(dur_max, seg_dur);
  const double ns = std::max(0.0, seg_dur) * 1e9;
  dur_hist.record(static_cast<std::uint64_t>(std::llround(ns)));
}

void CellAgg::merge(const CellAgg& other) {
  count += other.count;
  bytes += other.bytes;
  dur_sum += other.dur_sum;
  dur_min = std::min(dur_min, other.dur_min);
  dur_max = std::max(dur_max, other.dur_max);
  dur_hist.merge(other.dur_hist);
}

std::size_t CellKeyHash::operator()(const CellKey& k) const {
  std::size_t h = std::hash<std::uint64_t>{}(k.job);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(k.producer));
  mix(std::hash<std::int64_t>{}(k.rank));
  mix(std::hash<std::string>{}(k.op));
  mix(std::hash<std::string>{}(k.module));
  mix(std::hash<std::int64_t>{}(k.bucket));
  return h;
}

dsos::SchemaPtr rollup_cell_schema() {
  using dsos::AttrType;
  static const dsos::SchemaPtr schema =
      dsos::SchemaBuilder("rollup_cell")
          .attr("policy", AttrType::kString)          // rollupcell:policy
          .attr("job_id", AttrType::kUint64)          // rollupcell:job_id
          .attr("ProducerName", AttrType::kString)    // rollupcell:ProducerName
          .attr("rank", AttrType::kInt64)             // rollupcell:rank
          .attr("op", AttrType::kString)              // rollupcell:op
          .attr("module", AttrType::kString)          // rollupcell:module
          .attr("bucket", AttrType::kTimestamp)       // rollupcell:bucket
          .attr("bucket_w", AttrType::kDouble)        // rollupcell:bucket_w
          .attr("count", AttrType::kUint64)           // rollupcell:count
          .attr("bytes", AttrType::kUint64)           // rollupcell:bytes
          .attr("dur_sum", AttrType::kDouble)         // rollupcell:dur_sum
          .attr("dur_min", AttrType::kDouble)         // rollupcell:dur_min
          .attr("dur_max", AttrType::kDouble)         // rollupcell:dur_max
          .attr("dur_hist", AttrType::kString)        // rollupcell:dur_hist
          .attr("shard", AttrType::kUint64)           // rollupcell-extra:shard
          .attr("watermark", AttrType::kTimestamp)  // rollupcell-extra:watermark
          .index("policy_bucket", {"policy", "bucket"})
          .index("policy_job_bucket", {"policy", "job_id", "bucket"})
          .build();
  return schema;
}

dsos::Object cell_to_row(const dsos::SchemaPtr& schema,
                         std::string_view policy, const CellKey& key,
                         double bucket_w, const CellAgg& agg,
                         std::uint64_t shard, double watermark) {
  std::vector<dsos::Value> values;
  values.reserve(kRollupCellFieldCount + kRollupRowExtraFieldCount);
  values.emplace_back(std::string(policy));                  // rollupcell:policy
  values.emplace_back(key.job);                              // rollupcell:job_id
  values.emplace_back(key.producer);              // rollupcell:ProducerName
  values.emplace_back(key.rank);                             // rollupcell:rank
  values.emplace_back(key.op);                               // rollupcell:op
  values.emplace_back(key.module);                           // rollupcell:module
  values.emplace_back(static_cast<double>(key.bucket) * bucket_w);
  // ^ rollupcell:bucket
  values.emplace_back(bucket_w);                           // rollupcell:bucket_w
  values.emplace_back(agg.count);                            // rollupcell:count
  values.emplace_back(agg.bytes);                            // rollupcell:bytes
  values.emplace_back(agg.dur_sum);                         // rollupcell:dur_sum
  values.emplace_back(agg.dur_min);                         // rollupcell:dur_min
  values.emplace_back(agg.dur_max);                         // rollupcell:dur_max
  values.emplace_back(agg.dur_hist.encode());              // rollupcell:dur_hist
  values.emplace_back(shard);                          // rollupcell-extra:shard
  values.emplace_back(watermark);                  // rollupcell-extra:watermark
  return dsos::make_object(schema, std::move(values));
}

bool row_to_cell(const dsos::Object& row, RollupCell& cell,
                 std::uint64_t& shard, double& watermark) {
  cell.policy = row.as_string("policy");                     // rollupcell:policy
  cell.key.job = row.as_uint("job_id");                      // rollupcell:job_id
  cell.key.producer = row.as_string("ProducerName");
  // ^ rollupcell:ProducerName
  cell.key.rank = row.as_int("rank");                        // rollupcell:rank
  cell.key.op = row.as_string("op");                         // rollupcell:op
  cell.key.module = row.as_string("module");                 // rollupcell:module
  cell.bucket_start = row.as_double("bucket");               // rollupcell:bucket
  cell.bucket_w = row.as_double("bucket_w");               // rollupcell:bucket_w
  if (!(cell.bucket_w > 0)) return false;
  cell.key.bucket =
      static_cast<std::int64_t>(std::llround(cell.bucket_start / cell.bucket_w));
  cell.agg = CellAgg{};
  cell.agg.count = row.as_uint("count");                     // rollupcell:count
  cell.agg.bytes = row.as_uint("bytes");                     // rollupcell:bytes
  cell.agg.dur_sum = row.as_double("dur_sum");              // rollupcell:dur_sum
  cell.agg.dur_min = row.as_double("dur_min");              // rollupcell:dur_min
  cell.agg.dur_max = row.as_double("dur_max");              // rollupcell:dur_max
  if (!SparseLogHist::decode(row.as_string("dur_hist"), cell.agg.dur_hist)) {
    return false;                                          // rollupcell:dur_hist
  }
  shard = row.as_uint("shard");                        // rollupcell-extra:shard
  watermark = row.as_double("watermark");          // rollupcell-extra:watermark
  return true;
}

}  // namespace dlc::rollup
