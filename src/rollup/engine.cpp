#include "rollup/engine.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "json/writer.hpp"

namespace dlc::rollup {

namespace {

std::size_t dim_index(std::string_view name) {
  for (std::size_t i = 0; i < kRollupDimCount; ++i) {
    if (name == kRollupDims[i]) return i;
  }
  throw std::logic_error("rollup: unknown dimension " + std::string(name));
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view rollup_crash_point_name(RollupCrashPoint p) {
  switch (p) {
    case RollupCrashPoint::kSeal:
      return "rollup_seal";
    case RollupCrashPoint::kSpill:
      return "rollup_spill";
  }
  return "?";
}

bool rollup_crash_point_from_name(std::string_view name,
                                  RollupCrashPoint& out) {
  if (name == "rollup_seal") {
    out = RollupCrashPoint::kSeal;
    return true;
  }
  if (name == "rollup_spill") {
    out = RollupCrashPoint::kSpill;
    return true;
  }
  return false;
}

struct RollupEngine::ShardSink final : dsos::CommitSink {
  ShardSink(RollupEngine* e, std::size_t s) : engine(e), shard(s) {}
  void on_insert(const dsos::Object& obj) override {
    engine->on_insert(shard, obj);
  }
  bool on_commit() override {
    engine->on_commit(shard);
    return true;
  }
  RollupEngine* engine;
  std::size_t shard;
};

RollupEngine::RollupEngine(RollupEngineConfig config)
    : policies_(config.policies), config_(std::move(config)) {
  if (policies_.empty()) {
    throw std::invalid_argument("rollup: engine needs at least one policy");
  }
  if (config_.store_mode != store::StoreMode::kMemory && config_.dir.empty()) {
    throw std::invalid_argument(
        "rollup: durable spill store needs a directory");
  }
  cell_schema_ = rollup_cell_schema();
  compiled_.reserve(policies_.size());
  for (const PolicyConfig& p : policies_) {
    CompiledPolicy c;
    c.key_job = p.has_key("job_id");
    c.key_producer = p.has_key("ProducerName");
    c.key_rank = p.has_key("rank");
    c.key_op = p.has_key("op");
    c.key_module = p.has_key("module");
    for (const MatchClause& clause : p.match) {
      CompiledPolicy::Clause cc;
      cc.dim = static_cast<std::uint8_t>(dim_index(clause.attr));
      for (const std::string& v : clause.values) {
        // parse_rollup_policies already type-checks these, but configs
        // can also be built programmatically — reject rather than
        // compile a garbage value into a clause that matches job/rank 0.
        if (clause.attr == "job_id") {
          std::uint64_t n = 0;
          const auto [ptr, ec] =
              std::from_chars(v.data(), v.data() + v.size(), n);
          if (ec != std::errc() || ptr != v.data() + v.size()) {
            throw std::invalid_argument("rollup: policy '" + p.name +
                                        "' has non-uint64 job_id match '" +
                                        v + "'");
          }
          cc.u64s.push_back(n);
        } else if (clause.attr == "rank") {
          std::int64_t n = 0;
          const auto [ptr, ec] =
              std::from_chars(v.data(), v.data() + v.size(), n);
          if (ec != std::errc() || ptr != v.data() + v.size()) {
            throw std::invalid_argument("rollup: policy '" + p.name +
                                        "' has non-int64 rank match '" + v +
                                        "'");
          }
          cc.i64s.push_back(n);
        } else {
          cc.strs.push_back(v);
        }
      }
      c.clauses.push_back(std::move(cc));
    }
    compiled_.push_back(std::move(c));
  }
  obs::Registry& reg =
      config_.registry != nullptr ? *config_.registry : obs::Registry::global();
  m_events_ = &reg.counter("dlc.rollup.events");
  m_late_ = &reg.counter("dlc.rollup.late_dropped");
  m_sealed_rows_ = &reg.counter("dlc.rollup.sealed_rows");
  m_spills_ = &reg.counter("dlc.rollup.spills");
  m_cells_open_ = &reg.gauge("dlc.rollup.cells_open");
  m_query_ns_ = &reg.histogram("dlc.rollup.query_ns");
}

RollupEngine::~RollupEngine() { detach(); }

const PolicyConfig* RollupEngine::find_policy(std::string_view name) const {
  for (const PolicyConfig& p : policies_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

RollupRecovery RollupEngine::attach(dsos::DsosCluster& raw) {
  if (raw_ == &raw) return recovery_;
  if (raw_ != nullptr) {
    throw std::logic_error(
        "rollup: engine already attached to a different cluster");
  }
  recovery_ = RollupRecovery{};
  {
    const util::LockGuard lock(sealed_m_);
    dsos::ClusterConfig cc;
    cc.shard_count = 1;
    cc.shard_attr = "shard";
    cc.parallel_query = false;
    sealed_db_ = std::make_unique<dsos::DsosCluster>(cc);
    sealed_db_->register_schema(cell_schema_);
  }
  if (config_.store_mode != store::StoreMode::kMemory) {
    store::StoreConfig sc;
    sc.mode = config_.store_mode;
    sc.dir = config_.dir;
    sc.retention_s = config_.retention_s;
    // One spill batch == one explicit commit == one atomic WAL group;
    // disable the row-count auto-commit so a batch can never tear.
    sc.wal_group_records = std::numeric_limits<std::size_t>::max();
    spill_store_ = std::make_unique<store::Store>(std::move(sc));
    const util::LockGuard lock(sealed_m_);
    recovery_.store = spill_store_->open(*sealed_db_);
  }

  // Per-(policy, shard) sealed frontier from the recovered rows.
  std::vector<std::unordered_map<std::uint64_t, double>> frontier(
      policies_.size());
  {
    const util::LockGuard lock(sealed_m_);
    const dsos::Container& c = sealed_db_->shard(0).container();
    for (std::size_t slot = 0; slot < c.size(); ++slot) {
      const dsos::Object& row = c.object(slot);
      if (row.schema->name() != "rollup_cell") continue;
      RollupCell cell;
      std::uint64_t shard = 0;
      double watermark = 0;
      if (!row_to_cell(row, cell, shard, watermark)) continue;
      ++recovery_.sealed_rows;
      for (std::size_t p = 0; p < policies_.size(); ++p) {
        if (policies_[p].name != cell.policy) continue;
        auto [it, fresh] = frontier[p].try_emplace(shard, watermark);
        if (!fresh) it->second = std::max(it->second, watermark);
        break;
      }
    }
  }

  shards_.clear();
  for (std::size_t s = 0; s < raw.shard_count(); ++s) {
    auto sh = std::make_unique<ShardState>();
    sh->sink = std::make_unique<ShardSink>(this, s);
    sh->writer.resize(policies_.size());
    {
      const util::LockGuard lock(sh->m);
      sh->pol.resize(policies_.size());
      for (std::size_t p = 0; p < policies_.size(); ++p) {
        const auto it = frontier[p].find(s);
        if (it == frontier[p].end()) continue;
        sh->pol[p].watermark = it->second;
        sh->writer[p].frontier = it->second;
      }
    }
    shards_.push_back(std::move(sh));
  }
  raw_ = &raw;

  // Rebuild the unsealed tail: replay the recovered raw cluster in
  // original per-shard insertion (slot) order — the same accumulation
  // order an uninterrupted run used — letting the frontier check skip
  // every event already represented by a sealed row.
  replaying_ = true;
  for (std::size_t s = 0; s < raw.shard_count(); ++s) {
    const dsos::Container& c = raw.shard(s).container();
    for (std::size_t slot = 0; slot < c.size(); ++slot) {
      on_insert(s, c.object(slot));
      ++recovery_.replayed_events;
    }
    on_commit(s);
  }
  replaying_ = false;

  for (std::size_t s = 0; s < raw.shard_count(); ++s) {
    raw.shard(s).container().add_observer(shards_[s]->sink.get());
  }
  return recovery_;
}

void RollupEngine::detach() {
  if (raw_ != nullptr) {
    for (std::size_t s = 0; s < raw_->shard_count(); ++s) {
      raw_->shard(s).container().remove_observer(shards_[s]->sink.get());
    }
    raw_ = nullptr;
  }
  if (spill_store_) spill_store_->close();
}

std::size_t RollupEngine::arm_from_plan(const relia::FaultPlan& plan) {
  std::size_t armed = 0;
  for (const relia::FaultEvent& ev : plan.events) {
    if (ev.kind != relia::FaultKind::kStoreCrash) continue;
    RollupCrashPoint p{};
    if (rollup_crash_point_from_name(ev.daemon, p)) {
      crash_after_[static_cast<std::size_t>(p)].store(
          ev.count, std::memory_order_release);
      ++armed;
    }
  }
  if (spill_store_) armed += spill_store_->faults().arm_from_plan(plan);
  return armed;
}

bool RollupEngine::should_crash(RollupCrashPoint p) {
  auto& remaining = crash_after_[static_cast<std::size_t>(p)];
  if (remaining.load(std::memory_order_acquire) == 0) return false;
  return remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

const RollupEngine::AttrIds& RollupEngine::resolve_ids(
    ShardState& sh, const dsos::Object& obj) {
  const dsos::Schema* schema = obj.schema.get();
  if (schema == sh.cached_schema) return sh.ids;
  AttrIds ids;
  const auto find = [&](const char* name, dsos::AttrType type,
                        std::size_t& slot) {
    const auto id = schema->find_attr(name);
    if (!id || schema->attrs()[*id].type != type) return false;
    slot = *id;
    return true;
  };
  using dsos::AttrType;
  ids.valid = find("job_id", AttrType::kUint64, ids.job) &&
              find("ProducerName", AttrType::kString, ids.producer) &&
              find("rank", AttrType::kInt64, ids.rank) &&
              find("op", AttrType::kString, ids.op) &&
              find("module", AttrType::kString, ids.module) &&
              find("seg_len", AttrType::kInt64, ids.seg_len) &&
              find("seg_dur", AttrType::kDouble, ids.seg_dur) &&
              find("seg_timestamp", AttrType::kTimestamp, ids.seg_ts);
  sh.ids = ids;
  sh.cached_schema = schema;
  return sh.ids;
}

bool RollupEngine::matches_policy(std::size_t policy, const dsos::Object& obj,
                                  const AttrIds& ids) const {
  for (const CompiledPolicy::Clause& clause : compiled_[policy].clauses) {
    bool hit = false;
    switch (clause.dim) {
      case 0: {  // job_id
        const auto v = std::get<std::uint64_t>(obj.values[ids.job]);
        hit = std::find(clause.u64s.begin(), clause.u64s.end(), v) !=
              clause.u64s.end();
        break;
      }
      case 1: {  // ProducerName
        const auto& v = std::get<std::string>(obj.values[ids.producer]);
        hit = std::find(clause.strs.begin(), clause.strs.end(), v) !=
              clause.strs.end();
        break;
      }
      case 2: {  // rank
        const auto v = std::get<std::int64_t>(obj.values[ids.rank]);
        hit = std::find(clause.i64s.begin(), clause.i64s.end(), v) !=
              clause.i64s.end();
        break;
      }
      case 3: {  // op
        const auto& v = std::get<std::string>(obj.values[ids.op]);
        hit = std::find(clause.strs.begin(), clause.strs.end(), v) !=
              clause.strs.end();
        break;
      }
      default: {  // module
        const auto& v = std::get<std::string>(obj.values[ids.module]);
        hit = std::find(clause.strs.begin(), clause.strs.end(), v) !=
              clause.strs.end();
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

void RollupEngine::on_insert(std::size_t shard, const dsos::Object& obj) {
  if (crashed()) return;
  ShardState& sh = *shards_[shard];
  const AttrIds& ids = resolve_ids(sh, obj);
  if (!ids.valid) return;
  const double ts = std::get<double>(obj.values[ids.seg_ts]);
  bool folded = false;
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    if (!matches_policy(p, obj, ids)) continue;
    PolicyWriter& w = sh.writer[p];
    const double width = policies_[p].bucket_s;
    const auto bucket = static_cast<std::int64_t>(std::floor(ts / width));
    if (static_cast<double>(bucket + 1) * width <= w.frontier) {
      // Behind the sealed frontier: the bucket's row is immutable.
      // During the attach() replay this is the expected skip of events
      // a sealed row already covers, not a loss.
      if (!replaying_) {
        late_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) m_late_->add(1);
      }
      continue;
    }
    CellKey key;
    key.bucket = bucket;
    const CompiledPolicy& cp = compiled_[p];
    if (cp.key_job) key.job = std::get<std::uint64_t>(obj.values[ids.job]);
    if (cp.key_producer) {
      key.producer = std::get<std::string>(obj.values[ids.producer]);
    }
    if (cp.key_rank) key.rank = std::get<std::int64_t>(obj.values[ids.rank]);
    if (cp.key_op) key.op = std::get<std::string>(obj.values[ids.op]);
    if (cp.key_module) {
      key.module = std::get<std::string>(obj.values[ids.module]);
    }
    w.cells[key].add(std::get<std::int64_t>(obj.values[ids.seg_len]),
                     std::get<double>(obj.values[ids.seg_dur]));
    w.max_ts = std::max(w.max_ts, ts);
    folded = true;
  }
  if (folded && !replaying_) {
    events_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) m_events_->add(1);
  }
}

void RollupEngine::on_commit(std::size_t shard, bool seal_everything) {
  if (crashed()) return;
  ShardState& sh = *shards_[shard];
  std::vector<SealBatch> batches;
  std::size_t open_cells = 0;
  {
    const util::LockGuard lock(sh.m);
    for (std::size_t p = 0; p < policies_.size(); ++p) {
      PolicyWriter& w = sh.writer[p];
      PolicyOpen& o = sh.pol[p];
      SealBatch batch;
      batch.policy = p;
      double new_watermark = o.watermark;
      if (seal_everything) {
        for (auto& [key, agg] : w.cells) {
          const double end =
              static_cast<double>(key.bucket + 1) * policies_[p].bucket_s;
          new_watermark = std::max(new_watermark, end);
          batch.cells.emplace_back(key, std::move(agg));
        }
        w.cells.clear();
      } else {
        const double frontier = w.max_ts - policies_[p].grace();
        if (frontier > o.watermark) {
          for (auto it = w.cells.begin(); it != w.cells.end();) {
            const double end =
                static_cast<double>(it->first.bucket + 1) *
                policies_[p].bucket_s;
            if (end <= frontier) {
              batch.cells.emplace_back(it->first, std::move(it->second));
              it = w.cells.erase(it);
            } else {
              ++it;
            }
          }
          if (!batch.cells.empty()) new_watermark = frontier;
        }
      }
      if (!batch.cells.empty()) {
        // The watermark only advances when a spill records it durably,
        // so recovery's frontier always matches the rows on disk.
        o.watermark = new_watermark;
        w.frontier = new_watermark;
        batch.watermark = new_watermark;
        batches.push_back(std::move(batch));
      }
      o.open = w.cells;  // commit-consistent snapshot, post-extraction
      open_cells += o.open.size();
    }
  }
  sh.open_count.store(open_cells, std::memory_order_relaxed);
  if (obs::enabled()) {
    // Publish the engine-wide total (what stats()/status_json() report),
    // summed from the per-shard commit-time counts — a true gauge that
    // falls as buckets seal, not a per-shard high watermark.
    std::uint64_t total = 0;
    for (const auto& other : shards_) {
      total += other->open_count.load(std::memory_order_relaxed);
    }
    m_cells_open_->set(static_cast<std::int64_t>(total));
  }
  for (SealBatch& batch : batches) {
    std::sort(batch.cells.begin(), batch.cells.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    spill(shard, batch);
    // Observers see the batch only once its rows are durable, with no
    // engine lock held (RollupShard and RollupSealed both released).
    notify_sealed(shard, batch);
  }
}

void RollupEngine::spill(std::size_t shard, const SealBatch& batch) {
  if (should_crash(RollupCrashPoint::kSeal)) {
    mark_crashed();
    throw store::StoreCrash("rollup: crashed at rollup_seal");
  }
  const PolicyConfig& policy = policies_[batch.policy];
  const util::LockGuard lock(sealed_m_);
  if (!sealed_db_) return;
  for (const auto& [key, agg] : batch.cells) {
    sealed_db_->shard(0).container().insert(
        cell_to_row(cell_schema_, policy.name, key, policy.bucket_s, agg,
                    shard, batch.watermark));
  }
  if (should_crash(RollupCrashPoint::kSpill)) {
    mark_crashed();
    throw store::StoreCrash("rollup: crashed at rollup_spill");
  }
  try {
    sealed_db_->commit_shard(0);
  } catch (const store::StoreCrash&) {
    mark_crashed();
    throw;
  }
  sealed_rows_ += batch.cells.size();
  ++spills_;
  if (obs::enabled()) {
    m_sealed_rows_->add(batch.cells.size());
    m_spills_->add(1);
  }
}

void RollupEngine::add_seal_observer(SealObserver* observer) {
  const util::LockGuard lock(observers_m_);
  if (std::find(observers_.begin(), observers_.end(), observer) ==
      observers_.end()) {
    observers_.push_back(observer);
  }
}

void RollupEngine::remove_seal_observer(SealObserver* observer) {
  const util::LockGuard lock(observers_m_);
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void RollupEngine::notify_sealed(std::size_t shard, const SealBatch& batch) {
  std::vector<SealObserver*> observers;
  {
    const util::LockGuard lock(observers_m_);
    if (observers_.empty()) return;
    observers = observers_;
  }
  const std::string_view policy = policies_[batch.policy].name;
  for (SealObserver* o : observers) {
    o->on_sealed(policy, shard, batch.watermark, batch.cells);
  }
}

void RollupEngine::flush() {
  for (std::size_t s = 0; s < shards_.size(); ++s) on_commit(s);
}

void RollupEngine::seal_all() {
  for (std::size_t s = 0; s < shards_.size(); ++s) on_commit(s, true);
  if (spill_store_ && config_.store_mode == store::StoreMode::kTiered &&
      !crashed()) {
    spill_store_->seal_all();
  }
}

std::vector<RollupCell> RollupEngine::query(std::string_view policy,
                                            const RollupQuery& q) const {
  const std::uint64_t t0 = now_ns();
  const PolicyConfig* p = find_policy(policy);
  if (p == nullptr) {
    throw std::invalid_argument("rollup: unknown policy " +
                                std::string(policy));
  }
  const auto pidx = static_cast<std::size_t>(p - policies_.data());
  const double width = p->bucket_s;
  double out_w = width;
  std::int64_t factor = 1;
  if (q.bucket_s > 0) {
    const double f = q.bucket_s / width;
    factor = std::llround(f);
    if (factor < 1 || std::abs(f - static_cast<double>(factor)) > 1e-9) {
      throw std::invalid_argument(
          "rollup: query bucket_s must be an integer multiple of the "
          "policy bucket");
    }
    out_w = q.bucket_s;
  }
  const auto pass = [&](const CellKey& key) {
    if (!q.jobs.empty() && std::find(q.jobs.begin(), q.jobs.end(), key.job) ==
                               q.jobs.end()) {
      return false;
    }
    if (!q.ops.empty() &&
        std::find(q.ops.begin(), q.ops.end(), key.op) == q.ops.end()) {
      return false;
    }
    if (!q.producer.empty() && key.producer != q.producer) return false;
    if (q.rank && *q.rank != key.rank) return false;
    const double start = static_cast<double>(key.bucket) * width;
    return start >= q.from_s && start < q.to_s;
  };

  // (fine key, shard) -> contribution.  The map's order — key fields,
  // then fine bucket, then shard — is the canonical fold order, so the
  // floating-point sums are independent of how much has sealed.
  std::map<std::pair<CellKey, std::uint64_t>, CellAgg> contrib;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardState& sh = *shards_[s];
    const util::LockGuard lock(sh.m);
    if (pidx >= sh.pol.size()) continue;
    for (const auto& [key, agg] : sh.pol[pidx].open) {
      if (pass(key)) contrib[{key, s}].merge(agg);
    }
  }
  {
    const util::LockGuard lock(sealed_m_);
    if (sealed_db_) {
      const dsos::Filter filter{
          {"policy", dsos::Cmp::kEq, std::string(policy)}};
      for (const dsos::Object* row :
           sealed_db_->query("rollup_cell", "policy_bucket", filter)) {
        RollupCell cell;
        std::uint64_t shard = 0;
        double watermark = 0;
        if (!row_to_cell(*row, cell, shard, watermark)) continue;
        if (pass(cell.key)) contrib[{cell.key, shard}].merge(cell.agg);
      }
    }
  }

  std::map<CellKey, CellAgg> folded;
  for (auto& [key_shard, agg] : contrib) {
    CellKey key = key_shard.first;
    if (factor > 1) key.bucket = floor_div(key.bucket, factor);
    folded[key].merge(agg);
  }
  std::vector<RollupCell> out;
  out.reserve(folded.size());
  for (auto& [key, agg] : folded) {
    RollupCell cell;
    cell.policy = std::string(policy);
    cell.key = key;
    cell.bucket_start = static_cast<double>(key.bucket) * out_w;
    cell.bucket_w = out_w;
    cell.agg = std::move(agg);
    out.push_back(std::move(cell));
  }
  if (obs::enabled()) m_query_ns_->record(now_ns() - t0);
  return out;
}

RollupStats RollupEngine::stats() const {
  RollupStats st;
  st.events = events_.load(std::memory_order_relaxed);
  st.late_dropped = late_dropped_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    const util::LockGuard lock(sh->m);
    for (const PolicyOpen& o : sh->pol) st.cells_open += o.open.size();
  }
  {
    const util::LockGuard lock(sealed_m_);
    st.sealed_rows = sealed_rows_;
    st.spills = spills_;
  }
  return st;
}

std::string RollupEngine::status_json() const {
  const RollupStats st = stats();
  json::Writer w;
  w.begin_object();
  w.member("events", st.events);
  w.member("late_dropped", st.late_dropped);
  w.member("cells_open", st.cells_open);
  w.member("sealed_rows", st.sealed_rows);
  w.member("spills", st.spills);
  w.member("crashed", crashed());
  w.member("store_mode",
           store_mode_name(config_.store_mode));
  w.key("policies");
  w.begin_array();
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    const PolicyConfig& policy = policies_[p];
    std::size_t cells = 0;
    for (const auto& sh : shards_) {
      const util::LockGuard lock(sh->m);
      if (p < sh->pol.size()) cells += sh->pol[p].open.size();
    }
    w.begin_object();
    w.member("name", policy.name);
    w.member("spec", to_string(policy));
    w.member("bucket_s", policy.bucket_s);
    w.member("grace_s", policy.grace());
    w.key("keys");
    w.begin_array();
    for (const std::string& k : policy.keys) w.value_string(k);
    w.end_array();
    w.member("cells_open", static_cast<std::uint64_t>(cells));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace dlc::rollup
