#include "simfs/variability.hpp"

#include <cmath>

namespace dlc::simfs {

namespace {
bool applies(OpClass incident_class, OpClass query_class) {
  return incident_class == OpClass::kAny || query_class == OpClass::kAny ||
         incident_class == query_class;
}
}  // namespace

VariabilityProcess::VariabilityProcess(const VariabilityConfig& config,
                                       std::uint64_t epoch_seed)
    : config_(config),
      ar_seed_(epoch_seed),
      ar_rng_(Rng(epoch_seed).fork("ar-path")) {
  Rng epoch_rng = Rng(epoch_seed).fork("epoch-factor");
  epoch_factor_ = config.epoch_sigma > 0.0
                      ? epoch_rng.lognormal(0.0, config.epoch_sigma)
                      : 1.0;
}

void VariabilityProcess::add_incident(const Incident& incident) {
  incidents_.push_back(incident);
}

double VariabilityProcess::ar_level_at(SimTime t) const {
  if (config_.ar_sigma <= 0.0 || config_.window <= 0) return 0.0;
  const auto window =
      static_cast<std::size_t>(t < 0 ? 0 : t / config_.window);
  while (ar_path_.size() <= window) {
    const double prev = ar_path_.empty() ? 0.0 : ar_path_.back();
    ar_path_.push_back(config_.ar_phi * prev +
                       ar_rng_.normal(0.0, config_.ar_sigma));
  }
  return ar_path_[window];
}

double VariabilityProcess::factor(SimTime t, OpClass op_class,
                                  int node) const {
  double f = epoch_factor_ * std::exp(ar_level_at(t));
  for (const Incident& inc : incidents_) {
    if (t < inc.start || t >= inc.end || !applies(inc.applies_to, op_class) ||
        (inc.node >= 0 && inc.node != node)) {
      continue;
    }
    if (inc.ramp && inc.end > inc.start) {
      const double progress = static_cast<double>(t - inc.start) /
                              static_cast<double>(inc.end - inc.start);
      f *= 1.0 + (inc.peak_factor - 1.0) * progress;
    } else {
      f *= inc.peak_factor;
    }
  }
  return f;
}

}  // namespace dlc::simfs
