// Lustre model: metadata server (MDS) + striped object storage targets.
//
// A data access is split into stripe_size chunks laid out round-robin over
// `stripe_count` of the `ost_count` OSTs (offset-addressed, so re-reading
// the same extent hits the same OSTs).  Chunk RPCs are issued in parallel
// (fork/join) against per-OST FIFO queues; the op completes when the last
// chunk does.  Collective MPI-IO is modelled as two-phase I/O: ranks pay a
// small exchange cost, and the per-chunk RPC latency is amortised by the
// aggregation factor — which is why collective beats independent on Lustre
// (Table IIa: 250 s vs 428 s) but not on NFS.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simfs/model.hpp"
#include "simfs/variability.hpp"
#include "util/rng.hpp"

namespace dlc::simfs {

struct LustreConfig {
  std::size_t ost_count = 8;
  std::size_t stripe_count = 4;
  std::uint64_t stripe_size = 1 * 1024 * 1024;
  /// Concurrent service slots per OST.
  std::size_t ost_slots = 2;
  /// Streaming bandwidth of one OST (bytes/second).
  double ost_bandwidth_bytes_per_sec = 1.2 * 1024 * 1024 * 1024;
  /// Fixed cost per chunk RPC.
  SimDuration rpc_latency = 150 * kMicrosecond;
  /// Metadata (MDS) op cost; Lustre MDS round-trips are pricey.
  SimDuration mds_latency = 900 * kMicrosecond;
  std::size_t mds_slots = 2;
  /// Two-phase collective I/O: exchange cost paid per op and latency
  /// amortisation factor (>= 1).
  SimDuration collective_exchange = 30 * kMicrosecond;
  double collective_amortisation = 8.0;
  /// Non-collective access to striped files ping-pongs OST extent locks
  /// between clients; two-phase I/O avoids it by aligning aggregator
  /// accesses to stripes.  Applied to service time when !collective.
  double independent_lock_penalty = 1.6;
  /// Client-side write-back cache for sub-page accesses.
  std::uint64_t small_io_threshold = 64 * 1024;
  std::uint64_t small_io_batch = 32;
  SimDuration cached_op_cost = 1 * kMicrosecond;
  double jitter_sigma = 0.06;
  /// Client page cache for read-back of node-written extents (see
  /// NfsConfig for semantics).
  double read_cache_bandwidth_bytes_per_sec = 320.0 * 1024 * 1024;
  double read_cache_hit_rate = 1.0;
};

class LustreModel final : public FileSystem {
 public:
  LustreModel(sim::Engine& engine, const LustreConfig& config,
              std::shared_ptr<VariabilityProcess> variability,
              std::uint64_t seed);

  FsKind kind() const override { return FsKind::kLustre; }

  sim::Task<SimDuration> open(int node, std::string_view path,
                              bool create) override;
  sim::Task<SimDuration> close(int node, std::string_view path) override;
  sim::Task<SimDuration> read(int node, std::string_view path,
                              std::uint64_t offset, std::uint64_t bytes,
                              IoFlags flags) override;
  sim::Task<SimDuration> write(int node, std::string_view path,
                               std::uint64_t offset, std::uint64_t bytes,
                               IoFlags flags) override;
  sim::Task<SimDuration> flush(int node, std::string_view path) override;

  std::size_t ost_count() const { return osts_.size(); }
  const sim::Resource& ost(std::size_t i) const { return *osts_[i]; }
  const sim::Resource& mds() const { return mds_; }

 private:
  struct Chunk {
    std::size_t ost;
    std::uint64_t bytes;
  };

  /// Splits [offset, offset+bytes) into per-OST chunks (round-robin layout
  /// keyed on the file path so different files start on different OSTs).
  std::vector<Chunk> layout(std::string_view path, std::uint64_t offset,
                            std::uint64_t bytes) const;

  sim::Task<SimDuration> data_op(int node, std::string_view path,
                                 std::uint64_t offset, std::uint64_t bytes,
                                 IoFlags flags, OpClass op_class);
  sim::Task<void> chunk_rpc(std::size_t ost, SimDuration service);
  sim::Task<SimDuration> cached_read(std::uint64_t bytes);
  sim::Task<SimDuration> metadata_op(int node);
  double jitter();

  sim::Engine& engine_;
  LustreConfig config_;
  std::shared_ptr<VariabilityProcess> variability_;
  sim::Resource mds_;
  std::vector<std::unique_ptr<sim::Resource>> osts_;
  Rng jitter_rng_;
  std::uint64_t small_ops_since_rpc_ = 0;
};

}  // namespace dlc::simfs
