// Temporal file-system performance variability.
//
// The paper leans on two variability phenomena:
//  * Between campaigns: the Darshan-only baselines were run "1-2 weeks
//    before" the connector runs, and the authors attribute the *negative*
//    overheads in Table II to the file systems simply being in a different
//    state.  We model this as an epoch-level multiplier drawn from a
//    lognormal keyed on a campaign-epoch seed.
//  * Within a run: Fig. 7/8's job 2 shows writes degrading over the course
//    of one execution (slowest after 250 s).  We model this with explicit
//    Incidents — time windows during which service is inflated, optionally
//    ramping up — plus a slowly-varying AR(1) congestion level.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace dlc::simfs {

/// Identifies which operation class an incident or query applies to.
enum class OpClass { kRead, kWrite, kMetadata, kAny };

/// A contention episode: between [start, end) service times are multiplied
/// by a factor that ramps linearly from 1 at `start` to `peak_factor` at
/// `end` when `ramp` is true, or applies `peak_factor` flat otherwise.
/// `node >= 0` scopes the incident to ops issued from that one node (the
/// Fig. 6 slow-node scenario); -1 hits every node (the Fig. 8 FS-wide
/// degradation).
struct Incident {
  SimTime start = 0;
  SimTime end = 0;
  double peak_factor = 1.0;
  bool ramp = false;
  OpClass applies_to = OpClass::kAny;
  int node = -1;
};

struct VariabilityConfig {
  /// Sigma of the lognormal epoch-level multiplier (0 disables drift).
  double epoch_sigma = 0.12;
  /// AR(1) within-run congestion: correlation per window and innovation
  /// sigma; the level multiplies service times as exp(level).
  double ar_phi = 0.9;
  double ar_sigma = 0.05;
  /// Window length over which the AR(1) level is held constant.
  SimDuration window = 10 * kSecond;
};

/// Deterministic multiplier process: factor(t) =
///   epoch_factor * exp(ar_level(t)) * incident_factor(t, op_class).
class VariabilityProcess {
 public:
  /// `epoch_seed` identifies *when* the campaign ran (the paper's "weeks
  /// apart" effect): same seed -> same epoch factor and congestion path.
  VariabilityProcess(const VariabilityConfig& config, std::uint64_t epoch_seed);

  /// Adds a contention episode (e.g. the Fig. 8 write slowdown).
  void add_incident(const Incident& incident);

  /// Service-time multiplier at virtual time `t` for the given op class,
  /// as seen from `node` (-1 = unknown: node-scoped incidents don't
  /// apply).
  double factor(SimTime t, OpClass op_class = OpClass::kAny,
                int node = -1) const;

  double epoch_factor() const { return epoch_factor_; }

 private:
  double ar_level_at(SimTime t) const;

  VariabilityConfig config_;
  double epoch_factor_;
  std::uint64_t ar_seed_;
  std::vector<Incident> incidents_;
  // Lazily extended AR(1) sample path, one level per window.
  mutable std::vector<double> ar_path_;
  mutable Rng ar_rng_;
};

}  // namespace dlc::simfs
