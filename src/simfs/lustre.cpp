#include "simfs/lustre.hpp"

#include <algorithm>
#include <cmath>

namespace dlc::simfs {

LustreModel::LustreModel(sim::Engine& engine, const LustreConfig& config,
                         std::shared_ptr<VariabilityProcess> variability,
                         std::uint64_t seed)
    : engine_(engine),
      config_(config),
      variability_(std::move(variability)),
      mds_(engine, config.mds_slots),
      jitter_rng_(Rng(seed).fork("lustre-jitter")) {
  osts_.reserve(config_.ost_count);
  for (std::size_t i = 0; i < config_.ost_count; ++i) {
    osts_.push_back(std::make_unique<sim::Resource>(engine, config_.ost_slots));
  }
}

double LustreModel::jitter() {
  if (config_.jitter_sigma <= 0.0) return 1.0;
  return jitter_rng_.lognormal(0.0, config_.jitter_sigma);
}

std::vector<LustreModel::Chunk> LustreModel::layout(std::string_view path,
                                                    std::uint64_t offset,
                                                    std::uint64_t bytes) const {
  std::vector<Chunk> chunks;
  const std::uint64_t stripe = config_.stripe_size;
  const std::size_t base_ost = fnv1a64(path) % osts_.size();
  while (bytes > 0) {
    const std::uint64_t stripe_index = offset / stripe;
    const std::uint64_t within = offset % stripe;
    const std::uint64_t take = std::min(bytes, stripe - within);
    const std::size_t ost =
        (base_ost + stripe_index % config_.stripe_count) % osts_.size();
    if (!chunks.empty() && chunks.back().ost == ost) {
      chunks.back().bytes += take;  // merge contiguous same-OST spans
    } else {
      chunks.push_back(Chunk{ost, take});
    }
    offset += take;
    bytes -= take;
  }
  return chunks;
}

sim::Task<void> LustreModel::chunk_rpc(std::size_t ost, SimDuration service) {
  co_await osts_[ost]->use(service);
}

sim::Task<SimDuration> LustreModel::metadata_op(int node) {
  const SimTime start = engine_.now();
  const double factor =
      variability_->factor(start, OpClass::kMetadata, node) * jitter();
  const auto service = static_cast<SimDuration>(
      static_cast<double>(config_.mds_latency) * factor);
  co_await mds_.use(service);
  co_return engine_.now() - start;
}

sim::Task<SimDuration> LustreModel::data_op(int node, std::string_view path,
                                            std::uint64_t offset,
                                            std::uint64_t bytes, IoFlags flags,
                                            OpClass op_class) {
  const SimTime start = engine_.now();
  if (bytes < config_.small_io_threshold && config_.small_io_batch > 1 &&
      !flags.sync) {
    if (++small_ops_since_rpc_ % config_.small_io_batch != 0) {
      co_await engine_.delay(config_.cached_op_cost);
      co_return engine_.now() - start;
    }
    bytes *= config_.small_io_batch;
  }
  double latency = static_cast<double>(config_.rpc_latency);
  double lock_penalty = config_.independent_lock_penalty;
  if (flags.collective) {
    co_await engine_.delay(config_.collective_exchange);
    latency /= config_.collective_amortisation;
    lock_penalty = 1.0;  // stripe-aligned aggregator access
  }
  const double factor =
      variability_->factor(start, op_class, node) * jitter() * lock_penalty;
  std::vector<sim::Task<void>> rpcs;
  for (const Chunk& chunk : layout(path, offset, bytes)) {
    const double transfer_sec = static_cast<double>(chunk.bytes) /
                                config_.ost_bandwidth_bytes_per_sec;
    const auto service = static_cast<SimDuration>(
        (latency + transfer_sec * static_cast<double>(kSecond)) * factor);
    rpcs.push_back(chunk_rpc(chunk.ost, service));
  }
  for (auto& rpc : rpcs) rpc.start();
  for (auto& rpc : rpcs) co_await rpc.join();
  co_return engine_.now() - start;
}

sim::Task<SimDuration> LustreModel::open(int node, std::string_view /*path*/,
                                         bool /*create*/) {
  return metadata_op(node);
}

sim::Task<SimDuration> LustreModel::close(int node,
                                          std::string_view /*path*/) {
  return metadata_op(node);
}

sim::Task<SimDuration> LustreModel::read(int node, std::string_view path,
                                         std::uint64_t offset,
                                         std::uint64_t bytes, IoFlags flags) {
  if (config_.read_cache_bandwidth_bytes_per_sec > 0 &&
      node_wrote(node, path, offset, bytes) &&
      jitter_rng_.bernoulli(config_.read_cache_hit_rate)) {
    return cached_read(bytes);
  }
  return data_op(node, path, offset, bytes, flags, OpClass::kRead);
}

sim::Task<SimDuration> LustreModel::cached_read(std::uint64_t bytes) {
  const SimTime start = engine_.now();
  co_await engine_.delay(static_cast<SimDuration>(
      static_cast<double>(bytes) /
      config_.read_cache_bandwidth_bytes_per_sec *
      static_cast<double>(kSecond)));
  co_return engine_.now() - start;
}

sim::Task<SimDuration> LustreModel::write(int node, std::string_view path,
                                          std::uint64_t offset,
                                          std::uint64_t bytes, IoFlags flags) {
  note_write(node, path, offset, bytes);
  return data_op(node, path, offset, bytes, flags, OpClass::kWrite);
}

sim::Task<SimDuration> LustreModel::flush(int node,
                                          std::string_view /*path*/) {
  return metadata_op(node);
}

}  // namespace dlc::simfs
