#include "simfs/nfs.hpp"

#include <algorithm>
#include <cmath>

namespace dlc::simfs {

std::string_view fs_kind_name(FsKind kind) {
  switch (kind) {
    case FsKind::kNfs:
      return "NFS";
    case FsKind::kLustre:
      return "Lustre";
  }
  return "?";
}

std::uint64_t FileSystem::file_size(std::string_view path) const {
  const auto it = sizes_.find(path);
  return it == sizes_.end() ? 0 : it->second;
}

void FileSystem::note_write(int node, std::string_view path,
                            std::uint64_t offset, std::uint64_t bytes) {
  auto it = sizes_.find(path);
  if (it == sizes_.end()) {
    sizes_.emplace(std::string(path), offset + bytes);
  } else {
    it->second = std::max(it->second, offset + bytes);
  }
  Extent& ext = node_extents_[{node, std::string(path)}];
  if (!ext.valid) {
    ext = Extent{offset, offset + bytes, true};
  } else {
    ext.lo = std::min(ext.lo, offset);
    ext.hi = std::max(ext.hi, offset + bytes);
  }
}

bool FileSystem::node_wrote(int node, std::string_view path,
                            std::uint64_t offset, std::uint64_t bytes) const {
  const auto it = node_extents_.find({node, std::string(path)});
  if (it == node_extents_.end() || !it->second.valid) return false;
  return offset >= it->second.lo && offset + bytes <= it->second.hi;
}

NfsModel::NfsModel(sim::Engine& engine, const NfsConfig& config,
                   std::shared_ptr<VariabilityProcess> variability,
                   std::uint64_t seed)
    : engine_(engine),
      config_(config),
      variability_(std::move(variability)),
      server_(engine, config.server_slots),
      jitter_rng_(Rng(seed).fork("nfs-jitter")) {}

double NfsModel::jitter() {
  if (config_.jitter_sigma <= 0.0) return 1.0;
  return jitter_rng_.lognormal(0.0, config_.jitter_sigma);
}

sim::Task<SimDuration> NfsModel::metadata_op(int node) {
  const SimTime start = engine_.now();
  const double factor =
      variability_->factor(start, OpClass::kMetadata, node) * jitter();
  const auto service = static_cast<SimDuration>(
      static_cast<double>(config_.metadata_latency) * factor);
  co_await server_.use(service);
  co_return engine_.now() - start;
}

sim::Task<SimDuration> NfsModel::data_op(int node, std::uint64_t bytes,
                                         OpClass op_class, bool collective) {
  const SimTime start = engine_.now();
  if (collective) co_await engine_.delay(config_.collective_exchange);
  // Client page cache absorbs most tiny accesses; only every Nth one
  // results in a server RPC.
  if (bytes < config_.small_io_threshold && config_.small_io_batch > 1) {
    if (++small_ops_since_rpc_ % config_.small_io_batch != 0) {
      co_await engine_.delay(config_.cached_op_cost);
      co_return engine_.now() - start;
    }
    // The RPC that does go out carries the batched bytes.
    bytes *= config_.small_io_batch;
  }
  double factor = variability_->factor(start, op_class, node) * jitter();
  if (collective) factor *= config_.collective_penalty_factor;
  const double transfer_sec =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  const auto service = static_cast<SimDuration>(
      (static_cast<double>(config_.per_op_latency) +
       transfer_sec * static_cast<double>(kSecond)) *
      factor);
  co_await server_.use(service);
  co_return engine_.now() - start;
}

sim::Task<SimDuration> NfsModel::open(int node, std::string_view /*path*/,
                                      bool /*create*/) {
  return metadata_op(node);
}

sim::Task<SimDuration> NfsModel::close(int node, std::string_view /*path*/) {
  return metadata_op(node);
}

sim::Task<SimDuration> NfsModel::read(int node, std::string_view path,
                                      std::uint64_t offset,
                                      std::uint64_t bytes, IoFlags flags) {
  if (config_.read_cache_bandwidth_bytes_per_sec > 0 &&
      node_wrote(node, path, offset, bytes) &&
      jitter_rng_.bernoulli(config_.read_cache_hit_rate)) {
    return cached_read(bytes);
  }
  return data_op(node, bytes, OpClass::kRead, flags.collective);
}

sim::Task<SimDuration> NfsModel::cached_read(std::uint64_t bytes) {
  const SimTime start = engine_.now();
  co_await engine_.delay(static_cast<SimDuration>(
      static_cast<double>(bytes) /
      config_.read_cache_bandwidth_bytes_per_sec *
      static_cast<double>(kSecond)));
  co_return engine_.now() - start;
}

sim::Task<SimDuration> NfsModel::write(int node, std::string_view path,
                                       std::uint64_t offset,
                                       std::uint64_t bytes, IoFlags flags) {
  note_write(node, path, offset, bytes);
  return data_op(node, bytes, OpClass::kWrite, flags.collective);
}

sim::Task<SimDuration> NfsModel::flush(int node, std::string_view /*path*/) {
  return metadata_op(node);
}

}  // namespace dlc::simfs
