// Abstract file-system model interface.
//
// Operations are coroutines on the virtual timeline: awaiting one advances
// the calling rank's clock by the modelled service time, including any
// queueing delay at the (shared) servers — which is how cross-rank
// contention and I/O variability arise.  Each call returns the operation's
// duration in virtual nanoseconds, which is exactly what Darshan's DXT
// records as `seg:dur`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/task.hpp"
#include "util/time.hpp"

namespace dlc::simfs {

enum class FsKind { kNfs, kLustre };

/// Returns "NFS" / "Lustre" (table headers in the paper).
std::string_view fs_kind_name(FsKind kind);

struct IoFlags {
  /// MPI collective I/O (two-phase aggregation on Lustre).
  bool collective = false;
  /// Synchronous write-through (fsync-like).
  bool sync = false;
};

/// Abstract file system.  `node` is the index of the compute node issuing
/// the request; models may use it to seed per-node jitter.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual FsKind kind() const = 0;
  std::string_view name() const { return fs_kind_name(kind()); }

  /// Metadata operations.
  virtual sim::Task<SimDuration> open(int node, std::string_view path,
                                      bool create) = 0;
  virtual sim::Task<SimDuration> close(int node, std::string_view path) = 0;

  /// Data operations.  `offset` is the file offset of the access.
  virtual sim::Task<SimDuration> read(int node, std::string_view path,
                                      std::uint64_t offset,
                                      std::uint64_t bytes, IoFlags flags) = 0;
  virtual sim::Task<SimDuration> write(int node, std::string_view path,
                                       std::uint64_t offset,
                                       std::uint64_t bytes, IoFlags flags) = 0;
  virtual sim::Task<SimDuration> flush(int node, std::string_view path) = 0;

  /// Size bookkeeping: the largest offset+len written so far (0 if never).
  std::uint64_t file_size(std::string_view path) const;

 protected:
  void note_write(int node, std::string_view path, std::uint64_t offset,
                  std::uint64_t bytes);

  /// True when [offset, offset+bytes) lies within the extent this node has
  /// previously written to `path` — i.e. the node's page cache plausibly
  /// still holds the data (read-back after checkpoint, the MPI-IO-TEST
  /// verification pass).
  bool node_wrote(int node, std::string_view path, std::uint64_t offset,
                  std::uint64_t bytes) const;

 private:
  struct Extent {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // exclusive
    bool valid = false;
  };

  std::map<std::string, std::uint64_t, std::less<>> sizes_;
  // (node, path) -> written extent envelope.
  std::map<std::pair<int, std::string>, Extent> node_extents_;
};

}  // namespace dlc::simfs
